// Package cherisim is a performance-characterization platform for CHERI
// capability architectures, reproducing the measurement study "Sweet or
// Sour CHERI: Performance Characterization of the Arm Morello Platform"
// (IISWC 2025) in pure Go.
//
// The package is the public facade over the simulator's subsystems:
//
//   - a CHERI Concentrate 128-bit compressed-capability model with
//     out-of-band tags (internal/cap, internal/mem);
//   - a Neoverse-N1-like core with Morello's cache/TLB geometry, branch
//     prediction (including the prototype's PCC-bounds limitation), and
//     the N1+Morello PMU event set (internal/core, internal/cache,
//     internal/tlb, internal/branch, internal/pmu);
//   - the three CheriBSD ABIs — hybrid, purecap-benchmark and purecap —
//     as code-generation lowerings (internal/abi);
//   - the paper's 20 workloads as algorithm kernels (internal/workloads);
//   - the top-down analysis methodology and Table 1 derived metrics
//     (internal/topdown, internal/metrics);
//   - regenerators for every table and figure of the paper's evaluation
//     (internal/experiments).
//
// Quickstart:
//
//	res, err := cherisim.Run("sqlite", cherisim.Purecap, 1)
//	if err != nil { ... }
//	fmt.Printf("time %.3fs IPC %.2f\n", res.Metrics.Seconds, res.Metrics.IPC)
package cherisim

import (
	"fmt"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/experiments"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/soc"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

// ABI selects a CheriBSD application binary interface.
type ABI = abi.ABI

// The three ABIs the paper compares.
const (
	// Hybrid is the AArch64 baseline with 64-bit integer pointers.
	Hybrid = abi.Hybrid
	// Benchmark is the purecap-benchmark ABI: purecap memory layout with
	// integer jumps, isolating Morello's PCC branch-predictor limitation.
	Benchmark = abi.Benchmark
	// Purecap is the pure-capability ABI: every pointer is a 128-bit
	// capability and control transfers are capability jumps.
	Purecap = abi.Purecap
)

// ParseABI resolves an ABI name ("hybrid", "benchmark", "purecap").
func ParseABI(s string) (ABI, error) { return abi.Parse(s) }

// Machine is one simulated Morello core with its memory system; see
// NewMachine for direct (non-workload) use of the execution API.
type Machine = core.Machine

// Config parameterises a Machine; DefaultConfig returns Morello values.
type Config = core.Config

// NewMachine builds a Morello machine for the given ABI.
func NewMachine(a ABI) *Machine { return core.New(a) }

// NewMachineConfig builds a machine from an explicit configuration,
// enabling the paper's projection experiments (capability-aware branch
// predictor, resized caches, capability-width store queues).
func NewMachineConfig(cfg Config) *Machine { return core.NewMachine(cfg) }

// DefaultConfig returns the Morello platform configuration for an ABI.
func DefaultConfig(a ABI) Config { return core.DefaultConfig(a) }

// Workload is one of the paper's 20 benchmark kernels.
type Workload = workloads.Workload

// Workloads returns the full 20-workload catalogue.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName resolves a workload by its paper identifier
// (e.g. "520.omnetpp_r", "quickjs").
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Metrics is the Table 1 derived-metric set.
type Metrics = metrics.Metrics

// Breakdown is the two-level top-down decomposition.
type Breakdown = topdown.Breakdown

// Counters is the full PMU counter file.
type Counters = pmu.Counters

// Result is the outcome of running a workload on the simulated platform.
type Result struct {
	// Counters is the ground-truth PMU counter file of the run.
	Counters Counters
	// Metrics holds the paper's derived metrics (Table 1 formulas).
	Metrics Metrics
	// Topdown holds the hierarchical bottleneck decomposition.
	Topdown Breakdown
	// HeapBytes is the address-space footprint of the simulated heap.
	HeapBytes uint64
}

// Run executes the named workload under ABI a at the given scale
// (1 = default length) and returns its measurements. Simulated capability
// faults surface as the returned error with partial measurements attached.
func Run(workload string, a ABI, scale int) (*Result, error) {
	return RunConfig(workload, DefaultConfig(a), scale)
}

// RunConfig is Run with an explicit machine configuration.
func RunConfig(workload string, cfg Config, scale int) (*Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	m, runErr := workloads.ExecuteConfig(w, cfg, scale)
	res := &Result{
		Counters:  m.C,
		Metrics:   metrics.Compute(&m.C),
		Topdown:   topdown.Analyze(&m.C),
		HeapBytes: m.Heap.Stats().BrkBytes,
	}
	return res, runErr
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment = experiments.Experiment

// Experiments returns every table/figure regenerator in paper order.
func Experiments() []*Experiment { return experiments.All() }

// ExperimentByID resolves a regenerator by handle ("fig1", "table3", ...).
func ExperimentByID(id string) (*Experiment, error) { return experiments.ByID(id) }

// NewExperimentSession creates a cached measurement session for running
// experiments at the given workload scale. The session is safe for
// concurrent use: same-key callers are deduplicated onto one in-flight
// execution, distinct keys run in parallel across a worker pool (set
// Session.Jobs to bound it; see NewParallelExperimentSession).
func NewExperimentSession(scale int) *experiments.Session {
	return experiments.NewSession(scale)
}

// NewParallelExperimentSession creates a measurement session whose worker
// pool runs up to min(GOMAXPROCS, jobs) workloads concurrently. Rendering
// experiments after a Prefetch/RunAll produces bytes identical to a serial
// session — each (workload, ABI) run is deterministic and isolated.
func NewParallelExperimentSession(scale, jobs int) *experiments.Session {
	s := experiments.NewSession(scale)
	s.Jobs = jobs
	return s
}

// ExperimentPair names one (workload, ABI) measurement of the campaign.
type ExperimentPair = experiments.Pair

// CampaignGrid returns the paper's full measurement grid — every runnable
// workload crossed with the three ABIs — for use with Session.Prefetch.
func CampaignGrid() []ExperimentPair { return experiments.CampaignGrid() }

func resultOf(m *Machine, err error) (*Result, error) {
	return &Result{
		Counters:  m.C,
		Metrics:   metrics.Compute(&m.C),
		Topdown:   topdown.Analyze(&m.C),
		HeapBytes: m.Heap.Stats().BrkBytes,
	}, err
}

// RunTemporalSafety runs a workload under purecap with Cornucopia-style
// heap temporal safety (quarantine-on-free plus revocation sweeps) and
// returns the measurements together with the sweep statistics.
func RunTemporalSafety(workload string, scale int) (*Result, []core.RevocationStats, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, nil, err
	}
	cfg := DefaultConfig(Purecap)
	cfg.TemporalSafety = true
	m, runErr := workloads.ExecuteConfig(w, cfg, scale)
	res, _ := resultOf(m, nil)
	return res, m.Revocations(), runErr
}

// CoRun co-runs the named workloads, one per simulated core, against the
// shared 1 MiB system-level cache under ABI a (up to the Morello SoC's
// four cores). Scheduling is deterministic round robin; results are
// per-core, in input order. When a core faults, the error describes the
// first faulting core and the returned slice still carries every core's
// partial measurements (the faulting core's counters are finalized up to
// the fault), matching Run's "partial measurements attached" contract.
func CoRun(names []string, a ABI, scale int) ([]*Result, error) {
	if len(names) == 0 || len(names) > 4 {
		return nil, fmt.Errorf("cherisim: CoRun takes 1-4 workloads, got %d", len(names))
	}
	specs := make([]soc.CoreSpec, len(names))
	for i, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		specs[i] = soc.CoreSpec{
			Config: DefaultConfig(a),
			Body:   func(m *Machine) { w.Run(m, scale) },
		}
	}
	rs, err := soc.Run(specs)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(rs))
	var firstErr error
	for i, r := range rs {
		out[i], _ = resultOf(r.Machine, nil)
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core %d (%s): %w", i, names[i], r.Err)
		}
	}
	return out, firstErr
}
