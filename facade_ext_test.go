package cherisim

import "testing"

func TestCoRunFacade(t *testing.T) {
	results, err := CoRun([]string{"llama-matmul", "541.leela_r"}, Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Metrics.Cycles == 0 {
			t.Errorf("core %d: no cycles", i)
		}
	}
	if _, err := CoRun(nil, Purecap, 1); err == nil {
		t.Error("empty co-run accepted")
	}
	if _, err := CoRun(make([]string, 5), Purecap, 1); err == nil {
		t.Error("five-core co-run accepted on a quad-core SoC")
	}
}

func TestCoRunContentionVisibleThroughFacade(t *testing.T) {
	solo, err := Run("520.omnetpp_r", Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	co, err := CoRun([]string{"520.omnetpp_r", "520.omnetpp_r", "520.omnetpp_r", "520.omnetpp_r"}, Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow := co[0].Metrics.Seconds / solo.Metrics.Seconds
	if slow < 1.01 {
		t.Errorf("4-way co-run slowdown = %.3f, want contention", slow)
	}
}

func TestRunTemporalSafetyFacade(t *testing.T) {
	res, sweeps, err := RunTemporalSafety("quickjs", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) == 0 {
		t.Fatal("no revocation sweeps for the churn-heavy interpreter")
	}
	var revoked uint64
	for _, s := range sweeps {
		revoked += s.CapsRevoked
	}
	if revoked == 0 {
		t.Error("no capabilities revoked")
	}
	base, err := Run("quickjs", Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	overhead := res.Metrics.Seconds/base.Metrics.Seconds - 1
	if overhead < 0 || overhead > 0.25 {
		t.Errorf("temporal-safety overhead = %+.1f%%, want low single digits", overhead*100)
	}
}
