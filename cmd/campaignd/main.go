// Command campaignd serves the measurement campaign engine as a sharded
// multi-tenant HTTP service: tenants submit campaign specs (the same
// experiment/scale/attack/topology selections cmd/experiments takes as
// flags), the daemon schedules them across one shared simulation-worker
// fleet with per-tenant weighted round-robin fairness and bounded-queue
// backpressure, and rendered results — byte-identical to the equivalent
// cmd/experiments invocation — are served from a persistent result store
// fronted by an in-memory admission cache, so a warm resubmission performs
// zero simulations and zero disk reads.
//
// Usage:
//
//	campaignd -http :8080 -store /var/lib/cherisim-store
//	campaignd -http :8080 -store s -workers 8 -depth 16 -weights team-a=3,team-b=1
//
//	curl -XPOST localhost:8080/campaigns -d '{"tenant":"team-a","experiments":["table1"]}'
//	curl localhost:8080/campaigns/c1            # status (state, sims, store delta)
//	curl localhost:8080/campaigns/c1/result     # rendered body
//	curl -N localhost:8080/campaigns/c1/events  # SSE progress feed
//
// SIGINT/SIGTERM drain gracefully: in-flight campaigns finish, in-flight
// HTTP responses complete, queued-but-unstarted campaigns are dropped.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"cherisim/internal/campaign"
	"cherisim/internal/resultstore"
	"cherisim/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

func run() error {
	httpAddr := flag.String("http", ":8080", "listen address for the campaign API and ops endpoints")
	storeDir := flag.String("store", "", "persistent result-store directory (required)")
	cacheMB := flag.Int64("cache-mb", 64, "in-memory admission cache budget in MiB (0 disables)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shared simulation-worker fleet size")
	runners := flag.Int("runners", 2, "campaigns executing concurrently (they share the worker fleet)")
	depth := flag.Int("depth", 8, "per-tenant queue depth; submissions over it get 429 + Retry-After")
	maxScale := flag.Int("max-scale", campaign.DefaultMaxScale, "largest workload scale a submission may request")
	weights := flag.String("weights", "", `per-tenant fairness weights, e.g. "team-a=3,team-b=1" (unlisted tenants weigh 1)`)
	logLevel := flag.String("log-level", "info", "structured log level on stderr (debug, info, warn, error; empty = silent)")
	logJSON := flag.Bool("log-json", false, "structured logs as JSON lines instead of text")
	flag.Parse()

	if *storeDir == "" {
		return fmt.Errorf("-store DIR is required (the service exists to serve warm results)")
	}
	store, err := resultstore.Open(*storeDir)
	if err != nil {
		return err
	}
	if *cacheMB > 0 {
		store.EnableAdmissionCache(*cacheMB << 20)
	}
	w, err := campaign.ParseWeights(*weights)
	if err != nil {
		return err
	}

	hub := telemetry.New()
	log, err := telemetry.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		return err
	}
	hub.Log = log

	svc := campaign.New(campaign.Config{
		Store:      store,
		Hub:        hub,
		Workers:    *workers,
		Runners:    *runners,
		QueueDepth: *depth,
		Weights:    w,
		MaxScale:   *maxScale,
	})
	svc.Start()
	return serve(svc, hub, store, *httpAddr)
}

// serve runs the HTTP front end until SIGINT/SIGTERM, then drains.
func serve(svc *campaign.Service, hub *telemetry.Hub, store *resultstore.Store, addr string) error {
	srv, err := telemetry.Serve(addr, svc.Handler())
	if err != nil {
		return err
	}
	hub.Logger().Info("campaignd listening", "addr", srv.Addr)
	fmt.Fprintf(os.Stderr, "campaignd: serving campaigns at http://%s (POST /campaigns; ops at /metrics /spans /healthz)\n", srv.Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "campaignd: draining (in-flight campaigns finish, queued ones drop)")
	svc.Close()
	err = srv.Close()
	fmt.Fprintf(os.Stderr, "campaignd: store: %s\n", store.Stats())
	return err
}
