// Command bench-export runs the simulator's benchmark set with memory
// accounting and writes a machine-readable BENCH_<date>.json snapshot
// (ns/op, bytes/op, allocs/op per benchmark), so the performance
// trajectory of the hot paths is tracked across PRs.
//
// Usage:
//
//	bench-export                 # substrate micro-benchmarks -> BENCH_<date>.json
//	bench-export -full           # also regenerate every experiment artefact
//	bench-export -jobs 8         # worker-pool width for the campaign prefetch
//	bench-export -o bench.json   # explicit output path
//
// The experiment benchmarks share one measurement session, prefetched
// across the worker pool first, so -full pays the campaign cost once.
//
// Compare mode turns the snapshot into a regression gate (the CI bench
// job): re-measure the guarded hot-path benchmarks and fail when one
// regressed beyond the tolerance against a committed snapshot:
//
//	bench-export -compare BENCH_2026-08-08.json
//	bench-export -compare BENCH_2026-08-08.json -tolerance 0.35
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/branch"
	"cherisim/internal/cache"
	"cherisim/internal/cap"
	"cherisim/internal/core"
	"cherisim/internal/experiments"
	"cherisim/internal/replay"
	"cherisim/internal/tlb"
	"cherisim/internal/workloads"
)

// record is one benchmark's exported measurement.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// provenance stamps the snapshot with everything needed to reproduce or
// disqualify it later: the exact tree the numbers came from, the runtime
// that produced them, and confirmation that the measurement engine ran
// with telemetry disabled (the zero-overhead configuration the numbers
// are only valid under).
type provenance struct {
	GitCommit    string `json:"git_commit"`
	GitDirty     bool   `json:"git_dirty"`
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	TelemetryOff bool   `json:"telemetry_off"`
	// TelemetryOffAllocs is the measured allocations per cached session
	// run with telemetry disabled; TelemetryOff is only stamped true when
	// this is exactly zero.
	TelemetryOffAllocs float64 `json:"telemetry_off_allocs_per_run"`
}

// snapshot is the exported file format.
type snapshot struct {
	Date       string     `json:"date"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Provenance provenance `json:"provenance"`
	Benchmarks []record   `json:"benchmarks"`
}

// stampProvenance fills the provenance block. Git metadata degrades to
// empty fields outside a git checkout rather than failing the export.
func stampProvenance() provenance {
	p := provenance{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		p.GitCommit = strings.TrimSpace(string(out))
	}
	if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		p.GitDirty = len(strings.TrimSpace(string(out))) > 0
	}
	// Confirm the zero-overhead contract on the exact session
	// configuration the benchmarks use: a warm singleflight cache with a
	// nil telemetry hub must serve runs without allocating.
	w, err := workloads.ByName("525.x264_r")
	if err != nil {
		fatal(err)
	}
	s := experiments.NewSession(1)
	s.Run(w, abi.Hybrid)
	p.TelemetryOffAllocs = testing.AllocsPerRun(200, func() { s.Run(w, abi.Hybrid) })
	p.TelemetryOff = p.TelemetryOffAllocs == 0
	return p
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	full := flag.Bool("full", false, "also benchmark every experiment regeneration")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker-pool width for the campaign prefetch")
	comparePath := flag.String("compare", "",
		"committed BENCH_*.json to gate against: re-measure the guarded benchmarks and exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.5,
		"fractional ns/op regression allowed by -compare (0.5 = 50%; allocs/op must not grow at all)")
	flag.Parse()

	if *comparePath != "" {
		os.Exit(compareMain(*comparePath, *tolerance))
	}

	snap := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Provenance: stampProvenance(),
	}
	if *out == "" {
		*out = "BENCH_" + snap.Date + ".json"
	}

	for _, b := range substrate() {
		snap.Benchmarks = append(snap.Benchmarks, measure(b.name, b.fn))
	}
	if *full {
		s := experiments.NewSession(1)
		s.Jobs = *jobs
		fmt.Fprintln(os.Stderr, "bench-export: prefetching measurement campaign...")
		s.Prefetch(experiments.UnionPairs(experiments.All()))
		for _, e := range experiments.All() {
			e := e
			snap.Benchmarks = append(snap.Benchmarks, measure("Experiment/"+e.ID, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := e.Run(s); err != nil {
						b.Fatal(err)
					}
				}
			}))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
}

func measure(name string, fn func(*testing.B)) record {
	fmt.Fprintf(os.Stderr, "bench-export: %s...\n", name)
	r := testing.Benchmark(fn)
	return record{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

type bench struct {
	name string
	fn   func(*testing.B)
}

// substrate mirrors the micro-benchmarks of bench_test.go: the simulator
// components every workload run hammers.
func substrate() []bench {
	return []bench{
		{"CapSetBounds", func(b *testing.B) {
			b.ReportAllocs()
			root := cap.Root()
			for i := 0; i < b.N; i++ {
				c, err := root.SetBounds(uint64(i)<<12, 1<<20)
				if err != nil || !c.Valid() {
					b.Fatal("setbounds failed")
				}
			}
		}},
		{"CapEncodeDecode", func(b *testing.B) {
			b.ReportAllocs()
			c := cap.New(0x4000_0000, 1<<16, cap.PermsData)
			for i := 0; i < b.N; i++ {
				enc, tag := c.Encode()
				if d := cap.Decode(enc, tag); d.Base() != c.Base() {
					b.Fatal("round trip corrupted")
				}
			}
		}},
		{"CacheAccess", func(b *testing.B) {
			b.ReportAllocs()
			c := cache.New(cache.L1DConfig)
			for i := 0; i < b.N; i++ {
				c.Access(uint64(i*64)%(1<<21), i%4 == 0)
			}
		}},
		{"CacheAccessHot", func(b *testing.B) {
			b.ReportAllocs()
			c := cache.New(cache.L1DConfig)
			for i := 0; i < b.N; i++ {
				c.Access(uint64(i%4)*8, false)
			}
		}},
		{"TLBTranslate", func(b *testing.B) {
			b.ReportAllocs()
			h := tlb.NewHierarchy(tlb.L1DConfig, tlb.New(tlb.L2Config))
			for i := 0; i < b.N; i++ {
				h.Translate(uint64(i) << 12 % (1 << 30))
			}
		}},
		{"TLBTranslateHot", func(b *testing.B) {
			b.ReportAllocs()
			h := tlb.NewHierarchy(tlb.L1DConfig, tlb.New(tlb.L2Config))
			for i := 0; i < b.N; i++ {
				h.Translate(0x4000_0000 + uint64(i%64)*8)
			}
		}},
		{"Predictor", func(b *testing.B) {
			b.ReportAllocs()
			p := branch.New()
			for i := 0; i < b.N; i++ {
				p.Resolve(uint64(i%64)<<2, branch.Immed, i%3 == 0, 0, false)
			}
		}},
		{"Allocator", func(b *testing.B) {
			b.ReportAllocs()
			h := alloc.New(abi.Purecap, 0x4000_0000, 1<<32)
			for i := 0; i < b.N; i++ {
				a, err := h.Alloc(uint64(64 + i%256))
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Free(a); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"SessionTelemetryOff", func(b *testing.B) {
			// Mirror of experiments.BenchmarkSessionTelemetryOff: the
			// cached-run hot path the campaign engine hammers, with
			// the telemetry layer disabled.
			b.ReportAllocs()
			w, err := workloads.ByName("525.x264_r")
			if err != nil {
				b.Fatal(err)
			}
			s := experiments.NewSession(1)
			s.Run(w, abi.Hybrid)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Run(w, abi.Hybrid)
			}
		}},
		{"MachineLoadStore", func(b *testing.B) {
			b.ReportAllocs()
			m := core.New(abi.Purecap)
			m.Func("bench", 512, 64)
			err := m.Run(func(m *core.Machine) {
				p := m.Alloc(1 << 20)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					off := core.Ptr(uint64(i*64) % (1 << 20))
					m.Store(p+off, uint64(i), 8)
					m.Load(p+off, 8)
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}},
		{"ReplayLoadStore", func(b *testing.B) {
			// Mirror of internal/replay's BenchmarkReplayLoadStore: the
			// record-and-replay fast path serving the MachineLoadStore
			// access pattern, reported per store+load pair.
			b.ReportAllocs()
			const pairs = 1 << 16
			rec := replay.NewRecorder()
			m := core.New(abi.Purecap)
			m.SetReplaySink(rec)
			m.Func("bench", 512, 64)
			var uops uint64
			err := m.Run(func(m *core.Machine) {
				p := m.Alloc(1 << 20)
				for i := 0; i < pairs; i++ {
					off := core.Ptr(uint64(i*64) % (1 << 20))
					m.Store(p+off, uint64(i), 8)
					m.Load(p+off, 8)
				}
				uops = m.Uops()
			})
			if err != nil {
				b.Fatal(err)
			}
			t := rec.Finish(uops)
			b.ResetTimer()
			for i := 0; i < b.N; i += pairs {
				m := core.New(abi.Purecap)
				if err := replay.Run(m, t); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// guarded names the benchmarks the -compare gate enforces: the
// simulator's end-to-end hot paths (live interpretation, the cached
// session run, the replay fast path). The component micro-benchmarks are
// exported for trend tracking but not gated — they are too small to
// measure stably on shared CI runners.
var guarded = []string{"MachineLoadStore", "SessionTelemetryOff", "ReplayLoadStore"}

// compareMain re-measures the guarded benchmarks and gates them against
// the committed snapshot at path: ns/op may not regress beyond tol
// (fractional), and allocs/op may not grow at all. Returns the process
// exit code.
func compareMain(path string, tol float64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-export:", err)
		return 1
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench-export: %s: %v\n", path, err)
		return 1
	}
	baseline := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}

	all := substrate()
	code := 0
	for _, name := range guarded {
		want, ok := baseline[name]
		if !ok {
			fmt.Printf("%-22s not in %s; skipped\n", name, path)
			continue
		}
		var fn func(*testing.B)
		for _, b := range all {
			if b.name == name {
				fn = b.fn
			}
		}
		if fn == nil {
			fmt.Fprintf(os.Stderr, "bench-export: guarded benchmark %s not implemented\n", name)
			return 1
		}
		got := measure(name, fn)
		ratio := got.NsPerOp / want.NsPerOp
		verdict := "ok"
		if got.NsPerOp > want.NsPerOp*(1+tol) {
			verdict = fmt.Sprintf("REGRESSION (> %+.0f%% allowed)", tol*100)
			code = 1
		}
		if got.AllocsPerOp > want.AllocsPerOp {
			verdict = fmt.Sprintf("ALLOC REGRESSION (%d -> %d allocs/op)", want.AllocsPerOp, got.AllocsPerOp)
			code = 1
		}
		fmt.Printf("%-22s %10.1f ns/op vs %10.1f baseline  (%+5.1f%%)  %s\n",
			name, got.NsPerOp, want.NsPerOp, (ratio-1)*100, verdict)
	}
	return code
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-export:", err)
	os.Exit(1)
}
