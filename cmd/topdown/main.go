// Command topdown runs one workload under every ABI and prints the
// hierarchical top-down comparison — the §4.4 drill-down for arbitrary
// workloads.
//
// Usage:
//
//	topdown -workload 520.omnetpp_r
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/metrics"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "workload name")
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()
	if *wl == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topdown:", err)
		os.Exit(1)
	}

	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "abi\ttime(s)\tIPC\tretiring\tbadspec\tfrontend\tbackend\tmemory\tL1\tL2\textmem\tcore\tdominant")
	for _, a := range abi.All() {
		m, err := workloads.Execute(w, a, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topdown: %s faulted: %v\n", a, err)
		}
		mm := metrics.Compute(&m.C)
		td := topdown.Analyze(&m.C)
		fmt.Fprintf(tw, "%s\t%.4f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%s\n",
			a, mm.Seconds, mm.IPC, td.Retiring, td.BadSpec, td.FrontendBound, td.BackendBound,
			td.MemoryBound, td.L1Bound, td.L2Bound, td.ExtMemBound, td.CoreBound,
			td.DominantBottleneck())
	}
	tw.Flush()
}
