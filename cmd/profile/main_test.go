package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"cherisim/internal/workloads"
)

// TestCompareProfiles pins the -compare report's shape: a header with all
// three ABI columns, rows sorted by purecap share descending, shares that
// parse as percentages, and a delta column consistent with the hybrid and
// purecap cells.
func TestCompareProfiles(t *testing.T) {
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compareProfiles(&buf, w, 1, 10, 65536); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("compare output too short:\n%s", buf.String())
	}
	header := strings.Fields(lines[0])
	want := []string{"function", "hybrid%", "benchmark%", "purecap%", "delta"}
	if len(header) != len(want) {
		t.Fatalf("header %v, want %v", header, want)
	}
	for i := range want {
		if header[i] != want[i] {
			t.Fatalf("header %v, want %v", header, want)
		}
	}
	prev := 101.0
	for _, ln := range lines[1:] {
		f := strings.Fields(ln)
		if len(f) != 5 {
			t.Fatalf("row %q has %d columns, want 5", ln, len(f))
		}
		hy := parsePct(t, f[1])
		bench := parsePct(t, f[2])
		pure := parsePct(t, f[3])
		delta, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			t.Fatalf("bad delta %q in %q", f[4], ln)
		}
		for _, v := range []float64{hy, bench, pure} {
			if v < 0 || v > 100 {
				t.Fatalf("share %v out of range in %q", v, ln)
			}
		}
		if pure > prev {
			t.Fatalf("rows not sorted by purecap share: %v after %v", pure, prev)
		}
		prev = pure
		// delta prints at the same precision as its operands; allow one
		// rounding step of disagreement.
		if got := pure - hy; got-delta > 0.11 || delta-got > 0.11 {
			t.Fatalf("delta %v inconsistent with purecap−hybrid = %v in %q", delta, got, ln)
		}
	}
}

// TestCompareProfilesTop checks the top truncation bound.
func TestCompareProfilesTop(t *testing.T) {
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compareProfiles(&buf, w, 1, 2, 65536); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("top=2 printed %d lines:\n%s", len(lines), buf.String())
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}
