// Command profile runs a workload under an ABI and prints the per-function
// cycle profile — the simulator's analogue of pmcstat's sampling mode
// (§3.2; the paper's profiling work surfaced CheriBSD bug #2391 in that
// path). Comparing profiles across ABIs shows *where* CHERI's overhead
// lands: e.g. under purecap, QuickJS's opcode handlers and xalancbmk's
// virtual DOM accessors absorb disproportionally more cycles.
//
// Usage:
//
//	profile -workload quickjs -abi purecap -top 10
//	profile -workload 523.xalancbmk_r -compare
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "workload name")
	abiName := flag.String("abi", "purecap", "ABI: hybrid | benchmark | purecap")
	scale := flag.Int("scale", 1, "workload scale factor")
	top := flag.Int("top", 15, "number of functions to report")
	period := flag.Uint64("period", 65536, "sampling period in cycles")
	compare := flag.Bool("compare", false, "print per-function share comparison across all three ABIs")
	flag.Parse()
	if *wl == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}

	if *compare {
		if err := compareProfiles(os.Stdout, w, *scale, *top, *period); err != nil {
			fatal(err)
		}
		return
	}

	a, err := abi.Parse(*abiName)
	if err != nil {
		fatal(err)
	}
	m, err := workloads.Execute(w, a, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profile: workload faulted (partial profile follows): %v\n", err)
	}
	fmt.Printf("%s under %s — %d cycles\n\n", w.Name, a, m.Cycles())
	fmt.Print(core.FormatProfile(m.Profile(*period), *top))
}

// compareProfiles renders the per-function share comparison: one row per
// function with its cycle share under each ABI, sorted by purecap share
// descending (name tiebreak), truncated to top rows.
func compareProfiles(out io.Writer, w *workloads.Workload, scale, top int, period uint64) error {
	shares := map[string]*[3]float64{}
	for _, a := range abi.All() {
		m, err := workloads.Execute(w, a, scale)
		if err != nil {
			return err
		}
		for _, p := range m.Profile(period) {
			e := shares[p.Name]
			if e == nil {
				e = &[3]float64{}
				shares[p.Name] = e
			}
			e[a] += p.Share
		}
	}
	names := make([]string, 0, len(shares))
	for n := range shares {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		si, sj := shares[names[i]][abi.Purecap], shares[names[j]][abi.Purecap]
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	if top >= 0 && len(names) > top {
		names = names[:top]
	}

	tw := tabwriter.NewWriter(out, 1, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "function\thybrid%%\tbenchmark%%\tpurecap%%\tdelta\n")
	for _, n := range names {
		e := shares[n]
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%+.1f\n",
			n, e[abi.Hybrid]*100, e[abi.Benchmark]*100, e[abi.Purecap]*100,
			(e[abi.Purecap]-e[abi.Hybrid])*100)
	}
	return tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
