// Command profile runs a workload under an ABI and prints the per-function
// cycle profile — the simulator's analogue of pmcstat's sampling mode
// (§3.2; the paper's profiling work surfaced CheriBSD bug #2391 in that
// path). Comparing profiles across ABIs shows *where* CHERI's overhead
// lands: e.g. under purecap, QuickJS's opcode handlers and xalancbmk's
// virtual DOM accessors absorb disproportionally more cycles.
//
// Usage:
//
//	profile -workload quickjs -abi purecap -top 10
//	profile -workload 523.xalancbmk_r -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "workload name")
	abiName := flag.String("abi", "purecap", "ABI: hybrid | benchmark | purecap")
	scale := flag.Int("scale", 1, "workload scale factor")
	top := flag.Int("top", 15, "number of functions to report")
	period := flag.Uint64("period", 65536, "sampling period in cycles")
	compare := flag.Bool("compare", false, "print hybrid-vs-purecap share comparison")
	flag.Parse()
	if *wl == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}

	if *compare {
		compareProfiles(w, *scale, *top, *period)
		return
	}

	a, err := abi.Parse(*abiName)
	if err != nil {
		fatal(err)
	}
	m, err := workloads.Execute(w, a, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profile: workload faulted (partial profile follows): %v\n", err)
	}
	fmt.Printf("%s under %s — %d cycles\n\n", w.Name, a, m.Cycles())
	fmt.Print(core.FormatProfile(m.Profile(*period), *top))
}

func compareProfiles(w *workloads.Workload, scale, top int, period uint64) {
	type entry struct{ hybrid, purecap float64 }
	shares := map[string]*entry{}
	collect := func(a abi.ABI, set func(e *entry, v float64)) {
		m, err := workloads.Execute(w, a, scale)
		if err != nil {
			fatal(err)
		}
		for _, p := range m.Profile(period) {
			e := shares[p.Name]
			if e == nil {
				e = &entry{}
				shares[p.Name] = e
			}
			set(e, p.Share)
		}
	}
	collect(abi.Hybrid, func(e *entry, v float64) { e.hybrid += v })
	collect(abi.Purecap, func(e *entry, v float64) { e.purecap += v })

	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "function\thybrid%%\tpurecap%%\tdelta\n")
	printed := 0
	// Sort by purecap share descending via simple selection (small sets).
	for printed < top && len(shares) > 0 {
		bestName, best := "", -1.0
		for n, e := range shares {
			if e.purecap > best {
				bestName, best = n, e.purecap
			}
		}
		e := shares[bestName]
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f\n", bestName, e.hybrid*100, e.purecap*100, (e.purecap-e.hybrid)*100)
		delete(shares, bestName)
		printed++
	}
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profile:", err)
	os.Exit(1)
}
