// Command pmcstat mirrors the CheriBSD pmcstat workflow the paper uses
// (§3.2): the PMU exposes six programmable counters plus the fixed cycle
// counter, so collecting a larger event set requires re-running the
// (deterministic) benchmark once per counter group. The tool builds the
// multiplexing plan, performs the runs, and merges the captured counters
// into one report — nine runs for the paper's full event set.
//
// Usage:
//
//	pmcstat -workload sqlite -abi purecap \
//	    -events INST_RETIRED,LD_SPEC,ST_SPEC,CAP_MEM_ACCESS_RD
//	pmcstat -workload quickjs -abi purecap -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "workload name")
	abiName := flag.String("abi", "purecap", "ABI: hybrid | benchmark | purecap")
	scale := flag.Int("scale", 1, "workload scale factor")
	eventsArg := flag.String("events", "", "comma-separated PMU event names")
	full := flag.Bool("full", false, "collect the full event set")
	showPlan := flag.Bool("plan", false, "print the multiplexing plan only")
	sample := flag.Bool("S", false, "sampling mode: per-function cycle samples (pmcstat -S)")
	period := flag.Uint64("period", 65536, "sampling period in cycles (with -S)")
	flag.Parse()

	if *wl != "" && *sample {
		runSampling(*wl, *abiName, *scale, *period)
		return
	}
	if *wl == "" || (*eventsArg == "" && !*full) {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	a, err := abi.Parse(*abiName)
	if err != nil {
		fatal(err)
	}

	var events []pmu.Event
	if *full {
		events = pmu.AllEvents()
	} else {
		for _, name := range strings.Split(*eventsArg, ",") {
			e, err := pmu.ParseEvent(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			events = append(events, e)
		}
	}

	plan := pmu.BuildPlan(events)
	fmt.Printf("# %d events, %d programmable slots -> %d runs\n", len(plan.Events()), pmu.Slots, plan.Runs())
	if *showPlan {
		for i, group := range plan {
			names := make([]string, len(group))
			for j, e := range group {
				names[j] = e.String()
			}
			fmt.Printf("run %d: %s\n", i+1, strings.Join(names, ", "))
		}
		return
	}

	// One benchmark execution per counter group; the workload is
	// deterministic, so per-run captures compose into one sample set.
	merged := map[pmu.Event]uint64{}
	var cycles uint64
	for i, group := range plan {
		file, err := pmu.NewCounterFile(group...)
		if err != nil {
			fatal(err)
		}
		m, err := workloads.Execute(w, a, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmcstat: run %d faulted: %v\n", i+1, err)
		}
		file.Capture(&m.C)
		for _, e := range group {
			v, err := file.Read(e)
			if err != nil {
				fatal(err)
			}
			merged[e] = v
		}
		cyc, _ := file.Read(pmu.CPU_CYCLES)
		cycles = cyc
	}

	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "CPU_CYCLES\t%d\n", cycles)
	for _, e := range plan.Events() {
		fmt.Fprintf(tw, "%s\t%d\n", e, merged[e])
	}
	tw.Flush()
}

// runSampling is the pmcstat -S analogue: attribute cycle samples to
// functions (the workflow whose CheriBSD implementation the paper's
// profiling surfaced a bug in, CTSRD-CHERI/cheribsd#2391).
func runSampling(wl, abiName string, scale int, period uint64) {
	w, err := workloads.ByName(wl)
	if err != nil {
		fatal(err)
	}
	a, err := abi.Parse(abiName)
	if err != nil {
		fatal(err)
	}
	m, err := workloads.Execute(w, a, scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pmcstat: workload faulted (partial samples follow): %v\n", err)
	}
	fmt.Printf("# sampling %s/%s, period %d cycles, %d total cycles\n", w.Name, a, period, m.Cycles())
	fmt.Print(core.FormatProfile(m.Profile(period), 20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmcstat:", err)
	os.Exit(1)
}
