// Command calibrate prints the simulator's per-workload characterization
// next to the paper's reference values, for tuning workload kernels. It is
// a development tool; the user-facing regenerators live in
// cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor")
	one := flag.String("w", "", "run a single workload")
	flag.Parse()

	tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tMI(hy)\tpaperMI\tbench/hy\tpure/hy\tinstR\tipcR\tcapLD%\tcapSD%\tL1D%\tL2%\tL1I%\tbrMR%\tFE%\tBE%\tMuops")
	for _, w := range workloads.All() {
		if *one != "" && w.Name != *one {
			continue
		}
		var secs, insts, ipcs [3]float64
		var hyMI, capLD, capSD, l1d, l2, l1i, brmr, fe, be, inst float64
		for i, a := range abi.All() {
			m, err := workloads.Execute(w, a, *scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", w.Name, a, err)
				continue
			}
			mm := metrics.Compute(&m.C)
			secs[i] = mm.Seconds
			insts[i] = float64(m.C.Get(pmu.INST_RETIRED))
			ipcs[i] = mm.IPC
			if a == abi.Hybrid {
				hyMI = mm.MemoryIntensity
				l1i = mm.L1IMR * 100
				brmr = mm.BranchMR * 100
			}
			if a == abi.Purecap {
				capLD = mm.CapLoadDensity * 100
				capSD = mm.CapStoreDensity * 100
				l1d = mm.L1DMR * 100
				l2 = mm.L2MR * 100
				fe = mm.FrontendBound * 100
				be = mm.BackendBound * 100
				inst = float64(m.C.Get(pmu.INST_RETIRED)) / 1e6
			}
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.2f\t%.2f\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f\t%.2f\n",
			w.Name, hyMI, w.PaperMI, secs[1]/secs[0], secs[2]/secs[0],
			insts[2]/insts[0], ipcs[2]/ipcs[0],
			capLD, capSD, l1d, l2, l1i, brmr, fe, be, inst)
	}
	tw.Flush()
}
