// Command experiments regenerates the paper's tables and figures on the
// simulated Morello platform.
//
// Usage:
//
//	experiments -list            # enumerate experiments
//	experiments -run fig1        # regenerate one artefact
//	experiments -all             # regenerate everything
//	experiments -all -scale 3    # run workloads at 3x length
package main

import (
	"flag"
	"fmt"
	"os"

	"cherisim/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %-14s %s\n", e.ID, e.Section, e.Title)
		}
	case *run != "":
		e, err := experiments.ByID(*run)
		if err != nil {
			fatal(err)
		}
		s := experiments.NewSession(*scale)
		out, err := e.Run(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s (%s) ==\n%s\n", e.Title, e.Section, out)
	case *all:
		s := experiments.NewSession(*scale)
		for _, e := range experiments.All() {
			out, err := e.Run(s)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
			fmt.Printf("== %s: %s (%s) ==\n%s\n", e.ID, e.Title, e.Section, out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
