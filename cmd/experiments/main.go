// Command experiments regenerates the paper's tables and figures on the
// simulated Morello platform.
//
// Usage:
//
//	experiments -list            # enumerate experiments
//	experiments -run fig1        # regenerate one artefact
//	experiments -all             # regenerate everything
//	experiments -all -scale 3    # run workloads at 3x length
//	experiments -all -jobs 8     # fan the measurement campaign over 8 workers
//
// The (workload, ABI) measurement grid is prefetched across a worker pool
// of -jobs simulated machines before rendering; because every run is
// deterministic and isolated, the rendered output is byte-identical for
// any -jobs value (including the fully serial -jobs 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cherisim/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 1, "workload scale factor")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"max concurrently simulated workloads (1 = serial; capped at GOMAXPROCS)")
	flag.Parse()

	newSession := func() *experiments.Session {
		s := experiments.NewSession(*scale)
		s.Jobs = *jobs
		return s
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %-14s %s\n", e.ID, e.Section, e.Title)
		}
	case *run != "":
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; available:\n", *run)
			for _, e := range experiments.All() {
				fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.ID, e.Title)
			}
			os.Exit(1)
		}
		s := newSession()
		if e.Pairs != nil {
			s.Prefetch(e.Pairs())
		}
		out, err := e.Run(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s (%s) ==\n%s\n", e.Title, e.Section, out)
	case *all:
		s := newSession()
		// Execute the union of every experiment's measurement grid across
		// the worker pool up front; rendering below then only reads the
		// cache, so output order and bytes match the serial path exactly.
		s.Prefetch(experiments.UnionPairs(experiments.All()))
		for _, e := range experiments.All() {
			out, err := e.Run(s)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
			fmt.Printf("== %s: %s (%s) ==\n%s\n", e.ID, e.Title, e.Section, out)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
