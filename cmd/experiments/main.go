// Command experiments regenerates the paper's tables and figures on the
// simulated Morello platform.
//
// Usage:
//
//	experiments -list            # enumerate experiments
//	experiments -run fig1        # regenerate one artefact
//	experiments -all             # regenerate everything
//	experiments -all -scale 3    # run workloads at 3x length
//	experiments -all -jobs 8     # fan the measurement campaign over 8 workers
//
// Chaos mode injects deterministic capability faults into every run:
//
//	experiments -run resilience -chaos-seed 7   # seeded crash-matrix sweep
//	experiments -all -chaos all                 # inject into the whole campaign
//	experiments -all -chaos tag-clear,perm-drop -chaos-rate 200
//	experiments -all -deadline 50000000         # per-run µop watchdog budget
//
// The security gate runs the memory-safety attack corpus and checks every
// per-ABI verdict against its expected-outcome spec (exit 1 on divergence):
//
//	experiments -run security                   # full corpus x 3 ABIs
//	experiments -run security -attacks uaf,oob-write
//
// Observability turns the measurement lens back on the engine itself:
//
//	experiments -all -trace-out trace.json      # Perfetto-loadable timeline
//	experiments -all -jobs 4 -http :8080        # /metrics /spans /healthz /debug/pprof
//	experiments -all -log-level info -log-json  # structured slog on stderr
//
// The persistent result store turns re-runs into campaign resumes, and the
// golden baseline turns "no figure moved" into an enforced gate:
//
//	experiments -all -store .cherisim-store     # cold: simulate + persist
//	experiments -all -store .cherisim-store     # warm: zero simulations
//	experiments -baseline testdata/golden-scale1.json -update-baseline
//	experiments -baseline testdata/golden-scale1.json   # exit 1 on drift
//
// The (workload, ABI) measurement grid is prefetched across a worker pool
// of -jobs simulated machines before rendering; because every run is
// deterministic and isolated, the rendered output is byte-identical for
// any -jobs value (including the fully serial -jobs 1). With -chaos off
// the output is also byte-identical to a chaos-unaware build; the campaign
// is supervised either way, so a crashing or runaway workload degrades its
// experiment into the error summary instead of aborting the process. The
// same holds for telemetry: with the flags above unset the engine is
// unobserved and inert, and enabling them never changes what is measured —
// spans, metrics and traces ride the supervisor, not the machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"cherisim/internal/abi"
	"cherisim/internal/attacks"
	"cherisim/internal/experiments"
	"cherisim/internal/faultinject"
	"cherisim/internal/golden"
	"cherisim/internal/profile"
	"cherisim/internal/resultstore"
	"cherisim/internal/soc"
	"cherisim/internal/telemetry"
	"cherisim/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 1, "workload scale factor")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"max concurrently simulated workloads (1 = serial; capped at GOMAXPROCS)")
	chaos := flag.String("chaos", "",
		`inject capability faults into every run: "all" or comma-separated kinds (tag-clear, line-corrupt, bounds-truncate, perm-drop, spurious-trap)`)
	chaosSeed := flag.Uint64("chaos-seed", 1, "campaign seed for the deterministic fault injector")
	chaosRate := flag.Float64("chaos-rate", 400, "injected events per million µops when -chaos is set")
	checkFlag := flag.Bool("check", false,
		"run every measurement under the lockstep reference-model checker (slower; divergences are reported on stderr and fail the exit code)")
	deadline := flag.Int64("deadline", 0, "per-run µop watchdog budget (0 = unlimited)")
	retries := flag.Int("retries", 2, "bounded retries for transient injected faults")
	attacksFlag := flag.String("attacks", "",
		"comma-separated attack names restricting the security experiment (requires -run security)")
	topologyFlag := flag.String("topology", "",
		"comma-separated fabric topologies (mesh, ring) for the scale experiment (requires -run scale)")
	coresFlag := flag.String("cores", "",
		"comma-separated fabric core counts for the scale experiment (requires -run scale)")
	flameOut := flag.String("flame-out", "",
		"write the hotspot profiles as folded flamegraph stacks to this file (requires -run hotspots)")
	pprofOut := flag.String("pprof-out", "",
		"write the hotspot profiles as a gzipped pprof protobuf to this file (requires -run hotspots)")
	traceOut := flag.String("trace-out", "",
		"write the campaign timeline as Chrome trace-event JSON (load at ui.perfetto.dev)")
	httpAddr := flag.String("http", "",
		"serve ops endpoints (/metrics, /spans, /healthz, /debug/pprof) on this address during the campaign")
	logLevel := flag.String("log-level", "",
		"emit structured logs on stderr at this level (debug, info, warn, error; empty = silent)")
	logJSON := flag.Bool("log-json", false, "structured logs as JSON lines instead of text")
	noReplay := flag.Bool("no-replay", false,
		"disable the record-and-replay fast path: execute every kernel live (see README's Fast path section)")
	storeDir := flag.String("store", "",
		"persistent result-store directory: serve cached runs from it and persist new ones (campaign resume)")
	baselinePath := flag.String("baseline", "",
		"golden baseline file: gate the campaign's metric vectors against it (non-zero exit on drift)")
	updateBaseline := flag.Bool("update-baseline", false,
		"regenerate the -baseline file from this campaign instead of gating against it")
	flag.Parse()

	cfg, err := sessionConfig(*jobs, *chaos, *chaosRate, *chaosSeed, *deadline, *retries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	experiments.SetReplayEnabled(!*noReplay)
	var attackNames []string
	if *attacksFlag != "" {
		if *run != "security" {
			fmt.Fprintln(os.Stderr, "experiments: -attacks only applies to the security experiment (use -run security)")
			os.Exit(2)
		}
		attackNames = strings.Split(*attacksFlag, ",")
		if _, err := attacks.Select(attackNames); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	topoNames, coreCounts, err := scaleConfig(*topologyFlag, *coresFlag, *run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if (*flameOut != "" || *pprofOut != "") && *run != "hotspots" {
		fmt.Fprintln(os.Stderr, "experiments: -flame-out/-pprof-out only apply to the hotspots experiment (use -run hotspots)")
		os.Exit(2)
	}
	if err := baselineConfig(*baselinePath, *updateBaseline, *run); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	var store *resultstore.Store
	if *storeDir != "" {
		if store, err = resultstore.Open(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
	}
	hub, ops, err := setupTelemetry(*traceOut, *httpAddr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if ops != nil {
		fmt.Fprintf(os.Stderr, "experiments: ops endpoints at http://%s (/metrics /spans /healthz /debug/pprof)\n", ops.Addr)
	}

	newSession := func() *experiments.Session {
		s := experiments.NewSession(*scale)
		cfg.apply(s)
		s.Telemetry = hub
		s.Check = *checkFlag
		s.Store = store
		s.Attacks = attackNames
		s.Topologies = topoNames
		s.CoreCounts = coreCounts
		return s
	}
	reportStore := func() {
		if store != nil {
			fmt.Fprintf(os.Stderr, "experiments: store: %s\n", store.Stats())
		}
		reportReplay(os.Stderr)
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %-14s %s\n", e.ID, e.Section, e.Title)
		}
	case *run != "":
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; available:\n", *run)
			for _, e := range experiments.All() {
				fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.ID, e.Title)
			}
			os.Exit(1)
		}
		s := newSession()
		if e.Pairs != nil {
			s.Prefetch(e.Pairs())
		}
		out, err := e.Run(s)
		if err == nil {
			// Exports reuse the render's cached profiles: every ProfileRun
			// below is a singleflight hit, no extra simulation.
			if xerr := writeProfileExports(s, *flameOut, *pprofOut, os.Stderr); xerr != nil {
				err = xerr
			}
		}
		teardownTelemetry(s, hub, ops, *traceOut)
		reportStore()
		code := reportCheck(s, os.Stderr)
		// A gate experiment (security) renders its matrix and returns an
		// error for the exit code: print what rendered before failing.
		if out != "" {
			fmt.Printf("== %s (%s) ==\n%s\n", e.Title, e.Section, out)
		}
		if err != nil {
			fatal(err)
		}
		if code != 0 {
			os.Exit(code)
		}
	case *all:
		// Degraded-mode campaign: render every experiment that succeeds,
		// summarise the rest, and reflect failures in the exit code.
		s := newSession()
		code := runCampaign(s, os.Stdout, os.Stderr)
		if *baselinePath != "" {
			if c := gateBaseline(s, hub, *baselinePath, *updateBaseline, os.Stderr); c != 0 {
				code = c
			}
		}
		teardownTelemetry(s, hub, ops, *traceOut)
		reportStore()
		if c := reportCheck(s, os.Stderr); c != 0 {
			code = c
		}
		if code != 0 {
			os.Exit(code)
		}
	case *baselinePath != "":
		// Standalone gate (or capture): run the measurement grid, compare
		// (or write) the golden baseline — the CI regression check.
		s := newSession()
		code := gateBaseline(s, hub, *baselinePath, *updateBaseline, os.Stderr)
		teardownTelemetry(s, hub, ops, *traceOut)
		reportStore()
		if c := reportCheck(s, os.Stderr); c != 0 {
			code = c
		}
		if code != 0 {
			os.Exit(code)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// scaleConfig validates the scale-experiment sweep flags before any work
// runs: both only apply to -run scale, topology names must parse, and
// core counts must be positive integers within the fabric's range.
func scaleConfig(topology, cores, run string) (topos []string, counts []int, err error) {
	if topology == "" && cores == "" {
		return nil, nil, nil
	}
	if run != "scale" {
		return nil, nil, fmt.Errorf("-topology/-cores only apply to the scale experiment (use -run scale)")
	}
	if topology != "" {
		for _, tp := range strings.Split(topology, ",") {
			kind, err := soc.ParseTopologyKind(tp)
			if err != nil {
				return nil, nil, err
			}
			topos = append(topos, kind)
		}
	}
	if cores != "" {
		for _, c := range strings.Split(cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				return nil, nil, fmt.Errorf("-cores: %q is not an integer", c)
			}
			if n < 1 || n > soc.MaxCores {
				return nil, nil, fmt.Errorf("-cores: count %d outside [1, %d]", n, soc.MaxCores)
			}
			counts = append(counts, n)
		}
	}
	return topos, counts, nil
}

// baselineConfig validates the golden-gate flag combinations before any
// work runs: the updater needs a file to write, and the gate compares the
// full measurement grid, which a single -run does not populate.
func baselineConfig(baseline string, update bool, run string) error {
	if update && baseline == "" {
		return fmt.Errorf("-update-baseline requires -baseline FILE")
	}
	if baseline != "" && run != "" {
		return fmt.Errorf("-baseline gates the full measurement grid; it cannot be combined with -run (use -all or -baseline alone)")
	}
	return nil
}

// gateBaseline runs the golden-baseline regression gate against s (or,
// with update set, recaptures the baseline file). Returns the exit-code
// contribution: 1 when any metric drifted out of tolerance, 0 otherwise.
func gateBaseline(s *experiments.Session, hub *telemetry.Hub, path string, update bool, stderr io.Writer) int {
	snap := s.MetricSnapshot()
	if update {
		b := golden.New(resultstore.ModelFingerprint(), s.Scale, snap)
		if err := b.Write(path); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		fmt.Fprintf(stderr, "experiments: baseline: wrote %d pairs to %s (model %s)\n",
			len(snap), path, resultstore.ModelFingerprint())
		return 0
	}
	b, err := golden.Load(path)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if b.Scale != s.Scale {
		fmt.Fprintf(stderr, "experiments: baseline: %s was captured at -scale %d, this campaign runs -scale %d; refusing to compare\n",
			path, b.Scale, s.Scale)
		return 1
	}
	if b.Model != resultstore.ModelFingerprint() {
		fmt.Fprintf(stderr, "experiments: baseline: warning: %s was captured under model %s, this simulator is %s; drifts below may reflect the model change (regenerate with -update-baseline)\n",
			path, b.Model, resultstore.ModelFingerprint())
	}
	drifts := b.Diff(snap)
	if hub.Enabled() {
		hub.Metrics.Counter("golden_drift").Add(int64(len(drifts)))
	}
	if len(drifts) == 0 {
		fmt.Fprintf(stderr, "experiments: baseline: %d pairs within tolerance of %s\n", len(b.Entries), path)
		return 0
	}
	fmt.Fprintf(stderr, "experiments: baseline: %d drifts from %s:\n", len(drifts), path)
	for _, d := range drifts {
		fmt.Fprintf(stderr, "  %s\n", d)
	}
	return 1
}

// reportCheck summarizes the session's lockstep checker results on w and
// returns the exit code contribution: 0 when checking is off or every
// checked operation agreed with the reference models, 1 on divergence.
func reportCheck(s *experiments.Session, w io.Writer) int {
	defer s.CloseCheck()
	rep := s.CheckReport()
	if rep.Accesses == 0 && rep.Divergences == 0 {
		return 0
	}
	fmt.Fprintf(w, "experiments: check: %d operations verified against the reference models, %d divergences\n",
		rep.Accesses, rep.Divergences)
	if rep.Divergences == 0 {
		return 0
	}
	for _, d := range rep.First {
		fmt.Fprintf(w, "experiments: check: %s\n", d)
	}
	if extra := rep.Divergences - uint64(len(rep.First)); extra > 0 {
		fmt.Fprintf(w, "experiments: check: ... and %d more divergences\n", extra)
	}
	return 1
}

// reportReplay summarizes the record-and-replay fast path's campaign
// counters on w; silent when the fast path never engaged (disabled, or a
// fully supervised campaign).
func reportReplay(w io.Writer) {
	st := experiments.ReplayStats()
	if st.Records == 0 && st.Replays == 0 {
		return
	}
	fmt.Fprintf(w, "experiments: replay: %d streams recorded (%d blocks, %d bytes), %d replays served %d fast-path µops",
		st.Records, st.Blocks, st.Bytes, st.Replays, st.FastpathUops)
	if st.Rejected > 0 {
		fmt.Fprintf(w, ", %d recordings over budget", st.Rejected)
	}
	fmt.Fprintln(w)
}

// runCampaign renders every experiment against s in degraded mode, writes
// the failure summary to stderr, and returns the process exit code: each
// failed experiment appears in the summary exactly once.
func runCampaign(s *experiments.Session, stdout, stderr io.Writer) int {
	failed := experiments.RenderAll(s, stdout)
	if len(failed) == 0 {
		return 0
	}
	fmt.Fprintf(stderr, "experiments: %d of %d experiments failed:\n", len(failed), len(experiments.Renderable()))
	for _, f := range failed {
		fmt.Fprintf(stderr, "  %-20s %v\n", f.ID, f.Err)
	}
	return 1
}

// setupTelemetry builds the hub implied by the observability flags: nil
// (fully inert engine) when none is set, otherwise a hub with the
// requested logger and, for -http, a live ops server.
func setupTelemetry(traceOut, httpAddr, logLevel string, logJSON bool) (*telemetry.Hub, *telemetry.OpsServer, error) {
	if traceOut == "" && httpAddr == "" && logLevel == "" {
		return nil, nil, nil
	}
	hub := telemetry.New()
	log, err := telemetry.NewLogger(os.Stderr, logLevel, logJSON)
	if err != nil {
		return nil, nil, err
	}
	hub.Log = log
	var ops *telemetry.OpsServer
	if httpAddr != "" {
		if ops, err = telemetry.StartOps(httpAddr, hub); err != nil {
			return nil, nil, err
		}
	}
	return hub, ops, nil
}

// teardownTelemetry flushes the campaign's telemetry: ends the campaign
// span, writes the -trace-out file, and stops the ops server.
func teardownTelemetry(s *experiments.Session, hub *telemetry.Hub, ops *telemetry.OpsServer, traceOut string) {
	if s != nil {
		s.FinishTelemetry()
	}
	if hub != nil && traceOut != "" {
		if err := writeTraceFile(traceOut, hub); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		} else {
			fmt.Fprintf(os.Stderr, "experiments: wrote trace to %s (%d spans; load at ui.perfetto.dev)\n",
				traceOut, hub.Spans.Total())
		}
	}
	ops.Close()
}

// writeProfileExports renders the hotspot campaign's attribution profiles
// as folded flamegraph stacks (-flame-out) and/or a gzipped pprof protobuf
// (-pprof-out). A no-op when neither flag is set.
func writeProfileExports(s *experiments.Session, flameOut, pprofOut string, stderr io.Writer) error {
	if flameOut == "" && pprofOut == "" {
		return nil
	}
	profs, err := s.HotspotProfiles()
	if err != nil {
		return err
	}
	if flameOut != "" {
		f, err := os.Create(flameOut)
		if err != nil {
			return err
		}
		for _, w := range workloads.TopDownSet() {
			for _, a := range abi.All() {
				if err := profile.WriteFolded(f, w.Name, a, profs[w.Name][a]); err != nil {
					f.Close()
					return err
				}
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "experiments: wrote folded flamegraph stacks to %s\n", flameOut)
	}
	if pprofOut != "" {
		var pw profile.Pprof
		for _, w := range workloads.TopDownSet() {
			for _, a := range abi.All() {
				pw.Add(w.Name, a, profs[w.Name][a])
			}
		}
		f, err := os.Create(pprofOut)
		if err != nil {
			return err
		}
		if err := pw.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "experiments: wrote pprof profile to %s (%d samples; go tool pprof %s)\n",
			pprofOut, pw.SampleCount(), pprofOut)
	}
	return nil
}

// writeTraceFile exports the hub's spans as Chrome trace-event JSON.
func writeTraceFile(path string, hub *telemetry.Hub) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteTrace(f, hub.Spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sessionCfg is the validated supervisor configuration applied to every
// session the command builds.
type sessionCfg struct {
	jobs     int
	chaos    *faultinject.Config
	seed     uint64
	deadline uint64
	retries  int
}

// sessionConfig validates the CLI inputs: negative -jobs, -chaos-rate,
// -deadline or -retries and unknown -chaos fault kinds are rejected with a
// clear error before any work runs.
func sessionConfig(jobs int, chaos string, rate float64, seed uint64, deadline int64, retries int) (*sessionCfg, error) {
	if jobs < 0 {
		return nil, fmt.Errorf("-jobs must be >= 0, got %d", jobs)
	}
	if retries < 0 {
		return nil, fmt.Errorf("-retries must be >= 0, got %d", retries)
	}
	if deadline < 0 {
		return nil, fmt.Errorf("-deadline must be >= 0, got %d", deadline)
	}
	if rate < 0 {
		return nil, fmt.Errorf("-chaos-rate must be >= 0, got %g", rate)
	}
	cfg := &sessionCfg{jobs: jobs, seed: seed, deadline: uint64(deadline), retries: retries}
	if chaos != "" {
		if rate == 0 {
			return nil, fmt.Errorf("-chaos-rate must be > 0 when -chaos is set, got %g", rate)
		}
		kinds, err := faultinject.ParseKinds(chaos)
		if err != nil {
			return nil, err
		}
		cfg.chaos = &faultinject.Config{Seed: seed, RatePerMUops: rate, Kinds: kinds}
	}
	return cfg, nil
}

// apply installs the configuration on a fresh session.
func (c *sessionCfg) apply(s *experiments.Session) {
	s.Jobs = c.jobs
	s.Chaos = c.chaos
	s.ChaosSeed = c.seed
	s.DeadlineUops = c.deadline
	s.Retries = c.retries
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
