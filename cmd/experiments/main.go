// Command experiments regenerates the paper's tables and figures on the
// simulated Morello platform.
//
// Usage:
//
//	experiments -list            # enumerate experiments
//	experiments -run fig1        # regenerate one artefact
//	experiments -all             # regenerate everything
//	experiments -all -scale 3    # run workloads at 3x length
//	experiments -all -jobs 8     # fan the measurement campaign over 8 workers
//
// Chaos mode injects deterministic capability faults into every run:
//
//	experiments -run resilience -chaos-seed 7   # seeded crash-matrix sweep
//	experiments -all -chaos all                 # inject into the whole campaign
//	experiments -all -chaos tag-clear,perm-drop -chaos-rate 200
//	experiments -all -deadline 50000000         # per-run µop watchdog budget
//
// The (workload, ABI) measurement grid is prefetched across a worker pool
// of -jobs simulated machines before rendering; because every run is
// deterministic and isolated, the rendered output is byte-identical for
// any -jobs value (including the fully serial -jobs 1). With -chaos off
// the output is also byte-identical to a chaos-unaware build; the campaign
// is supervised either way, so a crashing or runaway workload degrades its
// experiment into the error summary instead of aborting the process.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cherisim/internal/experiments"
	"cherisim/internal/faultinject"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "run a single experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 1, "workload scale factor")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0),
		"max concurrently simulated workloads (1 = serial; capped at GOMAXPROCS)")
	chaos := flag.String("chaos", "",
		`inject capability faults into every run: "all" or comma-separated kinds (tag-clear, line-corrupt, bounds-truncate, perm-drop, spurious-trap)`)
	chaosSeed := flag.Uint64("chaos-seed", 1, "campaign seed for the deterministic fault injector")
	chaosRate := flag.Float64("chaos-rate", 400, "injected events per million µops when -chaos is set")
	deadline := flag.Uint64("deadline", 0, "per-run µop watchdog budget (0 = unlimited)")
	retries := flag.Int("retries", 2, "bounded retries for transient injected faults")
	flag.Parse()

	cfg, err := sessionConfig(*jobs, *chaos, *chaosRate, *chaosSeed, *deadline, *retries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	newSession := func() *experiments.Session {
		s := experiments.NewSession(*scale)
		cfg.apply(s)
		return s
	}

	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %-14s %s\n", e.ID, e.Section, e.Title)
		}
	case *run != "":
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q; available:\n", *run)
			for _, e := range experiments.All() {
				fmt.Fprintf(os.Stderr, "  %-20s %s\n", e.ID, e.Title)
			}
			os.Exit(1)
		}
		s := newSession()
		if e.Pairs != nil {
			s.Prefetch(e.Pairs())
		}
		out, err := e.Run(s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s (%s) ==\n%s\n", e.Title, e.Section, out)
	case *all:
		// Degraded-mode campaign: render every experiment that succeeds,
		// summarise the rest, and reflect failures in the exit code.
		failed := experiments.RenderAll(newSession(), os.Stdout)
		if len(failed) > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed:\n", len(failed), len(experiments.All()))
			for _, f := range failed {
				fmt.Fprintf(os.Stderr, "  %-20s %v\n", f.ID, f.Err)
			}
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// sessionCfg is the validated supervisor configuration applied to every
// session the command builds.
type sessionCfg struct {
	jobs     int
	chaos    *faultinject.Config
	seed     uint64
	deadline uint64
	retries  int
}

// sessionConfig validates the CLI inputs: negative -jobs, unknown -chaos
// fault kinds, negative rates/retries are rejected before any work runs.
func sessionConfig(jobs int, chaos string, rate float64, seed uint64, deadline uint64, retries int) (*sessionCfg, error) {
	if jobs < 0 {
		return nil, fmt.Errorf("-jobs must be >= 0, got %d", jobs)
	}
	if retries < 0 {
		return nil, fmt.Errorf("-retries must be >= 0, got %d", retries)
	}
	cfg := &sessionCfg{jobs: jobs, seed: seed, deadline: deadline, retries: retries}
	if chaos != "" {
		if rate <= 0 {
			return nil, fmt.Errorf("-chaos-rate must be > 0, got %g", rate)
		}
		kinds, err := faultinject.ParseKinds(chaos)
		if err != nil {
			return nil, err
		}
		cfg.chaos = &faultinject.Config{Seed: seed, RatePerMUops: rate, Kinds: kinds}
	}
	return cfg, nil
}

// apply installs the configuration on a fresh session.
func (c *sessionCfg) apply(s *experiments.Session) {
	s.Jobs = c.jobs
	s.Chaos = c.chaos
	s.ChaosSeed = c.seed
	s.DeadlineUops = c.deadline
	s.Retries = c.retries
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
