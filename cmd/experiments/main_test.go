package main

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"cherisim/internal/experiments"
	"cherisim/internal/golden"
	"cherisim/internal/resultstore"
)

// TestSessionConfigValidation pins the flag-validation contract: negative
// -jobs, -retries, -deadline and -chaos-rate, a zero rate with chaos
// enabled, and unknown fault kinds are all rejected with a descriptive
// error, while legal configurations build the expected session settings.
func TestSessionConfigValidation(t *testing.T) {
	cases := []struct {
		name     string
		jobs     int
		chaos    string
		rate     float64
		deadline int64
		retries  int
		wantErr  string
	}{
		{name: "negative jobs", jobs: -1, rate: 400, retries: 2, wantErr: "-jobs"},
		{name: "negative retries", rate: 400, retries: -3, wantErr: "-retries"},
		{name: "negative deadline", rate: 400, deadline: -1, retries: 2, wantErr: "-deadline"},
		{name: "negative rate", rate: -0.5, retries: 2, wantErr: "-chaos-rate"},
		{name: "negative rate without chaos", chaos: "", rate: -400, retries: 2, wantErr: "-chaos-rate"},
		{name: "zero rate with chaos", chaos: "all", rate: 0, retries: 2, wantErr: "-chaos-rate"},
		{name: "unknown kind", chaos: "tag-clear,bogus", rate: 400, retries: 2, wantErr: "bogus"},
		{name: "defaults", jobs: 4, rate: 400, retries: 2},
		{name: "zero rate chaos off", rate: 0, retries: 2},
		{name: "chaos all", chaos: "all", rate: 200, deadline: 1 << 20, retries: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := sessionConfig(tc.jobs, tc.chaos, tc.rate, 1, tc.deadline, tc.retries)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("sessionConfig accepted %+v", tc)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not name %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
			if cfg.jobs != tc.jobs || cfg.retries != tc.retries || cfg.deadline != uint64(tc.deadline) {
				t.Fatalf("config %+v does not reflect inputs", cfg)
			}
			if (tc.chaos != "") != (cfg.chaos != nil) {
				t.Fatalf("chaos config presence mismatch for %q", tc.chaos)
			}
		})
	}
}

// TestScaleConfigValidation pins the scale-sweep flag contract: -topology
// and -cores demand -run scale, unknown topologies and non-positive or
// out-of-range core counts are rejected with descriptive errors, and legal
// values parse into the session's sweep axes (topology names normalized).
func TestScaleConfigValidation(t *testing.T) {
	cases := []struct {
		name       string
		topology   string
		cores      string
		run        string
		wantErr    string
		wantTopos  []string
		wantCounts []int
	}{
		{name: "unset is inert", run: ""},
		{name: "topology without -run scale", topology: "mesh", run: "", wantErr: "-run scale"},
		{name: "cores without -run scale", cores: "16", run: "security", wantErr: "-run scale"},
		{name: "unknown topology", topology: "mesh,torus", run: "scale", wantErr: "torus"},
		{name: "non-integer cores", cores: "16,lots", run: "scale", wantErr: "lots"},
		{name: "zero cores", cores: "0", run: "scale", wantErr: "outside"},
		{name: "negative cores", cores: "-4", run: "scale", wantErr: "outside"},
		{name: "cores beyond fabric max", cores: "2048", run: "scale", wantErr: "outside"},
		{name: "both axes", topology: "Mesh, ring", cores: "16,64", run: "scale",
			wantTopos: []string{"mesh", "ring"}, wantCounts: []int{16, 64}},
		{name: "cores alone", cores: "4", run: "scale", wantCounts: []int{4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topos, counts, err := scaleConfig(tc.topology, tc.cores, tc.run)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("scaleConfig accepted %+v", tc)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not name %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
			if fmt.Sprint(topos) != fmt.Sprint(tc.wantTopos) || fmt.Sprint(counts) != fmt.Sprint(tc.wantCounts) {
				t.Fatalf("parsed (%v, %v), want (%v, %v)", topos, counts, tc.wantTopos, tc.wantCounts)
			}
		})
	}
}

// TestRunCampaignDegradedMode drives the full campaign with a 1-µop
// watchdog budget so every measured run deadline-aborts: the exit code
// must be non-zero, the stderr summary must list every failed experiment
// exactly once with a matching header count, and the experiments that
// render without session measurements must still reach stdout.
func TestRunCampaignDegradedMode(t *testing.T) {
	s := experiments.NewSession(1)
	s.Jobs = 2
	s.DeadlineUops = 1 // every quantum check trips the watchdog immediately

	var stdout, stderr bytes.Buffer
	if code := runCampaign(s, &stdout, &stderr); code == 0 {
		t.Fatal("campaign with a 1-µop deadline reported success")
	}

	valid := map[string]bool{}
	for _, e := range experiments.Renderable() {
		valid[e.ID] = true
	}

	sc := bufio.NewScanner(&stderr)
	if !sc.Scan() {
		t.Fatal("empty stderr summary")
	}
	var n, total int
	if _, err := fmt.Sscanf(sc.Text(), "experiments: %d of %d experiments failed:", &n, &total); err != nil {
		t.Fatalf("malformed summary header %q: %v", sc.Text(), err)
	}
	if n == 0 || total != len(experiments.Renderable()) {
		t.Fatalf("summary header %q: want >0 failures of %d", sc.Text(), len(experiments.Renderable()))
	}
	seen := map[string]bool{}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			t.Fatalf("malformed summary line %q", sc.Text())
		}
		id := fields[0]
		if !valid[id] {
			t.Fatalf("summary names unknown experiment %q", id)
		}
		if seen[id] {
			t.Fatalf("experiment %q listed more than once", id)
		}
		seen[id] = true
	}
	if len(seen) != n {
		t.Fatalf("header says %d failures, summary lists %d", n, len(seen))
	}

	rendered := renderedHeaders(stdout.String())
	if rendered != total-n {
		t.Fatalf("%d experiments rendered, want %d (total %d - failed %d)",
			rendered, total-n, total, n)
	}
	for id := range seen {
		if strings.Contains(stdout.String(), "== "+id+":") {
			t.Fatalf("failed experiment %q also rendered to stdout", id)
		}
	}
}

// TestRunCampaignSuccessExitCode is the inverse guard: an unconstrained
// campaign renders everything, writes nothing to stderr, and returns 0.
func TestRunCampaignSuccessExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign render in -short mode")
	}
	s := experiments.NewSession(1)
	var stdout, stderr bytes.Buffer
	if code := runCampaign(s, &stdout, &stderr); code != 0 {
		t.Fatalf("healthy campaign exited %d; stderr:\n%s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("healthy campaign wrote to stderr:\n%s", stderr.String())
	}
	if got := renderedHeaders(stdout.String()); got != len(experiments.Renderable()) {
		t.Fatalf("%d experiments rendered, want %d", got, len(experiments.Renderable()))
	}
}

// renderedHeaders counts the "== id: title (section) ==" banner lines
// RenderAll emits, one per successfully rendered experiment.
func renderedHeaders(out string) int {
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "== ") && strings.HasSuffix(line, " ==") {
			n++
		}
	}
	return n
}

// TestBaselineConfigValidation pins the golden-gate flag contract:
// -update-baseline without a file and -baseline combined with -run are
// rejected before any work runs.
func TestBaselineConfigValidation(t *testing.T) {
	cases := []struct {
		name     string
		baseline string
		update   bool
		run      string
		wantErr  string
	}{
		{name: "update without file", update: true, wantErr: "-baseline"},
		{name: "baseline with run", baseline: "g.json", run: "fig1", wantErr: "-run"},
		{name: "update with run", baseline: "g.json", update: true, run: "fig1", wantErr: "-run"},
		{name: "gate alone", baseline: "g.json"},
		{name: "update alone", baseline: "g.json", update: true},
		{name: "nothing", run: "fig1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := baselineConfig(tc.baseline, tc.update, tc.run)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want mention of %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("valid combination rejected: %v", err)
			}
		})
	}
}

// TestGateBaselineRoundTrip drives the updater and the gate through one
// real (stored) campaign: capture exits clean, a re-gate against the fresh
// file passes, a tampered value drifts with exit code 1, and a scale
// mismatch is refused.
func TestGateBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign grid")
	}
	dir := t.TempDir()
	store, err := resultstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	newStoredSession := func() *experiments.Session {
		s := experiments.NewSession(1)
		s.Store = store
		return s
	}
	path := filepath.Join(dir, "golden.json")

	var stderr bytes.Buffer
	if code := gateBaseline(newStoredSession(), nil, path, true, &stderr); code != 0 {
		t.Fatalf("capture exited %d: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := gateBaseline(newStoredSession(), nil, path, false, &stderr); code != 0 {
		t.Fatalf("clean gate exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "within tolerance") {
		t.Errorf("clean gate did not report tolerance: %s", stderr.String())
	}

	b, err := golden.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range b.Entries {
		v["ipc"] += 1
		break
	}
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := gateBaseline(newStoredSession(), nil, path, false, &stderr); code != 1 {
		t.Fatalf("drifted gate exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "ipc") {
		t.Errorf("drift report does not name the metric: %s", stderr.String())
	}

	b.Scale = 9
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := gateBaseline(newStoredSession(), nil, path, false, &stderr); code != 1 {
		t.Fatalf("scale-mismatched gate exited %d", code)
	}
	if !strings.Contains(stderr.String(), "scale") {
		t.Errorf("scale refusal not reported: %s", stderr.String())
	}
}
