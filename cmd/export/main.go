// Command export runs the full measurement campaign (every workload under
// every ABI) and writes the results as machine-readable artefacts — the
// simulator's equivalent of the paper's published data
// (github.com/xshaun/iiswc25-ae).
//
// Usage:
//
//	export -json results.json -metrics metrics.csv -events events.csv
//	export -json - > results.json          # stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cherisim/internal/abi"
	"cherisim/internal/report"
	"cherisim/internal/workloads"
)

func main() {
	jsonPath := flag.String("json", "", "write the full dataset as JSON ('-' for stdout)")
	metricsPath := flag.String("metrics", "", "write derived metrics as CSV")
	eventsPath := flag.String("events", "", "write raw PMU events as CSV")
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()
	if *jsonPath == "" && *metricsPath == "" && *eventsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	d := report.NewDataset(*scale)
	for _, w := range workloads.All() {
		for _, a := range abi.All() {
			m, err := workloads.Execute(w, a, *scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "export: %s/%s faulted: %v (partial counters exported)\n", w.Name, a, err)
			}
			d.Add(report.NewSample(w.Name, a, &m.C))
			fmt.Fprintf(os.Stderr, "measured %s/%s\n", w.Name, a)
		}
	}

	write := func(path string, fn func(io.Writer) error) {
		if path == "" {
			return
		}
		var w io.Writer = os.Stdout
		if path != "-" {
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := fn(w); err != nil {
			fatal(err)
		}
	}
	write(*jsonPath, d.WriteJSON)
	write(*metricsPath, d.WriteMetricsCSV)
	write(*eventsPath, d.WriteEventsCSV)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "export:", err)
	os.Exit(1)
}
