package main

import (
	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// coreConfig builds the machine configuration for the CLI flags.
func coreConfig(a abi.ABI, trackPCC bool) core.Config {
	cfg := core.DefaultConfig(a)
	cfg.TracksPCCBounds = trackPCC
	return cfg
}
