// Command morello-sim runs one workload on the simulated Morello platform
// under a chosen CHERI ABI and reports execution statistics, derived
// metrics and the top-down breakdown — the simulator's equivalent of
// timing a benchmark on the board.
//
// Usage:
//
//	morello-sim -workload sqlite -abi purecap
//	morello-sim -workload 520.omnetpp_r -abi hybrid -scale 2 -events
//	morello-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "workload name (see -list)")
	abiName := flag.String("abi", "purecap", "ABI: hybrid | benchmark | purecap")
	scale := flag.Int("scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list workloads")
	events := flag.Bool("events", false, "dump every raw PMU event")
	trackPCC := flag.Bool("track-pcc", false, "model a capability-aware branch predictor")
	flag.Parse()

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
		for _, w := range workloads.All() {
			fmt.Fprintf(tw, "%s\t%s\n", w.Name, w.Desc)
		}
		tw.Flush()
		return
	}
	if *wl == "" {
		flag.Usage()
		os.Exit(2)
	}

	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	a, err := abi.Parse(*abiName)
	if err != nil {
		fatal(err)
	}

	cfg := coreConfig(a, *trackPCC)
	m, err := workloads.ExecuteConfig(w, cfg, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "morello-sim: workload faulted: %v\n", err)
		// Counters up to the fault are still reported, as a crashed run's
		// partial pmcstat output would be.
	}

	mm := metrics.Compute(&m.C)
	fmt.Printf("workload  %s (%s)\nabi       %s\n", w.Name, w.Desc, a)
	fmt.Printf("time      %.6f s (%d cycles @2.5GHz)\n", mm.Seconds, mm.Cycles)
	fmt.Printf("insts     %d (IPC %.3f)\n", mm.Insts, mm.IPC)
	fmt.Printf("branchMR  %.2f%%   L1I MR %.2f%%   L1D MR %.2f%%   L2 MR %.2f%%   LLCrd MR %.2f%%\n",
		mm.BranchMR*100, mm.L1IMR*100, mm.L1DMR*100, mm.L2MR*100, mm.LLCReadMR*100)
	fmt.Printf("capLD     %.2f%%   capSD %.2f%%   capTraffic %.2f%%   capTag %.2f%%\n",
		mm.CapLoadDensity*100, mm.CapStoreDensity*100, mm.CapTrafficShare*100, mm.CapTagOverhead*100)
	fmt.Printf("MI        %.3f (%s)\n", mm.MemoryIntensity, metrics.ClassifyMI(mm.MemoryIntensity))
	hs := m.Heap.Stats()
	fmt.Printf("heap      %d allocs, %d frees, peak %d B, footprint %d B (rounding overhead %.3fx)\n",
		hs.Allocs, hs.Frees, hs.PeakLiveBytes, hs.BrkBytes, hs.OverheadRatio())
	fmt.Printf("\nTop-down:\n%s", topdown.Analyze(&m.C))

	if *events {
		fmt.Println("\nRaw PMU events:")
		tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
		for _, e := range pmu.AllEvents() {
			fmt.Fprintf(tw, "%s\t%d\n", e, m.C.Get(e))
		}
		tw.Flush()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "morello-sim:", err)
	os.Exit(1)
}
