// Command trace records a workload's memory-access stream on the
// simulated Morello platform and prints its locality analysis — reuse
// distances, stride mix, footprint and pointer-chase share — optionally
// comparing ABIs to show how 128-bit capabilities dilute spatial locality
// (the §4.7 mechanism, observed directly).
//
// Usage:
//
//	trace -workload 520.omnetpp_r -abi purecap
//	trace -workload llama-matmul -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/trace"
	"cherisim/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "workload name")
	abiName := flag.String("abi", "purecap", "ABI: hybrid | benchmark | purecap")
	scale := flag.Int("scale", 1, "workload scale factor")
	max := flag.Int("max", 500000, "maximum retained accesses (head sampling)")
	compare := flag.Bool("compare", false, "compare hybrid vs purecap locality")
	flag.Parse()
	if *wl == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := workloads.ByName(*wl)
	if err != nil {
		fatal(err)
	}

	run := func(a abi.ABI) trace.Analysis {
		m := core.NewMachine(core.DefaultConfig(a))
		m.Tracer = trace.New(*max)
		if err := m.Run(func(m *core.Machine) { w.Run(m, *scale) }); err != nil {
			fmt.Fprintf(os.Stderr, "trace: workload faulted (partial trace follows): %v\n", err)
		}
		return trace.Analyze(m.Tracer.Events())
	}

	if *compare {
		hy, pc := run(abi.Hybrid), run(abi.Purecap)
		tw := tabwriter.NewWriter(os.Stdout, 1, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "metric\thybrid\tpurecap")
		fmt.Fprintf(tw, "footprint (KiB)\t%.1f\t%.1f\n", float64(hy.FootprintBytes)/1024, float64(pc.FootprintBytes)/1024)
		fmt.Fprintf(tw, "sequential share\t%.1f%%\t%.1f%%\n", hy.SequentialShare*100, pc.SequentialShare*100)
		fmt.Fprintf(tw, "pointer-chase share\t%.1f%%\t%.1f%%\n", hy.PointerChaseShare*100, pc.PointerChaseShare*100)
		fmt.Fprintf(tw, "reuse p50 (lines)\t%d\t%d\n", hy.ReuseP50, pc.ReuseP50)
		fmt.Fprintf(tw, "reuse p90 (lines)\t%d\t%d\n", hy.ReuseP90, pc.ReuseP90)
		fmt.Fprintf(tw, "cold-miss share\t%.1f%%\t%.1f%%\n", hy.ColdShare*100, pc.ColdShare*100)
		tw.Flush()
		return
	}

	a, err := abi.Parse(*abiName)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s under %s:\n%s", w.Name, a, run(a))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
