package soc

import (
	"errors"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

// mustRun runs specs through the round-robin scheduler, failing the test
// on a spec-validation error.
func mustRun(t *testing.T, specs []CoreSpec) []Result {
	t.Helper()
	res, err := Run(specs)
	if err != nil {
		t.Fatalf("soc.Run: %v", err)
	}
	return res
}

// streamBody builds a body that accesses random lines of its own buffer
// (an LCG walk, so LRU caches retain a proportional working-set share —
// cyclic streams would degenerate to 100 % misses at every level).
func streamBody(bufBytes uint64, accesses int) func(*core.Machine) {
	return func(m *core.Machine) {
		m.Func("stream", 1024, 64)
		buf := m.Alloc(bufBytes)
		lines := bufBytes / 64
		x := uint64(1)
		for i := 0; i < accesses; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			m.LoadDep(buf+core.Ptr((x%lines)*64), 8)
			m.ALU(2)
		}
	}
}

func TestSoloRun(t *testing.T) {
	res := mustRun(t, []CoreSpec{{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(256<<10, 20000)}})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("solo run failed: %+v", res)
	}
	if res[0].Machine.Cycles() == 0 {
		t.Fatal("no cycles")
	}
}

func TestDeterministicCoRun(t *testing.T) {
	run := func() [2]pmu.Counters {
		res := mustRun(t, []CoreSpec{
			{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(512<<10, 20000)},
			{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(512<<10, 20000)},
		})
		return [2]pmu.Counters{res[0].Machine.C, res[1].Machine.C}
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("co-run not deterministic")
	}
}

func TestLLCContentionSlowsCoRunners(t *testing.T) {
	// Solo: a 1.5 MiB working set exceeds the private 1 MiB L2, so ~0.5 MiB
	// of each pass is served by the LLC, which holds it comfortably.
	solo := mustRun(t, []CoreSpec{{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(1536<<10, 60000)}})
	soloCycles := solo[0].Machine.Cycles()

	// Co-run four of them: the combined L2 spill (4 x ~0.5 MiB) thrashes
	// the 1 MiB shared LLC; each core must slow down.
	specs := make([]CoreSpec, 4)
	for i := range specs {
		specs[i] = CoreSpec{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(1536<<10, 60000)}
	}
	co := mustRun(t, specs)
	for i, r := range co {
		if r.Err != nil {
			t.Fatalf("core %d: %v", i, r.Err)
		}
		ratio := float64(r.Machine.Cycles()) / float64(soloCycles)
		if ratio < 1.02 {
			t.Errorf("core %d: co-run/solo = %.3f, want visible LLC contention", i, ratio)
		}
	}
}

func TestAddressSpacesIsolated(t *testing.T) {
	// Two cores writing the same virtual addresses must not alias in the
	// shared LLC (distinct salts = distinct physical mappings).
	body := func(m *core.Machine) {
		m.Func("w", 512, 64)
		p := m.Alloc(4096)
		m.Store(p, 42, 8)
		if v := m.Load(p, 8); v != 42 {
			panic("corrupted")
		}
	}
	res := mustRun(t, []CoreSpec{
		{Config: core.DefaultConfig(abi.Purecap), Body: body},
		{Config: core.DefaultConfig(abi.Purecap), Body: body},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Errorf("core %d: %v", i, r.Err)
		}
	}
}

func TestCoRunRealWorkloads(t *testing.T) {
	omnet, err := workloads.ByName("520.omnetpp_r")
	if err != nil {
		t.Fatal(err)
	}
	llama, err := workloads.ByName("llama-matmul")
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, []CoreSpec{
		{Config: core.DefaultConfig(abi.Purecap), Body: func(m *core.Machine) { omnet.Run(m, 1) }},
		{Config: core.DefaultConfig(abi.Purecap), Body: func(m *core.Machine) { llama.Run(m, 1) }},
	})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("core %d: %v", i, r.Err)
		}
		if r.Machine.C.Get(pmu.INST_RETIRED) == 0 {
			t.Errorf("core %d did no work", i)
		}
	}
}

func TestRunWorkloadsValidation(t *testing.T) {
	if _, err := RunWorkloads(make([]core.Config, 2), make([]func(*core.Machine), 1)); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestCoRunPanicContained(t *testing.T) {
	// One core panics mid-run with a non-Fault value; the round-robin
	// scheduler must not deadlock, the panic must surface as a structured
	// error, and the healthy core must finish its work.
	res := mustRun(t, []CoreSpec{
		{Config: core.DefaultConfig(abi.Hybrid), Body: func(m *core.Machine) {
			m.Func("bad", 512, 64)
			m.ALU(100)
			panic("co-run boom")
		}},
		{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(256<<10, 20000)},
	})
	var pe *core.PanicError
	if !errors.As(res[0].Err, &pe) || pe.Value != "co-run boom" {
		t.Fatalf("core 0: want contained *core.PanicError, got %v", res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("healthy core failed: %v", res[1].Err)
	}
	if res[1].Machine.C.Get(pmu.INST_RETIRED) == 0 {
		t.Fatal("healthy core did no work")
	}
}

// TestRunRejectsDivergentLLCGeometry is the regression test for the
// specs[0]-only LLC construction bug: heterogeneous co-run specs used to
// silently get core 0's geometry. Every disagreement — size, ways, line
// size, hit latency — must now be rejected with a structured
// *GeometryError naming the divergent core, before anything executes.
func TestRunRejectsDivergentLLCGeometry(t *testing.T) {
	body := streamBody(64<<10, 100)
	base := func() CoreSpec {
		return CoreSpec{Config: core.DefaultConfig(abi.Hybrid), Body: body}
	}
	cases := []struct {
		name     string
		mutate   func(*CoreSpec)
		wantCore int
	}{
		{name: "size", mutate: func(s *CoreSpec) { s.Config.LLC.SizeBytes *= 2 }, wantCore: 1},
		{name: "ways", mutate: func(s *CoreSpec) { s.Config.LLC.Ways = 8 }, wantCore: 1},
		{name: "line size", mutate: func(s *CoreSpec) { s.Config.LLC.LineSize = 128 }, wantCore: 1},
		{name: "hit latency", mutate: func(s *CoreSpec) { s.Config.LLC.HitLatency = 99 }, wantCore: 1},
		{name: "last core", mutate: nil, wantCore: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			specs := []CoreSpec{base(), base(), base(), base()}
			if tc.mutate != nil {
				tc.mutate(&specs[1])
			} else {
				specs[3].Config.LLC.SizeBytes /= 2
			}
			_, err := Run(specs)
			var ge *GeometryError
			if !errors.As(err, &ge) {
				t.Fatalf("divergent LLC geometry accepted (err = %v)", err)
			}
			if ge.Core != tc.wantCore {
				t.Fatalf("error blames core %d, want %d", ge.Core, tc.wantCore)
			}
		})
	}

	// Agreeing specs still run: ablated geometry is fine when shared by all.
	specs := []CoreSpec{base(), base()}
	for i := range specs {
		specs[i].Config.LLC.SizeBytes = 512 << 10
	}
	res := mustRun(t, specs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("core %d: %v", i, r.Err)
		}
	}
}
