package soc

import (
	"fmt"

	"cherisim/internal/cache"
	"cherisim/internal/core"
	"cherisim/internal/telemetry"
)

// TopoResult is the outcome of a topology co-run: per-core machine results
// plus the fabric's slice/link/core accounting.
type TopoResult struct {
	Cores  []Result
	Fabric *FabricStats
}

// RunTopology co-runs the specs on a topology-aware SoC fabric: cores
// execute one quantum per epoch concurrently across real OS threads (the
// bound phase), buffering their sliced-LLC traffic in per-core ports, and
// every epoch barrier weaves the buffered events into the slice caches in
// a fixed cross-core order and settles contention. Results are
// byte-identical for any GOMAXPROCS: the bound phase prices each access
// against state frozen at the last barrier plus the core's own epoch
// traffic, so no core ever observes another core's in-flight progress.
func RunTopology(topo Topology, specs []CoreSpec) (*TopoResult, error) {
	return RunTopologyObserved(topo, specs, nil, nil)
}

// RunTopologyObserved is RunTopology with telemetry and an optional
// per-slice setup hook (the lockstep checker attaches slice shadows
// through it; it runs before any core executes). A nil hub and nil
// sliceSetup are exactly RunTopology.
func RunTopologyObserved(topo Topology, specs []CoreSpec, hub *telemetry.Hub,
	sliceSetup func(slice int, c *cache.Cache)) (*TopoResult, error) {
	topo = topo.WithDefaults()
	if topo.Cores == 0 {
		topo.Cores = len(specs)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := validateTopoSpecs(topo, specs); err != nil {
		return nil, err
	}
	sliceCfg, err := topo.SliceCacheConfig(specs[0].Config.LLC)
	if err != nil {
		return nil, err
	}

	n := topo.Cores
	fab := newFabric(topo, sliceCfg, specs)
	if sliceSetup != nil {
		for s, sl := range fab.slices {
			sliceSetup(s, sl.cache)
		}
	}

	var reg *telemetry.Registry
	var col *telemetry.Collector
	if hub.Enabled() {
		reg, col = hub.Metrics, hub.Spans
	}
	corun := hub.Start("topo-corun")
	corun.Attr("topology", topo.Kind)
	corun.Attr("cores", n)
	corun.Attr("slices", topo.Slices)
	reg.Counter("soc_topo_coruns").Inc()
	quanta := reg.Counter("soc_quanta_scheduled")
	coreSpans := make([]*telemetry.Span, n)
	for i := 0; i < n; i++ {
		coreSpans[i] = corun.Child(fmt.Sprintf("core-%d", i)).
			SetTrack(col.Track(fmt.Sprintf("soc-core-%d", i)))
	}

	results := make([]Result, n)
	machines := make([]*core.Machine, n)
	type coreState struct {
		resume chan struct{}
		yield  chan bool // true = finished
	}
	states := make([]*coreState, n)

	for i, spec := range specs {
		st := &coreState{resume: make(chan struct{}), yield: make(chan bool)}
		states[i] = st
		m := core.NewMachine(spec.Config)
		m.ShareLLCPort(fab.ports[i], i)
		if spec.Setup != nil {
			spec.Setup(m)
		}
		m.SetQuantum(QuantumUops, func() {
			st.yield <- false
			<-st.resume
		})
		machines[i] = m
		results[i].Machine = m
		body := spec.Body
		go func(i int) {
			<-st.resume
			// Containment (as in the round-robin scheduler): a panic
			// escaping Machine.Run must still yield the epoch token, or
			// the barrier deadlocks and one bad core takes down the
			// whole co-run.
			defer func() {
				if r := recover(); r != nil {
					results[i].Err = &core.PanicError{Value: r, Uops: m.Uops()}
				}
				st.yield <- true
			}()
			results[i].Err = m.Run(body)
		}(i)
	}

	// Epoch loop: release every live core (bound phase, truly concurrent),
	// wait for all of them at the barrier, weave, then retire finished
	// cores. A core that finished or panicked mid-epoch still has its
	// buffered events woven — they happened — but is no longer charged
	// contention (its counters are finalized).
	alive := make([]bool, n)
	chargeable := make([]bool, n)
	finishedNow := make([]int, 0, n)
	remaining := n
	for i := range alive {
		alive[i] = true
	}
	for remaining > 0 {
		for i := 0; i < n; i++ {
			if alive[i] {
				states[i].resume <- struct{}{}
				quanta.Inc()
			}
		}
		finishedNow = finishedNow[:0]
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			chargeable[i] = true
			if done := <-states[i].yield; done {
				finishedNow = append(finishedNow, i)
				chargeable[i] = false
			}
		}
		fab.weave(func(c int, cycles float64) {
			if chargeable[c] {
				machines[c].AddExternalStall(cycles)
				fab.ports[c].stats.StallCycles += cycles
			}
		})
		for _, i := range finishedNow {
			alive[i] = false
			chargeable[i] = false
			remaining--
			if sp := coreSpans[i]; sp != nil {
				sp.Attr("uops", results[i].Machine.Uops())
				if results[i].Err != nil {
					sp.Attr("err", results[i].Err.Error())
				}
				sp.End()
			}
		}
	}

	stats := fab.stats()
	corun.Attr("epochs", stats.Epochs)
	corun.End()
	publishFabricMetrics(reg, stats)
	return &TopoResult{Cores: results, Fabric: stats}, nil
}

// publishFabricMetrics surfaces the fabric's per-slice and per-link
// contention counters through the telemetry registry (visible on /metrics
// and in scraped snapshots). A nil registry is a no-op.
func publishFabricMetrics(reg *telemetry.Registry, st *FabricStats) {
	if reg == nil {
		return
	}
	reg.Counter("soc_epochs").Add(int64(st.Epochs))
	for i := range st.Slices {
		s := &st.Slices[i]
		reg.Counter(fmt.Sprintf("soc_slice_accesses.%03d", s.Slice)).Add(int64(s.Accesses))
		reg.Counter(fmt.Sprintf("soc_slice_contention_cycles.%03d", s.Slice)).Add(int64(s.ContentionCycles))
	}
	for i := range st.Links {
		l := &st.Links[i]
		if l.Traversals == 0 && l.ContentionCycles == 0 {
			continue
		}
		reg.Counter(fmt.Sprintf("soc_link_traversals.n%d-n%d", l.From, l.To)).Add(int64(l.Traversals))
		reg.Counter(fmt.Sprintf("soc_link_contention_cycles.n%d-n%d", l.From, l.To)).Add(int64(l.ContentionCycles))
	}
}
