// Package soc co-runs multiple simulated Morello cores against one shared
// system-level cache, extending the paper's single-core methodology to the
// multiprogrammed case the quad-core Morello SoC supports (§2.2 describes
// the 1 MB LL cache shared by all four cores; the paper disabled SMT and
// measured one core at a time). Cores execute in deterministic round-robin
// time quanta, so co-run results are exactly reproducible.
package soc

import (
	"fmt"

	"cherisim/internal/cache"
	"cherisim/internal/core"
)

// CoreSpec describes one core's configuration and workload body.
type CoreSpec struct {
	Config core.Config
	Body   func(*core.Machine)
}

// Result holds one core's finished machine (counters finalized) and the
// capability fault that terminated it, if any.
type Result struct {
	Machine *core.Machine
	Err     error
}

// QuantumUops is the scheduling quantum: each core executes this many µops
// before the next core runs. Small enough that cache interleaving is
// realistic, large enough to keep scheduling overhead negligible.
const QuantumUops = 8192

// Run co-runs the specs on a shared LLC and returns per-core results. The
// scheduler is a deterministic round robin: core 0 runs one quantum, then
// core 1, and so on; finished cores drop out. Only one core executes at
// any instant, so the shared cache needs no locking and results are
// bit-reproducible.
func Run(specs []CoreSpec) []Result {
	n := len(specs)
	results := make([]Result, n)
	if n == 0 {
		return results
	}

	sharedLLC := cache.New(specs[0].Config.LLC)

	type coreState struct {
		resume chan struct{}
		yield  chan bool // true = finished
	}
	states := make([]*coreState, n)

	for i, spec := range specs {
		st := &coreState{resume: make(chan struct{}), yield: make(chan bool)}
		states[i] = st
		m := core.NewMachine(spec.Config)
		m.ShareLLC(sharedLLC, i)
		m.SetQuantum(QuantumUops, func() {
			st.yield <- false
			<-st.resume
		})
		results[i].Machine = m
		body := spec.Body
		go func(i int) {
			<-st.resume
			// Containment: Machine.Run already converts panics into
			// structured errors, but a panic escaping anyway (e.g. from a
			// misbehaving quantum hook) must still yield the scheduling
			// token, or the round-robin scheduler deadlocks and one bad
			// core takes down the whole co-run.
			defer func() {
				if r := recover(); r != nil {
					results[i].Err = &core.PanicError{Value: r, Uops: m.Uops()}
				}
				st.yield <- true
			}()
			results[i].Err = m.Run(body)
		}(i)
	}

	// Deterministic round robin until every core finishes.
	alive := make([]bool, n)
	remaining := n
	for i := range alive {
		alive[i] = true
	}
	for remaining > 0 {
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			states[i].resume <- struct{}{}
			if done := <-states[i].yield; done {
				alive[i] = false
				remaining--
			}
		}
	}
	return results
}

// RunWorkloads is a convenience wrapper co-running named workload bodies
// under one ABI configuration per core.
func RunWorkloads(cfgs []core.Config, bodies []func(*core.Machine)) ([]Result, error) {
	if len(cfgs) != len(bodies) {
		return nil, fmt.Errorf("soc: %d configs for %d bodies", len(cfgs), len(bodies))
	}
	specs := make([]CoreSpec, len(cfgs))
	for i := range cfgs {
		specs[i] = CoreSpec{Config: cfgs[i], Body: bodies[i]}
	}
	return Run(specs), nil
}
