// Package soc co-runs multiple simulated Morello cores against one shared
// system-level cache, extending the paper's single-core methodology to the
// multiprogrammed case the quad-core Morello SoC supports (§2.2 describes
// the 1 MB LL cache shared by all four cores; the paper disabled SMT and
// measured one core at a time). Cores execute in deterministic round-robin
// time quanta, so co-run results are exactly reproducible.
package soc

import (
	"fmt"

	"cherisim/internal/cache"
	"cherisim/internal/core"
	"cherisim/internal/telemetry"
)

// CoreSpec describes one core's configuration and workload body.
type CoreSpec struct {
	Config core.Config
	Body   func(*core.Machine)
	// Setup, when set, runs on the freshly built machine after the shared
	// LLC is attached and before the core executes anything (the lockstep
	// checker hooks in here). It must not install a quantum hook — the
	// scheduler owns that.
	Setup func(*core.Machine)
}

// Result holds one core's finished machine (counters finalized) and the
// capability fault that terminated it, if any.
type Result struct {
	Machine *core.Machine
	Err     error
}

// QuantumUops is the scheduling quantum: each core executes this many µops
// before the next core runs. Small enough that cache interleaving is
// realistic, large enough to keep scheduling overhead negligible.
const QuantumUops = 8192

// GeometryError reports co-run specs that disagree on the shared LLC
// geometry: the shared cache is one physical structure, so every core must
// describe it identically (an ablation that resizes the LLC must resize it
// for all cores). Core 0's configuration is the reference, matching the
// cache the scheduler would have built.
type GeometryError struct {
	Core      int          // first core whose LLC config diverges
	Want, Got cache.Config // core 0's geometry vs the divergent one
}

func (e *GeometryError) Error() string {
	return fmt.Sprintf("soc: core %d LLC geometry %+v disagrees with core 0's %+v: co-running cores share one physical LLC",
		e.Core, e.Got, e.Want)
}

// validateLLCGeometry checks that every spec describes the same shared LLC.
func validateLLCGeometry(specs []CoreSpec) error {
	if len(specs) == 0 {
		return nil
	}
	want := specs[0].Config.LLC
	for i := 1; i < len(specs); i++ {
		if got := specs[i].Config.LLC; got != want {
			return &GeometryError{Core: i, Want: want, Got: got}
		}
	}
	return nil
}

// Run co-runs the specs on a shared LLC and returns per-core results. The
// scheduler is a deterministic round robin: core 0 runs one quantum, then
// core 1, and so on; finished cores drop out. Only one core executes at
// any instant, so the shared cache needs no locking and results are
// bit-reproducible. Specs whose LLC geometries disagree are rejected with
// a *GeometryError before anything executes.
func Run(specs []CoreSpec) ([]Result, error) { return RunObserved(specs, nil) }

// RunObserved is Run with telemetry: the co-run becomes a "corun" span
// with one child span per core on its own trace track, scheduling quanta
// feed the soc_quanta_scheduled counter, and per-core outcomes are stamped
// as span attributes. A nil hub is exactly Run — observation rides the
// scheduler loop, never the cores, so results are unchanged either way.
func RunObserved(specs []CoreSpec, hub *telemetry.Hub) ([]Result, error) {
	if err := validateLLCGeometry(specs); err != nil {
		return nil, err
	}
	n := len(specs)
	results := make([]Result, n)
	if n == 0 {
		return results, nil
	}

	var reg *telemetry.Registry
	var col *telemetry.Collector
	if hub.Enabled() {
		reg, col = hub.Metrics, hub.Spans
	}
	corun := hub.Start("corun")
	corun.Attr("cores", n)
	quanta := reg.Counter("soc_quanta_scheduled")
	reg.Counter("soc_coruns").Inc()
	coreSpans := make([]*telemetry.Span, n)
	for i := 0; i < n; i++ {
		coreSpans[i] = corun.Child(fmt.Sprintf("core-%d", i)).
			SetTrack(col.Track(fmt.Sprintf("soc-core-%d", i)))
	}

	sharedLLC := cache.New(specs[0].Config.LLC)

	type coreState struct {
		resume chan struct{}
		yield  chan bool // true = finished
	}
	states := make([]*coreState, n)

	for i, spec := range specs {
		st := &coreState{resume: make(chan struct{}), yield: make(chan bool)}
		states[i] = st
		m := core.NewMachine(spec.Config)
		m.ShareLLC(sharedLLC, i)
		if spec.Setup != nil {
			spec.Setup(m)
		}
		m.SetQuantum(QuantumUops, func() {
			st.yield <- false
			<-st.resume
		})
		results[i].Machine = m
		body := spec.Body
		go func(i int) {
			<-st.resume
			// Containment: Machine.Run already converts panics into
			// structured errors, but a panic escaping anyway (e.g. from a
			// misbehaving quantum hook) must still yield the scheduling
			// token, or the round-robin scheduler deadlocks and one bad
			// core takes down the whole co-run.
			defer func() {
				if r := recover(); r != nil {
					results[i].Err = &core.PanicError{Value: r, Uops: m.Uops()}
				}
				st.yield <- true
			}()
			results[i].Err = m.Run(body)
		}(i)
	}

	// Deterministic round robin until every core finishes. The scheduler
	// goroutine owns every span: core spans end at the yield that retires
	// the core, so their intervals cover exactly the core's scheduled life.
	alive := make([]bool, n)
	remaining := n
	for i := range alive {
		alive[i] = true
	}
	for remaining > 0 {
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			states[i].resume <- struct{}{}
			quanta.Inc()
			if done := <-states[i].yield; done {
				alive[i] = false
				remaining--
				if sp := coreSpans[i]; sp != nil {
					sp.Attr("uops", results[i].Machine.Uops())
					if results[i].Err != nil {
						sp.Attr("err", results[i].Err.Error())
					}
					sp.End()
				}
			}
		}
	}
	corun.End()
	return results, nil
}

// RunWorkloads is a convenience wrapper co-running named workload bodies
// under one ABI configuration per core.
func RunWorkloads(cfgs []core.Config, bodies []func(*core.Machine)) ([]Result, error) {
	if len(cfgs) != len(bodies) {
		return nil, fmt.Errorf("soc: %d configs for %d bodies", len(cfgs), len(bodies))
	}
	specs := make([]CoreSpec, len(cfgs))
	for i := range cfgs {
		specs[i] = CoreSpec{Config: cfgs[i], Body: bodies[i]}
	}
	return Run(specs)
}
