package soc

import (
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/telemetry"
)

// TestCoRunTelemetrySpans asserts an observed co-run records the corun
// span with one child span per core on its own track, counts scheduling
// quanta, and — the determinism contract — produces bit-identical machine
// counters to an unobserved co-run.
func TestCoRunTelemetrySpans(t *testing.T) {
	specs := func() []CoreSpec {
		return []CoreSpec{
			{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(256<<10, 20000)},
			{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(256<<10, 20000)},
		}
	}
	plain := mustRun(t, specs())

	hub := telemetry.New()
	observed, err := RunObserved(specs(), hub)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].Machine.C != observed[i].Machine.C {
			t.Fatalf("core %d counters diverged under observation", i)
		}
	}

	spans := hub.Spans.Snapshot()
	tracks := hub.Spans.TrackNames()
	var corunID uint64
	cores := 0
	for _, sp := range spans {
		if sp.Name == "corun" {
			corunID = sp.ID
		}
	}
	if corunID == 0 {
		t.Fatal("corun span missing")
	}
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Name, "core-") {
			continue
		}
		cores++
		if sp.Parent != corunID {
			t.Fatalf("%s parented to %d, want corun %d", sp.Name, sp.Parent, corunID)
		}
		if !strings.HasPrefix(tracks[sp.Track], "soc-core-") {
			t.Fatalf("%s on track %q, want a soc core track", sp.Name, tracks[sp.Track])
		}
	}
	if cores != 2 {
		t.Fatalf("%d core spans, want 2", cores)
	}
	if hub.Metrics.Counter("soc_coruns").Value() != 1 {
		t.Fatal("soc_coruns not counted")
	}
	if hub.Metrics.Counter("soc_quanta_scheduled").Value() < 2 {
		t.Fatal("scheduling quanta not counted")
	}
}
