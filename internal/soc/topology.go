// Topology-aware SoC scale-out: this file describes the network-on-chip
// fabric — how cores and address-interleaved LLC slices are arranged on a
// mesh or ring, how requests route between them, and how per-epoch slice
// and link capacities price contention. The quad-core Morello SoC the
// paper measures has no NoC worth modelling (one shared 1 MB LLC, §2.2);
// the topology engine extends the methodology to the datacenter core
// counts ROADMAP item 3 targets, where tag/bounds traffic crosses a real
// interconnect.

package soc

import (
	"fmt"
	"strings"

	"cherisim/internal/cache"
	"cherisim/internal/core"
)

// Topology kinds.
const (
	TopoMesh = "mesh"
	TopoRing = "ring"
)

// MaxCores bounds topology co-runs; the core salting scheme supports more
// (core.MaxCores), but beyond this the simulation is impractical anyway.
const MaxCores = 1024

// Default fabric parameters (see Topology field docs).
const (
	DefaultHopLatency    = 3
	DefaultQueuePenalty  = 8
	DefaultEpochCapacity = QuantumUops / 4
)

// Topology describes the SoC fabric: the NoC shape, the number of cores
// and LLC slices on it, per-hop routing latency, and the per-epoch
// capacities of slices and links beyond which queueing penalties accrue.
// The zero value of every optional field selects a documented default via
// WithDefaults.
type Topology struct {
	// Kind is TopoMesh (near-square 2D grid, XY routing) or TopoRing
	// (bidirectional ring, shortest direction, ties clockwise).
	Kind string `json:"kind"`
	// Cores is the number of N1-like cores (1..MaxCores). Each core
	// occupies one node of the fabric.
	Cores int `json:"cores"`
	// Slices is the number of address-interleaved LLC slices, a power of
	// two. 0 derives the largest power of two <= Cores, so the directory
	// spreads across the fabric. Slices are placed evenly across nodes.
	Slices int `json:"slices"`
	// HopLatency is the per-hop NoC traversal cost in cycles added to
	// every slice access (0 = DefaultHopLatency).
	HopLatency uint64 `json:"hop_latency"`
	// SliceCapacity and LinkCapacity are the events one slice (or link)
	// serves per scheduling epoch before queueing; overflow is charged to
	// the cores that drove the traffic, proportionally
	// (0 = DefaultEpochCapacity).
	SliceCapacity int `json:"slice_capacity"`
	LinkCapacity  int `json:"link_capacity"`
	// QueuePenalty is the cycles charged per over-capacity event
	// (0 = DefaultQueuePenalty).
	QueuePenalty uint64 `json:"queue_penalty"`
}

// TopologyError is a structured topology-validation failure.
type TopologyError struct {
	Field string
	Msg   string
}

func (e *TopologyError) Error() string { return fmt.Sprintf("soc: topology %s: %s", e.Field, e.Msg) }

// ParseTopologyKind validates a topology name from the CLI.
func ParseTopologyKind(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case TopoMesh:
		return TopoMesh, nil
	case TopoRing:
		return TopoRing, nil
	default:
		return "", &TopologyError{Field: "kind", Msg: fmt.Sprintf("unknown topology %q (want %s or %s)", s, TopoMesh, TopoRing)}
	}
}

// WithDefaults returns the topology with every zero optional field
// replaced by its documented default.
func (t Topology) WithDefaults() Topology {
	if t.Slices == 0 {
		t.Slices = prevPow2(t.Cores)
	}
	if t.HopLatency == 0 {
		t.HopLatency = DefaultHopLatency
	}
	if t.SliceCapacity == 0 {
		t.SliceCapacity = DefaultEpochCapacity
	}
	if t.LinkCapacity == 0 {
		t.LinkCapacity = DefaultEpochCapacity
	}
	if t.QueuePenalty == 0 {
		t.QueuePenalty = DefaultQueuePenalty
	}
	return t
}

// Validate checks the (defaulted) topology for structural errors.
func (t Topology) Validate() error {
	if _, err := ParseTopologyKind(t.Kind); err != nil {
		return err
	}
	if t.Cores < 1 || t.Cores > MaxCores {
		return &TopologyError{Field: "cores", Msg: fmt.Sprintf("core count %d outside [1, %d]", t.Cores, MaxCores)}
	}
	if t.Slices < 1 || t.Slices&(t.Slices-1) != 0 {
		return &TopologyError{Field: "slices", Msg: fmt.Sprintf("slice count %d is not a power of two", t.Slices)}
	}
	if t.Slices > t.Cores {
		return &TopologyError{Field: "slices", Msg: fmt.Sprintf("%d slices exceed %d fabric nodes", t.Slices, t.Cores)}
	}
	if t.SliceCapacity < 1 || t.LinkCapacity < 1 {
		return &TopologyError{Field: "capacity", Msg: "slice/link epoch capacities must be positive"}
	}
	return nil
}

// Fingerprint canonically encodes everything about the topology that
// shapes results — the result store folds it into scale-unit keys.
func (t Topology) Fingerprint() string {
	return fmt.Sprintf("%s:c%d:s%d:h%d:sc%d:lc%d:q%d",
		t.Kind, t.Cores, t.Slices, t.HopLatency, t.SliceCapacity, t.LinkCapacity, t.QueuePenalty)
}

// SliceCacheConfig derives the geometry of one LLC slice from the base
// (per-quad) LLC configuration: the aggregate LLC grows with the core
// count — one base-sized LLC per four cores, as on the quad-core Morello —
// and is then divided across the address-interleaved slices. Returns a
// *TopologyError when the division leaves a slice without a power-of-two
// set count.
func (t Topology) SliceCacheConfig(base cache.Config) (cache.Config, error) {
	quads := nextPow2((t.Cores + 3) / 4)
	total := base.SizeBytes * quads
	sliceBytes := total / t.Slices
	sets := sliceBytes / (base.LineSize * base.Ways)
	if sets < 1 || sets&(sets-1) != 0 {
		return cache.Config{}, &TopologyError{Field: "slices", Msg: fmt.Sprintf(
			"%d slices of the %d-byte aggregate LLC leave %d sets per slice (want a power of two >= 1)",
			t.Slices, total, sets)}
	}
	cfg := base
	cfg.Name = "LLC-slice"
	cfg.SizeBytes = sliceBytes
	return cfg, nil
}

// geometry is the compiled placement and routing of a topology: node
// coordinates, slice homes, per-(core, slice) routes and hop counts, and
// the enumerated directed links.
type geometry struct {
	topo      Topology
	w, h      int   // mesh grid (ring: w=cores, h=1)
	sliceNode []int // home node of each slice
	// routes[core*slices+slice] lists the directed link indices (into
	// links) a request traverses; hops is len(route).
	routes [][]int32
	links  []linkEnd
}

// linkEnd is one directed NoC link between adjacent nodes.
type linkEnd struct{ From, To int }

// compile builds the geometry for a validated topology.
func compile(t Topology) *geometry {
	g := &geometry{topo: t}
	switch t.Kind {
	case TopoRing:
		g.w, g.h = t.Cores, 1
	default: // mesh: near-square grid, width >= height
		g.w = 1
		for g.w*g.w < t.Cores {
			g.w++
		}
		g.h = (t.Cores + g.w - 1) / g.w
	}

	// Slice homes: spread evenly across the nodes in node order.
	g.sliceNode = make([]int, t.Slices)
	for s := range g.sliceNode {
		g.sliceNode[s] = s * t.Cores / t.Slices
	}

	// Enumerate directed links once, in (from, to) order, and index them.
	linkIdx := map[linkEnd]int32{}
	addLink := func(from, to int) int32 {
		e := linkEnd{From: from, To: to}
		if i, ok := linkIdx[e]; ok {
			return i
		}
		i := int32(len(g.links))
		g.links = append(g.links, e)
		linkIdx[e] = i
		return i
	}
	// Deterministic link numbering: walk nodes in order, neighbors in a
	// fixed direction order.
	for n := 0; n < t.Cores; n++ {
		for _, nb := range g.neighbors(n) {
			addLink(n, nb)
		}
	}

	g.routes = make([][]int32, t.Cores*t.Slices)
	for c := 0; c < t.Cores; c++ {
		for s := 0; s < t.Slices; s++ {
			g.routes[c*t.Slices+s] = g.route(c, g.sliceNode[s], linkIdx)
		}
	}
	return g
}

// neighbors returns a node's adjacent nodes in fixed (+x, -x, +y, -y) /
// (cw, ccw) order.
func (g *geometry) neighbors(n int) []int {
	if g.topo.Kind == TopoRing {
		c := g.topo.Cores
		if c == 1 {
			return nil
		}
		if c == 2 {
			return []int{(n + 1) % 2}
		}
		return []int{(n + 1) % c, (n - 1 + c) % c}
	}
	var out []int
	x, y := n%g.w, n/g.w
	present := func(x, y int) (int, bool) {
		id := y*g.w + x
		return id, x >= 0 && x < g.w && y >= 0 && y < g.h && id < g.topo.Cores
	}
	for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		if id, ok := present(x+d[0], y+d[1]); ok {
			out = append(out, id)
		}
	}
	return out
}

// route returns the directed links from node `from` to node `to`:
// XY (x first, then y) on the mesh, shortest direction (ties clockwise)
// on the ring.
func (g *geometry) route(from, to int, linkIdx map[linkEnd]int32) []int32 {
	if from == to {
		return nil
	}
	var path []int32
	step := func(next int) {
		i, ok := linkIdx[linkEnd{From: from, To: next}]
		if !ok {
			panic(fmt.Sprintf("soc: route step %d->%d crosses a non-existent link", from, next))
		}
		path = append(path, i)
		from = next
	}
	if g.topo.Kind == TopoRing {
		c := g.topo.Cores
		cw := (to - from + c) % c
		ccw := (from - to + c) % c
		dir := 1
		if ccw < cw {
			dir = -1
		}
		for from != to {
			step((from + dir + c) % c)
		}
		return path
	}
	moveX := func() {
		for from%g.w != to%g.w {
			if to%g.w > from%g.w {
				step(from + 1)
			} else {
				step(from - 1)
			}
		}
	}
	moveY := func() {
		for from/g.w != to/g.w {
			if to/g.w > from/g.w {
				step(from + g.w)
			} else {
				step(from - g.w)
			}
		}
	}
	// XY (x first) routing, except when the turn corner (to's column in
	// from's row) falls on a hole of a ragged last row — then YX. The
	// corner always exists on one of the two orders: rows below the last
	// are full, and two last-row nodes route within their own row.
	if corner := (from/g.w)*g.w + to%g.w; corner < g.topo.Cores {
		moveX()
		moveY()
	} else {
		moveY()
		moveX()
	}
	return path
}

// prevPow2 returns the largest power of two <= v (v >= 1).
func prevPow2(v int) int {
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

// nextPow2 returns the smallest power of two >= v (v >= 1).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}

// validateTopoSpecs checks the spec list against the topology: the list
// must fill the fabric exactly and agree on LLC geometry (the slices are
// carved from it) and on the salting constraint.
func validateTopoSpecs(topo Topology, specs []CoreSpec) error {
	if len(specs) != topo.Cores {
		return &TopologyError{Field: "cores", Msg: fmt.Sprintf("%d specs for a %d-core fabric", len(specs), topo.Cores)}
	}
	if topo.Cores > core.MaxCores {
		return &TopologyError{Field: "cores", Msg: fmt.Sprintf("%d cores exceed the %d-core salting range", topo.Cores, core.MaxCores)}
	}
	return validateLLCGeometry(specs)
}
