package soc

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"cherisim/internal/abi"
	"cherisim/internal/cache"
	"cherisim/internal/core"
	"cherisim/internal/pmu"
)

func topoSpecs(n int, body func(*core.Machine)) []CoreSpec {
	specs := make([]CoreSpec, n)
	for i := range specs {
		specs[i] = CoreSpec{Config: core.DefaultConfig(abi.Hybrid), Body: body}
	}
	return specs
}

func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
	}{
		{"unknown kind", Topology{Kind: "torus", Cores: 4}},
		{"zero cores", Topology{Kind: TopoMesh, Cores: 0}},
		{"negative cores", Topology{Kind: TopoMesh, Cores: -2}},
		{"too many cores", Topology{Kind: TopoMesh, Cores: MaxCores + 1}},
		{"non-power-of-two slices", Topology{Kind: TopoMesh, Cores: 8, Slices: 3}},
		{"slices exceed nodes", Topology{Kind: TopoRing, Cores: 4, Slices: 8}},
		{"zero slice capacity", Topology{Kind: TopoMesh, Cores: 4, SliceCapacity: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.topo.WithDefaults()
			if tc.topo.Cores < 1 {
				// WithDefaults derives Slices from Cores; keep the invalid
				// core count the thing under test.
				topo.Slices = 1
			}
			var te *TopologyError
			if err := topo.Validate(); !errors.As(err, &te) {
				t.Fatalf("Validate() = %v, want *TopologyError", err)
			}
			// The run entry point must reject it too. (Cores == 0 derives
			// the count from the spec list, so pass an empty one.)
			if _, err := RunTopology(tc.topo, topoSpecs(max(tc.topo.Cores, 0), func(m *core.Machine) {})); err == nil {
				t.Fatal("RunTopology accepted an invalid topology")
			}
		})
	}

	if _, err := ParseTopologyKind(" MESH "); err != nil {
		t.Fatalf("kind parsing is not case/space tolerant: %v", err)
	}
}

func TestTopologySpecMismatchRejected(t *testing.T) {
	topo := Topology{Kind: TopoMesh, Cores: 4}
	var te *TopologyError
	if _, err := RunTopology(topo, topoSpecs(3, func(m *core.Machine) {})); !errors.As(err, &te) {
		t.Fatalf("3 specs on a 4-core fabric: %v, want *TopologyError", err)
	}
}

func TestSliceCacheConfigRejectsUnevenSplit(t *testing.T) {
	// A 48 KiB base LLC over 4 slices leaves 12 sets per slice — not a
	// power of two, which cache.New would panic on. The split must be
	// rejected up front with a structured error instead.
	base := cache.Config{Name: "LLC", SizeBytes: 48 << 10, LineSize: 64, Ways: 16, HitLatency: 30}
	topo := Topology{Kind: TopoMesh, Cores: 4}.WithDefaults()
	if _, err := topo.SliceCacheConfig(base); err == nil {
		t.Fatal("uneven slice split accepted")
	}
	specs := topoSpecs(4, func(m *core.Machine) {})
	for i := range specs {
		specs[i].Config.LLC = base
	}
	var te *TopologyError
	if _, err := RunTopology(Topology{Kind: TopoMesh, Cores: 4}, specs); !errors.As(err, &te) {
		t.Fatalf("RunTopology with uneven slice split: %v, want *TopologyError", err)
	}
}

func TestMeshRoutingXY(t *testing.T) {
	// 16 cores on a 4x4 mesh, 16 slices, one per node.
	topo := Topology{Kind: TopoMesh, Cores: 16, Slices: 16}.WithDefaults()
	g := compile(topo)
	if g.w != 4 || g.h != 4 {
		t.Fatalf("grid %dx%d, want 4x4", g.w, g.h)
	}
	hops := func(c, s int) int { return len(g.routes[c*topo.Slices+s]) }
	// Manhattan distances: node 0 (0,0) to node 15 (3,3) is 6 hops;
	// same node is 0; adjacent is 1.
	if h := hops(0, 15); h != 6 {
		t.Fatalf("corner-to-corner = %d hops, want 6", h)
	}
	if h := hops(5, 5); h != 0 {
		t.Fatalf("self route = %d hops, want 0", h)
	}
	if h := hops(0, 1); h != 1 {
		t.Fatalf("adjacent = %d hops, want 1", h)
	}
	// XY routing goes x first: 0 -> 6 (node (2,1)) starts with the
	// 0->1 link, not the 0->4 link.
	r := g.routes[0*topo.Slices+6]
	if len(r) != 3 {
		t.Fatalf("0->6 = %d hops, want 3", len(r))
	}
	if first := g.links[r[0]]; first != (linkEnd{From: 0, To: 1}) {
		t.Fatalf("0->6 starts with %+v, want the +x link 0->1", first)
	}
}

func TestRingRoutingShortestDirection(t *testing.T) {
	topo := Topology{Kind: TopoRing, Cores: 8, Slices: 8}.WithDefaults()
	g := compile(topo)
	hops := func(c, s int) int { return len(g.routes[c*topo.Slices+s]) }
	if h := hops(0, 3); h != 3 {
		t.Fatalf("0->3 = %d hops, want 3 (clockwise)", h)
	}
	if h := hops(0, 6); h != 2 {
		t.Fatalf("0->6 = %d hops, want 2 (counter-clockwise)", h)
	}
	// Distance 4 is a tie on an 8-ring; it must resolve clockwise.
	r := g.routes[0*topo.Slices+4]
	if len(r) != 4 {
		t.Fatalf("0->4 = %d hops, want 4", len(r))
	}
	if first := g.links[r[0]]; first != (linkEnd{From: 0, To: 1}) {
		t.Fatalf("tie resolved via %+v, want clockwise 0->1", first)
	}
}

// topoFingerprint flattens everything observable about a topology co-run:
// every core's full PMU counter file plus the fabric accounting.
func topoFingerprint(res *TopoResult) string {
	s := ""
	for i, r := range res.Cores {
		s += fmt.Sprintf("core%d %v err=%v\n", i, r.Machine.C, r.Err)
	}
	s += fmt.Sprintf("%+v", *res.Fabric)
	return s
}

// TestTopologyRunDeterministicAcrossGOMAXPROCS is the tentpole's
// determinism gate: the same co-run must produce byte-identical results —
// every counter of every core and the whole fabric accounting — for any
// worker parallelism, including two cold invocations at the same setting.
func TestTopologyRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() *TopoResult {
		specs := topoSpecs(8, streamBody(384<<10, 8000))
		res, err := RunTopology(Topology{Kind: TopoMesh, Cores: 8}, specs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var base string
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		a, b := topoFingerprint(run()), topoFingerprint(run())
		if a != b {
			t.Fatalf("GOMAXPROCS=%d: two cold invocations diverge", procs)
		}
		if base == "" {
			base = a
		} else if a != base {
			t.Fatalf("GOMAXPROCS=%d diverges from GOMAXPROCS=1", procs)
		}
	}
}

// TestTopologyRun64CoreMesh exercises the tentpole at scale — this is the
// co-run the CI race step runs under -race: 64 concurrently executing
// cores against 64 slices, with full reconciliation of the fabric's
// accounting against every core's PMU counter file.
func TestTopologyRun64CoreMesh(t *testing.T) {
	n := 64
	specs := topoSpecs(n, streamBody(96<<10, 3000))
	res, err := RunTopology(Topology{Kind: TopoMesh, Cores: n}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Cores); got != n {
		t.Fatalf("%d core results, want %d", got, n)
	}
	for i, r := range res.Cores {
		if r.Err != nil {
			t.Fatalf("core %d: %v", i, r.Err)
		}
		if r.Machine.C.Get(pmu.INST_RETIRED) == 0 {
			t.Fatalf("core %d did no work", i)
		}
	}
	fab := res.Fabric
	if fab.Topology.Slices != 64 || len(fab.Slices) != 64 {
		t.Fatalf("fabric has %d slices, want 64", len(fab.Slices))
	}
	if err := fab.Reconcile(); err != nil {
		t.Fatal(err)
	}
	sliceAcc, coreAcc, linkTrav, coreHops := fab.Totals()
	if sliceAcc == 0 || linkTrav == 0 {
		t.Fatalf("no fabric traffic recorded (accesses=%d traversals=%d)", sliceAcc, linkTrav)
	}
	if sliceAcc != coreAcc || linkTrav != coreHops {
		t.Fatalf("totals disagree: slices %d vs cores %d, links %d vs hops %d",
			sliceAcc, coreAcc, linkTrav, coreHops)
	}
	// Port stats against PMU: both sides count the same post-L2 stream.
	for i, r := range res.Cores {
		p := fab.Cores[i]
		if rd := r.Machine.C.Get(pmu.LL_CACHE_RD); rd != p.Reads {
			t.Fatalf("core %d: port reads %d vs LL_CACHE_RD %d", i, p.Reads, rd)
		}
		if ms := r.Machine.C.Get(pmu.LL_CACHE_MISS_RD); ms != p.ReadMisses {
			t.Fatalf("core %d: port read misses %d vs LL_CACHE_MISS_RD %d", i, p.ReadMisses, ms)
		}
	}
}

func TestTopologyPanicContainedMidEpoch(t *testing.T) {
	// Core 0 yields at least one full quantum (so the fabric has woven its
	// traffic) and then panics mid-epoch. The barrier must not deadlock,
	// the panic surfaces as a structured error, the healthy cores finish,
	// and the fabric still reconciles — the dead core's buffered events
	// are woven, not dropped.
	specs := topoSpecs(4, streamBody(128<<10, 6000))
	specs[0].Body = func(m *core.Machine) {
		streamBody(128<<10, 3*QuantumUops/4)(m) // > 1 quantum of µops
		panic("topo boom")
	}
	res, err := RunTopology(Topology{Kind: TopoMesh, Cores: 4}, specs)
	if err != nil {
		t.Fatal(err)
	}
	var pe *core.PanicError
	if !errors.As(res.Cores[0].Err, &pe) || pe.Value != "topo boom" {
		t.Fatalf("core 0: want contained *core.PanicError, got %v", res.Cores[0].Err)
	}
	for i := 1; i < 4; i++ {
		if res.Cores[i].Err != nil {
			t.Fatalf("healthy core %d failed: %v", i, res.Cores[i].Err)
		}
		if res.Cores[i].Machine.C.Get(pmu.INST_RETIRED) == 0 {
			t.Fatalf("healthy core %d did no work", i)
		}
	}
	if err := res.Fabric.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyZeroUopBody(t *testing.T) {
	// A body that schedules nothing finishes on its first resume; the
	// co-run with a working neighbour must terminate and account sanely.
	specs := []CoreSpec{
		{Config: core.DefaultConfig(abi.Hybrid), Body: func(m *core.Machine) {}},
		{Config: core.DefaultConfig(abi.Hybrid), Body: streamBody(64<<10, 2000)},
	}
	res, err := RunTopology(Topology{Kind: TopoRing, Cores: 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores[0].Err != nil || res.Cores[1].Err != nil {
		t.Fatalf("errs: %v / %v", res.Cores[0].Err, res.Cores[1].Err)
	}
	if res.Cores[0].Machine.Uops() != 0 {
		t.Fatalf("empty body executed %d uops", res.Cores[0].Machine.Uops())
	}
	if res.Cores[1].Machine.C.Get(pmu.INST_RETIRED) == 0 {
		t.Fatal("working core did no work")
	}
	if err := res.Fabric.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyContentionChargesStall(t *testing.T) {
	// A tiny slice capacity forces per-epoch overflow; the charged stall
	// must show up in both the fabric's slice counters and the cores'
	// port stats, and slow the co-run down against an uncontended fabric.
	body := streamBody(512<<10, 20000)
	topoFree := Topology{Kind: TopoMesh, Cores: 4}
	topoTight := Topology{Kind: TopoMesh, Cores: 4, SliceCapacity: 8, LinkCapacity: 8}
	free, err := RunTopology(topoFree, topoSpecs(4, body))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunTopology(topoTight, topoSpecs(4, body))
	if err != nil {
		t.Fatal(err)
	}
	var cont, stall float64
	for i := range tight.Fabric.Slices {
		cont += float64(tight.Fabric.Slices[i].ContentionCycles)
	}
	for i := range tight.Fabric.Cores {
		stall += tight.Fabric.Cores[i].StallCycles
	}
	if cont == 0 || stall == 0 {
		t.Fatalf("no contention recorded (slice=%g stall=%g)", cont, stall)
	}
	for i := range tight.Cores {
		if tc, fc := tight.Cores[i].Machine.Cycles(), free.Cores[i].Machine.Cycles(); tc <= fc {
			t.Fatalf("core %d: contended run (%d cycles) not slower than free run (%d)", i, tc, fc)
		}
	}
}

// TestTopologyParallelSpeedup demonstrates the point of the parallel bound
// phase: with enough real CPUs the same deterministic co-run completes
// faster at high GOMAXPROCS than serialized onto one. Skipped where the
// host can't show it.
func TestTopologyParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skip("needs >= 4 CPUs to demonstrate a speedup")
	}
	specs := func() []CoreSpec { return topoSpecs(16, streamBody(512<<10, 120000)) }
	topo := Topology{Kind: TopoMesh, Cores: 16}
	timeRun := func(procs int) (time.Duration, *TopoResult) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		start := time.Now()
		res, err := RunTopology(topo, specs())
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), res
	}
	timeRun(1) // warm code paths and allocator before measuring
	serial, resSerial := timeRun(1)
	par, resPar := timeRun(min(16, runtime.NumCPU()))
	if a, b := topoFingerprint(resSerial), topoFingerprint(resPar); a != b {
		t.Fatal("serial and parallel runs diverge")
	}
	t.Logf("serial %v, parallel %v (%.2fx)", serial, par, float64(serial)/float64(par))
	if par >= serial {
		t.Fatalf("parallel (%v) not faster than serial (%v)", par, serial)
	}
}

func TestFabricStatsSnapshotIndependent(t *testing.T) {
	// stats() must snapshot, not alias: two calls return equal values.
	specs := topoSpecs(2, streamBody(64<<10, 2000))
	res, err := RunTopology(Topology{Kind: TopoRing, Cores: 2}, specs)
	if err != nil {
		t.Fatal(err)
	}
	other, err := RunTopology(Topology{Kind: TopoRing, Cores: 2}, topoSpecs(2, streamBody(64<<10, 2000)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Fabric, other.Fabric) {
		t.Fatal("identical co-runs produced different fabric stats")
	}
}

func BenchmarkTopologyCoRun16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := RunTopology(Topology{Kind: TopoMesh, Cores: 16}, topoSpecs(16, streamBody(256<<10, 20000)))
		if err != nil {
			b.Fatal(err)
		}
	}
}
