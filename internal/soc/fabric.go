package soc

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cherisim/internal/cache"
	"cherisim/internal/core"
)

// The fabric is the runtime form of a Topology: per-core ports buffer LLC
// traffic during the bound phase (cores running one quantum concurrently),
// and the weave phase at each epoch barrier merges the buffered events
// into the address-interleaved slice caches in a fixed cross-core order —
// (sequence, core) ascending — so the evolved slice state, every counter
// and every charged contention cycle is byte-identical for any GOMAXPROCS.
//
// Latency model: during the bound phase a port prices an access
// optimistically against the slice state frozen at the last barrier plus
// the core's own accesses this epoch (a core always sees its own fills).
// Cross-core fills land at the barrier and become visible next epoch.
// Contention is epoch-granular: traffic beyond a slice's or link's
// per-epoch capacity is charged back to the cores that drove it,
// proportionally, as backend external-memory stall.

// portEvent is one buffered slice access: the slice-local salted address,
// the core-program-order sequence number within the epoch, and the bound
// phase's optimistic outcome.
type portEvent struct {
	addr  uint64
	seq   uint32
	write bool
	hit   bool
}

// CoreFabricStats is one core's cumulative view of the fabric: its slice
// traffic, the NoC hops that traffic crossed, and the contention stall
// charged back to it. Reads/ReadMisses reconcile exactly with the core's
// LL_CACHE_RD / LL_CACHE_MISS_RD PMU counters — both sides count the same
// events.
type CoreFabricStats struct {
	Accesses    uint64  `json:"accesses"`
	Reads       uint64  `json:"reads"`
	ReadMisses  uint64  `json:"read_misses"`
	Writes      uint64  `json:"writes"`
	Hops        uint64  `json:"hops"`
	StallCycles float64 `json:"stall_cycles"`
}

// SliceStats is one LLC slice's cumulative counters. Accesses/Reads/Writes
// tally the merged event stream (so their fabric-wide totals reconcile
// exactly with the per-core stats); ReadMisses is the bound phase's
// optimistic outcome (what the cores were charged), while Refills is the
// woven slice cache's ground truth after cross-core merging.
type SliceStats struct {
	Slice            int    `json:"slice"`
	Node             int    `json:"node"`
	Accesses         uint64 `json:"accesses"`
	Reads            uint64 `json:"reads"`
	ReadMisses       uint64 `json:"read_misses"`
	Writes           uint64 `json:"writes"`
	Refills          uint64 `json:"refills"`
	WriteBacks       uint64 `json:"write_backs"`
	ContentionCycles uint64 `json:"contention_cycles"`
}

// LinkStats is one directed NoC link's cumulative counters.
type LinkStats struct {
	From             int    `json:"from"`
	To               int    `json:"to"`
	Traversals       uint64 `json:"traversals"`
	ContentionCycles uint64 `json:"contention_cycles"`
}

// FabricStats is the fabric's complete post-run accounting, persisted with
// scale units in the result store and rendered by the scale experiment.
type FabricStats struct {
	Topology Topology          `json:"topology"`
	Epochs   uint64            `json:"epochs"`
	Slices   []SliceStats      `json:"slices"`
	Links    []LinkStats       `json:"links"`
	Cores    []CoreFabricStats `json:"cores"`
}

// Totals sums the reconcilable counters on both sides of the fabric.
func (f *FabricStats) Totals() (sliceAcc, coreAcc, linkTrav, coreHops uint64) {
	for i := range f.Slices {
		sliceAcc += f.Slices[i].Accesses
	}
	for i := range f.Cores {
		coreAcc += f.Cores[i].Accesses
		coreHops += f.Cores[i].Hops
	}
	for i := range f.Links {
		linkTrav += f.Links[i].Traversals
	}
	return
}

// Reconcile verifies the fabric's conservation laws: every slice access
// was driven by exactly one core, and every link traversal was one hop of
// exactly one access. A non-nil error means the fabric lost or invented
// traffic.
func (f *FabricStats) Reconcile() error {
	sliceAcc, coreAcc, linkTrav, coreHops := f.Totals()
	if sliceAcc != coreAcc {
		return fmt.Errorf("soc: fabric accounting: %d slice accesses vs %d core accesses", sliceAcc, coreAcc)
	}
	if linkTrav != coreHops {
		return fmt.Errorf("soc: fabric accounting: %d link traversals vs %d core hops", linkTrav, coreHops)
	}
	var sliceReads, coreReads, sliceMiss, coreMiss uint64
	for i := range f.Slices {
		sliceReads += f.Slices[i].Reads
		sliceMiss += f.Slices[i].ReadMisses
	}
	for i := range f.Cores {
		coreReads += f.Cores[i].Reads
		coreMiss += f.Cores[i].ReadMisses
	}
	if sliceReads != coreReads || sliceMiss != coreMiss {
		return fmt.Errorf("soc: fabric accounting: slice reads/misses %d/%d vs core reads/misses %d/%d",
			sliceReads, sliceMiss, coreReads, coreMiss)
	}
	return nil
}

// llcSlice is one address-interleaved directory slice: a cache.Cache plus
// tallies of the merged event stream. The mutex serializes weave-phase
// mutation (slices are merged in parallel, one worker per slice at a time).
type llcSlice struct {
	mu    sync.Mutex
	cache *cache.Cache
	node  int

	accesses   uint64
	reads      uint64
	readMisses uint64
	writes     uint64
	contention uint64
}

// Port is one core's window onto the fabric; it implements core.LLCPort.
// All mutable state is core-private during the bound phase — the only
// shared touches are read-only probes of slice caches frozen between
// barriers — so concurrently running cores never race.
type Port struct {
	f    *fabric
	core int

	hitLat  uint64 // slice hit latency
	dramLat uint64 // this core's DRAM latency on slice miss

	seq       uint32
	evBySlice [][]portEvent
	overlay   map[uint64]struct{} // full line addresses this core touched this epoch
	sliceCnt  []uint32            // per-slice event count this epoch
	touched   []int32             // slices with sliceCnt > 0, first-touch order

	stats CoreFabricStats
}

var _ core.LLCPort = (*Port)(nil)

// Access prices one salted post-L2 access: NoC hops to the home slice plus
// slice-hit or DRAM latency, and buffers the event for the barrier merge.
func (p *Port) Access(addr uint64, write bool) (bool, uint64) {
	f := p.f
	line := addr >> f.lineShift
	s := int(line & f.sliceMask)
	// Slice-local address: drop the interleave bits so consecutive lines
	// spread across slices while still filling every set within a slice.
	local := (line >> f.sliceBits) << f.lineShift

	hops := uint64(len(f.geo.routes[p.core*f.topo.Slices+s]))
	lat := hops * f.topo.HopLatency
	p.stats.Accesses++
	p.stats.Hops += hops

	// The overlay is keyed by the full line address — the slice-local
	// form drops the interleave bits, which would alias consecutive lines
	// of different slices onto one key.
	_, hit := p.overlay[line]
	if !hit {
		hit = f.slices[s].cache.Probe(local)
	}
	if hit {
		lat += p.hitLat
	} else {
		lat += p.dramLat
	}
	if write {
		p.stats.Writes++
	} else {
		p.stats.Reads++
		if !hit {
			p.stats.ReadMisses++
		}
	}

	p.overlay[line] = struct{}{}
	if p.sliceCnt[s] == 0 {
		p.touched = append(p.touched, int32(s))
	}
	p.sliceCnt[s]++
	p.evBySlice[s] = append(p.evBySlice[s], portEvent{addr: local, seq: p.seq, write: write, hit: hit})
	p.seq++
	return hit, lat
}

// resetEpoch clears the port's per-epoch buffers after a weave.
func (p *Port) resetEpoch() {
	for _, s := range p.touched {
		p.sliceCnt[s] = 0
		p.evBySlice[s] = p.evBySlice[s][:0]
	}
	p.touched = p.touched[:0]
	clear(p.overlay)
	p.seq = 0
}

// fabric is the live topology: slices, ports, compiled routes and the
// cumulative + per-epoch accounting state.
type fabric struct {
	topo Topology
	geo  *geometry

	lineShift uint
	sliceBits uint
	sliceMask uint64

	slices []*llcSlice
	ports  []*Port
	epochs uint64

	// Per-epoch scratch (touched-list reset) and cumulative link counters,
	// indexed like geo.links.
	sliceTotals    []uint64
	linkTotals     []uint64
	linkTouched    []int32
	linkTraversals []uint64
	linkContention []uint64
}

// newFabric compiles the topology and builds slices and ports. sliceCfg
// is the per-slice cache geometry (see Topology.SliceCacheConfig).
func newFabric(topo Topology, sliceCfg cache.Config, specs []CoreSpec) *fabric {
	geo := compile(topo)
	f := &fabric{
		topo:           topo,
		geo:            geo,
		lineShift:      log2u(uint64(sliceCfg.LineSize)),
		sliceBits:      log2u(uint64(topo.Slices)),
		sliceMask:      uint64(topo.Slices - 1),
		slices:         make([]*llcSlice, topo.Slices),
		ports:          make([]*Port, topo.Cores),
		sliceTotals:    make([]uint64, topo.Slices),
		linkTotals:     make([]uint64, len(geo.links)),
		linkTraversals: make([]uint64, len(geo.links)),
		linkContention: make([]uint64, len(geo.links)),
	}
	for s := range f.slices {
		f.slices[s] = &llcSlice{cache: cache.New(sliceCfg), node: geo.sliceNode[s]}
	}
	for c := range f.ports {
		f.ports[c] = &Port{
			f:         f,
			core:      c,
			hitLat:    sliceCfg.HitLatency,
			dramLat:   specs[c].Config.DRAMLatency,
			evBySlice: make([][]portEvent, topo.Slices),
			overlay:   make(map[uint64]struct{}),
			sliceCnt:  make([]uint32, topo.Slices),
		}
	}
	return f
}

// log2u returns the base-2 logarithm of a power of two.
func log2u(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// mergeCursor / mergeHeap implement the k-way (seq, core)-ordered merge of
// per-core event lists into one slice.
type mergeCursor struct {
	core int
	evs  []portEvent
	pos  int
}

type mergeHeap []*mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	a, b := h[i].evs[h[i].pos], h[j].evs[h[j].pos]
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return h[i].core < h[j].core
}
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() (out any)    { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h mergeHeap) peek() *mergeCursor { return h[0] }

// mergeSlice replays one slice's buffered events into its cache in the
// fixed (seq, core) order and tallies the slice counters.
func (f *fabric) mergeSlice(s int) {
	sl := f.slices[s]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	var h mergeHeap
	for _, p := range f.ports {
		if evs := p.evBySlice[s]; len(evs) > 0 {
			h = append(h, &mergeCursor{core: p.core, evs: evs})
		}
	}
	if len(h) == 0 {
		return
	}
	heap.Init(&h)
	for h.Len() > 0 {
		c := h.peek()
		ev := c.evs[c.pos]
		sl.cache.Access(ev.addr, ev.write)
		sl.accesses++
		if ev.write {
			sl.writes++
		} else {
			sl.reads++
			if !ev.hit {
				sl.readMisses++
			}
		}
		c.pos++
		if c.pos == len(c.evs) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
}

// weave runs the barrier phase: parallel per-slice merges (the expensive
// cache replays), then sequential deterministic contention accounting.
// charge bills contention stall cycles back to a core; the scheduler
// filters out cores that already finalized.
func (f *fabric) weave(charge func(core int, cycles float64)) {
	f.epochs++

	// Parallel slice merges: slices are independent, so any worker count
	// (bounded by GOMAXPROCS) yields the same state.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(f.slices) {
		workers = len(f.slices)
	}
	if workers <= 1 {
		for s := range f.slices {
			f.mergeSlice(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= len(f.slices) {
						return
					}
					f.mergeSlice(s)
				}
			}()
		}
		wg.Wait()
	}

	// Slice contention: traffic beyond the per-epoch capacity queues;
	// overflow cycles are charged to the contending cores proportionally,
	// in (slice, core) order so float accumulation is deterministic.
	for s := range f.sliceTotals {
		f.sliceTotals[s] = 0
	}
	for _, p := range f.ports {
		for _, s := range p.touched {
			f.sliceTotals[s] += uint64(p.sliceCnt[s])
		}
	}
	pen := f.topo.QueuePenalty
	sliceCap := uint64(f.topo.SliceCapacity)
	for s, total := range f.sliceTotals {
		if total <= sliceCap {
			continue
		}
		penalty := (total - sliceCap) * pen
		f.slices[s].contention += penalty
		for ci, p := range f.ports {
			if cnt := p.sliceCnt[s]; cnt > 0 {
				charge(ci, float64(penalty)*float64(cnt)/float64(total))
			}
		}
	}

	// Link traffic and contention, same scheme per directed link.
	for _, l := range f.linkTouched {
		f.linkTotals[l] = 0
	}
	f.linkTouched = f.linkTouched[:0]
	for ci, p := range f.ports {
		for _, s := range p.touched {
			cnt := uint64(p.sliceCnt[s])
			for _, l := range f.geo.routes[ci*f.topo.Slices+int(s)] {
				if f.linkTotals[l] == 0 {
					f.linkTouched = append(f.linkTouched, l)
				}
				f.linkTotals[l] += cnt
				f.linkTraversals[l] += cnt
			}
		}
	}
	linkCap := uint64(f.topo.LinkCapacity)
	for _, l := range f.linkTouched {
		if total := f.linkTotals[l]; total > linkCap {
			f.linkContention[l] += (total - linkCap) * pen
		}
	}
	for ci, p := range f.ports {
		for _, s := range p.touched {
			cnt := uint64(p.sliceCnt[s])
			for _, l := range f.geo.routes[ci*f.topo.Slices+int(s)] {
				if total := f.linkTotals[l]; total > linkCap {
					charge(ci, float64((total-linkCap)*pen)*float64(cnt)/float64(total))
				}
			}
		}
	}

	for _, p := range f.ports {
		p.resetEpoch()
	}
}

// stats snapshots the fabric's cumulative accounting.
func (f *fabric) stats() *FabricStats {
	out := &FabricStats{
		Topology: f.topo,
		Epochs:   f.epochs,
		Slices:   make([]SliceStats, len(f.slices)),
		Links:    make([]LinkStats, len(f.geo.links)),
		Cores:    make([]CoreFabricStats, len(f.ports)),
	}
	for s, sl := range f.slices {
		out.Slices[s] = SliceStats{
			Slice:            s,
			Node:             sl.node,
			Accesses:         sl.accesses,
			Reads:            sl.reads,
			ReadMisses:       sl.readMisses,
			Writes:           sl.writes,
			Refills:          sl.cache.Stats.Refills,
			WriteBacks:       sl.cache.Stats.WriteBacks,
			ContentionCycles: sl.contention,
		}
	}
	for l, e := range f.geo.links {
		out.Links[l] = LinkStats{
			From:             e.From,
			To:               e.To,
			Traversals:       f.linkTraversals[l],
			ContentionCycles: f.linkContention[l],
		}
	}
	for c, p := range f.ports {
		out.Cores[c] = p.stats
	}
	return out
}
