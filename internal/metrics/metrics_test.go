package metrics

import (
	"testing"
	"testing/quick"

	"cherisim/internal/pmu"
)

func sampleCounters() *pmu.Counters {
	var c pmu.Counters
	c.Add(pmu.CPU_CYCLES, 10000)
	c.Add(pmu.INST_RETIRED, 15000)
	c.Add(pmu.INST_SPEC, 16000)
	c.Add(pmu.STALL_FRONTEND, 1000)
	c.Add(pmu.STALL_BACKEND, 3000)
	c.Add(pmu.BR_RETIRED, 2000)
	c.Add(pmu.BR_MIS_PRED_RETIRED, 40)
	c.Add(pmu.L1I_CACHE, 8000)
	c.Add(pmu.L1I_CACHE_REFILL, 80)
	c.Add(pmu.L1D_CACHE, 5000)
	c.Add(pmu.L1D_CACHE_REFILL, 250)
	c.Add(pmu.L2D_CACHE, 400)
	c.Add(pmu.L2D_CACHE_REFILL, 100)
	c.Add(pmu.LL_CACHE_RD, 100)
	c.Add(pmu.LL_CACHE_MISS_RD, 95)
	c.Add(pmu.L1I_TLB, 8000)
	c.Add(pmu.L1D_TLB, 5000)
	c.Add(pmu.ITLB_WALK, 8)
	c.Add(pmu.DTLB_WALK, 25)
	c.Add(pmu.LD_SPEC, 4000)
	c.Add(pmu.ST_SPEC, 1500)
	c.Add(pmu.DP_SPEC, 7000)
	c.Add(pmu.ASE_SPEC, 1000)
	c.Add(pmu.VFP_SPEC, 2000)
	c.Add(pmu.BR_IMMED_SPEC, 500)
	c.Add(pmu.MEM_ACCESS_RD, 4000)
	c.Add(pmu.MEM_ACCESS_WR, 1500)
	c.Add(pmu.CAP_MEM_ACCESS_RD, 2000)
	c.Add(pmu.CAP_MEM_ACCESS_WR, 900)
	c.Add(pmu.MEM_ACCESS_RD_CTAG, 1900)
	c.Add(pmu.MEM_ACCESS_WR_CTAG, 850)
	return &c
}

func TestTable1Formulas(t *testing.T) {
	c := sampleCounters()
	m := Compute(c)

	approx := func(name string, got, want float64) {
		t.Helper()
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("IPC", m.IPC, 1.5)
	approx("CPI", m.CPI, 10000.0/15000.0)
	approx("FrontendBound", m.FrontendBound, 0.1)
	approx("BackendBound", m.BackendBound, 0.3)
	// Retiring = INST_SPEC / (INST_SPEC + sum of class *_SPEC).
	spec := 16000.0 + 4000 + 1500 + 7000 + 1000 + 2000 + 500
	approx("Retiring", m.Retiring, 16000.0/spec)
	approx("BadSpec", m.BadSpec, 1-16000.0/spec-0.1-0.3)
	approx("BranchMR", m.BranchMR, 0.02)
	approx("L1IMR", m.L1IMR, 0.01)
	approx("L1IMPKI", m.L1IMPKI, 80.0/15000*1000)
	approx("L1DMR", m.L1DMR, 0.05)
	approx("L2MR", m.L2MR, 0.25)
	approx("LLCReadMR", m.LLCReadMR, 0.95)
	approx("ITLBWalkRate", m.ITLBWalkRate, 8.0/8000)
	approx("DTLBWalkRate", m.DTLBWalkRate, 25.0/5000)
	approx("CapLoadDensity", m.CapLoadDensity, 0.5)
	approx("CapStoreDensity", m.CapStoreDensity, 0.6)
	approx("CapTrafficShare", m.CapTrafficShare, 2900.0/5500)
	approx("CapTagOverhead", m.CapTagOverhead, 2750.0/5500)
	approx("MemoryIntensity", m.MemoryIntensity, 5500.0/10000)
}

func TestZeroCountersSafe(t *testing.T) {
	var c pmu.Counters
	m := Compute(&c)
	if m.IPC != 0 || m.BranchMR != 0 || m.CapLoadDensity != 0 || m.MemoryIntensity != 0 {
		t.Errorf("zero counters produced nonzero metrics: %+v", m)
	}
}

func TestTopLevelCategoriesSumAtMostOne(t *testing.T) {
	// Property: Retiring + BadSpec + FE + BE is >= the unclamped identity
	// (BadSpec absorbs the residual, clamped at zero), and BadSpec ∈ [0,1].
	f := func(cyc, fe, be, inst uint32) bool {
		var c pmu.Counters
		cycles := uint64(cyc%100000) + 1000
		c.Add(pmu.CPU_CYCLES, cycles)
		c.Add(pmu.STALL_FRONTEND, uint64(fe)%cycles)
		c.Add(pmu.STALL_BACKEND, uint64(be)%cycles)
		c.Add(pmu.INST_SPEC, uint64(inst%100000)+1)
		c.Add(pmu.DP_SPEC, uint64(inst%90000)+1)
		m := Compute(&c)
		return m.BadSpec >= 0 && m.BadSpec <= 1 && m.Retiring >= 0 && m.Retiring <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyMI(t *testing.T) {
	cases := []struct {
		mi   float64
		want MIClass
	}{
		{0.309, ComputeIntensive}, // LLaMA inference
		{0.438, ComputeIntensive}, // lbm
		{0.565, ComputeIntensive}, // leela
		{0.680, Balanced},         // QuickJS
		{0.816, Balanced},         // SQLite
		{0.922, Balanced},         // parest
		{1.164, MemoryCentric},    // omnetpp
	}
	for _, tc := range cases {
		if got := ClassifyMI(tc.mi); got != tc.want {
			t.Errorf("ClassifyMI(%v) = %v, want %v", tc.mi, got, tc.want)
		}
	}
}
