// Package metrics computes the derived metrics of the paper's Table 1 from
// raw PMU event counts. Every formula matches the table verbatim, including
// the quirks of the paper's methodology (Retiring% as INST_SPEC over the
// sum of all *_SPEC events, and Bad Speculation as the clamped residual of
// the four top-level categories).
package metrics

import "cherisim/internal/pmu"

// Metrics is the full derived-metric set for one (workload, ABI) sample.
type Metrics struct {
	// Cycle accounting.
	Cycles  uint64
	Insts   uint64
	Seconds float64
	IPC     float64
	CPI     float64

	// Top-level stalls (fractions of a notional slot budget; see Table 1).
	FrontendBound float64
	BackendBound  float64
	Retiring      float64
	BadSpec       float64

	// Branch prediction.
	BranchMR float64

	// Cache behaviour.
	L1IMR       float64
	L1IMPKI     float64
	L1DMR       float64
	L1DMPKI     float64
	L2MR        float64
	L2MPKI      float64
	LLCReadMR   float64
	LLCReadMPKI float64

	// TLB behaviour.
	ITLBWalkRate float64
	ITLBWPKI     float64
	DTLBWalkRate float64
	DTLBWPKI     float64

	// CHERI-specific memory metrics.
	CapLoadDensity  float64
	CapStoreDensity float64
	CapTrafficShare float64
	CapTagOverhead  float64

	// Instruction-mix-based memory intensity (Table 2's MI).
	MemoryIntensity float64
}

// specSum returns SUM(*_SPEC) per the paper's footnote: INST_SPEC plus the
// per-class speculative counts.
func specSum(c *pmu.Counters) uint64 {
	return c.Get(pmu.INST_SPEC) + c.Sum(pmu.SpecEvents...)
}

// Compute derives the full metric set from a counter file using the
// Table 1 formulas.
func Compute(c *pmu.Counters) Metrics {
	var m Metrics
	m.Cycles = c.Get(pmu.CPU_CYCLES)
	m.Insts = c.Get(pmu.INST_RETIRED)
	m.Seconds = float64(m.Cycles) / 2.5e9
	m.IPC = c.Ratio(pmu.INST_RETIRED, pmu.CPU_CYCLES)
	m.CPI = c.Ratio(pmu.CPU_CYCLES, pmu.INST_RETIRED)

	m.FrontendBound = c.Ratio(pmu.STALL_FRONTEND, pmu.CPU_CYCLES)
	m.BackendBound = c.Ratio(pmu.STALL_BACKEND, pmu.CPU_CYCLES)
	if s := specSum(c); s > 0 {
		m.Retiring = float64(c.Get(pmu.INST_SPEC)) / float64(s)
	}
	m.BadSpec = clamp01(1 - m.Retiring - m.FrontendBound - m.BackendBound)

	m.BranchMR = c.Ratio(pmu.BR_MIS_PRED_RETIRED, pmu.BR_RETIRED)

	kilo := func(e pmu.Event) float64 {
		if m.Insts == 0 {
			return 0
		}
		return float64(c.Get(e)) / float64(m.Insts) * 1000
	}
	m.L1IMR = c.Ratio(pmu.L1I_CACHE_REFILL, pmu.L1I_CACHE)
	m.L1IMPKI = kilo(pmu.L1I_CACHE_REFILL)
	m.L1DMR = c.Ratio(pmu.L1D_CACHE_REFILL, pmu.L1D_CACHE)
	m.L1DMPKI = kilo(pmu.L1D_CACHE_REFILL)
	m.L2MR = c.Ratio(pmu.L2D_CACHE_REFILL, pmu.L2D_CACHE)
	m.L2MPKI = kilo(pmu.L2D_CACHE_REFILL)
	m.LLCReadMR = c.Ratio(pmu.LL_CACHE_MISS_RD, pmu.LL_CACHE_RD)
	m.LLCReadMPKI = kilo(pmu.LL_CACHE_MISS_RD)

	m.ITLBWalkRate = c.Ratio(pmu.ITLB_WALK, pmu.L1I_TLB)
	m.ITLBWPKI = kilo(pmu.ITLB_WALK)
	m.DTLBWalkRate = c.Ratio(pmu.DTLB_WALK, pmu.L1D_TLB)
	m.DTLBWPKI = kilo(pmu.DTLB_WALK)

	m.CapLoadDensity = c.Ratio(pmu.CAP_MEM_ACCESS_RD, pmu.LD_SPEC)
	m.CapStoreDensity = c.Ratio(pmu.CAP_MEM_ACCESS_WR, pmu.ST_SPEC)
	if tot := c.Get(pmu.MEM_ACCESS_RD) + c.Get(pmu.MEM_ACCESS_WR); tot > 0 {
		m.CapTrafficShare = float64(c.Get(pmu.CAP_MEM_ACCESS_RD)+c.Get(pmu.CAP_MEM_ACCESS_WR)) / float64(tot)
		m.CapTagOverhead = float64(c.Get(pmu.MEM_ACCESS_RD_CTAG)+c.Get(pmu.MEM_ACCESS_WR_CTAG)) / float64(tot)
	}

	if den := c.Sum(pmu.DP_SPEC, pmu.ASE_SPEC, pmu.VFP_SPEC); den > 0 {
		m.MemoryIntensity = float64(c.Sum(pmu.LD_SPEC, pmu.ST_SPEC)) / float64(den)
	}
	return m
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MIClass is the paper's memory-intensity classification (§3.3).
type MIClass string

// Classification bands from §3.3.
const (
	ComputeIntensive MIClass = "compute-intensive"
	Balanced         MIClass = "balanced"
	MemoryCentric    MIClass = "memory-centric"
)

// ClassifyMI applies the paper's thresholds: below ~0.6 compute-intensive,
// 0.6–1.0 balanced, above 1.0 memory-centric.
func ClassifyMI(mi float64) MIClass {
	switch {
	case mi < 0.6:
		return ComputeIntensive
	case mi <= 1.0:
		return Balanced
	default:
		return MemoryCentric
	}
}
