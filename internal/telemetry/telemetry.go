// Package telemetry is the measurement engine's own observability layer:
// the same lens the simulator points at the Morello platform (PMU counters,
// top-down attribution), turned back onto the campaign engine that drives
// it. It is dependency-free (stdlib only) and built around one invariant:
// a nil *Hub is a fully inert telemetry system — every method on every
// handle is nil-safe, performs no work, and allocates nothing, so the
// instrumented hot paths cost a pointer test when telemetry is off and the
// campaign output stays byte-identical.
//
// Three coordinated pieces:
//
//   - Collector: hierarchical spans (campaign → experiment → workload-run
//     → attempt) on a lock-cheap ring buffer, safe under the worker pool,
//     with instant events (fault injections) attached to the span they
//     occurred in. Spans carry structured attributes (ABI, workload,
//     scale, seed, uops, sim-ms, ...).
//   - Registry: counters, gauges and histograms with a stable-ordered,
//     parseable text snapshot.
//   - Exporters: a Chrome trace-event (Perfetto-loadable) JSON writer
//     rendering one track per pool worker, and an ops HTTP server serving
//     /metrics, /spans, /healthz and net/http/pprof.
package telemetry

import (
	"io"
	"log/slog"
)

// Hub bundles the telemetry backends one campaign shares. A nil Hub is the
// disabled state: handles obtained through it are nil and all operations on
// them are allocation-free no-ops.
type Hub struct {
	Spans   *Collector
	Metrics *Registry
	Log     *slog.Logger
	// Profiles retains the latest per-run attribution profiles for the ops
	// server's /profiles endpoint (see ProfileStore).
	Profiles *ProfileStore
}

// New builds an enabled hub with a default-capacity span collector, an
// empty registry, and a discarded log (replace Log to enable logging).
func New() *Hub {
	return &Hub{
		Spans:    NewCollector(0),
		Metrics:  NewRegistry(),
		Log:      Discard(),
		Profiles: NewProfileStore(),
	}
}

// Enabled reports whether the hub records anything at all.
func (h *Hub) Enabled() bool { return h != nil }

// Collector returns the hub's span collector, nil when disabled.
func (h *Hub) collector() *Collector {
	if h == nil {
		return nil
	}
	return h.Spans
}

// Start opens a root-level span on the hub's collector (nil-safe).
func (h *Hub) Start(name string) *Span { return h.collector().Start(name, nil) }

// Logger returns the hub's structured logger, or a discarding logger when
// the hub is nil or has none, so call sites never need a nil check.
func (h *Hub) Logger() *slog.Logger {
	if h == nil || h.Log == nil {
		return Discard()
	}
	return h.Log
}

// discardLogger is the shared silent logger (slog.DiscardHandler is Go
// 1.24+; the module targets 1.22, so discard via a leveled-out handler).
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	Level: slog.Level(127),
}))

// Discard returns a logger that drops every record.
func Discard() *slog.Logger { return discardLogger }

// NewLogger builds a structured logger at the given level ("debug", "info",
// "warn", "error"; empty disables logging) writing text or JSON lines to w.
func NewLogger(w io.Writer, level string, jsonFormat bool) (*slog.Logger, error) {
	if level == "" {
		return Discard(), nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}
