package telemetry

import (
	"encoding/json"
	"sort"
	"sync"
)

// ProfileStore retains the latest per-run attribution profile per key
// (typically "workload/abi"), pre-serialised to JSON, for the ops server's
// /profiles endpoint. Like every telemetry handle it is nil-safe: a nil
// store accepts and serves nothing, so publishing costs a pointer test
// when telemetry is off.
type ProfileStore struct {
	mu   sync.Mutex
	data map[string]json.RawMessage
}

// NewProfileStore builds an empty profile store.
func NewProfileStore() *ProfileStore {
	return &ProfileStore{data: map[string]json.RawMessage{}}
}

// Put records the latest profile for key, replacing any previous one. v is
// marshalled immediately (the profile is a snapshot; later mutations must
// not leak into the served copy). Marshal failures drop the update —
// telemetry never fails the run it observes.
func (p *ProfileStore) Put(key string, v any) {
	if p == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return
	}
	p.mu.Lock()
	p.data[key] = raw
	p.mu.Unlock()
}

// Snapshot returns the stored profiles keyed by run, in a fresh map safe
// for concurrent use.
func (p *ProfileStore) Snapshot() map[string]json.RawMessage {
	out := map[string]json.RawMessage{}
	if p == nil {
		return out
	}
	p.mu.Lock()
	for k, v := range p.data {
		out[k] = v
	}
	p.mu.Unlock()
	return out
}

// Keys returns the stored run keys, sorted.
func (p *ProfileStore) Keys() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]string, 0, len(p.data))
	for k := range p.data {
		out = append(out, k)
	}
	p.mu.Unlock()
	sort.Strings(out)
	return out
}

// Len returns the number of stored profiles.
func (p *ProfileStore) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.data)
}
