package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// OpsHandler builds the ops endpoint mux for a hub:
//
//	/metrics       deterministic text snapshot of the metrics registry
//	/spans         recent finished spans as JSON (newest last)
//	/profiles      latest per-run attribution profiles, keyed by run
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The handler reads live campaign state, so it is safe to scrape while the
// worker pool is executing. Mid-body write failures (a scraper hanging up)
// abort the response and count on the hub's ops_write_errors counter — they
// are a property of that connection, not an error state of the service.
func OpsHandler(h *Hub) http.Handler {
	writeErr := func() {
		if h != nil {
			h.Metrics.Counter("ops_write_errors").Inc()
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h != nil {
			h.Metrics.WriteText(w)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []SpanRecord
		if h != nil {
			spans = h.Spans.Snapshot()
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(spans); err != nil {
			writeErr()
		}
	})
	mux.HandleFunc("/profiles", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var store *ProfileStore
		if h != nil {
			store = h.Profiles
		}
		// Marshal keys in sorted order for a deterministic scrape.
		snap := store.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if _, err := w.Write([]byte("{")); err != nil {
			writeErr()
			return
		}
		for i, k := range keys {
			if i > 0 {
				if _, err := w.Write([]byte(",")); err != nil {
					writeErr()
					return
				}
			}
			nameJSON, _ := json.Marshal(k)
			for _, part := range [][]byte{[]byte("\n "), nameJSON, []byte(": "), snap[k]} {
				if _, err := w.Write(part); err != nil {
					writeErr()
					return
				}
			}
		}
		var closing []byte
		if len(keys) > 0 {
			closing = []byte("\n}\n")
		} else {
			closing = []byte("}\n")
		}
		if _, err := w.Write(closing); err != nil {
			writeErr()
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ShutdownGrace bounds how long Close waits for in-flight scrapes to
// complete before falling back to a hard close.
const ShutdownGrace = 5 * time.Second

// OpsServer is a running ops endpoint.
type OpsServer struct {
	Addr string // the bound address (resolves ":0" to the real port)
	srv  *http.Server
	done chan struct{}
}

// StartOps binds addr and serves the hub's ops endpoints in the
// background. The caller owns shutdown via Close.
func StartOps(addr string, h *Hub) (*OpsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return serveOps(l, OpsHandler(h)), nil
}

// Serve binds addr and serves an arbitrary handler under the ops server's
// lifecycle (background Serve, graceful Close) — cmd/campaignd mounts its
// campaign API plus the ops mux on one listener through this.
func Serve(addr string, handler http.Handler) (*OpsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return serveOps(l, handler), nil
}

// serveOps runs handler on an already-bound listener (split from StartOps
// so shutdown behaviour is testable with an arbitrary handler).
func serveOps(l net.Listener, handler http.Handler) *OpsServer {
	o := &OpsServer{
		Addr: l.Addr().String(),
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(o.done)
		o.srv.Serve(l)
	}()
	return o
}

// Close stops the server gracefully: the listener closes immediately, but
// in-flight scrapes get up to ShutdownGrace to finish their response — a
// long-running service must not truncate a /spans body mid-scrape just
// because it is restarting. Requests still running at the deadline are
// hard-closed.
func (o *OpsServer) Close() error {
	if o == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
	defer cancel()
	err := o.srv.Shutdown(ctx)
	if err != nil {
		// Grace expired (or shutdown failed): drop remaining connections.
		o.srv.Close()
	}
	<-o.done
	return err
}
