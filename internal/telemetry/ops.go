package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// OpsHandler builds the ops endpoint mux for a hub:
//
//	/metrics       deterministic text snapshot of the metrics registry
//	/spans         recent finished spans as JSON (newest last)
//	/profiles      latest per-run attribution profiles, keyed by run
//	/healthz       liveness probe ("ok")
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The handler reads live campaign state, so it is safe to scrape while the
// worker pool is executing.
func OpsHandler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h != nil {
			h.Metrics.WriteText(w)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var spans []SpanRecord
		if h != nil {
			spans = h.Spans.Snapshot()
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(spans)
	})
	mux.HandleFunc("/profiles", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var store *ProfileStore
		if h != nil {
			store = h.Profiles
		}
		// Marshal keys in sorted order for a deterministic scrape.
		snap := store.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Write([]byte("{"))
		for i, k := range keys {
			if i > 0 {
				w.Write([]byte(","))
			}
			nameJSON, _ := json.Marshal(k)
			w.Write([]byte("\n "))
			w.Write(nameJSON)
			w.Write([]byte(": "))
			w.Write(snap[k])
		}
		if len(keys) > 0 {
			w.Write([]byte("\n"))
		}
		w.Write([]byte("}\n"))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops endpoint.
type OpsServer struct {
	Addr string // the bound address (resolves ":0" to the real port)
	srv  *http.Server
	done chan struct{}
}

// StartOps binds addr and serves the hub's ops endpoints in the
// background. The caller owns shutdown via Close.
func StartOps(addr string, h *Hub) (*OpsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &OpsServer{
		Addr: l.Addr().String(),
		srv:  &http.Server{Handler: OpsHandler(h), ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(o.done)
		o.srv.Serve(l)
	}()
	return o, nil
}

// Close stops the server and waits for the serve loop to exit.
func (o *OpsServer) Close() error {
	if o == nil {
		return nil
	}
	err := o.srv.Close()
	<-o.done
	return err
}
