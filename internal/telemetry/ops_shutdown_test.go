package telemetry

import (
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestCloseWaitsForInflightScrape is the regression test for the hard
// http.Server.Close teardown: a scrape that is mid-body when Close is
// called must receive its complete response. The handler flushes its first
// chunk (so the request is demonstrably in flight), waits for Close to
// begin, then writes the rest.
func TestCloseWaitsForInflightScrape(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inBody := make(chan struct{})
	closing := make(chan struct{})
	srv := serveOps(l, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("head..."))
		w.(http.Flusher).Flush()
		close(inBody)
		select {
		case <-closing:
		case <-time.After(5 * time.Second):
		}
		time.Sleep(50 * time.Millisecond) // Close must still be waiting here
		w.Write([]byte("tail\n"))
	}))

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	<-inBody
	closed := make(chan error, 1)
	go func() {
		close(closing)
		closed <- srv.Close()
	}()

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight scrape truncated by Close: %v", r.err)
	}
	if r.body != "head...tail\n" {
		t.Fatalf("scrape body = %q, want full body", r.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("graceful Close returned %v", err)
	}
}

// TestSubscribeFeed covers the collector's live span feed: records ended
// after Subscribe arrive in end order, cancel closes the feed, and a full
// buffer drops instead of blocking the recording path.
func TestSubscribeFeed(t *testing.T) {
	c := NewCollector(8)
	feed, cancel := c.Subscribe(4)
	c.Start("a", nil).End()
	c.Start("b", nil).End()
	if r := <-feed; r.Name != "a" {
		t.Fatalf("first record = %q, want a", r.Name)
	}
	if r := <-feed; r.Name != "b" {
		t.Fatalf("second record = %q, want b", r.Name)
	}
	cancel()
	if _, ok := <-feed; ok {
		t.Fatal("feed not closed by cancel")
	}
	// Ending spans after cancel must not panic (no send on closed channel).
	c.Start("c", nil).End()

	// Lagging subscriber: fill the buffer and keep ending spans.
	feed2, cancel2 := c.Subscribe(1)
	defer cancel2()
	c.Start("d", nil).End()
	c.Start("e", nil).End() // no reader: dropped, not blocked
	if r := <-feed2; r.Name != "d" {
		t.Fatalf("buffered record = %q, want d", r.Name)
	}
	if c.Dropped() == 0 {
		t.Error("lagging subscriber drop not counted")
	}

	// Nil collector: inert closed feed.
	var nilC *Collector
	f, cancelNil := nilC.Subscribe(1)
	if _, ok := <-f; ok {
		t.Fatal("nil collector feed not closed")
	}
	cancelNil()
}
