package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one structured span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// A returns an attribute (shorthand for literals at instrumentation sites).
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Instant is a point event recorded inside a span — e.g. one injected
// fault — placed on the span's track at its wall-clock offset.
type Instant struct {
	Name  string  `json:"name"`
	AtUs  float64 `json:"at_us"` // offset from the collector epoch, µs
	Attrs []Attr  `json:"attrs,omitempty"`
}

// SpanRecord is one finished span as retained by the collector's ring.
type SpanRecord struct {
	ID       uint64    `json:"id"`
	Parent   uint64    `json:"parent,omitempty"` // 0 = root
	Name     string    `json:"name"`
	Track    int       `json:"track"` // collector track (Perfetto tid)
	StartUs  float64   `json:"start_us"`
	DurUs    float64   `json:"dur_us"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Instants []Instant `json:"instants,omitempty"`
}

// DefaultSpanCapacity is the ring size when NewCollector is given <= 0; a
// full campaign (experiments × runs × attempts) is a few hundred spans, so
// the default retains everything with headroom.
const DefaultSpanCapacity = 8192

// TrackCampaign is the pre-registered track 0, carrying campaign- and
// experiment-level spans (worker and core tracks are registered on demand).
const TrackCampaign = 0

// Collector records hierarchical spans into a fixed-capacity ring buffer.
// Starting a span is an atomic ID fetch; the only lock is a short critical
// section copying the finished record into the ring at End, so collection
// stays cheap under the worker pool. A nil *Collector is fully inert.
type Collector struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu         sync.Mutex
	ring       []SpanRecord
	total      uint64 // spans ever ended; ring holds the last len(ring)
	tracks     map[string]int
	trackNames []string
	subs       map[int]chan SpanRecord
	nextSub    int
	dropped    uint64 // records not delivered to a lagging subscriber
}

// NewCollector builds a collector retaining the last capacity spans
// (DefaultSpanCapacity when capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Collector{
		epoch:      time.Now(),
		ring:       make([]SpanRecord, 0, capacity),
		tracks:     map[string]int{"campaign": TrackCampaign},
		trackNames: []string{"campaign"},
	}
}

// now returns the monotonic offset from the collector epoch in µs.
func (c *Collector) now() float64 {
	return float64(time.Since(c.epoch).Nanoseconds()) / 1e3
}

// Track returns the stable integer ID for a named timeline track (one per
// pool worker, soc core, ...), registering it on first use. Track IDs map
// onto Perfetto thread IDs in the trace export. Nil-safe (returns 0).
func (c *Collector) Track(name string) int {
	if c == nil {
		return TrackCampaign
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.tracks[name]; ok {
		return id
	}
	id := len(c.trackNames)
	c.tracks[name] = id
	c.trackNames = append(c.trackNames, name)
	return id
}

// TrackNames returns the registered track names indexed by track ID.
func (c *Collector) TrackNames() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trackNames...)
}

// Start opens a span under parent (nil = root). On a nil collector it
// returns a nil span, on which every method is an allocation-free no-op.
func (c *Collector) Start(name string, parent *Span) *Span {
	if c == nil {
		return nil
	}
	s := &Span{c: c, id: c.nextID.Add(1), name: name, start: c.now()}
	if parent != nil {
		s.parent = parent.id
		s.track = parent.track
	}
	return s
}

// end appends a finished span record to the ring and fans it out to the
// live subscribers (non-blocking: a lagging subscriber drops records, it
// never stalls the instrumented hot path).
func (c *Collector) end(rec SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, rec)
	} else {
		c.ring[c.total%uint64(len(c.ring))] = rec
	}
	c.total++
	for _, ch := range c.subs {
		select {
		case ch <- rec:
		default:
			c.dropped++
		}
	}
}

// Subscribe returns a live feed of span records ended after the call — the
// streaming sibling of Snapshot, for progress endpoints that follow a
// campaign instead of polling it. The channel buffers buf records
// (DefaultSpanCapacity/16 when <= 0); delivery is best-effort — records a
// lagging subscriber cannot take are dropped, never buffered unboundedly.
// cancel unsubscribes and closes the channel; it must be called exactly
// once, and the caller must keep draining (or stop receiving) after cancel.
func (c *Collector) Subscribe(buf int) (feed <-chan SpanRecord, cancel func()) {
	if c == nil {
		ch := make(chan SpanRecord)
		close(ch)
		return ch, func() {}
	}
	if buf <= 0 {
		buf = DefaultSpanCapacity / 16
	}
	ch := make(chan SpanRecord, buf)
	c.mu.Lock()
	if c.subs == nil {
		c.subs = make(map[int]chan SpanRecord)
	}
	id := c.nextSub
	c.nextSub++
	c.subs[id] = ch
	c.mu.Unlock()
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, ok := c.subs[id]; ok {
			delete(c.subs, id)
			close(ch)
		}
	}
}

// Dropped returns the number of span records not delivered to lagging
// subscribers since the collector was built.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Snapshot returns the retained spans in end order (oldest first).
func (c *Collector) Snapshot() []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, 0, len(c.ring))
	if c.total > uint64(len(c.ring)) { // ring wrapped: start at the oldest slot
		at := c.total % uint64(len(c.ring))
		out = append(out, c.ring[at:]...)
		out = append(out, c.ring[:at]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}

// Total returns the number of spans ever ended (retained or evicted).
func (c *Collector) Total() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Span is one in-flight interval. It is owned by the goroutine that
// started it (matching the engine: a run executes on one pool worker);
// End publishes it to the collector's ring. All methods are nil-safe.
type Span struct {
	c        *Collector
	id       uint64
	parent   uint64
	name     string
	track    int
	start    float64
	attrs    []Attr
	instants []Instant
}

// Child opens a sub-span on the same track.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.c.Start(name, s)
}

// SetTrack places the span (and children started after this) on a track.
func (s *Span) SetTrack(track int) *Span {
	if s != nil {
		s.track = track
	}
	return s
}

// Attr attaches one structured attribute; chainable.
func (s *Span) Attr(key string, value any) *Span {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	return s
}

// Instant records a point event (e.g. an injected fault) inside the span.
func (s *Span) Instant(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.instants = append(s.instants, Instant{Name: name, AtUs: s.c.now(), Attrs: attrs})
}

// ID returns the span's collector-unique ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span and publishes it to the collector.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.c.end(SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Track:    s.track,
		StartUs:  s.start,
		DurUs:    s.c.now() - s.start,
		Attrs:    s.attrs,
		Instants: s.instants,
	})
}
