package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event JSON format (the "JSON trace" Perfetto and
// chrome://tracing load): an object with a traceEvents array of phase-coded
// events. The exporter renders the collector's spans as complete ("X")
// events — one Perfetto thread (tid) per collector track, so the worker
// pool becomes one swim-lane per worker with campaign/experiment spans on
// their own lane — and span instants (injected faults) as thread-scoped
// instant ("i") events. Metadata ("M") events name the process and tracks.

// TraceEvent is one trace-event entry.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"` // µs since trace start
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope: "t" = thread
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is the exported file shape.
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePid is the single synthetic process every track lives under.
const tracePid = 1

// BuildTrace assembles the trace-event representation of the collector's
// retained spans. Events are ordered by timestamp (metadata first), which
// both viewers accept and tests can rely on.
func BuildTrace(c *Collector) Trace {
	tr := Trace{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	if c == nil {
		return tr
	}
	tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
		Name: "process_name", Phase: "M", Pid: tracePid,
		Args: map[string]any{"name": "cherisim campaign"},
	})
	for id, name := range c.TrackNames() {
		tr.TraceEvents = append(tr.TraceEvents, TraceEvent{
			Name: "thread_name", Phase: "M", Pid: tracePid, Tid: id,
			Args: map[string]any{"name": name},
		})
	}

	var events []TraceEvent
	for _, rec := range c.Snapshot() {
		args := map[string]any{"span_id": rec.ID}
		if rec.Parent != 0 {
			args["parent_id"] = rec.Parent
		}
		for _, a := range rec.Attrs {
			args[a.Key] = a.Value
		}
		dur := rec.DurUs
		events = append(events, TraceEvent{
			Name: rec.Name, Phase: "X", Ts: rec.StartUs, Dur: &dur,
			Pid: tracePid, Tid: rec.Track, Args: args,
		})
		for _, in := range rec.Instants {
			iargs := map[string]any{"span_id": rec.ID}
			for _, a := range in.Attrs {
				iargs[a.Key] = a.Value
			}
			events = append(events, TraceEvent{
				Name: in.Name, Phase: "i", Ts: in.AtUs,
				Pid: tracePid, Tid: rec.Track, Scope: "t", Args: iargs,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	tr.TraceEvents = append(tr.TraceEvents, events...)
	return tr
}

// WriteTrace writes the collector's spans as Chrome trace-event JSON,
// loadable at ui.perfetto.dev or chrome://tracing.
func WriteTrace(w io.Writer, c *Collector) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(BuildTrace(c)); err != nil {
		return fmt.Errorf("telemetry: trace export: %w", err)
	}
	return nil
}
