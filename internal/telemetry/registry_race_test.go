package telemetry

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

// TestHistogramSnapshotConsistency is the regression test for the torn
// histogram snapshot: Count, Sum and the bucket vector used to be loaded
// as separate atomics while observers ran, so a snapshot could report a
// (count, sum) pair no execution state ever held. Every sample here has
// value 1.0, so in any consistent state Sum == float64(Count) and the
// bucket counts total Count; the test hammers Observe from many goroutines
// while snapshotting (via WriteText, the render path) and rejects the
// first inconsistent pair. Run under -race this also proves the pair is
// data-race-free.
func TestHistogramSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("consistency_hammer", ExpBuckets(0.5, 2, 4))

	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				h.Observe(1.0)
			}
		}()
	}
	close(start)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for snapshots := 0; ; snapshots++ {
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		points, err := ParseText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range points {
			if p.Kind != "histogram" {
				continue
			}
			if p.Sum != float64(p.Count) {
				t.Fatalf("torn snapshot after %d snapshots: count %d, sum %g (every sample is 1.0)",
					snapshots, p.Count, p.Sum)
			}
			var total int64
			for _, b := range p.Buckets {
				total += b.Count
			}
			if total != p.Count {
				t.Fatalf("torn snapshot: buckets total %d, count %d", total, p.Count)
			}
		}
		select {
		case <-done:
			// One final snapshot must account for every observation.
			count, sum, _ := h.snapshot()
			if want := int64(workers * perWorker); count != want || sum != float64(want) {
				t.Fatalf("final state count %d sum %g, want %d", count, sum, want)
			}
			return
		default:
		}
	}
}

// TestHistogramObserveBuckets pins bucket assignment and the text
// round-trip for the mutex-guarded histogram.
func TestHistogramObserveBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	points, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1", len(points))
	}
	p := points[0]
	if p.Count != 5 || p.Sum != 556.5 {
		t.Fatalf("count %d sum %g, want 5 / 556.5", p.Count, p.Sum)
	}
	wantBuckets := []int64{2, 1, 1, 1}
	for i, b := range p.Buckets {
		if b.Count != wantBuckets[i] {
			t.Fatalf("bucket %d count %d, want %d", i, b.Count, wantBuckets[i])
		}
	}
	if !math.IsInf(p.Buckets[len(p.Buckets)-1].UpperBound, 1) {
		t.Fatal("last bucket is not +Inf")
	}
}
