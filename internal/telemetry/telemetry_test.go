package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cherisim/internal/telemetry"
)

// TestDisabledPathIsInertAndAllocationFree pins the package invariant: a
// nil hub hands out nil handles and every operation on them is a no-op
// that allocates nothing — the contract the session hot path relies on.
func TestDisabledPathIsInertAndAllocationFree(t *testing.T) {
	var h *telemetry.Hub
	if h.Enabled() {
		t.Fatal("nil hub reports enabled")
	}
	var c *telemetry.Collector
	var r *telemetry.Registry
	allocs := testing.AllocsPerRun(100, func() {
		sp := h.Start("campaign")
		sp.Child("run").Attr("k", 1).End()
		sp.End()
		c.Start("x", nil).End()
		r.Counter("runs").Inc()
		r.Gauge("occ").Add(1)
		r.Histogram("ms", nil).Observe(1.5)
		_ = c.Track("worker-0")
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f objects per run, want 0", allocs)
	}
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector snapshot = %v, want nil", got)
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
	if h.Logger() == nil {
		t.Fatal("nil hub must still hand out a usable logger")
	}
	h.Logger().Info("dropped")
}

// TestRegistrySnapshotRoundTrip asserts the text snapshot is
// deterministically ordered and parses back to identical values.
func TestRegistrySnapshotRoundTrip(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("runs_started").Add(42)
	r.Counter("deadline_aborts").Inc()
	r.Gauge("pool_occupancy").Set(3)
	h := r.Histogram("run_wall_ms", telemetry.ExpBuckets(1, 2, 4))
	for _, v := range []float64{0.5, 1, 3, 9, 100} {
		h.Observe(v)
	}

	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two snapshots of identical state differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Kind-major, name-minor ordering.
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	want := []string{
		"counter deadline_aborts 1",
		"counter runs_started 42",
		"gauge pool_occupancy 3",
		"histogram run_wall_ms count 5 sum 113.5 1:2 2:0 4:1 8:0 +Inf:2",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("snapshot text:\n%q\nwant:\n%q", lines, want)
	}

	parsed, err := telemetry.ParseText(&a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, r.Snapshot()) {
		t.Fatalf("round trip diverged:\nparsed  %+v\ndirect  %+v", parsed, r.Snapshot())
	}
}

// TestParseTextRejectsMalformed covers the parser's error paths.
func TestParseTextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"counter only_two",
		"sparkline foo 3",
		"counter x notanumber",
		"histogram h count x sum 1 +Inf:0",
		"histogram h count 1 sum 1 nocolon",
	} {
		if _, err := telemetry.ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", bad)
		}
	}
}

// TestHistogramBuckets pins le-semantics: a sample equal to a bound lands
// in that bound's bucket, larger samples overflow to +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.Histogram("x", []float64{1, 10})
	h.Observe(1)    // le=1
	h.Observe(1.01) // le=10
	h.Observe(11)   // +Inf
	var p telemetry.Point
	for _, pt := range r.Snapshot() {
		if pt.Name == "x" {
			p = pt
		}
	}
	got := []int64{p.Buckets[0].Count, p.Buckets[1].Count, p.Buckets[2].Count}
	if !reflect.DeepEqual(got, []int64{1, 1, 1}) {
		t.Fatalf("bucket counts = %v, want [1 1 1]", got)
	}
	if !math.IsInf(p.Buckets[2].UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", p.Buckets[2].UpperBound)
	}
}

// TestSpanRingEviction asserts the collector retains the most recent
// spans once the ring wraps, in end order.
func TestSpanRingEviction(t *testing.T) {
	c := telemetry.NewCollector(4)
	for i := 0; i < 7; i++ {
		c.Start(fmt.Sprintf("s%d", i), nil).End()
	}
	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d spans, want 4", len(snap))
	}
	for i, rec := range snap {
		if want := fmt.Sprintf("s%d", i+3); rec.Name != want {
			t.Fatalf("slot %d = %s, want %s", i, rec.Name, want)
		}
	}
	if c.Total() != 7 {
		t.Fatalf("total = %d, want 7", c.Total())
	}
}

// TestTraceExportSchemaAndNesting builds the campaign→experiment→run→
// attempt hierarchy across worker tracks, exports it, and validates the
// trace-event schema plus the nesting invariants Perfetto renders from:
// every child event lies within its parent's interval, run/attempt events
// sit on their worker's track, and instants land inside their span.
func TestTraceExportSchemaAndNesting(t *testing.T) {
	c := telemetry.NewCollector(0)
	campaign := c.Start("campaign", nil)
	w0 := c.Track("worker-0")
	w1 := c.Track("worker-1")
	for i, track := range []int{w0, w1} {
		run := campaign.Child(fmt.Sprintf("run:w%d", i)).SetTrack(track).Attr("abi", "purecap")
		att := run.Child("attempt:0")
		att.Instant("inject:tag-clear", telemetry.A("uop", 4096))
		att.End()
		run.End()
	}
	exp := campaign.Child("experiment:fig1")
	exp.End()
	campaign.End()

	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    float64        `json:"ts"`
			Dur   *float64       `json:"dur"`
			Pid   int            `json:"pid"`
			Tid   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	type interval struct {
		lo, hi float64
		tid    int
	}
	spans := map[float64]interval{} // span_id -> interval
	threadNames := map[int]string{}
	var nX, nI int
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.Tid] = ev.Args["name"].(string)
			}
		case "X":
			nX++
			if ev.Dur == nil {
				t.Fatalf("complete event %q without dur", ev.Name)
			}
			id, ok := ev.Args["span_id"].(float64)
			if !ok {
				t.Fatalf("complete event %q without span_id", ev.Name)
			}
			spans[id] = interval{ev.Ts, ev.Ts + *ev.Dur, ev.Tid}
		case "i":
			nI++
			if ev.Scope != "t" {
				t.Fatalf("instant %q scope = %q, want thread", ev.Name, ev.Scope)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if nX != 6 { // campaign + 2 runs + 2 attempts + experiment
		t.Fatalf("%d complete events, want 6", nX)
	}
	if nI != 2 {
		t.Fatalf("%d instant events, want 2", nI)
	}
	if threadNames[0] != "campaign" || threadNames[w0] != "worker-0" || threadNames[w1] != "worker-1" {
		t.Fatalf("track metadata wrong: %v", threadNames)
	}

	// Nesting: every event with a parent lies inside the parent's interval;
	// instants lie inside their span's interval on the same track.
	for _, ev := range tr.TraceEvents {
		id, _ := ev.Args["span_id"].(float64)
		switch ev.Phase {
		case "X":
			if pid, ok := ev.Args["parent_id"].(float64); ok {
				p, ok := spans[pid]
				if !ok {
					t.Fatalf("%q references unexported parent %v", ev.Name, pid)
				}
				child := spans[id]
				if child.lo < p.lo || child.hi > p.hi {
					t.Fatalf("%q [%v,%v] escapes parent [%v,%v]", ev.Name, child.lo, child.hi, p.lo, p.hi)
				}
			}
			if strings.HasPrefix(ev.Name, "run:") || strings.HasPrefix(ev.Name, "attempt:") {
				if !strings.HasPrefix(threadNames[ev.Tid], "worker-") {
					t.Fatalf("%q on track %q, want a worker track", ev.Name, threadNames[ev.Tid])
				}
			}
		case "i":
			sp, ok := spans[id]
			if !ok {
				t.Fatalf("instant %q has no enclosing span", ev.Name)
			}
			if ev.Ts < sp.lo || ev.Ts > sp.hi || ev.Tid != sp.tid {
				t.Fatalf("instant %q at %v/track %d outside span [%v,%v]/track %d",
					ev.Name, ev.Ts, ev.Tid, sp.lo, sp.hi, sp.tid)
			}
		}
	}
}

// TestConcurrentRecording hammers one hub from many goroutines — the shape
// of a -jobs pool with an ops scraper attached — and is meaningful under
// -race.
func TestConcurrentRecording(t *testing.T) {
	h := telemetry.New()
	root := h.Start("campaign")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			track := h.Spans.Track(fmt.Sprintf("worker-%d", g))
			for i := 0; i < 200; i++ {
				sp := root.Child("run").SetTrack(track).Attr("i", i)
				sp.Instant("inject")
				sp.End()
				h.Metrics.Counter("runs_completed").Inc()
				h.Metrics.Histogram("run_wall_ms", nil).Observe(float64(i))
				h.Metrics.Gauge("pool_occupancy").Add(1)
				h.Metrics.Gauge("pool_occupancy").Add(-1)
			}
		}(g)
	}
	// Concurrent readers: snapshots and exports while writers run.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h.Spans.Snapshot()
				h.Metrics.WriteText(io.Discard)
				telemetry.WriteTrace(io.Discard, h.Spans)
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := h.Metrics.Counter("runs_completed").Value(); got != 1600 {
		t.Fatalf("runs_completed = %d, want 1600", got)
	}
	if got := h.Spans.Total(); got != 1601 {
		t.Fatalf("span total = %d, want 1601", got)
	}
}

// TestOpsServer boots the ops endpoint on a loopback port and checks every
// route serves while spans/metrics are being recorded.
func TestOpsServer(t *testing.T) {
	h := telemetry.New()
	h.Metrics.Counter("runs_started").Add(7)
	h.Start("campaign").End()

	srv, err := telemetry.StartOps("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // live campaign load while scraping
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Start("run").End()
				h.Metrics.Counter("runs_started").Inc()
			}
		}
	}()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}
	body, ct := get("/metrics")
	if !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	pts, err := telemetry.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if len(pts) == 0 || pts[0].Name != "runs_started" || pts[0].Value < 7 {
		t.Fatalf("unexpected /metrics payload: %+v", pts)
	}
	body, ct = get("/spans")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/spans content type %q", ct)
	}
	var spans []telemetry.SpanRecord
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/spans is not JSON: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("/spans empty during a live campaign")
	}
	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof cmdline empty")
	}
	close(stop)
	wg.Wait()
}

// TestNewLogger covers level parsing and output formats.
func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := telemetry.NewLogger(&buf, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("visible", "workload", "leela")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "visible") {
		t.Fatalf("level filtering broken: %q", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler output not JSON: %v", err)
	}
	if rec["workload"] != "leela" {
		t.Fatalf("structured attr lost: %v", rec)
	}
	if _, err := telemetry.NewLogger(&buf, "nope", false); err == nil {
		t.Fatal("bad level accepted")
	}
	silent, err := telemetry.NewLogger(&buf, "", false)
	if err != nil || silent == nil {
		t.Fatalf("empty level must yield a discard logger: %v", err)
	}
}

// TestProfileStore covers the profile store's nil-safety, replacement
// semantics, and the /profiles ops endpoint it feeds.
func TestProfileStore(t *testing.T) {
	var nilStore *telemetry.ProfileStore
	nilStore.Put("sqlite/purecap", map[string]int{"x": 1}) // must not panic
	if nilStore.Len() != 0 || len(nilStore.Keys()) != 0 || len(nilStore.Snapshot()) != 0 {
		t.Fatal("nil profile store not inert")
	}

	h := telemetry.New()
	h.Profiles.Put("sqlite/purecap", map[string]int{"cycles": 10})
	h.Profiles.Put("sqlite/hybrid", map[string]int{"cycles": 4})
	h.Profiles.Put("sqlite/purecap", map[string]int{"cycles": 12}) // replaces
	if got := h.Profiles.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := h.Profiles.Keys(); !reflect.DeepEqual(got, []string{"sqlite/hybrid", "sqlite/purecap"}) {
		t.Fatalf("Keys = %v", got)
	}
	h.Profiles.Put("bad", make(chan int)) // unmarshalable: dropped, not fatal
	if got := h.Profiles.Len(); got != 2 {
		t.Fatalf("Len after bad Put = %d, want 2", got)
	}

	srv, err := telemetry.StartOps("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/profiles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/profiles content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]struct {
		Cycles int `json:"cycles"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("/profiles is not JSON: %v\n%s", err, body)
	}
	if len(decoded) != 2 || decoded["sqlite/purecap"].Cycles != 12 {
		t.Fatalf("unexpected /profiles payload: %s", body)
	}
}
