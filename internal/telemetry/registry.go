package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe collection of named counters, gauges and
// histograms. Handles are get-or-create and stable, so hot paths resolve
// them once and then touch only atomics. A nil *Registry hands out nil
// handles, on which every operation is an allocation-free no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (strictly increasing; a final +Inf bucket is implicit) on
// first use. Later calls ignore bounds and return the existing histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (nil-safe).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer metric (pool occupancy, live spans).
type Gauge struct{ v atomic.Int64 }

// Set stores v (nil-safe).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (nil-safe); use negative deltas to release.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with an exact running
// sum. A short mutex keeps the (count, sum, buckets) triple consistent:
// every snapshot observes a state some prefix of the Observe calls
// actually produced, never a torn count/sum pair that no execution reached
// (visible once hundreds of cores feed contention histograms while the
// registry renders). Observe sites are supervisor-rate (per run, per
// epoch), never the per-µop hot path, so the lock is uncontended in
// steady state.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, strictly increasing
	counts []int64   // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    float64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = ExpBuckets(1, 2, 14)
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor× the previous — the shape wall-clock and µop-count
// distributions need.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample (nil-safe).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// snapshot returns a consistent (count, sum, buckets) triple.
func (h *Histogram) snapshot() (count int64, sum float64, buckets []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, append([]int64(nil), h.counts...)
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below the upper bound and above the previous bound (+Inf for the
// overflow bucket, rendered as "+Inf").
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Point is one metric in a snapshot.
type Point struct {
	Kind    string   `json:"kind"` // "counter" | "gauge" | "histogram"
	Name    string   `json:"name"`
	Value   int64    `json:"value,omitempty"`   // counter/gauge
	Count   int64    `json:"count,omitempty"`   // histogram
	Sum     float64  `json:"sum,omitempty"`     // histogram
	Buckets []Bucket `json:"buckets,omitempty"` // histogram
}

// Snapshot returns every metric, ordered by kind (counter, gauge,
// histogram) then name — a deterministic ordering, so two snapshots of the
// same state render byte-identically.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		out = append(out, Point{Kind: "counter", Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, Point{Kind: "gauge", Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		count, sum, buckets := h.snapshot()
		p := Point{Kind: "histogram", Name: name, Count: count, Sum: sum}
		for i, b := range h.bounds {
			p.Buckets = append(p.Buckets, Bucket{UpperBound: b, Count: buckets[i]})
		}
		p.Buckets = append(p.Buckets, Bucket{UpperBound: math.Inf(1), Count: buckets[len(h.bounds)]})
		out = append(out, p)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the snapshot in the registry's line-oriented text
// format, one metric per line, stable-ordered:
//
//	counter runs_started 42
//	gauge pool_occupancy 3
//	histogram run_wall_ms count 12 sum 345.25 1:0 2:4 ... +Inf:1
//
// Floats use strconv 'g' with full precision so ParseText round-trips
// exactly.
func (r *Registry) WriteText(w io.Writer) error {
	for _, p := range r.Snapshot() {
		var err error
		switch p.Kind {
		case "histogram":
			var b strings.Builder
			fmt.Fprintf(&b, "histogram %s count %d sum %s", p.Name, p.Count, formatFloat(p.Sum))
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, " %s:%d", formatBound(bk.UpperBound), bk.Count)
			}
			_, err = fmt.Fprintln(w, b.String())
		default:
			_, err = fmt.Fprintf(w, "%s %s %d\n", p.Kind, p.Name, p.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatFloat(v)
}

// ParseText parses WriteText output back into snapshot points, so a
// scraped /metrics body round-trips into comparable values.
func ParseText(r io.Reader) ([]Point, error) {
	var out []Point
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "counter", "gauge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("telemetry: malformed %s line %q", fields[0], line)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: bad value in %q: %w", line, err)
			}
			out = append(out, Point{Kind: fields[0], Name: fields[1], Value: v})
		case "histogram":
			if len(fields) < 6 || fields[2] != "count" || fields[4] != "sum" {
				return nil, fmt.Errorf("telemetry: malformed histogram line %q", line)
			}
			p := Point{Kind: "histogram", Name: fields[1]}
			var err error
			if p.Count, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, fmt.Errorf("telemetry: bad count in %q: %w", line, err)
			}
			if p.Sum, err = strconv.ParseFloat(fields[5], 64); err != nil {
				return nil, fmt.Errorf("telemetry: bad sum in %q: %w", line, err)
			}
			for _, f := range fields[6:] {
				bound, count, ok := strings.Cut(f, ":")
				if !ok {
					return nil, fmt.Errorf("telemetry: bad bucket %q in %q", f, line)
				}
				var bk Bucket
				if bound == "+Inf" {
					bk.UpperBound = math.Inf(1)
				} else if bk.UpperBound, err = strconv.ParseFloat(bound, 64); err != nil {
					return nil, fmt.Errorf("telemetry: bad bucket bound %q: %w", bound, err)
				}
				if bk.Count, err = strconv.ParseInt(count, 10, 64); err != nil {
					return nil, fmt.Errorf("telemetry: bad bucket count %q: %w", count, err)
				}
				p.Buckets = append(p.Buckets, bk)
			}
			out = append(out, p)
		default:
			return nil, fmt.Errorf("telemetry: unknown metric kind in %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
