package cap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeE(t *testing.T) {
	cases := []struct {
		length uint64
		want   uint
	}{
		{0, 0},
		{1, 0},
		{1 << 12, 0},
		{1<<13 - 1, 0},
		{1 << 13, 1},
		{1 << 14, 2},
		{1 << 20, 8},
		{1 << 40, 28},
		{1 << 63, 51},
	}
	for _, c := range cases {
		if got := computeE(c.length); got != c.want {
			t.Errorf("computeE(%#x) = %d, want %d", c.length, got, c.want)
		}
	}
}

func TestSmallBoundsExact(t *testing.T) {
	// Regions shorter than 2^12 with any base must encode exactly (E=0 path).
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		base := rng.Uint64()
		length := rng.Uint64() % (1 << 12)
		eb, dec, exact := encodeBounds(base, length, false)
		if !exact {
			t.Fatalf("small region base=%#x len=%#x not exact", base, length)
		}
		if dec.base != base || dec.top != base+length {
			t.Fatalf("small region decode mismatch: got [%#x,%#x) want [%#x,%#x)", dec.base, dec.top, base, base+length)
		}
		if eb.ie {
			t.Fatalf("small region used internal exponent: len=%#x", length)
		}
	}
}

func TestBoundsRoundingMonotone(t *testing.T) {
	// Property: encoded bounds always contain the requested region.
	f := func(base uint64, length uint64) bool {
		length %= 1 << 56 // keep top below 2^64 to avoid wrap in the oracle
		base %= 1 << 56
		_, dec, _ := encodeBounds(base, length, false)
		return dec.contains(base, length)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsDecodeRoundTrip(t *testing.T) {
	// Property: re-decoding the encoded fields at the original address
	// reproduces the (rounded) bounds exactly.
	f := func(base uint64, length uint64) bool {
		length %= 1 << 56
		base %= 1 << 56
		eb, dec, _ := encodeBounds(base, length, false)
		got := decodeBounds(eb, base)
		return got == dec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestRepresentableLength(t *testing.T) {
	f := func(length uint64) bool {
		length %= 1 << 56
		rlen := RepresentableLength(length)
		if rlen < length {
			return false
		}
		// A region of rlen bytes at an aligned base must be exact.
		mask := RepresentableAlignmentMask(length)
		base := uint64(0x4000_0000_0000) & mask
		_, dec, exact := encodeBounds(base, rlen, false)
		return exact && dec.base == base && dec.top == base+rlen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestRepresentableAlignmentSmall(t *testing.T) {
	if m := RepresentableAlignmentMask(64); m != ^uint64(0) {
		t.Errorf("small lengths need no alignment, got mask %#x", m)
	}
	if l := RepresentableLength(100); l != 100 {
		t.Errorf("RepresentableLength(100) = %d, want 100", l)
	}
}

func TestRepresentableAlignmentLarge(t *testing.T) {
	// A 1 MiB region has E = bitlen(2^20 >> 13) = 8 (the top mantissa keeps
	// an implied MSB), so alignment is 2^(E+3) = 2048 bytes.
	length := uint64(1 << 20)
	mask := RepresentableAlignmentMask(length)
	align := ^mask + 1
	if align != 1<<11 {
		t.Errorf("1MiB alignment = %d, want %d", align, 1<<11)
	}
}

func TestFullSpaceBounds(t *testing.T) {
	eb, dec, _ := encodeBounds(0, 0, true)
	if !dec.topHi || dec.base != 0 {
		t.Fatalf("full-space bounds wrong: %+v", dec)
	}
	if !dec.contains(0, 1<<40) || !dec.contains(^uint64(0), 1) {
		t.Fatal("full-space bounds do not contain the address space")
	}
	got := decodeBounds(eb, 0xdeadbeef)
	if !got.topHi {
		t.Fatal("full-space decode lost topHi")
	}
}

func TestBoundsLength(t *testing.T) {
	b := bounds{base: 100, top: 300}
	if b.length() != 200 {
		t.Errorf("length = %d, want 200", b.length())
	}
	full := bounds{topHi: true}
	if full.length() != ^uint64(0) {
		t.Errorf("full length = %#x", full.length())
	}
	half := bounds{base: 1 << 63, topHi: true}
	if half.length() != 1<<63 {
		t.Errorf("upper-half length = %#x, want %#x", half.length(), uint64(1)<<63)
	}
}

func TestContainsEdges(t *testing.T) {
	b := bounds{base: 0x1000, top: 0x2000}
	cases := []struct {
		addr, size uint64
		want       bool
	}{
		{0x1000, 0, true},
		{0x1000, 0x1000, true},
		{0x0fff, 1, false},
		{0x1fff, 1, true},
		{0x1fff, 2, false},
		{0x2000, 0, true}, // zero-size at top is in bounds
		{0x2000, 1, false},
		{^uint64(0), 2, false}, // wrap
	}
	for _, c := range cases {
		if got := b.contains(c.addr, c.size); got != c.want {
			t.Errorf("contains(%#x,%d) = %v, want %v", c.addr, c.size, got, c.want)
		}
	}
}

// TestRepresentableBoundary pins CRRL/CRAM at and around the 2^64 edge and
// the mantissa/exponent boundaries, where 64-bit arithmetic overflows if
// not done carefully. The largest normally-encodable length is
// 2^63 - 2^53 (exponent 50, 2^53-byte grains); anything larger is coverable
// only by the full-address-space capability, so its mask is 0 and its CRRL
// saturates to 2^64 (reported as ^uint64(0)).
func TestRepresentableBoundary(t *testing.T) {
	const (
		maxLen   = uint64(1)<<63 - uint64(1)<<53 // largest encodable length
		maxAlign = uint64(1) << 53               // its alignment grain
	)
	cases := []struct {
		length   uint64
		wantCRRL uint64
		wantCRAM uint64
	}{
		// Only the full space covers these: mask 0, saturated CRRL.
		{^uint64(0), ^uint64(0), 0},
		{1 << 63, ^uint64(0), 0},
		{uint64(1)<<63 - 1, ^uint64(0), 0},
		{maxLen + 1, ^uint64(0), 0},
		// The largest encodable length and just below it.
		{maxLen, maxLen, ^(maxAlign - 1)},
		{maxLen - 1, maxLen, ^(maxAlign - 1)},
		// Exponent-50 region well inside the top grain.
		{1 << 62, 1 << 62, ^(maxAlign - 1)},
		// Mantissa boundary: lengths below 2^12 are exact at any base.
		{uint64(1)<<12 - 1, uint64(1)<<12 - 1, ^uint64(0)},
		{1 << 12, 1 << 12, ^uint64(7)},
		{uint64(1)<<12 + 1, uint64(1)<<12 + 8, ^uint64(7)},
	}
	for _, tc := range cases {
		if got := RepresentableLength(tc.length); got != tc.wantCRRL {
			t.Errorf("CRRL(%#x) = %#x, want %#x", tc.length, got, tc.wantCRRL)
		}
		if got := RepresentableAlignmentMask(tc.length); got != tc.wantCRAM {
			t.Errorf("CRAM(%#x) = %#x, want %#x", tc.length, got, tc.wantCRAM)
		}
	}
}

// TestBoundsRoundUpToTopOfSpace covers encoding a region whose top rounds
// up to exactly 2^64: the encoder must keep the requested base and mark
// the 65-bit top, not widen to the full-address-space capability.
func TestBoundsRoundUpToTopOfSpace(t *testing.T) {
	base := ^uint64(0) - (1 << 20) + 1 // 2^64 - 2^20
	length := uint64(1)<<20 - 1        // top = 2^64 - 1, rounds up to 2^64
	_, dec, exact := encodeBounds(base, length, false)
	if exact {
		t.Fatal("rounded region declared exact")
	}
	if !dec.topHi {
		t.Fatalf("top should be exactly 2^64, got [%#x,%#x)", dec.base, dec.top)
	}
	if dec.base != base {
		t.Fatalf("base widened to %#x, want %#x (full-space fallback bug)", dec.base, base)
	}
	// The same region requested exactly (top == 2^64, no rounding).
	_, dec2, exact2 := encodeBounds(base, length+1, false)
	if !dec2.topHi || dec2.base != base {
		t.Fatalf("exact-to-2^64 region decoded as [%#x,%#x) topHi=%v", dec2.base, dec2.top, dec2.topHi)
	}
	if exact2 {
		t.Fatal("regions ending at 2^64 are never declared exact")
	}
	// Derivation-level view: SetBounds keeps the base, Top saturates.
	c, err := Root().SetBounds(base, length)
	if err != nil {
		t.Fatal(err)
	}
	if c.Base() != base || !c.TopIsFull() {
		t.Fatalf("SetBounds gave [%#x,%#x] full=%v", c.Base(), c.Top(), c.TopIsFull())
	}
}

// TestRepresentableLengthFullRange is the uncapped version of
// TestRepresentableLength: CRRL never shrinks a request anywhere in the
// 64-bit range, including lengths whose old computation overflowed.
func TestRepresentableLengthFullRange(t *testing.T) {
	f := func(length uint64) bool {
		return RepresentableLength(length) >= length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
