package cap

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEqual(t *testing.T) {
	a := New(0x1000, 256, PermsData)
	b := New(0x1000, 256, PermsData)
	if !a.Equal(b) {
		t.Error("identical capabilities not equal")
	}
	if a.Equal(a.ClearTag()) {
		t.Error("tagged equals untagged")
	}
	if a.Equal(a.WithAddress(0x1008)) {
		t.Error("different addresses equal")
	}
	if a.Equal(a.ClearPerms(PermStore)) {
		t.Error("different perms equal")
	}
}

func TestIsSubsetOf(t *testing.T) {
	outer := New(0x1000, 0x1000, PermsData)
	inner, _ := outer.SetBounds(0x1100, 0x100)
	if !inner.IsSubsetOf(outer) {
		t.Error("derived capability not a subset of parent")
	}
	if outer.IsSubsetOf(inner) {
		t.Error("parent a subset of child")
	}
	widePerms := New(0x1100, 0x100, PermsAll)
	if widePerms.IsSubsetOf(outer) {
		t.Error("more-permissive capability counted as subset")
	}
	if !inner.IsSubsetOf(Root()) {
		t.Error("everything must be a subset of root")
	}
}

func TestIsSubsetOfProperty(t *testing.T) {
	// Property: anything derived via SetBounds/ClearPerms is a subset of
	// its ancestor.
	f := func(baseSeed, lenSeed uint64, permSeed uint32) bool {
		base := 0x1000 + baseSeed%(1<<20)
		length := 16 + lenSeed%(1<<12)
		parent := New(0x1000, 1<<22, PermsData)
		child, err := parent.SetBounds(base, length)
		if err != nil {
			return true // out of parent bounds: nothing to check
		}
		child = child.ClearPerms(Perms(permSeed) & PermsData)
		return child.IsSubsetOf(parent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildCapRestoresTag(t *testing.T) {
	authority := New(0x4000, 0x1000, PermsData)
	orig, _ := authority.SetBounds(0x4100, 0x100)
	bits, _ := orig.Encode() // tag deliberately discarded

	rebuilt, err := BuildCap(authority, bits)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt.Valid() {
		t.Fatal("rebuilt capability untagged")
	}
	if rebuilt.Base() != orig.Base() || rebuilt.Top() != orig.Top() {
		t.Error("rebuilt bounds differ")
	}
}

func TestBuildCapRejectsEscalation(t *testing.T) {
	authority := New(0x4000, 0x1000, PermLoad)
	// Bits describing a region outside the authority.
	outside, _ := Root().SetBounds(0x9000, 0x100)
	bits, _ := outside.Encode()
	if _, err := BuildCap(authority, bits); !errors.Is(err, ErrBoundsViolation) {
		t.Errorf("out-of-authority build = %v", err)
	}
	// Bits with more permissions than the authority.
	strong := New(0x4100, 0x100, PermsData)
	bits2, _ := strong.Encode()
	if _, err := BuildCap(authority, bits2); !errors.Is(err, ErrBoundsViolation) {
		t.Errorf("perm-escalating build = %v", err)
	}
	// Untagged authority cannot build.
	if _, err := BuildCap(authority.ClearTag(), bits); !errors.Is(err, ErrTagViolation) {
		t.Errorf("untagged authority = %v", err)
	}
}

func TestBuildCapRejectsSealedBits(t *testing.T) {
	authority := New(0x4000, 0x1000, PermsAll)
	inner, _ := authority.SetBounds(0x4100, 0x100)
	sealer := New(0, 0x1000, PermsAll).WithAddress(7)
	sealed, _ := inner.Seal(sealer)
	bits, _ := sealed.Encode()
	if _, err := BuildCap(authority, bits); !errors.Is(err, ErrSealViolation) {
		t.Errorf("sealed bits built: %v", err)
	}
}

func TestClearTagIf(t *testing.T) {
	c := New(0x1000, 64, PermsData)
	if c.ClearTagIf(false) != c {
		t.Error("false condition changed capability")
	}
	if c.ClearTagIf(true).Valid() {
		t.Error("true condition kept tag")
	}
}

func TestIncrementRepresentability(t *testing.T) {
	c := New(0x1000, 256, PermsData)
	in, ok := c.Increment(128)
	if !ok || !in.Valid() {
		t.Error("in-bounds increment lost tag")
	}
	big := New(0x4000_0000, 1<<26, PermsData)
	_, ok = big.Increment(1 << 40)
	if ok {
		t.Error("far out-of-window increment reported representable")
	}
}
