package cap

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNullCapability(t *testing.T) {
	var null Capability
	if null.Valid() {
		t.Error("zero value must be untagged")
	}
	if null.Address() != 0 || null.Base() != 0 {
		t.Error("null capability has nonzero fields")
	}
	if err := null.CheckAccess(1, PermLoad); !errors.Is(err, ErrTagViolation) {
		t.Errorf("deref of null = %v, want tag violation", err)
	}
}

func TestRootCoversEverything(t *testing.T) {
	r := Root()
	if !r.Valid() || !r.TopIsFull() || r.Base() != 0 {
		t.Fatalf("root malformed: %v", r)
	}
	if !r.Perms().Has(PermsAll) {
		t.Error("root missing permissions")
	}
	if err := r.CheckAccess(8, PermLoad|PermStore); err != nil {
		t.Errorf("root access failed: %v", err)
	}
}

func TestSetBoundsMonotonic(t *testing.T) {
	r := Root()
	c, err := r.SetBounds(0x10000, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Base() != 0x10000 || c.Top() != 0x11000 {
		t.Fatalf("bounds = [%#x,%#x)", c.Base(), c.Top())
	}
	// Narrowing further is fine.
	d, err := c.SetBounds(0x10100, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base() != 0x10100 || d.Length() != 0x100 {
		t.Fatalf("narrowed bounds wrong: %v", d)
	}
	// Widening must fail and detag.
	bad, err := c.SetBounds(0x0f000, 0x10000)
	if !errors.Is(err, ErrBoundsViolation) {
		t.Fatalf("widening err = %v", err)
	}
	if bad.Valid() {
		t.Error("widened capability kept its tag")
	}
}

func TestSetBoundsExactRejectsRounding(t *testing.T) {
	r := Root()
	// A large region at an odd base is not exactly representable.
	base := uint64(0x1000_0001)
	length := uint64(1 << 24)
	if _, err := r.SetBoundsExact(base, length); !errors.Is(err, ErrUnrepresentable) {
		t.Fatalf("expected unrepresentable, got %v", err)
	}
	// Aligned per CRAM it must succeed.
	mask := RepresentableAlignmentMask(length)
	abase := base & mask
	alen := RepresentableLength(length)
	if _, err := r.SetBoundsExact(abase, alen); err != nil {
		t.Fatalf("aligned exact bounds failed: %v", err)
	}
}

func TestWithAddressInBounds(t *testing.T) {
	c := New(0x10000, 0x1000, PermsData)
	d := c.WithAddress(0x10800)
	if !d.Valid() || d.Address() != 0x10800 {
		t.Fatalf("in-bounds address move broke capability: %v", d)
	}
	if d.Base() != c.Base() || d.Top() != c.Top() {
		t.Error("bounds changed on address move")
	}
}

func TestWithAddressFarOutClearsTag(t *testing.T) {
	// Large region: moving the cursor far outside the representable window
	// must clear the tag (Morello SCVALUE semantics).
	c := New(0x4000_0000, 1<<26, PermsData)
	far := c.WithAddress(0x4000_0000 + 1<<40)
	if far.Valid() {
		t.Errorf("far out-of-window address kept tag: %v", far)
	}
}

func TestClearPerms(t *testing.T) {
	c := New(0, 0x1000, PermsData)
	d := c.ClearPerms(PermStore | PermStoreCap)
	if d.Perms().Has(PermStore) || d.Perms().Has(PermStoreCap) {
		t.Error("permissions not cleared")
	}
	if !d.Perms().Has(PermLoad) {
		t.Error("unrelated permission lost")
	}
	if err := d.CheckAccess(8, PermStore); !errors.Is(err, ErrPermViolation) {
		t.Errorf("store via read-only cap = %v", err)
	}
}

func TestSealUnseal(t *testing.T) {
	data := New(0x2000, 0x100, PermsData)
	sealer := New(0, 0x1000, PermsAll).WithAddress(42)
	sealed, err := data.Seal(sealer)
	if err != nil {
		t.Fatal(err)
	}
	if !sealed.Sealed() || sealed.OType() != 42 {
		t.Fatalf("seal failed: %v", sealed)
	}
	if err := sealed.CheckAccess(8, PermLoad); !errors.Is(err, ErrSealViolation) {
		t.Errorf("sealed deref = %v", err)
	}
	un, err := sealed.Unseal(sealer)
	if err != nil {
		t.Fatal(err)
	}
	if un.Sealed() {
		t.Error("unseal left capability sealed")
	}
	// Unseal with the wrong otype fails.
	wrong := sealer.WithAddress(43)
	if _, err := sealed.Unseal(wrong); !errors.Is(err, ErrPermViolation) {
		t.Errorf("wrong-otype unseal = %v", err)
	}
}

func TestSealEntry(t *testing.T) {
	fn := New(0x40000, 0x400, PermsCode)
	s, err := fn.SealEntry()
	if err != nil {
		t.Fatal(err)
	}
	if s.OType() != OTypeSentry {
		t.Errorf("otype = %d, want sentry", s.OType())
	}
}

func TestCheckAccessFaultClasses(t *testing.T) {
	c := New(0x1000, 0x100, PermLoad)
	cases := []struct {
		name string
		c    Capability
		size uint64
		need Perms
		want error
	}{
		{"ok", c, 8, PermLoad, nil},
		{"untagged", c.ClearTag(), 8, PermLoad, ErrTagViolation},
		{"perm", c, 8, PermStore, ErrPermViolation},
		{"oob", c.WithAddress(0x10f9), 8, PermLoad, ErrBoundsViolation},
		{"end-straddle", c.WithAddress(0x10fc), 8, PermLoad, ErrBoundsViolation},
	}
	for _, tc := range cases {
		err := tc.c.CheckAccess(tc.size, tc.need)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(baseSeed, lenSeed uint64, permSeed uint32) bool {
		base := baseSeed % (1 << 48)
		length := lenSeed % (1 << 40)
		perms := Perms(permSeed) & PermsAll
		c := New(base, length, perms)
		enc, tag := c.Encode()
		d := Decode(enc, tag)
		return d.Valid() == c.Valid() &&
			d.Address() == c.Address() &&
			d.Base() == c.Base() &&
			d.Top() == c.Top() &&
			d.Perms() == c.Perms() &&
			d.OType() == c.OType()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRootRoundTrip(t *testing.T) {
	r := Root()
	enc, tag := r.Encode()
	d := Decode(enc, tag)
	if !d.TopIsFull() || d.Base() != 0 || !d.Valid() {
		t.Fatalf("root round trip lost full bounds: %v", d)
	}
}

func TestAddPointerArithmetic(t *testing.T) {
	c := New(0x1000, 0x1000, PermsData)
	d := c.Add(16).Add(-8)
	if d.Address() != 0x1008 {
		t.Errorf("address = %#x, want 0x1008", d.Address())
	}
	if !d.Valid() {
		t.Error("in-bounds arithmetic cleared tag")
	}
}

func TestStringFormat(t *testing.T) {
	c := New(0x1000, 0x100, PermLoad|PermStore)
	s := c.String()
	if !strings.Contains(s, "0x1000") || !strings.HasPrefix(s, "v:") {
		t.Errorf("unexpected format: %q", s)
	}
	i := c.ClearTag().String()
	if !strings.HasPrefix(i, "i:") {
		t.Errorf("invalid cap format: %q", i)
	}
}

func TestNewRandomRegionsContainRequested(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		base := rng.Uint64() % (1 << 47)
		length := rng.Uint64() % (1 << 30)
		c := New(base, length, PermsData)
		if !c.InBounds(base, length) {
			t.Fatalf("New(%#x,%#x) bounds [%#x,%#x) do not contain request",
				base, length, c.Base(), c.Top())
		}
		if c.Address() != base {
			t.Fatalf("address = %#x, want base %#x", c.Address(), base)
		}
	}
}

func TestPermsString(t *testing.T) {
	if PermLoad.String() != "R" {
		t.Errorf("PermLoad = %q", PermLoad.String())
	}
	if Perms(0).String() != "-" {
		t.Errorf("empty perms = %q", Perms(0).String())
	}
	combined := (PermLoad | PermStore).String()
	if !strings.Contains(combined, "R") || !strings.Contains(combined, "W") {
		t.Errorf("combined perms = %q", combined)
	}
}
