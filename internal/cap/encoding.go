package cap

// In-memory (compressed) capability format. A capability occupies 16 bytes
// of data plus one out-of-band tag bit kept by internal/mem. The layout
// follows the Morello arrangement: the low 64 bits hold the address (value)
// and the high 64 bits hold permissions, object type and the compressed
// bounds.
//
//	meta[63:46]  perms (18 bits; we use 13)
//	meta[45:31]  otype (15 bits)
//	meta[30]     I_E
//	meta[29:16]  B (14 bits)
//	meta[15:4]   T (12 bits)
//	meta[3:0]    reserved (zero)

const (
	permsShift = 46
	otypeShift = 31
	ieShift    = 30
	bShift     = 16
	tShift     = 4
)

// Encoded is the 128-bit in-memory representation of a capability, without
// its tag. Meta holds the compressed metadata word, Addr the address word.
type Encoded struct {
	Meta uint64
	Addr uint64
}

// Encode compresses the capability to its 16-byte memory image. The tag is
// returned separately because it is stored out of band.
func (c Capability) Encode() (Encoded, bool) {
	eb, _, _ := encodeBounds(c.bnd.base, c.bnd.length(), c.bnd.topHi && c.bnd.base == 0)
	var meta uint64
	meta |= uint64(c.perms) << permsShift
	meta |= uint64(c.otype&otypeFieldMask) << otypeShift
	if eb.ie {
		meta |= 1 << ieShift
	}
	meta |= uint64(eb.b&(1<<mantissaWidth-1)) << bShift
	meta |= uint64(eb.t&(1<<(mantissaWidth-2)-1)) << tShift
	return Encoded{Meta: meta, Addr: c.addr}, c.tag
}

// Decode reconstructs a capability from its 16-byte memory image and tag.
func Decode(e Encoded, tag bool) Capability {
	eb := encBounds{
		ie: e.Meta>>ieShift&1 != 0,
		b:  uint16(e.Meta >> bShift & (1<<mantissaWidth - 1)),
		t:  uint16(e.Meta >> tShift & (1<<(mantissaWidth-2) - 1)),
	}
	return Capability{
		addr:  e.Addr,
		bnd:   decodeBounds(eb, e.Addr),
		perms: Perms(e.Meta >> permsShift & (1<<numPerms - 1)),
		otype: uint32(e.Meta >> otypeShift & uint64(otypeFieldMask)),
		tag:   tag,
	}
}

// Size is the in-memory size of a capability in bytes.
const Size = 16

// TagGranule is the amount of memory covered by one tag bit.
const TagGranule = 16
