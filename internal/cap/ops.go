package cap

// Additional Morello capability instructions beyond the core
// derive/seal/check set: comparison, subset testing and tag restoration,
// used by capability-aware runtimes (garbage collectors, revokers,
// swappers) that must round-trip capabilities through untagged storage.

// Equal reports whether two capabilities are bit-identical including tags
// (Morello's CMP of capability registers plus tag equality).
func (c Capability) Equal(o Capability) bool {
	ce, ct := c.Encode()
	oe, ot := o.Encode()
	return ce == oe && ct == ot && c.addr == o.addr
}

// IsSubsetOf reports whether c's authority is wholly contained in o's:
// bounds within bounds and permissions a subset (Morello's CTESTSUBSET).
// Tags and seals are ignored, as in hardware.
func (c Capability) IsSubsetOf(o Capability) bool {
	if c.bnd.base < o.bnd.base {
		return false
	}
	if !o.bnd.topHi {
		if c.bnd.topHi {
			return false
		}
		if c.bnd.top > o.bnd.top {
			return false
		}
	}
	return o.perms.Has(c.perms)
}

// BuildCap reconstructs a tagged capability from untagged bits using an
// authorising capability (Morello's CBUILDCAP): the bit pattern's bounds
// and permissions must be a subset of the authority's, and the result
// carries the authority's provenance. This is how capability-aware
// runtimes restore capabilities after round-tripping them through plain
// storage (swap, serialisation) without violating monotonicity.
func BuildCap(authority Capability, bits Encoded) (Capability, error) {
	if !authority.Valid() {
		return Capability{}, ErrTagViolation
	}
	if authority.Sealed() {
		return Capability{}, ErrSealViolation
	}
	candidate := Decode(bits, false)
	if candidate.Sealed() {
		// CBUILDCAP cannot conjure sealed capabilities.
		return Capability{}, ErrSealViolation
	}
	if !candidate.IsSubsetOf(authority) {
		return Capability{}, ErrBoundsViolation
	}
	out := candidate
	out.tag = true
	return out, nil
}

// ClearTagIf returns c untagged when cond holds, otherwise unchanged —
// the conditional-clear idiom of revocation load barriers.
func (c Capability) ClearTagIf(cond bool) Capability {
	if cond {
		return c.clearTag()
	}
	return c
}

// Increment is pointer arithmetic that, unlike Add, reports whether the
// result stayed representable (kept its tag) — the check CHERI C inserts
// for intptr_t round trips.
func (c Capability) Increment(delta int64) (Capability, bool) {
	out := c.Add(delta)
	return out, out.Valid() == c.Valid()
}
