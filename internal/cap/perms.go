package cap

import "strings"

// Perms is the architectural permission set carried by a capability.
// The bit assignments follow the Morello profile of the CHERI ISA: a
// capability authorises an operation only if the corresponding bit is set,
// and permissions can only ever be cleared (monotonicity), never added.
type Perms uint32

// Architectural permission bits.
const (
	// PermGlobal marks a capability that may be stored via capabilities
	// lacking PermStoreLocal.
	PermGlobal Perms = 1 << iota
	// PermExecute authorises instruction fetch through the capability.
	PermExecute
	// PermLoad authorises data loads.
	PermLoad
	// PermStore authorises data stores.
	PermStore
	// PermLoadCap authorises loading capabilities (with tags) from memory.
	PermLoadCap
	// PermStoreCap authorises storing capabilities (with tags) to memory.
	PermStoreCap
	// PermStoreLocal authorises storing non-global capabilities.
	PermStoreLocal
	// PermSeal authorises sealing other capabilities with this object type.
	PermSeal
	// PermUnseal authorises unsealing capabilities of this object type.
	PermUnseal
	// PermSystem authorises access to system registers.
	PermSystem
	// PermBranchSealedPair authorises branching to a sealed capability pair.
	PermBranchSealedPair
	// PermCompartmentID marks compartment-identifier capabilities.
	PermCompartmentID
	// PermMutableLoad authorises loading capabilities that retain PermStore.
	PermMutableLoad

	numPerms = 13
)

// PermsAll is the maximal permission set held by root capabilities.
const PermsAll Perms = (1 << numPerms) - 1

// PermsData is the permission set of a typical userspace data capability
// (the allocator's view of the heap under the purecap ABIs).
const PermsData = PermGlobal | PermLoad | PermStore | PermLoadCap | PermStoreCap | PermStoreLocal | PermMutableLoad

// PermsCode is the permission set of an executable (PCC-like) capability.
const PermsCode = PermGlobal | PermExecute | PermLoad

var permNames = [numPerms]string{
	"G", "X", "R", "W", "Rc", "Wc", "Wl", "Se", "Us", "Sys", "Bsp", "Cid", "Ml",
}

// Has reports whether p contains every permission in q.
func (p Perms) Has(q Perms) bool { return p&q == q }

// String renders the permission set in a compact rwx-like form.
func (p Perms) String() string {
	if p == 0 {
		return "-"
	}
	var b strings.Builder
	for i := 0; i < numPerms; i++ {
		if p&(1<<i) != 0 {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			b.WriteString(permNames[i])
		}
	}
	return b.String()
}
