package cap

import "sync/atomic"

// This file is the capability layer's lockstep tap. The compressor is pure
// arithmetic with no mutable state to snapshot, so instead of the shadow
// objects the cache/TLB models carry, it exposes a process-global observer
// that sees every bounds-compression result. internal/check registers a
// big-integer reference model behind it; with no observer installed the
// cost is one atomic pointer load per operation.

// BoundsOp identifies which compression primitive produced an observation.
type BoundsOp uint8

// BoundsOp values.
const (
	// BoundsEncode is a CHERI Concentrate bounds encoding (SCBNDS and every
	// derived re-encode, including representability checks on address moves).
	BoundsEncode BoundsOp = iota
	// BoundsCRRL is a representable-length/alignment query (CRRL + CRAM).
	BoundsCRRL
)

// BoundsObservation records the inputs and outputs of one completed
// bounds-compression operation, in the saturated-uint64 convention the
// package uses externally (a top of exactly 2^64 sets DecTopFull).
type BoundsObservation struct {
	Op        BoundsOp
	Base      uint64 // encode input (0 for CRRL)
	Length    uint64 // requested length
	FullSpace bool   // encode of the reset/root capability

	// Encode outputs: the decompressed bounds the encoding represents.
	DecBase    uint64
	DecTop     uint64
	DecTopFull bool // top is exactly 2^64
	Exact      bool

	// CRRL outputs.
	CRRL uint64
	CRAM uint64
}

// boundsObserver holds the installed observer; atomic so capability
// operations on concurrently simulated machines read it without locking.
var boundsObserver atomic.Pointer[func(BoundsObservation)]

// SetBoundsObserver installs fn as the process-wide bounds observer (nil
// removes it) and returns the previously installed observer. The observer
// runs inline on every bounds compression, possibly from multiple
// goroutines at once, and must not call back into this package.
func SetBoundsObserver(fn func(BoundsObservation)) func(BoundsObservation) {
	var prev *func(BoundsObservation)
	if fn == nil {
		prev = boundsObserver.Swap(nil)
	} else {
		prev = boundsObserver.Swap(&fn)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// observeEncode reports one completed bounds encoding.
func observeEncode(base, length uint64, fullSpace bool, dec bounds, exact bool) {
	if obs := boundsObserver.Load(); obs != nil {
		(*obs)(BoundsObservation{
			Op: BoundsEncode, Base: base, Length: length, FullSpace: fullSpace,
			DecBase: dec.base, DecTop: dec.top, DecTopFull: dec.topHi, Exact: exact,
		})
	}
}

// observeCRRL reports one completed representability query.
func observeCRRL(length, crrl, cram uint64) {
	if obs := boundsObserver.Load(); obs != nil {
		(*obs)(BoundsObservation{Op: BoundsCRRL, Length: length, CRRL: crrl, CRAM: cram})
	}
}
