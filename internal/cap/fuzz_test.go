package cap

import "testing"

// FuzzBoundsEncodeDecode drives the CHERI Concentrate compressor with
// arbitrary base/length pairs, checking the invariants that every
// capability derivation relies on: the encoded region always contains the
// request, the decode at the original address is a fixed point, and
// declared-exact encodings really are exact.
func FuzzBoundsEncodeDecode(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0x1000), uint64(4096))
	f.Add(uint64(0xdead_beef_f00d), uint64(1<<30))
	f.Add(uint64(1)<<47, uint64(1)<<40)
	f.Add(uint64(1)<<63, uint64(1)<<63) // region ending exactly at 2^64
	f.Add(uint64(0), ^uint64(0))
	f.Add(^uint64(0)-7, uint64(8)) // small object at the top of the space
	f.Fuzz(func(t *testing.T, base, length uint64) {
		// Encoder contract: base+length <= 2^64 (SetBounds guarantees it
		// via the containment check).
		if base != 0 && length > -base {
			length = -base
		}
		eb, dec, exact := encodeBounds(base, length, false)
		if !dec.contains(base, length) {
			t.Fatalf("bounds [%#x,%#x) lost request base=%#x len=%#x", dec.base, dec.top, base, length)
		}
		if exact && (dec.base != base || dec.topHi || dec.top != base+length) {
			t.Fatalf("declared exact but rounded: [%#x,%#x) vs request", dec.base, dec.top)
		}
		if got := decodeBounds(eb, base); got != dec {
			t.Fatalf("decode not a fixed point: %+v vs %+v", got, dec)
		}
	})
}

// FuzzCapabilityMemoryFormat round-trips arbitrary capabilities through
// the 128-bit in-memory format.
func FuzzCapabilityMemoryFormat(f *testing.F) {
	f.Add(uint64(0x4000_0000), uint64(1<<16), uint32(0xffff))
	f.Add(uint64(0), uint64(1), uint32(0))
	f.Fuzz(func(t *testing.T, base, length uint64, permBits uint32) {
		base %= 1 << 48
		length %= 1 << 40
		c := New(base, length, Perms(permBits)&PermsAll)
		enc, tag := c.Encode()
		d := Decode(enc, tag)
		if d.Base() != c.Base() || d.Top() != c.Top() || d.Address() != c.Address() ||
			d.Perms() != c.Perms() || d.Valid() != c.Valid() {
			t.Fatalf("memory round trip corrupted:\n in: %v\nout: %v", c, d)
		}
	})
}

// FuzzRepresentableRounding checks the CRRL/CRAM pair: the rounded length
// at a CRAM-aligned base must always be exactly representable, and
// rounding must be monotone.
func FuzzRepresentableRounding(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(4096))
	f.Add(uint64(1<<20 + 7))
	f.Add(uint64(1) << 63)       // coverable only by the full-space capability
	f.Add(^uint64(0))            // 2^64 - 1
	f.Add(uint64(1)<<63 - 1)     // rounds up past the largest encodable length
	f.Add(uint64(1) << 62)       // largest-exponent normal encoding
	f.Add(uint64(1) << (14 - 2)) // mantissa boundary: smallest I_E length
	f.Add(uint64(1)<<(14-2) - 1) // largest exact-at-any-base length
	f.Fuzz(func(t *testing.T, length uint64) {
		rlen := RepresentableLength(length)
		if rlen < length {
			t.Fatalf("CRRL(%#x) = %#x shrank", length, rlen)
		}
		mask := RepresentableAlignmentMask(length)
		if mask == 0 {
			// Only the full-space capability covers this length; its CRRL
			// is 2^64, saturated.
			if rlen != ^uint64(0) {
				t.Fatalf("CRAM(%#x) = 0 but CRRL = %#x, want saturation", length, rlen)
			}
			return
		}
		// With a usable mask, rounding must stay below 2^64 and be minimal:
		// shrinking by one alignment grain would drop below the request.
		align := ^mask + 1
		if align != 0 && rlen-align >= length && rlen != length {
			t.Fatalf("CRRL(%#x) = %#x not minimal at align %#x", length, rlen, align)
		}
		base := (uint64(0x7777_0000_0000) & mask)
		_, dec, exact := encodeBounds(base, rlen, false)
		if !exact {
			t.Fatalf("CRAM-aligned CRRL region not exact: base=%#x len=%#x got [%#x,%#x)",
				base, rlen, dec.base, dec.top)
		}
	})
}

// FuzzDerivationMonotonic checks CHERI's monotonicity property on the two
// derivations the fault injector and allocator rely on: SetBounds and
// ClearPerms can only shrink authority — never widen bounds, regain
// permissions, or conjure a valid tag from an invalid one.
func FuzzDerivationMonotonic(f *testing.F) {
	f.Add(uint64(0x4000_0000), uint64(1<<16), uint64(0x4000_1000), uint64(256), uint32(0xffff))
	f.Add(uint64(0), uint64(1<<40), uint64(1<<20), uint64(1<<10), uint32(0))
	f.Fuzz(func(t *testing.T, base, length, nbase, nlength uint64, permBits uint32) {
		base %= 1 << 48
		length %= 1 << 40
		nbase %= 1 << 48
		nlength %= 1 << 40
		c := New(base, length, Perms(permBits)&PermsAll)

		d, err := c.WithAddress(nbase).SetBounds(nbase, nlength)
		if err == nil && d.Valid() {
			if !c.Valid() {
				t.Fatal("SetBounds revived an invalid capability")
			}
			if d.Base() < c.Base() || (!c.TopIsFull() && (d.TopIsFull() || d.Top() > c.Top())) {
				t.Fatalf("SetBounds widened bounds:\nparent [%#x,%#x)\n child [%#x,%#x)",
					c.Base(), c.Top(), d.Base(), d.Top())
			}
			if d.Perms()&^c.Perms() != 0 {
				t.Fatalf("SetBounds added perms: %v -> %v", c.Perms(), d.Perms())
			}
		}

		p := c.ClearPerms(Perms(permBits >> 16))
		if p.Perms()&^c.Perms() != 0 {
			t.Fatalf("ClearPerms added perms: %v -> %v", c.Perms(), p.Perms())
		}
		if p.Valid() && !c.Valid() {
			t.Fatal("ClearPerms revived an invalid capability")
		}
		if p.Base() != c.Base() || p.Top() != c.Top() || p.TopIsFull() != c.TopIsFull() {
			t.Fatal("ClearPerms moved bounds")
		}
	})
}
