package cap

import "math/bits"

// This file implements CHERI Concentrate bounds compression as used by the
// 128-bit Morello capability format (Woodruff et al., "CHERI Concentrate:
// Practical Compressed Capabilities", IEEE TC 2019; CHERI ISA v9 §3).
//
// A capability's bounds are stored as a pair of mantissas, T (top) and
// B (bottom), relative to the capability's 64-bit address, together with an
// exponent E. When E is zero and the region is small, bounds are exact; for
// larger regions the low bits of T and B are repurposed to store E and both
// bounds must be multiples of 2^(E+3), which is why purecap allocators must
// round allocation sizes and alignments (see internal/alloc).

const (
	// mantissaWidth (MW) is the width in bits of the B field; T stores
	// mantissaWidth-2 bits with its top two bits reconstructed on decode.
	mantissaWidth = 14
	// ieFieldWidth is the number of low bits of each of T and B used to
	// hold the exponent when the internal-exponent (I_E) bit is set.
	ieFieldWidth = 3
	// expWidth is the total stored exponent width.
	expWidth = 2 * ieFieldWidth
	// maxExponent is the largest usable exponent; at resetExponent the
	// capability covers the full 64-bit address space.
	maxExponent   = 50
	resetExponent = 52
)

// bounds is the decompressed form of a capability's bounds field. top is a
// 65-bit quantity represented as (topHi, top): topHi is set only for the
// full-address-space capability whose top is exactly 2^64.
type bounds struct {
	base  uint64
	top   uint64
	topHi bool
}

// length returns the region length. The full 2^64-byte region saturates to
// the maximum uint64.
func (b bounds) length() uint64 {
	if b.topHi {
		if b.base == 0 {
			return ^uint64(0) // 2^64 saturated
		}
		return -b.base // 2^64 - base
	}
	if b.top < b.base {
		return 0
	}
	return b.top - b.base
}

// contains reports whether [addr, addr+size) lies within the bounds.
func (b bounds) contains(addr, size uint64) bool {
	if addr < b.base {
		return false
	}
	end := addr + size
	if end < addr { // wrapped past 2^64; legal only when ending exactly there
		return b.topHi && end == 0
	}
	if b.topHi {
		return true
	}
	return end <= b.top
}

// encBounds is the compressed (stored) form: the raw T, B and I_E fields as
// they appear in the capability's metadata word.
type encBounds struct {
	ie bool
	t  uint16 // mantissaWidth-2 bits stored
	b  uint16 // mantissaWidth bits stored
}

// exponent extracts the exponent encoded in the low bits of T and B when the
// internal-exponent bit is set.
func (e encBounds) exponent() uint {
	if !e.ie {
		return 0
	}
	return uint(e.t&(1<<ieFieldWidth-1))<<ieFieldWidth | uint(e.b&(1<<ieFieldWidth-1))
}

// computeE returns the exponent required to represent a region of the given
// length: the smallest E such that length's significant bits fit in
// mantissaWidth-1 bits once the bottom E bits are discarded.
func computeE(length uint64) uint {
	// E = 52 - CLZ(length[64:mantissaWidth-1]); for a 64-bit length the
	// top "65th" bit is zero so this reduces to the expression below.
	hi := length >> (mantissaWidth - 1)
	if hi == 0 {
		return 0
	}
	return uint(64 - bits.LeadingZeros64(hi) + mantissaWidth - 1 - mantissaWidth + 1)
	// i.e. bitlen(length) - (mantissaWidth - 1)
}

// encodeBounds compresses [base, base+length) (length may be 1<<64 when
// fullSpace is set) into CHERI Concentrate form. It returns the encoded
// fields, the decompressed bounds that the encoding actually represents
// (after any rounding), and whether the requested bounds were exactly
// representable. Every result is reported to the lockstep bounds observer
// when one is installed (see observe.go).
func encodeBounds(base, length uint64, fullSpace bool) (encBounds, bounds, bool) {
	eb, dec, exact := encodeBoundsRaw(base, length, fullSpace)
	observeEncode(base, length, fullSpace, dec, exact)
	return eb, dec, exact
}

func encodeBoundsRaw(base, length uint64, fullSpace bool) (encBounds, bounds, bool) {
	if fullSpace {
		// The reset/root capability: E = resetExponent, covering [0, 2^64].
		eb := encBounds{ie: true, t: uint16(resetExponent >> ieFieldWidth), b: uint16(resetExponent & (1<<ieFieldWidth - 1))}
		return eb, bounds{base: 0, top: 0, topHi: true}, base == 0
	}

	e := computeE(length)
	ie := e != 0 || (length>>(mantissaWidth-2))&1 != 0

	if !ie {
		// Exact small-object encoding: E = 0, all mantissa bits stored.
		b := base & (1<<mantissaWidth - 1)
		top := base + length
		t := top & (1<<(mantissaWidth-2) - 1)
		eb := encBounds{ie: false, t: uint16(t), b: uint16(b)}
		dec := decodeBounds(eb, base)
		return eb, dec, dec.base == base && !dec.topHi && dec.top == base+length
	}

	// Internal exponent: low ieFieldWidth bits of T and B hold E, so bounds
	// are rounded to multiples of 2^(E+ieFieldWidth). Rounding the top up
	// may carry into a higher bit and force E to grow by one.
	for {
		if e > maxExponent {
			e = resetExponent
			eb := encBounds{ie: true, t: uint16(e >> ieFieldWidth), b: uint16(e & (1<<ieFieldWidth - 1))}
			return eb, bounds{topHi: true}, false
		}
		align := uint64(1) << (e + ieFieldWidth)
		rbase := base &^ (align - 1)
		// The true top is a 65-bit quantity; under the caller's contract
		// base+length <= 2^64, a wrap to 0 (before or after rounding up)
		// means the top is exactly 2^64, which the format can represent at
		// any exponent via the decoder's topHi reconstruction.
		rtopV := base + length
		if r := rtopV & (align - 1); r != 0 {
			rtopV += align - r
		}
		if rtopV == 0 && rbase == 0 {
			// Rounded region is the entire address space: no internal
			// exponent fits, only the reset capability covers it.
			eb := encBounds{ie: true, t: uint16(resetExponent >> ieFieldWidth), b: uint16(resetExponent & (1<<ieFieldWidth - 1))}
			return eb, bounds{topHi: true}, false
		}
		// 65-bit length via wrapping subtraction: with rtopV == 0 meaning
		// 2^64, 0 - rbase is exactly 2^64 - rbase for any rbase > 0.
		rlen := rtopV - rbase
		// Verify the rounded length still fits at this exponent; the top
		// mantissa stores mantissaWidth-2 significant bits plus an implied
		// leading 1, so the length must be < 2^(mantissaWidth-1+e).
		if rlen>>(e+mantissaWidth-1) != 0 {
			e++
			continue
		}
		bField := uint16(rbase>>e) & (1<<mantissaWidth - 1)
		tField := uint16(rtopV>>e) & (1<<(mantissaWidth-2) - 1)
		// Stuff the exponent into the low bits.
		bField = bField&^(1<<ieFieldWidth-1) | uint16(e&(1<<ieFieldWidth-1))
		tField = tField&^(1<<ieFieldWidth-1) | uint16((e>>ieFieldWidth)&(1<<ieFieldWidth-1))
		eb := encBounds{ie: true, t: tField, b: bField}
		dec := decodeBounds(eb, base)
		exact := dec.base == base && !dec.topHi && dec.top == base+length
		if !dec.contains(base, 0) || dec.base != rbase {
			// The requested address fell outside the representable window
			// at this exponent (can happen near region edges); widen.
			e++
			continue
		}
		return eb, dec, exact
	}
}

// decodeBounds reconstructs the full bounds from the stored fields and the
// capability's current address, applying the CHERI Concentrate correction
// terms that disambiguate which 2^(E+MW)-sized window the bounds live in.
func decodeBounds(eb encBounds, addr uint64) bounds {
	e := eb.exponent()
	if eb.ie && e >= resetExponent {
		return bounds{topHi: true}
	}
	tVal := uint64(eb.t)
	bVal := uint64(eb.b)
	if eb.ie {
		tVal &^= 1<<ieFieldWidth - 1
		bVal &^= 1<<ieFieldWidth - 1
	}
	// Reconstruct the top two bits of T: T[MW-1:MW-2] = B[MW-1:MW-2] + Lcarry + Lmsb.
	lcarry := uint64(0)
	if tVal < bVal&(1<<(mantissaWidth-2)-1) {
		lcarry = 1
	}
	lmsb := uint64(0)
	if eb.ie {
		lmsb = 1
	}
	tHigh := (bVal>>(mantissaWidth-2) + lcarry + lmsb) & 3
	tVal |= tHigh << (mantissaWidth - 2)

	if e > maxExponent {
		e = maxExponent
	}
	aMid := (addr >> e) & (1<<mantissaWidth - 1)
	// Representable-space boundary R = B - 2^(MW-2) (mod 2^MW).
	r := (bVal - 1<<(mantissaWidth-2)) & (1<<mantissaWidth - 1)
	corr := func(x uint64) int64 {
		xLt := x < r
		aLt := aMid < r
		switch {
		case xLt == aLt:
			return 0
		case aLt && !xLt:
			return -1
		default:
			return 1
		}
	}
	aTop := addr >> (e + mantissaWidth) // high bits beyond the mantissa window
	shift := e + mantissaWidth

	baseHigh := uint64(int64(aTop) + corr(bVal))
	base := baseHigh<<shift | bVal<<e

	topHigh := int64(aTop) + corr(tVal)
	var top uint64
	topHi := false
	if shift >= 64 {
		top = tVal << e
		topHi = topHigh > 0
	} else {
		full := uint64(topHigh)<<shift | tVal<<e
		top = full
		// A top of exactly 2^64 appears as topHigh carrying out of 64 bits.
		if topHigh > 0 && uint64(topHigh)>>(64-shift) != 0 {
			topHi = true
			top = 0
		}
	}
	return bounds{base: base, top: top, topHi: topHi}
}

// RepresentableAlignmentMask returns the CRAM value for a region of the
// given length: a mask of the low address bits that must be zero for the
// base (and length) of a region of that size to be exactly representable.
//
// Lengths so large that no internal-exponent encoding fits (rounding up
// reaches 2^64, or the exponent would exceed maxExponent) are coverable
// only by the full-address-space capability, whose sole representable base
// is 0: the mask for them is 0 (every address bit must be zero).
func RepresentableAlignmentMask(length uint64) uint64 {
	e := computeE(length)
	ie := e != 0 || (length>>(mantissaWidth-2))&1 != 0
	if !ie {
		return ^uint64(0)
	}
	// Rounding the length up may bump the exponent; iterate as encodeBounds
	// does. The round-up is 65-bit: a carry out of length+align-1 means the
	// rounded length reached 2^64 and cannot fit this exponent's mantissa.
	for {
		if e > maxExponent {
			return 0
		}
		align := uint64(1) << (e + ieFieldWidth)
		sum, carry := bits.Add64(length, align-1, 0)
		rlen := sum &^ (align - 1)
		if carry != 0 || rlen>>(e+mantissaWidth-1) != 0 {
			e++
			continue
		}
		return ^(align - 1)
	}
}

// RepresentableLength returns the CRRL value: the smallest representable
// region length that is >= the requested length when the base is aligned to
// RepresentableAlignmentMask(length). The true CRRL of lengths only the
// full-address-space capability can cover is 2^64, which saturates to the
// maximum uint64 (the same convention Capability.Length uses for the
// full-space region).
func RepresentableLength(length uint64) uint64 {
	mask := RepresentableAlignmentMask(length)
	crrl := ^uint64(0) // 2^64 saturated: only [0, 2^64] covers this length
	if mask != 0 {
		if sum, carry := bits.Add64(length, ^mask, 0); carry == 0 {
			crrl = sum & mask
		}
	}
	observeCRRL(length, crrl, mask)
	return crrl
}
