// Package cap implements the CHERI capability model used throughout the
// simulator: 128-bit Morello-style capabilities with CHERI Concentrate
// compressed bounds, permissions, object types and the out-of-band validity
// tag. All capability manipulation in the simulated machine goes through
// this package, so monotonicity (bounds and permissions never grow) is
// enforced in one place.
package cap

import (
	"errors"
	"fmt"
)

// Capability is an in-register (decompressed) CHERI capability. The zero
// value is the NULL capability: untagged, zero address, empty bounds.
//
// Capability values are immutable in style: mutating operations return a new
// Capability (possibly with the tag cleared) rather than modifying in place,
// mirroring how capability instructions produce new register values.
type Capability struct {
	addr  uint64
	bnd   bounds
	perms Perms
	otype uint32
	tag   bool
	// fullSpace marks the bounds as covering [0, 2^64] (root capabilities).
	// Kept implicit in bnd.topHi; field exists only for documentation.
}

// Object-type values. OTypeUnsealed marks an ordinary (unsealed)
// capability; sealed capabilities carry a nonzero type and are immutable
// and non-dereferenceable until unsealed.
const (
	OTypeUnsealed  uint32 = 0
	OTypeSentry    uint32 = 1 // sealed entry: unsealed automatically by branch
	otypeUserBase  uint32 = 4
	otypeFieldMask uint32 = 1<<15 - 1
)

// Errors returned by capability operations and by the memory system when a
// hardware check fails. These correspond to the Morello capability fault
// classes ("in-address-space security exceptions" in the paper's Appendix).
var (
	ErrTagViolation    = errors.New("cap: tag violation (untagged capability dereferenced)")
	ErrBoundsViolation = errors.New("cap: bounds violation")
	ErrPermViolation   = errors.New("cap: permission violation")
	ErrSealViolation   = errors.New("cap: seal violation (sealed capability used)")
	ErrUnrepresentable = errors.New("cap: bounds not representable")
)

// Root returns the maximally-permissive root capability covering the entire
// 64-bit address space, as installed by the firmware into DDC/PCC at reset.
func Root() Capability {
	_, bnd, _ := encodeBounds(0, 0, true)
	return Capability{bnd: bnd, perms: PermsAll, tag: true}
}

// New derives a tagged capability for [base, base+length) with the given
// permissions from the root. Bounds are rounded as required by CHERI
// Concentrate; use Exact afterwards to detect rounding. New is a test and
// bootstrap convenience: simulated software derives capabilities from DDC
// via SetBounds instead.
func New(base, length uint64, perms Perms) Capability {
	c, _ := Root().SetBounds(base, length)
	c = c.WithAddress(base)
	c.perms = perms
	return c
}

// Valid reports whether the capability's tag is set.
func (c Capability) Valid() bool { return c.tag }

// Sealed reports whether the capability carries a nonzero object type.
func (c Capability) Sealed() bool { return c.otype != OTypeUnsealed }

// Address returns the capability's current address (cursor).
func (c Capability) Address() uint64 { return c.addr }

// Base returns the lower bound.
func (c Capability) Base() uint64 { return c.bnd.base }

// Top returns the upper bound, saturated to 2^64-1 for the full-space
// capability (use TopIsFull to distinguish).
func (c Capability) Top() uint64 {
	if c.bnd.topHi {
		return ^uint64(0)
	}
	return c.bnd.top
}

// TopIsFull reports whether the upper bound is exactly 2^64.
func (c Capability) TopIsFull() bool { return c.bnd.topHi }

// Length returns Top - Base (saturated for the full-space capability).
func (c Capability) Length() uint64 { return c.bnd.length() }

// Perms returns the permission set.
func (c Capability) Perms() Perms { return c.perms }

// OType returns the object type (OTypeUnsealed for ordinary capabilities).
func (c Capability) OType() uint32 { return c.otype }

// InBounds reports whether an access of size bytes at addr is within bounds.
func (c Capability) InBounds(addr, size uint64) bool { return c.bnd.contains(addr, size) }

// WithAddress returns c with its address set to addr. Following the Morello
// semantics of SCVALUE, if the new address is so far outside the bounds'
// representable window that the compressed bounds would decode differently,
// the tag is cleared rather than the bounds corrupted.
func (c Capability) WithAddress(addr uint64) Capability {
	out := c
	out.addr = addr
	if !c.tag {
		return out
	}
	// Re-derive: if re-encoding the same bounds at the new address is
	// impossible, the capability becomes unrepresentable and loses its tag.
	if !representableAt(c.bnd, addr) {
		out.tag = false
	}
	return out
}

// representableAt reports whether bounds b still decode identically when the
// capability's address moves to addr. Small (E=0) regions are always safe;
// larger regions have a representable window around the bounds.
func representableAt(b bounds, addr uint64) bool {
	eb, dec, _ := encodeBounds(b.base, b.length(), b.topHi && b.base == 0)
	if dec != b {
		// Bounds originated from a decode; recover fields by re-deriving
		// from the bounds themselves (conservative).
		return b.contains(addr, 0) || withinSlack(b, addr)
	}
	got := decodeBounds(eb, addr)
	return got == b
}

// withinSlack implements the representable-window slack of one-quarter of
// the region size on either side (the R = B - 2^(MW-2) rule).
func withinSlack(b bounds, addr uint64) bool {
	l := b.length()
	slack := l / 4
	lo := b.base - slack
	if lo > b.base { // underflow
		lo = 0
	}
	hi := b.top + slack
	if b.topHi || hi < b.top {
		return addr >= lo
	}
	return addr >= lo && addr < hi
}

// Offset returns the address relative to base.
func (c Capability) Offset() uint64 { return c.addr - c.bnd.base }

// Add returns c with its address advanced by delta (pointer arithmetic).
func (c Capability) Add(delta int64) Capability {
	return c.WithAddress(c.addr + uint64(delta))
}

// SetBounds narrows the capability to [base, base+length). It fails if the
// requested region is not contained in the current bounds (monotonicity) or
// if the capability is untagged or sealed. If the requested bounds are not
// exactly representable they are rounded outward, still within the original
// bounds check semantics of Morello's SCBNDS (which checks the requested,
// not rounded, region).
func (c Capability) SetBounds(base, length uint64) (Capability, error) {
	if !c.tag {
		return c.clearTag(), ErrTagViolation
	}
	if c.Sealed() {
		return c.clearTag(), ErrSealViolation
	}
	if !c.bnd.contains(base, length) {
		return c.clearTag(), ErrBoundsViolation
	}
	_, dec, _ := encodeBounds(base, length, false)
	out := c
	out.bnd = dec
	out.addr = base
	return out, nil
}

// SetBoundsExact is SetBounds but fails with ErrUnrepresentable when the
// requested bounds would be rounded.
func (c Capability) SetBoundsExact(base, length uint64) (Capability, error) {
	if !c.tag {
		return c.clearTag(), ErrTagViolation
	}
	if c.Sealed() {
		return c.clearTag(), ErrSealViolation
	}
	if !c.bnd.contains(base, length) {
		return c.clearTag(), ErrBoundsViolation
	}
	_, dec, exact := encodeBounds(base, length, false)
	if !exact {
		return c.clearTag(), ErrUnrepresentable
	}
	out := c
	out.bnd = dec
	out.addr = base
	return out, nil
}

// ClearPerms returns c with the given permissions removed (CLRPERM).
func (c Capability) ClearPerms(p Perms) Capability {
	out := c
	out.perms &^= p
	return out
}

// ClearTag returns c with its tag cleared (an explicit CLRTAG, or the result
// of a non-capability store overlapping this capability in memory).
func (c Capability) ClearTag() Capability { return c.clearTag() }

func (c Capability) clearTag() Capability {
	out := c
	out.tag = false
	return out
}

// Seal returns c sealed with the object type held in the address of sealer,
// which must carry PermSeal and have the otype in bounds.
func (c Capability) Seal(sealer Capability) (Capability, error) {
	if !c.tag || !sealer.tag {
		return c.clearTag(), ErrTagViolation
	}
	if c.Sealed() || sealer.Sealed() {
		return c.clearTag(), ErrSealViolation
	}
	if !sealer.perms.Has(PermSeal) {
		return c.clearTag(), ErrPermViolation
	}
	ot := uint32(sealer.addr) & otypeFieldMask
	if ot == OTypeUnsealed || !sealer.InBounds(sealer.addr, 1) {
		return c.clearTag(), ErrBoundsViolation
	}
	out := c
	out.otype = ot
	return out, nil
}

// Unseal returns c unsealed using unsealer, which must carry PermUnseal and
// address the same object type.
func (c Capability) Unseal(unsealer Capability) (Capability, error) {
	if !c.tag || !unsealer.tag {
		return c.clearTag(), ErrTagViolation
	}
	if !c.Sealed() || unsealer.Sealed() {
		return c.clearTag(), ErrSealViolation
	}
	if !unsealer.perms.Has(PermUnseal) {
		return c.clearTag(), ErrPermViolation
	}
	if uint32(unsealer.addr)&otypeFieldMask != c.otype || !unsealer.InBounds(unsealer.addr, 1) {
		return c.clearTag(), ErrPermViolation
	}
	out := c
	out.otype = OTypeUnsealed
	return out, nil
}

// SealEntry returns c sealed as a sentry (sealed entry) capability, the form
// used for function pointers under the purecap ABI.
func (c Capability) SealEntry() (Capability, error) {
	if !c.tag {
		return c.clearTag(), ErrTagViolation
	}
	if c.Sealed() {
		return c.clearTag(), ErrSealViolation
	}
	out := c
	out.otype = OTypeSentry
	return out, nil
}

// CheckAccess validates a memory access of size bytes at the capability's
// current address requiring permissions need. It returns the specific
// capability fault on failure; the memory system turns this into a
// simulated in-address-space security exception.
func (c Capability) CheckAccess(size uint64, need Perms) error {
	if !c.tag {
		return ErrTagViolation
	}
	if c.Sealed() {
		return ErrSealViolation
	}
	if !c.perms.Has(need) {
		return ErrPermViolation
	}
	if !c.bnd.contains(c.addr, size) {
		return ErrBoundsViolation
	}
	return nil
}

// String renders the capability in the CheriBSD debugger style.
func (c Capability) String() string {
	t := 'v'
	if !c.tag {
		t = 'i'
	}
	sealed := ""
	if c.Sealed() {
		sealed = fmt.Sprintf(" sealed(%d)", c.otype)
	}
	topStr := fmt.Sprintf("%#x", c.Top())
	if c.bnd.topHi {
		topStr = "2^64"
	}
	return fmt.Sprintf("%c:%#x [%#x,%s] %s%s", t, c.addr, c.bnd.base, topStr, c.perms, sealed)
}
