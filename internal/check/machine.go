package check

import "cherisim/internal/core"

// AttachMachine installs lockstep checkers behind every cache and TLB of a
// freshly built machine: L1I/L1D/L2/LLC and both L1 TLBs plus the shared
// L2 TLB (attached once; the second hierarchy's view is skipped via the
// shadow test, as is an LLC already shared — and shadowed — by an earlier
// core of a multi-core run). Call it from a machine setup hook, before the
// machine executes anything.
func (c *Collector) AttachMachine(m *core.Machine) {
	AttachCache(c, m.L1I)
	AttachCache(c, m.L1D)
	AttachCache(c, m.L2)
	AttachCache(c, m.LLC)
	AttachTLB(c, m.ITLB.L1)
	AttachTLB(c, m.DTLB.L1)
	AttachTLB(c, m.ITLB.L2)
	if m.DTLB.L2 != m.ITLB.L2 {
		AttachTLB(c, m.DTLB.L2)
	}
}
