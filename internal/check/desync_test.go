package check

import (
	"strings"
	"testing"

	"cherisim/internal/cache"
	"cherisim/internal/cap"
	"cherisim/internal/telemetry"
	"cherisim/internal/tlb"
)

// These white-box tests prove the harness detects divergence at all: each
// one desynchronizes the reference model behind the checker's back and
// asserts the next checked operation is reported. Without them, a checker
// that compares nothing would pass every lockstep test.

func TestCacheCheckerDetectsDesync(t *testing.T) {
	cfg := cache.Config{Name: "desync", SizeBytes: 512, LineSize: 64, Ways: 2}
	col := NewCollector(nil)
	c := cache.New(cfg)
	k := AttachCache(col, c)
	c.Access(0, true)
	// Skew the reference: an access the optimized cache never saw.
	k.ref.Access(64, false)
	c.Access(128, false)
	rep := col.Report()
	if rep.Divergences == 0 {
		t.Fatal("checker missed a desynchronized reference model")
	}
	if !k.Dead() {
		t.Fatal("checker still live after reporting a divergence")
	}
	d := rep.First[0]
	if d.Component != "desync" || d.Op == "" || len(d.Trace) == 0 {
		t.Fatalf("divergence report incomplete: %+v", d)
	}
	if !strings.Contains(d.String(), "replay trace") {
		t.Fatalf("report rendering lost the trace: %s", d.String())
	}
	// A dead checker must not keep reporting.
	before := col.Report().Divergences
	c.Access(192, false)
	if got := col.Report().Divergences; got != before {
		t.Fatalf("dead checker reported again: %d -> %d", before, got)
	}
}

func TestTLBCheckerDetectsDesync(t *testing.T) {
	cfg := tlb.Config{Name: "desync-tlb", Entries: 4, PageLog: 12}
	col := NewCollector(nil)
	tl := tlb.New(cfg)
	k := AttachTLB(col, tl)
	tl.Insert(1 << 12)
	k.ref.Insert(2)    // reference-only insert (the reference holds VPNs)
	tl.Lookup(2 << 12) // optimized misses, reference hits
	rep := col.Report()
	if rep.Divergences == 0 {
		t.Fatal("checker missed a desynchronized reference model")
	}
	if !k.Dead() {
		t.Fatal("checker still live after reporting a divergence")
	}
}

func TestBoundsVerifierDetectsMismatch(t *testing.T) {
	// A fabricated observation claiming a wrong decode must be rejected.
	o := cap.BoundsObservation{
		Op: cap.BoundsEncode, Base: 0x1000, Length: 0x100,
		DecBase: 0x1001, DecTop: 0x1100, Exact: true,
	}
	if VerifyBounds(o) == "" {
		t.Fatal("verifier accepted a wrong decoded base")
	}
	o2 := cap.BoundsObservation{Op: cap.BoundsCRRL, Length: 0x100, CRRL: 0x101, CRAM: ^uint64(0)}
	if VerifyBounds(o2) == "" {
		t.Fatal("verifier accepted a wrong CRRL")
	}
}

func TestCollectorTelemetryCounters(t *testing.T) {
	hub := telemetry.New()
	col := NewCollector(hub)
	cfg := cache.Config{Name: "tele", SizeBytes: 512, LineSize: 64, Ways: 2}
	c := cache.New(cfg)
	k := AttachCache(col, c)
	c.Access(0, false)
	c.Access(64, false)
	if got := hub.Metrics.Counter("check_accesses").Value(); got != 2 {
		t.Fatalf("check_accesses = %d, want 2", got)
	}
	k.ref.Access(128, false) // desync
	c.Access(256, false)
	if got := hub.Metrics.Counter("check_divergences").Value(); got != 1 {
		t.Fatalf("check_divergences = %d, want 1", got)
	}
}

func TestAttachSkipsShadowedUnits(t *testing.T) {
	cfg := cache.Config{Name: "shared", SizeBytes: 512, LineSize: 64, Ways: 2}
	col := NewCollector(nil)
	c := cache.New(cfg)
	if AttachCache(col, c) == nil {
		t.Fatal("first attach refused")
	}
	if AttachCache(col, c) != nil {
		t.Fatal("second attach did not skip a shadowed cache")
	}
	tcfg := tlb.Config{Name: "shared-tlb", Entries: 4, PageLog: 12}
	tl := tlb.New(tcfg)
	if AttachTLB(col, tl) == nil {
		t.Fatal("first TLB attach refused")
	}
	if AttachTLB(col, tl) != nil {
		t.Fatal("second attach did not skip a shadowed TLB")
	}
}

func TestTraceRingKeepsTail(t *testing.T) {
	var r opRing
	for i := 0; i < traceDepth*2; i++ {
		r.push(traceOp{kind: opCacheRead, a: uint64(i)})
	}
	snap := r.snapshot()
	if len(snap) != traceDepth {
		t.Fatalf("snapshot length %d, want %d", len(snap), traceDepth)
	}
	if snap[0] != (traceOp{kind: opCacheRead, a: traceDepth}).String() {
		t.Fatalf("oldest retained op wrong: %s", snap[0])
	}
	if snap[len(snap)-1] != (traceOp{kind: opCacheRead, a: traceDepth*2 - 1}).String() {
		t.Fatalf("newest retained op wrong: %s", snap[len(snap)-1])
	}
}
