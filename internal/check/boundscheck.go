package check

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cherisim/internal/cap"
	"cherisim/internal/refmodel"
)

// The bounds compressor is pure arithmetic, so its lockstep tap is a
// process-global observer (cap.SetBoundsObserver) rather than a per-object
// shadow: every collector that called EnableBounds receives every
// observation. Verification runs once per observation and the verdict is
// fanned out, so concurrent sessions pay one big.Int re-encode, not one
// per collector.

var (
	boundsMu        sync.Mutex
	boundsTaps      atomic.Pointer[[]*Collector]
	boundsInstalled bool
)

// EnableBounds registers the collector for bounds-compression checking,
// installing the process-wide observer on first use. Call Close when the
// collector's campaign is done to stop attributing later operations to it.
func (c *Collector) EnableBounds() {
	boundsMu.Lock()
	defer boundsMu.Unlock()
	cur := boundsTaps.Load()
	var next []*Collector
	if cur != nil {
		for _, t := range *cur {
			if t == c {
				return
			}
		}
		next = append(next, *cur...)
	}
	next = append(next, c)
	boundsTaps.Store(&next)
	if !boundsInstalled {
		cap.SetBoundsObserver(dispatchBounds)
		boundsInstalled = true
	}
}

// Close unregisters the collector from the bounds tap. Cache and TLB
// checkers die with their machines and need no teardown.
func (c *Collector) Close() {
	boundsMu.Lock()
	defer boundsMu.Unlock()
	cur := boundsTaps.Load()
	if cur == nil {
		return
	}
	next := make([]*Collector, 0, len(*cur))
	for _, t := range *cur {
		if t != c {
			next = append(next, t)
		}
	}
	boundsTaps.Store(&next)
}

// dispatchBounds is the installed cap bounds observer.
func dispatchBounds(o cap.BoundsObservation) {
	taps := boundsTaps.Load()
	if taps == nil || len(*taps) == 0 {
		return
	}
	detail := VerifyBounds(o)
	var div *Divergence
	if detail != "" {
		op := describeBounds(o)
		div = &Divergence{Component: "bounds", Op: op, Detail: detail, Trace: []string{op}}
	}
	for _, c := range *taps {
		c.operation()
		if div != nil {
			c.record(div)
		}
	}
}

// describeBounds renders the observation's inputs as a replayable op.
func describeBounds(o cap.BoundsObservation) string {
	if o.Op == cap.BoundsCRRL {
		return fmt.Sprintf("crrl/cram length=%#x", o.Length)
	}
	return fmt.Sprintf("encode base=%#x length=%#x fullSpace=%v", o.Base, o.Length, o.FullSpace)
}

// VerifyBounds checks one observed bounds-compression result against the
// big-integer reference model, returning a description of the first
// mismatching field, or "" when the models agree. Exposed for the fuzz
// targets, which drive the optimized encoder directly.
func VerifyBounds(o cap.BoundsObservation) string {
	switch o.Op {
	case cap.BoundsCRRL:
		wantLen := refmodel.RepresentableLength(o.Length)
		wantMask := refmodel.RepresentableAlignmentMask(o.Length)
		if o.CRRL != wantLen || o.CRAM != wantMask {
			return fmt.Sprintf("crrl/cram: optimized len=%#x mask=%#x, reference len=%#x mask=%#x",
				o.CRRL, o.CRAM, wantLen, wantMask)
		}
	case cap.BoundsEncode:
		ref := refmodel.EncodeBounds(o.Base, o.Length, o.FullSpace)
		if o.DecBase != ref.Base.Uint64() {
			return fmt.Sprintf("base: optimized %#x, reference %#x", o.DecBase, ref.Base)
		}
		refFull := ref.TopIsFull()
		if o.DecTopFull != refFull {
			return fmt.Sprintf("top: optimized full=%v, reference top=%#x", o.DecTopFull, ref.Top)
		}
		// When the top is exactly 2^64 the optimized decode's top word is
		// a don't-care; compare it only for in-range tops.
		if !o.DecTopFull && o.DecTop != ref.Top.Uint64() {
			return fmt.Sprintf("top: optimized %#x, reference %#x", o.DecTop, ref.Top)
		}
		if o.Exact != ref.Exact {
			return fmt.Sprintf("exact: optimized %v, reference %v", o.Exact, ref.Exact)
		}
	}
	return ""
}
