package check

import (
	"fmt"

	"cherisim/internal/cache"
	"cherisim/internal/refmodel"
)

// CacheChecker replays every operation of one optimized cache on a naive
// reference cache and diffs the two after each step: the access result
// (hit, write-back, write-back address), the full statistics block, and
// the complete state of the touched set (tag, valid, dirty, LRU sequence
// per way — so victim-choice divergence is caught on the very access that
// causes it, not when the wrong line is later evicted).
type CacheChecker struct {
	name string
	opt  *cache.Cache
	ref  *refmodel.Cache
	col  *Collector
	ring opRing
	dead bool
	// Reused snapshot buffers keep the per-access compare allocation-free.
	optBuf, refBuf []cache.LineState
}

// AttachCache installs a lockstep checker behind c, which must be freshly
// built (empty, zero stats) so the reference model starts in the same
// state. A cache that already has a shadow — the shared LLC seen from a
// second core, typically — is left alone and nil is returned.
func AttachCache(col *Collector, c *cache.Cache) *CacheChecker {
	if c.Shadowed() {
		return nil
	}
	k := &CacheChecker{
		name: c.Config().Name,
		opt:  c,
		ref:  refmodel.NewCache(c.Config()),
		col:  col,
	}
	c.SetShadow(k)
	return k
}

// Access implements cache.Shadow.
func (k *CacheChecker) Access(addr uint64, write bool, res cache.Result) {
	if k.dead {
		return
	}
	k.col.operation()
	kind := uint8(opCacheRead)
	if write {
		kind = opCacheWrite
	}
	k.ring.push(traceOp{kind: kind, a: addr})
	refRes := k.ref.Access(addr, write)
	if refRes != res {
		k.diverge(fmt.Sprintf("result: optimized %+v, reference %+v", res, refRes))
		return
	}
	k.compareState(k.opt.Set(addr))
}

// InvalidateAll implements cache.Shadow.
func (k *CacheChecker) InvalidateAll(writeBacks int) {
	if k.dead {
		return
	}
	k.col.operation()
	k.ring.push(traceOp{kind: opCacheFlush})
	refWB := k.ref.InvalidateAll()
	if refWB != writeBacks {
		k.diverge(fmt.Sprintf("write-backs: optimized %d, reference %d", writeBacks, refWB))
		return
	}
	k.compareState(0)
}

// compareState diffs statistics and the given set's full state.
func (k *CacheChecker) compareState(set int) {
	if k.opt.Stats != k.ref.Stats {
		k.diverge(fmt.Sprintf("stats: optimized %+v, reference %+v", k.opt.Stats, k.ref.Stats))
		return
	}
	k.optBuf = k.opt.AppendSetState(k.optBuf[:0], set)
	k.refBuf = k.ref.AppendSetState(k.refBuf[:0], set)
	for w := range k.optBuf {
		if k.optBuf[w] != k.refBuf[w] {
			k.diverge(fmt.Sprintf("set %d way %d: optimized %+v, reference %+v", set, w, k.optBuf[w], k.refBuf[w]))
			return
		}
	}
}

// Dead reports whether the checker has stopped after a divergence.
func (k *CacheChecker) Dead() bool { return k.dead }

// diverge reports the mismatch; the diverging operation is the one last
// pushed onto the trace ring.
func (k *CacheChecker) diverge(detail string) {
	k.dead = true
	k.col.record(&Divergence{
		Component: k.name,
		Step:      k.ring.n,
		Op:        k.ring.ops[(k.ring.n-1)%traceDepth].String(),
		Detail:    detail,
		Trace:     k.ring.snapshot(),
	})
}
