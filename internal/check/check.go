// Package check is the lockstep reference-model harness: it runs the
// deliberately naive models in internal/refmodel side by side with the
// optimized cache, TLB, and bounds-compression implementations and diffs
// them after every state-changing operation — outcome, stats deltas, LRU
// victim choice, write-back addresses, and full per-set/per-entry state.
//
// The first divergence a checker sees is reported with a replayable tail
// of the operations that led to it; the checker then goes dead (a diverged
// shadow would only produce cascading noise). Checking is attached per
// component (AttachCache/AttachTLB, or AttachMachine for a whole core) and
// aggregated in a Collector, which also feeds the check_accesses and
// check_divergences telemetry counters.
package check

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"cherisim/internal/telemetry"
)

// traceDepth is how many trailing operations each checker retains for the
// replayable divergence trace.
const traceDepth = 64

// maxStoredDivergences caps how many full divergence reports a Collector
// keeps; the counter keeps counting past it.
const maxStoredDivergences = 16

// op kinds for the compact trace ring.
const (
	opCacheRead = iota
	opCacheWrite
	opCacheFlush
	opTLBLookup
	opTLBInsert
	opTLBFlush
)

// traceOp is one recorded operation, compact enough to push on the hot
// path and formatted only when a divergence is reported.
type traceOp struct {
	kind uint8
	a    uint64
}

func (o traceOp) String() string {
	switch o.kind {
	case opCacheRead:
		return fmt.Sprintf("read %#x", o.a)
	case opCacheWrite:
		return fmt.Sprintf("write %#x", o.a)
	case opCacheFlush:
		return "invalidate-all"
	case opTLBLookup:
		return fmt.Sprintf("lookup vpn %#x", o.a)
	case opTLBInsert:
		return fmt.Sprintf("insert vpn %#x", o.a)
	case opTLBFlush:
		return "invalidate-all"
	default:
		return fmt.Sprintf("op(%d) %#x", o.kind, o.a)
	}
}

// opRing is a fixed-size ring of the most recent operations.
type opRing struct {
	ops [traceDepth]traceOp
	n   uint64 // total operations pushed
}

func (r *opRing) push(o traceOp) {
	r.ops[r.n%traceDepth] = o
	r.n++
}

// snapshot returns the retained tail, oldest first.
func (r *opRing) snapshot() []string {
	count := r.n
	if count > traceDepth {
		count = traceDepth
	}
	out := make([]string, 0, count)
	for i := r.n - count; i < r.n; i++ {
		out = append(out, r.ops[i%traceDepth].String())
	}
	return out
}

// Divergence is one lockstep mismatch: the first operation on which a
// checked component and its reference model disagreed.
type Divergence struct {
	// Component names the checked unit ("L1D", "L2TLB", "bounds", ...).
	Component string
	// Step is the 1-based ordinal of the diverging operation within the
	// component's checked stream.
	Step uint64
	// Op describes the operation that diverged.
	Op string
	// Detail describes the first mismatching field (optimized vs reference).
	Detail string
	// Trace is the retained tail of operations ending with Op, oldest
	// first — replaying it against a fresh pair reproduces the divergence.
	Trace []string
}

func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s diverged at op %d (%s): %s", d.Component, d.Step, d.Op, d.Detail)
	if len(d.Trace) > 0 {
		fmt.Fprintf(&b, "\n  replay trace (last %d ops):", len(d.Trace))
		for _, t := range d.Trace {
			b.WriteString("\n    ")
			b.WriteString(t)
		}
	}
	return b.String()
}

// Collector aggregates lockstep results across every checker attached to
// it. It is safe for concurrent use by checkers on different machines.
type Collector struct {
	accesses    atomic.Uint64
	divergences atomic.Uint64
	cAccesses   *telemetry.Counter
	cDivs       *telemetry.Counter

	mu    sync.Mutex
	first []*Divergence
}

// NewCollector builds a collector. With a live telemetry hub the
// check_accesses and check_divergences counters are kept in step; a nil
// hub is fine.
func NewCollector(hub *telemetry.Hub) *Collector {
	var reg *telemetry.Registry
	if hub.Enabled() {
		reg = hub.Metrics
	}
	return &Collector{
		cAccesses: reg.Counter("check_accesses"),
		cDivs:     reg.Counter("check_divergences"),
	}
}

// operation records one checked operation.
func (c *Collector) operation() {
	c.accesses.Add(1)
	c.cAccesses.Inc()
}

// record registers a divergence, keeping the first maxStoredDivergences
// full reports.
func (c *Collector) record(d *Divergence) {
	c.divergences.Add(1)
	c.cDivs.Inc()
	c.mu.Lock()
	if len(c.first) < maxStoredDivergences {
		c.first = append(c.first, d)
	}
	c.mu.Unlock()
}

// Report is a point-in-time summary of a collector's lockstep results.
type Report struct {
	// Accesses counts checked operations (cache accesses, TLB operations,
	// bounds compressions).
	Accesses uint64
	// Divergences counts operations on which optimized and reference
	// models disagreed.
	Divergences uint64
	// First holds the earliest divergence reports, capped.
	First []*Divergence
}

// Report summarizes everything the collector has seen so far.
func (c *Collector) Report() Report {
	c.mu.Lock()
	first := make([]*Divergence, len(c.first))
	copy(first, c.first)
	c.mu.Unlock()
	return Report{
		Accesses:    c.accesses.Load(),
		Divergences: c.divergences.Load(),
		First:       first,
	}
}
