package check_test

import (
	"math/rand"
	"testing"

	"cherisim/internal/cache"
	"cherisim/internal/cap"
	"cherisim/internal/check"
	"cherisim/internal/refmodel"
	"cherisim/internal/tlb"
)

// Small geometries so short scripts produce conflicts, evictions, and
// memo churn.
var (
	fuzzCacheCfg = cache.Config{Name: "fuzz-cache", SizeBytes: 512, LineSize: 64, Ways: 2}
	fuzzTLBCfg   = tlb.Config{Name: "fuzz-tlb", Entries: 4, PageLog: 12}
)

// cacheOp is one step of a deterministic differential script.
type cacheOp struct {
	flush bool
	addr  uint64
	write bool
}

// runCacheScript replays ops on a checked cache and returns the report.
func runCacheScript(t *testing.T, cfg cache.Config, ops []cacheOp) check.Report {
	t.Helper()
	col := check.NewCollector(nil)
	c := cache.New(cfg)
	if check.AttachCache(col, c) == nil {
		t.Fatal("AttachCache returned nil for a fresh cache")
	}
	for _, op := range ops {
		if op.flush {
			c.InvalidateAll()
		} else {
			c.Access(op.addr, op.write)
		}
	}
	return col.Report()
}

// TestCacheLockstepScripts drives the optimized cache through conflict,
// eviction, and flush patterns with the reference model in lockstep.
func TestCacheLockstepScripts(t *testing.T) {
	// Geometry: 4 sets x 2 ways, 64-byte lines. Set k is hit by addresses
	// k*64 + n*256.
	const (
		set0a = 0 * 64
		set0b = 4 * 64 // same set as set0a, different tag
		set0c = 8 * 64 // third tag in set 0: forces eviction
		set1a = 1 * 64
	)
	scripts := map[string][]cacheOp{
		"conflict-evict-clean": {
			{addr: set0a}, {addr: set0b}, {addr: set0c}, // evicts set0a (clean)
			{addr: set0a}, // evicts set0b
		},
		"dirty-eviction-writeback": {
			{addr: set0a, write: true}, {addr: set0b},
			{addr: set0c}, // evicts dirty set0a: write-back with its address
			{addr: set0b}, // hit refresh
			{addr: set0a, write: true},
		},
		"lru-refresh-changes-victim": {
			{addr: set0a}, {addr: set0b},
			{addr: set0a},                // refresh: set0b becomes LRU
			{addr: set0c, write: true},   // must evict set0b, not set0a
			{addr: set0a}, {addr: set0c}, // both still resident
		},
		"flush-with-dirty-lines": {
			{addr: set0a, write: true}, {addr: set1a, write: true}, {addr: set0b},
			{flush: true}, // two dirty write-backs
			{addr: set0a}, // cold again
			{flush: true}, // no dirty lines this time
		},
		"write-allocate-dirty-chain": {
			{addr: set0a, write: true}, {addr: set0b, write: true},
			{addr: set0c, write: true}, // evict dirty set0a
			{addr: set0a, write: true}, // evict dirty set0b
			{addr: set0b, write: true}, // evict dirty set0c
		},
	}
	for name, ops := range scripts {
		t.Run(name, func(t *testing.T) {
			rep := runCacheScript(t, fuzzCacheCfg, ops)
			if rep.Divergences != 0 {
				t.Fatalf("%d divergences: %v", rep.Divergences, rep.First[0])
			}
			if rep.Accesses != uint64(len(ops)) {
				t.Fatalf("checked %d operations, want %d", rep.Accesses, len(ops))
			}
		})
	}
}

// TestTLBLockstepScripts drives the optimized TLB (memo + map index) against
// the linear-scan reference through memo-eviction and refill patterns.
func TestTLBLockstepScripts(t *testing.T) {
	page := func(n uint64) uint64 { return n << 12 }
	type tlbOp struct {
		insert bool
		flush  bool
		addr   uint64
	}
	scripts := map[string][]tlbOp{
		"memo-eviction": {
			{insert: true, addr: page(1)},
			{addr: page(1)}, {addr: page(1)}, // memo fast path
			// Fill the 4-entry TLB so page 1 is evicted under the memo.
			{insert: true, addr: page(2)}, {insert: true, addr: page(3)},
			{insert: true, addr: page(4)}, {insert: true, addr: page(5)},
			{addr: page(1)}, // memo slot now holds another page: miss
			{addr: page(5)},
		},
		"duplicate-insert": {
			{insert: true, addr: page(7)},
			{insert: true, addr: page(7)}, // refresh in place, no second slot
			{addr: page(7)},
			{insert: true, addr: page(8)}, {insert: true, addr: page(9)},
			{insert: true, addr: page(10)}, {insert: true, addr: page(11)},
			{addr: page(7)}, // evicted by now; must miss, not corrupt
		},
		"flush-refill": {
			{insert: true, addr: page(1)}, {insert: true, addr: page(2)},
			{addr: page(1)},
			{flush: true},
			{addr: page(1)}, // cold
			{insert: true, addr: page(1)}, {addr: page(1)},
		},
		"lru-refresh-changes-victim": {
			{insert: true, addr: page(1)}, {insert: true, addr: page(2)},
			{insert: true, addr: page(3)}, {insert: true, addr: page(4)},
			{addr: page(1)},               // page 1 newest; page 2 is LRU
			{insert: true, addr: page(5)}, // must evict page 2
			{addr: page(1)}, {addr: page(2)}, {addr: page(5)},
		},
	}
	for name, ops := range scripts {
		t.Run(name, func(t *testing.T) {
			col := check.NewCollector(nil)
			tl := tlb.New(fuzzTLBCfg)
			if check.AttachTLB(col, tl) == nil {
				t.Fatal("AttachTLB returned nil for a fresh TLB")
			}
			for _, op := range ops {
				switch {
				case op.flush:
					tl.InvalidateAll()
				case op.insert:
					tl.Insert(op.addr)
				default:
					tl.Lookup(op.addr)
				}
			}
			if rep := col.Report(); rep.Divergences != 0 {
				t.Fatalf("%d divergences: %v", rep.Divergences, rep.First[0])
			}
		})
	}
}

// boundsObservations derives the encode and CRRL observations for one
// (base, length) pair from the public capability API: SetBounds for the
// decoded bounds, SetBoundsExact for the exact flag, and the CRRL/CRAM
// helpers. The caller must ensure base+length <= 2^64.
func boundsObservations(base, length uint64) []cap.BoundsObservation {
	c, err := cap.Root().SetBounds(base, length)
	if err != nil {
		panic("root SetBounds refused an in-contract region: " + err.Error())
	}
	_, exErr := cap.Root().SetBoundsExact(base, length)
	return []cap.BoundsObservation{
		{
			Op: cap.BoundsEncode, Base: base, Length: length,
			DecBase: c.Base(), DecTop: c.Top(), DecTopFull: c.TopIsFull(),
			Exact: exErr == nil,
		},
		{
			Op: cap.BoundsCRRL, Length: length,
			CRRL: cap.RepresentableLength(length),
			CRAM: cap.RepresentableAlignmentMask(length),
		},
	}
}

// clampLength caps length so base+length <= 2^64.
func clampLength(base, length uint64) uint64 {
	if base != 0 && length > -base {
		return -base
	}
	return length
}

// boundaryValues are the structured probes for the differential sweep:
// powers of two, mantissa-precision boundaries, and the 2^64 edge, each
// with small offsets.
func boundaryValues() []uint64 {
	var vals []uint64
	for _, v := range []uint64{
		0, 1, 2, 3,
		1 << (14 - 2), 1 << (14 - 1), 1 << 14, // mantissa-width boundaries
		1 << 20, 1 << 32, 1 << 45, 1 << 50, 1 << 56,
		1 << 62, 1 << 63,
		^uint64(0), // 2^64 - 1
	} {
		for _, d := range []uint64{0, 1, 2, 7, 64, 4096} {
			vals = append(vals, v-d, v+d)
		}
	}
	return vals
}

// TestBoundsDifferentialSweep compares the optimized compressor against the
// big-integer reference over every pair of boundary values plus a large
// random sample, via the public capability API.
func TestBoundsDifferentialSweep(t *testing.T) {
	vals := boundaryValues()
	checkPair := func(base, length uint64) {
		t.Helper()
		length = clampLength(base, length)
		for _, o := range boundsObservations(base, length) {
			if detail := check.VerifyBounds(o); detail != "" {
				t.Fatalf("base=%#x length=%#x: %s", base, length, detail)
			}
		}
	}
	for _, base := range vals {
		for _, length := range vals {
			checkPair(base, length)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		base := rng.Uint64()
		length := rng.Uint64() >> uint(rng.Intn(64))
		if i%3 == 0 {
			// Bias toward regions touching the top of the address space.
			base = -(length + uint64(rng.Intn(4096)))
		}
		checkPair(base, length)
	}
	// The reset/root capability itself.
	r := cap.Root()
	o := cap.BoundsObservation{
		Op: cap.BoundsEncode, FullSpace: true,
		DecBase: r.Base(), DecTop: r.Top(), DecTopFull: r.TopIsFull(), Exact: true,
	}
	if detail := check.VerifyBounds(o); detail != "" {
		t.Fatalf("root capability: %s", detail)
	}
}

// TestBoundsObserverDispatch exercises the installed-observer path end to
// end: with a collector tapped in, capability derivations feed the checker
// and are counted.
func TestBoundsObserverDispatch(t *testing.T) {
	col := check.NewCollector(nil)
	col.EnableBounds()
	defer col.Close()
	before := col.Report().Accesses
	cap.Root().SetBounds(0x1000, 0x2000)
	cap.RepresentableLength(0x12345)
	rep := col.Report()
	if rep.Accesses == before {
		t.Fatal("bounds observer did not reach the collector")
	}
	if rep.Divergences != 0 {
		t.Fatalf("unexpected divergence: %v", rep.First[0])
	}
}

// FuzzCacheLockstep feeds byte-script programs to an optimized cache with
// the reference model in lockstep. Any divergence in outcome, stats,
// victim choice, or write-back address fails the run.
func FuzzCacheLockstep(f *testing.F) {
	f.Add([]byte{0x00, 0x40, 0x80, 0xC0, 0x01, 0x11})
	f.Add([]byte{0x10, 0x10, 0x10, 0xFF, 0x20})
	f.Fuzz(func(t *testing.T, script []byte) {
		col := check.NewCollector(nil)
		c := cache.New(fuzzCacheCfg)
		check.AttachCache(col, c)
		for i, b := range script {
			switch {
			case b == 0xFF:
				c.InvalidateAll()
			default:
				// Line-granular address over 32 lines (8 tags per set),
				// write on odd opcodes.
				addr := uint64(b>>3) * 64
				c.Access(addr, b&1 != 0)
			}
			if rep := col.Report(); rep.Divergences != 0 {
				t.Fatalf("step %d: %v", i, rep.First[0])
			}
		}
	})
}

// FuzzTLBLockstep feeds byte-script programs of lookups, inserts, and
// flushes to an optimized TLB with the reference model in lockstep.
func FuzzTLBLockstep(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x42, 0x43, 0x44, 0x45, 0x01})
	f.Add([]byte{0x47, 0x47, 0x07, 0xFF, 0x07})
	f.Fuzz(func(t *testing.T, script []byte) {
		col := check.NewCollector(nil)
		tl := tlb.New(fuzzTLBCfg)
		check.AttachTLB(col, tl)
		for i, b := range script {
			addr := uint64(b&0x0F) << 12 // 16 pages over 4 entries
			switch {
			case b == 0xFF:
				tl.InvalidateAll()
			case b&0x40 != 0:
				tl.Insert(addr)
			default:
				tl.Lookup(addr)
			}
			if rep := col.Report(); rep.Divergences != 0 {
				t.Fatalf("step %d: %v", i, rep.First[0])
			}
		}
	})
}

// FuzzBoundsLockstep compares the optimized bounds compressor against the
// big-integer reference for arbitrary regions, clamped to the encoder's
// base+length <= 2^64 contract.
func FuzzBoundsLockstep(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1)<<63, uint64(1)<<63)   // region ending exactly at 2^64
	f.Add(uint64(0), ^uint64(0))          // maximal uint64 length
	f.Add(^uint64(0)-7, uint64(8))        // top-of-space small object
	f.Add(uint64(0), uint64(1)<<(14-2))   // mantissa boundary: forces I_E
	f.Add(uint64(0), uint64(1)<<(14-2)-1) // largest exact small object
	f.Add(uint64(1)<<63, uint64(1)<<50)   // large aligned mid-space region
	f.Add(uint64(0x1234567812345678), uint64(0x8765432))
	f.Fuzz(func(t *testing.T, base, length uint64) {
		length = clampLength(base, length)
		for _, o := range boundsObservations(base, length) {
			if detail := check.VerifyBounds(o); detail != "" {
				t.Fatalf("base=%#x length=%#x: %s", base, length, detail)
			}
		}
	})
}

// TestRefmodelAgainstItself pins the reference models' own basic
// semantics, so a bug there cannot silently weaken the lockstep check.
func TestRefmodelAgainstItself(t *testing.T) {
	c := refmodel.NewCache(fuzzCacheCfg)
	if res := c.Access(0, true); res.Hit {
		t.Fatal("cold access hit")
	}
	if res := c.Access(0, false); !res.Hit {
		t.Fatal("warm access missed")
	}
	// Two more tags in set 0: the dirty line 0 is evicted with its address.
	c.Access(256, false)
	res := c.Access(512, false)
	if !res.WriteBack || res.WriteBackAddr != 0 {
		t.Fatalf("expected write-back of line 0, got %+v", res)
	}
	if got := c.InvalidateAll(); got != 0 {
		t.Fatalf("flush of clean cache wrote back %d lines", got)
	}

	tl := refmodel.NewTLB(fuzzTLBCfg)
	if tl.Lookup(1) {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(1)
	if !tl.Lookup(1) {
		t.Fatal("inserted page missed")
	}
	tl.InvalidateAll()
	if tl.Lookup(1) {
		t.Fatal("lookup hit after flush")
	}
}
