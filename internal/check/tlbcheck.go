package check

import (
	"fmt"

	"cherisim/internal/refmodel"
	"cherisim/internal/tlb"
)

// TLBChecker replays every operation of one optimized TLB on a naive
// linear-scan reference and diffs the two after each step. Lookups are
// compared on outcome and statistics (any LRU-touch bug still surfaces at
// the next insertion's full state compare); insertions and flushes are
// compared on the complete entry array, and insertions additionally run
// the optimized TLB's own structural invariant check, which is what pins
// the map-index corruption class of bug to the exact insert that causes
// it.
type TLBChecker struct {
	name string
	opt  *tlb.TLB
	ref  *refmodel.TLB
	col  *Collector
	ring opRing
	dead bool
	// Reused snapshot buffers keep the per-insert compare allocation-free.
	optBuf, refBuf []tlb.EntryState
}

// AttachTLB installs a lockstep checker behind t, which must be freshly
// built (empty, zero stats) so the reference model starts in the same
// state. A TLB that already has a shadow — the shared L2 TLB seen from
// the second hierarchy, typically — is left alone and nil is returned.
func AttachTLB(col *Collector, t *tlb.TLB) *TLBChecker {
	if t.Shadowed() {
		return nil
	}
	k := &TLBChecker{
		name: t.Config().Name,
		opt:  t,
		ref:  refmodel.NewTLB(t.Config()),
		col:  col,
	}
	t.SetShadow(k)
	return k
}

// Lookup implements tlb.Shadow.
func (k *TLBChecker) Lookup(vpn uint64, hit bool) {
	if k.dead {
		return
	}
	k.col.operation()
	k.ring.push(traceOp{kind: opTLBLookup, a: vpn})
	refHit := k.ref.Lookup(vpn)
	if refHit != hit {
		k.diverge(fmt.Sprintf("hit: optimized %v, reference %v", hit, refHit))
		return
	}
	if k.opt.Stats != k.ref.Stats {
		k.diverge(fmt.Sprintf("stats: optimized %+v, reference %+v", k.opt.Stats, k.ref.Stats))
	}
}

// Insert implements tlb.Shadow.
func (k *TLBChecker) Insert(vpn uint64) {
	if k.dead {
		return
	}
	k.col.operation()
	k.ring.push(traceOp{kind: opTLBInsert, a: vpn})
	k.ref.Insert(vpn)
	if err := k.opt.CheckInvariants(); err != nil {
		k.diverge(fmt.Sprintf("invariant: %v", err))
		return
	}
	k.compareState()
}

// InvalidateAll implements tlb.Shadow.
func (k *TLBChecker) InvalidateAll() {
	if k.dead {
		return
	}
	k.col.operation()
	k.ring.push(traceOp{kind: opTLBFlush})
	k.ref.InvalidateAll()
	k.compareState()
}

// compareState diffs statistics and the full entry array.
func (k *TLBChecker) compareState() {
	if k.opt.Stats != k.ref.Stats {
		k.diverge(fmt.Sprintf("stats: optimized %+v, reference %+v", k.opt.Stats, k.ref.Stats))
		return
	}
	k.optBuf = k.opt.AppendEntryState(k.optBuf[:0])
	k.refBuf = k.ref.AppendEntryState(k.refBuf[:0])
	for i := range k.optBuf {
		if k.optBuf[i] != k.refBuf[i] {
			k.diverge(fmt.Sprintf("entry %d: optimized %+v, reference %+v", i, k.optBuf[i], k.refBuf[i]))
			return
		}
	}
}

// Dead reports whether the checker has stopped after a divergence.
func (k *TLBChecker) Dead() bool { return k.dead }

// diverge reports the mismatch; the diverging operation is the one last
// pushed onto the trace ring.
func (k *TLBChecker) diverge(detail string) {
	k.dead = true
	k.col.record(&Divergence{
		Component: k.name,
		Step:      k.ring.n,
		Op:        k.ring.ops[(k.ring.n-1)%traceDepth].String(),
		Detail:    detail,
		Trace:     k.ring.snapshot(),
	})
}
