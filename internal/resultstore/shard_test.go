package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// keysOnStripes returns one key whose save stripe differs from ref's and
// one that shares it, by scanning candidate names.
func keysOnStripes(t *testing.T, s *Store, ref Key) (other, same Key) {
	t.Helper()
	refMu := s.stripe(ref.Hash())
	var haveOther, haveSame bool
	for i := 0; i < 4096 && !(haveOther && haveSame); i++ {
		k := testKey(fmt.Sprintf("probe-%d", i))
		if s.stripe(k.Hash()) == refMu {
			if !haveSame {
				same, haveSame = k, true
			}
		} else if !haveOther {
			other, haveOther = k, true
		}
	}
	if !haveOther || !haveSame {
		t.Fatal("could not find keys on distinct/shared stripes")
	}
	return other, same
}

// TestSaveDistinctKeysParallel is the regression test for the global save
// lock: a save must not wait on a writer of an unrelated key. The test
// holds the stripe lock of one key and proves a distinct-stripe save
// completes while it is held (under the old global mutex this deadlocks),
// then proves a same-stripe save does wait (same-key serialisation kept).
func TestSaveDistinctKeysParallel(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blocked := testKey("blocked")
	other, same := keysOnStripes(t, s, blocked)

	mu := s.stripe(blocked.Hash())
	mu.Lock()
	done := make(chan error, 1)
	go func() {
		e := testEntry("x")
		e.Key = other
		done <- s.Save(e)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("distinct-key save failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("distinct-key save blocked behind an unrelated writer")
	}

	sameDone := make(chan error, 1)
	go func() {
		e := testEntry("y")
		e.Key = same
		sameDone <- s.Save(e)
	}()
	select {
	case <-sameDone:
		t.Fatal("same-stripe save did not wait for the stripe lock")
	case <-time.After(50 * time.Millisecond):
	}
	mu.Unlock()
	if err := <-sameDone; err != nil {
		t.Fatalf("same-stripe save failed after unlock: %v", err)
	}
}

// TestConcurrentDistinctSaves hammers parallel saves of distinct keys and
// verifies every one landed intact (run under -race in CI).
func TestConcurrentDistinctSaves(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := testEntry(fmt.Sprintf("con-%d", i))
			if err := s.Save(e); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if _, ok := s.Load(testKey(fmt.Sprintf("con-%d", i))); !ok {
			t.Errorf("entry con-%d lost", i)
		}
	}
	if st := s.Stats(); st.Writes != n || st.WriteErrors != 0 {
		t.Errorf("stats = %s", st)
	}
}

// BenchmarkSaveParallelDistinctKeys measures distinct-key save throughput
// under contention — the workload the striped lock parallelises (compare
// against BenchmarkSaveSerial; under the old global mutex the parallel
// case degenerates to the serial one).
func BenchmarkSaveParallelDistinctKeys(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var seq sync.Mutex
	next := 0
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			seq.Lock()
			i := next
			next++
			seq.Unlock()
			e := testEntry(fmt.Sprintf("bench-%d", i))
			if err := s.Save(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSaveSerial is the single-writer baseline for the parallel case.
func BenchmarkSaveSerial(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e := testEntry(fmt.Sprintf("bench-%d", i))
		if err := s.Save(e); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLoadReadErrorCounted pins the miss/error distinction: a read that
// fails for a reason other than absence (here: the entry path is a
// directory, failing even when the tests run as root) must count on
// Stats.Errors, not just look like a cold miss.
func TestLoadReadErrorCounted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("unreadable")
	if err := os.MkdirAll(s.Path(k), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k); ok {
		t.Fatal("load of a directory succeeded")
	}
	st := s.Stats()
	if st.Errors != 1 {
		t.Errorf("read error not counted: stats = %s", st)
	}
	if st.Misses != 1 {
		t.Errorf("read error must still be a miss: stats = %s", st)
	}

	// A plain absent entry stays a pure miss.
	if _, ok := s.Load(testKey("absent")); ok {
		t.Fatal("absent entry loaded")
	}
	if st := s.Stats(); st.Errors != 1 || st.Misses != 2 {
		t.Errorf("absence misclassified: stats = %s", st)
	}
}

// TestSaveErrorCounted pins write-failure accounting: an unwritable shard
// (here: a regular file squatting on the shard directory, which fails even
// as root) must surface on Stats.WriteErrors and return the error.
func TestSaveErrorCounted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("unwritable")
	shard := filepath.Dir(s.Path(e.Key))
	if err := os.WriteFile(shard, []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(e); err == nil {
		t.Fatal("save into a blocked shard succeeded")
	}
	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 0 {
		t.Errorf("write error not counted: stats = %s", st)
	}
}
