// Package resultstore is the engine's persistent, content-addressed cache
// of measurement results. The paper publishes its measurement data so
// results can be re-checked across runs and versions; this store is the
// simulator's equivalent: every supervised run (and every soc co-run, as a
// unit) is keyed by a hash of what fully determines it — workload, ABI,
// scale, the effective machine configuration, the supervisor's chaos
// schedule, and a model-version fingerprint — and persisted so a warm
// campaign serves results from disk instead of re-simulating.
//
// Robustness rules:
//
//   - Writes are atomic (write-temp-then-rename), so a crashed or killed
//     campaign never leaves a half-written entry under a valid name.
//   - Every entry carries a checksum over its payload; loads verify it and
//     re-verify the key, so a truncated, bit-flipped or misfiled entry is
//     treated as a miss (re-simulated and rewritten), never a wrong result.
//   - The model fingerprint folds core.ModelVersion and the cost-model
//     constants into every key: entries written by an older simulator are
//     simply never looked up again.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"cherisim/internal/alloc"
	"cherisim/internal/branch"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/pmu"
	"cherisim/internal/soc"
	"cherisim/internal/workloads"
)

// format is the on-disk envelope identifier; bump on layout changes.
const format = "cherisim-resultstore/1"

// Entry kinds.
const (
	// KindRun is one supervised (workload, ABI) session run.
	KindRun = "run"
	// KindKernel is one custom-machine kernel run (experiments that build
	// machines outside the workload registry: sweeps, compartments).
	KindKernel = "kernel"
	// KindCoRun is one shared-LLC soc co-run, stored as a unit.
	KindCoRun = "corun"
	// KindScale is one topology co-run (mesh/ring sliced-LLC fabric),
	// stored as a unit: every core's counter file plus the fabric's
	// slice/link accounting. The topology fingerprint is folded into
	// Key.Config so a fabric-parameter change re-runs instead of
	// replaying a different machine's results.
	KindScale = "scale"
	// KindProfile is one profiled (workload, ABI) run: the counter file
	// plus the full per-function attribution profile. Profiled runs key
	// separately from KindRun because they execute live with attribution
	// enabled; the attribution layout version is folded into Key.Config so
	// a schema change re-profiles instead of mis-decoding.
	KindProfile = "profile"
)

// Key identifies one stored result. Equal keys address equal content: two
// runs with the same key are bit-identical by the engine's determinism
// guarantee, so the store never needs invalidation — only keys that stop
// being asked for.
type Key struct {
	// Kind is one of KindRun, KindKernel, KindCoRun.
	Kind string `json:"kind"`
	// Name is the workload name (runs) or the caller-chosen id naming the
	// kernel or co-run including its parameters.
	Name string `json:"name"`
	// ABI is the ABI name for runs; empty for kernels and co-runs (their
	// Config fingerprint covers it).
	ABI string `json:"abi,omitempty"`
	// Scale is the session's workload scale factor.
	Scale int `json:"scale"`
	// Config fingerprints the effective machine configuration(s) — see
	// ConfigFingerprint.
	Config string `json:"config"`
	// Supervisor fingerprints the session supervision that shapes the
	// result (chaos seed/rate/kinds, deadline, retries); empty for an
	// unsupervised run.
	Supervisor string `json:"supervisor,omitempty"`
	// Model is the simulator fingerprint — see ModelFingerprint.
	Model string `json:"model"`
}

// canonical returns the key's canonical encoding, the hash preimage.
func (k Key) canonical() string {
	return fmt.Sprintf("%s|%q|%q|scale=%d|cfg=%s|sup=%s|model=%s",
		k.Kind, k.Name, k.ABI, k.Scale, k.Config, k.Supervisor, k.Model)
}

// Hash returns the key's content address (hex SHA-256 of the canonical
// encoding).
func (k Key) Hash() string {
	sum := sha256.Sum256([]byte(k.canonical()))
	return hex.EncodeToString(sum[:])
}

// StoredError is a serialisable snapshot of a run error, rich enough that
// reconstruction is render-identical: the error string, the structured
// class, and the fields consumers inspect through errors.As.
type StoredError struct {
	// Class is "fault", "deadline", "panic" or "error".
	Class string `json:"class"`
	// Msg is the original Error() string (used verbatim for plain errors;
	// structured classes re-derive it from their fields).
	Msg string `json:"msg"`

	// Fault fields (Class == "fault").
	FaultKind int    `json:"fault_kind,omitempty"`
	PC        uint64 `json:"pc,omitempty"`
	Addr      uint64 `json:"addr,omitempty"`
	Op        string `json:"op,omitempty"`
	Cause     string `json:"cause,omitempty"`
	Transient bool   `json:"transient,omitempty"`

	// Deadline fields (Class == "deadline").
	Uops   uint64 `json:"uops,omitempty"`
	Budget uint64 `json:"budget,omitempty"`

	// Panic fields (Class == "panic"); Uops is shared with deadline.
	Workload string `json:"workload,omitempty"`
	Value    string `json:"value,omitempty"`
}

// EncodeError snapshots err for storage; nil in, nil out.
func EncodeError(err error) *StoredError {
	if err == nil {
		return nil
	}
	se := &StoredError{Class: "error", Msg: err.Error()}
	var f *core.Fault
	var de *core.DeadlineError
	var pe *core.PanicError
	switch {
	case errors.As(err, &f):
		se.Class = "fault"
		se.FaultKind = int(f.Kind)
		se.PC, se.Addr, se.Op, se.Transient = f.PC, f.Addr, f.Op, f.Transient
		if f.Cause != nil {
			se.Cause = f.Cause.Error()
		}
	case errors.As(err, &de):
		se.Class = "deadline"
		se.Uops, se.Budget = de.Uops, de.Budget
	case errors.As(err, &pe):
		se.Class = "panic"
		se.Workload, se.Uops = pe.Workload, pe.Uops
		se.Value = fmt.Sprint(pe.Value)
	}
	return se
}

// Reconstruct rebuilds the run error. Structured classes come back as the
// concrete core types (so errors.As and the renderers behave identically);
// the error string is byte-identical to the original.
func (se *StoredError) Reconstruct() error {
	if se == nil {
		return nil
	}
	switch se.Class {
	case "fault":
		return &core.Fault{
			Kind: core.FaultKind(se.FaultKind), PC: se.PC, Addr: se.Addr,
			Op: se.Op, Transient: se.Transient, Cause: errors.New(se.Cause),
		}
	case "deadline":
		return &core.DeadlineError{Uops: se.Uops, Budget: se.Budget}
	case "panic":
		return &core.PanicError{Workload: se.Workload, Value: se.Value, Uops: se.Uops}
	default:
		return errors.New(se.Msg)
	}
}

// CoreResult is one machine's stored outcome — the retained state every
// renderer consumes (counters, heap statistics, µop count, revocation
// sweeps, and the terminating error, if any). Derived metrics are
// recomputed on load, so an entry can never disagree with the formulas of
// the simulator that serves it.
type CoreResult struct {
	// Counters is the full PMU counter file (len == pmu.NumEvents; the
	// model fingerprint pins the event set, and loads re-validate).
	Counters []uint64 `json:"counters,omitempty"`
	// Machine records whether a machine produced the fields above (a
	// panicking run can finish with no machine at all; its zero counters
	// must not be mistaken for a measured all-zero file).
	Machine     bool                   `json:"machine"`
	Heap        alloc.Stats            `json:"heap"`
	Uops        uint64                 `json:"uops"`
	Error       *StoredError           `json:"error,omitempty"`
	Revocations []core.RevocationStats `json:"revocations,omitempty"`
}

// SetCounters stores a counter file.
func (r *CoreResult) SetCounters(c *pmu.Counters) {
	r.Counters = append([]uint64(nil), c[:]...)
	r.Machine = true
}

// CountersFile rebuilds the counter file; false when absent or mis-sized.
func (r *CoreResult) CountersFile() (pmu.Counters, bool) {
	var c pmu.Counters
	if !r.Machine || len(r.Counters) != int(pmu.NumEvents) {
		return c, false
	}
	copy(c[:], r.Counters)
	return c, true
}

// Entry is one stored result: a run or kernel uses the embedded
// CoreResult plus the supervision fields; a co-run stores one CoreResult
// per core, as a unit.
type Entry struct {
	Key Key `json:"key"`
	CoreResult
	// Attempts counts supervised executions (see experiments.RunData).
	Attempts int `json:"attempts,omitempty"`
	// Injected lists the final attempt's fault injections.
	Injected []faultinject.Event `json:"injected,omitempty"`
	// Cores holds the per-core results of a co-run unit.
	Cores []CoreResult `json:"cores,omitempty"`
	// Fabric holds the topology co-run accounting of a KindScale unit:
	// the NoC shape plus per-slice, per-link and per-core fabric counters.
	// It round-trips bit-exactly, so a warm scale render (including its
	// reconciliation line) is byte-identical to the cold one.
	Fabric *soc.FabricStats `json:"fabric,omitempty"`
	// Witness is the corruption witness of an attack-corpus run (see
	// internal/attacks); warm security verdicts must reproduce the cold
	// run's canary mismatch detail exactly.
	Witness *workloads.CanaryReport `json:"witness,omitempty"`
	// Profile is the per-function attribution of a KindProfile entry.
	// Attribution values round-trip bit-exactly: float64s marshal at
	// shortest-unique precision and parse back to the same bits, so a warm
	// hotspot report (and its conservation reconcile) is byte-identical to
	// the cold one.
	Profile *core.AttributionProfile `json:"profile,omitempty"`
}

// valid performs the structural checks a load must pass beyond the
// checksum: the entry answers for the requested key and its counter files
// match the current PMU event set.
func (e *Entry) valid(want Key) bool {
	if e.Key != want {
		return false
	}
	ok := func(r *CoreResult) bool {
		return !r.Machine || len(r.Counters) == int(pmu.NumEvents)
	}
	if !ok(&e.CoreResult) {
		return false
	}
	for i := range e.Cores {
		if !ok(&e.Cores[i]) {
			return false
		}
	}
	return true
}

// envelope is the on-disk wrapper: a format tag and a checksum over the
// exact payload bytes.
type envelope struct {
	Format string          `json:"format"`
	Sum    string          `json:"sum"`
	Body   json.RawMessage `json:"body"`
}

// Stats counts store traffic since Open.
type Stats struct {
	Hits    uint64 // entries served from disk
	Misses  uint64 // lookups that fell through to simulation
	Writes  uint64 // entries persisted
	Corrupt uint64 // entries rejected by checksum/structure validation
	// MemHits counts entries served from the in-memory admission cache
	// without touching disk (always 0 when the cache is not enabled).
	MemHits uint64
	// Errors counts reads that failed for a reason other than absence
	// (permissions, IO): still a miss for the caller, but a signal that the
	// store is unhealthy rather than merely cold.
	Errors uint64
	// WriteErrors counts failed Save calls: persistence is best-effort, but
	// a long-running service must be able to see that it is permanently
	// cold-starting because every write fails.
	WriteErrors uint64
}

// saveStripes is the number of independent Save locks. Saves of distinct
// keys proceed in parallel (the two-level hh/ shard layout and unique temp
// names make them file-disjoint); the stripe only collapses redundant
// concurrent writes of the same key onto one file at a time.
const saveStripes = 64

// Store is a disk-backed content-addressed result cache rooted at one
// directory. The zero/nil Store is inert: every load misses (uncounted)
// and every save is a no-op, so callers thread an optional store without
// nil checks. Store is safe for concurrent use — distinct keys map to
// distinct files, and same-key writers race only on atomic renames of
// identical content.
type Store struct {
	dir string

	hits, misses, writes, corrupt atomic.Uint64
	memHits, errs, writeErrs      atomic.Uint64
	locks                         [saveStripes]sync.Mutex // per-key-stripe write locks
	cache                         *admissionCache         // nil until EnableAdmissionCache
}

// stripe returns the Save lock shard for a key hash. The first two hex
// digits (the directory shard) spread uniformly over the stripes, so keys
// in different shard directories almost never contend.
func (s *Store) stripe(hash string) *sync.Mutex {
	return &s.locks[(hash[0]<<4|hash[1])%saveStripes]
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory ("" for the nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Path returns the file an entry for k lives at. Entries shard by the
// first address byte to keep directories shallow at campaign scale.
func (s *Store) Path(k Key) string {
	h := k.Hash()
	return filepath.Join(s.dir, h[:2], h+".json")
}

// Load returns the stored entry for k, or (nil, false) on any failure —
// absence, truncation, checksum mismatch, malformed JSON, format or key
// mismatch. Corruption is never an error: the caller re-simulates and the
// rewrite replaces the bad file. Read failures other than absence
// (permissions, IO) additionally count on Stats.Errors — a mis-permissioned
// store must not look like a merely cold one. With the admission cache
// enabled, hot keys are served from memory without touching the file.
func (s *Store) Load(k Key) (*Entry, bool) {
	if s == nil {
		return nil, false
	}
	if raw, ok := s.cache.get(k); ok {
		if e, ok := decode(raw, k); ok {
			s.memHits.Add(1)
			return e, true
		}
		s.cache.drop(k) // unreachable unless the cache was fed bad bytes
	}
	raw, err := os.ReadFile(s.Path(k))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.errs.Add(1)
		}
		s.misses.Add(1)
		return nil, false
	}
	e, ok := decode(raw, k)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.cache.put(k, raw)
	s.hits.Add(1)
	return e, true
}

// decode parses and validates one entry file against the requested key.
func decode(raw []byte, want Key) (*Entry, bool) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Format != format {
		return nil, false
	}
	sum := sha256.Sum256(env.Body)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(env.Body, &e); err != nil {
		return nil, false
	}
	if !e.valid(want) {
		return nil, false
	}
	return &e, true
}

// Save persists e under its key, atomically: the entry is written to a
// temp file in the same directory and renamed into place, so a reader (or
// a crash) never observes a partial entry. Writes hold only a per-key
// stripe lock, so saves of distinct keys proceed in parallel; every failure
// counts on Stats.WriteErrors before it is returned.
func (s *Store) Save(e *Entry) error {
	if s == nil {
		return nil
	}
	err := s.save(e)
	if err != nil {
		s.writeErrs.Add(1)
	}
	return err
}

func (s *Store) save(e *Entry) error {
	body, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", e.Key.Name, err)
	}
	sum := sha256.Sum256(body)
	data, err := json.Marshal(envelope{Format: format, Sum: hex.EncodeToString(sum[:]), Body: body})
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", e.Key.Name, err)
	}
	hash := e.Key.Hash()
	path := filepath.Join(s.dir, hash[:2], hash+".json")

	mu := s.stripe(hash)
	mu.Lock()
	defer mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", e.Key.Name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", e.Key.Name, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: commit %s: %w", e.Key.Name, err)
	}
	s.cache.put(e.Key, data)
	s.writes.Add(1)
	return nil
}

// Stats returns the traffic counters (zero for the nil store).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Corrupt:     s.corrupt.Load(),
		MemHits:     s.memHits.Load(),
		Errors:      s.errs.Load(),
		WriteErrors: s.writeErrs.Load(),
	}
}

// String renders the traffic counters in the stable form the CLI prints
// and CI parses; the service-era counters (admission cache, read/write
// errors) extend the line without disturbing the original prefix.
func (st Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d writes, %d corrupt, %d mem hits, %d read errors, %d write errors",
		st.Hits, st.Misses, st.Writes, st.Corrupt, st.MemHits, st.Errors, st.WriteErrors)
}

var (
	modelOnce sync.Once
	modelFP   string
)

// ModelFingerprint identifies the simulator semantics an entry was
// produced under: core.ModelVersion plus the cost-model constants and the
// PMU event-set size, hashed. Any change to these invalidates every store
// key and flags every golden baseline as from-another-model.
func ModelFingerprint() string {
	modelOnce.Do(func() {
		h := sha256.New()
		fmt.Fprintf(h, "model=%s|clock=%g|pmu=%d|mispredict=%d|pccstall=%d|capjump=%g|socquantum=%d|fiquantum=%d",
			core.ModelVersion, core.ClockHz, pmu.NumEvents,
			branch.MispredictPenalty, branch.PCCStallPenalty, branch.CapJumpCost,
			soc.QuantumUops, faultinject.DefaultQuantum)
		modelFP = core.ModelVersion + "+" + hex.EncodeToString(h.Sum(nil))[:16]
	})
	return modelFP
}

// ConfigFingerprint canonically hashes an effective machine configuration
// (a plain value struct, so the Go literal syntax is a stable encoding).
func ConfigFingerprint(cfg core.Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", cfg)))
	return hex.EncodeToString(sum[:])[:16]
}
