package resultstore

import (
	"container/list"
	"sync"
)

// DefaultCacheBytes is the admission-cache budget EnableAdmissionCache
// applies when given a non-positive size: enough for a few full campaign
// grids of encoded entries.
const DefaultCacheBytes = 64 << 20

// admissionCache is a bounded LRU of encoded entry files keyed by Key: the
// in-memory tier in front of the disk store, so a hot cell is served
// without re-reading (or re-statting) its file. It holds the validated
// envelope bytes, not decoded entries — every hit re-decodes, so callers
// can never alias or mutate a shared *Entry, and a served result passes the
// same checksum/key validation a disk read does. All methods are nil-safe:
// a store without the cache enabled pays one pointer test.
type admissionCache struct {
	mu    sync.Mutex
	max   int64 // byte budget over stored values
	size  int64
	order *list.List // front = most recently used
	items map[Key]*list.Element
}

// cacheItem is one resident entry: the key (for eviction bookkeeping) and
// the encoded envelope bytes as written to disk.
type cacheItem struct {
	key  Key
	data []byte
}

// EnableAdmissionCache puts a bounded in-memory LRU in front of the store's
// disk reads: loads are served from memory when resident, and every
// successful save or disk load admits its encoded bytes. maxBytes <= 0
// selects DefaultCacheBytes. Call before sharing the store; enabling is not
// synchronised with concurrent loads.
func (s *Store) EnableAdmissionCache(maxBytes int64) {
	if s == nil {
		return
	}
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	s.cache = &admissionCache{
		max:   maxBytes,
		order: list.New(),
		items: make(map[Key]*list.Element),
	}
}

// get returns the resident bytes for k, refreshing its recency.
func (c *admissionCache) get(k Key) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).data, true
}

// put admits (or refreshes) k's encoded bytes, evicting least-recently-used
// entries until the budget holds. Values larger than the whole budget are
// not admitted.
func (c *admissionCache) put(k Key, data []byte) {
	if c == nil || int64(len(data)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		it := el.Value.(*cacheItem)
		c.size += int64(len(data)) - int64(len(it.data))
		it.data = data
		c.order.MoveToFront(el)
	} else {
		c.items[k] = c.order.PushFront(&cacheItem{key: k, data: data})
		c.size += int64(len(data))
	}
	for c.size > c.max {
		el := c.order.Back()
		it := el.Value.(*cacheItem)
		c.order.Remove(el)
		delete(c.items, it.key)
		c.size -= int64(len(it.data))
	}
}

// drop evicts k (used when resident bytes fail validation, which only a
// corrupted feed can cause).
func (c *admissionCache) drop(k Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		it := el.Value.(*cacheItem)
		c.order.Remove(el)
		delete(c.items, k)
		c.size -= int64(len(it.data))
	}
}
