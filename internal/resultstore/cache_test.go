package resultstore

import (
	"fmt"
	"os"
	"testing"
)

// TestAdmissionCacheServesWithoutDisk is the tentpole property: once a key
// is resident, loads never touch its file again. The test deletes the file
// outright — a served load therefore proves zero disk reads.
func TestAdmissionCacheServesWithoutDisk(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAdmissionCache(0)
	want := testEntry("hot")
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.Path(want.Key)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(want.Key)
	if !ok {
		t.Fatal("hot entry not served from the admission cache")
	}
	if c, _ := got.CountersFile(); got.Uops != want.Uops || c != [len(c)]uint64(want.Counters) {
		t.Error("cache-served entry differs from the saved one")
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats = %s", st)
	}

	// Each hit decodes fresh bytes: mutating a served entry must not leak
	// into later loads.
	got.Uops = 1
	again, ok := s.Load(want.Key)
	if !ok || again.Uops != want.Uops {
		t.Error("cache hit aliased a previously served entry")
	}
}

// TestAdmissionCacheAdmitsOnRead covers the disk-read admission path: an
// entry written by another process (simulated by a fresh Store over the
// same dir) is admitted on its first read and served from memory after.
func TestAdmissionCacheAdmitsOnRead(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry("warm")
	if err := writer.Save(want); err != nil {
		t.Fatal(err)
	}

	reader, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader.EnableAdmissionCache(0)
	if _, ok := reader.Load(want.Key); !ok {
		t.Fatal("disk entry did not load")
	}
	if err := os.Remove(reader.Path(want.Key)); err != nil {
		t.Fatal(err)
	}
	if _, ok := reader.Load(want.Key); !ok {
		t.Fatal("entry not admitted on read")
	}
	st := reader.Stats()
	if st.Hits != 1 || st.MemHits != 1 {
		t.Errorf("stats = %s", st)
	}
}

// TestAdmissionCacheEviction bounds the cache: with a budget that holds
// roughly one encoded entry, older keys are evicted least-recently-used.
func TestAdmissionCacheEviction(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := testEntry("evict-0")
	if err := s.Save(first); err != nil {
		t.Fatal(err)
	}
	size := int64(0)
	if fi, err := os.Stat(s.Path(first.Key)); err == nil {
		size = fi.Size()
	} else {
		t.Fatal(err)
	}

	s2, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s2.EnableAdmissionCache(size + size/2) // room for one entry, not two
	a, b := testEntry("evict-a"), testEntry("evict-b")
	if err := s2.Save(a); err != nil {
		t.Fatal(err)
	}
	if err := s2.Save(b); err != nil {
		t.Fatal(err)
	}
	// a was evicted by b's admission: deleting both files, only b serves.
	if err := os.Remove(s2.Path(a.Key)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s2.Path(b.Key)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Load(a.Key); ok {
		t.Error("evicted entry still resident")
	}
	if _, ok := s2.Load(b.Key); !ok {
		t.Error("most-recent entry evicted")
	}

	// Oversized values are never admitted (they would evict everything).
	s3, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s3.EnableAdmissionCache(16)
	if err := s3.Save(testEntry("huge")); err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Writes != 1 {
		t.Errorf("stats = %s", st)
	}
	if _, ok := s3.cache.get(testKey("huge")); ok {
		t.Error("oversized value admitted")
	}
}

// TestAdmissionCacheConcurrent hammers mixed save/load traffic over a
// small cache under -race.
func TestAdmissionCacheConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAdmissionCache(1 << 16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("cc-%d", (g*50+i)%20)
				e := testEntry(name)
				if err := s.Save(e); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Load(e.Key); !ok {
					t.Errorf("just-saved %s missed", name)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
