package resultstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

func testKey(name string) Key {
	return Key{
		Kind:   KindRun,
		Name:   name,
		ABI:    "purecap",
		Scale:  1,
		Config: ConfigFingerprint(core.DefaultConfig(abi.Purecap)),
		Model:  ModelFingerprint(),
	}
}

func testEntry(name string) *Entry {
	var c pmu.Counters
	for i := range c {
		c[i] = uint64(1000 + i*7)
	}
	e := &Entry{Key: testKey(name), Attempts: 1}
	e.SetCounters(&c)
	e.Heap = alloc.Stats{BrkBytes: 4096, Allocs: 12}
	e.Uops = 123456
	return e
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry("roundtrip")
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(want.Key)
	if !ok {
		t.Fatal("saved entry did not load")
	}
	c, ok := got.CountersFile()
	if !ok {
		t.Fatal("counters lost")
	}
	wc, _ := want.CountersFile()
	if c != wc {
		t.Errorf("counters differ: got %v want %v", c, wc)
	}
	if got.Heap != want.Heap || got.Uops != want.Uops || got.Attempts != want.Attempts {
		t.Errorf("fields differ: got %+v want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %s", st)
	}
}

// TestErrorRoundTrip pins the property warm chaos campaigns depend on: a
// reconstructed error must satisfy the same errors.As checks and render
// the same Error() string as the original.
func TestErrorRoundTrip(t *testing.T) {
	fault := &core.Fault{
		Kind: core.KindTag, PC: 0x4000, Addr: 0x1234, Op: "load",
		Transient: true, Cause: errors.New("tag cleared by injector"),
	}
	cases := []error{
		fault,
		&core.DeadlineError{Uops: 5_000_000, Budget: 4_000_000},
		&core.PanicError{Workload: "quickjs", Value: "boom", Uops: 77},
		errors.New("plain failure"),
	}
	for _, orig := range cases {
		se := EncodeError(orig)
		back := se.Reconstruct()
		if back.Error() != orig.Error() {
			t.Errorf("Error() drifted: %q -> %q", orig.Error(), back.Error())
		}
		var f1, f2 *core.Fault
		if errors.As(orig, &f1) != errors.As(back, &f2) {
			t.Errorf("errors.As(*core.Fault) drifted for %q", orig)
		} else if f1 != nil && (f1.Kind != f2.Kind || f1.PC != f2.PC || f1.Transient != f2.Transient) {
			t.Errorf("fault fields drifted: %+v -> %+v", f1, f2)
		}
		var d1, d2 *core.DeadlineError
		if errors.As(orig, &d1) != errors.As(back, &d2) {
			t.Errorf("errors.As(*core.DeadlineError) drifted for %q", orig)
		}
		var p1, p2 *core.PanicError
		if errors.As(orig, &p1) != errors.As(back, &p2) {
			t.Errorf("errors.As(*core.PanicError) drifted for %q", orig)
		}
	}
	if EncodeError(nil) != nil || (*StoredError)(nil).Reconstruct() != nil {
		t.Error("nil error did not round-trip to nil")
	}
}

// TestWitnessRoundTrip pins the security gate's warm-cache property: a
// stored attack run's canary witness — including the mismatch detail of a
// silently corrupted survival — loads back exactly, and entries without
// one stay nil.
func TestWitnessRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry("attack:uaf")
	want.Witness = &workloads.CanaryReport{
		Planted: true, Intact: false,
		Base: 0x40_0000_1000, Words: 32, Seed: 0xc0ffee03,
		WantSum: 111, GotSum: 222, BadWords: 2, FirstBad: 16,
	}
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(want.Key)
	if !ok {
		t.Fatal("saved entry did not load")
	}
	if got.Witness == nil || *got.Witness != *want.Witness {
		t.Fatalf("witness drifted: got %+v want %+v", got.Witness, want.Witness)
	}

	plain := testEntry("no-witness")
	if err := s.Save(plain); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Load(plain.Key); !ok || got.Witness != nil {
		t.Fatalf("witness appeared from nowhere: %+v", got.Witness)
	}
}

// TestMachineFlag pins the nil-machine distinction: zero counters with
// Machine=false must not load as a measured all-zero counter file.
func TestMachineFlag(t *testing.T) {
	s, _ := Open(t.TempDir())
	e := &Entry{Key: testKey("no-machine")}
	e.Error = EncodeError(errors.New("died before machine construction"))
	if err := s.Save(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(e.Key)
	if !ok {
		t.Fatal("entry did not load")
	}
	if _, ok := got.CountersFile(); ok {
		t.Error("machine-less entry produced a counter file")
	}
}

func TestCoRunUnit(t *testing.T) {
	s, _ := Open(t.TempDir())
	e := &Entry{Key: Key{Kind: KindCoRun, Name: "co/x2", Scale: 1, Config: "a+b", Model: ModelFingerprint()}}
	e.Cores = make([]CoreResult, 2)
	var c pmu.Counters
	c[0] = 42
	e.Cores[0].SetCounters(&c)
	e.Cores[1].Error = EncodeError(&core.DeadlineError{Uops: 10, Budget: 5})
	if err := s.Save(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(e.Key)
	if !ok || len(got.Cores) != 2 {
		t.Fatalf("co-run unit lost: ok=%v cores=%d", ok, len(got.Cores))
	}
	if cf, ok := got.Cores[0].CountersFile(); !ok || cf[0] != 42 {
		t.Error("core 0 counters lost")
	}
	var de *core.DeadlineError
	if !errors.As(got.Cores[1].Error.Reconstruct(), &de) {
		t.Error("core 1 error lost")
	}
}

// corrupt loads the entry file for k, applies f, and writes it back.
func corruptFile(t *testing.T, s *Store, k Key, f func([]byte) []byte) {
	t.Helper()
	path := s.Path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionIsAMiss covers the tentpole's robustness rule: a
// truncated, bit-flipped or malformed entry is a miss (counted as corrupt),
// never an error or a wrong result — and a re-save replaces it.
func TestCorruptionIsAMiss(t *testing.T) {
	cases := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flip", func(b []byte) []byte {
			// Flip a bit inside the body payload (past the envelope header).
			i := len(b) / 2
			b[i] ^= 0x40
			return b
		}},
		{"empty", func(b []byte) []byte { return nil }},
		{"not-json", func(b []byte) []byte { return []byte("not json at all") }},
		{"wrong-format", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), format, "other-store/9", 1))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			e := testEntry("victim-" + tc.name)
			if err := s.Save(e); err != nil {
				t.Fatal(err)
			}
			corruptFile(t, s, e.Key, tc.f)
			if _, ok := s.Load(e.Key); ok {
				t.Fatal("corrupted entry loaded")
			}
			st := s.Stats()
			if st.Corrupt != 1 || st.Misses != 1 {
				t.Errorf("stats after corruption = %s", st)
			}
			// The resume path: re-simulate (here: re-save) and reload.
			if err := s.Save(e); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Load(e.Key); !ok {
				t.Error("rewritten entry did not load")
			}
		})
	}
}

// TestKeyMismatchIsAMiss: an entry misfiled under another key's address
// must not answer for it.
func TestKeyMismatchIsAMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	e := testEntry("original")
	if err := s.Save(e); err != nil {
		t.Fatal(err)
	}
	other := testKey("other")
	raw, err := os.ReadFile(s.Path(e.Key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.Path(other)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path(other), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(other); ok {
		t.Fatal("misfiled entry answered for the wrong key")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %s", st)
	}
}

// TestCounterLengthMismatchIsAMiss: an entry whose counter file does not
// match the current PMU event set (an older simulator's layout) must miss.
func TestCounterLengthMismatchIsAMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	e := testEntry("short-counters")
	e.Counters = e.Counters[:len(e.Counters)-1]
	if err := s.Save(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(e.Key); ok {
		t.Fatal("mis-sized counter file loaded")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Load(testKey("x")); ok {
		t.Error("nil store hit")
	}
	if err := s.Save(testEntry("x")); err != nil {
		t.Error("nil store save errored:", err)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil store stats = %s", st)
	}
	if s.Dir() != "" {
		t.Error("nil store has a dir")
	}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey("w")
	seen := map[string]Key{base.Hash(): base}
	perturb := []Key{}
	k := base
	k.Name = "w2"
	perturb = append(perturb, k)
	k = base
	k.ABI = "hybrid"
	perturb = append(perturb, k)
	k = base
	k.Scale = 2
	perturb = append(perturb, k)
	k = base
	k.Config = ConfigFingerprint(core.DefaultConfig(abi.Hybrid))
	perturb = append(perturb, k)
	k = base
	k.Supervisor = "chaos=1:5:0:tag-clear|deadline=0|retries=2"
	perturb = append(perturb, k)
	k = base
	k.Kind = KindKernel
	perturb = append(perturb, k)
	for _, p := range perturb {
		h := p.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("key collision: %+v and %+v", prev, p)
		}
		seen[h] = p
	}
}

func TestModelFingerprintStable(t *testing.T) {
	a, b := ModelFingerprint(), ModelFingerprint()
	if a != b || a == "" {
		t.Errorf("fingerprint unstable: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, core.ModelVersion+"+") {
		t.Errorf("fingerprint %q does not carry the model version", a)
	}
}

func TestStoredErrorTransientSurvives(t *testing.T) {
	f := &core.Fault{Kind: core.KindTag, Transient: true, Cause: errors.New("x")}
	if !core.IsTransient(f) {
		t.Skip("fault not transient under current rules")
	}
	back := EncodeError(f).Reconstruct()
	if !core.IsTransient(back) {
		t.Error("transience lost through the store")
	}
}

// TestInjectedEventsSurvive: the chaos schedule recorded on an entry comes
// back intact, so resilience matrices render identically warm.
func TestInjectedEventsSurvive(t *testing.T) {
	s, _ := Open(t.TempDir())
	e := testEntry("chaos")
	e.Key.Supervisor = "chaos=7:20:0:tag-clear|deadline=0|retries=2"
	e.Attempts = 3
	e.Injected = []faultinject.Event{{Uop: 4096, Addr: 0x1000}}
	if err := s.Save(e); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(e.Key)
	if !ok {
		t.Fatal("chaos entry did not load")
	}
	if got.Attempts != 3 || len(got.Injected) != 1 || got.Injected[0].Uop != 4096 {
		t.Errorf("supervision fields drifted: %+v", got)
	}
}

// TestProfileRoundTrip verifies that a KindProfile entry's attribution
// profile survives the store bit-exactly — float64 category values
// included, since the warm hotspot report and its conservation reconcile
// must be byte-identical to the cold run's.
func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}
	m, err := workloads.Execute(w, abi.Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	prof := m.AttributionProfile()
	key := testKey("sqlite-profile")
	key.Kind = KindProfile
	key.Config += "+" + core.AttrLayoutVersion
	e := &Entry{Key: key, Profile: &prof}
	e.SetCounters(&m.C)
	if err := s.Save(e); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Load(key)
	if !ok {
		t.Fatal("profile entry missed")
	}
	if got.Profile == nil {
		t.Fatal("profile dropped")
	}
	if got.Profile.Totals != prof.Totals {
		t.Errorf("totals not bit-exact:\nstored %v\nloaded %v", prof.Totals, got.Profile.Totals)
	}
	if got.Profile.TotalEvents != prof.TotalEvents {
		t.Errorf("event totals changed: %v vs %v", prof.TotalEvents, got.Profile.TotalEvents)
	}
	if len(got.Profile.Functions) != len(prof.Functions) {
		t.Fatalf("function count %d vs %d", len(got.Profile.Functions), len(prof.Functions))
	}
	for i := range prof.Functions {
		if got.Profile.Functions[i] != prof.Functions[i] {
			t.Errorf("function %d not bit-exact:\nstored %+v\nloaded %+v",
				i, prof.Functions[i], got.Profile.Functions[i])
		}
	}
	if got.Profile.Residual != prof.Residual {
		t.Errorf("residual not bit-exact:\nstored %+v\nloaded %+v", prof.Residual, got.Profile.Residual)
	}
}
