package branch

import (
	"math/rand"
	"testing"
)

func TestBiasedBranchLearns(t *testing.T) {
	p := New()
	pc := uint64(0x1000)
	misses := 0
	for i := 0; i < 1000; i++ {
		if p.Resolve(pc, Immed, true, 0, false).Mispredict {
			misses++
		}
	}
	// gshare trains one PHT entry per distinct history value, so an
	// always-taken branch pays ~historyBits cold misses while the global
	// history register fills with ones, then predicts perfectly.
	if misses > 20 {
		t.Errorf("always-taken branch mispredicted %d times", misses)
	}
}

func TestAlternatingPatternLearns(t *testing.T) {
	p := New()
	pc := uint64(0x2000)
	misses := 0
	for i := 0; i < 2000; i++ {
		if p.Resolve(pc, Immed, i%2 == 0, 0, false).Mispredict {
			misses++
		}
	}
	// gshare captures the alternating pattern through history.
	if misses > 50 {
		t.Errorf("alternating branch mispredicted %d/2000 times", misses)
	}
}

func TestRandomBranchMispredictsOften(t *testing.T) {
	p := New()
	rng := rand.New(rand.NewSource(3))
	misses := 0
	for i := 0; i < 4000; i++ {
		if p.Resolve(0x3000, Immed, rng.Intn(2) == 0, 0, false).Mispredict {
			misses++
		}
	}
	if misses < 1200 {
		t.Errorf("random branch mispredicted only %d/4000", misses)
	}
}

func TestIndirectBTB(t *testing.T) {
	p := New()
	if !p.Resolve(0x4000, Indirect, true, 0xaaaa, false).Mispredict {
		t.Fatal("cold indirect predicted")
	}
	if p.Resolve(0x4000, Indirect, true, 0xaaaa, false).Mispredict {
		t.Fatal("repeated indirect mispredicted")
	}
	if !p.Resolve(0x4000, Indirect, true, 0xbbbb, false).Mispredict {
		t.Fatal("changed target predicted")
	}
}

func TestReturnStack(t *testing.T) {
	p := New()
	p.Resolve(0x1000, Call, true, 0x9000, false)
	p.PushReturn(0x1004)
	p.Resolve(0x2000, Call, true, 0x9100, false)
	p.PushReturn(0x2004)
	if p.Resolve(0x9100, Return, true, 0x2004, false).Mispredict {
		t.Fatal("matched return mispredicted")
	}
	if p.Resolve(0x9000, Return, true, 0x1004, false).Mispredict {
		t.Fatal("matched outer return mispredicted")
	}
	if !p.Resolve(0x9000, Return, true, 0xdead, false).Mispredict {
		t.Fatal("empty-RAS return predicted")
	}
}

func TestRASOverflow(t *testing.T) {
	p := New()
	for i := 0; i < 20; i++ {
		p.Resolve(uint64(0x1000+i*4), Call, true, 0x9000, false)
		p.PushReturn(uint64(0x1000+i*4) + 4)
	}
	// The deepest 16 returns predict; the oldest were pushed out.
	bad := 0
	for i := 19; i >= 0; i-- {
		if p.Resolve(0x9000, Return, true, uint64(0x1000+i*4)+4, false).Mispredict {
			bad++
		}
	}
	if bad != 4 {
		t.Errorf("overflowed RAS mispredicts = %d, want 4", bad)
	}
}

func TestPCCStallOnMorello(t *testing.T) {
	p := New() // TracksPCCBounds = false: the Morello prototype
	out := p.Resolve(0x1000, Call, true, 0x9000, true)
	if !out.PCCStall {
		t.Fatal("PCC-bounds change did not stall on Morello model")
	}
	if out.StallCycles != PCCStallPenalty {
		t.Errorf("stall = %d, want %d", out.StallCycles, PCCStallPenalty)
	}
	if p.Stats.PCCStalls != 1 {
		t.Errorf("PCC stalls = %d", p.Stats.PCCStalls)
	}
}

func TestCapabilityAwarePredictorNoPCCStall(t *testing.T) {
	p := New()
	p.TracksPCCBounds = true // hypothetical future implementation (§4.5)
	out := p.Resolve(0x1000, Call, true, 0x9000, true)
	if out.PCCStall || out.StallCycles != 0 {
		t.Fatalf("capability-aware predictor stalled: %+v", out)
	}
}

func TestPCCStallStacksWithMispredict(t *testing.T) {
	p := New()
	out := p.Resolve(0x1000, Indirect, true, 0xaaaa, true) // cold: mispredict
	if out.StallCycles != MispredictPenalty+PCCStallPenalty {
		t.Errorf("stall = %d, want %d", out.StallCycles, MispredictPenalty+PCCStallPenalty)
	}
}

func TestMispredictRate(t *testing.T) {
	s := Stats{Branches: 200, Mispredicts: 5}
	if got := s.MispredictRate(); got != 0.025 {
		t.Errorf("rate = %f", got)
	}
	if (Stats{}).MispredictRate() != 0 {
		t.Error("zero-branch rate not zero")
	}
}
