// Package branch models the Neoverse N1 branch prediction machinery as it
// behaves on Morello: a gshare-style direction predictor, a branch target
// buffer for indirect branches, and a return-address stack. The critical
// Morello artefact from the paper (§2.2, §4.5) is reproduced by the
// TracksPCCBounds switch: the N1 predictor does not track Program Counter
// Capability bounds, so under the purecap ABI every control transfer that
// changes PCC bounds (inter-library calls/returns, virtual dispatch through
// capability jumps) forces a frontend resteer stall even when the target
// was predicted correctly. The purecap-benchmark ABI avoids these stalls by
// using a single global PCC and integer jumps.
package branch

// Kind classifies a control-flow instruction, mirroring the BR_*_SPEC PMU
// taxonomy.
type Kind int

const (
	// Immed is a direct conditional or unconditional branch.
	Immed Kind = iota
	// Indirect is a register-target branch (virtual dispatch, switch).
	Indirect
	// Call is a direct function call (BL / BLR-with-link).
	Call
	// Return is a function return.
	Return
)

// MispredictPenalty is the pipeline-flush cost of a mispredicted branch on
// an N1-class core (refill of an ~11-stage frontend).
const MispredictPenalty = 11

// CapJumpCost is the base frontend cost of any capability branch (BLR/RET
// on sealed or capability targets) on the Morello prototype, even when the
// PCC bounds do not change: the fetch unit re-validates the target against
// the capability before the frontend can stream. The purecap-benchmark ABI
// avoids it by using integer jumps.
const CapJumpCost = 1.5

// PCCStallPenalty is the frontend stall incurred when a control transfer
// changes PCC bounds and the predictor cannot anticipate the new bounds.
// The fetch unit must wait for the capability branch to resolve before it
// can validate fetched addresses against the new PCC.
const PCCStallPenalty = 16

// Stats exposes prediction activity to the PMU.
type Stats struct {
	Branches    uint64 // BR_RETIRED
	Mispredicts uint64 // BR_MIS_PRED_RETIRED
	PCCStalls   uint64 // Morello-specific: bounds-change resteers
}

// Predictor is the combined direction/target/return predictor.
type Predictor struct {
	// TracksPCCBounds models a hypothetical capability-aware predictor;
	// false reproduces the Morello prototype.
	TracksPCCBounds bool

	historyBits uint
	history     uint64
	pht         []uint8 // 2-bit saturating counters
	btb         map[uint64]uint64
	ras         []uint64
	rasMax      int
	Stats       Stats
}

// New builds a predictor with N1-like capacities: 2^14-entry pattern
// history table, unbounded-but-small BTB map, 16-deep return stack.
func New() *Predictor {
	const histBits = 14
	return &Predictor{
		historyBits: histBits,
		pht:         make([]uint8, 1<<histBits),
		btb:         make(map[uint64]uint64),
		ras:         make([]uint64, 0, 16),
		rasMax:      16,
	}
}

// Outcome reports the cost of one executed branch.
type Outcome struct {
	Mispredict  bool
	PCCStall    bool
	StallCycles uint64
}

// Resolve runs prediction and update for a retired branch at pc with the
// actual direction/target, and accounts Morello PCC-bounds behaviour when
// pccChanged is set (the transfer installs different PCC bounds).
func (p *Predictor) Resolve(pc uint64, kind Kind, taken bool, target uint64, pccChanged bool) Outcome {
	p.Stats.Branches++
	var out Outcome

	switch kind {
	case Immed:
		idx := (pc>>2 ^ p.history) & (1<<p.historyBits - 1)
		ctr := p.pht[idx]
		predTaken := ctr >= 2
		if predTaken != taken {
			out.Mispredict = true
		}
		if taken && ctr < 3 {
			p.pht[idx]++
		} else if !taken && ctr > 0 {
			p.pht[idx]--
		}
		p.history = (p.history << 1) & (1<<p.historyBits - 1)
		if taken {
			p.history |= 1
		}
	case Indirect:
		pred, ok := p.btb[pc]
		if !ok || pred != target {
			out.Mispredict = true
		}
		p.btb[pc] = target
	case Call:
		// Direct calls predict perfectly; the caller pushes the return
		// address separately via PushReturn.
	case Return:
		if n := len(p.ras); n > 0 {
			pred := p.ras[n-1]
			p.ras = p.ras[:n-1]
			if pred != target {
				out.Mispredict = true
			}
		} else {
			out.Mispredict = true
		}
	}

	if out.Mispredict {
		p.Stats.Mispredicts++
		out.StallCycles += MispredictPenalty
	}
	if pccChanged && !p.TracksPCCBounds {
		// Bounds-change resteer: fetch cannot validate addresses against
		// the incoming PCC until the capability branch resolves, so the
		// stall serialises on top of any mispredict flush.
		p.Stats.PCCStalls++
		out.PCCStall = true
		out.StallCycles += PCCStallPenalty
	}
	return out
}

// PushReturn records a call's return address on the return-address stack.
// Both direct and indirect (virtual) calls push; the matching Return's
// Resolve pops and compares.
func (p *Predictor) PushReturn(retAddr uint64) {
	if len(p.ras) == p.rasMax {
		copy(p.ras, p.ras[1:])
		p.ras = p.ras[:len(p.ras)-1]
	}
	p.ras = append(p.ras, retAddr)
}

// MispredictRate returns the paper's Branch Prediction MR.
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}
