// Package tlb models the Neoverse N1 translation machinery: small
// fully-associative L1 instruction and data TLBs, a larger unified L2 TLB,
// and a page-table walker whose activity surfaces as the ITLB_WALK /
// DTLB_WALK PMU events the paper analyses in §4.7.
package tlb

import "fmt"

// Config describes one TLB level.
type Config struct {
	Name    string
	Entries int
	PageLog uint // log2 of page size translated
}

// Morello/N1 geometry: 48-entry L1 TLBs, 1280-entry unified L2 TLB,
// 4 KiB granule.
var (
	L1IConfig = Config{Name: "L1I-TLB", Entries: 48, PageLog: 12}
	L1DConfig = Config{Name: "L1D-TLB", Entries: 48, PageLog: 12}
	L2Config  = Config{Name: "L2-TLB", Entries: 1280, PageLog: 12}
)

// WalkLatency is the cost in cycles of a page-table walk that misses all
// TLB levels (four sequential memory accesses hitting mid-hierarchy).
const WalkLatency = 45

type entry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

// Stats exposes TLB activity to the PMU.
type Stats struct {
	Accesses uint64 // L1x_TLB in the paper's tables
	Misses   uint64 // L1 misses (refills from L2 or walker)
}

// Shadow observes every state-changing TLB operation after it completes.
// internal/check installs a lockstep reference model behind it; a nil
// shadow costs one pointer test per operation and nothing else. Shadows
// must not touch the TLB they are attached to beyond the read-only
// snapshot/stats accessors.
type Shadow interface {
	// Lookup reports one completed lookup (memo fast path included) and
	// whether it hit this level.
	Lookup(vpn uint64, hit bool)
	// Insert reports one completed translation install.
	Insert(vpn uint64)
	// InvalidateAll reports a completed flush.
	InvalidateAll()
}

// EntryState is a read-only snapshot of one TLB entry, exposed for the
// lockstep checker's state comparison.
type EntryState struct {
	VPN   uint64
	Valid bool
	LRU   uint64
}

// TLB is one translation-cache level, fully associative with LRU
// replacement (adequate at these sizes and matches N1 behaviour closely).
// A map index keeps lookups O(1); the LRU victim scan runs only on
// insertion after a miss.
//
// A one-entry last-translation memo (lastVPN/lastSlot) fronts the map:
// workload access streams overwhelmingly stay on one page across
// consecutive references, and the memo turns those lookups into two
// compares instead of a map probe. The memo is a verified hint — the slot
// is re-checked against valid+vpn, so eviction can never fabricate a hit —
// and its accounting (access count, LRU touch) is identical to the slow
// path's.
type TLB struct {
	cfg      Config
	entries  []entry
	index    map[uint64]int // vpn -> entry slot
	seq      uint64
	lastVPN  uint64
	lastSlot int // -1 when the memo is empty
	// prev/next/head/tail maintain the entries as an intrusive recency
	// list mirroring the lru sequence numbers, so Insert's victim is the
	// tail in O(1) instead of a full scan for the minimum. nextFree is the
	// first never-used slot: entries only become valid in slot order and
	// are only invalidated all at once, so the invalid slots are exactly
	// [nextFree, len) and "first invalid slot" is nextFree.
	prev, next []int32
	head, tail int32
	nextFree   int
	shadow     Shadow
	Stats      Stats
}

// New builds a TLB from its configuration.
func New(cfg Config) *TLB {
	t := &TLB{
		cfg:      cfg,
		entries:  make([]entry, cfg.Entries),
		index:    make(map[uint64]int, cfg.Entries),
		lastSlot: -1,
		prev:     make([]int32, cfg.Entries),
		next:     make([]int32, cfg.Entries),
		head:     -1,
		tail:     -1,
	}
	return t
}

// touch moves slot i to the head of the recency list (the equivalent of
// assigning it the newest lru sequence number).
func (t *TLB) touch(i int) {
	if t.head == int32(i) {
		return
	}
	p, n := t.prev[i], t.next[i]
	if p >= 0 {
		t.next[p] = n
	}
	if n >= 0 {
		t.prev[n] = p
	}
	if t.tail == int32(i) {
		t.tail = p
	}
	t.prev[i] = -1
	t.next[i] = t.head
	if t.head >= 0 {
		t.prev[t.head] = int32(i)
	}
	t.head = int32(i)
	if t.tail < 0 {
		t.tail = int32(i)
	}
}

// pushFront links a slot that is not currently in the recency list.
func (t *TLB) pushFront(i int) {
	t.prev[i] = -1
	t.next[i] = t.head
	if t.head >= 0 {
		t.prev[t.head] = int32(i)
	}
	t.head = int32(i)
	if t.tail < 0 {
		t.tail = int32(i)
	}
}

// fastHit records an L1-identical hit for vpn through the memo, or reports
// false (without touching stats) when the memo does not cover vpn.
func (t *TLB) fastHit(vpn uint64) bool {
	i := t.lastSlot
	if i < 0 || t.lastVPN != vpn {
		return false
	}
	e := &t.entries[i]
	if !e.valid || e.vpn != vpn {
		t.lastSlot = -1 // evicted underneath the memo
		return false
	}
	t.Stats.Accesses++
	t.seq++
	e.lru = t.seq
	t.touch(i)
	if t.shadow != nil {
		t.shadow.Lookup(vpn, true)
	}
	return true
}

// Lookup translates addr, returning whether the translation hit this level.
func (t *TLB) Lookup(addr uint64) bool {
	vpn := addr >> t.cfg.PageLog
	if t.fastHit(vpn) {
		return true
	}
	t.Stats.Accesses++
	t.seq++
	if i, ok := t.index[vpn]; ok && t.entries[i].valid && t.entries[i].vpn == vpn {
		t.entries[i].lru = t.seq
		t.touch(i)
		t.lastVPN, t.lastSlot = vpn, i
		if t.shadow != nil {
			t.shadow.Lookup(vpn, true)
		}
		return true
	}
	t.Stats.Misses++
	if t.shadow != nil {
		t.shadow.Lookup(vpn, false)
	}
	return false
}

// Insert installs a translation for addr's page. Inserting a page that is
// already resident refreshes its entry in place (LRU touch), keeping the
// map index and the entry array consistent: allocating a second slot for
// the same VPN would leave two valid entries for one page, and evicting
// the stale one later would delete the index key the live entry depends
// on, turning every subsequent lookup of that page into a spurious miss.
func (t *TLB) Insert(addr uint64) {
	vpn := addr >> t.cfg.PageLog
	t.seq++
	if i, ok := t.index[vpn]; ok && t.entries[i].valid && t.entries[i].vpn == vpn {
		t.entries[i].lru = t.seq
		t.touch(i)
		t.lastVPN, t.lastSlot = vpn, i
		if t.shadow != nil {
			t.shadow.Insert(vpn)
		}
		return
	}
	// Victim: the first never-used slot, else the recency-list tail (the
	// valid entry with the minimum lru) — the same choice the full scan
	// makes, in O(1).
	var victim int
	if t.nextFree < len(t.entries) {
		victim = t.nextFree
		t.nextFree++
		t.pushFront(victim)
	} else {
		victim = int(t.tail)
		t.touch(victim)
	}
	if v := &t.entries[victim]; v.valid {
		delete(t.index, v.vpn)
	}
	t.entries[victim] = entry{vpn: vpn, valid: true, lru: t.seq}
	t.index[vpn] = victim
	t.lastVPN, t.lastSlot = vpn, victim
	if t.shadow != nil {
		t.shadow.Insert(vpn)
	}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.index = make(map[uint64]int, t.cfg.Entries)
	t.lastSlot = -1
	t.head, t.tail = -1, -1
	t.nextFree = 0
	if t.shadow != nil {
		t.shadow.InvalidateAll()
	}
}

// SetShadow installs (or, with nil, removes) the TLB's lockstep observer
// and returns the previous one.
func (t *TLB) SetShadow(s Shadow) Shadow {
	prev := t.shadow
	t.shadow = s
	return prev
}

// Shadowed reports whether a lockstep observer is installed.
func (t *TLB) Shadowed() bool { return t.shadow != nil }

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// AppendEntryState appends a snapshot of every entry to dst and returns it,
// for the lockstep checker's state comparison.
func (t *TLB) AppendEntryState(dst []EntryState) []EntryState {
	for i := range t.entries {
		e := &t.entries[i]
		dst = append(dst, EntryState{VPN: e.vpn, Valid: e.valid, LRU: e.lru})
	}
	return dst
}

// CheckInvariants verifies the internal consistency the fast paths rely
// on: every valid entry is indexed at its own slot, every index key points
// at a valid entry holding that VPN, and no VPN occupies two slots. It
// exists for tests and the lockstep checker; the zero-allocation hot paths
// never call it.
func (t *TLB) CheckInvariants() error {
	seen := make(map[uint64]int, len(t.entries))
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if j, dup := seen[e.vpn]; dup {
			return fmt.Errorf("tlb %s: vpn %#x valid in slots %d and %d", t.cfg.Name, e.vpn, j, i)
		}
		seen[e.vpn] = i
		j, ok := t.index[e.vpn]
		if !ok {
			return fmt.Errorf("tlb %s: valid vpn %#x in slot %d missing from index", t.cfg.Name, e.vpn, i)
		}
		if j != i {
			return fmt.Errorf("tlb %s: vpn %#x valid in slot %d but indexed at %d", t.cfg.Name, e.vpn, i, j)
		}
	}
	for vpn, i := range t.index {
		if i < 0 || i >= len(t.entries) || !t.entries[i].valid || t.entries[i].vpn != vpn {
			return fmt.Errorf("tlb %s: index maps vpn %#x to stale slot %d", t.cfg.Name, vpn, i)
		}
	}
	// The recency list must cover exactly the valid entries in strictly
	// descending lru order: its tail is Insert's O(1) victim, so a mis-
	// ordered list silently changes replacement behaviour.
	listed := 0
	lastLRU := ^uint64(0)
	for i := t.head; i >= 0; i = t.next[i] {
		e := &t.entries[i]
		if !e.valid {
			return fmt.Errorf("tlb %s: invalid slot %d on recency list", t.cfg.Name, i)
		}
		if listed > 0 && e.lru >= lastLRU {
			return fmt.Errorf("tlb %s: recency list out of lru order at slot %d", t.cfg.Name, i)
		}
		lastLRU = e.lru
		if listed++; listed > len(t.entries) {
			return fmt.Errorf("tlb %s: recency list cycle", t.cfg.Name)
		}
	}
	if listed != len(seen) {
		return fmt.Errorf("tlb %s: recency list covers %d entries, %d valid", t.cfg.Name, listed, len(seen))
	}
	return nil
}

// Hierarchy bundles an L1 TLB with the shared L2 TLB and the walker, and
// produces the per-side walk counts.
type Hierarchy struct {
	L1 *TLB
	L2 *TLB
	// Walks counts page-table walks (the xTLB_WALK PMU event).
	Walks uint64
	// WalkCycles accumulates the latency contributed by walks.
	WalkCycles uint64
}

// NewHierarchy builds an L1+shared-L2 translation path.
func NewHierarchy(l1 Config, l2 *TLB) *Hierarchy {
	return &Hierarchy{L1: New(l1), L2: l2}
}

// FastHit resolves addr through the L1 TLB's last-translation memo alone:
// it reports true — with the exact stats and LRU accounting of an L1
// Lookup hit — when addr's page is the one the L1 translated last, and
// false (with no accounting at all) otherwise, in which case the caller
// must run the full Translate. It lets the per-access translation hot
// path skip the hierarchy walk entirely for same-page runs.
func (h *Hierarchy) FastHit(addr uint64) bool {
	return h.L1.fastHit(addr >> h.L1.cfg.PageLog)
}

// Translate runs the full translation for addr and returns the added
// latency in cycles (0 for an L1 hit).
func (h *Hierarchy) Translate(addr uint64) uint64 {
	if h.L1.Lookup(addr) {
		return 0
	}
	if h.L2.Lookup(addr) {
		h.L1.Insert(addr)
		return 5 // L2 TLB hit latency
	}
	// Page-table walk.
	h.Walks++
	h.WalkCycles += WalkLatency
	h.L2.Insert(addr)
	h.L1.Insert(addr)
	return WalkLatency
}
