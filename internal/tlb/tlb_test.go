package tlb

import "testing"

func TestLookupInsert(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 4, PageLog: 12})
	if tb.Lookup(0x1000) {
		t.Fatal("cold lookup hit")
	}
	tb.Insert(0x1000)
	if !tb.Lookup(0x1fff) {
		t.Fatal("same-page lookup missed")
	}
	if tb.Lookup(0x2000) {
		t.Fatal("next-page lookup hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 2, PageLog: 12})
	tb.Insert(0x1000)
	tb.Insert(0x2000)
	tb.Lookup(0x1000) // 1 is MRU
	tb.Insert(0x3000) // evicts page 2
	if !tb.Lookup(0x1000) {
		t.Fatal("MRU entry evicted")
	}
	if tb.Lookup(0x2000) {
		t.Fatal("LRU entry survived")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	l2 := New(L2Config)
	h := NewHierarchy(L1DConfig, l2)
	// Cold: full walk.
	if lat := h.Translate(0x10000); lat != WalkLatency {
		t.Fatalf("cold translate latency = %d, want %d", lat, WalkLatency)
	}
	if h.Walks != 1 {
		t.Fatalf("walks = %d", h.Walks)
	}
	// Warm L1: free.
	if lat := h.Translate(0x10008); lat != 0 {
		t.Fatalf("L1-hit latency = %d", lat)
	}
	if h.Walks != 1 {
		t.Fatal("walk counted on hit")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	l2 := New(L2Config)
	h := NewHierarchy(Config{Name: "tiny", Entries: 2, PageLog: 12}, l2)
	h.Translate(0x1000)
	h.Translate(0x2000)
	h.Translate(0x3000) // evicts 0x1000 from tiny L1, still in L2
	lat := h.Translate(0x1000)
	if lat != 5 {
		t.Fatalf("L2-hit latency = %d, want 5", lat)
	}
	if h.Walks != 3 {
		t.Fatalf("walks = %d, want 3", h.Walks)
	}
}

func TestFootprintDrivesWalks(t *testing.T) {
	// A working set of more pages than L2 TLB entries must keep walking.
	l2 := New(Config{Name: "l2", Entries: 64, PageLog: 12})
	h := NewHierarchy(Config{Name: "l1", Entries: 8, PageLog: 12}, l2)
	pages := 256
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < pages; p++ {
			h.Translate(uint64(p) << 12)
		}
	}
	if h.Walks < uint64(pages) {
		t.Errorf("walks = %d, want >= %d (thrash)", h.Walks, pages)
	}
	small := NewHierarchy(Config{Name: "l1", Entries: 8, PageLog: 12}, New(Config{Name: "l2", Entries: 1024, PageLog: 12}))
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < pages; p++ {
			small.Translate(uint64(p) << 12)
		}
	}
	if small.Walks != uint64(pages) {
		t.Errorf("fitting working set: walks = %d, want %d", small.Walks, pages)
	}
}

func TestInvalidateAll(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 4, PageLog: 12})
	tb.Insert(0x1000)
	tb.InvalidateAll()
	if tb.Lookup(0x1000) {
		t.Fatal("entry survived invalidation")
	}
}

func TestStatsCounts(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 4, PageLog: 12})
	tb.Lookup(0x1000) // miss
	tb.Insert(0x1000)
	tb.Lookup(0x1000) // hit
	if tb.Stats.Accesses != 2 || tb.Stats.Misses != 1 {
		t.Errorf("stats = %+v", tb.Stats)
	}
}
