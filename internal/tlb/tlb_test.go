package tlb

import "testing"

func TestLookupInsert(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 4, PageLog: 12})
	if tb.Lookup(0x1000) {
		t.Fatal("cold lookup hit")
	}
	tb.Insert(0x1000)
	if !tb.Lookup(0x1fff) {
		t.Fatal("same-page lookup missed")
	}
	if tb.Lookup(0x2000) {
		t.Fatal("next-page lookup hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 2, PageLog: 12})
	tb.Insert(0x1000)
	tb.Insert(0x2000)
	tb.Lookup(0x1000) // 1 is MRU
	tb.Insert(0x3000) // evicts page 2
	if !tb.Lookup(0x1000) {
		t.Fatal("MRU entry evicted")
	}
	if tb.Lookup(0x2000) {
		t.Fatal("LRU entry survived")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	l2 := New(L2Config)
	h := NewHierarchy(L1DConfig, l2)
	// Cold: full walk.
	if lat := h.Translate(0x10000); lat != WalkLatency {
		t.Fatalf("cold translate latency = %d, want %d", lat, WalkLatency)
	}
	if h.Walks != 1 {
		t.Fatalf("walks = %d", h.Walks)
	}
	// Warm L1: free.
	if lat := h.Translate(0x10008); lat != 0 {
		t.Fatalf("L1-hit latency = %d", lat)
	}
	if h.Walks != 1 {
		t.Fatal("walk counted on hit")
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	l2 := New(L2Config)
	h := NewHierarchy(Config{Name: "tiny", Entries: 2, PageLog: 12}, l2)
	h.Translate(0x1000)
	h.Translate(0x2000)
	h.Translate(0x3000) // evicts 0x1000 from tiny L1, still in L2
	lat := h.Translate(0x1000)
	if lat != 5 {
		t.Fatalf("L2-hit latency = %d, want 5", lat)
	}
	if h.Walks != 3 {
		t.Fatalf("walks = %d, want 3", h.Walks)
	}
}

func TestFootprintDrivesWalks(t *testing.T) {
	// A working set of more pages than L2 TLB entries must keep walking.
	l2 := New(Config{Name: "l2", Entries: 64, PageLog: 12})
	h := NewHierarchy(Config{Name: "l1", Entries: 8, PageLog: 12}, l2)
	pages := 256
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < pages; p++ {
			h.Translate(uint64(p) << 12)
		}
	}
	if h.Walks < uint64(pages) {
		t.Errorf("walks = %d, want >= %d (thrash)", h.Walks, pages)
	}
	small := NewHierarchy(Config{Name: "l1", Entries: 8, PageLog: 12}, New(Config{Name: "l2", Entries: 1024, PageLog: 12}))
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < pages; p++ {
			small.Translate(uint64(p) << 12)
		}
	}
	if small.Walks != uint64(pages) {
		t.Errorf("fitting working set: walks = %d, want %d", small.Walks, pages)
	}
}

func TestInvalidateAll(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 4, PageLog: 12})
	tb.Insert(0x1000)
	tb.InvalidateAll()
	if tb.Lookup(0x1000) {
		t.Fatal("entry survived invalidation")
	}
}

func TestStatsCounts(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 4, PageLog: 12})
	tb.Lookup(0x1000) // miss
	tb.Insert(0x1000)
	tb.Lookup(0x1000) // hit
	if tb.Stats.Accesses != 2 || tb.Stats.Misses != 1 {
		t.Errorf("stats = %+v", tb.Stats)
	}
}

// refTLB is the pre-memo reference model of one TLB level: map-probed
// lookup, LRU-scan insert. The last-translation memo must stay
// bit-identical to it in stats, LRU ordering and replacement.
type refTLB struct {
	cfg     Config
	entries []entry
	index   map[uint64]int
	seq     uint64
	stats   Stats
}

func newRefTLB(cfg Config) *refTLB {
	return &refTLB{cfg: cfg, entries: make([]entry, cfg.Entries), index: make(map[uint64]int, cfg.Entries)}
}

func (t *refTLB) lookup(addr uint64) bool {
	t.stats.Accesses++
	vpn := addr >> t.cfg.PageLog
	t.seq++
	if i, ok := t.index[vpn]; ok && t.entries[i].valid && t.entries[i].vpn == vpn {
		t.entries[i].lru = t.seq
		return true
	}
	t.stats.Misses++
	return false
}

func (t *refTLB) insert(addr uint64) {
	vpn := addr >> t.cfg.PageLog
	t.seq++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	if v := &t.entries[victim]; v.valid {
		delete(t.index, v.vpn)
	}
	t.entries[victim] = entry{vpn: vpn, valid: true, lru: t.seq}
	t.index[vpn] = victim
}

type refHierarchy struct {
	l1, l2 *refTLB
	walks  uint64
}

func (h *refHierarchy) translate(addr uint64) uint64 {
	if h.l1.lookup(addr) {
		return 0
	}
	if h.l2.lookup(addr) {
		h.l1.insert(addr)
		return 5
	}
	h.walks++
	h.l2.insert(addr)
	h.l1.insert(addr)
	return WalkLatency
}

// TestHierarchyMatchesReferenceModel drives the memoized hierarchy exactly
// as internal/core does (FastHit first, Translate on memo miss) against
// the reference model with identical address streams, including enough
// distinct pages to force L1 evictions under the memo.
func TestHierarchyMatchesReferenceModel(t *testing.T) {
	small := Config{Name: "L1", Entries: 4, PageLog: 12}
	l2cfg := Config{Name: "L2", Entries: 16, PageLog: 12}
	opt := NewHierarchy(small, New(l2cfg))
	ref := &refHierarchy{l1: newRefTLB(small), l2: newRefTLB(l2cfg)}

	seed := uint64(7)
	var last uint64
	for i := 0; i < 50000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		var addr uint64
		switch seed % 4 {
		case 0, 1: // same-page run (memo territory)
			addr = last&^0xfff | (seed >> 32 & 0xfff)
		case 2: // small working set
			addr = (seed >> 16 % 8) << 12
		default: // wide sweep forcing evictions
			addr = (seed >> 16 % 64) << 12
		}
		last = addr
		var got uint64
		if opt.FastHit(addr) {
			got = 0
		} else {
			got = opt.Translate(addr)
		}
		if want := ref.translate(addr); got != want {
			t.Fatalf("step %d addr %#x: latency %d, want %d", i, addr, got, want)
		}
	}
	if opt.L1.Stats != ref.l1.stats {
		t.Fatalf("L1 stats diverged: %+v vs %+v", opt.L1.Stats, ref.l1.stats)
	}
	if opt.L2.Stats != ref.l2.stats {
		t.Fatalf("L2 stats diverged: %+v vs %+v", opt.L2.Stats, ref.l2.stats)
	}
	if opt.Walks != ref.walks {
		t.Fatalf("walks %d, want %d", opt.Walks, ref.walks)
	}
}

// TestMemoInvalidation checks the memo cannot produce a hit after a flush
// or after its entry is evicted by inserts.
func TestMemoInvalidation(t *testing.T) {
	tb := New(Config{Name: "t", Entries: 2, PageLog: 12})
	tb.Insert(0x1000)
	if !tb.Lookup(0x1000) {
		t.Fatal("warm lookup missed")
	}
	tb.InvalidateAll()
	if tb.Lookup(0x1000) {
		t.Fatal("memo hit after InvalidateAll")
	}
	tb.Insert(0x1000)
	tb.Lookup(0x1000)
	tb.Insert(0x2000)
	tb.Insert(0x3000) // evicts page 1 (LRU scan may reuse its slot)
	tb.Insert(0x4000)
	if tb.fastHit(0x1) {
		t.Fatal("memo fast hit for an evicted page")
	}
}

// TestInsertDuplicateVPN reproduces the index-corruption bug: inserting a
// page that is already resident must refresh the existing entry, not
// allocate a second slot. With the double entry, the later eviction of the
// stale copy deleted the live entry's index key, turning every subsequent
// lookup of that page into a spurious miss.
func TestInsertDuplicateVPN(t *testing.T) {
	tb := New(Config{Name: "dup", Entries: 4, PageLog: 12})
	tb.Insert(7 << 12)
	tb.Insert(7 << 12) // same page again: refresh in place
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Three more distinct pages: exactly fills the 4-entry TLB, so nothing
	// is evicted — unless the duplicate ate a slot.
	for p := uint64(8); p <= 10; p++ {
		tb.Insert(p << 12)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []uint64{7, 8, 9, 10} {
		if !tb.Lookup(p << 12) {
			t.Fatalf("page %d missed after duplicate insert", p)
		}
	}
	if tb.Stats.Misses != 0 {
		t.Fatalf("spurious misses: %+v", tb.Stats)
	}
}

// TestInsertDuplicateTouchesLRU checks the refresh path really refreshes:
// after re-inserting the oldest page, it must no longer be the victim.
func TestInsertDuplicateTouchesLRU(t *testing.T) {
	tb := New(Config{Name: "dup-lru", Entries: 2, PageLog: 12})
	tb.Insert(1 << 12)
	tb.Insert(2 << 12)
	tb.Insert(1 << 12) // refresh: page 2 becomes LRU
	tb.Insert(3 << 12) // must evict page 2
	if !tb.Lookup(1 << 12) {
		t.Fatal("refreshed page evicted")
	}
	if tb.Lookup(2 << 12) {
		t.Fatal("LRU page survived")
	}
}
