package abi

import "testing"

func TestParse(t *testing.T) {
	cases := map[string]ABI{
		"hybrid":            Hybrid,
		"aarch64":           Hybrid,
		"benchmark":         Benchmark,
		"purecap-benchmark": Benchmark,
		"purecap":           Purecap,
	}
	for s, want := range cases {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := Parse("cheri"); err == nil {
		t.Error("bogus ABI parsed")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, a := range All() {
		got, err := Parse(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v failed: %v %v", a, got, err)
		}
	}
}

func TestPointerSizes(t *testing.T) {
	if Hybrid.PointerSize() != 8 {
		t.Error("hybrid pointers must be 8 bytes")
	}
	if Purecap.PointerSize() != 16 || Benchmark.PointerSize() != 16 {
		t.Error("purecap ABIs must use 16-byte pointers")
	}
}

func TestBenchmarkABIIsolatesPCC(t *testing.T) {
	// The whole point of the benchmark ABI: same memory profile as purecap
	// (capability pointers), but no capability jumps.
	if !Benchmark.PointersAreCapabilities() {
		t.Error("benchmark ABI must keep capability pointers")
	}
	if Benchmark.CapabilityJumps() {
		t.Error("benchmark ABI must use integer jumps")
	}
	if !Purecap.CapabilityJumps() {
		t.Error("purecap must use capability jumps")
	}
	if Hybrid.CapabilityJumps() || Hybrid.PointersAreCapabilities() {
		t.Error("hybrid must be fully conventional")
	}
}

func TestLoweringOverheadsOrdering(t *testing.T) {
	if Hybrid.PtrArithDPOps() != 0 || Hybrid.AllocDPOps() != 0 {
		t.Error("hybrid must have no capability-manipulation overhead")
	}
	if Purecap.PtrArithDPOps() == 0 || Benchmark.PtrArithDPOps() == 0 {
		t.Error("purecap ABIs must add capability-manipulation DP ops")
	}
	if Purecap.PtrArithDPOps() != Benchmark.PtrArithDPOps() {
		t.Error("benchmark ABI must keep purecap's code generation for data")
	}
	if Hybrid.CodeSizeFactor() != 1.0 || Purecap.CodeSizeFactor() <= 1.0 {
		t.Error("code size factors wrong")
	}
}
