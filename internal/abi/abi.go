// Package abi defines the three CheriBSD Application Binary Interfaces the
// paper compares on Morello (§2.4) and the code-generation consequences
// that the simulator's lowering applies: pointer width, which memory
// operations become capability operations, how much extra capability-
// manipulation arithmetic the compiler emits, and whether control transfers
// change PCC bounds (the source of Morello's branch-predictor stalls).
package abi

import "fmt"

// ABI selects one of the three CheriBSD ABIs.
type ABI int

const (
	// Hybrid is the AArch64 baseline: conventional 64-bit integer
	// pointers; capabilities only where explicitly annotated (we model
	// none). This is the paper's performance baseline.
	Hybrid ABI = iota
	// Benchmark is the purecap-benchmark ABI: identical memory layout and
	// nearly identical code generation to Purecap, but a single global PCC
	// and integer jumps for calls/returns, isolating Morello's
	// branch-predictor limitation.
	Benchmark
	// Purecap is the pure-capability ABI: every pointer (language-level
	// and sub-language: stack, return addresses, GOT) is a 128-bit
	// capability, and control transfers use capability jumps that update
	// PCC bounds.
	Purecap
	// NumABIs is the number of ABIs.
	NumABIs
)

var names = [NumABIs]string{"hybrid", "purecap-benchmark", "purecap"}

// String returns the CheriBSD name of the ABI.
func (a ABI) String() string {
	if a < 0 || a >= NumABIs {
		return fmt.Sprintf("abi(%d)", int(a))
	}
	return names[a]
}

// Parse resolves an ABI name (also accepting the "benchmark" shorthand).
func Parse(s string) (ABI, error) {
	switch s {
	case "hybrid", "aarch64":
		return Hybrid, nil
	case "benchmark", "purecap-benchmark":
		return Benchmark, nil
	case "purecap":
		return Purecap, nil
	}
	return 0, fmt.Errorf("abi: unknown ABI %q", s)
}

// All returns the three ABIs in the paper's presentation order.
func All() []ABI { return []ABI{Hybrid, Benchmark, Purecap} }

// PointerSize returns the in-memory size of a language-level pointer.
func (a ABI) PointerSize() uint64 {
	if a == Hybrid {
		return 8
	}
	return 16
}

// PointerAlign returns the required alignment of a pointer slot.
func (a ABI) PointerAlign() uint64 { return a.PointerSize() }

// PointersAreCapabilities reports whether pointer loads/stores move tagged
// 128-bit capabilities (and therefore count as CAP_MEM_ACCESS / CTAG
// events).
func (a ABI) PointersAreCapabilities() bool { return a != Hybrid }

// CapabilityJumps reports whether calls, returns and indirect branches are
// capability branches that install new PCC bounds. Only the full purecap
// ABI uses them; purecap-benchmark deliberately replaces them with integer
// jumps under a global PCC.
func (a ABI) CapabilityJumps() bool { return a == Purecap }

// PtrArithDPOps returns the number of extra integer data-processing µops
// the compiler emits per pointer-manipulation site (address derivation,
// bounds association, captable indirection) relative to hybrid code. This
// is part of the mechanism behind the DP_SPEC share growth the paper
// reports in Figure 5.
func (a ABI) PtrArithDPOps() uint64 {
	if a == Hybrid {
		return 0
	}
	return 2
}

// MemAccessDPOps returns the average number of extra data-processing µops
// per data memory access under this ABI's code generation: capability-
// relative addressing, global accesses indirected through the captable,
// and bounds set-up for address computations that AArch64 folds into
// addressing modes. Fractional; the machine accumulates and emits whole
// µops. Together with PtrArithDPOps this reproduces the paper's dynamic
// instruction-count inflation under the purecap ABIs (derivable from
// Table 3 as time-ratio x IPC-ratio: up to ~1.7x for omnetpp and ~1.9x
// for QuickJS).
func (a ABI) MemAccessDPOps() float64 {
	if a == Hybrid {
		return 0
	}
	return 0.18
}

// AllocDPOps returns the extra µops spent per heap allocation on deriving
// and bounding the returned capability (SCBNDS + representability checks in
// the allocator).
func (a ABI) AllocDPOps() uint64 {
	if a == Hybrid {
		return 0
	}
	return 4
}

// CallOverheadDPOps returns extra per-call µops for capability call
// sequences (capability spills of the return capability, CSP handling).
func (a ABI) CallOverheadDPOps() uint64 {
	if a == Hybrid {
		return 0
	}
	return 1
}

// SpillSlotSize returns the stack spill-slot size for saved registers that
// may hold pointers (return address, frame pointer): capability-sized under
// both purecap ABIs.
func (a ABI) SpillSlotSize() uint64 { return a.PointerSize() }

// CodeSizeFactor scales function code footprints relative to hybrid,
// reflecting the ~10 % .text growth measured in the paper's Figure 2.
func (a ABI) CodeSizeFactor() float64 {
	if a == Hybrid {
		return 1.0
	}
	return 1.10
}
