package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	if !LoadInt.IsLoad() || !LoadCap.IsLoad() || StoreInt.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !StoreInt.IsStore() || !StoreCap.IsStore() || LoadInt.IsStore() {
		t.Error("IsStore wrong")
	}
	for _, c := range []Class{BranchImmed, BranchIndirect, BranchReturn} {
		if !c.IsBranch() {
			t.Errorf("%v not a branch", c)
		}
	}
	if DP.IsBranch() || DP.IsLoad() || DP.IsStore() {
		t.Error("DP misclassified")
	}
	if !LoadCap.IsCapMem() || !StoreCap.IsCapMem() || LoadInt.IsCapMem() {
		t.Error("IsCapMem wrong")
	}
}

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		n := c.String()
		if n == "" || n == "?" {
			t.Errorf("class %d unnamed", c)
		}
		if seen[n] {
			t.Errorf("duplicate class name %q", n)
		}
		seen[n] = true
	}
	if Class(99).String() != "?" {
		t.Error("out-of-range class name")
	}
}

func TestCapabilityStoresCostMorePorts(t *testing.T) {
	// §2.2: 128-bit capability stores pressure 64-bit-sized store buffers.
	if StoreCap.Ports() <= StoreInt.Ports() {
		t.Error("capability stores must consume more store-path bandwidth")
	}
	if LoadCap.Ports() <= LoadInt.Ports() {
		t.Error("capability loads must consume more load-path bandwidth")
	}
}

func TestLatenciesSane(t *testing.T) {
	if DP.ExecLatency() != 1 {
		t.Error("DP latency")
	}
	if VFP.ExecLatency() < ASE.ExecLatency() {
		t.Error("FP should not be cheaper than SIMD")
	}
	if LoadInt.ExecLatency() != 0 {
		t.Error("load latency comes from the hierarchy")
	}
}
