// Package isa defines the micro-operation taxonomy of the simulated
// Morello core. Classes mirror the Arm speculative-operation PMU events
// (LD_SPEC, ST_SPEC, DP_SPEC, ASE_SPEC, VFP_SPEC, BR_*_SPEC, CRYPTO_SPEC)
// so the instruction-mix analysis of the paper's Figure 5 falls directly
// out of class counts. Capability manipulation instructions (bounds
// setting, address derivation, tag clearing) issue to the integer
// data-processing pipes on Morello and therefore count as DP_SPEC, which is
// exactly the mechanism behind the paper's observed DP share growth of
// 5.21–29.31 % under purecap.
package isa

// Class labels one µop with its execution resource and PMU attribution.
type Class int

const (
	// LoadInt is an integer/data load (any width up to 8 bytes).
	LoadInt Class = iota
	// LoadCap is a 16-byte capability load including the tag.
	LoadCap
	// StoreInt is an integer/data store.
	StoreInt
	// StoreCap is a 16-byte capability store including the tag.
	StoreCap
	// DP is integer data processing (ALU, shifts, multiplies, and all
	// capability-manipulation instructions on Morello).
	DP
	// ASE is advanced-SIMD integer processing.
	ASE
	// VFP is scalar/vector floating point.
	VFP
	// Crypto is cryptographic extension work.
	Crypto
	// BranchImmed is a direct branch.
	BranchImmed
	// BranchIndirect is an indirect branch.
	BranchIndirect
	// BranchReturn is a function return.
	BranchReturn
	// NumClasses is the number of µop classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"LD", "LDC", "ST", "STC", "DP", "ASE", "VFP", "CRYPTO", "B", "BR", "RET",
}

// String returns the mnemonic-style class name.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return "?"
	}
	return classNames[c]
}

// IsLoad reports whether the class reads data memory.
func (c Class) IsLoad() bool { return c == LoadInt || c == LoadCap }

// IsStore reports whether the class writes data memory.
func (c Class) IsStore() bool { return c == StoreInt || c == StoreCap }

// IsBranch reports whether the class is control flow.
func (c Class) IsBranch() bool {
	return c == BranchImmed || c == BranchIndirect || c == BranchReturn
}

// IsCapMem reports whether the class moves a capability through memory.
func (c Class) IsCapMem() bool { return c == LoadCap || c == StoreCap }

// ExecLatency returns the execution latency in cycles for a µop of this
// class, excluding any memory-hierarchy time (added by the core from the
// cache level that served the access).
func (c Class) ExecLatency() uint64 {
	switch c {
	case DP:
		return 1
	case ASE, Crypto:
		return 2
	case VFP:
		return 3
	case LoadInt, LoadCap:
		return 0 // latency comes from the hierarchy
	case StoreInt, StoreCap:
		return 1
	default: // branches
		return 1
	}
}

// Ports returns how many issue slots of the backend's relevant port group a
// µop of this class consumes. The N1 has 2 load/store pipes, 3 integer
// pipes and 2 FP/ASE pipes; capability stores consume both halves of the
// 64-bit-wide store path on Morello (§2.2: "store queues and buffers, sized
// for 64-bit operations, become bottlenecks when handling 128-bit
// capability stores"), which we model as double store-port occupancy.
func (c Class) Ports() float64 {
	switch c {
	case StoreCap:
		return 2
	case LoadCap:
		return 1.5 // two 64-bit beats through one pipe, overlapped
	default:
		return 1
	}
}
