package loader

import (
	"testing"

	"cherisim/internal/abi"
)

func sample() Program {
	return Program{
		Name: "t", TextBytes: 1 << 20, RodataBytes: 256 << 10, PtrRodataFrac: 0.4,
		DataBytes: 128 << 10, PtrDataFrac: 0.3, BssBytes: 64 << 10,
		GotEntries: 2000, DynRelocs: 400, DebugBytes: 2 << 20,
	}
}

func TestHybridBaseline(t *testing.T) {
	s := Link(sample(), abi.Hybrid)
	if s[".note.cheri"] != 0 || s[".data.rel.ro"] != 0 {
		t.Error("hybrid binary has CHERI-only sections")
	}
	if s[".got+.got.plt"] != 2000*8 {
		t.Errorf("GOT = %d", s[".got+.got.plt"])
	}
	if s[".rela.dyn"] != 400*relaEntryBytes {
		t.Errorf("rela.dyn = %d", s[".rela.dyn"])
	}
}

func TestPurecapSectionShifts(t *testing.T) {
	p := sample()
	hy := Link(p, abi.Hybrid)
	pc := Link(p, abi.Purecap)

	// .text grows ~10 %.
	if r := Ratio(".text", pc, hy); r < 1.05 || r > 1.15 {
		t.Errorf(".text ratio = %.3f", r)
	}
	// .rodata shrinks (pointer tables move to .data.rel.ro).
	if r := Ratio(".rodata", pc, hy); r >= 1.0 {
		t.Errorf(".rodata ratio = %.3f, want < 1", r)
	}
	// GOT doubles.
	if r := Ratio(".got+.got.plt", pc, hy); r != 2.0 {
		t.Errorf("GOT ratio = %.3f", r)
	}
	// .rela.dyn explodes by tens of x.
	if r := Ratio(".rela.dyn", pc, hy); r < 20 {
		t.Errorf(".rela.dyn ratio = %.1f, want large", r)
	}
	// CHERI-only sections appear.
	if pc[".note.cheri"] == 0 || pc[".data.rel.ro"] == 0 {
		t.Error("purecap missing CHERI sections")
	}
}

func TestBenchmarkMatchesPurecapLayout(t *testing.T) {
	// The benchmark ABI keeps purecap's memory layout; sections barely
	// differ (the paper notes only a minor .got difference).
	p := sample()
	pc := Link(p, abi.Purecap)
	bm := Link(p, abi.Benchmark)
	for _, sec := range SectionOrder {
		if pc[sec] != bm[sec] {
			t.Errorf("%s differs: purecap %d benchmark %d", sec, pc[sec], bm[sec])
		}
	}
}

func TestTotalGrowthModest(t *testing.T) {
	// The paper: ~5 % total binary growth despite .rela.dyn's explosion.
	for _, p := range TypicalPrograms() {
		hy := Link(p, abi.Hybrid).Total()
		pc := Link(p, abi.Purecap).Total()
		growth := float64(pc)/float64(hy) - 1
		if growth < 0 || growth > 0.30 {
			t.Errorf("%s: total growth %.1f%%, want modest", p.Name, growth*100)
		}
	}
}

func TestMedianRatiosFigure2Shapes(t *testing.T) {
	med, abs, err := MedianRatios(abi.Purecap)
	if err != nil {
		t.Fatal(err)
	}
	if med[".rela.dyn"] < 20 {
		t.Errorf(".rela.dyn median ratio = %.1f, paper reports ~85x", med[".rela.dyn"])
	}
	if med[".rodata"] >= 1.0 {
		t.Errorf(".rodata median ratio = %.2f, paper reports ~0.81", med[".rodata"])
	}
	if med[".text"] < 1.02 || med[".text"] > 1.2 {
		t.Errorf(".text median ratio = %.2f, paper reports ~1.1", med[".text"])
	}
	if med["total"] < 1.0 || med["total"] > 1.25 {
		t.Errorf("total median ratio = %.2f, paper reports ~1.05", med["total"])
	}
	if abs[".note.cheri"] == 0 {
		t.Error("absolute .note.cheri missing")
	}
	if _, _, err := MedianRatios(abi.Hybrid); err == nil {
		t.Error("hybrid ratios accepted")
	}
}
