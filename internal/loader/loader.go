// Package loader models the static-link/ELF layout consequences of the
// three ABIs, reproducing the paper's Figure 2 (program-section sizes
// normalized to hybrid). The model works from first principles on a
// program description:
//
//   - .text grows ~10 % under the purecap ABIs from capability-manipulation
//     instructions and wider literal pools;
//   - every global pointer (GOT entry, vtable slot, relocated data pointer)
//     doubles from 8 to 16 bytes;
//   - each capability-sized pointer in the image needs a dynamic
//     relocation record so the runtime linker can rebuild its tagged
//     capability at load time — CheriBSD's __cap_relocs/R_MORELLO_RELATIVE
//     machinery — which is why .rela.dyn explodes (~85x in the paper);
//   - read-only data that hybrid keeps in .rodata moves to .data.rel.ro
//     when it contains capabilities (they must be written at startup),
//     shrinking .rodata (~-19 % in the paper);
//   - a .note.cheri section appears, and capability alignment pads .data.
package loader

import (
	"fmt"
	"sort"

	"cherisim/internal/abi"
)

// Program describes the link-relevant shape of one benchmark binary.
type Program struct {
	Name string
	// TextBytes is the hybrid machine-code size.
	TextBytes uint64
	// RodataBytes is read-only data, of which PtrRodataFrac is pointer
	// tables (vtables, string tables, dispatch tables).
	RodataBytes   uint64
	PtrRodataFrac float64
	// DataBytes is initialised writable data, of which PtrDataFrac is
	// pointers.
	DataBytes   uint64
	PtrDataFrac float64
	// BssBytes is zero-initialised data.
	BssBytes uint64
	// GotEntries counts global-offset-table slots.
	GotEntries uint64
	// DynRelocs counts the hybrid binary's dynamic relocations.
	DynRelocs uint64
	// DebugBytes is DWARF and symbol data.
	DebugBytes uint64
}

// SectionSizes is a binary's per-section byte sizes under one ABI.
type SectionSizes map[string]uint64

// Section names reported by Figure 2.
var SectionOrder = []string{
	".text", ".rodata", ".data", ".data.rel.ro", ".bss",
	".got+.got.plt", ".rela.dyn", ".note.cheri", ".debug", ".others",
}

const (
	relaEntryBytes    = 24 // Elf64_Rela
	capRelocBytes     = 24 // R_MORELLO_RELATIVE fragment per image capability
	noteCheriBytes    = 64
	othersBytesHybrid = 4096
)

// Link computes the section sizes of prog under ABI a.
func Link(prog Program, a abi.ABI) SectionSizes {
	s := SectionSizes{}
	ptrGrow := a.PointerSize() - 8 // 0 for hybrid, 8 for purecap ABIs

	s[".text"] = uint64(float64(prog.TextBytes) * a.CodeSizeFactor())

	ptrRodata := uint64(float64(prog.RodataBytes) * prog.PtrRodataFrac)
	plainRodata := prog.RodataBytes - ptrRodata
	ptrData := uint64(float64(prog.DataBytes) * prog.PtrDataFrac)

	if a.PointersAreCapabilities() {
		// Pointer-bearing read-only data must be writable at startup so
		// the runtime linker can install tagged capabilities: it moves to
		// .data.rel.ro, doubled to capability width.
		s[".rodata"] = plainRodata
		s[".data.rel.ro"] = ptrRodata / 8 * a.PointerSize()
		// Writable data: pointer fields double, plus alignment padding.
		s[".data"] = prog.DataBytes + ptrData/8*ptrGrow + ptrData/16
		s[".bss"] = prog.BssBytes + uint64(float64(prog.BssBytes)*0.08)
		s[".got+.got.plt"] = prog.GotEntries * a.PointerSize()
		// One relocation per capability in the image: GOT slots, moved
		// rodata pointers, data pointers, plus the hybrid set.
		caps := prog.GotEntries + ptrRodata/8 + ptrData/8
		s[".rela.dyn"] = prog.DynRelocs*relaEntryBytes + caps*capRelocBytes
		s[".note.cheri"] = noteCheriBytes
		s[".debug"] = prog.DebugBytes + uint64(float64(prog.DebugBytes)*0.09)
		s[".others"] = othersBytesHybrid + othersBytesHybrid/8
	} else {
		s[".rodata"] = prog.RodataBytes
		s[".data.rel.ro"] = 0
		s[".data"] = prog.DataBytes
		s[".bss"] = prog.BssBytes
		s[".got+.got.plt"] = prog.GotEntries * 8
		s[".rela.dyn"] = prog.DynRelocs * relaEntryBytes
		s[".note.cheri"] = 0
		s[".debug"] = prog.DebugBytes
		s[".others"] = othersBytesHybrid
	}
	return s
}

// Total returns the summed image size.
func (s SectionSizes) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// Ratio returns section sz relative to base, or 0 when base lacks it.
func Ratio(sec string, s, base SectionSizes) float64 {
	if base[sec] == 0 {
		return 0
	}
	return float64(s[sec]) / float64(base[sec])
}

// TypicalPrograms returns representative Program descriptions for the
// paper's benchmark set, with pointer fractions reflecting each program's
// character (used by the Figure 2 regenerator; medians across these match
// the paper's reported medians).
func TypicalPrograms() []Program {
	return []Program{
		{Name: "520.omnetpp_r", TextBytes: 3 << 20, RodataBytes: 600 << 10, PtrRodataFrac: 0.45, DataBytes: 220 << 10, PtrDataFrac: 0.40, BssBytes: 180 << 10, GotEntries: 5200, DynRelocs: 900, DebugBytes: 9 << 20},
		{Name: "523.xalancbmk_r", TextBytes: 6 << 20, RodataBytes: 1200 << 10, PtrRodataFrac: 0.55, DataBytes: 300 << 10, PtrDataFrac: 0.45, BssBytes: 120 << 10, GotEntries: 9500, DynRelocs: 1400, DebugBytes: 18 << 20},
		{Name: "531.deepsjeng_r", TextBytes: 420 << 10, RodataBytes: 180 << 10, PtrRodataFrac: 0.10, DataBytes: 900 << 10, PtrDataFrac: 0.05, BssBytes: 1 << 20, GotEntries: 420, DynRelocs: 150, DebugBytes: 1500 << 10},
		{Name: "541.leela_r", TextBytes: 900 << 10, RodataBytes: 260 << 10, PtrRodataFrac: 0.25, DataBytes: 120 << 10, PtrDataFrac: 0.20, BssBytes: 300 << 10, GotEntries: 1100, DynRelocs: 260, DebugBytes: 3 << 20},
		{Name: "557.xz_r", TextBytes: 500 << 10, RodataBytes: 150 << 10, PtrRodataFrac: 0.12, DataBytes: 60 << 10, PtrDataFrac: 0.15, BssBytes: 80 << 10, GotEntries: 520, DynRelocs: 170, DebugBytes: 1400 << 10},
		{Name: "519.lbm_r", TextBytes: 140 << 10, RodataBytes: 30 << 10, PtrRodataFrac: 0.05, DataBytes: 20 << 10, PtrDataFrac: 0.05, BssBytes: 40 << 10, GotEntries: 160, DynRelocs: 60, DebugBytes: 300 << 10},
		{Name: "510.parest_r", TextBytes: 7 << 20, RodataBytes: 900 << 10, PtrRodataFrac: 0.35, DataBytes: 200 << 10, PtrDataFrac: 0.25, BssBytes: 150 << 10, GotEntries: 7800, DynRelocs: 1100, DebugBytes: 25 << 20},
		{Name: "544.nab_r", TextBytes: 380 << 10, RodataBytes: 90 << 10, PtrRodataFrac: 0.08, DataBytes: 70 << 10, PtrDataFrac: 0.10, BssBytes: 110 << 10, GotEntries: 380, DynRelocs: 120, DebugBytes: 1100 << 10},
		{Name: "sqlite", TextBytes: 1500 << 10, RodataBytes: 420 << 10, PtrRodataFrac: 0.30, DataBytes: 90 << 10, PtrDataFrac: 0.35, BssBytes: 60 << 10, GotEntries: 2100, DynRelocs: 420, DebugBytes: 5 << 20},
		{Name: "quickjs", TextBytes: 1300 << 10, RodataBytes: 520 << 10, PtrRodataFrac: 0.40, DataBytes: 110 << 10, PtrDataFrac: 0.45, BssBytes: 70 << 10, GotEntries: 1900, DynRelocs: 380, DebugBytes: 8 << 20},
		{Name: "llama", TextBytes: 2200 << 10, RodataBytes: 380 << 10, PtrRodataFrac: 0.15, DataBytes: 130 << 10, PtrDataFrac: 0.15, BssBytes: 90 << 10, GotEntries: 1500, DynRelocs: 300, DebugBytes: 6 << 20},
	}
}

// MedianRatios links every typical program under both purecap ABIs and
// returns the per-section median size ratio versus hybrid, plus absolute
// sizes for the sections hybrid lacks — the data behind Figure 2.
func MedianRatios(a abi.ABI) (map[string]float64, map[string]uint64, error) {
	if a == abi.Hybrid {
		return nil, nil, fmt.Errorf("loader: ratios are relative to hybrid")
	}
	ratios := map[string][]float64{}
	absolute := map[string][]uint64{}
	for _, p := range TypicalPrograms() {
		hy := Link(p, abi.Hybrid)
		cc := Link(p, a)
		for _, sec := range SectionOrder {
			if hy[sec] == 0 {
				absolute[sec] = append(absolute[sec], cc[sec])
				continue
			}
			ratios[sec] = append(ratios[sec], float64(cc[sec])/float64(hy[sec]))
		}
		ratios["total"] = append(ratios["total"], float64(cc.Total())/float64(hy.Total()))
	}
	med := map[string]float64{}
	for sec, rs := range ratios {
		sort.Float64s(rs)
		med[sec] = rs[len(rs)/2]
	}
	abs := map[string]uint64{}
	for sec, vs := range absolute {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		abs[sec] = vs[len(vs)/2]
	}
	return med, abs, nil
}
