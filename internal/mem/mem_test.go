package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"cherisim/internal/cap"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	data := []byte("hello, morello")
	m.WriteBytes(0x1000, data)
	got := m.ReadBytes(0x1000, uint64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
}

func TestReadUnpopulatedIsZero(t *testing.T) {
	m := New()
	got := m.ReadBytes(0xdead0000, 16)
	for _, b := range got {
		if b != 0 {
			t.Fatal("unpopulated memory not zero")
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	data := []byte{1, 2, 3, 4, 5, 6}
	m.WriteBytes(addr, data)
	if got := m.ReadBytes(addr, 6); !bytes.Equal(got, data) {
		t.Fatalf("cross-page round trip: got %v want %v", got, data)
	}
	if m.Populated() != 2 {
		t.Errorf("populated pages = %d, want 2", m.Populated())
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(addr, val uint64) bool {
		addr %= 1 << 40
		m := New()
		m.WriteUint(addr, val, 8)
		return m.ReadUint(addr, 8) == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintWidths(t *testing.T) {
	m := New()
	m.WriteUint(0, 0x1122334455667788, 8)
	if got := m.ReadUint(0, 4); got != 0x55667788 {
		t.Errorf("4-byte read = %#x", got)
	}
	if got := m.ReadUint(0, 2); got != 0x7788 {
		t.Errorf("2-byte read = %#x", got)
	}
	if got := m.ReadUint(0, 1); got != 0x88 {
		t.Errorf("1-byte read = %#x", got)
	}
}

func TestCapStoreLoadPreservesTag(t *testing.T) {
	m := New()
	c := cap.New(0x4000, 0x100, cap.PermsData)
	enc, tag := c.Encode()
	if err := m.WriteCap(0x8000, enc, tag); err != nil {
		t.Fatal(err)
	}
	gotEnc, gotTag, err := m.ReadCap(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if !gotTag {
		t.Fatal("tag lost through memory")
	}
	d := cap.Decode(gotEnc, gotTag)
	if d.Base() != c.Base() || d.Top() != c.Top() || d.Address() != c.Address() {
		t.Fatalf("capability corrupted: got %v want %v", d, c)
	}
}

func TestNonCapStoreClearsTag(t *testing.T) {
	m := New()
	c := cap.New(0x4000, 0x100, cap.PermsData)
	enc, tag := c.Encode()
	if err := m.WriteCap(0x8000, enc, tag); err != nil {
		t.Fatal(err)
	}
	// Overwrite one byte in the middle of the capability granule.
	m.WriteBytes(0x8007, []byte{0xff})
	_, gotTag, _ := m.ReadCap(0x8000)
	if gotTag {
		t.Fatal("non-capability store failed to clear the tag")
	}
}

func TestAdjacentStoreKeepsTag(t *testing.T) {
	m := New()
	c := cap.New(0x4000, 0x100, cap.PermsData)
	enc, tag := c.Encode()
	if err := m.WriteCap(0x8000, enc, tag); err != nil {
		t.Fatal(err)
	}
	// A store to the neighbouring granule must not disturb the tag.
	m.WriteBytes(0x8010, []byte{1, 2, 3, 4})
	if _, gotTag, _ := m.ReadCap(0x8000); !gotTag {
		t.Fatal("adjacent store cleared an unrelated tag")
	}
}

func TestUnalignedCapAccessRejected(t *testing.T) {
	m := New()
	if err := m.WriteCap(0x8004, cap.Encoded{}, true); err == nil {
		t.Error("unaligned capability store accepted")
	}
	if _, _, err := m.ReadCap(0x8004); err == nil {
		t.Error("unaligned capability load accepted")
	}
}

func TestUntaggedCapLoad(t *testing.T) {
	m := New()
	enc, _ := cap.New(0, 16, cap.PermsData).Encode()
	if err := m.WriteCap(0x1000, enc, false); err != nil {
		t.Fatal(err)
	}
	_, tag, _ := m.ReadCap(0x1000)
	if tag {
		t.Fatal("untagged store produced tagged load")
	}
}

func TestTaggedGranulesCount(t *testing.T) {
	m := New()
	enc, _ := cap.Root().Encode()
	for i := 0; i < 5; i++ {
		if err := m.WriteCap(uint64(i)*32, enc, true); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.TaggedGranules(); n != 5 {
		t.Errorf("tagged granules = %d, want 5", n)
	}
	m.WriteBytes(0, []byte{0})
	if n := m.TaggedGranules(); n != 4 {
		t.Errorf("after clearing store, tagged granules = %d, want 4", n)
	}
}

func TestTrafficCounters(t *testing.T) {
	m := New()
	m.WriteBytes(0, make([]byte, 100))
	m.ReadBytes(0, 40)
	if m.BytesWritten != 100 || m.BytesRead != 40 {
		t.Errorf("traffic = r%d/w%d, want r40/w100", m.BytesRead, m.BytesWritten)
	}
}

func TestClearTag(t *testing.T) {
	m := New()
	c := cap.New(0x4000, 64, cap.PermsData)
	enc, tag := c.Encode()
	m.WriteCap(0x4000, enc, tag)
	if !m.TagAt(0x4000) {
		t.Fatal("tag not set after WriteCap")
	}
	// Any address inside the granule clears it.
	if !m.ClearTag(0x4008) {
		t.Fatal("ClearTag missed a set tag")
	}
	if m.TagAt(0x4000) {
		t.Fatal("tag survived ClearTag")
	}
	// Data must be intact; only validity is gone.
	enc2, tag2, err := m.ReadCap(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if tag2 {
		t.Fatal("ReadCap still tagged")
	}
	if enc2 != enc {
		t.Fatal("ClearTag corrupted data bits")
	}
	// Clearing an untagged granule reports false.
	if m.ClearTag(0x4000) || m.ClearTag(0x9000) {
		t.Fatal("ClearTag reported success on untagged granule")
	}
}
