// Package mem implements the simulated physical memory of the Morello
// platform: byte-addressable storage with the out-of-band capability tag
// bits that CHERI requires (one tag per 16-byte granule). Tag behaviour
// follows the architecture: capability stores set the granule's tag,
// any overlapping non-capability store clears it, and capability loads
// return the tag alongside the data.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cherisim/internal/cap"
)

// PageSize is the backing-store granularity. It matches the 4 KiB
// translation granule used by the TLB model.
const PageSize = 4096

const tagsPerPage = PageSize / cap.TagGranule

type page struct {
	data [PageSize]byte
	tags [tagsPerPage]bool
}

// Memory is a sparse simulated physical memory. The zero value is not
// usable; create one with New.
type Memory struct {
	pages map[uint64]*page

	// lastPN/lastPage memoise the most recently touched resident page.
	// Accesses overwhelmingly stay on one page across consecutive calls, and
	// the memo turns those lookups into one compare instead of a map probe.
	// Pages are never removed, so the memo can only go stale by pointing at
	// a page that is still valid — it never fabricates residency.
	lastPN   uint64
	lastPage *page

	// BytesRead and BytesWritten accumulate raw traffic for bandwidth
	// accounting by the DRAM model.
	BytesRead    uint64
	BytesWritten uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr / PageSize
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil && create {
		p = &page{}
		m.pages[pn] = p
	}
	if p != nil {
		m.lastPN, m.lastPage = pn, p
	}
	return p
}

// Populated returns the number of resident pages (footprint in pages).
func (m *Memory) Populated() int { return len(m.pages) }

// FootprintBytes returns the resident memory footprint in bytes.
func (m *Memory) FootprintBytes() uint64 { return uint64(len(m.pages)) * PageSize }

// ReadBytes copies size bytes starting at addr into a fresh slice.
// Unpopulated memory reads as zero.
func (m *Memory) ReadBytes(addr, size uint64) []byte {
	out := make([]byte, size)
	for i := uint64(0); i < size; {
		p := m.pageFor(addr+i, false)
		off := (addr + i) % PageSize
		n := PageSize - off
		if n > size-i {
			n = size - i
		}
		if p != nil {
			copy(out[i:i+n], p.data[off:off+n])
		}
		i += n
	}
	m.BytesRead += size
	return out
}

// WriteBytes stores b at addr, clearing the tags of every granule the
// write overlaps (a non-capability store cannot forge tags).
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	size := uint64(len(b))
	for i := uint64(0); i < size; {
		p := m.pageFor(addr+i, true)
		off := (addr + i) % PageSize
		n := PageSize - off
		if n > size-i {
			n = size - i
		}
		copy(p.data[off:off+n], b[i:i+n])
		i += n
	}
	m.clearTags(addr, size)
	m.BytesWritten += size
}

// ReadUint reads a little-endian unsigned integer of size 1, 2, 4 or 8.
func (m *Memory) ReadUint(addr, size uint64) uint64 {
	off := addr % PageSize
	if off+size <= PageSize { // fast path: within one page, no allocation
		m.BytesRead += size
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		var v uint64
		for i := uint64(0); i < size; i++ {
			v |= uint64(p.data[off+i]) << (8 * i)
		}
		return v
	}
	var buf [8]byte
	copy(buf[:size], m.ReadBytes(addr, size))
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteUint writes a little-endian unsigned integer of size 1, 2, 4 or 8.
func (m *Memory) WriteUint(addr, val, size uint64) {
	off := addr % PageSize
	if off+size <= PageSize { // fast path: within one page, no allocation
		p := m.pageFor(addr, true)
		for i := uint64(0); i < size; i++ {
			p.data[off+i] = byte(val >> (8 * i))
		}
		m.clearTags(addr, size)
		m.BytesWritten += size
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	m.WriteBytes(addr, buf[:size])
}

// tagIndex returns the page and tag-slot for a 16-byte-aligned address.
func (m *Memory) tagIndex(addr uint64, create bool) (*page, int) {
	p := m.pageFor(addr, create)
	return p, int(addr%PageSize) / cap.TagGranule
}

// clearTags invalidates every tag granule overlapped by [addr, addr+size).
func (m *Memory) clearTags(addr, size uint64) {
	first := addr &^ (cap.TagGranule - 1)
	for a := first; a < addr+size; a += cap.TagGranule {
		if p, i := m.tagIndex(a, false); p != nil {
			p.tags[i] = false
		}
	}
}

// WriteCap stores a 16-byte capability image at a 16-byte-aligned address,
// setting or clearing the granule tag per the capability's validity.
func (m *Memory) WriteCap(addr uint64, e cap.Encoded, tag bool) error {
	if addr%cap.Size != 0 {
		return fmt.Errorf("mem: unaligned capability store at %#x", addr)
	}
	var buf [cap.Size]byte
	binary.LittleEndian.PutUint64(buf[0:8], e.Addr)
	binary.LittleEndian.PutUint64(buf[8:16], e.Meta)
	size := uint64(cap.Size)
	for i := uint64(0); i < size; {
		p := m.pageFor(addr+i, true)
		off := (addr + i) % PageSize
		n := size - i
		if n > PageSize-off {
			n = PageSize - off
		}
		copy(p.data[off:off+n], buf[i:i+n])
		i += n
	}
	p, idx := m.tagIndex(addr, true)
	p.tags[idx] = tag
	m.BytesWritten += cap.Size
	return nil
}

// ReadCap loads a 16-byte capability image and its tag from a 16-byte-
// aligned address.
func (m *Memory) ReadCap(addr uint64) (cap.Encoded, bool, error) {
	if addr%cap.Size != 0 {
		return cap.Encoded{}, false, fmt.Errorf("mem: unaligned capability load at %#x", addr)
	}
	b := m.ReadBytes(addr, cap.Size)
	e := cap.Encoded{
		Addr: binary.LittleEndian.Uint64(b[0:8]),
		Meta: binary.LittleEndian.Uint64(b[8:16]),
	}
	p, idx := m.tagIndex(addr, false)
	tag := p != nil && p.tags[idx]
	return e, tag, nil
}

// ClearTag invalidates the tag of the granule containing addr, leaving the
// data intact — the effect of a tag-bit upset or tag-cache line corruption
// (and of the architectural CLRTAG on an in-memory capability). It reports
// whether a set tag was actually cleared.
func (m *Memory) ClearTag(addr uint64) bool {
	p, idx := m.tagIndex(addr&^(cap.TagGranule-1), false)
	if p == nil || !p.tags[idx] {
		return false
	}
	p.tags[idx] = false
	return true
}

// TagAt reports the tag of the granule containing addr.
func (m *Memory) TagAt(addr uint64) bool {
	p, idx := m.tagIndex(addr&^(cap.TagGranule-1), false)
	return p != nil && p.tags[idx]
}

// ForEachTaggedGranule invokes fn for every granule whose tag is set, in
// unspecified page order (deterministic within a page). It is the
// revocation sweeper's scan primitive.
func (m *Memory) ForEachTaggedGranule(fn func(addr uint64)) {
	// Iterate pages in sorted order for determinism.
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		p := m.pages[pn]
		for i, tagged := range p.tags {
			if tagged {
				fn(pn*PageSize + uint64(i)*cap.TagGranule)
			}
		}
	}
}

// TaggedGranules counts set tags across memory (capability density probe,
// used by revocation-sweep style analyses).
func (m *Memory) TaggedGranules() (n uint64) {
	for _, p := range m.pages {
		for _, t := range p.tags {
			if t {
				n++
			}
		}
	}
	return n
}
