package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input not zero")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input not rejected")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	inv := []float64{8, 6, 4, 2}
	if r := Pearson(x, inv); math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("constant series r = %v", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		// Constrain magnitudes: quick generates values near ±MaxFloat64
		// whose squares overflow to +Inf, which is a float limitation,
		// not a property of the estimator.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		x := []float64{clamp(a), clamp(b), clamp(c)}
		y := []float64{clamp(d), clamp(e), clamp(g)}
		r := Pearson(x, y)
		return r >= -1.0000001 && r <= 1.0000001 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelateMatrix(t *testing.T) {
	m, err := Correlate(
		[]string{"a", "b", "c"},
		[][]float64{{1, 2, 3}, {2, 4, 6}, {3, 1, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.R[0][0] != 1 || m.R[1][1] != 1 {
		t.Error("diagonal not 1")
	}
	if math.Abs(m.R[0][1]-1) > 1e-12 || m.R[0][1] != m.R[1][0] {
		t.Errorf("matrix not symmetric/correct: %v", m.R)
	}
}

func TestCorrelateValidation(t *testing.T) {
	if _, err := Correlate([]string{"a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("label/series mismatch accepted")
	}
	if _, err := Correlate([]string{"a", "b"}, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestStrongPairs(t *testing.T) {
	m, _ := Correlate(
		[]string{"x", "y", "z"},
		[][]float64{{1, 2, 3, 4}, {2, 4, 6, 8}, {4, 1, 5, 2}},
	)
	pairs := m.StrongPairs(0.95)
	if len(pairs) != 1 || !strings.Contains(pairs[0], "x~y") {
		t.Errorf("strong pairs = %v", pairs)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := Correlate([]string{"left", "right"}, [][]float64{{1, 2}, {2, 1}})
	s := m.String()
	if !strings.Contains(s, "left") || !strings.Contains(s, "+1.00") {
		t.Errorf("render:\n%s", s)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("normalize = %v", got)
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Error("zero base not handled")
	}
}

// TestTruncateRuneSafe pins the UTF-8 fix: truncating a multi-byte label
// must cut at a rune boundary, not a byte offset (pre-fix, byte slicing
// garbled the Figure 7 matrix header for non-ASCII workload names).
func TestTruncateRuneSafe(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"sqlite", 6, "sqlite"},
		{"omnetpp", 6, "omnetp"},
		{"überbench", 6, "überbe"}, // ü is 2 bytes; byte slicing kept only 5 chars
		{"µop-χase", 6, "µop-χa"},  // mixed multi-byte
		{"日本語ベンチ", 3, "日本語"},       // 3-byte runes; byte slicing cut mid-rune
		{"héllo", 5, "héllo"},      // 6 bytes, 5 runes: no truncation needed
		{"", 4, ""},
	}
	for _, tc := range cases {
		got := truncate(tc.in, tc.n)
		if got != tc.want {
			t.Errorf("truncate(%q, %d) = %q, want %q", tc.in, tc.n, got, tc.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("truncate(%q, %d) produced invalid UTF-8 %q", tc.in, tc.n, got)
		}
	}
}

// TestMatrixStringUTF8Labels renders a matrix with multi-byte labels and
// asserts the header stays valid UTF-8 end to end.
func TestMatrixStringUTF8Labels(t *testing.T) {
	m, err := Correlate([]string{"überbench-α", "日本語ベンチマーク"}, [][]float64{
		{1, 2, 3}, {2, 4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if !utf8.ValidString(s) {
		t.Fatalf("matrix rendering contains invalid UTF-8:\n%s", s)
	}
	if !strings.Contains(s, "überbe") || !strings.Contains(s, "日本語") {
		t.Errorf("truncated headers missing:\n%s", s)
	}
}
