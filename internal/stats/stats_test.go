package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input not zero")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("negative input not rejected")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	inv := []float64{8, 6, 4, 2}
	if r := Pearson(x, inv); math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("constant series r = %v", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		// Constrain magnitudes: quick generates values near ±MaxFloat64
		// whose squares overflow to +Inf, which is a float limitation,
		// not a property of the estimator.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		x := []float64{clamp(a), clamp(b), clamp(c)}
		y := []float64{clamp(d), clamp(e), clamp(g)}
		r := Pearson(x, y)
		return r >= -1.0000001 && r <= 1.0000001 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelateMatrix(t *testing.T) {
	m, err := Correlate(
		[]string{"a", "b", "c"},
		[][]float64{{1, 2, 3}, {2, 4, 6}, {3, 1, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.R[0][0] != 1 || m.R[1][1] != 1 {
		t.Error("diagonal not 1")
	}
	if math.Abs(m.R[0][1]-1) > 1e-12 || m.R[0][1] != m.R[1][0] {
		t.Errorf("matrix not symmetric/correct: %v", m.R)
	}
}

func TestCorrelateValidation(t *testing.T) {
	if _, err := Correlate([]string{"a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("label/series mismatch accepted")
	}
	if _, err := Correlate([]string{"a", "b"}, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestStrongPairs(t *testing.T) {
	m, _ := Correlate(
		[]string{"x", "y", "z"},
		[][]float64{{1, 2, 3, 4}, {2, 4, 6, 8}, {4, 1, 5, 2}},
	)
	pairs := m.StrongPairs(0.95)
	if len(pairs) != 1 || !strings.Contains(pairs[0], "x~y") {
		t.Errorf("strong pairs = %v", pairs)
	}
}

func TestMatrixString(t *testing.T) {
	m, _ := Correlate([]string{"left", "right"}, [][]float64{{1, 2}, {2, 1}})
	s := m.String()
	if !strings.Contains(s, "left") || !strings.Contains(s, "+1.00") {
		t.Errorf("render:\n%s", s)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("normalize = %v", got)
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Error("zero base not handled")
	}
}
