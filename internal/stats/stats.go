// Package stats provides the statistical helpers the experiment harness
// uses: means, standard deviation, normalization, geometric means, and the
// Pearson correlation matrix behind the paper's Figure 7.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or 0 when either is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrMatrix holds a labelled correlation matrix (Figure 7).
type CorrMatrix struct {
	Labels []string
	R      [][]float64
}

// Correlate computes the pairwise Pearson matrix of the named series.
// Every series must have the same sample count.
func Correlate(labels []string, series [][]float64) (*CorrMatrix, error) {
	if len(labels) != len(series) {
		return nil, fmt.Errorf("stats: %d labels for %d series", len(labels), len(series))
	}
	n := -1
	for i, s := range series {
		if n == -1 {
			n = len(s)
		}
		if len(s) != n {
			return nil, fmt.Errorf("stats: series %q has %d samples, want %d", labels[i], len(s), n)
		}
	}
	m := &CorrMatrix{Labels: append([]string(nil), labels...)}
	m.R = make([][]float64, len(series))
	for i := range series {
		m.R[i] = make([]float64, len(series))
		for j := range series {
			if i == j {
				m.R[i][j] = 1
				continue
			}
			m.R[i][j] = Pearson(series[i], series[j])
		}
	}
	return m, nil
}

// StrongPairs returns the label pairs with |r| >= threshold, excluding the
// diagonal, each pair reported once.
func (m *CorrMatrix) StrongPairs(threshold float64) []string {
	var out []string
	for i := range m.R {
		for j := i + 1; j < len(m.R); j++ {
			if math.Abs(m.R[i][j]) >= threshold {
				out = append(out, fmt.Sprintf("%s~%s r=%+.2f", m.Labels[i], m.Labels[j], m.R[i][j]))
			}
		}
	}
	return out
}

// String renders the matrix as a fixed-width table.
func (m *CorrMatrix) String() string {
	var b strings.Builder
	w := 0
	for _, l := range m.Labels {
		if len(l) > w {
			w = len(l)
		}
	}
	fmt.Fprintf(&b, "%*s", w+1, "")
	for _, l := range m.Labels {
		fmt.Fprintf(&b, " %6s", truncate(l, 6))
	}
	b.WriteByte('\n')
	for i, row := range m.R {
		fmt.Fprintf(&b, "%-*s ", w+1, m.Labels[i])
		for _, r := range row {
			fmt.Fprintf(&b, " %+5.2f", r)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// truncate shortens s to at most n characters (runes, not bytes): slicing
// byte offsets would cut a multi-byte UTF-8 workload label mid-sequence and
// garble the Figure 7 matrix header.
func truncate(s string, n int) string {
	if len(s) <= n { // fast path: byte length bounds rune length
		return s
	}
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n])
}

// Normalize divides each value by base, returning 0 where base is 0.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}
