package pmu

import "fmt"

// Slots is the number of simultaneously programmable counters on the
// Morello PMU (§3.2: "the platform only provides up to six configurable
// PMUs to be used at any time").
const Slots = 6

// CounterFile models the architectural counter file: a fixed cycle counter
// plus Slots programmable event counters. Reading an unprogrammed event is
// an error — this is what forces multiplexed collection across runs.
type CounterFile struct {
	programmed []Event
	values     map[Event]uint64
	cycles     uint64
}

// NewCounterFile programs a counter file with up to Slots events.
// CPU_CYCLES is always available through the fixed counter and does not
// consume a slot.
func NewCounterFile(events ...Event) (*CounterFile, error) {
	var prog []Event
	seen := map[Event]bool{}
	for _, e := range events {
		if e == CPU_CYCLES || seen[e] {
			continue
		}
		seen[e] = true
		prog = append(prog, e)
	}
	if len(prog) > Slots {
		return nil, fmt.Errorf("pmu: %d events requested, only %d programmable slots", len(prog), Slots)
	}
	return &CounterFile{programmed: prog, values: make(map[Event]uint64)}, nil
}

// Capture latches the programmed events (and cycles) from the simulator's
// ground-truth counters, as if the counters had been running during the
// measured interval.
func (f *CounterFile) Capture(truth *Counters) {
	f.cycles = truth.Get(CPU_CYCLES)
	for _, e := range f.programmed {
		f.values[e] = truth.Get(e)
	}
}

// Read returns the captured value of e, failing for unprogrammed events.
func (f *CounterFile) Read(e Event) (uint64, error) {
	if e == CPU_CYCLES {
		return f.cycles, nil
	}
	v, ok := f.values[e]
	if !ok {
		return 0, fmt.Errorf("pmu: event %s not programmed in this run", e)
	}
	return v, nil
}

// Programmed returns the programmed event list.
func (f *CounterFile) Programmed() []Event { return append([]Event(nil), f.programmed...) }

// Plan is a multiplexed collection schedule: one run per group, each group
// fitting in the counter file.
type Plan [][]Event

// BuildPlan splits events into the minimum number of run groups of at most
// Slots events each (CPU_CYCLES excluded; it is always collected). The
// resulting plan is deterministic: event order is preserved.
func BuildPlan(events []Event) Plan {
	var uniq []Event
	seen := map[Event]bool{}
	for _, e := range events {
		if e == CPU_CYCLES || seen[e] {
			continue
		}
		seen[e] = true
		uniq = append(uniq, e)
	}
	var plan Plan
	for len(uniq) > 0 {
		n := Slots
		if len(uniq) < n {
			n = len(uniq)
		}
		plan = append(plan, uniq[:n:n])
		uniq = uniq[n:]
	}
	return plan
}

// Runs returns the number of benchmark executions the plan requires.
func (p Plan) Runs() int { return len(p) }

// Events returns every event in the plan, flattened.
func (p Plan) Events() []Event {
	var out []Event
	for _, g := range p {
		out = append(out, g...)
	}
	return out
}
