package pmu

import (
	"testing"
	"testing/quick"
)

func TestEventNamesUnique(t *testing.T) {
	seen := map[string]Event{}
	for e := Event(0); e < NumEvents; e++ {
		name := e.String()
		if name == "" {
			t.Fatalf("event %d unnamed", e)
		}
		if prev, ok := seen[name]; ok {
			t.Fatalf("duplicate name %q for %d and %d", name, prev, e)
		}
		seen[name] = e
	}
}

func TestParseEvent(t *testing.T) {
	e, err := ParseEvent("CAP_MEM_ACCESS_RD")
	if err != nil || e != CAP_MEM_ACCESS_RD {
		t.Fatalf("parse = %v, %v", e, err)
	}
	if _, err := ParseEvent("NOT_AN_EVENT"); err == nil {
		t.Fatal("bogus event parsed")
	}
}

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.Inc(CPU_CYCLES)
	c.Add(INST_RETIRED, 10)
	if c.Get(CPU_CYCLES) != 1 || c.Get(INST_RETIRED) != 10 {
		t.Fatal("counter arithmetic wrong")
	}
	if c.Ratio(INST_RETIRED, CPU_CYCLES) != 10 {
		t.Fatal("ratio wrong")
	}
	if c.Ratio(CPU_CYCLES, DTLB_WALK) != 0 {
		t.Fatal("zero-denominator ratio not zero")
	}
	if c.Sum(CPU_CYCLES, INST_RETIRED) != 11 {
		t.Fatal("sum wrong")
	}
}

func TestMerge(t *testing.T) {
	var a, b Counters
	a.Add(LD_SPEC, 5)
	b.Add(LD_SPEC, 7)
	b.Add(ST_SPEC, 2)
	a.Merge(&b)
	if a.Get(LD_SPEC) != 12 || a.Get(ST_SPEC) != 2 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestCounterFileSlotLimit(t *testing.T) {
	_, err := NewCounterFile(INST_RETIRED, LD_SPEC, ST_SPEC, DP_SPEC, ASE_SPEC, VFP_SPEC, BR_RETIRED)
	if err == nil {
		t.Fatal("seven events accepted into six slots")
	}
	f, err := NewCounterFile(CPU_CYCLES, INST_RETIRED, LD_SPEC, ST_SPEC, DP_SPEC, ASE_SPEC, VFP_SPEC)
	if err != nil {
		t.Fatalf("cycles must not consume a slot: %v", err)
	}
	if len(f.Programmed()) != 6 {
		t.Fatalf("programmed = %v", f.Programmed())
	}
}

func TestCounterFileCaptureAndRead(t *testing.T) {
	var truth Counters
	truth.Add(CPU_CYCLES, 1000)
	truth.Add(INST_RETIRED, 1500)
	truth.Add(DTLB_WALK, 3)

	f, err := NewCounterFile(INST_RETIRED)
	if err != nil {
		t.Fatal(err)
	}
	f.Capture(&truth)
	if v, err := f.Read(CPU_CYCLES); err != nil || v != 1000 {
		t.Fatalf("cycles = %d, %v", v, err)
	}
	if v, err := f.Read(INST_RETIRED); err != nil || v != 1500 {
		t.Fatalf("inst = %d, %v", v, err)
	}
	if _, err := f.Read(DTLB_WALK); err == nil {
		t.Fatal("unprogrammed event readable")
	}
}

func TestBuildPlanCoversAllEventsOnce(t *testing.T) {
	// Property: every requested event (except CPU_CYCLES) appears in exactly
	// one group, and no group exceeds the slot count.
	f := func(seed uint8) bool {
		n := int(seed%uint8(NumEvents)) + 1
		var req []Event
		for i := 0; i < n; i++ {
			req = append(req, Event(i))
		}
		plan := BuildPlan(req)
		seen := map[Event]int{}
		for _, g := range plan {
			if len(g) > Slots {
				return false
			}
			for _, e := range g {
				seen[e]++
			}
		}
		for _, e := range req {
			if e == CPU_CYCLES {
				continue
			}
			if seen[e] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFullEventSetPlanMatchesPaperRunCount(t *testing.T) {
	// The paper collects its event set in nine runs of six counters. Our
	// full extended set spans NumEvents-1 programmable events.
	plan := BuildPlan(AllEvents())
	want := (int(NumEvents) - 1 + Slots - 1) / Slots
	if plan.Runs() != want {
		t.Errorf("runs = %d, want %d", plan.Runs(), want)
	}
	if len(plan.Events()) != int(NumEvents)-1 {
		t.Errorf("plan events = %d", len(plan.Events()))
	}
}

func TestBuildPlanDeduplicates(t *testing.T) {
	plan := BuildPlan([]Event{LD_SPEC, LD_SPEC, ST_SPEC, CPU_CYCLES})
	if plan.Runs() != 1 || len(plan[0]) != 2 {
		t.Fatalf("plan = %v", plan)
	}
}
