// Package pmu defines the performance monitoring unit of the simulated
// Morello core: the Neoverse N1 event set extended with Morello's
// CHERI-specific events (CAP_MEM_ACCESS_*, MEM_ACCESS_*_CTAG), a counter
// file with the platform's six programmable slots plus the fixed cycle
// counter, and the multiplexed collection planning that the paper's
// pmcstat-based methodology uses to gather more than six events across
// repeated runs (§3.2: "benchmarks are executed multiple times (nine runs
// in this work) to collect a larger set of events").
package pmu

import "fmt"

// Event identifies one countable microarchitectural event.
type Event uint8

// The event set. Names match the Arm PMU mnemonics used in the paper's
// Table 1 where the event exists on real hardware; events suffixed with
// "_CYCLES" beyond STALL_FRONTEND/STALL_BACKEND are model-resolution
// refinements that hardware exposes through derived methodologies.
const (
	CPU_CYCLES Event = iota
	INST_RETIRED
	INST_SPEC
	STALL_FRONTEND
	STALL_BACKEND
	STALL_BACKEND_MEM
	BR_RETIRED
	BR_MIS_PRED_RETIRED

	L1I_CACHE
	L1I_CACHE_REFILL
	L1D_CACHE
	L1D_CACHE_REFILL
	L2D_CACHE
	L2D_CACHE_REFILL
	LL_CACHE_RD
	LL_CACHE_MISS_RD

	L1I_TLB
	L1D_TLB
	ITLB_WALK
	DTLB_WALK

	LD_SPEC
	ST_SPEC
	DP_SPEC
	ASE_SPEC
	VFP_SPEC
	CRYPTO_SPEC
	BR_IMMED_SPEC
	BR_INDIRECT_SPEC
	BR_RETURN_SPEC

	MEM_ACCESS_RD
	MEM_ACCESS_WR
	CAP_MEM_ACCESS_RD
	CAP_MEM_ACCESS_WR
	MEM_ACCESS_RD_CTAG
	MEM_ACCESS_WR_CTAG

	// Model-resolution stall attribution used by the top-down level-2
	// decomposition (Table 4's Memory/Core and L1/L2/ExtMem rows).
	STALL_BACKEND_MEM_L1D
	STALL_BACKEND_MEM_L2D
	STALL_BACKEND_MEM_EXT
	STALL_BACKEND_CORE
	BAD_SPEC_CYCLES
	PCC_STALL_CYCLES

	NumEvents
)

var eventNames = [NumEvents]string{
	"CPU_CYCLES", "INST_RETIRED", "INST_SPEC", "STALL_FRONTEND", "STALL_BACKEND",
	"STALL_BACKEND_MEM", "BR_RETIRED", "BR_MIS_PRED_RETIRED",
	"L1I_CACHE", "L1I_CACHE_REFILL", "L1D_CACHE", "L1D_CACHE_REFILL",
	"L2D_CACHE", "L2D_CACHE_REFILL", "LL_CACHE_RD", "LL_CACHE_MISS_RD",
	"L1I_TLB", "L1D_TLB", "ITLB_WALK", "DTLB_WALK",
	"LD_SPEC", "ST_SPEC", "DP_SPEC", "ASE_SPEC", "VFP_SPEC", "CRYPTO_SPEC",
	"BR_IMMED_SPEC", "BR_INDIRECT_SPEC", "BR_RETURN_SPEC",
	"MEM_ACCESS_RD", "MEM_ACCESS_WR", "CAP_MEM_ACCESS_RD", "CAP_MEM_ACCESS_WR",
	"MEM_ACCESS_RD_CTAG", "MEM_ACCESS_WR_CTAG",
	"STALL_BACKEND_MEM_L1D", "STALL_BACKEND_MEM_L2D", "STALL_BACKEND_MEM_EXT",
	"STALL_BACKEND_CORE", "BAD_SPEC_CYCLES", "PCC_STALL_CYCLES",
}

// String returns the PMU mnemonic.
func (e Event) String() string {
	if e >= NumEvents {
		return fmt.Sprintf("EVENT_%d", uint8(e))
	}
	return eventNames[e]
}

// ParseEvent resolves a mnemonic to its Event, for the pmcstat CLI.
func ParseEvent(name string) (Event, error) {
	for i := Event(0); i < NumEvents; i++ {
		if eventNames[i] == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("pmu: unknown event %q", name)
}

// AllEvents returns every defined event, in declaration order.
func AllEvents() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}

// SpecEvents is the *_SPEC family summed by the paper's Retiring formula.
var SpecEvents = []Event{
	LD_SPEC, ST_SPEC, DP_SPEC, ASE_SPEC, VFP_SPEC, CRYPTO_SPEC,
	BR_IMMED_SPEC, BR_INDIRECT_SPEC, BR_RETURN_SPEC,
}

// Counters is a full ground-truth event file maintained by the simulator.
type Counters [NumEvents]uint64

// Add increments event e by n.
func (c *Counters) Add(e Event, n uint64) { c[e] += n }

// Inc increments event e by one.
func (c *Counters) Inc(e Event) { c[e]++ }

// Get returns the count of e.
func (c *Counters) Get(e Event) uint64 { return c[e] }

// Sum returns the total across the given events.
func (c *Counters) Sum(events ...Event) (s uint64) {
	for _, e := range events {
		s += c[e]
	}
	return s
}

// Merge adds every counter of other into c. Used to combine multiplexed
// collection runs into one logical sample set.
func (c *Counters) Merge(other *Counters) {
	for i := range c {
		c[i] += other[i]
	}
}

// Ratio returns c[num]/c[den], or 0 when the denominator is zero.
func (c *Counters) Ratio(num, den Event) float64 {
	if c[den] == 0 {
		return 0
	}
	return float64(c[num]) / float64(c[den])
}
