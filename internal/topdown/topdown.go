// Package topdown implements the hierarchical top-down performance
// analysis methodology (Yasin 2014; Arm Neoverse N1 performance analysis
// methodology) as the paper applies it to Morello in §3.1 and §4.4: the
// level-1 decomposition of pipeline activity into Retiring, Bad
// Speculation, Frontend Bound and Backend Bound, and the level-2 drill-down
// of Backend Bound into Memory Bound (split L1 / L2 / external memory) and
// Core Bound.
package topdown

import (
	"fmt"
	"strings"

	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
)

// Breakdown is the full two-level decomposition for one run, with every
// value expressed as a fraction of the analysis basis (level-1 categories
// follow the paper's Table 1 formulas; level-2 splits are fractions of
// total cycles).
type Breakdown struct {
	Retiring      float64
	BadSpec       float64
	FrontendBound float64
	BackendBound  float64

	// Level 2: Backend Bound = MemoryBound + CoreBound.
	MemoryBound float64
	CoreBound   float64

	// Level 3: MemoryBound = L1Bound + L2Bound + ExtMemBound.
	L1Bound     float64
	L2Bound     float64
	ExtMemBound float64

	// Frontend refinement: the share of frontend stalls caused by
	// Morello's PCC-bounds-unaware predictor (zero under the benchmark
	// ABI or a capability-aware predictor).
	PCCStallShare float64
}

// Analyze computes the breakdown from a counter file.
func Analyze(c *pmu.Counters) Breakdown {
	m := metrics.Compute(c)
	b := Breakdown{
		Retiring:      m.Retiring,
		BadSpec:       m.BadSpec,
		FrontendBound: m.FrontendBound,
		BackendBound:  m.BackendBound,
	}
	cyc := float64(c.Get(pmu.CPU_CYCLES))
	if cyc == 0 {
		return b
	}
	b.MemoryBound = float64(c.Get(pmu.STALL_BACKEND_MEM)) / cyc
	b.CoreBound = float64(c.Get(pmu.STALL_BACKEND_CORE)) / cyc
	b.L1Bound = float64(c.Get(pmu.STALL_BACKEND_MEM_L1D)) / cyc
	b.L2Bound = float64(c.Get(pmu.STALL_BACKEND_MEM_L2D)) / cyc
	b.ExtMemBound = float64(c.Get(pmu.STALL_BACKEND_MEM_EXT)) / cyc
	if fe := c.Get(pmu.STALL_FRONTEND); fe > 0 {
		b.PCCStallShare = float64(c.Get(pmu.PCC_STALL_CYCLES)) / float64(fe)
	}
	return b
}

// level1Categories lists the level-1 categories in the methodology's
// presentation order; DominantBottleneck's tie-breaking follows it.
var level1Categories = []string{"retiring", "bad-speculation", "frontend-bound", "backend-bound"}

// level1 returns the category values in level1Categories order.
func (b Breakdown) level1() [4]float64 {
	return [4]float64{b.Retiring, b.BadSpec, b.FrontendBound, b.BackendBound}
}

// DominantBottleneck names the level-1 category that dominates, applying
// the methodology's drill-down rule (only descend into the largest).
// Tie-breaking is deterministic: on an exact tie the first-listed category
// wins (retiring, bad-speculation, frontend-bound, backend-bound; memory
// before core in the backend drill-down).
func (b Breakdown) DominantBottleneck() string {
	values := b.level1()
	best := 0
	for i, v := range values {
		if v > values[best] { // strict: ties keep the first-listed category
			best = i
		}
	}
	if name := level1Categories[best]; name != "backend-bound" {
		return name
	}
	if b.MemoryBound >= b.CoreBound { // memory wins the drill-down tie
		return "backend-bound/memory"
	}
	return "backend-bound/core"
}

// String renders the breakdown as an indented report in the style of the
// paper's Table 4 rows.
func (b Breakdown) String() string {
	var s strings.Builder
	fmt.Fprintf(&s, "Retiring        %6.3f\n", b.Retiring)
	fmt.Fprintf(&s, "Bad Speculation %6.3f\n", b.BadSpec)
	fmt.Fprintf(&s, "Frontend Bound  %6.3f  (PCC-stall share %5.3f)\n", b.FrontendBound, b.PCCStallShare)
	fmt.Fprintf(&s, "Backend Bound   %6.3f\n", b.BackendBound)
	fmt.Fprintf(&s, "  + Memory Bound %6.3f\n", b.MemoryBound)
	fmt.Fprintf(&s, "      - L1 Bound     %6.3f\n", b.L1Bound)
	fmt.Fprintf(&s, "      - L2 Bound     %6.3f\n", b.L2Bound)
	fmt.Fprintf(&s, "      - ExtMem Bound %6.3f\n", b.ExtMemBound)
	fmt.Fprintf(&s, "  + Core Bound   %6.3f\n", b.CoreBound)
	return s.String()
}
