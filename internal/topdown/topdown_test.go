package topdown

import (
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/pmu"
)

func TestAnalyzeSplitsConsistent(t *testing.T) {
	var c pmu.Counters
	c.Add(pmu.CPU_CYCLES, 10000)
	c.Add(pmu.STALL_FRONTEND, 500)
	c.Add(pmu.STALL_BACKEND, 4000)
	c.Add(pmu.STALL_BACKEND_MEM, 3000)
	c.Add(pmu.STALL_BACKEND_CORE, 1000)
	c.Add(pmu.STALL_BACKEND_MEM_L1D, 200)
	c.Add(pmu.STALL_BACKEND_MEM_L2D, 300)
	c.Add(pmu.STALL_BACKEND_MEM_EXT, 2500)
	c.Add(pmu.PCC_STALL_CYCLES, 100)
	c.Add(pmu.INST_SPEC, 1000)
	c.Add(pmu.DP_SPEC, 900)

	b := Analyze(&c)
	if b.MemoryBound != 0.3 || b.CoreBound != 0.1 {
		t.Errorf("level-2 split: mem %v core %v", b.MemoryBound, b.CoreBound)
	}
	if got := b.L1Bound + b.L2Bound + b.ExtMemBound; got != b.MemoryBound {
		t.Errorf("level-3 sum %v != memory bound %v", got, b.MemoryBound)
	}
	if b.PCCStallShare != 0.2 {
		t.Errorf("PCC share = %v", b.PCCStallShare)
	}
}

func TestDominantBottleneck(t *testing.T) {
	b := Breakdown{Retiring: 0.5, BackendBound: 0.68, MemoryBound: 0.37, CoreBound: 0.31}
	if got := b.DominantBottleneck(); got != "backend-bound/memory" {
		t.Errorf("dominant = %q", got)
	}
	b2 := Breakdown{Retiring: 0.5, BackendBound: 0.6, MemoryBound: 0.2, CoreBound: 0.4}
	if got := b2.DominantBottleneck(); got != "backend-bound/core" {
		t.Errorf("dominant = %q", got)
	}
	b3 := Breakdown{Retiring: 0.7, FrontendBound: 0.1, BackendBound: 0.1}
	if got := b3.DominantBottleneck(); got != "retiring" {
		t.Errorf("dominant = %q", got)
	}
}

// TestDominantBottleneckTieBreak pins the deterministic tie-breaking rule:
// on an exact tie the first-listed category wins (retiring,
// bad-speculation, frontend-bound, backend-bound), and the backend
// drill-down descends into memory when MemoryBound >= CoreBound.
func TestDominantBottleneckTieBreak(t *testing.T) {
	cases := []struct {
		name string
		b    Breakdown
		want string
	}{
		{
			name: "four-way exact tie keeps the first-listed category",
			b:    Breakdown{Retiring: 0.25, BadSpec: 0.25, FrontendBound: 0.25, BackendBound: 0.25},
			want: "retiring",
		},
		{
			name: "badspec/frontend tie keeps bad-speculation",
			b:    Breakdown{Retiring: 0.1, BadSpec: 0.4, FrontendBound: 0.4, BackendBound: 0.1},
			want: "bad-speculation",
		},
		{
			name: "frontend/backend tie keeps frontend-bound",
			b:    Breakdown{Retiring: 0.1, BadSpec: 0.1, FrontendBound: 0.4, BackendBound: 0.4},
			want: "frontend-bound",
		},
		{
			name: "retiring/backend tie never drills into the backend",
			b:    Breakdown{Retiring: 0.5, BackendBound: 0.5, MemoryBound: 0.4, CoreBound: 0.1},
			want: "retiring",
		},
		{
			name: "backend strictly dominant, memory/core exact tie picks memory",
			b:    Breakdown{Retiring: 0.2, BackendBound: 0.6, MemoryBound: 0.3, CoreBound: 0.3},
			want: "backend-bound/memory",
		},
		{
			name: "backend dominant, core strictly larger",
			b:    Breakdown{Retiring: 0.2, BackendBound: 0.6, MemoryBound: 0.25, CoreBound: 0.35},
			want: "backend-bound/core",
		},
		{
			name: "all zero falls back to the first-listed category",
			b:    Breakdown{},
			want: "retiring",
		},
		{
			name: "later category strictly larger wins",
			b:    Breakdown{Retiring: 0.2, BadSpec: 0.2, FrontendBound: 0.5, BackendBound: 0.1},
			want: "frontend-bound",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.b.DominantBottleneck(); got != tc.want {
				t.Errorf("DominantBottleneck() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestStringRendering(t *testing.T) {
	b := Breakdown{Retiring: 0.55, BackendBound: 0.3, MemoryBound: 0.2, CoreBound: 0.1}
	s := b.String()
	for _, want := range []string{"Retiring", "Memory Bound", "ExtMem Bound", "Core Bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestLiveMachineIdentity(t *testing.T) {
	// End-to-end: a real run's breakdown is internally consistent.
	m := core.New(abi.Purecap)
	m.Func("main", 1024, 64)
	err := m.Run(func(m *core.Machine) {
		arr := m.Alloc(2 << 20)
		for i := uint64(0); i < 1<<14; i++ {
			m.Load(arr+core.Ptr((i*193)%(2<<20)), 8)
			m.ALU(2)
			m.Branch(i%5 == 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b := Analyze(&m.C)
	sum := b.Retiring + b.BadSpec + b.FrontendBound + b.BackendBound
	// The paper's formulation clamps BadSpec at 0, so the sum is >= the
	// true identity but each term must be a valid fraction.
	for name, v := range map[string]float64{
		"retiring": b.Retiring, "badspec": b.BadSpec,
		"frontend": b.FrontendBound, "backend": b.BackendBound,
		"memory": b.MemoryBound, "core": b.CoreBound,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s = %v out of [0,1]", name, v)
		}
	}
	if b.BadSpec > 0 && (sum < 0.99 || sum > 1.01) {
		t.Errorf("unclamped identity violated: sum = %v", sum)
	}
	if diff := b.MemoryBound + b.CoreBound - b.BackendBound; diff > 0.01 || diff < -0.01 {
		t.Errorf("backend split mismatch: %v", diff)
	}
}

func TestZeroCycles(t *testing.T) {
	var c pmu.Counters
	b := Analyze(&c)
	if b.MemoryBound != 0 || b.PCCStallShare != 0 {
		t.Error("zero-cycle analysis not zero")
	}
}
