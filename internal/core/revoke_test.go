package core

import (
	"errors"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
)

func TestRevocationInvalidatesDanglingCapability(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	err := m.Run(func(m *Machine) {
		m.Heap.Quarantine = true
		slot := m.Alloc(64)
		victim := m.Alloc(128)
		m.StorePtr(slot, victim) // a capability to victim lives in memory
		m.Free(victim)           // quarantined, not reused

		// Before the sweep the dangling capability still loads validly —
		// the CHERI temporal-safety gap revocation closes.
		m.LoadPtrChecked(slot)

		st := m.Revoke()
		if st.CapsRevoked == 0 {
			t.Error("sweep revoked nothing")
		}
		if st.BytesReclaimed == 0 {
			t.Error("sweep reclaimed nothing")
		}
		// The dangling capability is now untagged: dereference faults.
		m.LoadPtrChecked(slot)
	})
	if err == nil {
		t.Fatal("post-revocation use of dangling pointer did not fault")
	}
	if !errors.Is(err, cap.ErrTagViolation) {
		t.Fatalf("fault class = %v, want tag violation", err)
	}
}

func TestRevocationSparesLiveCapabilities(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	err := m.Run(func(m *Machine) {
		m.Heap.Quarantine = true
		slot := m.Alloc(64)
		live := m.Alloc(128)
		dead := m.Alloc(128)
		m.StorePtr(slot, live)
		m.Free(dead)
		m.Revoke()
		// live's capability must survive the sweep.
		if got := m.LoadPtrChecked(slot); got != live {
			t.Errorf("live capability corrupted: %#x != %#x", got, live)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuarantinePreventsImmediateReuse(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	_ = m.Run(func(m *Machine) {
		m.Heap.Quarantine = true
		a := m.Alloc(64)
		m.Free(a)
		b := m.Alloc(64)
		if a == b {
			t.Error("quarantined block reused before revocation")
		}
		m.Revoke()
		c := m.Alloc(64)
		if c != a {
			t.Errorf("drained block not reused: got %#x want %#x", c, a)
		}
	})
}

func TestAutomaticSweepAtThreshold(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	_ = m.Run(func(m *Machine) {
		m.EnableTemporalSafety(4096)
		for i := 0; i < 40; i++ {
			p := m.Alloc(256)
			m.Free(p)
		}
	})
	if len(m.Revocations()) == 0 {
		t.Fatal("no automatic sweep despite crossing the threshold")
	}
	if q := m.Heap.QuarantineBytes(); q >= 4096 {
		t.Errorf("quarantine not drained: %d bytes", q)
	}
}

func TestSweepCostIsCharged(t *testing.T) {
	// The sweep must consume instructions and cycles like real work.
	run := func(revoke bool) uint64 {
		m := New(abi.Purecap)
		m.Func("main", 512, 64)
		_ = m.Run(func(m *Machine) {
			m.Heap.Quarantine = true
			slots := m.Alloc(100 * 16)
			for i := 0; i < 100; i++ {
				obj := m.Alloc(64)
				m.StorePtr(slots+Ptr(i*16), obj)
			}
			victim := m.Alloc(64)
			m.Free(victim)
			if revoke {
				m.Revoke()
			}
		})
		return m.Cycles()
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Errorf("sweep was free: %d vs %d cycles", with, without)
	}
}

func TestRevokeNoQuarantineIsNoop(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	_ = m.Run(func(m *Machine) {
		st := m.Revoke()
		if st.GranulesScanned != 0 || st.CapsRevoked != 0 {
			t.Errorf("empty revoke did work: %+v", st)
		}
	})
}
