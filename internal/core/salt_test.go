package core

import (
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/cache"
)

// TestShareLLCSaltCollisionFree is the regression test for the salt
// overflow bug: the old scheme (coreID << 56) wrapped to zero at core 256,
// so core 256 silently shared core 0's lines in the shared LLC. Two cores
// whose salted addresses collided under the old scheme must now occupy
// distinct LLC lines.
func TestShareLLCSaltCollisionFree(t *testing.T) {
	shared := cache.New(cache.LLCConfig)
	m0 := New(abi.Hybrid)
	m256 := New(abi.Hybrid)
	m0.ShareLLC(shared, 0)
	m256.ShareLLC(shared, 256)

	if m0.llcSalt == m256.llcSalt {
		t.Fatalf("cores 0 and 256 share the LLC salt %#x: salted address spaces collide", m0.llcSalt)
	}

	// Behavioural check: the same process-local address accessed by both
	// cores must fill two distinct LLC lines (two refills), not alias onto
	// one (second access hits).
	addr := uint64(HeapBase)
	shared.Access(addr|m0.llcSalt, false)
	shared.Access(addr|m256.llcSalt, false)
	if got := shared.Stats.Refills; got != 2 {
		t.Fatalf("same address from cores 0 and 256 caused %d LLC refills, want 2 (address spaces alias)", got)
	}
}

// TestShareLLCSaltDistinctAcrossRange pins the collision-free property for
// every supported core ID: salts are pairwise distinct, recoverable from
// any salted architectural address, and never disturb the LLC's
// line-offset or set-index bits (which is what keeps legacy quad-core
// co-run results byte-identical across the salting change).
func TestShareLLCSaltDistinctAcrossRange(t *testing.T) {
	// Offset+set bits of the 1 MiB/64 B/16-way LLC: 1024 sets x 64 B = 16 bits.
	const indexBits = 16
	seen := make(map[uint64]bool)
	for _, id := range []int{0, 1, 3, 4, 255, 256, 257, 511, 1023, MaxCores - 1} {
		salt := coreSalt(id)
		if seen[salt] {
			t.Fatalf("core %d reuses salt %#x", id, salt)
		}
		seen[salt] = true
		if salt&((1<<indexBits)-1) != 0 {
			t.Fatalf("core %d salt %#x touches LLC index bits", id, salt)
		}
		// Any architectural address is below the salt: OR is an injective
		// rename, so the core ID is recoverable.
		for _, addr := range []uint64{TextBase, HeapBase, StackBase - 16} {
			if addr>>saltShift != 0 {
				t.Fatalf("architectural address %#x overlaps the salt bits", addr)
			}
			if got := int((addr | salt) >> saltShift); got != id {
				t.Fatalf("salted address %#x decodes to core %d, want %d", addr|salt, got, id)
			}
		}
	}
}

// TestShareLLCSaltRangeChecked pins the guard: core IDs outside the
// collision-free range must panic instead of silently aliasing.
func TestShareLLCSaltRangeChecked(t *testing.T) {
	for _, id := range []int{-1, MaxCores} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShareLLC accepted out-of-range coreID %d", id)
				}
			}()
			New(abi.Hybrid).ShareLLC(cache.New(cache.LLCConfig), id)
		}()
	}
}
