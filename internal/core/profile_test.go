package core

import (
	"strings"
	"testing"

	"cherisim/internal/abi"
)

func TestProfileAttribution(t *testing.T) {
	m := New(abi.Hybrid)
	m.Func("main", 512, 64)
	hot := m.Func("hot", 512, 64)
	cold := m.Func("cold", 512, 64)
	err := m.Run(func(m *Machine) {
		for i := 0; i < 100; i++ {
			m.Call(hot, false)
			m.ALU(200)
			m.Return()
		}
		m.Call(cold, false)
		m.ALU(50)
		m.Return()
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := m.Profile(0)
	if len(prof) == 0 {
		t.Fatal("empty profile")
	}
	if prof[0].Name != "hot" {
		t.Errorf("top function = %s, want hot", prof[0].Name)
	}
	var hotShare, coldShare float64
	for _, p := range prof {
		switch p.Name {
		case "hot":
			hotShare = p.Share
		case "cold":
			coldShare = p.Share
		}
	}
	// Call/return spill costs are attributed to the caller (main), so the
	// callee's share tops out below its pure ALU proportion.
	if hotShare < 0.7 {
		t.Errorf("hot share = %.2f, want > 0.7", hotShare)
	}
	if coldShare >= hotShare {
		t.Error("cold hotter than hot")
	}
}

func TestProfileSharesSumToOne(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	f := m.Func("work", 512, 64)
	_ = m.Run(func(m *Machine) {
		m.Call(f, false)
		arr := m.Alloc(1 << 18)
		for i := 0; i < 2000; i++ {
			m.Load(arr+Ptr(i*64), 8)
			m.ALU(2)
		}
		m.Return()
	})
	var sum float64
	for _, p := range m.Profile(0) {
		sum += p.Share
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("shares sum to %.3f", sum)
	}
}

func TestProfileStallsAttributedToIssuer(t *testing.T) {
	// A function that only misses in DRAM must own those stall cycles.
	m := New(abi.Hybrid)
	m.Func("main", 512, 64)
	misser := m.Func("misser", 512, 64)
	err := m.Run(func(m *Machine) {
		arr := m.Alloc(16 << 20)
		m.Call(misser, false)
		for i := 0; i < 5000; i++ {
			m.LoadDep(arr+Ptr((uint64(i)*7919*64)%(16<<20)), 8)
		}
		m.Return()
		m.ALU(100) // main's own cheap work
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := m.Profile(0)
	if prof[0].Name != "misser" || prof[0].Share < 0.9 {
		t.Errorf("stalls not attributed: top = %s (%.2f)", prof[0].Name, prof[0].Share)
	}
}

func TestFormatProfile(t *testing.T) {
	prof := []FnProfile{
		{Name: "a", Cycles: 1000, Uops: 500, Share: 0.8, Samples: 10},
		{Name: "b", Cycles: 250, Uops: 100, Share: 0.2, Samples: 2},
	}
	out := FormatProfile(prof, 1)
	if !strings.Contains(out, "a") || strings.Contains(out, "\nb") {
		t.Errorf("top-1 formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "80.0%") {
		t.Errorf("share missing:\n%s", out)
	}
}
