package core

import "cherisim/internal/abi"

// FieldKind is the declared type of one record field. The layout engine
// plays the role of the compiler's record-layout pass: pointer fields are
// 8 bytes under hybrid and 16-byte-aligned 16-byte capabilities under the
// purecap ABIs, which is the mechanism behind the paper's footprint growth
// for pointer-rich data structures.
type FieldKind int

// Field kinds.
const (
	FieldU8 FieldKind = iota
	FieldU16
	FieldU32
	FieldU64
	FieldF32
	FieldF64
	FieldPtr
)

func (k FieldKind) size(a abi.ABI) uint64 {
	switch k {
	case FieldU8:
		return 1
	case FieldU16:
		return 2
	case FieldU32, FieldF32:
		return 4
	case FieldU64, FieldF64:
		return 8
	case FieldPtr:
		return a.PointerSize()
	}
	return 8
}

func (k FieldKind) align(a abi.ABI) uint64 {
	if k == FieldPtr {
		return a.PointerAlign()
	}
	return k.size(a)
}

// Layout is the computed per-ABI layout of a record type.
type Layout struct {
	abi     abi.ABI
	offsets []uint64
	kinds   []FieldKind
	size    uint64
}

// Layout computes field offsets and total size for a record under this
// machine's ABI, using natural alignment (as CHERI C/C++ does).
func (m *Machine) Layout(fields ...FieldKind) *Layout {
	l := &Layout{abi: m.ABI, kinds: append([]FieldKind(nil), fields...)}
	var off uint64
	maxAlign := uint64(1)
	for _, f := range fields {
		al := f.align(m.ABI)
		if al > maxAlign {
			maxAlign = al
		}
		off = (off + al - 1) &^ (al - 1)
		l.offsets = append(l.offsets, off)
		off += f.size(m.ABI)
	}
	l.size = (off + maxAlign - 1) &^ (maxAlign - 1)
	if l.size == 0 {
		l.size = 1
	}
	return l
}

// Size returns the record size in bytes (pointer fields included at the
// ABI's pointer width).
func (l *Layout) Size() uint64 { return l.size }

// Offset returns the byte offset of field i.
func (l *Layout) Offset(i int) uint64 { return l.offsets[i] }

// Field returns the address of field i within the record at base.
func (l *Layout) Field(base Ptr, i int) Ptr { return base + Ptr(l.offsets[i]) }

// NumFields returns the field count.
func (l *Layout) NumFields() int { return len(l.kinds) }

// Kind returns field i's declared kind.
func (l *Layout) Kind(i int) FieldKind { return l.kinds[i] }

// Elem returns the address of element idx in an array of records at base.
func (l *Layout) Elem(base Ptr, idx uint64) Ptr { return base + Ptr(idx*l.size) }
