package core

import (
	"cherisim/internal/branch"
	"cherisim/internal/cap"
	"cherisim/internal/isa"
	"cherisim/internal/pmu"
	"cherisim/internal/trace"
)

// Ptr is a simulated virtual address as seen by workload code. Under the
// purecap ABIs the in-memory representation of a Ptr is a 128-bit
// capability; in registers the simulator tracks the address and derives
// the capability (bounds from the owning allocation) when it must be
// materialised in memory.
type Ptr uint64

// Dependency describes whether a load's result feeds the address of the
// next memory operation. Dependent (pointer-chasing) misses expose their
// full latency; independent (streaming) misses overlap up to Config.MLP
// ways.
type Dependency bool

// Dependency values.
const (
	Indep Dependency = false
	Dep   Dependency = true
)

// hierLevel identifies which level of the hierarchy served an access.
type hierLevel int

const (
	levelL1 hierLevel = iota
	levelL2
	levelLLC
	levelDRAM
)

// dataPath sends one line-sized probe through L1D→L2→LLC→DRAM, propagating
// write-backs, and returns the serving level and its latency.
func (m *Machine) dataPath(addr uint64, write bool) (hierLevel, uint64) {
	r1 := m.L1D.Access(addr, write)
	if r1.Hit {
		return levelL1, m.Cfg.L1D.HitLatency
	}
	if r1.WriteBack {
		m.l2Path(r1.WriteBackAddr, true)
	}
	return m.l2Path(addr, false)
}

// l2Path probes L2 then LLC then DRAM for a line fill or write-back. The
// LLC may be shared between cores (see internal/soc); llcSalt disambiguates
// the address spaces of co-running processes, and the machine counts its
// own LLC activity so shared-cache statistics stay per core.
func (m *Machine) l2Path(addr uint64, write bool) (hierLevel, uint64) {
	r2 := m.L2.Access(addr, write)
	if r2.Hit {
		return levelL2, m.Cfg.L2.HitLatency
	}
	if port := m.llcPort; port != nil {
		// Topology-aware fabric (internal/soc): the port prices NoC hops
		// plus slice-hit or DRAM latency; per-core read statistics stay on
		// the machine either way.
		if r2.WriteBack {
			port.Access(r2.WriteBackAddr|m.llcSalt, true)
		}
		if !write {
			m.llcRdAcc++
		}
		hit, lat := port.Access(addr|m.llcSalt, write)
		if hit {
			return levelLLC, lat
		}
		if !write {
			m.llcRdMiss++
		}
		return levelDRAM, lat
	}
	if r2.WriteBack {
		m.LLC.Access(r2.WriteBackAddr|m.llcSalt, true)
	}
	if !write {
		m.llcRdAcc++
	}
	r3 := m.LLC.Access(addr|m.llcSalt, write)
	if r3.Hit {
		return levelLLC, m.Cfg.LLC.HitLatency
	}
	if !write {
		m.llcRdMiss++
	}
	return levelDRAM, m.Cfg.DRAMLatency
}

// accountLoadStall attributes a load's latency to the top-down memory
// buckets, applying MLP overlap for independent accesses.
func (m *Machine) accountLoadStall(lvl hierLevel, lat uint64, dep Dependency) {
	m.accountLoadStallCap(lvl, lat, dep, false)
}

// streamFactor models the N1 hardware prefetcher: an independent load that
// continues one of several concurrently-tracked sequential line streams
// has most of its miss latency hidden by prefetch. It returns the exposure
// multiplier and updates the stream-tracker state (round-robin over
// numStreams entries, like the N1's multi-stream prefetch engine).
func (m *Machine) streamFactor(addr uint64, dep Dependency) float64 {
	line := addr &^ 63
	for i := range m.streams {
		h := m.streams[i]
		if line == h || line == h+64 || line == h+128 {
			m.streams[i] = line
			if bool(dep) {
				return 1
			}
			return 0.15
		}
	}
	m.streams[m.streamNext] = line
	// len(m.streams) is a power of two; the mask keeps the round-robin
	// advance out of the integer-division unit on the per-access hot path.
	m.streamNext = (m.streamNext + 1) & (len(m.streams) - 1)
	return 1
}

// accountLoadStallCap is accountLoadStall with capability-load semantics:
// a dependent capability load cannot overlap at all — the consumer needs
// the full 128 bits plus the tag before it can even begin translation.
func (m *Machine) accountLoadStallCap(lvl hierLevel, lat uint64, dep Dependency, capLoad bool) {
	exposure := float64(lat)
	if dep {
		// Pointer chases still overlap slightly with surrounding work;
		// capability chases do not.
		if capLoad {
			exposure *= 1.0
		} else {
			exposure *= 0.9
		}
	} else {
		exposure /= m.Cfg.MLP
	}
	switch lvl {
	case levelL1:
		// L1 hits are pipelined; only a sliver of exposure remains.
		m.beMemL1 += exposure * 0.15
	case levelL2:
		m.beMemL2 += exposure
	default:
		m.beMemExt += exposure
	}
}

// translateD runs the data-side TLB for addr, charging walk latency to the
// backend memory bucket (address translation blocks the load). The
// last-translation fast path settles same-page accesses — the dominant
// case in every workload's inner loops — as a verified L1 hit without
// walking the hierarchy; its accounting is identical to a Translate that
// hits L1 (zero added latency).
func (m *Machine) translateD(addr uint64) {
	if m.DTLB.FastHit(addr) {
		return
	}
	if lat := m.DTLB.Translate(addr); lat > 0 {
		m.beMemExt += float64(lat) * 0.8
	}
}

// fetchAdvance models frontend activity for n sequential µops: the fetch
// PC walks through the current function's code region (wrapping, which
// models loop reuse), touching the L1I and ITLB at line granularity.
//
// The walk is O(cache-lines-touched), not O(µops): whenever the PC sits
// mid-line, the steps remaining on that line are consumed in one closed-form
// jump (function bases and sizes are 64-byte aligned, so the wrap point
// coincides with a line boundary and the skip can never cross it). The probe
// sequence — ITLB then L1I then the L2 path, once per line transition — is
// exactly the per-µop loop's.
func (m *Machine) fetchAdvance(nUops uint64) {
	if m.curFn == nil || m.curFn.Size == 0 {
		return
	}
	f := m.curFn
	end := f.Base + f.Size
	// Quick path for the dominant call shape: one µop whose next PC stays
	// on the already-probed line (no wrap — sizes are 64-aligned, so a
	// non-wrapping PC with a nonzero line offset cannot cross a boundary).
	if nUops == 1 {
		if pc := m.fetchPC + 4; pc < end && pc&63 != 0 && pc&^63 == m.lastLine {
			m.fetchPC = pc
			return
		}
	}
	pc, last := m.fetchPC, m.lastLine
	for n := nUops; n > 0; {
		pc += 4
		if pc >= end {
			pc = f.Base
		}
		line := pc &^ 63
		if line != last {
			last = line
			if lat := m.ITLB.Translate(line); lat > 0 {
				m.feStall += float64(lat)
			}
			if r := m.L1I.Access(line, false); !r.Hit {
				_, lat := m.l2Path(line, false)
				// Fetch misses stall the frontend; decoupling hides a
				// fraction.
				m.feStall += float64(lat) * 0.7
			}
		}
		n--
		if n == 0 {
			break
		}
		// Steps until the PC reaches the next line boundary; all but the
		// boundary-crossing step itself stay on this line and cannot probe.
		if skip := (line+64-pc)/4 - 1; skip > 0 {
			if skip > n {
				skip = n
			}
			pc += 4 * skip
			n -= skip
		}
	}
	m.fetchPC, m.lastLine = pc, last
}

// uop records one classified µop: class counters, fetch activity and the
// auxiliary-instruction fraction.
func (m *Machine) uop(c isa.Class, n uint64) {
	if n == 0 {
		return
	}
	m.classUops += n
	m.auxUops += float64(n) * m.Cfg.AuxInstrFrac
	switch c {
	case isa.LoadInt, isa.LoadCap:
		m.C.Add(pmu.LD_SPEC, n)
	case isa.StoreInt, isa.StoreCap:
		m.C.Add(pmu.ST_SPEC, n)
	case isa.DP:
		m.C.Add(pmu.DP_SPEC, n)
	case isa.ASE:
		m.C.Add(pmu.ASE_SPEC, n)
	case isa.VFP:
		m.C.Add(pmu.VFP_SPEC, n)
	case isa.Crypto:
		m.C.Add(pmu.CRYPTO_SPEC, n)
	case isa.BranchImmed:
		m.C.Add(pmu.BR_IMMED_SPEC, n)
	case isa.BranchIndirect:
		m.C.Add(pmu.BR_INDIRECT_SPEC, n)
	case isa.BranchReturn:
		m.C.Add(pmu.BR_RETURN_SPEC, n)
	}
	m.fetchAdvance(n)
	if !m.profileOff {
		m.attribute(n)
	}
	if m.OnQuantum != nil {
		m.sinceQuantum += n
		if m.sinceQuantum >= m.quantumUops {
			m.sinceQuantum = 0
			m.OnQuantum()
		}
	}
}

// memAddrOverhead accrues the ABI's fractional per-memory-access DP cost
// (captable indirection, capability-relative addressing) and emits whole
// µops as the fraction accumulates.
func (m *Machine) memAddrOverhead() {
	m.dpCarry += m.ABI.MemAccessDPOps()
	if m.dpCarry >= 1 {
		n := uint64(m.dpCarry)
		m.dpCarry -= float64(n)
		m.uop(isa.DP, n)
	}
}

// checkBounds applies the spatial-safety check a capability dereference
// performs. Hybrid code has no such checks. Accesses to the stack and text
// segments are covered by their region capabilities; heap accesses must lie
// inside a live allocation.
func (m *Machine) checkBounds(op string, addr, size uint64) {
	if !m.Cfg.EnforceBounds || !m.ABI.PointersAreCapabilities() {
		return
	}
	if addr >= StackBase-(64<<20) || addr < HeapBase {
		return // stack, globals and text are bounded by region capabilities
	}
	if addr >= m.ownBase && addr+size <= m.ownBase+m.ownSize {
		return
	}
	base, sz, ok := m.Heap.Owner(addr)
	if ok && addr+size <= base+sz {
		m.ownBase, m.ownSize = base, sz
		return
	}
	m.fault(op, addr, cap.ErrBoundsViolation)
}

// Load performs an independent (streaming) data load of size bytes and
// returns the loaded value.
func (m *Machine) Load(p Ptr, size uint64) uint64 { return m.load(p, size, Indep) }

// LoadDep performs a dependent data load: its miss latency is fully
// exposed, as when the result feeds the next access's address.
func (m *Machine) LoadDep(p Ptr, size uint64) uint64 { return m.load(p, size, Dep) }

func (m *Machine) load(p Ptr, size uint64, dep Dependency) uint64 {
	addr := uint64(p)
	if m.recOn() {
		var d uint64
		if dep {
			d = 1
		}
		m.rec.Op(RopLoad, addr, size, d)
	}
	m.checkBounds("load", addr, size)
	m.loadAccounting(addr, size, dep)
	if size > 8 {
		size = 8
	}
	return m.Mem.ReadUint(addr, size)
}

// loadAccounting performs a data load's µop, translation, cache and stall
// accounting — everything but the spatial check and the data read, shared
// between the live path and the replay fast path.
func (m *Machine) loadAccounting(addr, size uint64, dep Dependency) {
	m.uop(isa.LoadInt, 1)
	m.memAddrOverhead()
	m.C.Inc(pmu.MEM_ACCESS_RD)
	m.translateD(addr)
	sf := m.streamFactor(addr, dep)
	lvl, lat := m.dataPath(addr, false)
	m.Tracer.Record(trace.KindLoad, addr, uint32(size), uint8(lvl))
	m.accountLoadStall(lvl, uint64(float64(lat)*sf), dep)
	if end := (addr + size - 1) &^ 63; size > 0 && end != addr&^63 {
		m.dataPath(end, false) // line-straddling access
	}
}

// Store performs a data store of size bytes.
func (m *Machine) Store(p Ptr, val, size uint64) {
	addr := uint64(p)
	if m.recOn() {
		m.rec.Op(RopStore, addr, val, size)
	}
	m.checkBounds("store", addr, size)
	m.storeBody(addr, val, size)
}

// storeBody performs a store's accounting and the memory write — everything
// but the spatial check, shared between the live path and the replay fast
// path (stores always run in full: the written data and cleared tags feed
// revocation sweeps and later capability loads).
func (m *Machine) storeBody(addr, val, size uint64) {
	m.uop(isa.StoreInt, 1)
	m.memAddrOverhead()
	m.C.Inc(pmu.MEM_ACCESS_WR)
	m.translateD(addr)
	lvl, lat := m.dataPath(addr, true)
	m.Tracer.Record(trace.KindStore, addr, uint32(size), uint8(lvl))
	if lvl != levelL1 {
		// Write-allocate fill time is mostly hidden by the store buffer.
		m.beMemExt += float64(lat) * 0.15
	}
	if size > 8 {
		size = 8
	}
	m.Mem.WriteUint(addr, val, size)
}

// LoadVia performs a load of size bytes at addr through a pointer derived
// from base's allocation. Under the capability ABIs the access is checked
// against base's capability — its allocation's bounds — rather than
// whatever allocation addr happens to land in. This models C pointer
// arithmetic provenance: computing an address beyond the original object's
// bounds and dereferencing it is exactly the porting bug class behind the
// paper's Appendix Table 5 "in-address-space security exception" crashes.
func (m *Machine) LoadVia(base, addr Ptr, size uint64) uint64 {
	m.checkProvenance("load", base, addr, size)
	return m.load(addr, size, Dep)
}

// StoreVia is the store counterpart of LoadVia.
func (m *Machine) StoreVia(base, addr Ptr, val, size uint64) {
	m.checkProvenance("store", base, addr, size)
	m.Store(addr, val, size)
}

// checkProvenance validates [addr, addr+size) against the bounds of the
// allocation that base points into (the capability the pointer was derived
// from). No check under hybrid.
func (m *Machine) checkProvenance(op string, base, addr Ptr, size uint64) {
	if !m.Cfg.EnforceBounds || !m.ABI.PointersAreCapabilities() {
		return
	}
	if uint64(base) < HeapBase || uint64(base) >= StackBase-(64<<20) {
		return // region capabilities cover non-heap segments
	}
	ownBase, ownSize, ok := m.Heap.Owner(uint64(base))
	if !ok {
		m.fault(op, uint64(base), cap.ErrTagViolation)
	}
	if uint64(addr) < ownBase || uint64(addr)+size > ownBase+ownSize {
		m.fault(op, uint64(addr), cap.ErrBoundsViolation)
	}
}

// LoadPtr loads a pointer-typed value: an 8-byte integer under hybrid, a
// 16-byte tagged capability under the purecap ABIs (with the hardware tag
// check — dereferencing an untagged slot later faults). Pointer loads are
// dependent by nature.
func (m *Machine) LoadPtr(p Ptr) Ptr {
	addr := uint64(p)
	if m.recOn() {
		m.rec.Op(RopLoadPtr, addr, 0, 0)
	}
	if !m.ABI.PointersAreCapabilities() {
		m.checkBounds("loadptr", addr, 8)
		m.loadPtrIntAccounting(addr)
		return Ptr(m.Mem.ReadUint(addr, 8))
	}
	m.checkBounds("loadptr", addr, cap.Size)
	m.loadPtrCapAccounting(addr)
	enc, _, err := m.Mem.ReadCap(addr &^ (cap.Size - 1))
	if err != nil {
		m.fault("loadptr", addr, err)
	}
	c := cap.Decode(enc, m.Mem.TagAt(addr))
	// A valid capability stripped of its load permission (CLRPERM, or an
	// injected permission drop) cannot authorise the dereference this
	// pointer exists for; surface the violation at the load. Untagged slots
	// (NULL, plain integers) pass — their dereference faults on the tag.
	if c.Valid() && !c.Perms().Has(cap.PermLoad) {
		m.fault("loadptr", addr, cap.ErrPermViolation)
	}
	return Ptr(c.Address())
}

// loadPtrIntAccounting is the hybrid pointer load's accounting — everything
// but the spatial check and the data read.
func (m *Machine) loadPtrIntAccounting(addr uint64) {
	m.uop(isa.LoadInt, 1)
	m.C.Inc(pmu.MEM_ACCESS_RD)
	m.translateD(addr)
	lvl, lat := m.dataPath(addr, false)
	m.Tracer.Record(trace.KindLoad, addr, 8, uint8(lvl))
	m.accountLoadStall(lvl, lat, Dep)
}

// loadPtrCapAccounting is the purecap capability load's accounting —
// everything but the spatial check and the capability image read/decode.
func (m *Machine) loadPtrCapAccounting(addr uint64) {
	m.uop(isa.LoadCap, 1)
	m.uop(isa.DP, m.ABI.PtrArithDPOps())
	m.memAddrOverhead()
	m.C.Inc(pmu.MEM_ACCESS_RD)
	m.C.Inc(pmu.CAP_MEM_ACCESS_RD)
	m.C.Inc(pmu.MEM_ACCESS_RD_CTAG)
	m.translateD(addr)
	lvl, lat := m.dataPath(addr, false)
	m.Tracer.Record(trace.KindCapLoad, addr, 16, uint8(lvl))
	m.accountLoadStallCap(lvl, lat, Dep, true)
}

// LoadPtrChecked is LoadPtr followed by the dereference-readiness check:
// it faults immediately if the loaded slot did not hold a valid capability
// (the CHERI use-after-overwrite / forged-pointer case). Returns the
// pointer for valid slots.
func (m *Machine) LoadPtrChecked(p Ptr) Ptr {
	addr := uint64(p)
	v := m.LoadPtr(p)
	if m.ABI.PointersAreCapabilities() && !m.Mem.TagAt(addr) {
		m.fault("loadptr", addr, cap.ErrTagViolation)
	}
	return v
}

// StorePtr stores a pointer-typed value: an 8-byte integer under hybrid, a
// 16-byte capability (deriving bounds from the target's allocation) under
// the purecap ABIs.
func (m *Machine) StorePtr(p Ptr, target Ptr) {
	addr := uint64(p)
	if m.recOn() {
		m.rec.Op(RopStorePtr, addr, uint64(target), 0)
	}
	if !m.ABI.PointersAreCapabilities() {
		m.checkBounds("storeptr", addr, 8)
	} else {
		m.checkBounds("storeptr", addr, cap.Size)
	}
	m.storePtrUnchecked(addr, uint64(target))
}

// storePtrUnchecked is StorePtr minus the spatial check, shared between
// the live path and the replay fast path. Pointer stores always run in
// full: the derived capability image and its tag feed revocation sweeps
// and later capability loads.
func (m *Machine) storePtrUnchecked(addr, target uint64) {
	if !m.ABI.PointersAreCapabilities() {
		m.uop(isa.StoreInt, 1)
		m.C.Inc(pmu.MEM_ACCESS_WR)
		m.translateD(addr)
		lvl, _ := m.dataPath(addr, true)
		m.Tracer.Record(trace.KindStore, addr, 8, uint8(lvl))
		m.Mem.WriteUint(addr, target, 8)
		return
	}
	m.uop(isa.StoreCap, 1)
	m.uop(isa.DP, m.ABI.PtrArithDPOps())
	m.memAddrOverhead()
	m.C.Inc(pmu.MEM_ACCESS_WR)
	m.C.Inc(pmu.CAP_MEM_ACCESS_WR)
	m.C.Inc(pmu.MEM_ACCESS_WR_CTAG)
	m.translateD(addr)
	lvl, _ := m.dataPath(addr, true)
	m.Tracer.Record(trace.KindCapStore, addr, 16, uint8(lvl))
	// 128-bit store through 64-bit-sized store buffers: extra occupancy
	// surfaces as core-bound backend pressure (§2.2).
	m.beCore += m.Cfg.CapStoreQueuePenalty
	c := m.deriveCap(target)
	enc, tag := c.Encode()
	if err := m.Mem.WriteCap(addr&^(cap.Size-1), enc, tag); err != nil {
		m.fault("storeptr", addr, err)
	}
}

// deriveCap builds the capability value for a pointer to target: bounds of
// the owning heap allocation when one exists, the region capability
// otherwise, and an untagged capability for dangling/forged targets.
func (m *Machine) deriveCap(target uint64) cap.Capability {
	if target == 0 {
		return cap.Capability{} // NULL: untagged zero capability
	}
	if target >= HeapBase && target < StackBase-(64<<20) {
		if base, sz, ok := m.Heap.Owner(target); ok {
			if c, err := cap.Root().SetBounds(base, sz); err == nil {
				return c.ClearPerms(cap.PermsAll &^ cap.PermsData).WithAddress(target)
			}
		}
		// Dangling pointer: representable but untagged.
		return cap.New(target, 16, cap.PermsData).ClearTag().WithAddress(target)
	}
	return m.ddc.WithAddress(target)
}

// CapCodegen executes n extra data-processing µops that purecap code
// generation emits and hybrid code does not: capability copies for
// argument passing, bounds re-derivation, captable loads for globals.
// Workload kernels place these where the paper's measured dynamic
// instruction-count inflation indicates the real compiler emits them
// (derived from Table 3 as time-ratio x IPC-ratio per workload); hybrid
// lowering makes them free.
func (m *Machine) CapCodegen(n uint64) {
	if !m.ABI.PointersAreCapabilities() {
		return
	}
	if m.recOn() {
		m.rec.Op(RopCapCodegen, n, 0, 0)
	}
	m.uop(isa.DP, n)
	m.beCore += float64(n) * 0.05
}

// ALU executes n integer data-processing µops.
func (m *Machine) ALU(n uint64) {
	if m.recOn() {
		m.rec.Op(RopALU, n, 0, 0)
	}
	m.uop(isa.DP, n)
	m.beCore += float64(n) * 0.05
}

// CapManip executes n capability-manipulation µops (bounds setting, value
// derivation); they occupy the integer pipes and count as DP_SPEC.
func (m *Machine) CapManip(n uint64) {
	if m.recOn() {
		m.rec.Op(RopCapManip, n, 0, 0)
	}
	m.uop(isa.DP, n)
	m.beCore += float64(n) * 0.08
}

// FP executes n floating-point µops.
func (m *Machine) FP(n uint64) {
	if m.recOn() {
		m.rec.Op(RopFP, n, 0, 0)
	}
	m.uop(isa.VFP, n)
	m.beCore += float64(n) * 0.18
}

// SIMD executes n advanced-SIMD µops.
func (m *Machine) SIMD(n uint64) {
	if m.recOn() {
		m.rec.Op(RopSIMD, n, 0, 0)
	}
	m.uop(isa.ASE, n)
	m.beCore += float64(n) * 0.12
}

// Crypto executes n cryptographic-extension µops.
func (m *Machine) Crypto(n uint64) {
	if m.recOn() {
		m.rec.Op(RopCrypto, n, 0, 0)
	}
	m.uop(isa.Crypto, n)
	m.beCore += float64(n) * 0.12
}

// Branch executes a conditional direct branch with the given outcome. The
// branch is keyed by the current fetch PC, which varies across loop
// iterations — use BranchAt with a stable site for branches that a real
// program would express at one code location, or the predictor cannot
// learn their bias.
func (m *Machine) Branch(taken bool) {
	if m.recOn() {
		var t uint64
		if taken {
			t = 1
		}
		m.rec.Op(RopBranch, t, 0, 0)
	}
	m.uop(isa.BranchImmed, 1)
	out := m.BP.Resolve(m.fetchPC, branch.Immed, taken, 0, false)
	m.accountBranch(out)
}

// BranchAt executes a conditional direct branch at a stable call site:
// site identifies the static branch instruction (any value unique within
// the workload), so the direction predictor trains per-site history
// exactly as it would for a fixed PC in real code.
func (m *Machine) BranchAt(site uint64, taken bool) {
	if m.recOn() {
		var t uint64
		if taken {
			t = 1
		}
		m.rec.Op(RopBranchAt, site, t, 0)
	}
	m.uop(isa.BranchImmed, 1)
	out := m.BP.Resolve(TextBase+site*4, branch.Immed, taken, 0, false)
	m.accountBranch(out)
}

// Call transfers control to f. crossDSO marks an inter-library call, which
// under the purecap ABI installs new PCC bounds (the Morello predictor
// stall the benchmark ABI removes).
func (m *Machine) Call(f *Fn, crossDSO bool) {
	if m.recOn() {
		var x uint64
		if crossDSO {
			x = 1
		}
		m.rec.Op(RopCall, uint64(f.idx), x, 0)
	}
	pccChanged := m.ABI.CapabilityJumps() && crossDSO
	m.call(f, branch.Call, pccChanged)
}

// CallVirtual transfers control to f through a function pointer (virtual
// dispatch); under purecap this is a capability branch to a sentry and
// always changes PCC bounds. The dispatch site is the calling function
// (one BTB entry per caller); use CallVirtualAt for distinct static sites.
func (m *Machine) CallVirtual(f *Fn) {
	if m.recOn() {
		m.rec.Op(RopCallVirtual, uint64(f.idx), 0, 0)
	}
	site := m.fetchPC
	if m.curFn != nil {
		site = m.curFn.Base
	}
	m.callAt(site, f, branch.Indirect, m.ABI.CapabilityJumps())
}

// CallVirtualAt is CallVirtual with an explicit static dispatch site, so
// the branch target buffer trains per-site as it would for real code.
func (m *Machine) CallVirtualAt(site uint64, f *Fn) {
	if m.recOn() {
		m.rec.Op(RopCallVirtualAt, site, uint64(f.idx), 0)
	}
	m.callAt(TextBase+site*4, f, branch.Indirect, m.ABI.CapabilityJumps())
}

func (m *Machine) call(f *Fn, kind branch.Kind, pccChanged bool) {
	m.callAt(m.fetchPC, f, kind, pccChanged)
}

func (m *Machine) callAt(site uint64, f *Fn, kind branch.Kind, pccChanged bool) {
	switch kind {
	case branch.Indirect:
		m.uop(isa.BranchIndirect, 1)
	default:
		m.uop(isa.BranchImmed, 1)
	}
	m.uop(isa.DP, m.ABI.CallOverheadDPOps())
	out := m.BP.Resolve(site, kind, true, f.Base, pccChanged)
	m.accountBranch(out)
	m.capJumpCost()
	m.BP.PushReturn(m.fetchPC + 4)

	// Spill the return address and frame pointer to the stack: two slots
	// of the ABI's spill size. Under purecap these are capability stores.
	m.stack = append(m.stack, frame{retAddr: m.fetchPC + 4, fn: m.curFn, pccChanged: pccChanged, sp: m.sp})
	m.sp -= f.Frame + 2*m.ABI.SpillSlotSize()
	m.spill(m.sp, true)
	m.spill(m.sp+m.ABI.SpillSlotSize(), true)

	m.curFn = f
	m.fetchPC = f.Base
	m.lastLine = ^uint64(0)
}

// Return transfers control back to the caller.
func (m *Machine) Return() {
	if len(m.stack) == 0 {
		return
	}
	if m.recOn() {
		m.rec.Op(RopReturn, 0, 0, 0)
	}
	fr := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]

	// Reload the spilled slots.
	m.spill(m.sp, false)
	m.spill(m.sp+m.ABI.SpillSlotSize(), false)
	m.sp = fr.sp

	m.uop(isa.BranchReturn, 1)
	out := m.BP.Resolve(m.fetchPC, branch.Return, true, fr.retAddr, fr.pccChanged)
	m.accountBranch(out)
	m.capJumpCost()

	m.curFn = fr.fn
	m.fetchPC = fr.retAddr
	m.lastLine = ^uint64(0)
}

// spill moves one saved-register slot to/from the stack, as capability
// traffic under the purecap ABIs (return addresses are capabilities).
func (m *Machine) spill(addr uint64, write bool) {
	capSlot := m.ABI.PointersAreCapabilities()
	if write {
		if capSlot {
			m.uop(isa.StoreCap, 1)
			m.C.Inc(pmu.CAP_MEM_ACCESS_WR)
			m.C.Inc(pmu.MEM_ACCESS_WR_CTAG)
			m.beCore += m.Cfg.CapStoreQueuePenalty
		} else {
			m.uop(isa.StoreInt, 1)
		}
		m.C.Inc(pmu.MEM_ACCESS_WR)
		m.translateD(addr)
		m.dataPath(addr, true)
		return
	}
	if capSlot {
		m.uop(isa.LoadCap, 1)
		m.C.Inc(pmu.CAP_MEM_ACCESS_RD)
		m.C.Inc(pmu.MEM_ACCESS_RD_CTAG)
	} else {
		m.uop(isa.LoadInt, 1)
	}
	m.C.Inc(pmu.MEM_ACCESS_RD)
	m.translateD(addr)
	lvl, lat := m.dataPath(addr, false)
	m.accountLoadStall(lvl, lat, Indep)
}

// capJumpCost charges the base capability-branch cost: every call and
// return in the purecap ABI is a capability jump that the Morello frontend
// re-validates, independent of bounds changes. The benchmark ABI's integer
// jumps avoid it, and a capability-aware predictor (TracksPCCBounds) hides
// it.
func (m *Machine) capJumpCost() {
	if m.ABI.CapabilityJumps() && !m.Cfg.TracksPCCBounds {
		m.pccStall += branch.CapJumpCost
	}
}

// accountBranch charges a resolved branch's cost with out.StallCycles as
// the single source of truth for the total: the PCC-bounds resteer
// component (when flagged) goes to the frontend pcc-stall account and the
// remainder — the mispredict flush — to bad speculation. Re-deriving the
// penalties from the Mispredict/PCCStall flags here would let the
// predictor's cost model and the cycle accounting silently diverge.
func (m *Machine) accountBranch(out branch.Outcome) {
	stall := float64(out.StallCycles)
	if out.PCCStall {
		pcc := float64(branch.PCCStallPenalty)
		if pcc > stall {
			pcc = stall
		}
		m.pccStall += pcc
		stall -= pcc
	}
	m.badSpec += stall
}

// Alloc allocates size bytes from the simulated heap, charging the
// allocator's fast-path work and, under purecap, the capability-derivation
// instructions (SCBNDS and representability rounding).
func (m *Machine) Alloc(size uint64) Ptr {
	if m.recOn() {
		m.rec.Op(RopAlloc, size, 0, 0)
	}
	m.recMute++ // the bookkeeping µops below replay via Alloc itself
	addr, err := m.Heap.Alloc(size)
	if err != nil {
		m.fault("alloc", 0, err)
	}
	m.ALU(6) // allocator fast path
	m.uop(isa.DP, m.ABI.AllocDPOps())
	m.recMute--
	return Ptr(addr)
}

// Free releases an allocation. With temporal safety enabled the block
// enters quarantine, and a revocation sweep runs when the quarantine
// crosses its threshold.
func (m *Machine) Free(p Ptr) {
	if m.recOn() {
		m.rec.Op(RopFree, uint64(p), 0, 0)
	}
	m.recMute++ // bookkeeping µops and revocation sweeps replay via Free
	if err := m.Heap.Free(uint64(p)); err != nil {
		m.fault("free", uint64(p), err)
	}
	m.ALU(4)
	m.ownBase, m.ownSize = 0, 0
	m.maybeRevoke()
	m.recMute--
}

// AllocRecord allocates one record of the given layout.
func (m *Machine) AllocRecord(l *Layout) Ptr { return m.Alloc(l.Size()) }

// AllocArray allocates n elements of elemSize bytes.
func (m *Machine) AllocArray(n, elemSize uint64) Ptr { return m.Alloc(n * elemSize) }
