package core

// Record-and-replay support (the trace-memoization fast path of
// internal/replay): a Machine can mirror every top-level API call a
// workload kernel makes into a ReplaySink, producing a flat event stream
// that is a pure function of (workload, ABI, scale, heap-shaping
// configuration). Kernel closures never read timing state, so the same
// stream can later be replayed onto a fresh machine — including one with
// a different *timing* configuration (predictor, cache geometry, store
// queue) — and drive the component models to bit-identical counters
// without re-executing the kernel's own Go computation.
//
// Recording captures only the top-level call: API methods that are
// implemented in terms of other API methods (Alloc's bookkeeping ALU µops,
// Free's revocation sweeps) mute the recorder for their internals, so a
// replayed Alloc/Free re-derives the same internal work instead of
// double-applying it. Wrappers that add only check work with no accounting
// of their own (LoadVia/StoreVia, LoadPtrChecked, AllocRecord/AllocArray)
// are deliberately *not* instrumented — the inner call they delegate to is
// the recorded event, and replaying it alone is accounting-identical.

// ReplayOp enumerates the recordable API events. The numeric values are
// the wire opcodes of internal/replay's block encoding — append only.
type ReplayOp uint8

// Replay opcodes. The comment gives the meaning of the a/b/c operands.
const (
	RopLoad          ReplayOp = iota // a=addr, b=size, c=1 if dependent
	RopStore                         // a=addr, b=val, c=size
	RopLoadPtr                       // a=addr
	RopStorePtr                      // a=addr, b=target
	RopBranch                        // a=1 if taken
	RopBranchAt                      // a=site, b=1 if taken
	RopCall                          // a=fn index, b=1 if crossDSO
	RopCallVirtual                   // a=fn index
	RopCallVirtualAt                 // a=site, b=fn index
	RopReturn                        //
	RopALU                           // a=n
	RopCapManip                      // a=n
	RopCapCodegen                    // a=n
	RopFP                            // a=n
	RopSIMD                          // a=n
	RopCrypto                        // a=n
	RopAlloc                         // a=size
	RopFree                          // a=addr
	RopFunc                          // a=codeBytes, b=frameBytes, c=name index
	NumReplayOps
)

// ReplaySink receives the recorded event stream. Implementations must not
// call back into the machine.
type ReplaySink interface {
	// Op records one event with up to three operands (see ReplayOp).
	Op(op ReplayOp, a, b, c uint64)
	// FuncOp records a Func registration with its raw (pre-ABI-scaling)
	// arguments; the sink interns name and encodes its table index as the
	// c operand of an RopFunc event.
	FuncOp(name string, codeBytes, frameBytes uint64)
}

// SetReplaySink installs (or, with nil, removes) the machine's event
// recorder. A nil sink costs one pointer test per API call.
func (m *Machine) SetReplaySink(s ReplaySink) { m.rec = s }

// recOn reports whether the current API call should be recorded: a sink is
// installed and no enclosing API call is already being recorded.
func (m *Machine) recOn() bool { return m.rec != nil && m.recMute == 0 }

// The Replay* methods below are the fast-path equivalents of their public
// counterparts, used by internal/replay when driving a recorded stream.
// Each delegates to the same body the live path uses (exec.go) minus work
// whose outcome is already fixed by the recording: spatial/provenance
// checks (the recorded run completed them without faulting, and they
// mutate no accounted state) and data reads whose values only the —
// absent — kernel closure consumed (the raw-traffic byte counters are
// still advanced). Stores run in full: written data and tags feed
// revocation sweeps and later capability loads.

// ReplayLoad replays a Load/LoadDep/LoadVia event.
func (m *Machine) ReplayLoad(addr, size uint64, dep bool) {
	m.loadAccounting(addr, size, Dependency(dep))
	if size > 8 {
		size = 8
	}
	m.Mem.BytesRead += size // ReadUint's traffic, without the dead read
}

// ReplayStore replays a Store/StoreVia event.
func (m *Machine) ReplayStore(addr, val, size uint64) {
	m.storeBody(addr, val, size)
}

// ReplayLoadPtr replays a LoadPtr/LoadPtrChecked event. The capability
// image is not decoded: the recorded run proved the slot's tag and
// permission state authorise the load, and the decoded address was only
// consumed by the kernel closure.
func (m *Machine) ReplayLoadPtr(addr uint64) {
	if !m.ABI.PointersAreCapabilities() {
		m.loadPtrIntAccounting(addr)
		m.Mem.BytesRead += 8
		return
	}
	m.loadPtrCapAccounting(addr)
	m.Mem.BytesRead += 16 // ReadCap's traffic, without the dead decode
}

// ReplayStorePtr replays a StorePtr event. The stored capability is
// re-derived from the replay machine's own heap state (identical by
// induction), so the memory image and tag map stay bit-exact for
// revocation sweeps and subsequent capability loads.
func (m *Machine) ReplayStorePtr(addr, target uint64) {
	m.storePtrUnchecked(addr, target)
}
