package core

import (
	"errors"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
	"cherisim/internal/pmu"
)

func TestLayoutPerABI(t *testing.T) {
	hy := New(abi.Hybrid)
	pc := New(abi.Purecap)
	// A list node: { next *T, prev *T, key u64, pad u32 }.
	lh := hy.Layout(FieldPtr, FieldPtr, FieldU64, FieldU32)
	lp := pc.Layout(FieldPtr, FieldPtr, FieldU64, FieldU32)
	if lh.Size() != 32 {
		t.Errorf("hybrid node = %d bytes, want 32", lh.Size())
	}
	if lp.Size() != 48 {
		t.Errorf("purecap node = %d bytes, want 48", lp.Size())
	}
	if lh.Offset(2) != 16 || lp.Offset(2) != 32 {
		t.Errorf("key offsets: hybrid %d purecap %d", lh.Offset(2), lp.Offset(2))
	}
}

func TestLayoutAlignment(t *testing.T) {
	pc := New(abi.Purecap)
	// { u8, ptr } must align the pointer to 16 under purecap.
	l := pc.Layout(FieldU8, FieldPtr)
	if l.Offset(1) != 16 {
		t.Errorf("pointer offset = %d, want 16", l.Offset(1))
	}
	if l.Size() != 32 {
		t.Errorf("size = %d, want 32", l.Size())
	}
}

func TestPtrRoundTripAllABIs(t *testing.T) {
	for _, a := range abi.All() {
		m := New(a)
		m.Func("main", 256, 32)
		err := m.Run(func(m *Machine) {
			node := m.Alloc(64)
			target := m.Alloc(128)
			m.StorePtr(node, target)
			got := m.LoadPtr(node)
			if got != target {
				t.Errorf("abi %v: pointer round trip %#x != %#x", a, got, target)
			}
		})
		if err != nil {
			t.Fatalf("abi %v: %v", a, err)
		}
	}
}

func TestDataRoundTrip(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 256, 32)
	err := m.Run(func(m *Machine) {
		p := m.Alloc(64)
		m.Store(p, 0xdeadbeef, 8)
		if v := m.Load(p, 8); v != 0xdeadbeef {
			t.Errorf("load = %#x", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagStrippedByDataStore(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 256, 32)
	err := m.Run(func(m *Machine) {
		slot := m.Alloc(64)
		target := m.Alloc(64)
		m.StorePtr(slot, target)
		// Overwrite part of the capability with plain data.
		m.Store(slot, 0x41414141, 4)
		m.LoadPtrChecked(slot) // must fault: tag gone
	})
	if err == nil {
		t.Fatal("dereferencing clobbered capability did not fault")
	}
	if !errors.Is(err, cap.ErrTagViolation) {
		t.Fatalf("fault class = %v, want tag violation", err)
	}
}

func TestHybridHasNoTagProtection(t *testing.T) {
	m := New(abi.Hybrid)
	m.Func("main", 256, 32)
	err := m.Run(func(m *Machine) {
		slot := m.Alloc(64)
		target := m.Alloc(64)
		m.StorePtr(slot, target)
		m.Store(slot, 0x41414141, 4)
		// Hybrid happily loads the corrupted pointer.
		got := m.LoadPtrChecked(slot)
		if got == target {
			t.Error("corruption had no effect?")
		}
	})
	if err != nil {
		t.Fatalf("hybrid faulted: %v", err)
	}
}

func TestOutOfBoundsAccessFaultsUnderPurecap(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 256, 32)
	err := m.Run(func(m *Machine) {
		p := m.Alloc(64)
		m.Load(p+100000, 8) // far outside any allocation
	})
	if err == nil {
		t.Fatal("wild access did not fault under purecap")
	}
	if !errors.Is(err, cap.ErrBoundsViolation) {
		t.Fatalf("fault class = %v, want bounds violation", err)
	}
}

func TestOutOfBoundsAllowedUnderHybrid(t *testing.T) {
	m := New(abi.Hybrid)
	m.Func("main", 256, 32)
	err := m.Run(func(m *Machine) {
		p := m.Alloc(64)
		m.Load(p+100000, 8) // spatial bug, silently permitted by AArch64
	})
	if err != nil {
		t.Fatalf("hybrid faulted on OOB: %v", err)
	}
}

func TestDoubleFreeFaults(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 256, 32)
	err := m.Run(func(m *Machine) {
		p := m.Alloc(64)
		m.Free(p)
		m.Free(p)
	})
	if err == nil {
		t.Fatal("double free did not fault")
	}
}

func TestCapCountersZeroUnderHybrid(t *testing.T) {
	m := New(abi.Hybrid)
	m.Func("main", 256, 32)
	_ = m.Run(func(m *Machine) {
		for i := 0; i < 100; i++ {
			slot := m.Alloc(64)
			m.StorePtr(slot, slot)
			m.LoadPtr(slot)
		}
	})
	if m.C.Get(pmu.CAP_MEM_ACCESS_RD) != 0 || m.C.Get(pmu.CAP_MEM_ACCESS_WR) != 0 {
		t.Error("hybrid produced capability memory events")
	}
	if m.C.Get(pmu.MEM_ACCESS_RD_CTAG) != 0 {
		t.Error("hybrid produced tag-check events")
	}
}

func TestCapCountersNonzeroUnderPurecap(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 256, 32)
	_ = m.Run(func(m *Machine) {
		for i := 0; i < 100; i++ {
			slot := m.Alloc(64)
			m.StorePtr(slot, slot)
			m.LoadPtr(slot)
		}
	})
	if m.C.Get(pmu.CAP_MEM_ACCESS_RD) < 100 || m.C.Get(pmu.CAP_MEM_ACCESS_WR) < 100 {
		t.Errorf("purecap cap events rd=%d wr=%d", m.C.Get(pmu.CAP_MEM_ACCESS_RD), m.C.Get(pmu.CAP_MEM_ACCESS_WR))
	}
}

// pccWorkload makes many cross-DSO and virtual calls.
func pccWorkload(m *Machine) {
	lib := m.Func("libfn", 512, 64)
	vfn := m.Func("virtual", 512, 64)
	for i := 0; i < 2000; i++ {
		m.Call(lib, true)
		m.Return()
		m.CallVirtual(vfn)
		m.Return()
	}
}

func TestPCCStallsOnlyInPurecap(t *testing.T) {
	stalls := map[abi.ABI]uint64{}
	for _, a := range abi.All() {
		m := New(a)
		m.Func("main", 256, 32)
		if err := m.Run(pccWorkload); err != nil {
			t.Fatal(err)
		}
		stalls[a] = m.C.Get(pmu.PCC_STALL_CYCLES)
	}
	if stalls[abi.Purecap] == 0 {
		t.Error("purecap produced no PCC stalls")
	}
	if stalls[abi.Hybrid] != 0 || stalls[abi.Benchmark] != 0 {
		t.Errorf("hybrid/benchmark produced PCC stalls: %v", stalls)
	}
}

func TestCapabilityAwarePredictorRemovesPCCStalls(t *testing.T) {
	cfg := DefaultConfig(abi.Purecap)
	cfg.TracksPCCBounds = true
	m := NewMachine(cfg)
	m.Func("main", 256, 32)
	if err := m.Run(pccWorkload); err != nil {
		t.Fatal(err)
	}
	if got := m.C.Get(pmu.PCC_STALL_CYCLES); got != 0 {
		t.Errorf("capability-aware predictor still stalled %d cycles", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() pmu.Counters {
		m := New(abi.Purecap)
		main := m.Func("main", 1024, 64)
		_ = main
		err := m.Run(func(m *Machine) {
			l := m.Layout(FieldPtr, FieldU64)
			var head Ptr
			for i := 0; i < 500; i++ {
				n := m.AllocRecord(l)
				m.StorePtr(l.Field(n, 0), head)
				m.Store(l.Field(n, 1), uint64(i), 8)
				head = n
			}
			for p := head; p != 0; {
				m.ALU(2)
				m.Branch(true)
				p = m.LoadPtr(p)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.C
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("two identical runs produced different counters")
	}
}

func TestCycleIdentity(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 2048, 64)
	_ = m.Run(func(m *Machine) {
		arr := m.Alloc(1 << 20)
		for i := uint64(0); i < 1<<14; i++ {
			m.Load(arr+Ptr(i*64), 8)
			m.ALU(3)
			m.Branch(i%7 == 0)
		}
	})
	cycles := m.C.Get(pmu.CPU_CYCLES)
	fe := m.C.Get(pmu.STALL_FRONTEND)
	be := m.C.Get(pmu.STALL_BACKEND)
	if fe+be > cycles {
		t.Errorf("stalls (%d+%d) exceed cycles (%d)", fe, be, cycles)
	}
	// Backend splits must sum to the backend total (within rounding).
	mem := m.C.Get(pmu.STALL_BACKEND_MEM)
	core := m.C.Get(pmu.STALL_BACKEND_CORE)
	if diff := int64(be) - int64(mem+core); diff < -2 || diff > 2 {
		t.Errorf("backend %d != mem %d + core %d", be, mem, core)
	}
	l1 := m.C.Get(pmu.STALL_BACKEND_MEM_L1D)
	l2 := m.C.Get(pmu.STALL_BACKEND_MEM_L2D)
	ext := m.C.Get(pmu.STALL_BACKEND_MEM_EXT)
	if diff := int64(mem) - int64(l1+l2+ext); diff < -3 || diff > 3 {
		t.Errorf("mem %d != l1 %d + l2 %d + ext %d", mem, l1, l2, ext)
	}
}

func TestPointerChasingSlowerUnderPurecap(t *testing.T) {
	// The paper's core finding: pointer-intensive workloads slow down under
	// purecap because 16-byte pointers halve the cache-resident node count.
	run := func(a abi.ABI) float64 {
		m := New(a)
		m.Func("main", 1024, 64)
		err := m.Run(func(m *Machine) {
			l := m.Layout(FieldPtr, FieldPtr, FieldU64, FieldU64)
			const nodes = 20000
			ptrs := make([]Ptr, nodes)
			for i := range ptrs {
				ptrs[i] = m.AllocRecord(l)
			}
			// Shuffled singly-linked chain (deterministic LCG).
			seed := uint64(12345)
			perm := make([]int, nodes)
			for i := range perm {
				perm[i] = i
			}
			for i := nodes - 1; i > 0; i-- {
				seed = seed*6364136223846793005 + 1442695040888963407
				j := int(seed % uint64(i+1))
				perm[i], perm[j] = perm[j], perm[i]
			}
			for i := 0; i < nodes-1; i++ {
				m.StorePtr(l.Field(ptrs[perm[i]], 0), ptrs[perm[i+1]])
			}
			m.StorePtr(l.Field(ptrs[perm[nodes-1]], 0), 0)
			for pass := 0; pass < 5; pass++ {
				p := ptrs[perm[0]]
				for p != 0 {
					p = m.LoadPtr(l.Field(p, 0))
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(m.Cycles())
	}
	hy := run(abi.Hybrid)
	pc := run(abi.Purecap)
	if pc <= hy*1.05 {
		t.Errorf("pointer chase purecap/hybrid = %.3f, want > 1.05", pc/hy)
	}
}

func TestStreamingNearParity(t *testing.T) {
	// Streaming FP kernels (lbm, matmul) should see little purecap penalty.
	run := func(a abi.ABI) float64 {
		m := New(a)
		m.Func("main", 1024, 64)
		err := m.Run(func(m *Machine) {
			arr := m.Alloc(4 << 20)
			for pass := 0; pass < 2; pass++ {
				for off := uint64(0); off < 4<<20; off += 64 {
					m.Load(arr+Ptr(off), 8)
					m.FP(4)
					m.Store(arr+Ptr(off), 1, 8)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(m.Cycles())
	}
	hy := run(abi.Hybrid)
	pc := run(abi.Purecap)
	ratio := pc / hy
	if ratio > 1.10 || ratio < 0.90 {
		t.Errorf("streaming purecap/hybrid = %.3f, want ~1.0", ratio)
	}
}

func TestCallReturnNesting(t *testing.T) {
	m := New(abi.Purecap)
	m.Func("main", 512, 64)
	f1 := m.Func("f1", 512, 64)
	f2 := m.Func("f2", 512, 64)
	err := m.Run(func(m *Machine) {
		for i := 0; i < 100; i++ {
			m.Call(f1, false)
			m.Call(f2, false)
			m.ALU(5)
			m.Return()
			m.Return()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.stack) != 0 {
		t.Errorf("call stack not balanced: %d frames", len(m.stack))
	}
	if m.sp != StackBase {
		t.Errorf("sp not restored: %#x", m.sp)
	}
}

func TestBranchCountersFlow(t *testing.T) {
	m := New(abi.Hybrid)
	m.Func("main", 512, 64)
	_ = m.Run(func(m *Machine) {
		for i := 0; i < 1000; i++ {
			m.Branch(i%3 == 0)
		}
	})
	if m.C.Get(pmu.BR_RETIRED) != 1000 {
		t.Errorf("BR_RETIRED = %d", m.C.Get(pmu.BR_RETIRED))
	}
	if m.C.Get(pmu.BR_MIS_PRED_RETIRED) == 0 {
		t.Error("no mispredicts on i%3 pattern start")
	}
	if m.C.Get(pmu.BR_IMMED_SPEC) != 1000 {
		t.Errorf("BR_IMMED_SPEC = %d", m.C.Get(pmu.BR_IMMED_SPEC))
	}
}

func TestSecondsAndIPC(t *testing.T) {
	m := New(abi.Hybrid)
	m.Func("main", 512, 64)
	_ = m.Run(func(m *Machine) { m.ALU(10000) })
	if m.Seconds() <= 0 {
		t.Error("no simulated time elapsed")
	}
	if ipc := m.IPC(); ipc <= 0 || ipc > float64(m.Cfg.Width) {
		t.Errorf("IPC = %f out of range", ipc)
	}
}

func TestFnSentrySealed(t *testing.T) {
	m := New(abi.Purecap)
	f := m.Func("fn", 256, 32)
	if !f.Sentry.Valid() || f.Sentry.OType() != cap.OTypeSentry {
		t.Errorf("function sentry malformed: %v", f.Sentry)
	}
	hy := New(abi.Hybrid)
	fh := hy.Func("fn", 256, 32)
	if fh.Sentry.Valid() {
		t.Error("hybrid function has a sentry capability")
	}
}

func TestFootprintLargerUnderPurecap(t *testing.T) {
	build := func(a abi.ABI) uint64 {
		m := New(a)
		m.Func("main", 256, 32)
		_ = m.Run(func(m *Machine) {
			l := m.Layout(FieldPtr, FieldPtr, FieldPtr, FieldU64)
			for i := 0; i < 10000; i++ {
				m.AllocRecord(l)
			}
		})
		return m.Heap.Stats().BrkBytes
	}
	hy, pc := build(abi.Hybrid), build(abi.Purecap)
	if float64(pc) < float64(hy)*1.4 {
		t.Errorf("purecap heap %d not substantially larger than hybrid %d", pc, hy)
	}
}
