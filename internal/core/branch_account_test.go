package core

import (
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/branch"
)

// TestAccountBranchConsumesStallCycles pins the fix for the dead
// branch.Outcome.StallCycles field: accountBranch must charge exactly the
// cycles the predictor reported, not re-derive them from the
// Mispredict/PCCStall flags. An outcome whose StallCycles disagrees with
// the flag-implied penalties exposes the divergence (pre-fix, the flags
// won and StallCycles was ignored).
func TestAccountBranchConsumesStallCycles(t *testing.T) {
	cases := []struct {
		name         string
		out          branch.Outcome
		wantBadSpec  float64
		wantPCCStall float64
	}{
		{
			name:        "stall cycles are the source of truth",
			out:         branch.Outcome{Mispredict: true, StallCycles: 5},
			wantBadSpec: 5, // pre-fix: the flag re-derived MispredictPenalty (11)
		},
		{
			name: "pcc component split from the flagged resteer",
			out: branch.Outcome{Mispredict: true, PCCStall: true,
				StallCycles: branch.MispredictPenalty + branch.PCCStallPenalty},
			wantBadSpec:  branch.MispredictPenalty,
			wantPCCStall: branch.PCCStallPenalty,
		},
		{
			name:         "pcc-only resteer",
			out:          branch.Outcome{PCCStall: true, StallCycles: branch.PCCStallPenalty},
			wantPCCStall: branch.PCCStallPenalty,
		},
		{
			name: "pcc resteer clamped to the reported total",
			out:  branch.Outcome{PCCStall: true, StallCycles: 7},
			// The predictor reported fewer cycles than the nominal resteer
			// penalty: the account must not invent the difference.
			wantPCCStall: 7,
		},
		{
			name: "no stall, no charge",
			out:  branch.Outcome{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(abi.Purecap)
			m.accountBranch(tc.out)
			if m.badSpec != tc.wantBadSpec {
				t.Errorf("badSpec = %g, want %g", m.badSpec, tc.wantBadSpec)
			}
			if m.pccStall != tc.wantPCCStall {
				t.Errorf("pccStall = %g, want %g", m.pccStall, tc.wantPCCStall)
			}
		})
	}
}

// TestAccountBranchMatchesResolvedOutcomes asserts the equivalence that
// keeps rendered output byte-identical across the fix: for every outcome
// the predictor actually produces, consuming StallCycles charges exactly
// what the legacy flag-derived accounting charged.
func TestAccountBranchMatchesResolvedOutcomes(t *testing.T) {
	for _, mispredict := range []bool{false, true} {
		for _, pccStall := range []bool{false, true} {
			var out branch.Outcome
			if mispredict {
				out.Mispredict = true
				out.StallCycles += branch.MispredictPenalty
			}
			if pccStall {
				out.PCCStall = true
				out.StallCycles += branch.PCCStallPenalty
			}
			m := New(abi.Purecap)
			m.accountBranch(out)

			legacyBadSpec, legacyPCC := 0.0, 0.0
			if mispredict {
				legacyBadSpec = float64(branch.MispredictPenalty)
			}
			if pccStall {
				legacyPCC = float64(branch.PCCStallPenalty)
			}
			if m.badSpec != legacyBadSpec || m.pccStall != legacyPCC {
				t.Errorf("mispredict=%v pccStall=%v: got (badSpec=%g, pccStall=%g), legacy (%g, %g)",
					mispredict, pccStall, m.badSpec, m.pccStall, legacyBadSpec, legacyPCC)
			}
		}
	}
}
