package core

import (
	"testing"

	"cherisim/internal/abi"
)

// BenchmarkFetchAdvanceLargeN guards the closed-form line-skip in
// fetchAdvance: a large µop batch must cost per *line crossed*, not per
// µop, so wide ALU/SIMD batches (the workloads issue tens of thousands)
// stay off the per-µop path. A regression to the step-by-step walk shows
// up as a ~16x slowdown here.
func BenchmarkFetchAdvanceLargeN(b *testing.B) {
	b.ReportAllocs()
	m := New(abi.Purecap)
	fn := m.Func("bench", 64<<10, 64)
	err := m.Run(func(m *Machine) {
		m.Call(fn, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.fetchAdvance(4096)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkALULargeN is the public-API face of the same guard: one
// classified batch of 4096 ALU µops through uop accounting and fetch
// advance.
func BenchmarkALULargeN(b *testing.B) {
	b.ReportAllocs()
	m := New(abi.Purecap)
	fn := m.Func("bench", 64<<10, 64)
	err := m.Run(func(m *Machine) {
		m.Call(fn, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ALU(4096)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStreamFactorHit guards the stream-tracker hit path: a
// sequential access pattern follows one tracked stream (every access
// advances the same slot), so the round-robin replacement arithmetic —
// now a power-of-two mask — never runs. The complementary miss case is
// BenchmarkStreamFactorMiss.
func BenchmarkStreamFactorHit(b *testing.B) {
	b.ReportAllocs()
	m := New(abi.Purecap)
	addr := uint64(0x4000_0000)
	m.streamFactor(addr, Indep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr += 64
		m.streamFactor(addr, Indep)
	}
}

// BenchmarkStreamFactorMiss drives the replacement path: each access is
// far from every tracked stream, so a slot is reassigned via the masked
// round-robin advance every call.
func BenchmarkStreamFactorMiss(b *testing.B) {
	b.ReportAllocs()
	m := New(abi.Purecap)
	addr := uint64(0x4000_0000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr += 1 << 20
		m.streamFactor(addr, Indep)
	}
}
