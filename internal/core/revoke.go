package core

import (
	"sort"

	"cherisim/internal/alloc"
	"cherisim/internal/cap"
	"cherisim/internal/isa"
	"cherisim/internal/pmu"
)

// Heap temporal safety in the style of Cornucopia (Filardo et al.,
// Cornucopia Reloaded, ASPLOS 2024): freed allocations are quarantined
// instead of reused, and a revocation sweep scans every tagged capability
// in memory, invalidating those whose bounds fall inside quarantined
// ranges. Only after the sweep is the memory safe to reallocate —
// use-after-free then faults on the cleared tag instead of silently
// aliasing new data.
//
// The sweep's work is charged to the machine like any other execution:
// one capability load (and its cache traffic) per tagged granule, plus a
// capability store for each revoked capability. This makes the measured
// sweep overhead directly comparable to the 1–5 % figures the Cornucopia
// papers report.

// RevocationStats describes one sweep.
type RevocationStats struct {
	// GranulesScanned counts tagged granules whose capability was loaded
	// and checked.
	GranulesScanned uint64
	// CapsRevoked counts capabilities whose tags were cleared.
	CapsRevoked uint64
	// BytesReclaimed is the quarantined memory released for reuse.
	BytesReclaimed uint64
}

// Revoke performs a revocation sweep: drains the heap's quarantine and
// invalidates every in-memory capability pointing into the drained ranges.
// The sweep's memory traffic and instructions are charged to the machine.
// Returns zero stats when nothing was quarantined.
func (m *Machine) Revoke() RevocationStats {
	ranges := m.Heap.DrainQuarantine()
	var st RevocationStats
	if len(ranges) == 0 {
		return st
	}
	for _, r := range ranges {
		st.BytesReclaimed += r.Size
	}

	inQuarantine := func(addr uint64) bool {
		i := sort.Search(len(ranges), func(i int) bool { return ranges[i].Base > addr })
		if i == 0 {
			return false
		}
		r := ranges[i-1]
		return addr < r.Base+r.Size
	}

	// The sweep loop: load every tagged capability, check its bounds
	// against the quarantine set, clear revoked tags. Each step costs real
	// instructions and cache traffic.
	var revoked []uint64
	m.Mem.ForEachTaggedGranule(func(addr uint64) {
		st.GranulesScanned++
		m.uop(isa.LoadCap, 1)
		m.uop(isa.DP, 2) // bounds-vs-range comparison
		m.C.Inc(pmu.MEM_ACCESS_RD)
		m.C.Inc(pmu.CAP_MEM_ACCESS_RD)
		m.C.Inc(pmu.MEM_ACCESS_RD_CTAG)
		m.translateD(addr)
		lvl, lat := m.dataPath(addr, false)
		m.accountLoadStall(lvl, lat, Indep)

		enc, tag, err := m.Mem.ReadCap(addr)
		if err != nil || !tag {
			return
		}
		c := cap.Decode(enc, tag)
		if inQuarantine(c.Base()) {
			revoked = append(revoked, addr)
		}
	})

	// Clear the revoked tags (cannot mutate during iteration).
	for _, addr := range revoked {
		st.CapsRevoked++
		m.uop(isa.StoreCap, 1)
		m.C.Inc(pmu.MEM_ACCESS_WR)
		m.C.Inc(pmu.CAP_MEM_ACCESS_WR)
		m.C.Inc(pmu.MEM_ACCESS_WR_CTAG)
		m.dataPath(addr, true)
		enc, _, _ := m.Mem.ReadCap(addr)
		_ = m.Mem.WriteCap(addr, enc, false)
	}

	m.revocations = append(m.revocations, st)
	m.ownBase, m.ownSize = 0, 0
	return st
}

// Revocations returns the sweeps performed during the run.
func (m *Machine) Revocations() []RevocationStats { return m.revocations }

// EnableTemporalSafety turns on quarantine-on-free with automatic
// revocation sweeps once the quarantine exceeds thresholdBytes (0 uses a
// CheriBSD-like default of 256 KiB at simulation scale).
func (m *Machine) EnableTemporalSafety(thresholdBytes uint64) {
	if thresholdBytes == 0 {
		thresholdBytes = 256 << 10
	}
	m.Heap.Quarantine = true
	m.revokeThreshold = thresholdBytes
}

// maybeRevoke runs a sweep when the quarantine crosses the effective
// threshold; called from Free. As in Cornucopia, the threshold scales with
// the live heap (a sweep's cost is proportional to the capabilities in
// memory, so sweeping is only worthwhile once a comparable amount of
// memory is waiting in quarantine): the effective threshold is
// max(configured, live/4).
func (m *Machine) maybeRevoke() {
	if m.revokeThreshold == 0 {
		return
	}
	thr := m.revokeThreshold
	if dyn := m.Heap.Stats().LiveBytes / 4; dyn > thr {
		thr = dyn
	}
	if m.Heap.QuarantineBytes() >= thr {
		m.Revoke()
	}
}

var _ = alloc.Range{} // documented dependency: quarantine ranges come from alloc
