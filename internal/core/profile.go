package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cherisim/internal/pmu"
)

// Per-function cycle attribution: the simulator's analogue of pmcstat's
// sampling mode (the paper used pmcstat on CheriBSD and found a sampling
// bug in it, issue CTSRD-CHERI/cheribsd#2391). Every µop's incremental
// cycle cost — including the stalls it caused — is attributed to the
// function that was executing, split by top-down category, and the PMU
// events the paper's Table 1 derives its metrics from are attributed the
// same way. Unlike a sampling profiler the attribution is exact: summed
// per-function categories reconcile with the whole-run counter file (see
// AttributionProfile and internal/profile.Reconcile).

// AttrCategory indexes one top-down cycle-estimate category. The split
// mirrors finalize()'s grouping of the stall accumulators, at one level
// finer than the paper's Figure 3 (frontend is divided into fetch and
// PCC-bounds stalls, backend memory into L1/L2/external).
type AttrCategory int

// Attribution categories.
const (
	AttrRetiring AttrCategory = iota // issue-limited base: µops / pipeline width
	AttrFrontend                     // fetch stalls (L1I / ITLB), excluding PCC
	AttrPCC                          // PCC-bounds stalls (capability jumps, resteers)
	AttrBadSpec                      // mispredict flush cycles
	AttrL1Bound                      // backend memory-bound, served from L1D
	AttrL2Bound                      // backend memory-bound, served from L2
	AttrExtMemBound                  // backend memory-bound, LLC/DRAM + TLB walks
	AttrCoreBound                    // backend core-bound (execution pressure)

	NumAttrCategories
)

var attrCategoryNames = [NumAttrCategories]string{
	"retiring", "frontend", "pcc_bounds", "bad_spec",
	"be_mem_l1", "be_mem_l2", "be_mem_ext", "be_core",
}

// String returns the category's stable snake_case name (used in JSON,
// folded flamegraph stacks and report columns).
func (c AttrCategory) String() string {
	if c < 0 || c >= NumAttrCategories {
		return fmt.Sprintf("cat_%d", int(c))
	}
	return attrCategoryNames[c]
}

// AttrEvent indexes one per-function attributed PMU event delta.
type AttrEvent int

// Attributed events: the cache/TLB/branch/capability activity the paper's
// Table 1 metrics are built from, charged to the issuing function.
const (
	EvL1DRefill AttrEvent = iota
	EvL2DRefill
	EvLLCMissRd
	EvL1IRefill
	EvDTLBWalk
	EvITLBWalk
	EvBrMispredict
	EvCapMemRd
	EvCapMemWr

	NumAttrEvents
)

var attrEventNames = [NumAttrEvents]string{
	"l1d_refill", "l2d_refill", "llc_miss_rd", "l1i_refill",
	"dtlb_walk", "itlb_walk", "br_mispredict", "cap_mem_rd", "cap_mem_wr",
}

// String returns the event's stable snake_case name.
func (e AttrEvent) String() string {
	if e < 0 || e >= NumAttrEvents {
		return fmt.Sprintf("ev_%d", int(e))
	}
	return attrEventNames[e]
}

// AttrLayoutVersion names the attribution schema (category/event sets and
// their order). The result store folds it into profile cache keys so
// entries written under an older layout are never decoded into a newer
// one.
const AttrLayoutVersion = "attr/v1"

// attribute charges the per-category cycle-estimate deltas and the
// per-event count deltas since the previous µop to the current function.
// Called from uop(), so stall costs accrued by an operation land on the
// function that issued it (off by at most one µop — an operation's stalls
// accrue after its uop() call and are picked up by the next one; the
// remainder after the final µop surfaces as the profile's residual entry).
func (m *Machine) attribute(n uint64) {
	f := m.curFn
	// Retiring changes on every µop. It is tracked in raw µop units —
	// divided by the pipeline width once, at snapshot time — so the common
	// all-hit path costs no division.
	ret := float64(m.classUops) + m.auxUops
	if f != nil {
		f.cat[AttrRetiring] += ret - m.lastRet
		f.uops += n
	}
	m.lastRet = ret

	// Stalls and events change rarely (only on misses, walks, mispredicts
	// and capability traffic): one array compare skips the delta loops on
	// the common path. The retiring slot of both arrays stays zero.
	stall := [NumAttrCategories]float64{
		AttrFrontend:    m.feStall,
		AttrPCC:         m.pccStall,
		AttrBadSpec:     m.badSpec,
		AttrL1Bound:     m.beMemL1,
		AttrL2Bound:     m.beMemL2,
		AttrExtMemBound: m.beMemExt,
		AttrCoreBound:   m.beCore,
	}
	if stall != m.lastCat {
		for i := AttrFrontend; i < NumAttrCategories; i++ {
			if d := stall[i] - m.lastCat[i]; d != 0 && f != nil {
				f.cat[i] += d
			}
		}
		m.lastCat = stall
	}
	ev := [NumAttrEvents]uint64{
		EvL1DRefill:    m.L1D.Stats.Refills,
		EvL2DRefill:    m.L2.Stats.Refills,
		EvLLCMissRd:    m.llcRdMiss,
		EvL1IRefill:    m.L1I.Stats.Refills,
		EvDTLBWalk:     m.DTLB.Walks,
		EvITLBWalk:     m.ITLB.Walks,
		EvBrMispredict: m.BP.Stats.Mispredicts,
		EvCapMemRd:     m.C.Get(pmu.CAP_MEM_ACCESS_RD),
		EvCapMemWr:     m.C.Get(pmu.CAP_MEM_ACCESS_WR),
	}
	if ev != m.lastEv {
		for i := range ev {
			if d := ev[i] - m.lastEv[i]; d != 0 && f != nil {
				f.ev[i] += d
			}
		}
		m.lastEv = ev
	}
}

// fnCycles is a function's attributed cycle total: the retiring charge
// (stored in µop units) converted by the pipeline width, plus the stall
// categories.
func (m *Machine) fnCycles(f *Fn) float64 {
	c := f.cat[AttrRetiring] / float64(m.Cfg.Width)
	for i := AttrFrontend; i < NumAttrCategories; i++ {
		c += f.cat[i]
	}
	return c
}

// FnProfile is one function's share of the run.
type FnProfile struct {
	Name   string
	Cycles float64
	Uops   uint64
	// Share is Cycles as a fraction of the profiled total.
	Share float64
	// Samples is the pmcstat-style sample count at the given period.
	Samples uint64
}

// Profile returns the per-function cycle attribution, sorted by cycles
// descending. period is the sampling interval in cycles used to derive the
// pmcstat-style sample counts (e.g. 65536); the shares themselves are
// exact.
func (m *Machine) Profile(period uint64) []FnProfile {
	if period == 0 {
		period = 65536
	}
	var total float64
	for _, f := range m.fns {
		total += m.fnCycles(f)
	}
	out := make([]FnProfile, 0, len(m.fns))
	for _, f := range m.fns {
		if f.uops == 0 {
			continue
		}
		cycles := m.fnCycles(f)
		p := FnProfile{Name: f.Name, Cycles: cycles, Uops: f.uops}
		if total > 0 {
			p.Share = cycles / total
		}
		p.Samples = uint64(cycles / float64(period))
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// FormatProfile renders the top-n profile entries as a pmcstat-style
// report. Entries past the top n are aggregated into a trailing «other»
// row so the printed shares still account for the whole run.
func FormatProfile(prof []FnProfile, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %6s  %12s  %s\n", "SAMPLES", "%", "UOPS", "FUNCTION")
	for i, p := range prof {
		if n >= 0 && i >= n {
			break
		}
		fmt.Fprintf(&b, "%8d  %5.1f%%  %12d  %s\n", p.Samples, p.Share*100, p.Uops, p.Name)
	}
	if n >= 0 && len(prof) > n {
		var rest FnProfile
		for _, p := range prof[n:] {
			rest.Samples += p.Samples
			rest.Share += p.Share
			rest.Uops += p.Uops
		}
		fmt.Fprintf(&b, "%8d  %5.1f%%  %12d  «other» (%d functions)\n",
			rest.Samples, rest.Share*100, rest.Uops, len(prof)-n)
	}
	return b.String()
}

// ResidualName labels the attribution profile's remainder entry: the tail
// accrued after each run's final µop (plus float-grouping differences
// against finalize()'s truncated counters), kept explicit so conservation
// is exact rather than approximate.
const ResidualName = "«unattributed»"

// FnAttribution is one function's exact top-down and PMU-event
// attribution. Categories is indexed by AttrCategory, Events by AttrEvent;
// Cycles is the sum over Categories.
type FnAttribution struct {
	Name       string                     `json:"name"`
	Uops       uint64                     `json:"uops"`
	Cycles     float64                    `json:"cycles"`
	Categories [NumAttrCategories]float64 `json:"categories"`
	Events     [NumAttrEvents]uint64      `json:"events"`
}

// AttributionProfile is a machine's complete per-function attribution.
// Invariant (checked by internal/profile.Reconcile and the conservation
// tests): for every category and event, summing Functions in slice order
// and then adding Residual reproduces Totals bit-exactly, and Totals
// reconstruct the machine's stall/cycle counter file exactly — so the
// per-function split carries precisely the information topdown.Analyze
// sees, at function granularity.
type AttributionProfile struct {
	// Totals are the whole-run category values in finalize()'s exact float
	// grouping (retiring = INST_SPEC/width) and the whole-run event counts.
	Totals      [NumAttrCategories]float64 `json:"totals"`
	TotalEvents [NumAttrEvents]uint64      `json:"total_events"`
	// Functions hold the per-function attribution, sorted by cycles
	// descending (name-ascending tiebreak for determinism).
	Functions []FnAttribution `json:"functions"`
	// Residual is the unattributed remainder (see ResidualName).
	Residual FnAttribution `json:"residual"`
}

// AttributionProfile snapshots the machine's per-function attribution.
// Call it after Run; the profile is empty if attribution was disabled.
func (m *Machine) AttributionProfile() AttributionProfile {
	var p AttributionProfile
	p.Totals = [NumAttrCategories]float64{
		AttrRetiring:    float64(m.classUops+uint64(m.auxUops)) / float64(m.Cfg.Width),
		AttrFrontend:    m.feStall,
		AttrPCC:         m.pccStall,
		AttrBadSpec:     m.badSpec,
		AttrL1Bound:     m.beMemL1,
		AttrL2Bound:     m.beMemL2,
		AttrExtMemBound: m.beMemExt,
		AttrCoreBound:   m.beCore,
	}
	p.TotalEvents = [NumAttrEvents]uint64{
		EvL1DRefill:    m.L1D.Stats.Refills,
		EvL2DRefill:    m.L2.Stats.Refills,
		EvLLCMissRd:    m.llcRdMiss,
		EvL1IRefill:    m.L1I.Stats.Refills,
		EvDTLBWalk:     m.DTLB.Walks,
		EvITLBWalk:     m.ITLB.Walks,
		EvBrMispredict: m.BP.Stats.Mispredicts,
		EvCapMemRd:     m.C.Get(pmu.CAP_MEM_ACCESS_RD),
		EvCapMemWr:     m.C.Get(pmu.CAP_MEM_ACCESS_WR),
	}
	if m.profileOff {
		return p
	}
	for _, f := range m.fns {
		if f.uops == 0 {
			continue
		}
		fa := FnAttribution{Name: f.Name, Uops: f.uops, Categories: f.cat, Events: f.ev}
		// The retiring charge is tracked in raw µop units; convert it here.
		fa.Categories[AttrRetiring] = f.cat[AttrRetiring] / float64(m.Cfg.Width)
		for _, c := range fa.Categories {
			fa.Cycles += c
		}
		p.Functions = append(p.Functions, fa)
	}
	sort.Slice(p.Functions, func(i, j int) bool {
		a, b := &p.Functions[i], &p.Functions[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		return a.Name < b.Name
	})

	// The residual closes the books: summing Functions in slice order and
	// adding Residual must land on Totals bit-exactly. Plain subtraction is
	// already exact in the realistic regime (Sterbenz: the attributed sum is
	// within 2× of the total); the nextafter fixup covers the rest.
	p.Residual.Name = ResidualName
	for i := range p.Totals {
		var sum float64
		for _, f := range p.Functions {
			sum += f.Categories[i]
		}
		r := exactRemainder(p.Totals[i], sum)
		p.Residual.Categories[i] = r
		p.Residual.Cycles += r
	}
	for i := range p.TotalEvents {
		var sum uint64
		for _, f := range p.Functions {
			sum += f.Events[i]
		}
		p.Residual.Events[i] = p.TotalEvents[i] - sum
	}
	return p
}

// exactRemainder returns r such that sum + r == total exactly in float64
// (when such an r exists; it always does when sum and total are within a
// factor of two, which holds for any profile where functions own the bulk
// of the run).
func exactRemainder(total, sum float64) float64 {
	r := total - sum
	for i := 0; i < 4 && sum+r > total; i++ {
		r = math.Nextafter(r, math.Inf(-1))
	}
	for i := 0; i < 4 && sum+r < total; i++ {
		r = math.Nextafter(r, math.Inf(1))
	}
	return r
}
