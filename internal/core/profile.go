package core

import (
	"fmt"
	"sort"
	"strings"
)

// Per-function cycle attribution: the simulator's analogue of pmcstat's
// sampling mode (the paper used pmcstat on CheriBSD and found a sampling
// bug in it, issue CTSRD-CHERI/cheribsd#2391). Every µop's incremental
// cycle cost — including the stalls it caused — is attributed to the
// function that was executing, so the profile explains *where* each ABI's
// overhead lands.

// attribute charges the cycle-estimate delta since the previous µop to the
// current function. Called from uop(), so stall costs accrued by an
// operation land on the function that issued it (off by at most one µop).
func (m *Machine) attribute(n uint64) {
	est := float64(m.classUops)/float64(m.Cfg.Width) +
		m.feStall + m.pccStall +
		m.beMemL1 + m.beMemL2 + m.beMemExt + m.beCore + m.badSpec
	delta := est - m.lastCycleEst
	m.lastCycleEst = est
	if m.curFn != nil {
		m.curFn.cycles += delta
		m.curFn.uops += n
	}
}

// FnProfile is one function's share of the run.
type FnProfile struct {
	Name   string
	Cycles float64
	Uops   uint64
	// Share is Cycles as a fraction of the profiled total.
	Share float64
	// Samples is the pmcstat-style sample count at the given period.
	Samples uint64
}

// Profile returns the per-function cycle attribution, sorted by cycles
// descending. period is the sampling interval in cycles used to derive the
// pmcstat-style sample counts (e.g. 65536); the shares themselves are
// exact.
func (m *Machine) Profile(period uint64) []FnProfile {
	if period == 0 {
		period = 65536
	}
	var total float64
	for _, f := range m.fns {
		total += f.cycles
	}
	out := make([]FnProfile, 0, len(m.fns))
	for _, f := range m.fns {
		if f.uops == 0 {
			continue
		}
		p := FnProfile{Name: f.Name, Cycles: f.cycles, Uops: f.uops}
		if total > 0 {
			p.Share = f.cycles / total
		}
		p.Samples = uint64(f.cycles / float64(period))
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cycles > out[j].Cycles })
	return out
}

// FormatProfile renders the top-n profile entries as a pmcstat-style
// report.
func FormatProfile(prof []FnProfile, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %6s  %12s  %s\n", "SAMPLES", "%", "UOPS", "FUNCTION")
	for i, p := range prof {
		if i == n {
			break
		}
		fmt.Fprintf(&b, "%8d  %5.1f%%  %12d  %s\n", p.Samples, p.Share*100, p.Uops, p.Name)
	}
	return b.String()
}
