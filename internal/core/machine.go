// Package core assembles the simulated Morello platform — CHERI capability
// machinery, Neoverse-N1-like core model, cache/TLB hierarchy, branch
// prediction and PMU — and exposes the execution-context API that workload
// kernels program against. It is the simulator's equivalent of the
// hardware + CheriBSD substrate the paper measures: workloads perform real
// algorithms whose memory accesses, branches and capability operations flow
// through real component models, and every PMU event the paper's Table 1
// uses is produced as a side effect.
package core

import (
	"fmt"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/branch"
	"cherisim/internal/cache"
	"cherisim/internal/cap"
	"cherisim/internal/mem"
	"cherisim/internal/pmu"
	"cherisim/internal/tlb"
	"cherisim/internal/trace"
)

// ClockHz is the simulated core frequency (Morello runs at 2.5 GHz).
const ClockHz = 2.5e9

// ModelVersion names the simulator's semantic revision. Bump it whenever a
// change alters what any run measures (cost-model constants, cache/TLB
// policies, lowering, metric formulas): the persistent result store folds
// it into every cache key, so stale entries from an older model are never
// served, and the golden-baseline gate reports the mismatch instead of
// comparing incomparable numbers.
const ModelVersion = "morello-sim/1"

// Address-space layout of the simulated process.
const (
	TextBase  = 0x0000_0001_0000_0000
	HeapBase  = 0x0000_0040_0000_0000
	StackBase = 0x0000_7fff_f000_0000 // grows down
)

// Config parameterises a Machine. DefaultConfig supplies the Morello
// values; ablation experiments override individual fields.
type Config struct {
	// ABI selects hybrid, purecap-benchmark or purecap lowering.
	ABI abi.ABI
	// TracksPCCBounds enables the hypothetical capability-aware branch
	// predictor of §4.5; false models the Morello prototype.
	TracksPCCBounds bool
	// Width is the pipeline's sustained µop throughput per cycle.
	Width int
	// HeapSize bounds the simulated heap.
	HeapSize uint64
	// MLP is the memory-level parallelism achieved by independent misses.
	MLP float64
	// DRAMLatency is the external-memory access latency in cycles.
	DRAMLatency uint64
	// Cache and TLB geometries.
	L1I, L1D, L2, LLC     cache.Config
	L1ITLB, L1DTLB, L2TLB tlb.Config
	// EnforceBounds applies per-allocation spatial checks on every data
	// access (not just capability dereferences). Always on: it is cheap
	// in this model and is the point of CHERI.
	EnforceBounds bool
	// AuxInstrFrac is the fraction of extra unclassified instructions
	// (address generation, prefetches, moves) per classified µop; it only
	// affects INST_SPEC and therefore the paper's Retiring% formula.
	AuxInstrFrac float64
	// CapStoreQueuePenalty is the extra backend core-bound pressure per
	// capability store from Morello's 64-bit-sized store buffers (§2.2).
	// Set to 0 to model a capability-width store path (ablation).
	CapStoreQueuePenalty float64
	// TemporalSafety enables Cornucopia-style heap temporal safety:
	// quarantine-on-free with automatic revocation sweeps every
	// RevokeThresholdBytes of quarantined memory (default 256 KiB).
	TemporalSafety       bool
	RevokeThresholdBytes uint64
}

// DefaultConfig returns the Morello platform configuration for an ABI.
func DefaultConfig(a abi.ABI) Config {
	return Config{
		ABI:                  a,
		TracksPCCBounds:      false,
		Width:                4,
		HeapSize:             1 << 32,
		MLP:                  6,
		DRAMLatency:          230,
		L1I:                  cache.L1IConfig,
		L1D:                  cache.L1DConfig,
		L2:                   cache.L2Config,
		LLC:                  cache.LLCConfig,
		L1ITLB:               tlb.L1IConfig,
		L1DTLB:               tlb.L1DConfig,
		L2TLB:                tlb.L2Config,
		EnforceBounds:        true,
		AuxInstrFrac:         0.08,
		CapStoreQueuePenalty: 0.5,
	}
}

// Fn identifies a simulated function: a region of the text segment that
// fetch activity walks through while the function runs.
type Fn struct {
	Name     string
	Base     uint64
	Size     uint64
	Frame    uint64
	Sentry   cap.Capability // purecap function pointer (sealed entry)
	machine  *Machine
	pointers int // pointer-typed parameters, for loader modelling

	// Profiling attribution (see profile.go): per-category cycle split
	// (retiring held in raw µop units until snapshot), per-event count
	// deltas and µop count charged to this function.
	cat  [NumAttrCategories]float64
	ev   [NumAttrEvents]uint64
	uops uint64

	// idx is the function's position in the machine's registration order;
	// the replay recorder uses it as a stable cross-machine identifier.
	idx int
}

type frame struct {
	retAddr    uint64
	fn         *Fn
	pccChanged bool
	sp         uint64
}

// Machine is one simulated Morello core plus its memory system, running a
// single-threaded workload under one ABI.
type Machine struct {
	Cfg Config
	ABI abi.ABI

	Mem  *mem.Memory
	L1I  *cache.Cache
	L1D  *cache.Cache
	L2   *cache.Cache
	LLC  *cache.Cache
	ITLB *tlb.Hierarchy
	DTLB *tlb.Hierarchy
	BP   *branch.Predictor
	Heap *alloc.Heap

	// C is the ground-truth PMU counter file.
	C pmu.Counters

	ddc cap.Capability // default data capability (heap+stack+globals)

	// Text segment / fetch state.
	fns      []*Fn
	nextCode uint64
	fetchPC  uint64
	lastLine uint64
	curFn    *Fn
	stack    []frame
	sp       uint64

	// Stall accumulators (cycles, fractional).
	feStall      float64
	beMemL1      float64
	beMemL2      float64
	beMemExt     float64
	beCore       float64
	badSpec      float64
	pccStall     float64
	auxUops      float64
	dpCarry      float64
	classUops uint64
	finalized bool

	// Attribution snapshots: the category/event values at the previous
	// attribute() call, so each µop charges only its delta (profile.go).
	// lastRet tracks retiring in raw µop units; lastCat's retiring slot
	// stays zero.
	lastRet float64
	lastCat [NumAttrCategories]float64
	lastEv  [NumAttrEvents]uint64

	// owner cache for capability derivation on data accesses.
	ownBase, ownSize uint64

	// Temporal-safety state (see revoke.go).
	revokeThreshold uint64
	revocations     []RevocationStats

	// Shared-LLC support (see internal/soc): per-core LLC statistics and
	// the address-space salt of co-running processes. llcPort, when set,
	// diverts post-L2 traffic to an external sliced-LLC fabric.
	llcRdAcc, llcRdMiss uint64
	llcSalt             uint64
	llcPort             LLCPort

	// Tracer, when set, records every data-memory access for locality
	// analysis (internal/trace). Nil disables tracing at a nil-check's
	// cost.
	Tracer *trace.Collector

	// OnQuantum, when set, is invoked every quantum of executed µops —
	// the multi-core scheduler's preemption point.
	OnQuantum    func()
	quantumUops  uint64
	sinceQuantum uint64
	// streams holds the line addresses of concurrently-tracked prefetch
	// streams (hardware-prefetcher model).
	streams    [8]uint64
	streamNext int

	// profileOff disables per-function cycle attribution (profile.go).
	// Attribution only feeds Profile(); callers that never read it — the
	// experiment harness in particular — can turn it off and save a float
	// re-estimate per µop call without changing any counter or metric.
	profileOff bool

	// rec, when non-nil, receives every top-level API event (see
	// replay.go); recMute suppresses recording inside API calls whose
	// internals are themselves expressed through the API.
	rec     ReplaySink
	recMute int

	faulted *Fault
}

// NewMachine builds a machine for the given configuration.
func NewMachine(cfg Config) *Machine {
	l2tlb := tlb.New(cfg.L2TLB)
	m := &Machine{
		Cfg:  cfg,
		ABI:  cfg.ABI,
		Mem:  mem.New(),
		L1I:  cache.New(cfg.L1I),
		L1D:  cache.New(cfg.L1D),
		L2:   cache.New(cfg.L2),
		LLC:  cache.New(cfg.LLC),
		ITLB: tlb.NewHierarchy(cfg.L1ITLB, l2tlb),
		DTLB: tlb.NewHierarchy(cfg.L1DTLB, l2tlb),
		BP:   branch.New(),
		Heap: alloc.New(cfg.ABI, HeapBase, cfg.HeapSize),
		ddc:  cap.Root(),
		sp:   StackBase,
	}
	m.BP.TracksPCCBounds = cfg.TracksPCCBounds
	m.nextCode = TextBase
	m.fetchPC = TextBase
	if cfg.TemporalSafety {
		m.EnableTemporalSafety(cfg.RevokeThresholdBytes)
	}
	return m
}

// New builds a machine with the default Morello configuration for abi a.
func New(a abi.ABI) *Machine { return NewMachine(DefaultConfig(a)) }

// Func registers a simulated function occupying codeBytes of text (scaled
// by the ABI's code-size factor) with a frameBytes activation record.
func (m *Machine) Func(name string, codeBytes, frameBytes uint64) *Fn {
	if m.recOn() {
		m.rec.FuncOp(name, codeBytes, frameBytes)
	}
	sz := uint64(float64(codeBytes) * m.ABI.CodeSizeFactor())
	sz = (sz + 63) &^ 63
	f := &Fn{Name: name, Base: m.nextCode, Size: sz, Frame: frameBytes, machine: m, idx: len(m.fns)}
	if m.ABI.PointersAreCapabilities() {
		c, err := cap.Root().SetBounds(f.Base, f.Size)
		if err == nil {
			c = c.ClearPerms(cap.PermsAll &^ cap.PermsCode)
			if s, err := c.SealEntry(); err == nil {
				f.Sentry = s
			}
		}
	}
	m.nextCode += sz
	m.fns = append(m.fns, f)
	if m.curFn == nil {
		m.curFn = f
		m.fetchPC = f.Base
		m.lastLine = ^uint64(0)
	}
	return f
}

// Funcs returns the registered function table (used by the loader model).
func (m *Machine) Funcs() []*Fn { return m.fns }

// TextBytes returns the total text-segment footprint.
func (m *Machine) TextBytes() uint64 { return m.nextCode - TextBase }

// saltShift positions the core-ID salt above every architectural address
// the simulated process can generate: TextBase, HeapBase and StackBase all
// sit below 2^47, so ORing the salt in is an injective rename of the
// address space — it never disturbs line-offset, set-index or low tag bits,
// and distinct cores can never collide. 64-47 = 17 salt bits support
// co-runs of up to MaxCores cores.
const saltShift = 47

// MaxCores is the largest co-run the address-space salting supports.
const MaxCores = 1 << (64 - saltShift)

// coreSalt returns the address-space salt for a co-running core, panicking
// on IDs outside the collision-free range. The former scheme
// (coreID << 56) wrapped to 0 at core 256, silently aliasing core 0's
// address space.
func coreSalt(coreID int) uint64 {
	if coreID < 0 || coreID >= MaxCores {
		panic(fmt.Sprintf("core: coreID %d outside the salting range [0, %d)", coreID, MaxCores))
	}
	return uint64(coreID) << saltShift
}

// ShareLLC replaces the machine's last-level cache with a shared instance
// and installs the core's address-space salt; used by internal/soc to
// co-run machines on one system-level cache.
func (m *Machine) ShareLLC(llc *cache.Cache, coreID int) {
	m.LLC = llc
	m.llcSalt = coreSalt(coreID)
}

// LLCPort is an external last-level-cache fabric: internal/soc's
// topology-aware SoC routes the machine's post-L2 traffic through NoC
// links to address-interleaved LLC slices. Access receives the salted
// line-granular address and returns whether the slice (optimistically)
// held the line and the full latency of the access — NoC hops plus
// slice-hit or DRAM latency.
type LLCPort interface {
	Access(addr uint64, write bool) (hit bool, latency uint64)
}

// ShareLLCPort diverts the machine's post-L2 traffic through an external
// LLC fabric instead of the built-in m.LLC instance, installing the core's
// address-space salt exactly as ShareLLC does. The machine still counts
// its own LLC reads and read misses, so PMU statistics stay per core.
func (m *Machine) ShareLLCPort(port LLCPort, coreID int) {
	m.llcPort = port
	m.llcSalt = coreSalt(coreID)
}

// AddExternalStall charges extra backend external-memory stall cycles to
// the machine — the SoC fabric's contention model bills queueing delay at
// epoch barriers through this. It must be called before the machine
// finalizes (the scheduler charges paused, unfinished cores only).
func (m *Machine) AddExternalStall(cycles float64) { m.beMemExt += cycles }

// SetQuantum arranges for fn to run every uops executed µops (the
// multi-core scheduler's preemption hook).
func (m *Machine) SetQuantum(uops uint64, fn func()) {
	if uops == 0 {
		uops = 10000
	}
	m.quantumUops = uops
	m.OnQuantum = fn
}

// Run executes the workload body, catching simulated capability faults,
// and finalizes cycle accounting into the PMU counters.
//
// Run never re-panics: a simulated capability fault surfaces as the *Fault
// error, a watchdog trip as *DeadlineError, and any other panic escaping
// the body is contained as a *PanicError (with the µop position) so one
// buggy kernel cannot abort a whole measurement campaign. In every case
// the counters are finalized over the executed prefix.
func (m *Machine) Run(body func(*Machine)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *Fault:
				m.faulted = v
				err = v
			case *DeadlineError:
				err = v
			default:
				err = &PanicError{Value: v, Uops: m.classUops}
			}
		}
		m.finalize()
	}()
	body(m)
	return nil
}

// finalize folds the stall accumulators and component statistics into the
// ground-truth counter file. It is idempotent.
func (m *Machine) finalize() {
	if m.finalized {
		return
	}
	m.finalized = true

	// Component statistics → PMU events.
	m.C.Add(pmu.L1I_CACHE, m.L1I.Stats.Accesses)
	m.C.Add(pmu.L1I_CACHE_REFILL, m.L1I.Stats.Refills)
	m.C.Add(pmu.L1D_CACHE, m.L1D.Stats.Accesses)
	m.C.Add(pmu.L1D_CACHE_REFILL, m.L1D.Stats.Refills)
	m.C.Add(pmu.L2D_CACHE, m.L2.Stats.Accesses)
	m.C.Add(pmu.L2D_CACHE_REFILL, m.L2.Stats.Refills)
	m.C.Add(pmu.LL_CACHE_RD, m.llcRdAcc)
	m.C.Add(pmu.LL_CACHE_MISS_RD, m.llcRdMiss)
	m.C.Add(pmu.L1I_TLB, m.ITLB.L1.Stats.Accesses)
	m.C.Add(pmu.L1D_TLB, m.DTLB.L1.Stats.Accesses)
	m.C.Add(pmu.ITLB_WALK, m.ITLB.Walks)
	m.C.Add(pmu.DTLB_WALK, m.DTLB.Walks)
	m.C.Add(pmu.BR_RETIRED, m.BP.Stats.Branches)
	m.C.Add(pmu.BR_MIS_PRED_RETIRED, m.BP.Stats.Mispredicts)

	// Instruction accounting. Classified µops were accumulated live into
	// the *_SPEC counters; INST_SPEC additionally includes unclassified
	// auxiliary instructions.
	inst := m.classUops + uint64(m.auxUops)
	m.C.Add(pmu.INST_SPEC, inst)
	m.C.Add(pmu.INST_RETIRED, inst)

	// Cycle accounting: issue-limited base plus attributed stalls.
	base := float64(inst) / float64(m.Cfg.Width)
	fe := m.feStall + m.pccStall
	beMem := m.beMemL1 + m.beMemL2 + m.beMemExt
	be := beMem + m.beCore
	cycles := base + fe + be + m.badSpec
	m.C.Add(pmu.CPU_CYCLES, uint64(cycles))
	m.C.Add(pmu.STALL_FRONTEND, uint64(fe))
	m.C.Add(pmu.STALL_BACKEND, uint64(be))
	m.C.Add(pmu.STALL_BACKEND_MEM, uint64(beMem))
	m.C.Add(pmu.STALL_BACKEND_MEM_L1D, uint64(m.beMemL1))
	m.C.Add(pmu.STALL_BACKEND_MEM_L2D, uint64(m.beMemL2))
	m.C.Add(pmu.STALL_BACKEND_MEM_EXT, uint64(m.beMemExt))
	m.C.Add(pmu.STALL_BACKEND_CORE, uint64(m.beCore))
	m.C.Add(pmu.BAD_SPEC_CYCLES, uint64(m.badSpec))
	m.C.Add(pmu.PCC_STALL_CYCLES, uint64(m.pccStall))
}

// Cycles returns total simulated cycles (valid after Run).
func (m *Machine) Cycles() uint64 { return m.C.Get(pmu.CPU_CYCLES) }

// Seconds returns the simulated wall-clock time at the Morello frequency.
func (m *Machine) Seconds() float64 { return float64(m.Cycles()) / ClockHz }

// IPC returns retired instructions per cycle.
func (m *Machine) IPC() float64 { return m.C.Ratio(pmu.INST_RETIRED, pmu.CPU_CYCLES) }

// Fault returns the capability fault that terminated the run, if any.
func (m *Machine) Fault() *Fault { return m.faulted }

// Uops returns the number of classified µops executed so far (the
// supervisor's notion of run progress, used by watchdog deadlines and
// panic positions).
func (m *Machine) Uops() uint64 { return m.classUops }

// PC returns the current fetch program counter.
func (m *Machine) PC() uint64 { return m.fetchPC }

// DisableProfile turns off per-function cycle attribution for this machine.
// Profile() will return an empty profile; nothing else observable changes.
// Use it on machines whose profile is never read (measurement campaigns).
func (m *Machine) DisableProfile() { m.profileOff = true }

// DropOwnerCache invalidates the machine's cached owning-allocation range.
// The fault injector must call it after mutating heap-allocation metadata
// (bounds truncation) so the next spatial check consults the heap afresh.
func (m *Machine) DropOwnerCache() { m.ownBase, m.ownSize = 0, 0 }

func (m *Machine) fault(op string, addr uint64, cause error) {
	panic(&Fault{Kind: classifyFault(op, cause), PC: m.fetchPC, Addr: addr, Cause: cause, Op: op})
}
