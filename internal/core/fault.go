package core

import (
	"errors"
	"fmt"

	"cherisim/internal/cap"
)

// FaultKind classifies a simulated fault for the resilience taxonomy: the
// fatal capability-violation classes behind the paper's Appendix Table 5
// "in-address-space security exception" crashes, the allocator failures,
// and the transient injected events (internal/faultinject) that a
// supervised campaign retries instead of reporting as crashes.
type FaultKind int

// Fault kinds, from most common hardware trap class to supervisor-level.
const (
	// KindUnknown marks a fault whose cause matched no known class.
	KindUnknown FaultKind = iota
	// KindTag is a tag violation: an untagged capability was dereferenced
	// (pointer laundering, use-after-overwrite, injected tag clears).
	KindTag
	// KindBounds is a spatial bounds violation.
	KindBounds
	// KindPerm is a permission violation.
	KindPerm
	// KindSeal is a seal violation (sealed capability used directly).
	KindSeal
	// KindUnrepresentable marks bounds that CHERI Concentrate cannot encode.
	KindUnrepresentable
	// KindAlloc is an allocator failure (heap exhaustion, invalid free).
	KindAlloc
	// KindSpurious is a transient injected trap: the hardware delivered an
	// exception but no architectural state was corrupted, so a supervised
	// re-run may succeed. Only the fault injector produces these.
	KindSpurious
)

var faultKindNames = [...]string{
	KindUnknown:         "unknown",
	KindTag:             "tag",
	KindBounds:          "bounds",
	KindPerm:            "perm",
	KindSeal:            "seal",
	KindUnrepresentable: "unrepresentable",
	KindAlloc:           "alloc",
	KindSpurious:        "spurious",
}

// String returns the short lower-case class name.
func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("faultkind(%d)", int(k))
}

// classifyFault maps a fault's cause error (and, for allocator errors that
// carry no sentinel, its operation) onto the taxonomy.
func classifyFault(op string, cause error) FaultKind {
	switch {
	case errors.Is(cause, cap.ErrTagViolation):
		return KindTag
	case errors.Is(cause, cap.ErrBoundsViolation):
		return KindBounds
	case errors.Is(cause, cap.ErrPermViolation):
		return KindPerm
	case errors.Is(cause, cap.ErrSealViolation):
		return KindSeal
	case errors.Is(cause, cap.ErrUnrepresentable):
		return KindUnrepresentable
	case op == "alloc" || op == "free":
		return KindAlloc
	}
	return KindUnknown
}

// Fault is a simulated in-address-space security exception: the hardware
// detected a capability violation and delivered SIGPROT. Transient faults
// (injected trap deliveries that corrupted no state) are distinguished so a
// supervisor can retry the run instead of counting a crash.
type Fault struct {
	Kind      FaultKind
	PC        uint64
	Addr      uint64
	Cause     error
	Op        string
	Transient bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if f.Transient {
		return fmt.Sprintf("transient fault (%s): %s at pc=%#x addr=%#x: %v", f.Kind, f.Op, f.PC, f.Addr, f.Cause)
	}
	return fmt.Sprintf("capability fault: %s at pc=%#x addr=%#x: %v", f.Op, f.PC, f.Addr, f.Cause)
}

// Unwrap exposes the underlying capability error class.
func (f *Fault) Unwrap() error { return f.Cause }

// DeadlineError reports that a run exceeded its supervisor-imposed µop
// budget (the campaign watchdog): the workload was still executing when the
// budget ran out, so its counters cover only the executed prefix.
type DeadlineError struct {
	Uops   uint64 // µops executed when the watchdog fired
	Budget uint64 // the configured budget
}

// Error implements the error interface.
func (e *DeadlineError) Error() string {
	return fmt.Sprintf("deadline exceeded: %d uops executed, budget %d", e.Uops, e.Budget)
}

// PanicError is a non-Fault panic that escaped a workload body, captured by
// Machine.Run so one buggy kernel cannot take down a whole measurement
// campaign. Workload is filled in by the runner that knows the name.
type PanicError struct {
	Workload string
	Value    any
	Uops     uint64 // µop position of the panic
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	name := e.Workload
	if name == "" {
		name = "workload"
	}
	return fmt.Sprintf("panic in %s at uop %d: %v", name, e.Uops, e.Value)
}

// IsTransient reports whether err represents a transient event (an injected
// trap delivery) that a supervised re-run may clear, as opposed to a fatal
// capability violation, deadline or panic.
func IsTransient(err error) bool {
	var f *Fault
	return errors.As(err, &f) && f.Transient
}
