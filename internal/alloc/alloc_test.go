package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
)

const heapBase = 0x4000_0000

func newHeap(a abi.ABI) *Heap { return New(a, heapBase, 1<<30) }

func TestAllocBasics(t *testing.T) {
	h := newHeap(abi.Hybrid)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate allocation")
	}
	if a%minAlign != 0 || b%minAlign != 0 {
		t.Fatal("unaligned allocation")
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	for _, a := range abi.All() {
		h := newHeap(a)
		rng := rand.New(rand.NewSource(11))
		type region struct{ base, size uint64 }
		var regions []region
		for i := 0; i < 500; i++ {
			size := uint64(rng.Intn(1<<14) + 1)
			addr, err := h.Alloc(size)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range regions {
				if addr < r.base+r.size && r.base < addr+size {
					t.Fatalf("abi %v: allocation [%#x,+%d) overlaps [%#x,+%d)", a, addr, size, r.base, r.size)
				}
			}
			regions = append(regions, region{addr, size})
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	h := newHeap(abi.Hybrid)
	a, _ := h.Alloc(64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Alloc(64)
	if a != b {
		t.Errorf("freed block not reused: %#x vs %#x", a, b)
	}
}

func TestInvalidFree(t *testing.T) {
	// A never-allocated address is an invalid free under every ABI.
	for _, a := range abi.All() {
		h := newHeap(a)
		if err := h.Free(0xdead); err == nil {
			t.Fatalf("%s: invalid free accepted", a)
		}
	}
	// Double free is detected under the capability ABIs only; hybrid
	// tolerates it like glibc's fastbin path (see TestHybridDoubleFreeAliases).
	for _, a := range []abi.ABI{abi.Benchmark, abi.Purecap} {
		h := newHeap(a)
		p, _ := h.Alloc(64)
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
		if err := h.Free(p); err == nil {
			t.Fatalf("%s: double free accepted", a)
		}
	}
}

func TestHybridDoubleFreeAliases(t *testing.T) {
	h := newHeap(abi.Hybrid)
	p, _ := h.Alloc(64)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("hybrid double free rejected: %v", err)
	}
	// The duplicated free-list entry hands the same block out twice.
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	if a != p || b != p {
		t.Fatalf("fastbin dup not reproduced: got %#x, %#x, want both %#x", a, b, p)
	}
	// Index and byte accounting stay single-entry for the aliased block.
	if h.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d, want 1", h.LiveCount())
	}
	if got := h.Stats().LiveBytes; got != 64 {
		t.Fatalf("LiveBytes = %d, want 64", got)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("free of aliased block: %v", err)
	}
}

func TestPurecapRepresentabilityRounding(t *testing.T) {
	h := newHeap(abi.Purecap)
	// A large odd-sized allocation must be rounded so its capability is
	// exactly representable.
	size := uint64(1<<20 + 7)
	addr, err := h.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.SizeOf(addr)
	if got < size {
		t.Fatalf("usable size %d < requested %d", got, size)
	}
	if got != cap.RepresentableLength((size+15)&^15) {
		t.Errorf("rounded size %d != CRRL %d", got, cap.RepresentableLength((size+15)&^15))
	}
	mask := cap.RepresentableAlignmentMask(got)
	if addr&^mask != 0 {
		t.Errorf("base %#x not CRAM-aligned (mask %#x)", addr, mask)
	}
	// The capability for this allocation must be exact.
	if _, err := cap.Root().SetBoundsExact(addr, got); err != nil {
		t.Errorf("allocation not exactly representable: %v", err)
	}
}

func TestHybridNoRounding(t *testing.T) {
	h := newHeap(abi.Hybrid)
	size := uint64(1<<20 + 7)
	addr, _ := h.Alloc(size)
	got, _ := h.SizeOf(addr)
	want := (size + 15) &^ 15
	if got != want {
		t.Errorf("hybrid rounded %d to %d, want %d", size, got, want)
	}
	_ = addr
}

func TestPurecapFootprintInflation(t *testing.T) {
	// Large allocations inflate more under purecap than hybrid.
	hy, pc := newHeap(abi.Hybrid), newHeap(abi.Purecap)
	for i := 0; i < 100; i++ {
		size := uint64(100_000 + i*13)
		if _, err := hy.Alloc(size); err != nil {
			t.Fatal(err)
		}
		if _, err := pc.Alloc(size); err != nil {
			t.Fatal(err)
		}
	}
	if pc.Stats().OverheadRatio() <= hy.Stats().OverheadRatio() {
		t.Errorf("purecap overhead %.4f <= hybrid %.4f",
			pc.Stats().OverheadRatio(), hy.Stats().OverheadRatio())
	}
}

func TestOwnerInteriorPointer(t *testing.T) {
	h := newHeap(abi.Purecap)
	a, _ := h.Alloc(256)
	base, size, ok := h.Owner(a + 100)
	if !ok || base != a || size < 256 {
		t.Fatalf("Owner(interior) = %#x,%d,%v", base, size, ok)
	}
	if _, _, ok := h.Owner(a + 100000); ok {
		t.Fatal("Owner found non-allocation")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := New(abi.Hybrid, heapBase, 4096)
	if _, err := h.Alloc(1 << 20); err == nil {
		t.Fatal("oversized allocation accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	h := newHeap(abi.Hybrid)
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	h.Free(a)
	s := h.Stats()
	if s.Allocs != 2 || s.Frees != 1 {
		t.Errorf("allocs/frees = %d/%d", s.Allocs, s.Frees)
	}
	if s.LiveBytes != 64 || s.PeakLiveBytes != 128 {
		t.Errorf("live/peak = %d/%d", s.LiveBytes, s.PeakLiveBytes)
	}
	_ = b
}

func TestAllocPropertyUsableSize(t *testing.T) {
	// Property: usable size always >= requested, base always aligned for
	// its size class, under every ABI.
	f := func(sizeSeed uint32, abiSeed uint8) bool {
		a := abi.ABI(abiSeed % uint8(abi.NumABIs))
		h := newHeap(a)
		size := uint64(sizeSeed%(1<<22)) + 1
		addr, err := h.Alloc(size)
		if err != nil {
			return false
		}
		usable, ok := h.SizeOf(addr)
		if !ok || usable < size {
			return false
		}
		if a.PointersAreCapabilities() {
			mask := cap.RepresentableAlignmentMask(usable)
			if addr&^mask != 0 {
				return false
			}
		}
		return addr%minAlign == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	h := newHeap(abi.Purecap)
	a, err := h.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Stats()
	if !h.Truncate(a, 128) {
		t.Fatal("valid truncation refused")
	}
	if s, ok := h.SizeOf(a); !ok || s != 128 {
		t.Fatalf("SizeOf after truncate = %d, %v", s, ok)
	}
	after := h.Stats()
	if after.LiveBytes != before.LiveBytes-128 {
		t.Fatalf("liveBytes %d -> %d, want -128", before.LiveBytes, after.LiveBytes)
	}
	// Owner-based spatial checks must now reject the truncated tail.
	if _, size, ok := h.Owner(a + 64); !ok || size != 128 {
		t.Fatalf("Owner after truncate: size=%d ok=%v", size, ok)
	}
	// Invalid truncations: growing, zero, same size, unknown base.
	if h.Truncate(a, 256) || h.Truncate(a, 128) || h.Truncate(a, 0) || h.Truncate(a+16, 64) {
		t.Fatal("invalid truncation applied")
	}
	// The truncated allocation still frees cleanly.
	if err := h.Free(a); err != nil {
		t.Fatalf("free after truncate: %v", err)
	}
}

func TestLiveRangeDeterministicOrder(t *testing.T) {
	h := newHeap(abi.Hybrid)
	var bases []uint64
	for i := 0; i < 8; i++ {
		a, err := h.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, a)
	}
	if h.LiveCount() != 8 {
		t.Fatalf("LiveCount = %d", h.LiveCount())
	}
	for i := 1; i < h.LiveCount(); i++ {
		if h.LiveRange(i).Base <= h.LiveRange(i-1).Base {
			t.Fatal("LiveRange not in base order")
		}
	}
	if r := h.LiveRange(-1); r != (Range{}) {
		t.Fatalf("LiveRange(-1) = %+v", r)
	}
	if r := h.LiveRange(8); r != (Range{}) {
		t.Fatalf("LiveRange(len) = %+v", r)
	}
	_ = bases
}
