// Package alloc implements the simulated user-space heap allocator. It
// reproduces the allocation behaviour that makes purecap memory footprints
// grow on Morello: under the purecap ABIs every allocation must be
// precisely describable by a CHERI Concentrate capability, so sizes are
// rounded up to representable lengths and bases aligned to the
// representability mask (CRRL/CRAM, as CheriBSD's jemalloc does); pointers
// stored inside allocations double from 8 to 16 bytes (that part is the
// record-layout model in internal/core).
//
// The allocator is a size-class segregated free-list over a bump region,
// deterministic and O(1), with live-allocation tracking used by the
// simulator to derive correctly-bounded capabilities for stored pointers
// and to detect use-after-free in the temporal-safety experiments.
package alloc

import (
	"fmt"
	"sort"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
)

// headerSize is the per-allocation bookkeeping overhead (same under all
// ABIs, as jemalloc's is).
const headerSize = 0

// minAlign is the minimum allocation alignment. CheriBSD's allocator keeps
// 16-byte alignment in all ABIs so capabilities stored at offset 0 work.
const minAlign = 16

// Range is a half-open address interval [Base, Base+Size).
type Range struct {
	Base, Size uint64
}

// Heap is a simulated heap over [base, limit).
type Heap struct {
	abi   abi.ABI
	base  uint64
	limit uint64
	brk   uint64

	// Quarantine, when set, defers freed blocks instead of reusing them
	// until a revocation sweep drains them (heap temporal safety in the
	// style of Cornucopia: freed memory cannot be reallocated while
	// capabilities to it may still be live).
	Quarantine      bool
	quarantined     []Range
	quarantineBytes uint64

	// free lists keyed by rounded size class.
	free map[uint64][]uint64
	// live maps allocation base -> usable (rounded) size.
	live map[uint64]uint64
	// sorted is the ordered index of live allocation bases, maintained
	// incrementally so Owner lookups are O(log n).
	sorted []uint64
	// ownBase/ownSize memoise the last positive Owner result. Live ranges
	// are disjoint and an allocation cannot appear inside another live one,
	// so the memo stays valid until a Free or Truncate shrinks the live set
	// (both clear it); repeated lookups inside one allocation — the dominant
	// pattern on the capability-derivation hot path — cost two compares.
	ownBase, ownSize uint64

	// Statistics.
	allocs        uint64
	frees         uint64
	liveBytes     uint64
	peakLiveBytes uint64
	requested     uint64 // sum of requested sizes
	rounded       uint64 // sum of sizes after representability rounding
}

// New creates a heap for the given ABI spanning [base, base+size).
func New(a abi.ABI, base, size uint64) *Heap {
	return &Heap{
		abi:   a,
		base:  base,
		limit: base + size,
		brk:   base,
		free:  make(map[uint64][]uint64),
		live:  make(map[uint64]uint64),
	}
}

// roundSize converts a requested size into the allocated size class:
// minimum-aligned always, and representability-rounded under purecap ABIs.
func (h *Heap) roundSize(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	size = (size + minAlign - 1) &^ (minAlign - 1)
	if h.abi.PointersAreCapabilities() {
		size = cap.RepresentableLength(size)
	}
	return size
}

// alignFor returns the base alignment required for an allocation of the
// given (rounded) size.
func (h *Heap) alignFor(size uint64) uint64 {
	align := uint64(minAlign)
	if h.abi.PointersAreCapabilities() {
		mask := cap.RepresentableAlignmentMask(size)
		if a := ^mask + 1; a > align {
			align = a
		}
	}
	return align
}

// Alloc returns the address of a fresh allocation of at least size bytes.
func (h *Heap) Alloc(size uint64) (uint64, error) {
	rsize := h.roundSize(size)
	if fl := h.free[rsize]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		h.free[rsize] = fl[:len(fl)-1]
		h.commit(addr, size, rsize)
		return addr, nil
	}
	align := h.alignFor(rsize)
	addr := (h.brk + headerSize + align - 1) &^ (align - 1)
	if addr+rsize > h.limit {
		return 0, fmt.Errorf("alloc: out of simulated heap (%d bytes requested, brk %#x, limit %#x)", size, h.brk, h.limit)
	}
	h.brk = addr + rsize
	h.commit(addr, size, rsize)
	return addr, nil
}

func (h *Heap) commit(addr, size, rsize uint64) {
	// A hybrid double free can leave the same address on a free list
	// twice; the second pop then re-commits a block that is already live
	// (the aliasing the fastbin-dup attack exploits). Keep the index and
	// byte accounting single-entry in that case.
	if _, aliased := h.live[addr]; !aliased {
		i := sort.Search(len(h.sorted), func(i int) bool { return h.sorted[i] >= addr })
		h.sorted = append(h.sorted, 0)
		copy(h.sorted[i+1:], h.sorted[i:])
		h.sorted[i] = addr
		h.liveBytes += rsize
		if h.liveBytes > h.peakLiveBytes {
			h.peakLiveBytes = h.liveBytes
		}
	}
	h.live[addr] = rsize
	h.allocs++
	h.requested += size
	h.rounded += rsize
}

// Free releases the allocation at addr. Freeing an unknown address is an
// error (the double-free / invalid-free of the temporal-safety model)
// under the capability ABIs, where CheriBSD's allocator revokes and
// detects it; under hybrid the second free of a block already sitting on a
// free list is silently tolerated, duplicating the free-list entry exactly
// like glibc's classic fastbin-dup — two later allocations of the size
// class then alias the same memory.
func (h *Heap) Free(addr uint64) error {
	rsize, ok := h.live[addr]
	if !ok {
		if !h.abi.PointersAreCapabilities() {
			for size, fl := range h.free {
				for _, a := range fl {
					if a == addr {
						h.free[size] = append(fl, addr)
						h.frees++
						return nil
					}
				}
			}
		}
		return fmt.Errorf("alloc: invalid free of %#x", addr)
	}
	delete(h.live, addr)
	h.ownBase, h.ownSize = 0, 0
	if i := sort.Search(len(h.sorted), func(i int) bool { return h.sorted[i] >= addr }); i < len(h.sorted) && h.sorted[i] == addr {
		h.sorted = append(h.sorted[:i], h.sorted[i+1:]...)
	}
	h.frees++
	h.liveBytes -= rsize
	if h.Quarantine {
		h.quarantined = append(h.quarantined, Range{Base: addr, Size: rsize})
		h.quarantineBytes += rsize
		return nil
	}
	h.free[rsize] = append(h.free[rsize], addr)
	return nil
}

// QuarantineBytes returns the bytes currently held in quarantine.
func (h *Heap) QuarantineBytes() uint64 { return h.quarantineBytes }

// DrainQuarantine returns the quarantined ranges (sorted by base) and
// releases them back to the free lists — the allocator half of a
// revocation sweep: once every capability into these ranges has been
// invalidated, reuse is safe.
func (h *Heap) DrainQuarantine() []Range {
	out := h.quarantined
	h.quarantined = nil
	h.quarantineBytes = 0
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	for _, r := range out {
		h.free[r.Size] = append(h.free[r.Size], r.Base)
	}
	return out
}

// LiveCount returns the number of live allocations.
func (h *Heap) LiveCount() int { return len(h.sorted) }

// LiveRange returns the i-th live allocation in base-address order. It is
// the fault injector's deterministic victim-selection primitive: picking an
// index from a seeded RNG always lands on the same allocation.
func (h *Heap) LiveRange(i int) Range {
	if i < 0 || i >= len(h.sorted) {
		return Range{}
	}
	base := h.sorted[i]
	return Range{Base: base, Size: h.live[base]}
}

// Truncate shrinks the live allocation at base to newSize bytes (metadata
// only — models an injected capability-bounds truncation: accesses beyond
// the new size now fail their spatial check). newSize must be smaller than
// the current size and positive; Truncate reports whether it applied.
func (h *Heap) Truncate(base, newSize uint64) bool {
	size, ok := h.live[base]
	if !ok || newSize == 0 || newSize >= size {
		return false
	}
	h.live[base] = newSize
	h.liveBytes -= size - newSize
	h.ownBase, h.ownSize = 0, 0
	return true
}

// SizeOf returns the usable size of the live allocation at addr, or false
// if addr is not a live allocation base.
func (h *Heap) SizeOf(addr uint64) (uint64, bool) {
	s, ok := h.live[addr]
	return s, ok
}

// Owner returns the allocation base and size containing addr, using the
// maintained sorted index (O(log n)). The machine uses it to derive
// bounded capabilities for interior pointers and for spatial checks.
func (h *Heap) Owner(addr uint64) (base, size uint64, ok bool) {
	if addr-h.ownBase < h.ownSize {
		return h.ownBase, h.ownSize, true
	}
	if s, o := h.live[addr]; o {
		h.ownBase, h.ownSize = addr, s
		return addr, s, true
	}
	i := sort.Search(len(h.sorted), func(i int) bool { return h.sorted[i] > addr })
	if i == 0 {
		return 0, 0, false
	}
	b := h.sorted[i-1]
	s := h.live[b]
	if addr < b+s {
		h.ownBase, h.ownSize = b, s
		return b, s, true
	}
	return 0, 0, false
}

// Stats describes allocator activity and footprint.
type Stats struct {
	Allocs, Frees  uint64
	LiveBytes      uint64
	PeakLiveBytes  uint64
	RequestedBytes uint64
	RoundedBytes   uint64
	BrkBytes       uint64 // high-water bump pointer (address-space footprint)
}

// Stats returns a snapshot of allocator statistics.
func (h *Heap) Stats() Stats {
	return Stats{
		Allocs:         h.allocs,
		Frees:          h.frees,
		LiveBytes:      h.liveBytes,
		PeakLiveBytes:  h.peakLiveBytes,
		RequestedBytes: h.requested,
		RoundedBytes:   h.rounded,
		BrkBytes:       h.brk - h.base,
	}
}

// OverheadRatio returns rounded/requested bytes — the allocator-level
// footprint inflation caused by representability rounding (1.0 for hybrid).
func (s Stats) OverheadRatio() float64 {
	if s.RequestedBytes == 0 {
		return 1
	}
	return float64(s.RoundedBytes) / float64(s.RequestedBytes)
}

// Base returns the heap's base address.
func (h *Heap) Base() uint64 { return h.base }

// Brk returns the current bump pointer.
func (h *Heap) Brk() uint64 { return h.brk }
