// Package refmodel holds deliberately naive, obviously-correct reference
// implementations of the simulator's microarchitectural models: a
// set-associative cache with no MRU fast path and a two-pass victim scan,
// a fully-associative TLB with plain linear lookup (no map index, no
// last-translation memo), and CHERI Concentrate bounds compression in
// big-integer arithmetic so 2^64-boundary cases are exact.
//
// The implementations trade every optimization for legibility: division
// and modulo instead of shift-and-mask, separate full passes instead of
// fused scans, big.Int instead of carefully wrapped uint64. internal/check
// runs them in lockstep with the optimized models and reports the first
// divergence, which is what lets the hot paths keep being rewritten for
// speed while staying bit-identical.
package refmodel

import "cherisim/internal/cache"

// Cache is the reference set-associative cache. It implements the same
// semantics as cache.Cache — LRU replacement, write-back/write-allocate,
// per-set sequence-number LRU — with the most literal algorithm possible.
type Cache struct {
	cfg     cache.Config
	sets    [][]cache.LineState
	numSets int
	seq     uint64
	Stats   cache.Stats
}

// NewCache builds a reference cache with the same geometry as cache.New.
func NewCache(cfg cache.Config) *Cache {
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	sets := make([][]cache.LineState, numSets)
	for i := range sets {
		sets[i] = make([]cache.LineState, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, numSets: numSets}
}

// index splits addr into set and tag with plain integer arithmetic.
func (c *Cache) index(addr uint64) (int, uint64) {
	lineAddr := addr / uint64(c.cfg.LineSize)
	return int(lineAddr % uint64(c.numSets)), lineAddr / uint64(c.numSets)
}

// Set returns the set index addr maps to.
func (c *Cache) Set(addr uint64) int {
	set, _ := c.index(addr)
	return set
}

// Access looks up addr, allocating on a miss, exactly as cache.Cache.Access
// specifies: hit updates LRU (and dirtiness on stores); a miss allocates
// into the first invalid way, else the least-recently-used way (earliest
// index on ties), reporting a write-back when the victim is dirty.
func (c *Cache) Access(addr uint64, write bool) cache.Result {
	c.Stats.Accesses++
	if write {
		c.Stats.WriteAcc++
	} else {
		c.Stats.ReadAcc++
	}
	c.seq++
	set, tag := c.index(addr)
	ways := c.sets[set]

	// Pass 1: hit scan.
	for i := range ways {
		if ways[i].Valid && ways[i].Tag == tag {
			ways[i].LRU = c.seq
			if write {
				ways[i].Dirty = true
			}
			return cache.Result{Hit: true}
		}
	}

	// Miss. Pass 2: first invalid way.
	c.Stats.Refills++
	if write {
		c.Stats.WriteMiss++
	} else {
		c.Stats.ReadMiss++
	}
	victim := -1
	for i := range ways {
		if !ways[i].Valid {
			victim = i
			break
		}
	}
	// Pass 3: least-recently-used way, earliest index winning ties.
	if victim < 0 {
		victim = 0
		for i := range ways {
			if ways[i].LRU < ways[victim].LRU {
				victim = i
			}
		}
	}
	res := cache.Result{}
	if v := ways[victim]; v.Valid && v.Dirty {
		c.Stats.WriteBacks++
		res.WriteBack = true
		res.WriteBackAddr = (v.Tag*uint64(c.numSets) + uint64(set)) * uint64(c.cfg.LineSize)
	}
	ways[victim] = cache.LineState{Tag: tag, Valid: true, Dirty: write, LRU: c.seq}
	return res
}

// Probe reports whether addr is present without touching LRU state or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.Valid && l.Tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache, returning the dirty write-back count
// and adding it to Stats.WriteBacks, as cache.Cache.InvalidateAll does.
func (c *Cache) InvalidateAll() int {
	writeBacks := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid && c.sets[s][w].Dirty {
				writeBacks++
			}
			c.sets[s][w] = cache.LineState{}
		}
	}
	c.Stats.WriteBacks += uint64(writeBacks)
	return writeBacks
}

// AppendSetState appends a snapshot of every way of the given set to dst.
func (c *Cache) AppendSetState(dst []cache.LineState, set int) []cache.LineState {
	return append(dst, c.sets[set]...)
}
