package refmodel

import (
	"math/big"
	"math/bits"
)

// CHERI Concentrate reference compressor (Woodruff et al., IEEE TC 2019;
// CHERI ISA v9 §3), written against the spec with big.Int arithmetic: all
// rounding happens at full 65-bit precision, so regions touching the 2^64
// boundary are computed exactly instead of wrapping. The constants are the
// 128-bit Morello format's, restated here from the spec rather than
// imported, so the reference and the optimized implementation share no
// code.
const (
	mantissaWidth = 14 // MW: stored B width; T stores MW-2 bits
	ieFieldWidth  = 3  // low bits of T and B holding E when I_E is set
	maxExponent   = 50 // largest usable exponent for a normal encoding
)

// two64 is 2^64, the top of the address space.
var two64 = new(big.Int).Lsh(big.NewInt(1), 64)

// Bounds is the reference result of a bounds encoding: the decompressed
// region the encoding represents, at full precision (Top may be exactly
// 2^64), and whether the requested region was representable unrounded.
type Bounds struct {
	Base  *big.Int
	Top   *big.Int
	Exact bool
}

// TopIsFull reports whether the upper bound is exactly 2^64.
func (b Bounds) TopIsFull() bool { return b.Top.Cmp(two64) == 0 }

// computeE returns the minimal candidate exponent for a region of the
// given length: the smallest E such that the length's significant bits fit
// in mantissaWidth-1 bits once the bottom E bits are discarded.
func computeE(length uint64) uint {
	if n := bits.Len64(length); n > mantissaWidth-1 {
		return uint(n - (mantissaWidth - 1))
	}
	return 0
}

// roundRegion rounds [base, base+length) outward to multiples of
// 2^(e+ieFieldWidth), in exact arithmetic.
func roundRegion(base, length uint64, e uint) (rbase, rtop *big.Int) {
	align := new(big.Int).Lsh(big.NewInt(1), e+ieFieldWidth)
	b := new(big.Int).SetUint64(base)
	top := new(big.Int).Add(b, new(big.Int).SetUint64(length))

	rbase = new(big.Int).Div(b, align)
	rbase.Mul(rbase, align)

	rtop = new(big.Int).Add(top, new(big.Int).Sub(align, big.NewInt(1)))
	rtop.Div(rtop, align)
	rtop.Mul(rtop, align)
	return rbase, rtop
}

// fits reports whether a rounded length is encodable at exponent e: the
// top mantissa stores mantissaWidth-2 bits plus an implied leading 1, so
// the length must be below 2^(e+mantissaWidth-1).
func fits(rlen *big.Int, e uint) bool {
	limit := new(big.Int).Lsh(big.NewInt(1), e+mantissaWidth-1)
	return rlen.Cmp(limit) < 0
}

// EncodeBounds is the reference CHERI Concentrate encoder: it returns the
// decompressed bounds that encoding [base, base+length) produces, after
// any representability rounding. The caller must satisfy the monotonicity
// contract base+length <= 2^64 (every in-simulator derivation does, because
// SetBounds checks containment in the parent capability first).
//
// Exact mirrors the optimized encoder's contract: a region is exact when
// it is representable unrounded and its top lies strictly below 2^64 (the
// encoder never declares a region ending exactly at 2^64 exact, so
// SetBoundsExact refuses it; the full-space reset capability is exact only
// at base 0).
func EncodeBounds(base, length uint64, fullSpace bool) Bounds {
	if fullSpace {
		return Bounds{Base: big.NewInt(0), Top: new(big.Int).Set(two64), Exact: base == 0}
	}
	reqBase := new(big.Int).SetUint64(base)
	reqTop := new(big.Int).Add(reqBase, new(big.Int).SetUint64(length))

	e := computeE(length)
	ie := e != 0 || (length>>(mantissaWidth-2))&1 != 0
	if !ie {
		// Exact small-object encoding: E = 0, all mantissa bits stored.
		return Bounds{Base: reqBase, Top: reqTop, Exact: reqTop.Cmp(two64) < 0}
	}
	for {
		if e > maxExponent {
			// No internal exponent fits: only the full-address-space
			// capability covers the region.
			return Bounds{Base: big.NewInt(0), Top: new(big.Int).Set(two64), Exact: false}
		}
		rbase, rtop := roundRegion(base, length, e)
		rlen := new(big.Int).Sub(rtop, rbase)
		if !fits(rlen, e) {
			// Rounding the top up carried into a higher bit; widen.
			e++
			continue
		}
		exact := rbase.Cmp(reqBase) == 0 && rtop.Cmp(reqTop) == 0 && rtop.Cmp(two64) < 0
		return Bounds{Base: rbase, Top: rtop, Exact: exact}
	}
}

// RepresentableAlignmentMask is the reference CRAM: the mask of low
// address bits that must be zero for a region of the given length to be
// exactly representable. Lengths only the full-space capability can cover
// yield mask 0 (the sole representable base is 0).
func RepresentableAlignmentMask(length uint64) uint64 {
	e := computeE(length)
	ie := e != 0 || (length>>(mantissaWidth-2))&1 != 0
	if !ie {
		return ^uint64(0)
	}
	for {
		if e > maxExponent {
			return 0
		}
		_, rtop := roundRegion(0, length, e)
		if !fits(rtop, e) {
			e++
			continue
		}
		return ^(uint64(1)<<(e+ieFieldWidth) - 1)
	}
}

// RepresentableLength is the reference CRRL: the smallest representable
// length >= the request at a CRAM-aligned base, saturated to the maximum
// uint64 when the true value is 2^64 (the full-space region).
func RepresentableLength(length uint64) uint64 {
	mask := RepresentableAlignmentMask(length)
	if mask == ^uint64(0) {
		return length
	}
	if mask == 0 {
		return ^uint64(0)
	}
	_, rtop := roundRegion(0, length, uint(bits.TrailingZeros64(mask))-ieFieldWidth)
	if rtop.Cmp(two64) >= 0 {
		return ^uint64(0)
	}
	return rtop.Uint64()
}
