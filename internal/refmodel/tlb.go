package refmodel

import "cherisim/internal/tlb"

// TLB is the reference translation cache: fully associative with LRU
// replacement, looked up by a plain linear scan over every entry — no map
// index, no last-translation memo. It works in VPN space directly, which
// is what the tlb.Shadow interface reports.
type TLB struct {
	cfg     tlb.Config
	entries []tlb.EntryState
	seq     uint64
	Stats   tlb.Stats
}

// NewTLB builds a reference TLB with the same geometry as tlb.New.
func NewTLB(cfg tlb.Config) *TLB {
	return &TLB{cfg: cfg, entries: make([]tlb.EntryState, cfg.Entries)}
}

// Lookup translates vpn, returning whether it hit this level. A hit
// touches the entry's LRU; accounting matches tlb.TLB.Lookup (including
// its memo fast path, which is specified to be hit-identical).
func (t *TLB) Lookup(vpn uint64) bool {
	t.Stats.Accesses++
	t.seq++
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			t.entries[i].LRU = t.seq
			return true
		}
	}
	t.Stats.Misses++
	return false
}

// Insert installs a translation for vpn: refreshing in place when the page
// is already resident, else replacing the first invalid entry, else the
// least-recently-used one (earliest index on ties).
func (t *TLB) Insert(vpn uint64) {
	t.seq++
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == vpn {
			t.entries[i].LRU = t.seq
			return
		}
	}
	victim := -1
	for i := range t.entries {
		if !t.entries[i].Valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := range t.entries {
			if t.entries[i].LRU < t.entries[victim].LRU {
				victim = i
			}
		}
	}
	t.entries[victim] = tlb.EntryState{VPN: vpn, Valid: true, LRU: t.seq}
}

// InvalidateAll flushes the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = tlb.EntryState{}
	}
}

// AppendEntryState appends a snapshot of every entry to dst.
func (t *TLB) AppendEntryState(dst []tlb.EntryState) []tlb.EntryState {
	return append(dst, t.entries...)
}
