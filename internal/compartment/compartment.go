// Package compartment implements CHERI software compartmentalization on
// the simulated machine: mutually-distrusting protection domains within
// one address space, entered through sealed capability pairs
// (CInvoke/branch-sealed-pair on Morello) rather than context switches.
// The paper motivates SQLite as "a compelling use case for evaluating
// CHERI's compartmentalization capabilities" (§3.3) and contrasts CHERI's
// tagged-pointer isolation with the context-switch costs of SGX/TrustZone
// (§6); this package makes that trade-off measurable.
//
// A compartment owns a code region and a private heap region. Crossing
// into a compartment costs a domain transition — sealing/unsealing,
// register clearing and capability-stack switching — modelled after the
// switcher sequences of CheriBSD's libcompart/colocation work: tens of
// instructions, not the thousands of cycles a TLB-flushing process switch
// or enclave transition costs.
package compartment

import (
	"fmt"

	"cherisim/internal/cap"
	"cherisim/internal/core"
)

// Compartment is one protection domain: a sealed entry capability pair and
// a private heap budget.
type Compartment struct {
	// Name identifies the domain in reports.
	Name string
	// Entry is the sealed code capability for the domain's entry point.
	Entry cap.Capability
	// Data is the sealed data capability for the domain's private state.
	Data cap.Capability

	fn       *Compart
	mgr      *Manager
	fnCore   *core.Fn
	heapBase core.Ptr
	heapSize uint64
	heapUsed uint64

	// Crossings counts domain entries.
	Crossings uint64
}

// Compart is an opaque alias kept for documentation clarity.
type Compart = Compartment

// transitionUops is the instruction cost of one domain crossing: the
// switcher's unseal, capability-register clearing, stack swap and re-seal
// on return. CheriBSD's switcher sequences are in this range; contrast
// with ~1000s of cycles for SGX EENTER or a process context switch.
const transitionUops = 28

// Manager creates compartments on one machine and performs crossings.
type Manager struct {
	m      *core.Machine
	sealer cap.Capability
	nextID uint64
	comps  []*Compartment
}

// NewManager builds a compartment manager for machine m. The manager holds
// the sealing authority (a PermSeal|PermUnseal capability over an otype
// range), as CheriBSD's kernel does.
func NewManager(m *core.Machine) *Manager {
	return &Manager{
		m:      m,
		sealer: cap.New(0, 1<<14, cap.PermsAll),
		nextID: 16, // otypes below are reserved (sentry etc.)
	}
}

// Create carves a new compartment with the given code footprint and
// private heap budget. The returned compartment's Entry/Data capabilities
// are sealed with a fresh object type, so only the manager's crossing path
// can exercise them.
func (g *Manager) Create(name string, codeBytes, frameBytes, heapBytes uint64) (*Compartment, error) {
	fn := g.m.Func(name+".entry", codeBytes, frameBytes)
	heap := g.m.Alloc(heapBytes)

	otype := g.nextID
	g.nextID++
	sealKey := g.sealer.WithAddress(otype)

	codeCap, err := cap.Root().SetBounds(fn.Base, fn.Size)
	if err != nil {
		return nil, fmt.Errorf("compartment %s: code capability: %w", name, err)
	}
	codeCap = codeCap.ClearPerms(cap.PermsAll &^ cap.PermsCode)
	entry, err := codeCap.Seal(sealKey)
	if err != nil {
		return nil, fmt.Errorf("compartment %s: seal entry: %w", name, err)
	}

	dataCap, err := cap.Root().SetBounds(uint64(heap), heapBytes)
	if err != nil {
		return nil, fmt.Errorf("compartment %s: data capability: %w", name, err)
	}
	dataCap = dataCap.ClearPerms(cap.PermsAll &^ cap.PermsData)
	data, err := dataCap.Seal(sealKey)
	if err != nil {
		return nil, fmt.Errorf("compartment %s: seal data: %w", name, err)
	}

	c := &Compartment{
		Name:     name,
		Entry:    entry,
		Data:     data,
		mgr:      g,
		fnCore:   fn,
		heapBase: heap,
		heapSize: heapBytes,
	}
	g.comps = append(g.comps, c)
	return c, nil
}

// Compartments returns the created domains.
func (g *Manager) Compartments() []*Compartment { return g.comps }

// Call crosses into the compartment, runs body with the domain's unsealed
// private data capability, and returns. The crossing's switcher work and
// the capability jump (with its PCC-bounds change under the purecap ABI)
// are charged to the machine.
func (c *Compartment) Call(body func(data cap.Capability, heap core.Ptr)) error {
	g := c.mgr
	m := g.m

	// Validate and unseal the entry pair, as CInvoke does in hardware.
	sealKey := g.sealer.WithAddress(uint64(c.Entry.OType()))
	unsEntry, err := c.Entry.Unseal(sealKey)
	if err != nil {
		return fmt.Errorf("compartment %s: invoke: %w", c.Name, err)
	}
	unsData, err := c.Data.Unseal(sealKey)
	if err != nil {
		return fmt.Errorf("compartment %s: invoke: %w", c.Name, err)
	}
	if !unsEntry.Perms().Has(cap.PermExecute) {
		return fmt.Errorf("compartment %s: entry not executable", c.Name)
	}

	// The switcher: register clearing, stack swap, seal bookkeeping.
	m.CapManip(transitionUops)
	// The domain transfer is a capability jump into different PCC bounds.
	m.CallVirtual(c.fnCore)
	c.Crossings++

	body(unsData, c.heapBase)

	m.Return()
	m.CapManip(transitionUops / 2) // return path re-seals and restores
	return nil
}

// Alloc bump-allocates from the compartment's private heap; the returned
// pointer is only dereferenceable through the domain's data capability.
func (c *Compartment) Alloc(size uint64) (core.Ptr, error) {
	size = (size + 15) &^ 15
	if c.heapUsed+size > c.heapSize {
		return 0, fmt.Errorf("compartment %s: private heap exhausted", c.Name)
	}
	p := c.heapBase + core.Ptr(c.heapUsed)
	c.heapUsed += size
	return p, nil
}

// CheckAccess reports whether the (unsealed) data capability authorises an
// access of size bytes at addr — the hardware check a compartmentalised
// library hits when handed a pointer from another domain.
func CheckAccess(data cap.Capability, addr core.Ptr, size uint64) error {
	return data.WithAddress(uint64(addr)).CheckAccess(size, cap.PermLoad|cap.PermStore)
}
