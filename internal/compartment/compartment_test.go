package compartment

import (
	"errors"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
	"cherisim/internal/core"
)

func setup(t *testing.T) (*core.Machine, *Manager) {
	t.Helper()
	m := core.New(abi.Purecap)
	m.Func("main", 1024, 96)
	return m, NewManager(m)
}

func TestCreateSealsEntryPair(t *testing.T) {
	m, g := setup(t)
	_ = m
	c, err := g.Create("libvfs", 2048, 128, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Entry.Sealed() || !c.Data.Sealed() {
		t.Fatal("entry pair not sealed")
	}
	if c.Entry.OType() != c.Data.OType() {
		t.Error("entry and data sealed with different otypes")
	}
	// The sealed capabilities are inert: no deref, no reseal.
	if err := c.Data.CheckAccess(8, cap.PermLoad); !errors.Is(err, cap.ErrSealViolation) {
		t.Errorf("sealed data dereferenced: %v", err)
	}
}

func TestDistinctOTypesPerCompartment(t *testing.T) {
	_, g := setup(t)
	a, _ := g.Create("a", 1024, 64, 4096)
	b, _ := g.Create("b", 1024, 64, 4096)
	if a.Entry.OType() == b.Entry.OType() {
		t.Error("compartments share an object type")
	}
}

func TestCallCrossesAndRuns(t *testing.T) {
	m, g := setup(t)
	c, err := g.Create("libbtree", 2048, 128, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	err = m.Run(func(m *core.Machine) {
		for i := 0; i < 10; i++ {
			if err := c.Call(func(data cap.Capability, heap core.Ptr) {
				ran = true
				if data.Sealed() {
					t.Error("body received sealed data capability")
				}
				if !data.InBounds(uint64(heap), 64) {
					t.Error("data capability does not cover the private heap")
				}
				m.Store(heap, uint64(i), 8)
				m.Load(heap, 8)
			}); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body never ran")
	}
	if c.Crossings != 10 {
		t.Errorf("crossings = %d", c.Crossings)
	}
}

func TestCrossingCostCharged(t *testing.T) {
	run := func(crossings int) uint64 {
		m := core.New(abi.Purecap)
		m.Func("main", 1024, 96)
		g := NewManager(m)
		c, _ := g.Create("lib", 2048, 128, 1<<16)
		_ = m.Run(func(m *core.Machine) {
			for i := 0; i < crossings; i++ {
				_ = c.Call(func(cap.Capability, core.Ptr) { m.ALU(10) })
			}
		})
		return m.Cycles()
	}
	few, many := run(10), run(1000)
	perCrossing := float64(many-few) / 990
	if perCrossing < 5 {
		t.Errorf("crossing cost %.1f cycles, implausibly cheap", perCrossing)
	}
	if perCrossing > 500 {
		t.Errorf("crossing cost %.1f cycles, context-switch territory (CHERI crossings are cheap)", perCrossing)
	}
}

func TestPurecapCrossingsCostMoreThanBenchmarkABI(t *testing.T) {
	// Domain transfers are capability jumps: under purecap they pay the
	// Morello PCC penalty that the benchmark ABI avoids.
	run := func(a abi.ABI) uint64 {
		m := core.New(a)
		m.Func("main", 1024, 96)
		g := NewManager(m)
		c, _ := g.Create("lib", 2048, 128, 1<<16)
		_ = m.Run(func(m *core.Machine) {
			for i := 0; i < 500; i++ {
				_ = c.Call(func(cap.Capability, core.Ptr) { m.ALU(10) })
			}
		})
		return m.Cycles()
	}
	if pure, bench := run(abi.Purecap), run(abi.Benchmark); pure <= bench {
		t.Errorf("purecap crossings (%d cycles) not dearer than benchmark ABI (%d)", pure, bench)
	}
}

func TestPrivateHeapBudget(t *testing.T) {
	_, g := setup(t)
	c, _ := g.Create("lib", 1024, 64, 256)
	if _, err := c.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(16); err == nil {
		t.Fatal("over-budget allocation accepted")
	}
}

func TestCheckAccessEnforcesDomainBounds(t *testing.T) {
	m, g := setup(t)
	c, _ := g.Create("lib", 1024, 64, 4096)
	outside := m.Alloc(64) // main-domain allocation
	err := m.Run(func(m *core.Machine) {
		_ = c.Call(func(data cap.Capability, heap core.Ptr) {
			if err := CheckAccess(data, heap, 8); err != nil {
				t.Errorf("in-domain access rejected: %v", err)
			}
			if err := CheckAccess(data, outside, 8); err == nil {
				t.Error("cross-domain access authorised by private capability")
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
