package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/profile"
	"cherisim/internal/workloads"
)

func sampleHotspots(t *testing.T) *HotspotSet {
	t.Helper()
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}
	var profs [3]core.AttributionProfile
	for _, a := range abi.All() {
		m, err := workloads.Execute(w, a, 1)
		if err != nil {
			t.Fatal(err)
		}
		profs[a] = m.AttributionProfile()
	}
	h := NewHotspotSet(1)
	h.Add(w.Name, profile.Diff(profs))
	return h
}

func TestHotspotJSONRoundTrip(t *testing.T) {
	h := sampleHotspots(t)
	if len(h.Rows) == 0 {
		t.Fatal("no hotspot rows")
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got HotspotSet
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("hotspot JSON does not parse: %v", err)
	}
	if got.Tool != "cherisim" || got.Scale != 1 || len(got.Rows) != len(h.Rows) {
		t.Fatalf("round trip lost provenance: %+v", got)
	}
	// float64 JSON round-trips bit-exactly (shortest representation), so the
	// decoded rows must equal the originals.
	for i := range h.Rows {
		if got.Rows[i] != h.Rows[i] {
			t.Fatalf("row %d changed across the round trip:\n%+v\n%+v", i, got.Rows[i], h.Rows[i])
		}
	}
}

func TestHotspotCSV(t *testing.T) {
	h := sampleHotspots(t)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("hotspot CSV does not parse: %v", err)
	}
	if len(rows) != len(h.Rows)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(rows), len(h.Rows)+1)
	}
	wantCols := 2 + 3*len(abi.All()) + 4
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	if rows[0][0] != "workload" || rows[0][1] != "function" {
		t.Fatalf("unexpected header: %v", rows[0])
	}
	var residual bool
	for _, r := range rows[1:] {
		if r[0] != "sqlite" {
			t.Fatalf("row workload %q", r[0])
		}
		if r[1] == core.ResidualName {
			residual = true
		}
	}
	if !residual {
		t.Error("CSV lacks the residual pseudo-function row")
	}
}
