package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SecurityCell is one (attack, ABI) verdict of the memory-safety attack
// corpus: the classified outcome, the expected-outcome spec it was checked
// against, and the canary-witness detail for silently corrupted runs.
type SecurityCell struct {
	Attack string `json:"attack"`
	CWE    string `json:"cwe"`
	ABI    string `json:"abi"`
	// Got and Want render the classified and expected outcomes ("clean",
	// "corrupted", "trap(bounds)", ...).
	Got  string `json:"got"`
	Want string `json:"want"`
	// Expected reports whether Got matched the spec; Detail explains a
	// divergence.
	Expected bool   `json:"expected"`
	Detail   string `json:"detail,omitempty"`
	// Uops is the µop count of the run (position of the fault for traps).
	Uops uint64 `json:"uops"`
	// BadWords/FirstBad carry the witnessed corruption extent for
	// corrupted survivals: mismatching canary words and the byte offset
	// of the first, relative to the canary base.
	BadWords uint64 `json:"badWords,omitempty"`
	FirstBad uint64 `json:"firstBad,omitempty"`
}

// SecurityReport is the machine-readable form of the security experiment:
// the corpus × ABI verdict matrix turning the paper's Appendix Table 5
// asymmetry into a regression oracle.
type SecurityReport struct {
	Tool  string         `json:"tool"`
	Cells []SecurityCell `json:"cells"`
}

// NewSecurityReport creates an empty report with provenance metadata.
func NewSecurityReport() *SecurityReport {
	return &SecurityReport{Tool: "cherisim"}
}

// Add appends a cell.
func (r *SecurityReport) Add(c SecurityCell) { r.Cells = append(r.Cells, c) }

// Diverged returns the number of cells whose verdict missed the spec.
func (r *SecurityReport) Diverged() int {
	n := 0
	for _, c := range r.Cells {
		if !c.Expected {
			n++
		}
	}
	return n
}

// SilentCorruptions returns the number of cells that survived with
// witnessed canary corruption.
func (r *SecurityReport) SilentCorruptions() int {
	n := 0
	for _, c := range r.Cells {
		if c.Got == "corrupted" {
			n++
		}
	}
	return n
}

// WriteJSON streams the report as indented JSON.
func (r *SecurityReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadSecurityJSON parses a report written by WriteJSON.
func ReadSecurityJSON(rd io.Reader) (*SecurityReport, error) {
	var r SecurityReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decode security: %w", err)
	}
	return &r, nil
}

// WriteCSV emits one row per cell.
func (r *SecurityReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"attack", "cwe", "abi", "got", "want", "expected", "uops", "bad_words", "first_bad"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			c.Attack, c.CWE, c.ABI, c.Got, c.Want,
			strconv.FormatBool(c.Expected),
			strconv.FormatUint(c.Uops, 10),
			strconv.FormatUint(c.BadWords, 10),
			strconv.FormatUint(c.FirstBad, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
