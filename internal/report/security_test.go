package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleSecurity() *SecurityReport {
	r := NewSecurityReport()
	r.Add(SecurityCell{
		Attack: "uaf", CWE: "CWE-416", ABI: "hybrid",
		Got: "corrupted", Want: "corrupted", Expected: true,
		Uops: 12345, BadWords: 2, FirstBad: 16,
	})
	r.Add(SecurityCell{
		Attack: "uaf", CWE: "CWE-416", ABI: "purecap",
		Got: "trap(tag)", Want: "trap(tag)", Expected: true, Uops: 9876,
	})
	r.Add(SecurityCell{
		Attack: "oob-read", CWE: "CWE-125", ABI: "purecap",
		Got: "clean", Want: "trap(bounds)", Expected: false,
		Detail: "want trap(bounds), got clean", Uops: 555,
	})
	return r
}

func TestSecurityJSONRoundTrip(t *testing.T) {
	r := sampleSecurity()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSecurityJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", r, got)
	}
	if got.Diverged() != 1 {
		t.Fatalf("Diverged = %d, want 1", got.Diverged())
	}
	if got.SilentCorruptions() != 1 {
		t.Fatalf("SilentCorruptions = %d, want 1", got.SilentCorruptions())
	}
}

func TestSecurityCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSecurity().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 cells:\n%s", len(lines), buf.String())
	}
	if lines[0] != "attack,cwe,abi,got,want,expected,uops,bad_words,first_bad" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "uaf,CWE-416,hybrid,corrupted,corrupted,true,12345,2,16" {
		t.Fatalf("corrupted row = %q", lines[1])
	}
	if !strings.Contains(lines[3], "false") {
		t.Fatalf("diverged row lost its flag: %q", lines[3])
	}
}

func TestReadSecurityJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadSecurityJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
