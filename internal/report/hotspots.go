package report

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"cherisim/internal/abi"
	"cherisim/internal/profile"
)

// HotspotRow is one function's differential attribution for one workload in
// exportable form — a profile.FnDiff tagged with its workload.
type HotspotRow struct {
	Workload string `json:"workload"`
	profile.FnDiff
}

// HotspotSet is the machine-readable form of the hotspots experiment: every
// workload's differential per-function report, in collection order.
type HotspotSet struct {
	Tool  string       `json:"tool"`
	Scale int          `json:"scale"`
	Rows  []HotspotRow `json:"rows"`
}

// NewHotspotSet creates an empty hotspot export for the given scale.
func NewHotspotSet(scale int) *HotspotSet {
	return &HotspotSet{Tool: "cherisim", Scale: scale}
}

// Add appends one workload's differential report.
func (h *HotspotSet) Add(workload string, diffs []profile.FnDiff) {
	for _, d := range diffs {
		h.Rows = append(h.Rows, HotspotRow{Workload: workload, FnDiff: d})
	}
}

// WriteJSON streams the hotspot set as indented JSON.
func (h *HotspotSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// WriteCSV emits one row per (workload, function) with the side-by-side
// per-ABI cycles/shares and the growth attribution, in a stable column
// order.
func (h *HotspotSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "function"}
	for _, a := range abi.All() {
		header = append(header, "cycles_"+a.String(), "share_"+a.String(), "uops_"+a.String())
	}
	header = append(header, "delta", "ratio", "growth", "growth_delta")
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, r := range h.Rows {
		row := []string{r.Workload, r.Name}
		for _, a := range abi.All() {
			row = append(row, f(r.Cycles[a]), f(r.Share[a]), strconv.FormatUint(r.Uops[a], 10))
		}
		row = append(row, f(r.Delta), f(r.Ratio), r.Growth, f(r.GrowthDelta))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
