package report

import (
	"bytes"
	"encoding/csv"
	"reflect"
	"strings"
	"testing"
)

func sampleScale() *ScaleReport {
	r := NewScaleReport("llama-matmul")
	r.Add(ScaleCell{Topology: "mesh", Cores: 16, Slices: 16, ABI: "hybrid",
		Epochs: 42, MeanSlowdown: 1.12, WorstSlowdown: 1.31, LLCReadMR: 0.18,
		HopsPerAccess: 2.4, SliceContention: 900, LinkContention: 120, Accesses: 50000})
	r.Add(ScaleCell{Topology: "ring", Cores: 64, Slices: 64, ABI: "purecap",
		Epochs: 99, MeanSlowdown: 1.55, WorstSlowdown: 2.02, LLCReadMR: 0.33,
		HopsPerAccess: 16.1, SliceContention: 4400, LinkContention: 3100, Accesses: 210000})
	return r
}

func TestScaleJSONRoundTrip(t *testing.T) {
	r := sampleScale()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScaleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", r, got)
	}
}

func TestScaleReadRejectsGarbage(t *testing.T) {
	if _, err := ReadScaleJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestScaleCSVShape(t *testing.T) {
	r := sampleScale()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(r.Cells) {
		t.Fatalf("rows = %d, want header + %d cells", len(rows), len(r.Cells))
	}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(row), len(rows[0]))
		}
	}
	if rows[1][0] != "mesh" || rows[2][3] != "purecap" {
		t.Fatalf("unexpected cell layout: %v", rows)
	}
}
