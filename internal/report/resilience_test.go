package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleResilience() *ResilienceReport {
	r := NewResilienceReport(7, []string{"tag-clear", "spurious-trap"}, []float64{0, 20})
	r.Add(ResilienceCell{RatePerMUops: 0, Workload: "a", ABI: "hybrid", Status: "ok", Attempts: 1})
	r.Add(ResilienceCell{RatePerMUops: 0, Workload: "a", ABI: "purecap", Status: "tag", Attempts: 1,
		Err: "capability fault"})
	r.Add(ResilienceCell{RatePerMUops: 20, Workload: "a", ABI: "hybrid", Status: "ok", Attempts: 2, Injected: 3})
	r.Add(ResilienceCell{RatePerMUops: 20, Workload: "a", ABI: "purecap", Status: "bounds", Attempts: 1, Injected: 1,
		Err: "capability fault"})
	return r
}

func TestResilienceJSONRoundTrip(t *testing.T) {
	r := sampleResilience()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResilienceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip changed report:\n in: %+v\nout: %+v", r, got)
	}
}

func TestResilienceReadRejectsGarbage(t *testing.T) {
	if _, err := ReadResilienceJSON(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestResilienceSurvival(t *testing.T) {
	r := sampleResilience()
	if frac, n := r.Survival(0); n != 2 || frac != 0.5 {
		t.Fatalf("Survival(0) = %v, %d", frac, n)
	}
	if frac, n := r.Survival(20); n != 2 || frac != 0.5 {
		t.Fatalf("Survival(20) = %v, %d", frac, n)
	}
	if _, n := r.Survival(999); n != 0 {
		t.Fatalf("Survival(999) found %d cells", n)
	}
}

func TestResilienceCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResilience().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header + 4 rows, got %d lines", len(lines))
	}
	if lines[0] != "rate_per_muops,workload,abi,status,attempts,injected" {
		t.Fatalf("bad header: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 5 {
			t.Fatalf("bad row: %q", l)
		}
	}
}
