package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ScaleCell is one (topology, cores, ABI) point of the many-core scale
// experiment: the co-run's aggregate slowdown against its solo baseline
// plus the fabric's traffic and contention accounting.
type ScaleCell struct {
	Topology string `json:"topology"`
	Cores    int    `json:"cores"`
	Slices   int    `json:"slices"`
	ABI      string `json:"abi"`
	Epochs   uint64 `json:"epochs"`
	// MeanSlowdown and WorstSlowdown are co-run/solo time ratios across
	// the cores (1.0 = no interference).
	MeanSlowdown  float64 `json:"meanSlowdown"`
	WorstSlowdown float64 `json:"worstSlowdown"`
	// LLCReadMR is the mean per-core last-level read miss ratio.
	LLCReadMR float64 `json:"llcReadMR"`
	// HopsPerAccess is the mean NoC distance of an LLC access.
	HopsPerAccess float64 `json:"hopsPerAccess"`
	// SliceContention and LinkContention are the fabric's total settled
	// contention cycles, by resource class.
	SliceContention uint64 `json:"sliceContention"`
	LinkContention  uint64 `json:"linkContention"`
	// Accesses is the total sliced-LLC traffic the fabric carried.
	Accesses uint64 `json:"accesses"`
}

// ScaleReport is the machine-readable form of the scale experiment: the
// topology x core-count x ABI sweep over the fabric co-runs.
type ScaleReport struct {
	Tool     string      `json:"tool"`
	Workload string      `json:"workload"`
	Cells    []ScaleCell `json:"cells"`
}

// NewScaleReport creates an empty report with provenance metadata.
func NewScaleReport(workload string) *ScaleReport {
	return &ScaleReport{Tool: "cherisim", Workload: workload}
}

// Add appends a cell.
func (r *ScaleReport) Add(c ScaleCell) { r.Cells = append(r.Cells, c) }

// WriteJSON streams the report as indented JSON.
func (r *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadScaleJSON parses a report written by WriteJSON.
func ReadScaleJSON(rd io.Reader) (*ScaleReport, error) {
	var r ScaleReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decode scale: %w", err)
	}
	return &r, nil
}

// WriteCSV emits one row per cell.
func (r *ScaleReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"topology", "cores", "slices", "abi", "epochs",
		"mean_slowdown", "worst_slowdown", "llc_read_mr", "hops_per_access",
		"slice_contention", "link_contention", "accesses"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			c.Topology,
			strconv.Itoa(c.Cores),
			strconv.Itoa(c.Slices),
			c.ABI,
			strconv.FormatUint(c.Epochs, 10),
			strconv.FormatFloat(c.MeanSlowdown, 'g', -1, 64),
			strconv.FormatFloat(c.WorstSlowdown, 'g', -1, 64),
			strconv.FormatFloat(c.LLCReadMR, 'g', -1, 64),
			strconv.FormatFloat(c.HopsPerAccess, 'g', -1, 64),
			strconv.FormatUint(c.SliceContention, 10),
			strconv.FormatUint(c.LinkContention, 10),
			strconv.FormatUint(c.Accesses, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
