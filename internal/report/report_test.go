package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset(1)
	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []abi.ABI{abi.Hybrid, abi.Purecap} {
		m, err := workloads.Execute(w, a, 1)
		if err != nil {
			t.Fatal(err)
		}
		d.Add(NewSample(w.Name, a, &m.C))
	}
	return d
}

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "cherisim" || got.Scale != 1 || len(got.Samples) != 2 {
		t.Fatalf("round trip lost metadata: %+v", got)
	}
	s := got.Samples[0]
	if s.Workload != "519.lbm_r" || s.ABI != "hybrid" {
		t.Errorf("sample identity lost: %s/%s", s.Workload, s.ABI)
	}
	if s.Metrics.IPC <= 0 || s.Events["CPU_CYCLES"] == 0 {
		t.Error("measurement data lost in round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMetricsCSVShape(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 samples
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "workload" || rows[0][2] != "seconds" {
		t.Errorf("header = %v", rows[0][:3])
	}
	for _, r := range rows[1:] {
		if len(r) != len(rows[0]) {
			t.Error("ragged CSV row")
		}
	}
	if rows[1][1] != "hybrid" || rows[2][1] != "purecap" {
		t.Errorf("abi column wrong: %s/%s", rows[1][1], rows[2][1])
	}
}

func TestEventsCSVCoversAllEvents(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 2 + int(pmu.NumEvents)
	if len(rows[0]) != wantCols {
		t.Fatalf("header columns = %d, want %d", len(rows[0]), wantCols)
	}
	// Every value parses as an unsigned integer.
	for _, cell := range rows[1][2:] {
		for _, ch := range cell {
			if ch < '0' || ch > '9' {
				t.Fatalf("non-numeric event cell %q", cell)
			}
		}
	}
}
