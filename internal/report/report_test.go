package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

func sampleDataset(t *testing.T) *Dataset {
	t.Helper()
	d := NewDataset(1)
	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []abi.ABI{abi.Hybrid, abi.Purecap} {
		m, err := workloads.Execute(w, a, 1)
		if err != nil {
			t.Fatal(err)
		}
		d.Add(NewSample(w.Name, a, &m.C))
	}
	return d
}

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "cherisim" || got.Scale != 1 || len(got.Samples) != 2 {
		t.Fatalf("round trip lost metadata: %+v", got)
	}
	s := got.Samples[0]
	if s.Workload != "519.lbm_r" || s.ABI != "hybrid" {
		t.Errorf("sample identity lost: %s/%s", s.Workload, s.ABI)
	}
	if s.Metrics.IPC <= 0 || s.Events["CPU_CYCLES"] == 0 {
		t.Error("measurement data lost in round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMetricsCSVShape(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + 2 samples
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "workload" || rows[0][2] != "seconds" {
		t.Errorf("header = %v", rows[0][:3])
	}
	for _, r := range rows[1:] {
		if len(r) != len(rows[0]) {
			t.Error("ragged CSV row")
		}
	}
	if rows[1][1] != "hybrid" || rows[2][1] != "purecap" {
		t.Errorf("abi column wrong: %s/%s", rows[1][1], rows[2][1])
	}
}

func TestEventsCSVCoversAllEvents(t *testing.T) {
	d := sampleDataset(t)
	var buf bytes.Buffer
	if err := d.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 2 + int(pmu.NumEvents)
	if len(rows[0]) != wantCols {
		t.Fatalf("header columns = %d, want %d", len(rows[0]), wantCols)
	}
	// Every value parses as an unsigned integer.
	for _, cell := range rows[1][2:] {
		for _, ch := range cell {
			if ch < '0' || ch > '9' {
				t.Fatalf("non-numeric event cell %q", cell)
			}
		}
	}
}

// TestEventsCSVMissingEventsRoundTrip pins the missing-event fix through
// the JSON path: a dataset decoded from a JSON written before a PMU event
// existed must export that event as an empty cell — never a fabricated
// 0 — and WriteEventsCSV must return an error naming every missing event.
func TestEventsCSVMissingEventsRoundTrip(t *testing.T) {
	d := sampleDataset(t)
	// Simulate an old-format JSON: strip two events from the first sample
	// before the write/read round trip, as if the dataset predated them.
	dropped := []string{"PCC_STALL_CYCLES", "BAD_SPEC_CYCLES"}
	for _, n := range dropped {
		delete(d.Samples[0].Events, n)
	}
	var js bytes.Buffer
	if err := d.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	err = got.WriteEventsCSV(&buf)
	if err == nil {
		t.Fatal("missing events silently exported (pre-fix behaviour emitted 0)")
	}
	for _, n := range dropped {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error does not name missing event %s: %v", n, err)
		}
	}

	rows, rerr := csv.NewReader(&buf).ReadAll()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (CSV must still be written in full)", len(rows))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, n := range dropped {
		if cell := rows[1][col[n]]; cell != "" {
			t.Errorf("missing event %s exported as %q, want empty cell", n, cell)
		}
		if cell := rows[2][col[n]]; cell == "" {
			t.Errorf("event %s present in sample 2 but exported empty", n)
		}
	}
	// A complete dataset still round-trips error-free.
	var clean bytes.Buffer
	if err := sampleDataset(t).WriteEventsCSV(&clean); err != nil {
		t.Fatalf("complete dataset errored: %v", err)
	}
}

func TestMetricVectorMatchesCSVColumns(t *testing.T) {
	d := sampleDataset(t)
	s := d.Samples[0]
	v := MetricVector(&s.Metrics, &s.Topdown)
	names := MetricNames()
	if len(v) != len(names) {
		t.Fatalf("vector has %d metrics, names list %d", len(v), len(names))
	}
	for _, n := range names {
		if _, ok := v[n]; !ok {
			t.Errorf("vector missing metric %s", n)
		}
	}
	if v["seconds"] != s.Metrics.Seconds || v["backend_bound"] != s.Topdown.BackendBound {
		t.Error("vector values disagree with the sample")
	}
}
