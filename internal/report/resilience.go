package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ResilienceCell is one (rate, workload, ABI) outcome of a fault-injection
// sweep: how the run ended, how many attempts the supervisor spent on it,
// and how many faults were injected into the final attempt.
type ResilienceCell struct {
	RatePerMUops float64 `json:"rate_per_muops"`
	Workload     string  `json:"workload"`
	ABI          string  `json:"abi"`
	// Status is "ok", "deadline", "panic", or the fault-kind name of the
	// fatal capability violation ("tag", "bounds", "perm", ...).
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	Injected int    `json:"injected"`
	// Err is the run's error text, empty for surviving runs.
	Err string `json:"err,omitempty"`
}

// ResilienceReport is the machine-readable form of the resilience
// experiment: the crash matrix extending the paper's Appendix Table 5 from
// two naturally-crashing benchmarks to a systematic rate sweep.
type ResilienceReport struct {
	Tool  string           `json:"tool"`
	Seed  uint64           `json:"seed"`
	Kinds []string         `json:"kinds"`
	Rates []float64        `json:"rates_per_muops"`
	Cells []ResilienceCell `json:"cells"`
}

// NewResilienceReport creates an empty report with provenance metadata.
func NewResilienceReport(seed uint64, kinds []string, rates []float64) *ResilienceReport {
	return &ResilienceReport{Tool: "cherisim", Seed: seed, Kinds: kinds, Rates: rates}
}

// Add appends a cell.
func (r *ResilienceReport) Add(c ResilienceCell) { r.Cells = append(r.Cells, c) }

// Survival returns the fraction of cells at the given rate that survived
// (status "ok"), and the number of such cells.
func (r *ResilienceReport) Survival(rate float64) (frac float64, n int) {
	ok := 0
	for _, c := range r.Cells {
		if c.RatePerMUops != rate {
			continue
		}
		n++
		if c.Status == "ok" {
			ok++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(ok) / float64(n), n
}

// WriteJSON streams the report as indented JSON.
func (r *ResilienceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadResilienceJSON parses a report written by WriteJSON.
func ReadResilienceJSON(rd io.Reader) (*ResilienceReport, error) {
	var r ResilienceReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("report: decode resilience: %w", err)
	}
	return &r, nil
}

// WriteCSV emits one row per cell.
func (r *ResilienceReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate_per_muops", "workload", "abi", "status", "attempts", "injected"}); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			strconv.FormatFloat(c.RatePerMUops, 'g', -1, 64),
			c.Workload, c.ABI, c.Status,
			strconv.Itoa(c.Attempts), strconv.Itoa(c.Injected),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
