// Package report serialises measurement results into machine-readable
// artefacts (JSON and CSV), so downstream analysis — plotting the paper's
// figures, regression tracking across simulator versions — can consume the
// simulator's output without scraping text tables. The paper publishes its
// data as an artefact (github.com/xshaun/iiswc25-ae); this package is the
// equivalent export path.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cherisim/internal/abi"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/topdown"
)

// Sample is one (workload, ABI) measurement in exportable form.
type Sample struct {
	Workload string             `json:"workload"`
	ABI      string             `json:"abi"`
	Metrics  metrics.Metrics    `json:"metrics"`
	Topdown  topdown.Breakdown  `json:"topdown"`
	Events   map[string]uint64  `json:"events"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// NewSample builds a Sample from raw counters.
func NewSample(workload string, a abi.ABI, c *pmu.Counters) Sample {
	events := make(map[string]uint64, int(pmu.NumEvents))
	for _, e := range pmu.AllEvents() {
		events[e.String()] = c.Get(e)
	}
	return Sample{
		Workload: workload,
		ABI:      a.String(),
		Metrics:  metrics.Compute(c),
		Topdown:  topdown.Analyze(c),
		Events:   events,
	}
}

// Dataset is an ordered collection of samples with provenance metadata.
type Dataset struct {
	// Tool identifies the producer ("cherisim").
	Tool string `json:"tool"`
	// Scale is the workload scale factor the samples were collected at.
	Scale int `json:"scale"`
	// Samples holds the measurements in collection order.
	Samples []Sample `json:"samples"`
}

// NewDataset creates an empty dataset for the given scale.
func NewDataset(scale int) *Dataset {
	return &Dataset{Tool: "cherisim", Scale: scale}
}

// Add appends a sample.
func (d *Dataset) Add(s Sample) { d.Samples = append(d.Samples, s) }

// WriteJSON streams the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadJSON parses a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &d, nil
}

// csvMetricColumns is the derived-metric column set of the CSV export, in
// a stable order.
var csvMetricColumns = []struct {
	name string
	get  func(m *metrics.Metrics, t *topdown.Breakdown) float64
}{
	{"seconds", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.Seconds }},
	{"ipc", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.IPC }},
	{"branch_mr", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.BranchMR }},
	{"l1i_mr", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.L1IMR }},
	{"l1d_mr", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.L1DMR }},
	{"l2_mr", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.L2MR }},
	{"llc_rd_mr", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.LLCReadMR }},
	{"dtlb_walk_rate", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.DTLBWalkRate }},
	{"cap_load_density", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.CapLoadDensity }},
	{"cap_store_density", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.CapStoreDensity }},
	{"cap_traffic_share", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.CapTrafficShare }},
	{"memory_intensity", func(m *metrics.Metrics, _ *topdown.Breakdown) float64 { return m.MemoryIntensity }},
	{"retiring", func(_ *metrics.Metrics, t *topdown.Breakdown) float64 { return t.Retiring }},
	{"bad_spec", func(_ *metrics.Metrics, t *topdown.Breakdown) float64 { return t.BadSpec }},
	{"frontend_bound", func(_ *metrics.Metrics, t *topdown.Breakdown) float64 { return t.FrontendBound }},
	{"backend_bound", func(_ *metrics.Metrics, t *topdown.Breakdown) float64 { return t.BackendBound }},
	{"memory_bound", func(_ *metrics.Metrics, t *topdown.Breakdown) float64 { return t.MemoryBound }},
	{"core_bound", func(_ *metrics.Metrics, t *topdown.Breakdown) float64 { return t.CoreBound }},
}

// MetricNames returns the derived-metric column names of the CSV export in
// their stable order — the same vector the golden-baseline gate compares.
func MetricNames() []string {
	out := make([]string, len(csvMetricColumns))
	for i, c := range csvMetricColumns {
		out[i] = c.name
	}
	return out
}

// MetricVector returns one sample's derived metrics as a name->value map,
// using the CSV column set (the per-(workload,ABI) vector the
// golden-baseline regression gate stores and diffs).
func MetricVector(m *metrics.Metrics, t *topdown.Breakdown) map[string]float64 {
	out := make(map[string]float64, len(csvMetricColumns))
	for _, c := range csvMetricColumns {
		out[c.name] = c.get(m, t)
	}
	return out
}

// WriteMetricsCSV emits one row per sample with the derived-metric columns.
func (d *Dataset) WriteMetricsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"workload", "abi"}
	for _, c := range csvMetricColumns {
		header = append(header, c.name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range d.Samples {
		s := &d.Samples[i]
		row := []string{s.Workload, s.ABI}
		for _, c := range csvMetricColumns {
			row = append(row, strconv.FormatFloat(c.get(&s.Metrics, &s.Topdown), 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEventsCSV emits one row per sample with every raw PMU event as a
// column (stable, sorted order). An event absent from a sample's Events
// map — e.g. a dataset decoded from a JSON written before that PMU event
// existed — is emitted as an empty cell, never a fabricated 0, and after
// the full CSV is written an error lists every missing event so the caller
// can distinguish "counted zero" from "never counted".
func (d *Dataset) WriteEventsCSV(w io.Writer) error {
	names := make([]string, 0, int(pmu.NumEvents))
	for _, e := range pmu.AllEvents() {
		names = append(names, e.String())
	}
	sort.Strings(names)

	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"workload", "abi"}, names...)); err != nil {
		return err
	}
	missing := map[string]int{} // event name -> samples lacking it
	for _, s := range d.Samples {
		row := []string{s.Workload, s.ABI}
		for _, n := range names {
			v, ok := s.Events[n]
			if !ok {
				missing[n]++
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatUint(v, 10))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if len(missing) > 0 {
		lacking := make([]string, 0, len(missing))
		for n := range missing {
			lacking = append(lacking, n)
		}
		sort.Strings(lacking)
		for i, n := range lacking {
			lacking[i] = fmt.Sprintf("%s (%d samples)", n, missing[n])
		}
		return fmt.Errorf("report: events CSV has empty cells for events missing from the dataset: %s",
			strings.Join(lacking, ", "))
	}
	return nil
}
