package golden

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestToleranceAllows(t *testing.T) {
	cases := []struct {
		tol       Tolerance
		want, got float64
		allowed   bool
	}{
		{Tolerance{}, 1.5, 1.5, true},                   // zero tolerance = bit equality
		{Tolerance{}, 1.5, 1.5000001, false},            // any drift fails exact
		{Tolerance{Abs: 0.01}, 1.5, 1.509, true},        // within abs
		{Tolerance{Abs: 0.01}, 1.5, 1.52, false},        // outside abs
		{Tolerance{Rel: 0.1}, 100, 109, true},           // within 10% rel
		{Tolerance{Rel: 0.1}, 100, 111, false},          // outside rel
		{Tolerance{Abs: 1, Rel: 0.1}, 100, 110.5, true}, // abs+rel compose
		{Tolerance{Rel: 0.1}, -100, -109, true},         // rel uses |want|
		{Tolerance{}, 0, 0, true},
		{Tolerance{}, math.NaN(), math.NaN(), true}, // both NaN passes
		{Tolerance{Abs: 1e9}, math.NaN(), 1, false}, // NaN vs number never
		{Tolerance{Abs: 1e9}, 1, math.NaN(), false},
	}
	for _, tc := range cases {
		if got := tc.tol.Allows(tc.want, tc.got); got != tc.allowed {
			t.Errorf("Tolerance%+v.Allows(%v, %v) = %v, want %v",
				tc.tol, tc.want, tc.got, got, tc.allowed)
		}
	}
}

func sampleBaseline() *Baseline {
	b := New("model-x", 1, map[string]map[string]float64{
		"alpha/hybrid":  {"ipc": 1.5, "mr": 0.02},
		"alpha/purecap": {"ipc": 1.2, "mr": 0.03},
	})
	return b
}

func TestDiffClean(t *testing.T) {
	b := sampleBaseline()
	got := map[string]map[string]float64{
		"alpha/hybrid":  {"ipc": 1.5, "mr": 0.02},
		"alpha/purecap": {"ipc": 1.2, "mr": 0.03},
	}
	if drifts := b.Diff(got); len(drifts) != 0 {
		t.Errorf("clean diff reported drifts: %v", drifts)
	}
}

// TestDiffKinds exercises every drift class in one comparison and pins the
// deterministic (pair, metric) report order.
func TestDiffKinds(t *testing.T) {
	b := sampleBaseline()
	got := map[string]map[string]float64{
		"alpha/hybrid": {"ipc": 9.9}, // ipc drifted, mr missing
		// alpha/purecap missing entirely
		"beta/hybrid": {"ipc": 1.0}, // not in baseline
	}
	drifts := b.Diff(got)
	kinds := make([]string, len(drifts))
	for i, d := range drifts {
		kinds[i] = d.Kind + ":" + d.Pair + ":" + d.Metric
	}
	want := []string{
		"value:alpha/hybrid:ipc",
		"missing-metric:alpha/hybrid:mr",
		"missing-pair:alpha/purecap:",
		"extra-pair:beta/hybrid:",
	}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("drifts = %v, want %v", kinds, want)
	}
	// Determinism: a second diff reports the identical sequence.
	again := b.Diff(got)
	if !reflect.DeepEqual(drifts, again) {
		t.Error("diff order is not deterministic")
	}
	for _, d := range drifts {
		if d.String() == "" {
			t.Errorf("empty rendering for %+v", d)
		}
	}
}

func TestToleranceOverrides(t *testing.T) {
	b := sampleBaseline()
	b.Default = Tolerance{}
	b.Metrics = map[string]Tolerance{"ipc": {Rel: 0.5}}
	got := map[string]map[string]float64{
		"alpha/hybrid":  {"ipc": 1.9, "mr": 0.02},  // ipc within 50% override
		"alpha/purecap": {"ipc": 1.2, "mr": 0.031}, // mr fails exact default
	}
	drifts := b.Diff(got)
	if len(drifts) != 1 || drifts[0].Pair != "alpha/purecap" || drifts[0].Metric != "mr" {
		t.Errorf("drifts = %v", drifts)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "golden.json")
	b := sampleBaseline()
	b.Default = Tolerance{Abs: 1e-9}
	b.Metrics = map[string]Tolerance{"ipc": {Rel: 0.01}}
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Errorf("round-trip drifted:\n%+v\n%+v", b, got)
	}
	// Deterministic bytes: rewriting the same baseline is a no-op diff.
	path2 := filepath.Join(dir, "again.json")
	if err := got.Write(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Error("regenerated baseline bytes differ")
	}
}

func TestLoadRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	wrong := filepath.Join(dir, "wrong.json")
	os.WriteFile(wrong, []byte(`{"format":"other/1","entries":{"a":{"m":1}}}`), 0o644)
	if _, err := Load(wrong); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("wrong format accepted: %v", err)
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"format":"`+Format+`","entries":{}}`), 0o644)
	if _, err := Load(empty); err == nil {
		t.Error("empty baseline accepted")
	}
}
