// Package golden implements the regression gate over rendered numbers: a
// committed baseline file of per-(workload, ABI) derived-metric vectors
// with absolute/relative tolerances, a differ that reports every
// out-of-tolerance metric, and an updater. PR 4's lockstep checker guards
// the microarchitectural models; this gate guards the figures themselves,
// so "this change does not move any reported number" becomes an enforced
// check instead of a manual diff — the re-run-the-whole-sweep tax the
// CHERI allocator and interpreter studies paid to confirm regressions.
package golden

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Format identifies the baseline file layout; bump on changes.
const Format = "cherisim-golden/1"

// Tolerance bounds acceptable drift for one metric: a value passes when
// |got-want| <= Abs + Rel*|want|. The zero Tolerance demands bit-equality,
// which the engine's determinism supports.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// Allows reports whether got is within tolerance of want. NaNs never
// compare equal to numbers; two NaNs are treated as in-tolerance.
func (t Tolerance) Allows(want, got float64) bool {
	if math.IsNaN(want) || math.IsNaN(got) {
		return math.IsNaN(want) && math.IsNaN(got)
	}
	return math.Abs(got-want) <= t.Abs+t.Rel*math.Abs(want)
}

// Baseline is the committed golden file: per-pair metric vectors plus the
// tolerances and provenance needed to compare a fresh campaign against it.
type Baseline struct {
	// Format is the file-layout tag (Format).
	Format string `json:"format"`
	// Model is the resultstore.ModelFingerprint the baseline was captured
	// under; a mismatch means the simulator semantics changed and the
	// baseline needs regenerating, not that a figure silently drifted.
	Model string `json:"model"`
	// Scale is the workload scale factor of the capture.
	Scale int `json:"scale"`
	// Default is the tolerance applied to metrics with no override.
	Default Tolerance `json:"default_tolerance"`
	// Metrics holds per-metric tolerance overrides by metric name.
	Metrics map[string]Tolerance `json:"metric_tolerances,omitempty"`
	// Entries maps "workload/abi" to its metric vector.
	Entries map[string]map[string]float64 `json:"entries"`
}

// New builds a baseline over the given entries with exact-match defaults.
func New(model string, scale int, entries map[string]map[string]float64) *Baseline {
	return &Baseline{
		Format:  Format,
		Model:   model,
		Scale:   scale,
		Entries: entries,
	}
}

// Load reads and validates a baseline file.
func Load(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("golden: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("golden: parse %s: %w", path, err)
	}
	if b.Format != Format {
		return nil, fmt.Errorf("golden: %s has format %q, want %q (regenerate with -update-baseline)",
			path, b.Format, Format)
	}
	if len(b.Entries) == 0 {
		return nil, fmt.Errorf("golden: %s has no entries", path)
	}
	return &b, nil
}

// Write persists the baseline atomically (temp file + rename), with keys
// sorted by the JSON encoder so regeneration diffs are minimal.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("golden: encode: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "golden-*")
	if err != nil {
		return fmt.Errorf("golden: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("golden: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("golden: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("golden: commit %s: %w", path, err)
	}
	return nil
}

// ToleranceFor returns the tolerance for a metric (override or default).
func (b *Baseline) ToleranceFor(metric string) Tolerance {
	if t, ok := b.Metrics[metric]; ok {
		return t
	}
	return b.Default
}

// Drift kinds.
const (
	// DriftValue is a metric outside its tolerance.
	DriftValue = "value"
	// DriftMissingPair is a baseline pair absent from the campaign (a
	// workload stopped running or was renamed).
	DriftMissingPair = "missing-pair"
	// DriftExtraPair is a campaign pair absent from the baseline (a new
	// workload landed without -update-baseline).
	DriftExtraPair = "extra-pair"
	// DriftMissingMetric is a baseline metric absent from a pair's vector.
	DriftMissingMetric = "missing-metric"
)

// Drift is one out-of-tolerance finding.
type Drift struct {
	Kind   string  `json:"kind"`
	Pair   string  `json:"pair"`
	Metric string  `json:"metric,omitempty"`
	Want   float64 `json:"want,omitempty"`
	Got    float64 `json:"got,omitempty"`
}

// String renders one drift line for the gate report.
func (d Drift) String() string {
	switch d.Kind {
	case DriftValue:
		delta := d.Got - d.Want
		rel := math.Inf(1)
		if d.Want != 0 {
			rel = delta / d.Want
		}
		return fmt.Sprintf("%s: %s = %.9g, baseline %.9g (drift %+.3g, %+.2f%%)",
			d.Pair, d.Metric, d.Got, d.Want, delta, rel*100)
	case DriftMissingPair:
		return fmt.Sprintf("%s: in baseline but missing from this campaign", d.Pair)
	case DriftExtraPair:
		return fmt.Sprintf("%s: measured but absent from the baseline (run -update-baseline)", d.Pair)
	case DriftMissingMetric:
		return fmt.Sprintf("%s: metric %s missing from this campaign", d.Pair, d.Metric)
	}
	return fmt.Sprintf("%s: %s drift", d.Pair, d.Kind)
}

// Diff compares a fresh campaign's metric vectors against the baseline and
// returns every out-of-tolerance metric and every pair-set mismatch, in
// deterministic (pair, metric) order. An empty result means the campaign
// reproduces the baseline within tolerance.
func (b *Baseline) Diff(got map[string]map[string]float64) []Drift {
	var drifts []Drift
	for _, pair := range sortedKeys(b.Entries) {
		want := b.Entries[pair]
		gv, ok := got[pair]
		if !ok {
			drifts = append(drifts, Drift{Kind: DriftMissingPair, Pair: pair})
			continue
		}
		for _, metric := range sortedKeys(want) {
			wv := want[metric]
			mv, ok := gv[metric]
			if !ok {
				drifts = append(drifts, Drift{Kind: DriftMissingMetric, Pair: pair, Metric: metric})
				continue
			}
			if !b.ToleranceFor(metric).Allows(wv, mv) {
				drifts = append(drifts, Drift{Kind: DriftValue, Pair: pair, Metric: metric, Want: wv, Got: mv})
			}
		}
	}
	for _, pair := range sortedKeys(got) {
		if _, ok := b.Entries[pair]; !ok {
			drifts = append(drifts, Drift{Kind: DriftExtraPair, Pair: pair})
		}
	}
	return drifts
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
