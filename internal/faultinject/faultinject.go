// Package faultinject is a deterministic, seeded capability-fault injector
// for the simulated Morello platform. It rides the machine's quantum
// callback (Machine.SetQuantum): every quantum of executed µops it draws
// from a seeded RNG and, at the configured rate, corrupts architectural
// state the way CHERI-specific failure modes do in the field — tag clears
// on heap capabilities, bounds truncation, permission drops, tag-line
// corruption — or delivers a spurious transient trap.
//
// Injections are latent where the hardware's are: a cleared tag faults only
// when the capability is next dereferenced, a truncated bound only when an
// access crosses it, so the same corruption that kills a purecap run is
// silently tolerated under hybrid — exactly the asymmetry behind the
// paper's Appendix Table 5 "compiled but crashing" benchmarks. Everything
// is a pure function of the seed, so a fault schedule replays bit-for-bit.
package faultinject

import (
	"errors"
	"fmt"
	"strings"

	"cherisim/internal/cap"
	"cherisim/internal/core"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Injectable fault kinds.
const (
	// KindTagClear clears the validity tag of one live in-memory
	// capability; the next dereference through it takes a tag fault.
	KindTagClear Kind = iota
	// KindLineCorrupt clears every tag in one 64-byte line of a live
	// allocation (a tag-cache line upset corrupts four granules at once).
	KindLineCorrupt
	// KindBoundsTruncate halves the bounds of one live allocation; the
	// next access beyond the new bound takes a bounds fault.
	KindBoundsTruncate
	// KindPermDrop strips the load/store permissions from one live
	// in-memory capability; the next pointer load through the slot faults.
	KindPermDrop
	// KindSpuriousTrap delivers an immediate transient trap that corrupts
	// no state — the class a supervised campaign retries.
	KindSpuriousTrap

	numKinds
)

var kindNames = [numKinds]string{
	"tag-clear", "line-corrupt", "bounds-truncate", "perm-drop", "spurious-trap",
}

// String returns the kind's flag-style name.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// AllKinds returns every injectable kind.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKinds resolves a comma-separated kind list ("tag-clear,perm-drop"),
// accepting "all" for the full set. Unknown names are an error, and so are
// empty segments (trailing commas, ",," typos): a chaos campaign asked to
// inject "tag-clear," must not silently run a different kind set than the
// flag says.
func ParseKinds(s string) ([]Kind, error) {
	if strings.TrimSpace(s) == "all" {
		return AllKinds(), nil
	}
	var out []Kind
	seen := map[Kind]bool{}
	for i, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("faultinject: empty fault-kind in segment %d of %q (stray comma?)", i+1, s)
		}
		found := false
		for i, kn := range kindNames {
			if name == kn {
				if !seen[Kind(i)] {
					seen[Kind(i)] = true
					out = append(out, Kind(i))
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (have all, %s)", name, strings.Join(kindNames[:], ", "))
		}
	}
	return out, nil
}

// ErrSpuriousTrap is the cause carried by injected transient traps.
var ErrSpuriousTrap = errors.New("faultinject: spurious trap delivered")

// DefaultQuantum is the injection decision granularity in µops.
const DefaultQuantum = 4096

// Config parameterises an injector.
type Config struct {
	// Seed drives every injection decision; equal seeds replay equal
	// schedules.
	Seed uint64
	// RatePerMUops is the expected number of injected events per million
	// executed µops.
	RatePerMUops float64
	// Kinds is the enabled fault-kind set; nil or empty enables all.
	Kinds []Kind
	// Quantum is the decision granularity in µops (DefaultQuantum if 0).
	Quantum uint64
	// Observe, when non-nil, is invoked synchronously for every performed
	// injection, from the machine's quantum callback. It must not block or
	// touch the machine; the telemetry layer uses it to emit instant events
	// and per-kind counters. Observation never affects the injection
	// schedule — a run with an observer replays bit-for-bit without one.
	Observe func(Event)
}

// Event records one performed injection.
type Event struct {
	Kind Kind   `json:"kind"`
	Uop  uint64 `json:"uop"`  // µop position (quantum granularity)
	Addr uint64 `json:"addr"` // corrupted address (0 for spurious traps)
}

// Injector injects faults into one machine run. It is not safe for
// concurrent use; build one per run (they are cheap).
type Injector struct {
	cfg    Config
	kinds  []Kind
	rng    uint64
	pDraw  uint64 // per-quantum injection threshold in 2^-64 units
	uops   uint64
	events []Event
}

// New builds an injector for the given configuration.
func New(cfg Config) *Injector {
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultQuantum
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	p := cfg.RatePerMUops * float64(cfg.Quantum) / 1e6
	var pDraw uint64
	switch {
	case p >= 1:
		pDraw = ^uint64(0)
	case p > 0:
		pDraw = uint64(p*float64(1<<63)) << 1
	}
	return &Injector{
		cfg:   cfg,
		kinds: append([]Kind(nil), kinds...),
		rng:   splitmix64(cfg.Seed ^ 0x9e3779b97f4a7c15),
		pDraw: pDraw,
	}
}

// RunSeed derives the injector seed for one (campaign seed, workload, ABI,
// attempt) cell, so every run of a campaign has an independent but fully
// reproducible fault schedule, and a retry sees a fresh transient schedule
// instead of deterministically re-tripping on the same trap.
func RunSeed(campaign uint64, workload, abi string, attempt int) uint64 {
	// Mix the campaign seed before absorbing any bytes: a bare XOR would
	// let neighbouring campaigns collide with neighbouring byte values
	// (1^'b' == 2^'a').
	h := splitmix64(campaign)
	for _, s := range []string{workload, "/", abi} {
		for i := 0; i < len(s); i++ {
			h = splitmix64(h + uint64(s[i]) + 1)
		}
	}
	return splitmix64(h + uint64(attempt) + 1)
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (in *Injector) next() uint64 {
	in.rng = splitmix64(in.rng)
	return in.rng
}

func (in *Injector) intn(n int) int { return int(in.next() % uint64(n)) }

// Quantum returns the decision granularity the injector was built with.
func (in *Injector) Quantum() uint64 { return in.cfg.Quantum }

// Events returns the injections performed so far, in execution order.
func (in *Injector) Events() []Event { return in.events }

// Step makes one injection decision; the supervisor calls it from the
// machine's quantum callback. It may panic with a transient *core.Fault
// (spurious trap), which Machine.Run converts into the run's error.
func (in *Injector) Step(m *core.Machine) {
	in.uops += in.cfg.Quantum
	if in.pDraw == 0 || in.next() >= in.pDraw {
		return
	}
	kind := in.kinds[in.intn(len(in.kinds))]
	switch kind {
	case KindTagClear:
		if addr, ok := in.clearTags(m, 1); ok {
			in.record(kind, addr)
		}
	case KindLineCorrupt:
		if addr, ok := in.clearTags(m, 4); ok {
			in.record(kind, addr)
		}
	case KindBoundsTruncate:
		if r, ok := in.victim(m); ok && r.Size > 16 {
			if m.Heap.Truncate(r.Base, (r.Size/2)&^15) {
				m.DropOwnerCache()
				in.record(kind, r.Base)
			}
		}
	case KindPermDrop:
		if addr, ok := in.permDrop(m); ok {
			in.record(kind, addr)
		}
	case KindSpuriousTrap:
		in.record(kind, 0)
		panic(&core.Fault{
			Kind:      core.KindSpurious,
			PC:        m.PC(),
			Op:        "inject",
			Cause:     ErrSpuriousTrap,
			Transient: true,
		})
	}
}

func (in *Injector) record(k Kind, addr uint64) {
	ev := Event{Kind: k, Uop: in.uops, Addr: addr}
	in.events = append(in.events, ev)
	if in.cfg.Observe != nil {
		in.cfg.Observe(ev)
	}
}

// victim picks one live heap allocation deterministically.
func (in *Injector) victim(m *core.Machine) (r struct{ Base, Size uint64 }, ok bool) {
	n := m.Heap.LiveCount()
	if n == 0 {
		return r, false
	}
	lr := m.Heap.LiveRange(in.intn(n))
	return struct{ Base, Size uint64 }{lr.Base, lr.Size}, lr.Size != 0
}

// probeLimit bounds the granule scan per injection so injection cost stays
// O(1) even for multi-megabyte victims.
const probeLimit = 128

// taggedSlot scans the victim allocation from a random granule for a
// capability-tagged 16-byte slot.
func (in *Injector) taggedSlot(m *core.Machine) (uint64, bool) {
	r, ok := in.victim(m)
	if !ok {
		return 0, false
	}
	granules := int(r.Size / 16)
	if granules == 0 {
		return 0, false
	}
	start := in.intn(granules)
	limit := granules
	if limit > probeLimit {
		limit = probeLimit
	}
	for i := 0; i < limit; i++ {
		addr := r.Base + uint64((start+i)%granules)*16
		if m.Mem.TagAt(addr) {
			return addr, true
		}
	}
	return 0, false
}

// clearTags clears up to lineGranules consecutive granule tags starting at
// a tagged slot (1 = single capability, 4 = a whole 64-byte line).
func (in *Injector) clearTags(m *core.Machine, lineGranules int) (uint64, bool) {
	addr, ok := in.taggedSlot(m)
	if !ok {
		return 0, false
	}
	if lineGranules > 1 {
		addr &^= 63 // whole-line corruption starts at the line boundary
	}
	cleared := false
	for i := 0; i < lineGranules; i++ {
		if m.Mem.ClearTag(addr + uint64(i)*16) {
			cleared = true
		}
	}
	return addr, cleared
}

// permDrop strips the data permissions from a tagged in-memory capability,
// keeping its tag: the slot still looks valid until dereference authority
// is demanded.
func (in *Injector) permDrop(m *core.Machine) (uint64, bool) {
	addr, ok := in.taggedSlot(m)
	if !ok {
		return 0, false
	}
	enc, tag, err := m.Mem.ReadCap(addr)
	if err != nil || !tag {
		return 0, false
	}
	c := cap.Decode(enc, tag).ClearPerms(cap.PermLoad | cap.PermStore)
	enc2, tag2 := c.Encode()
	if err := m.Mem.WriteCap(addr, enc2, tag2); err != nil {
		return 0, false
	}
	return addr, true
}
