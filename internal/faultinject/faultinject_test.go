package faultinject

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

func TestParseKinds(t *testing.T) {
	cases := []struct {
		name    string
		spec    string
		want    []Kind
		wantErr string // substring of the error, empty for success
	}{
		{name: "all", spec: "all", want: AllKinds()},
		{name: "all padded", spec: " all ", want: AllKinds()},
		{name: "single", spec: "tag-clear", want: []Kind{KindTagClear}},
		{name: "dedup keeps first occurrence", spec: "perm-drop,tag-clear,perm-drop",
			want: []Kind{KindPermDrop, KindTagClear}},
		{name: "padded segments", spec: " tag-clear , bounds-truncate ",
			want: []Kind{KindTagClear, KindBoundsTruncate}},
		{name: "unknown kind", spec: "tag-clear,bogus", wantErr: `unknown fault kind "bogus"`},
		{name: "empty spec", spec: "", wantErr: "segment 1"},
		{name: "blank segments", spec: " , ", wantErr: "segment 1"},
		{name: "trailing comma", spec: "tag-clear,", wantErr: "segment 2"},
		{name: "leading comma", spec: ",tag-clear", wantErr: "segment 1"},
		{name: "doubled comma", spec: "tag-clear,,perm-drop", wantErr: "segment 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseKinds(tc.spec)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ParseKinds(%q) = %v, want error containing %q", tc.spec, got, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseKinds(%q) error = %q, want substring %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseKinds(%q): %v", tc.spec, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("ParseKinds(%q) = %v, want %v", tc.spec, got, tc.want)
			}
		})
	}
}

func TestRunSeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	add := func(label string, s uint64) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: %s and %s both hash to %#x", prev, label, s)
		}
		seen[s] = label
	}
	for _, w := range []string{"a", "b"} {
		for _, a := range []string{"hybrid", "purecap"} {
			for attempt := 0; attempt < 3; attempt++ {
				add(w+"/"+a, RunSeed(1, w, a, attempt))
			}
		}
	}
	add("campaign2", RunSeed(2, "a", "hybrid", 0))
}

// hookedRun executes w on a fresh machine with an injector attached,
// returning the run error and the injection schedule.
func hookedRun(t *testing.T, cfg Config, a abi.ABI) (error, []Event) {
	t.Helper()
	w, err := workloads.ByName("525.x264_r")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(cfg)
	_, runErr := workloads.ExecuteHooked(w, core.DefaultConfig(a), 1, func(m *core.Machine) {
		m.SetQuantum(inj.Quantum(), func() { inj.Step(m) })
	})
	return runErr, inj.Events()
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 99, RatePerMUops: 40, Kinds: AllKinds()}
	err1, ev1 := hookedRun(t, cfg, abi.Purecap)
	err2, ev2 := hookedRun(t, cfg, abi.Purecap)
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("schedules diverged:\n%v\n%v", ev1, ev2)
	}
	if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
		t.Fatalf("outcomes diverged: %v vs %v", err1, err2)
	}
	// A different seed must produce a different schedule.
	cfg.Seed = 100
	_, ev3 := hookedRun(t, cfg, abi.Purecap)
	if reflect.DeepEqual(ev1, ev3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestInjectionInducesCapabilityFaults(t *testing.T) {
	// Saturated draw rate: one injection per quantum. Under purecap the run
	// must die quickly to an injected fault, and the schedule must record it.
	cfg := Config{Seed: 3, RatePerMUops: 1000, Kinds: AllKinds()}
	err, events := hookedRun(t, cfg, abi.Purecap)
	if err == nil {
		t.Fatal("saturated injection survived")
	}
	var f *core.Fault
	if !errors.As(err, &f) {
		t.Fatalf("want *core.Fault, got %T: %v", err, err)
	}
	if f.Kind == core.KindUnknown {
		t.Fatalf("fault not classified: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no injection events recorded")
	}
}

func TestSpuriousTrapIsTransient(t *testing.T) {
	cfg := Config{Seed: 11, RatePerMUops: 1000, Kinds: []Kind{KindSpuriousTrap}}
	err, events := hookedRun(t, cfg, abi.Hybrid)
	if err == nil {
		t.Fatal("saturated spurious traps survived")
	}
	if !core.IsTransient(err) {
		t.Fatalf("spurious trap not transient: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("trap should end the run at its first event, got %d", len(events))
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	cfg := Config{Seed: 5, RatePerMUops: 0, Kinds: AllKinds()}
	err, events := hookedRun(t, cfg, abi.Purecap)
	if err != nil {
		t.Fatalf("rate-0 run failed: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("rate-0 run injected %d events", len(events))
	}
}
