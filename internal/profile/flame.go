package profile

import (
	"fmt"
	"io"
	"math"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// WriteFolded emits one attribution profile as folded flamegraph stacks
// (Brendan Gregg's collapsed format, one `frame;frame;... count` line per
// stack), with the synthetic stack workload;abi;function;category and the
// category's attributed cycles as the count. flamegraph.pl or any
// folded-stack viewer renders it directly; the per-category leaf frames
// make each function's top-down split visible as sub-rectangles.
//
// Counts are cycles rounded to integers (the folded format counts
// samples); zero-cycle frames are skipped. Functions render in profile
// order (cycles descending), categories in declaration order, so output is
// deterministic.
func WriteFolded(w io.Writer, workload string, a abi.ABI, p core.AttributionProfile) error {
	emit := func(f core.FnAttribution) error {
		for i, c := range f.Categories {
			n := uint64(math.Round(c))
			if n == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s;%s;%s;%s %d\n",
				workload, a, f.Name, core.AttrCategory(i), n); err != nil {
				return err
			}
		}
		return nil
	}
	for _, f := range p.Functions {
		if err := emit(f); err != nil {
			return err
		}
	}
	return emit(p.Residual)
}
