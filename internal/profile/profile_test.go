package profile_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/profile"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

// TestConservationEveryWorkloadABI is the attribution-conservation gate:
// for every registered workload under every ABI, the per-function category
// sums (plus the residual) must reconcile exactly with the whole-run
// counter file, and overlaying the profile-reconstructed stall/cycle
// counters on the real counter file must leave topdown.Analyze unchanged —
// the per-function split carries exactly the information the paper's
// whole-run top-down breakdown sees.
func TestConservationEveryWorkloadABI(t *testing.T) {
	for _, w := range workloads.All() {
		for _, a := range abi.All() {
			w, a := w, a
			t.Run(fmt.Sprintf("%s/%s", w.Name, a), func(t *testing.T) {
				t.Parallel()
				m, err := workloads.Execute(w, a, 1)
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				p := m.AttributionProfile()
				if len(p.Functions) == 0 {
					t.Fatal("empty attribution profile")
				}
				if err := profile.Reconcile(p, &m.C); err != nil {
					t.Fatal(err)
				}
				// Overlay the reconstruction and require an identical
				// top-down breakdown.
				c2 := m.C
				for ev, v := range profile.ReconstructCounters(p.Totals) {
					c2[ev] = v
				}
				if got, want := topdown.Analyze(&c2), topdown.Analyze(&m.C); got != want {
					t.Errorf("topdown breakdown diverged:\nprofile: %+v\ncounters: %+v", got, want)
				}
			})
		}
	}
}

// TestReconcileDetectsLoss ensures Reconcile actually fails when cycles go
// missing (it is the conservation oracle, so it must not be vacuous).
func TestReconcileDetectsLoss(t *testing.T) {
	m := runSmallWorkload(t, abi.Purecap)
	p := m.AttributionProfile()
	p.Functions[0].Categories[core.AttrCoreBound] += 1000
	if err := profile.Reconcile(p, &m.C); err == nil {
		t.Error("Reconcile accepted a tampered profile")
	}
	p = m.AttributionProfile()
	p.TotalEvents[core.EvL1DRefill]++
	if err := profile.Reconcile(p, &m.C); err == nil {
		t.Error("Reconcile accepted a tampered event total")
	}
}

func runSmallWorkload(t *testing.T, a abi.ABI) *core.Machine {
	t.Helper()
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}
	m, err := workloads.Execute(w, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func threeABIProfiles(t *testing.T) [3]core.AttributionProfile {
	t.Helper()
	var profs [3]core.AttributionProfile
	for _, a := range abi.All() {
		profs[a] = runSmallWorkload(t, a).AttributionProfile()
	}
	return profs
}

func TestDiffThreeABIs(t *testing.T) {
	diffs := profile.Diff(threeABIProfiles(t))
	if len(diffs) == 0 {
		t.Fatal("empty diff")
	}
	var residual, positive bool
	for i, d := range diffs {
		if d.Name == core.ResidualName {
			residual = true
		}
		if d.Delta > 0 {
			positive = true
			if d.Growth == "none" {
				t.Errorf("%s grew %.0f cycles but no growth category", d.Name, d.Delta)
			}
		}
		if i > 0 && diffs[i-1].Delta < d.Delta {
			t.Fatalf("diff not sorted by delta: %v then %v", diffs[i-1].Delta, d.Delta)
		}
		for _, a := range abi.All() {
			// The residual may dip fractionally below zero: its retiring
			// total truncates the aux-µop fraction the per-function
			// charges carried. Real functions never can.
			min := 0.0
			if d.Name == core.ResidualName {
				min = -1
			}
			if d.Cycles[a] < min {
				t.Errorf("%s: cycles %.3f under %s", d.Name, d.Cycles[a], a)
			}
		}
	}
	if !residual {
		t.Error("diff lacks the residual pseudo-function")
	}
	if !positive {
		t.Error("no function grew under purecap — implausible for sqlite")
	}
}

func TestWriteFoldedParses(t *testing.T) {
	m := runSmallWorkload(t, abi.Purecap)
	var buf bytes.Buffer
	if err := profile.WriteFolded(&buf, "sqlite", abi.Purecap, m.AttributionProfile()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no folded stacks")
	}
	var total uint64
	for _, ln := range lines {
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			t.Fatalf("no count separator in %q", ln)
		}
		stack, count := ln[:sp], ln[sp+1:]
		frames := strings.Split(stack, ";")
		if len(frames) != 4 {
			t.Fatalf("want workload;abi;function;category, got %q", stack)
		}
		if frames[0] != "sqlite" || frames[1] != abi.Purecap.String() {
			t.Fatalf("bad stack prefix in %q", stack)
		}
		n, err := strconv.ParseUint(count, 10, 64)
		if err != nil || n == 0 {
			t.Fatalf("bad count %q in %q", count, ln)
		}
		total += n
	}
	// Rounded per-category cycles must land within len(lines)/2 of the
	// run's cycle count (each line rounds by at most 0.5).
	cycles := m.Cycles()
	slack := uint64(len(lines))/2 + 1
	if total+slack < cycles || total > cycles+slack {
		t.Errorf("folded total %d vs run cycles %d (slack %d)", total, cycles, slack)
	}
}

// TestPprofDecodes writes a multi-run pprof profile and validates it with
// the real consumer, `go tool pprof -raw` (skipped if the go tool is
// unavailable, e.g. a stripped test environment).
func TestPprofDecodes(t *testing.T) {
	profs := threeABIProfiles(t)
	var pw profile.Pprof
	for _, a := range abi.All() {
		pw.Add("sqlite", a, profs[a])
	}
	if pw.SampleCount() == 0 {
		t.Fatal("no samples accumulated")
	}
	path := filepath.Join(t.TempDir(), "hotspots.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	out, err := exec.Command(goBin, "tool", "pprof", "-raw", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -raw failed: %v\n%s", err, out)
	}
	raw := string(out)
	for _, want := range []string{"cycles", "uops", "sqlite", "purecap", core.ResidualName} {
		if !strings.Contains(raw, want) {
			t.Errorf("pprof -raw output lacks %q", want)
		}
	}
}
