// Package profile turns the simulator's exact per-function attribution
// (core.AttributionProfile) into the artefacts a performance engineer
// consumes: differential ABI hotspot reports (the paper's Figs. 5–7 at
// function granularity), folded-stack flamegraph text, and pprof protobuf
// profiles — plus the Reconcile check that proves the per-function split
// carries exactly the information the whole-run top-down analysis sees.
package profile

import (
	"fmt"
	"sort"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/pmu"
)

// ReconstructCounters maps each attribution-category grouping to the PMU
// counter finalize() derives from it, in finalize()'s exact float
// association — the whole-run stall/cycle counter file as implied by the
// profile alone. Reconcile checks it against the real one; the
// conservation tests overlay it on a counter file and require
// topdown.Analyze to be unchanged.
func ReconstructCounters(t [core.NumAttrCategories]float64) map[pmu.Event]uint64 {
	fe := t[core.AttrFrontend] + t[core.AttrPCC]
	beMem := t[core.AttrL1Bound] + t[core.AttrL2Bound] + t[core.AttrExtMemBound]
	be := beMem + t[core.AttrCoreBound]
	cycles := t[core.AttrRetiring] + fe + be + t[core.AttrBadSpec]
	return map[pmu.Event]uint64{
		pmu.CPU_CYCLES:            uint64(cycles),
		pmu.STALL_FRONTEND:        uint64(fe),
		pmu.STALL_BACKEND:         uint64(be),
		pmu.STALL_BACKEND_MEM:     uint64(beMem),
		pmu.STALL_BACKEND_MEM_L1D: uint64(t[core.AttrL1Bound]),
		pmu.STALL_BACKEND_MEM_L2D: uint64(t[core.AttrL2Bound]),
		pmu.STALL_BACKEND_MEM_EXT: uint64(t[core.AttrExtMemBound]),
		pmu.STALL_BACKEND_CORE:    uint64(t[core.AttrCoreBound]),
		pmu.BAD_SPEC_CYCLES:       uint64(t[core.AttrBadSpec]),
		pmu.PCC_STALL_CYCLES:      uint64(t[core.AttrPCC]),
	}
}

// eventCounter maps each attributed event to its whole-run PMU counter.
var eventCounter = [core.NumAttrEvents]pmu.Event{
	core.EvL1DRefill:    pmu.L1D_CACHE_REFILL,
	core.EvL2DRefill:    pmu.L2D_CACHE_REFILL,
	core.EvLLCMissRd:    pmu.LL_CACHE_MISS_RD,
	core.EvL1IRefill:    pmu.L1I_CACHE_REFILL,
	core.EvDTLBWalk:     pmu.DTLB_WALK,
	core.EvITLBWalk:     pmu.ITLB_WALK,
	core.EvBrMispredict: pmu.BR_MIS_PRED_RETIRED,
	core.EvCapMemRd:     pmu.CAP_MEM_ACCESS_RD,
	core.EvCapMemWr:     pmu.CAP_MEM_ACCESS_WR,
}

// Reconcile verifies that p conserves the run it was taken from, against
// the run's finalized counter file c:
//
//  1. per category, summing Functions in slice order and adding Residual
//     reproduces Totals bit-exactly (likewise per event, in uint64);
//  2. the stall/cycle counters reconstructed from Totals — using
//     finalize()'s exact float grouping — equal c's values exactly, and so
//     do the attributed event counters.
//
// Together these imply topdown.Analyze over the reconstruction equals
// topdown.Analyze over the real counter file: the per-function split loses
// nothing the whole-run breakdown has.
func Reconcile(p core.AttributionProfile, c *pmu.Counters) error {
	for i := range p.Totals {
		sum := 0.0
		for _, f := range p.Functions {
			sum += f.Categories[i]
		}
		if got := sum + p.Residual.Categories[i]; got != p.Totals[i] {
			return fmt.Errorf("profile: category %s not conserved: functions+residual = %v, total = %v",
				core.AttrCategory(i), got, p.Totals[i])
		}
	}
	for i := range p.TotalEvents {
		var sum uint64
		for _, f := range p.Functions {
			sum += f.Events[i]
		}
		if got := sum + p.Residual.Events[i]; got != p.TotalEvents[i] {
			return fmt.Errorf("profile: event %s not conserved: functions+residual = %d, total = %d",
				core.AttrEvent(i), got, p.TotalEvents[i])
		}
	}
	for ev, want := range ReconstructCounters(p.Totals) {
		if got := c.Get(ev); got != want {
			return fmt.Errorf("profile: reconstructed %s = %d, counter file has %d", ev, want, got)
		}
	}
	for i, ev := range eventCounter {
		if got := c.Get(ev); got != p.TotalEvents[i] {
			return fmt.Errorf("profile: attributed %s total = %d, counter file has %d",
				core.AttrEvent(i), p.TotalEvents[i], got)
		}
	}
	return nil
}

// FnDiff is one function's side-by-side attribution across the three ABIs,
// with the top-down category whose purecap−hybrid growth is largest — the
// differential hotspot report's row. Per-ABI arrays are indexed by
// abi.ABI (hybrid, benchmark, purecap).
type FnDiff struct {
	Name   string     `json:"name"`
	Cycles [3]float64 `json:"cycles"`
	Share  [3]float64 `json:"share"`
	Uops   [3]uint64  `json:"uops"`
	// Delta is purecap − hybrid cycles; Ratio is purecap / hybrid (0 when
	// the function never ran under hybrid).
	Delta float64 `json:"delta"`
	Ratio float64 `json:"ratio"`
	// Growth names the attribution category with the largest
	// purecap−hybrid cycle increase for this function; GrowthDelta is that
	// increase in cycles.
	Growth      string  `json:"growth"`
	GrowthDelta float64 `json:"growth_delta"`
}

// Diff builds the differential hotspot report from one attribution profile
// per ABI (indexed by abi.ABI). Every function appearing under any ABI
// gets a row (including the residual pseudo-function); rows are sorted by
// Delta descending — the functions that absorb the most purecap overhead
// first — with a name tiebreak for determinism.
func Diff(profs [3]core.AttributionProfile) []FnDiff {
	totals := [3]float64{}
	perABI := [3]map[string]core.FnAttribution{}
	names := []string{}
	seen := map[string]bool{}
	for _, a := range abi.All() {
		p := profs[a]
		perABI[a] = make(map[string]core.FnAttribution, len(p.Functions)+1)
		for _, f := range p.Functions {
			perABI[a][f.Name] = f
			totals[a] += f.Cycles
			if !seen[f.Name] {
				seen[f.Name] = true
				names = append(names, f.Name)
			}
		}
		perABI[a][p.Residual.Name] = p.Residual
		totals[a] += p.Residual.Cycles
		if !seen[p.Residual.Name] {
			seen[p.Residual.Name] = true
			names = append(names, p.Residual.Name)
		}
	}
	out := make([]FnDiff, 0, len(names))
	for _, name := range names {
		d := FnDiff{Name: name}
		for _, a := range abi.All() {
			f := perABI[a][name]
			d.Cycles[a] = f.Cycles
			d.Uops[a] = f.Uops
			if totals[a] > 0 {
				d.Share[a] = f.Cycles / totals[a]
			}
		}
		d.Delta = d.Cycles[abi.Purecap] - d.Cycles[abi.Hybrid]
		if d.Cycles[abi.Hybrid] > 0 {
			d.Ratio = d.Cycles[abi.Purecap] / d.Cycles[abi.Hybrid]
		}
		hy, pc := perABI[abi.Hybrid][name], perABI[abi.Purecap][name]
		growth, growthDelta := core.AttrCategory(0), 0.0
		for i := range pc.Categories {
			if g := pc.Categories[i] - hy.Categories[i]; g > growthDelta {
				growth, growthDelta = core.AttrCategory(i), g
			}
		}
		if growthDelta > 0 {
			d.Growth, d.GrowthDelta = growth.String(), growthDelta
		} else {
			d.Growth = "none"
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Delta != out[j].Delta {
			return out[i].Delta > out[j].Delta
		}
		return out[i].Name < out[j].Name
	})
	return out
}
