package profile

import (
	"compress/gzip"
	"io"
	"math"
	"sort"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// Pprof accumulates attribution profiles across runs and serialises them
// as a gzipped pprof protobuf (the profile.proto schema `go tool pprof`
// and the pprof web UI consume). The encoding is hand-rolled varint
// protobuf — zero dependencies, like the Chrome-trace exporter in
// internal/telemetry — and symbol-only: locations carry function lines but
// no addresses or mappings, the shape of any symbolized software profile.
//
// Each (workload, abi, function) contributes one sample with values
// [cycles, uops], a three-frame synthetic stack (function as the leaf,
// then abi, then workload) and workload/abi string labels, so `pprof top`
// aggregates functions across runs while the flame view and label filters
// keep runs apart.
type Pprof struct {
	samples []pprofSample
}

type pprofSample struct {
	workload string
	abi      string
	stack    [3]string // leaf first: function, abi, workload
	cycles   int64
	uops     int64
}

// Add appends one run's attribution profile (including its residual
// entry).
func (p *Pprof) Add(workload string, a abi.ABI, prof core.AttributionProfile) {
	add := func(f core.FnAttribution) {
		cyc := int64(math.Round(f.Cycles))
		if cyc <= 0 && f.Uops == 0 {
			return
		}
		p.samples = append(p.samples, pprofSample{
			workload: workload,
			abi:      a.String(),
			stack:    [3]string{f.Name, a.String(), workload},
			cycles:   cyc,
			uops:     int64(f.Uops),
		})
	}
	for _, f := range prof.Functions {
		add(f)
	}
	add(prof.Residual)
}

// profile.proto field numbers (github.com/google/pprof/proto/profile.proto).
const (
	profSampleType  = 1
	profSample      = 2
	profLocation    = 4
	profFunction    = 5
	profStringTable = 6
	profPeriodType  = 11
	profPeriod      = 12

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2
	sampleLabel      = 3

	labelKey = 1
	labelStr = 2

	locID   = 1
	locLine = 4

	lineFunctionID = 1

	fnID   = 1
	fnName = 2
)

// Encode serialises the accumulated samples as a gzipped pprof profile.
func (p *Pprof) Encode(w io.Writer) error {
	// String table: index 0 must be the empty string.
	strIdx := map[string]uint64{"": 0}
	table := []string{""}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(table))
		strIdx[s] = i
		table = append(table, s)
		return i
	}

	// Function/location tables: one entry per unique frame name, location
	// i wrapping function i (ids are 1-based; 0 means "no entry").
	fnIdx := map[string]uint64{}
	var fnNames []string
	funcID := func(name string) uint64 {
		if id, ok := fnIdx[name]; ok {
			return id
		}
		id := uint64(len(fnNames) + 1)
		fnIdx[name] = id
		fnNames = append(fnNames, name)
		intern(name)
		return id
	}

	var body pbuf
	// sample_type: cycles/cycles, uops/count. period_type cycles, period 1
	// (every simulated cycle is accounted — the profile is exact, not
	// sampled).
	var vt pbuf
	vt.varintField(vtType, intern("cycles"))
	vt.varintField(vtUnit, intern("cycles"))
	body.bytesField(profSampleType, vt.b)
	vt = pbuf{}
	vt.varintField(vtType, intern("uops"))
	vt.varintField(vtUnit, intern("count"))
	body.bytesField(profSampleType, vt.b)

	// Deterministic sample order: as added (experiment iteration order is
	// already deterministic).
	for _, s := range p.samples {
		var sm pbuf
		var locs pbuf
		for _, frame := range s.stack {
			locs.varint(funcID(frame)) // location id == function id
		}
		sm.bytesField(sampleLocationID, locs.b) // packed
		var vals pbuf
		vals.varint(uint64(s.cycles))
		vals.varint(uint64(s.uops))
		sm.bytesField(sampleValue, vals.b) // packed
		for _, kv := range [2][2]string{{"workload", s.workload}, {"abi", s.abi}} {
			var lb pbuf
			lb.varintField(labelKey, intern(kv[0]))
			lb.varintField(labelStr, intern(kv[1]))
			sm.bytesField(sampleLabel, lb.b)
		}
		body.bytesField(profSample, sm.b)
	}

	for i, name := range fnNames {
		id := uint64(i + 1)
		var loc pbuf
		loc.varintField(locID, id)
		var line pbuf
		line.varintField(lineFunctionID, id)
		loc.bytesField(locLine, line.b)
		body.bytesField(profLocation, loc.b)

		var fn pbuf
		fn.varintField(fnID, id)
		fn.varintField(fnName, intern(name))
		body.bytesField(profFunction, fn.b)
	}

	var pt pbuf
	pt.varintField(vtType, intern("cycles"))
	pt.varintField(vtUnit, intern("cycles"))
	body.bytesField(profPeriodType, pt.b)
	body.varintField(profPeriod, 1)

	// The string table must contain every interned string; emit it last in
	// construction but the field order on the wire is irrelevant to proto
	// decoding.
	for _, s := range table {
		body.stringField(profStringTable, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(body.b); err != nil {
		return err
	}
	return gz.Close()
}

// SampleCount returns the number of accumulated samples (for telemetry and
// tests).
func (p *Pprof) SampleCount() int { return len(p.samples) }

// FrameNames returns the sorted unique frame names across all samples
// (test helper for validating symbolization).
func (p *Pprof) FrameNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range p.samples {
		for _, f := range s.stack {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	sort.Strings(out)
	return out
}

// pbuf is a minimal protobuf wire-format writer: varints, tagged varint
// fields and length-delimited fields are all profile.proto needs.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *pbuf) varintField(field int, v uint64) {
	p.tag(field, 0)
	p.varint(v)
}

func (p *pbuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *pbuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}
