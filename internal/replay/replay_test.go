package replay

import (
	"reflect"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// record runs a small but representative kernel — functions, calls,
// branches, loads/stores, pointer traffic, µop batches, alloc/free —
// under a recorder and returns the sealed trace with the recording
// machine's final counters.
func record(t *testing.T, a abi.ABI) (*Trace, *core.Machine) {
	t.Helper()
	rec := NewRecorder()
	m := core.New(a)
	m.SetReplaySink(rec)
	main := m.Func("main", 4096, 128)
	leaf := m.Func("leaf", 512, 64)
	var uops uint64
	err := m.Run(func(m *core.Machine) {
		m.Call(main, false)
		p := m.Alloc(1 << 12)
		q := m.AllocArray(16, 64)
		for i := 0; i < 256; i++ {
			m.ALU(3)
			m.Store(p+core.Ptr(i%512)*8, uint64(i), 8)
			m.Load(p+core.Ptr(i%512)*8, 8)
			m.StorePtr(q+core.Ptr(i%16)*16, p)
			m.LoadPtr(q + core.Ptr(i%16)*16)
			m.Branch(i%3 == 0)
			if i%17 == 0 {
				m.Call(leaf, i%2 == 0)
				m.FP(4)
				m.SIMD(2)
				m.Return()
			}
		}
		m.Free(p)
		m.Return()
		uops = m.Uops()
	})
	if err != nil {
		t.Fatalf("recording run failed: %v", err)
	}
	trace := rec.Finish(uops)
	if trace.Events == 0 {
		t.Fatal("recorder captured no events")
	}
	return trace, m
}

// events flattens a trace for comparison.
func events(t *testing.T, tr *Trace) [][4]uint64 {
	t.Helper()
	var out [][4]uint64
	if err := tr.Decode(func(op core.ReplayOp, a, b, c uint64) error {
		out = append(out, [4]uint64{uint64(op), a, b, c})
		return nil
	}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// TestReplayReproducesCounters is the package's core exactness check: a
// recorded stream driven onto a fresh machine of the same configuration
// reproduces the recording machine's full PMU counter state bit for bit.
func TestReplayReproducesCounters(t *testing.T) {
	for _, a := range abi.All() {
		tr, live := record(t, a)
		m := core.New(a)
		m.DisableProfile()
		if err := Run(m, tr); err != nil {
			t.Fatalf("%s: replay failed: %v", a, err)
		}
		if !reflect.DeepEqual(live.C, m.C) {
			t.Errorf("%s: replayed counters diverged from live counters:\nlive:   %+v\nreplay: %+v", a, live.C, m.C)
		}
		if m.Uops() != live.Uops() {
			t.Errorf("%s: replayed %d µops, live retired %d", a, m.Uops(), live.Uops())
		}
	}
}

// TestWireRoundTrip locks the wire format: Encode → DecodeTrace must
// reproduce the event stream, name table and µop count exactly, and the
// decoded trace must replay to the same counters as the original.
func TestWireRoundTrip(t *testing.T) {
	tr, _ := record(t, abi.Purecap)
	got, err := DecodeTrace(tr.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Events != tr.Events || got.Uops != tr.Uops {
		t.Fatalf("round trip changed totals: events %d->%d, uops %d->%d",
			tr.Events, got.Events, tr.Uops, got.Uops)
	}
	if !reflect.DeepEqual(got.names, tr.names) {
		t.Fatalf("round trip changed name table: %v -> %v", tr.names, got.names)
	}
	if !reflect.DeepEqual(events(t, tr), events(t, got)) {
		t.Fatal("round trip changed the event stream")
	}
	m1, m2 := core.New(abi.Purecap), core.New(abi.Purecap)
	m1.DisableProfile()
	m2.DisableProfile()
	if err := Run(m1, tr); err != nil {
		t.Fatal(err)
	}
	if err := Run(m2, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.C, m2.C) {
		t.Fatal("original and round-tripped traces replay to different counters")
	}
}

// TestDecodeTraceRejectsCorruption spot-checks the wire decoder's
// structural validation.
func TestDecodeTraceRejectsCorruption(t *testing.T) {
	tr, _ := record(t, abi.Hybrid)
	enc := tr.Encode()

	if _, err := DecodeTrace(nil); err == nil {
		t.Error("empty input decoded")
	}
	if _, err := DecodeTrace([]byte("XXXX")); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := DecodeTrace(enc[:len(enc)/2]); err == nil {
		t.Error("truncated stream decoded")
	}
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] = 0xFF // corrupt the tail into a dangling varint/opcode
	if _, err := DecodeTrace(bad); err == nil {
		t.Error("corrupted tail decoded")
	}
}

// TestDriveRejectsBadIndexes asserts replay fails cleanly — instead of
// panicking or misattributing — on streams whose call or name operands
// point outside the registered tables.
func TestDriveRejectsBadIndexes(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  func(r *Recorder)
	}{
		{"call", func(r *Recorder) { r.Op(core.RopCall, 7, 0, 0) }},
		{"callvirtual", func(r *Recorder) { r.Op(core.RopCallVirtual, 7, 0, 0) }},
		{"callvirtualat", func(r *Recorder) { r.Op(core.RopCallVirtualAt, 1, 7, 0) }},
		{"funcname", func(r *Recorder) { r.Op(core.RopFunc, 64, 64, 9) }},
	} {
		r := NewRecorder()
		tc.rec(r)
		if err := Drive(core.New(abi.Hybrid), r.Finish(0)); err == nil {
			t.Errorf("%s: out-of-range index replayed without error", tc.name)
		}
	}
}

// TestCacheDemandDrivenRecording pins the recording policy: first
// sighting of a key runs unrecorded, the second miss asks for a
// recording, and a stored trace serves every later lookup.
func TestCacheDemandDrivenRecording(t *testing.T) {
	c := NewCache(0)
	k := Key{Workload: "w", ABI: "purecap", Scale: 1}

	if tr, rec := c.Lookup(k); tr != nil || rec {
		t.Fatalf("first sighting: got (%v, %v), want (nil, false)", tr, rec)
	}
	if tr, rec := c.Lookup(k); tr != nil || !rec {
		t.Fatalf("second miss: got (%v, %v), want (nil, true)", tr, rec)
	}

	r := NewRecorder()
	r.Op(core.RopALU, 1, 0, 0)
	stored := r.Finish(1)
	if !c.Put(k, stored) {
		t.Fatal("put rejected with no budget bound")
	}
	if tr, rec := c.Lookup(k); tr != stored || rec {
		t.Fatalf("after put: got (%v, %v), want stored trace", tr, rec)
	}
	st := c.Stats()
	if st.Records != 1 || st.Replays != 1 || st.FastpathUops != 1 {
		t.Fatalf("stats: %+v", st)
	}

	c.Drop(k)
	if tr, _ := c.Lookup(k); tr != nil {
		t.Fatal("dropped key still served")
	}
}

// TestCacheBudget asserts recordings beyond the byte budget are rejected
// and counted, leaving their keys on the live path.
func TestCacheBudget(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Op(core.RopALU, uint64(i), 0, 0)
	}
	tr := r.Finish(100)

	c := NewCache(tr.Bytes() + 1)
	if !c.Put(Key{Workload: "a"}, tr) {
		t.Fatal("first trace rejected within budget")
	}
	if c.Put(Key{Workload: "b"}, tr) {
		t.Fatal("second trace accepted over budget")
	}
	if st := c.Stats(); st.Records != 1 || st.Rejected != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDriveAllocationFree guards the fast path's zero-allocation
// contract: replaying a stream without Func registrations allocates
// nothing per run.
func TestDriveAllocationFree(t *testing.T) {
	rec := NewRecorder()
	m := core.New(abi.Purecap)
	m.Func("bench", 512, 64)
	err := m.Run(func(m *core.Machine) {
		p := m.Alloc(1 << 12)
		m.SetReplaySink(rec) // attach after Alloc: stream is loads/stores only
		for i := 0; i < 512; i++ {
			m.Store(p+core.Ptr(i%512)*8, uint64(i), 8)
			m.Load(p+core.Ptr(i%512)*8, 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Finish(0)

	m2 := core.New(abi.Purecap)
	m2.DisableProfile()
	if err := Drive(m2, tr); err != nil { // warm translation state
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := Drive(m2, tr); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Drive allocated %.1f times per replay, want 0", allocs)
	}
}
