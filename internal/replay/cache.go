package replay

import (
	"sync"

	"cherisim/internal/core"
)

// Key identifies one deterministic event stream. It holds exactly the
// inputs the stream is a function of: the kernel and its iteration scale,
// the ABI (lowering, pointer width, allocation rounding), and the
// heap-shaping configuration (allocation addresses feed back into the
// closure's recorded operands). Timing-model fields — predictor, cache
// and TLB geometry, MLP, store-queue penalty — are deliberately absent:
// streams recorded under the default machine replay bit-exactly onto
// ablation machines, which is where the fast path earns its keep.
type Key struct {
	Workload             string
	ABI                  string
	Scale                int
	HeapSize             uint64
	TemporalSafety       bool
	RevokeThresholdBytes uint64
	EnforceBounds        bool
}

// KeyFor derives the stream key of running workload at the given scale
// under cfg.
func KeyFor(workload string, scale int, cfg *core.Config) Key {
	return Key{
		Workload:             workload,
		ABI:                  cfg.ABI.String(),
		Scale:                scale,
		HeapSize:             cfg.HeapSize,
		TemporalSafety:       cfg.TemporalSafety,
		RevokeThresholdBytes: cfg.RevokeThresholdBytes,
		EnforceBounds:        cfg.EnforceBounds,
	}
}

// Stats are the fast path's campaign counters.
type Stats struct {
	// Records counts recorded streams; Blocks and Bytes their storage.
	Records uint64
	Blocks  uint64
	Bytes   uint64
	// Replays counts executions served from a recorded stream, and
	// FastpathUops the classified µops those replays retired without
	// interpreting the kernel.
	Replays      uint64
	FastpathUops uint64
	// Rejected counts recordings discarded because the byte budget was
	// exhausted.
	Rejected uint64
}

// Cache is a byte-budgeted store of recorded traces, safe for concurrent
// use by the session worker pool.
//
// Recording is demand-driven: the first execution of a key runs live and
// unrecorded (most keys — a grid pair at an unrepeated scale, a
// hybrid-only baseline — are never requested again, and recording them
// would tax every run for nothing). A key's second miss proves the
// campaign re-requests it, so that execution records, and every later
// request replays.
type Cache struct {
	mu     sync.Mutex
	m      map[Key]*Trace
	seen   map[Key]struct{}
	budget int
	used   int
	stats  Stats
}

// NewCache builds a cache bounded by budgetBytes of pre-lowered trace
// data (<= 0 means unbounded).
func NewCache(budgetBytes int) *Cache {
	return &Cache{m: make(map[Key]*Trace), seen: make(map[Key]struct{}), budget: budgetBytes}
}

// Lookup consults the cache for k. A non-nil trace serves the execution
// by replay (counted). Otherwise record reports whether this (live)
// execution should record its stream: false on the key's first sighting,
// true once the campaign has demonstrably requested k more than once.
func (c *Cache) Lookup(k Key) (t *Trace, record bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t = c.m[k]; t != nil {
		c.stats.Replays++
		c.stats.FastpathUops += t.Uops
		return t, false
	}
	if _, ok := c.seen[k]; ok {
		return nil, true
	}
	c.seen[k] = struct{}{}
	return nil, false
}

// Put stores the trace recorded for k. It reports whether the trace was
// retained: a concurrent recording of the same key keeps the first copy,
// and recordings beyond the byte budget are dropped (the key simply stays
// on the live path).
func (c *Cache) Put(k Key, t *Trace) bool {
	sz := t.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.m[k]; dup {
		return false
	}
	if c.budget > 0 && c.used+sz > c.budget {
		c.stats.Rejected++
		return false
	}
	c.m[k] = t
	c.used += sz
	c.stats.Records++
	c.stats.Blocks += uint64(t.Blocks())
	c.stats.Bytes += uint64(sz)
	return true
}

// Drop removes k's trace (a replay failure demotes the key to the live
// path).
func (c *Cache) Drop(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.m[k]; t != nil {
		c.used -= t.Bytes()
		delete(c.m, k)
	}
}

// Stats returns a snapshot of the campaign counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset empties the cache, forgets key sightings and zeroes the counters
// (tests).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[Key]*Trace)
	c.seen = make(map[Key]struct{})
	c.used = 0
	c.stats = Stats{}
}
