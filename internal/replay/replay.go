// Package replay implements the simulator's record-and-replay fast path:
// trace memoization for the core interpreter, after the technique CHERI
// Performance Enhancement for a Bytecode Interpreter applies to Morello
// interpreters (see PAPERS.md).
//
// A workload kernel is a deterministic closure over the execution-context
// API of internal/core: the flat event stream it emits — loads/stores with
// dependency and size, branches, calls/returns, alloc/free, µop batches —
// is a pure function of (workload, ABI, scale, heap-shaping
// configuration) and in particular is independent of the machine's
// *timing* configuration (predictor, cache/TLB geometry, store-queue
// penalty). A live execution of a key the campaign re-requests records
// the stream into pre-lowered, arena-allocated block buffers; later
// executions of the same key (ablation sessions re-measuring the grid
// under modified timing models, repeated campaign sections) replay the
// buffer onto a fresh machine, driving the same cache/TLB/predictor
// probes to bit-identical counters without re-executing the kernel's own
// Go computation, spatial checks or dead data reads.
//
// The in-memory representation is deliberately not an encoding: events
// are stored pre-lowered, one fixed-width record per event, so the replay
// loop is a linear walk with no decode step. Encode/DecodeTrace provide
// the compact varint wire form (fuzzed for round-trip stability).
//
// Supervised runs — chaos fault injection, watchdog deadlines, lockstep
// checking — never record or replay: those modes must observe (and
// perturb) every live event.
package replay

import (
	"encoding/binary"
	"fmt"

	"cherisim/internal/core"
)

// event is one pre-lowered stream record: the opcode and its (up to
// three) operands, fixed-width so a trace block replays with indexed
// reads instead of decoding. 32 bytes.
type event struct {
	a, b, c uint64
	op      core.ReplayOp
}

// eventBytes is the in-memory footprint of one event (the cache budget
// accounts traces with it).
const eventBytes = 32

// eventsPerBlock is the arena granule: blocks are sealed when full, so a
// trace costs O(events) memory with no large reallocation and the replay
// loop walks contiguous 64KiB runs.
const eventsPerBlock = 2048

// nargs gives the number of meaningful operands per opcode (the wire
// encoding writes exactly these; the rest are zero).
var nargs = [core.NumReplayOps]uint8{
	core.RopLoad:          3,
	core.RopStore:         3,
	core.RopLoadPtr:       1,
	core.RopStorePtr:      2,
	core.RopBranch:        1,
	core.RopBranchAt:      2,
	core.RopCall:          2,
	core.RopCallVirtual:   1,
	core.RopCallVirtualAt: 2,
	core.RopReturn:        0,
	core.RopALU:           1,
	core.RopCapManip:      1,
	core.RopCapCodegen:    1,
	core.RopFP:            1,
	core.RopSIMD:          1,
	core.RopCrypto:        1,
	core.RopAlloc:         1,
	core.RopFree:          1,
	core.RopFunc:          3,
}

// Trace is one recorded event stream. Immutable once built.
type Trace struct {
	blocks [][]event
	names  []string // Func-name string table (RopFunc's c operand indexes it)

	// Events counts recorded events; Uops the classified µops the recorded
	// execution retired (the fast path serves them without interpretation).
	Events uint64
	Uops   uint64
}

// Blocks returns the number of arena blocks backing the trace.
func (t *Trace) Blocks() int { return len(t.blocks) }

// Bytes returns the in-memory size of the trace's event arena and name
// table (the unit the cache budget is expressed in).
func (t *Trace) Bytes() int {
	n := int(t.Events) * eventBytes
	for _, s := range t.names {
		n += len(s)
	}
	return n
}

// Recorder accumulates a machine's event stream into a Trace. It
// implements core.ReplaySink. Not safe for concurrent use (one machine
// drives one recorder).
type Recorder struct {
	t       Trace
	cur     []event
	nameIdx map[string]uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Op appends one pre-lowered event (core.ReplaySink).
func (r *Recorder) Op(op core.ReplayOp, a, b, c uint64) {
	if len(r.cur) == cap(r.cur) {
		if r.cur != nil {
			r.t.blocks = append(r.t.blocks, r.cur)
		}
		r.cur = make([]event, 0, eventsPerBlock)
	}
	r.cur = append(r.cur, event{a, b, c, op})
	r.t.Events++
}

// FuncOp interns name and appends the function-registration event
// (core.ReplaySink).
func (r *Recorder) FuncOp(name string, codeBytes, frameBytes uint64) {
	if r.nameIdx == nil {
		r.nameIdx = make(map[string]uint64)
	}
	idx, ok := r.nameIdx[name]
	if !ok {
		idx = uint64(len(r.t.names))
		r.t.names = append(r.t.names, name)
		r.nameIdx[name] = idx
	}
	r.Op(core.RopFunc, codeBytes, frameBytes, idx)
}

// Finish seals the recorder and returns the immutable trace. uops is the
// recorded run's classified µop count (Machine.Uops after the run).
func (r *Recorder) Finish(uops uint64) *Trace {
	if r.cur != nil {
		r.t.blocks = append(r.t.blocks, r.cur)
		r.cur = nil
	}
	r.t.Uops = uops
	return &r.t
}

// Decode iterates the trace's events in order, stopping at the first
// error from fn. Tests and the wire encoder use it; Drive walks the
// arena directly.
func (t *Trace) Decode(fn func(op core.ReplayOp, a, b, c uint64) error) error {
	for _, blk := range t.blocks {
		for i := range blk {
			e := &blk[i]
			if err := fn(e.op, e.a, e.b, e.c); err != nil {
				return err
			}
		}
	}
	return nil
}

// exec applies one event to m. fns is the replay-side function table,
// grown by RopFunc events in registration order.
func exec(m *core.Machine, t *Trace, fns *[]*core.Fn, op core.ReplayOp, a, b, c uint64) error {
	switch op {
	case core.RopLoad:
		m.ReplayLoad(a, b, c == 1)
	case core.RopStore:
		m.ReplayStore(a, b, c)
	case core.RopLoadPtr:
		m.ReplayLoadPtr(a)
	case core.RopStorePtr:
		m.ReplayStorePtr(a, b)
	case core.RopBranch:
		m.Branch(a == 1)
	case core.RopBranchAt:
		m.BranchAt(a, b == 1)
	case core.RopCall:
		if a >= uint64(len(*fns)) {
			return fmt.Errorf("replay: call to unregistered fn %d", a)
		}
		m.Call((*fns)[a], b == 1)
	case core.RopCallVirtual:
		if a >= uint64(len(*fns)) {
			return fmt.Errorf("replay: virtual call to unregistered fn %d", a)
		}
		m.CallVirtual((*fns)[a])
	case core.RopCallVirtualAt:
		if b >= uint64(len(*fns)) {
			return fmt.Errorf("replay: virtual call to unregistered fn %d", b)
		}
		m.CallVirtualAt(a, (*fns)[b])
	case core.RopReturn:
		m.Return()
	case core.RopALU:
		m.ALU(a)
	case core.RopCapManip:
		m.CapManip(a)
	case core.RopCapCodegen:
		m.CapCodegen(a)
	case core.RopFP:
		m.FP(a)
	case core.RopSIMD:
		m.SIMD(a)
	case core.RopCrypto:
		m.Crypto(a)
	case core.RopAlloc:
		m.Alloc(a)
	case core.RopFree:
		m.Free(core.Ptr(a))
	case core.RopFunc:
		if c >= uint64(len(t.names)) {
			return fmt.Errorf("replay: fn name index %d out of table", c)
		}
		*fns = append(*fns, m.Func(t.names[c], a, b))
	default:
		return fmt.Errorf("replay: bad opcode %d", op)
	}
	return nil
}

// Drive replays every event of t onto m. The machine must be fresh (same
// configuration key as the recording); counters are NOT finalized — use
// Run for a supervised, finalized replay. Allocation-free per event for
// traces without Func/Alloc events.
func Drive(m *core.Machine, t *Trace) error {
	var fns []*core.Fn
	if n := len(t.names); n > 0 {
		fns = make([]*core.Fn, 0, n)
	}
	for _, blk := range t.blocks {
		for i := range blk {
			e := &blk[i]
			if err := exec(m, t, &fns, e.op, e.a, e.b, e.c); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run replays t onto the fresh machine m under Machine.Run supervision,
// so faults are contained and counters finalize exactly as on a live
// execution. A non-nil error means the replay must not be trusted (the
// caller should fall back to live execution and drop the trace).
func Run(m *core.Machine, t *Trace) error {
	var derr error
	if err := m.Run(func(m *core.Machine) { derr = Drive(m, t) }); err != nil {
		return err
	}
	return derr
}

// Wire form: "CRT1" magic, uvarint name count, names (uvarint length +
// bytes), uvarint µop count, uvarint event count, then per event one
// opcode byte followed by nargs[op] uvarint operands.

// wireMagic heads the encoded form; the trailing digit is the format
// version.
const wireMagic = "CRT1"

// Encode renders the trace in its compact wire form.
func (t *Trace) Encode() []byte {
	buf := make([]byte, 0, len(wireMagic)+int(t.Events)*5)
	buf = append(buf, wireMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(t.names)))
	for _, s := range t.names {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, t.Uops)
	buf = binary.AppendUvarint(buf, t.Events)
	t.Decode(func(op core.ReplayOp, a, b, c uint64) error {
		buf = append(buf, byte(op))
		switch nargs[op] {
		case 3:
			buf = binary.AppendUvarint(buf, a)
			buf = binary.AppendUvarint(buf, b)
			buf = binary.AppendUvarint(buf, c)
		case 2:
			buf = binary.AppendUvarint(buf, a)
			buf = binary.AppendUvarint(buf, b)
		case 1:
			buf = binary.AppendUvarint(buf, a)
		}
		return nil
	})
	return buf
}

// wireReader decodes the varint wire form with bounds checking.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("replay: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// DecodeTrace parses the wire form produced by Encode. Structural
// corruption — bad magic, unknown opcodes, truncated operands,
// out-of-range string lengths — is an error; operand *values* are not
// validated here (Drive bounds-checks table indexes at replay time).
func DecodeTrace(data []byte) (*Trace, error) {
	if len(data) < len(wireMagic) || string(data[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("replay: bad trace magic")
	}
	r := &wireReader{buf: data, off: len(wireMagic)}
	nNames, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nNames > uint64(len(data)) {
		return nil, fmt.Errorf("replay: name count %d exceeds input", nNames)
	}
	rec := NewRecorder()
	names := make([]string, 0, nNames)
	for i := uint64(0); i < nNames; i++ {
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(data)-r.off) {
			return nil, fmt.Errorf("replay: name length %d exceeds input", n)
		}
		names = append(names, string(r.buf[r.off:r.off+int(n)]))
		r.off += int(n)
	}
	uops, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nEvents, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nEvents > uint64(len(data)-r.off) {
		return nil, fmt.Errorf("replay: event count %d exceeds input", nEvents)
	}
	for i := uint64(0); i < nEvents; i++ {
		if r.off >= len(r.buf) {
			return nil, fmt.Errorf("replay: truncated event stream at %d of %d", i, nEvents)
		}
		op := core.ReplayOp(r.buf[r.off])
		r.off++
		if op >= core.NumReplayOps {
			return nil, fmt.Errorf("replay: bad opcode %d at offset %d", op, r.off-1)
		}
		var a, b, c uint64
		switch n := nargs[op]; {
		case n > 2:
			if a, err = r.uvarint(); err != nil {
				return nil, err
			}
			if b, err = r.uvarint(); err != nil {
				return nil, err
			}
			if c, err = r.uvarint(); err != nil {
				return nil, err
			}
		case n > 1:
			if a, err = r.uvarint(); err != nil {
				return nil, err
			}
			if b, err = r.uvarint(); err != nil {
				return nil, err
			}
		case n > 0:
			if a, err = r.uvarint(); err != nil {
				return nil, err
			}
		}
		if op == core.RopFunc && c >= uint64(len(names)) {
			return nil, fmt.Errorf("replay: fn name index %d out of table", c)
		}
		rec.Op(op, a, b, c)
	}
	t := rec.Finish(uops)
	t.names = names
	return t, nil
}
