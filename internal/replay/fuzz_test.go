package replay

import (
	"bytes"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// FuzzTraceRoundTrip fuzzes the wire decoder with arbitrary bytes: any
// input DecodeTrace accepts must re-encode to a canonical form that
// decodes to the identical event stream (and the canonical form must be
// a fixed point). Structural corruption must be rejected with an error,
// never a panic or out-of-range table access.
func FuzzTraceRoundTrip(f *testing.F) {
	// Seed with real recorded streams and interesting corruptions.
	rec := NewRecorder()
	m := core.New(abi.Purecap)
	m.SetReplaySink(rec)
	m.Func("main", 1024, 64)
	err := m.Run(func(m *core.Machine) {
		p := m.Alloc(1 << 10)
		for i := 0; i < 32; i++ {
			m.ALU(2)
			m.Store(p+core.Ptr(i%128)*8, uint64(i), 8)
			m.Load(p+core.Ptr(i%128)*8, 8)
			m.Branch(i%2 == 0)
		}
		m.Free(p)
	})
	if err != nil {
		f.Fatal(err)
	}
	seed := rec.Finish(64).Encode()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(wireMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return // structural rejection is a valid outcome
		}
		enc := tr.Encode()
		tr2, err := DecodeTrace(enc)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !bytes.Equal(enc, tr2.Encode()) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if tr.Events != tr2.Events || tr.Uops != tr2.Uops || len(tr.names) != len(tr2.names) {
			t.Fatalf("round trip changed totals: events %d->%d uops %d->%d names %d->%d",
				tr.Events, tr2.Events, tr.Uops, tr2.Uops, len(tr.names), len(tr2.names))
		}
		var a, b [][4]uint64
		tr.Decode(func(op core.ReplayOp, x, y, z uint64) error {
			a = append(a, [4]uint64{uint64(op), x, y, z})
			return nil
		})
		tr2.Decode(func(op core.ReplayOp, x, y, z uint64) error {
			b = append(b, [4]uint64{uint64(op), x, y, z})
			return nil
		})
		if len(a) != len(b) {
			t.Fatalf("round trip changed event count: %d -> %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("event %d changed: %v -> %v", i, a[i], b[i])
			}
		}
		// Accepted traces must replay without panics; errors (bad call
		// indexes, heap exhaustion faults) are contained by Run. Skip
		// streams with astronomically wide µop batches or allocations —
		// real recordings never contain them and replaying one is only
		// slow, not unsafe.
		plausible := true
		tr.Decode(func(op core.ReplayOp, x, y, z uint64) error {
			switch op {
			case core.RopALU, core.RopCapManip, core.RopCapCodegen,
				core.RopFP, core.RopSIMD, core.RopCrypto:
				plausible = plausible && x < 1<<16
			case core.RopAlloc:
				plausible = plausible && x < 1<<20
			}
			return nil
		})
		if plausible && tr.Events < 1<<12 {
			Run(core.New(abi.Hybrid), tr)
		}
	})
}
