package replay

import (
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// loadStoreTrace records a load/store-heavy event stream of n pairs (the
// access pattern of cmd/bench-export's MachineLoadStore baseline).
func loadStoreTrace(n int) *Trace {
	rec := NewRecorder()
	m := core.New(abi.Purecap)
	m.SetReplaySink(rec)
	m.Func("bench", 512, 64)
	var uops uint64
	err := m.Run(func(m *core.Machine) {
		p := m.Alloc(1 << 20)
		for i := 0; i < n; i++ {
			off := core.Ptr(uint64(i*64) % (1 << 20))
			m.Store(p+off, uint64(i), 8)
			m.Load(p+off, 8)
		}
		uops = m.Uops()
	})
	if err != nil {
		panic(err)
	}
	return rec.Finish(uops)
}

// BenchmarkMachineLoadStoreLive is the live-interpretation baseline the
// replay numbers compare against: one store + one load per iteration
// through the full accounting path, no recording.
func BenchmarkMachineLoadStoreLive(b *testing.B) {
	b.ReportAllocs()
	m := core.New(abi.Purecap)
	m.Func("bench", 512, 64)
	err := m.Run(func(m *core.Machine) {
		p := m.Alloc(1 << 20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := core.Ptr(uint64(i*64) % (1 << 20))
			m.Store(p+off, uint64(i), 8)
			m.Load(p+off, 8)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMachineLoadStoreRecording measures the same pair with a
// Recorder attached — the marginal cost of capturing the event stream.
func BenchmarkMachineLoadStoreRecording(b *testing.B) {
	b.ReportAllocs()
	m := core.New(abi.Purecap)
	m.SetReplaySink(NewRecorder())
	m.Func("bench", 512, 64)
	err := m.Run(func(m *core.Machine) {
		p := m.Alloc(1 << 20)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := core.Ptr(uint64(i*64) % (1 << 20))
			m.Store(p+off, uint64(i), 8)
			m.Load(p+off, 8)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplayLoadStore measures the fast path's per-pair cost:
// decoding and applying one recorded store + one recorded load. The loop
// replays a 64k-pair trace onto fresh machines and reports per pair.
func BenchmarkReplayLoadStore(b *testing.B) {
	const pairs = 1 << 16
	t := loadStoreTrace(pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += pairs {
		m := core.New(abi.Purecap)
		if err := Run(m, t); err != nil {
			b.Fatal(err)
		}
	}
}
