// Package workloads implements the paper's 20 application workloads as
// algorithm kernels running on the simulated Morello machine: 17 SPEC CPU
// 2017 benchmarks (the C/C++ subset the paper could compile, in _r and _s
// variants), QuickJS, LLaMA.cpp (inference and matmul) and SQLite.
//
// Each kernel implements the data structures and inner loops that dominate
// the real benchmark's execution profile — a discrete-event simulator for
// omnetpp, a DOM transform for xalancbmk, a lattice-Boltzmann stencil for
// lbm, and so on — so that the per-ABI differences the paper measures
// (capability pointer width, capability jumps, allocator rounding) act on
// the same structural causes. Kernels are deterministic: a fixed seed
// drives every pseudo-random choice.
package workloads

import (
	"fmt"
	"sort"

	"cherisim/internal/core"
)

// Workload describes one benchmark program.
type Workload struct {
	// Name is the paper's benchmark identifier (e.g. "520.omnetpp_r").
	Name string
	// Desc is a one-line description.
	Desc string
	// PaperMI is the memory-intensity value from Table 2.
	PaperMI float64
	// PaperTimes holds Table 3/4 execution times [hybrid, benchmark,
	// purecap] in seconds, when the paper reports them (zeros otherwise).
	// Benchmark-ABI NA (QuickJS) is recorded as a negative value.
	PaperTimes [3]float64
	// Selected marks the 12 representative benchmarks of Table 3.
	Selected bool
	// TopDown marks the 6 workloads of Table 4 / Figures 3, 4, 6.
	TopDown bool
	// Run executes the kernel body on m. scale >= 1 multiplies the work
	// (iteration counts); data-structure sizes are fixed so cache and TLB
	// behaviour is scale-independent once warmed.
	Run func(m *core.Machine, scale int)
	// Live marks workloads that must execute their kernel on every run:
	// the session excludes them from the record-and-replay fast path the
	// same way supervised (chaos/deadline/check) runs are. Attack-corpus
	// kernels are Live — they trap mid-run under some ABIs and their
	// machines are inspected post-run, neither of which a replayed event
	// stream can reproduce.
	Live bool
	// Canary, when set, is the workload's corruption witness: invoked on
	// the machine after the body finishes (normally or by fault), it
	// re-derives the seeded checksum over the canary region the body
	// planted and reports whether that memory is intact. The report rides
	// the run result and the persistent store. See internal/attacks.
	Canary func(m *core.Machine) CanaryReport
}

// registry holds every workload keyed by name. hidden marks entries that
// resolve through ByName but are excluded from All()/Names(): the Appendix
// Table 5 benchmarks that crash under the capability ABIs, and the attack
// corpus (internal/attacks), which is run only by the security experiment.
var (
	registry = map[string]*Workload{}
	hidden   = map[string]bool{}
)

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate %q", w.Name))
	}
	registry[w.Name] = w
	return w
}

// RegisterAttack registers an attack-corpus workload (see
// internal/attacks): resolvable through ByName and runnable by tools and
// the security experiment, but excluded from All()/Names() so the paper's
// campaign grid and every -all artefact are untouched. Attack workloads
// must carry a Canary witness and are forced Live.
func RegisterAttack(w *Workload) *Workload {
	if w.Canary == nil {
		panic(fmt.Sprintf("workloads: attack %q has no canary witness", w.Name))
	}
	w.Live = true
	register(w)
	hidden[w.Name] = true
	return w
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (try one of %v)", name, Names())
	}
	return w, nil
}

// Names returns the runnable workload names, sorted (the crashing
// Appendix Table 5 entries and the attack corpus are excluded; see Faulty
// and internal/attacks).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		if !hidden[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every workload in name order.
func All() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Selected returns the 12 representative benchmarks of Table 3, in the
// paper's column order.
func Selected() []*Workload {
	order := []string{
		"510.parest_r", "519.lbm_r", "520.omnetpp_r", "523.xalancbmk_r",
		"531.deepsjeng_r", "541.leela_r", "544.nab_r", "557.xz_r",
		"llama-inference", "llama-matmul", "sqlite", "quickjs",
	}
	var out []*Workload
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// TopDownSet returns the 6 workloads of Table 4, in the paper's order.
func TopDownSet() []*Workload {
	order := []string{
		"519.lbm_r", "520.omnetpp_r", "541.leela_r",
		"llama-inference", "sqlite", "quickjs",
	}
	var out []*Workload
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// rng is a small deterministic xorshift64* generator; workloads must not
// use math/rand's global state so runs stay reproducible.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 2685821657736338717
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// chance returns true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }
