package workloads

import "cherisim/internal/core"

// x264 models 525.x264_r / 625.x264_s: H.264 video encoding. The encoder's
// time is dominated by motion estimation — sum-of-absolute-difference
// searches of 16x16 macroblocks against a reference frame window (SIMD
// over streaming pixel rows) — followed by DCT/quantisation arithmetic and
// entropy-coder updates. Pointer traffic is light (frame planes are flat
// arrays); per-macroblock analysis structures contribute a little.
// The paper compiled and ran x264 under all three ABIs (Appendix Table 5)
// but does not tabulate it in Table 2/3, so no PaperMI is recorded.
func x264(width, height, frames int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("x264_encoder_encode", 6144, 384)
		fnME := m.Func("x264_me_search_ref", 3072, 192)
		fnDCT := m.Func("x264_sub16x16_dct", 1536, 96)

		r := newRNG(0x0525)

		plane := uint64(width * height)
		cur := m.Alloc(plane)
		ref := m.Alloc(plane)

		// Per-macroblock analysis record with pointers to candidate
		// predictors.
		mbL := m.Layout(core.FieldPtr, core.FieldU32, core.FieldU32, core.FieldU32)
		mbs := make([]core.Ptr, (width/16)*(height/16))
		for i := range mbs {
			mbs[i] = m.AllocRecord(mbL)
		}

		for f := 0; f < frames*scale; f++ {
			for mbY := 0; mbY < height/16; mbY++ {
				for mbX := 0; mbX < width/16; mbX++ {
					mb := mbs[mbY*(width/16)+mbX]
					m.LoadPtr(mbL.Field(mb, 0))

					// Motion search: SAD over a small diamond of candidate
					// offsets, each comparing 16 rows of 16 pixels.
					m.Call(fnME, false)
					best := uint64(1 << 60)
					for cand := 0; cand < 6; cand++ {
						off := uint64(mbY*16*width+mbX*16) + uint64(r.intn(64))
						var sad uint64
						for row := 0; row < 16; row += 2 {
							m.Load(cur+core.Ptr((off+uint64(row*width))%plane), 8)
							m.Load(ref+core.Ptr((off+uint64(row*width)+3)%plane), 8)
							m.SIMD(2) // absolute differences + horizontal add
							sad += uint64(cand + row)
						}
						m.ALU(2)
						better := sad < best
						m.BranchAt(1201, better)
						if better {
							best = sad
						}
					}
					m.Store(mbL.Field(mb, 1), best, 4)
					m.Return()

					// Residual transform + quantisation.
					m.Call(fnDCT, false)
					for blk := 0; blk < 4; blk++ {
						m.Load(cur+core.Ptr((uint64(mbY*16*width+mbX*16)+uint64(blk*4))%plane), 8)
						m.SIMD(6) // butterflies
						m.ALU(4)  // quant scaling
					}
					m.Return()

					// CABAC-ish entropy state updates: branchy scalar code.
					for b := 0; b < 8; b++ {
						m.ALU(3)
						m.BranchAt(1202, r.chance(1, 2))
					}
					m.Store(mbL.Field(mb, 2), uint64(f), 4)
				}
			}
			cur, ref = ref, cur
		}
	}
}

func init() {
	register(&Workload{
		Name: "525.x264_r",
		Desc: "H.264 video compression",
		Run:  x264(320, 192, 5),
	})
	register(&Workload{
		Name: "625.x264_s",
		Desc: "H.264 video compression (speed variant)",
		Run:  x264(384, 224, 5),
	})
}
