package workloads

import "cherisim/internal/core"

// xz models 557.xz_r / 657.xz_s: LZMA compression from XZ Utils. The hot
// path is the match finder — hash-chain probes into a multi-megabyte
// window with data-dependent chain walks and byte-compare loops whose
// outcomes are close to random (the source of xz's ~5.5 % branch MR and
// 22 % L2 miss rate) — followed by range-coder arithmetic. Pointer density
// is modest (~12 % under purecap): chain entries are indices, but the
// encoder's stream state and allocator structures hold pointers.
func xz(windowBytes, positions int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("lzma_mf_find", 2816, 160)
		fnRC := m.Func("rc_encode", 1536, 96)

		r := newRNG(0x0557)

		window := m.Alloc(uint64(windowBytes))
		hashHeads := m.Alloc(1 << 16 * 4)         // u32 head per hash bucket
		chain := m.Alloc(uint64(windowBytes) * 4) // u32 previous-position links

		// Stream state with pointer fields (dictionary, allocator, filters).
		stateL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU64)
		state := m.AllocRecord(stateL)
		m.StorePtr(stateL.Field(state, 0), window)
		m.StorePtr(stateL.Field(state, 1), hashHeads)
		m.StorePtr(stateL.Field(state, 2), chain)

		// Fill the window with compressible-ish pseudo-data (the input
		// generation pass: RNG arithmetic per word).
		for off := 0; off < windowBytes; off += 8 {
			m.ALU(3)
			m.Store(window+core.Ptr(off), r.next()%251, 8)
			m.BranchAt(904, off+8 < windowBytes)
		}

		pos := uint64(0)
		for p := 0; p < positions*scale; p++ {
			// Hash the next 4 bytes, probe the bucket head.
			cur := m.LoadDep(window+core.Ptr(pos%uint64(windowBytes-8)), 4)
			m.ALU(3) // hash
			bucket := (cur * 2654435761) % (1 << 16)
			head := m.LoadDep(hashHeads+core.Ptr(bucket*4), 4)

			// Walk the chain: dependent loads + byte compares.
			depth := 4 + r.intn(12)
			cand := head
			for d := 0; d < depth; d++ {
				c := m.LoadDep(window+core.Ptr(cand%uint64(windowBytes-8)), 8)
				m.ALU(5)
				match := c == cur
				m.BranchAt(1401, match) // essentially random
				if match {
					// Extend the match bytewise.
					for ext := 0; ext < 8; ext++ {
						m.Load(window+core.Ptr((cand+uint64(ext))%uint64(windowBytes-8)), 1)
						m.ALU(3)
						more := r.chance(3, 4)
						m.BranchAt(1402, more)
						if !more {
							break
						}
					}
					break
				}
				cand = m.LoadDep(chain+core.Ptr((cand%uint64(windowBytes))*4), 4)
			}

			// Update chain and head.
			m.Store(chain+core.Ptr((pos%uint64(windowBytes))*4), head, 4)
			m.Store(hashHeads+core.Ptr(bucket*4), pos, 4)

			// Range-coder arithmetic on the chosen symbol.
			m.Call(fnRC, false)
			m.LoadPtr(stateL.Field(state, 2))
			m.ALU(26) // probability updates, shifts, normalisation
			m.Store(stateL.Field(state, 3), pos, 8)
			m.BranchAt(1403, pos%13 == 0) // renormalisation
			m.Return()

			pos += 1 + uint64(r.intn(4))
		}
	}
}

func init() {
	register(&Workload{
		Name:       "557.xz_r",
		Desc:       "LZMA data compression (XZ Utils)",
		PaperMI:    0.514,
		PaperTimes: [3]float64{46.93, 49.65, 49.98},
		Selected:   true,
		Run:        xz(2<<20, 24000),
	})
	register(&Workload{
		Name:    "657.xz_s",
		Desc:    "LZMA data compression (speed variant, pthreads port)",
		PaperMI: 0.504,
		Run:     xz(3<<20, 24000),
	})
}
