package workloads

import "cherisim/internal/core"

// leela models 541.leela_r / 641.leela_s: Monte-Carlo tree search for Go.
// The profile mixes a pointer-linked UCT tree (expansion walks child lists
// — capability loads under purecap), floating-point UCT scoring
// (sqrt/log), and random playouts whose move choices defeat the branch
// predictor — leela has the paper's highest branch misprediction rate
// (~7.3 %).
func leela(playouts int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		fnSelect := m.Func("UCTNode::uct_select_child", 1280, 96)
		fnPlayout := m.Func("Playout::run", 2560, 192)
		fnUpdate := m.Func("UCTNode::update", 768, 64)

		r := newRNG(0x0541)

		// UCT node: {firstChild, nextSibling *; visits u64, wins u64,
		// move u32}.
		nodeL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU64, core.FieldU32)
		root := m.AllocRecord(nodeL)

		// 19x19 board, cache-hot.
		board := m.Alloc(19 * 19 * 4)

		expand := func(n core.Ptr, fanout int) {
			var prev core.Ptr
			for c := 0; c < fanout; c++ {
				child := m.AllocRecord(nodeL)
				m.Store(nodeL.Field(child, 4), uint64(r.intn(361)), 4)
				if prev == 0 {
					m.StorePtr(nodeL.Field(n, 0), child)
				} else {
					m.StorePtr(nodeL.Field(prev, 1), child)
				}
				prev = child
			}
		}
		expand(root, 8)

		for p := 0; p < playouts*scale; p++ {
			// Selection: descend the tree maximising UCT score.
			path := []core.Ptr{root}
			node := root
			for depth := 0; depth < 12; depth++ {
				m.Call(fnSelect, false)
				best := core.Ptr(0)
				for c := m.LoadPtr(nodeL.Field(node, 0)); c != 0; c = m.LoadPtr(nodeL.Field(c, 1)) {
					v := m.LoadDep(nodeL.Field(c, 2), 8)
					m.LoadDep(nodeL.Field(c, 3), 8)
					m.FP(4) // win rate + exploration term (sqrt, log, div)
					take := r.chance(1, 3)
					m.BranchAt(301, take)
					if take || best == 0 {
						best = c
					}
					_ = v
				}
				m.Return()
				if best == 0 {
					m.BranchAt(302, false)
					break
				}
				m.BranchAt(303, true)
				node = best
				path = append(path, node)
			}
			// Expansion of a leaf once it is visited enough.
			visits := m.LoadDep(nodeL.Field(node, 2), 8)
			if visits > 2 && m.LoadPtr(nodeL.Field(node, 0)) == 0 {
				m.BranchAt(304, true)
				expand(node, 4+r.intn(8))
			} else {
				m.BranchAt(305, false)
			}

			// Playout: random moves on the hot board; the branch-killer.
			// The playout policy is dispatched through a function pointer
			// (a capability jump into the policy library under purecap).
			m.CallVirtualAt(310, fnPlayout)
			for mv := 0; mv < 60; mv++ {
				sq := r.intn(361)
				v := m.Load(board+core.Ptr(sq*4), 4)
				m.ALU(2) // liberties/legality arithmetic
				legal := (v+uint64(sq))%3 != 0
				m.BranchAt(306, legal) // data-dependent, effectively random
				if legal {
					m.Store(board+core.Ptr(sq*4), v+1, 4)
				}
			}
			m.Return()

			// Backup: update statistics along the path.
			m.Call(fnUpdate, false)
			win := r.chance(1, 2)
			for _, n := range path {
				vv := m.LoadDep(nodeL.Field(n, 2), 8)
				m.Store(nodeL.Field(n, 2), vv+1, 8)
				if win {
					w := m.LoadDep(nodeL.Field(n, 3), 8)
					m.Store(nodeL.Field(n, 3), w+1, 8)
				}
				m.BranchAt(307, win)
				m.ALU(2)
			}
			m.Return()
		}
	}
}

func init() {
	register(&Workload{
		Name:       "541.leela_r",
		Desc:       "Monte Carlo tree search and pattern recognition (Go)",
		PaperMI:    0.565,
		PaperTimes: [3]float64{97.01, 110.59, 119.46},
		Selected:   true,
		TopDown:    true,
		Run:        leela(2000),
	})
	register(&Workload{
		Name:    "641.leela_s",
		Desc:    "Monte Carlo tree search (speed variant)",
		PaperMI: 0.565,
		Run:     leela(2200),
	})
}
