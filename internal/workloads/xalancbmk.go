package workloads

import "cherisim/internal/core"

// xalancbmk models 523.xalancbmk_r / 623.xalancbmk_s: an XSLT processor
// transforming XML into HTML. The hot profile is a DOM of pointer-linked
// element nodes traversed by recursive template matching; crucially, the
// xerces DOM is accessed through *virtual accessors* (getFirstChild,
// getNextSibling, getNodeType live behind vtables in a separate DSO), so
// every node visit makes several capability jumps under purecap. That is
// why xalancbmk is the paper's strongest example of the Morello PCC-bounds
// predictor problem — 103.5 % purecap overhead falling to 45.5 % under the
// benchmark ABI — and why it shows the largest capability load density
// (~81 %) and a 1170 % DTLB-walk increase from the doubled pointer
// footprint.
func xalancbmk(nodes, passes int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		fnMatch := m.Func("XSLTEngineImpl::executeTemplate", 2048, 160)
		fnChild := m.Func("DOMElementImpl::getFirstChild", 512, 48)
		fnSibling := m.Func("DOMElementImpl::getNextSibling", 512, 48)
		// Per-node-kind formatters, dispatched virtually.
		kinds := make([]*core.Fn, 8)
		for i := range kinds {
			kinds[i] = m.Func("FormatterToHTML::emit", 896, 96)
		}

		r := newRNG(0x0523)

		// DOM node: {firstChild, nextSibling, attrs, text *; kind u32,
		// hash u64}.
		nodeL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldPtr, core.FieldPtr, core.FieldU32, core.FieldU64)

		// Build the document tree breadth-first with fanout 1-6.
		root := m.AllocRecord(nodeL)
		m.Store(nodeL.Field(root, 4), 0, 4)
		queue := []core.Ptr{root}
		built := 1
		for built < nodes && len(queue) > 0 {
			parent := queue[0]
			queue = queue[1:]
			fan := 1 + r.intn(6)
			var prev core.Ptr
			for c := 0; c < fan && built < nodes; c++ {
				n := m.AllocRecord(nodeL)
				m.Store(nodeL.Field(n, 4), uint64(r.intn(len(kinds))), 4)
				m.Store(nodeL.Field(n, 5), r.next()%1000, 8)
				if r.chance(1, 3) {
					attrs := m.Alloc(48)
					m.StorePtr(nodeL.Field(n, 2), attrs)
				}
				if r.chance(1, 2) {
					text := m.Alloc(32 + uint64(r.intn(96)))
					m.StorePtr(nodeL.Field(n, 3), text)
				}
				if prev == 0 {
					m.StorePtr(nodeL.Field(parent, 0), n)
				} else {
					m.StorePtr(nodeL.Field(prev, 1), n)
				}
				prev = n
				built++
				queue = append(queue, n)
			}
		}

		// Output buffer: appended to during the transform.
		outBuf := m.Alloc(1 << 20)
		outPos := uint64(0)

		// Virtual DOM accessors: a capability jump into the xerces DSO
		// per call under purecap.
		firstChild := func(n core.Ptr) core.Ptr {
			m.CallVirtualAt(1310, fnChild)
			c := m.LoadPtr(nodeL.Field(n, 0))
			m.ALU(2)
			m.Return()
			return c
		}
		nextSibling := func(n core.Ptr) core.Ptr {
			m.CallVirtualAt(1311, fnSibling)
			c := m.LoadPtr(nodeL.Field(n, 1))
			m.ALU(2)
			m.Return()
			return c
		}

		var transform func(n core.Ptr, depth int)
		transform = func(n core.Ptr, depth int) {
			m.Call(fnMatch, false)
			defer m.Return()

			kind := m.LoadDep(nodeL.Field(n, 4), 4)
			hash := m.LoadDep(nodeL.Field(n, 5), 8)
			// Template-rule matching: pattern hash plus string compares.
			m.ALU(12)
			m.CapCodegen(4) // capability argument copies in deep C++ calls

			// Virtual dispatch to the node formatter.
			m.CallVirtualAt(1312, kinds[kind%uint64(len(kinds))])
			attrs := m.LoadPtr(nodeL.Field(n, 2))
			if attrs != 0 {
				m.BranchAt(1301, true)
				m.Load(attrs, 8)
				m.Load(attrs+16, 8)
				m.ALU(6) // attribute-name comparison and escaping
			} else {
				m.BranchAt(1302, false)
			}
			text := m.LoadPtr(nodeL.Field(n, 3))
			if text != 0 {
				m.BranchAt(1303, true)
				v := m.Load(text, 8)
				// UTF transcoding loop over the text run.
				for ch := 0; ch < 6; ch++ {
					m.ALU(2)
					m.BranchAt(1307, ch < 5)
				}
				m.Store(outBuf+core.Ptr(outPos%(1<<20-8)), v^hash, 8)
				outPos += 24
			} else {
				m.BranchAt(1304, false)
			}
			m.Return() // from formatter

			if depth < 64 {
				for c := firstChild(n); c != 0; c = nextSibling(c) {
					m.BranchAt(1305, true)
					transform(c, depth+1)
				}
				m.BranchAt(1306, false)
			}
		}

		for p := 0; p < passes*scale; p++ {
			outPos = 0
			transform(root, 0)
		}
	}
}

func init() {
	register(&Workload{
		Name:       "523.xalancbmk_r",
		Desc:       "XSLT processor transforming XML documents",
		PaperMI:    0.860,
		PaperTimes: [3]float64{53.59, 77.95, 109.07},
		Selected:   true,
		Run:        xalancbmk(30000, 3),
	})
	register(&Workload{
		Name:    "623.xalancbmk_s",
		Desc:    "XSLT processor (speed variant)",
		PaperMI: 0.860,
		Run:     xalancbmk(36000, 3),
	})
}
