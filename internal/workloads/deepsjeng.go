package workloads

import "cherisim/internal/core"

// deepsjeng models 531.deepsjeng_r / 631.deepsjeng_s: alpha-beta game-tree
// search with a large transposition table. The inner loop is evaluation
// arithmetic over a cache-resident board plus one or two random probes per
// node into a table far larger than L2 (the source of its 19-23 % L2 miss
// rate), with search recursion and hard-to-predict cutoff branches
// (~3 % branch MR). Pointer activity is moderate (cap load density ~28 %):
// move lists and search-stack structures hold pointers.
func deepsjeng(ttEntries, nodes int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		fnSearch := m.Func("search", 3584, 224)
		fnEval := m.Func("eval", 4096, 160)
		fnMovegen := m.Func("movegen", 2048, 128)

		r := newRNG(0x0531)

		// Transposition table: 16-byte entries, randomly probed.
		ttEntry := uint64(16)
		tt := m.Alloc(uint64(ttEntries) * ttEntry)

		// Board: 64 squares of piece state, always cache-hot.
		board := m.Alloc(64 * 8)
		for i := 0; i < 64; i++ {
			m.Store(board+core.Ptr(i*8), uint64(i%13), 8)
		}

		// Search stack: one record per ply with pointers to the move list
		// and the previous ply. Move lists hold pointers to piece records
		// (half) and packed scores (half), as sjeng's do.
		plyL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU32)
		pieceL := m.Layout(core.FieldU64, core.FieldU64, core.FieldU32)
		pieces := make([]core.Ptr, 32)
		for i := range pieces {
			pieces[i] = m.AllocRecord(pieceL)
		}
		slot := m.ABI.PointerSize()
		plies := make([]core.Ptr, 64)
		moveLists := make([]core.Ptr, 64)
		for i := range plies {
			plies[i] = m.AllocRecord(plyL)
			moveLists[i] = m.Alloc(64 * slot)
			m.StorePtr(plyL.Field(plies[i], 1), moveLists[i])
			if i > 0 {
				m.StorePtr(plyL.Field(plies[i], 0), plies[i-1])
			}
		}

		hash := r.next()
		var visit func(depth int)
		visit = func(depth int) {
			m.Call(fnSearch, false)
			defer m.Return()

			// Transposition-table probe: a random 16-byte load from a
			// table much larger than L2.
			idx := hash % uint64(ttEntries)
			e := m.LoadDep(tt+core.Ptr(idx*ttEntry), 8)
			m.ALU(3) // key compare, depth compare
			if e&7 == 0 && depth > 0 {
				m.BranchAt(101, true) // tt cutoff path sometimes
			} else {
				m.BranchAt(102, false)
			}

			// Current ply record: pointer loads to the move list.
			ply := plies[depth%64]
			ml := m.LoadPtr(plyL.Field(ply, 1))
			m.LoadPtr(plyL.Field(ply, 0))

			// Move generation: board scan + arithmetic.
			m.Call(fnMovegen, false)
			nMoves := 8 + r.intn(24)
			for mv := 0; mv < nMoves; mv++ {
				m.Load(board+core.Ptr((mv%64)*8), 8)
				m.ALU(3) // attack masks, scoring
				m.BranchAt(104, mv+1 < nMoves)
				if mv%4 == 0 {
					m.StorePtr(ml+core.Ptr(uint64(mv)*slot), pieces[mv%32])
				} else {
					m.Store(ml+core.Ptr(uint64(mv)*slot), uint64(mv), 8)
				}
			}
			m.Return()

			// Evaluation: heavy integer arithmetic over the hot board.
			m.Call(fnEval, false)
			for sq := 0; sq < 16; sq++ {
				m.Load(board+core.Ptr(sq*8), 8)
				m.ALU(5)
				m.BranchAt(105, sq < 15)
			}
			// Re-examine the best moves through their piece records.
			for mv := 0; mv < 4 && mv < nMoves; mv += 4 {
				p := m.LoadPtr(ml + core.Ptr(uint64(mv)*slot))
				m.Load(pieceL.Field(p, 0), 8)
				m.ALU(3)
			}
			m.Return()

			// Alpha-beta recursion with unpredictable cutoffs.
			if depth > 0 {
				children := 2 + r.intn(3)
				for c := 0; c < children; c++ {
					hash = hash*6364136223846793005 + uint64(c)
					cut := r.chance(1, 3)
					m.BranchAt(103, cut)
					if cut {
						break
					}
					visit(depth - 1)
				}
			}
			// Store the result back into the TT.
			m.Store(tt+core.Ptr(idx*ttEntry), hash, 8)
		}

		for n := 0; n < nodes*scale; n++ {
			hash = r.next()
			visit(4)
		}
	}
}

func init() {
	register(&Workload{
		Name:       "531.deepsjeng_r",
		Desc:       "alpha-beta tree search and pattern recognition",
		PaperMI:    0.489,
		PaperTimes: [3]float64{67.42, 73.64, 78.85},
		Selected:   true,
		Run:        deepsjeng(1<<20, 110),
	})
	register(&Workload{
		Name:    "631.deepsjeng_s",
		Desc:    "alpha-beta tree search (speed variant)",
		PaperMI: 0.496,
		Run:     deepsjeng(1<<21, 100),
	})
}
