package workloads

import "cherisim/internal/core"

// This file implements the paper's Appendix Table 5 "compiled but
// crashing" benchmarks: 502.gcc_r and 505.mcf_r build under all three ABIs
// but trigger an in-address-space security exception under the purecap and
// benchmark ABIs while the hybrid ABI executes without errors. The cause
// in real ports is C code that launders pointers through integers or
// overwrites capability-holding memory with plain data — idioms that are
// silently tolerated by AArch64 and trapped by CHERI. The kernels below
// reproduce exactly that: they run to completion under hybrid and fault
// with a capability violation under the capability ABIs.

// gcc models 502.gcc_r's register-allocation phase: pointer-linked RTL
// expressions with a pointer-to-integer round trip in its bitmap code (the
// classic XOR-linked/low-bit-tagging idiom GCC uses), which strips the
// capability tag under purecap.
func gcc(exprs int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("ira_color", 4096, 256)

		r := newRNG(0x0502)

		// RTL node: {op1 *Node, op2 *Node, code u32}.
		rtlL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU32)
		nodes := make([]core.Ptr, exprs)
		for i := range nodes {
			nodes[i] = m.AllocRecord(rtlL)
			m.StorePtr(rtlL.Field(nodes[i], 0), 0)
			m.StorePtr(rtlL.Field(nodes[i], 1), 0)
			if i > 0 {
				m.StorePtr(rtlL.Field(nodes[i-1], 0), nodes[i])
			}
			m.ALU(6)
		}

		// Allocation passes over the expression chains.
		for pass := 0; pass < 3*scale; pass++ {
			for p := nodes[0]; p != 0; p = m.LoadPtr(rtlL.Field(p, 0)) {
				m.Load(rtlL.Field(p, 2), 4)
				m.ALU(8)
				m.BranchAt(2001, true)
			}
			m.BranchAt(2002, false)
		}

		// The porting bug: GCC tags pointer low bits by storing the
		// pointer value through an integer slot, then reloads and
		// dereferences it. Under hybrid this is byte-identical; under the
		// capability ABIs the integer store wrote an untagged word, so the
		// capability reload finds the tag clear and the dereference faults.
		slot := m.Alloc(16)
		target := nodes[exprs/2]
		m.Store(slot, uint64(target)|1, 8)  // integer store of ptr|tag-bit
		laundered := m.LoadPtrChecked(slot) // hybrid: fine; purecap: tag fault
		laundered = core.Ptr(uint64(laundered) &^ 1)
		m.LoadPtr(rtlL.Field(laundered, 0))
		_ = r
	}
}

// mcf models 505.mcf_r's network-simplex arc scan: a large arc array whose
// node references the real benchmark keeps as byte offsets from a base
// pointer, re-materialised by out-of-bounds pointer arithmetic that CHERI's
// per-allocation bounds reject.
func mcf(arcs int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("primal_bea_mpp", 3072, 192)

		r := newRNG(0x0505)

		// Arc: {cost u64, tail u64 (node offset), head u64 (node offset)}.
		arcL := m.Layout(core.FieldU64, core.FieldU64, core.FieldU64)
		arcArr := m.AllocArray(uint64(arcs), arcL.Size())
		nodeArr := m.Alloc(uint64(arcs/4) * 32)

		for i := 0; i < arcs; i++ {
			a := arcL.Elem(arcArr, uint64(i))
			m.Store(arcL.Field(a, 0), r.next()%1000, 8)
			m.Store(arcL.Field(a, 1), uint64(r.intn(arcs/4))*32, 8)
			m.Store(arcL.Field(a, 2), uint64(r.intn(arcs/4))*32, 8)
		}

		// Pricing passes.
		for pass := 0; pass < 2*scale; pass++ {
			for i := 0; i < arcs; i++ {
				a := arcL.Elem(arcArr, uint64(i))
				m.Load(arcL.Field(a, 0), 8)
				t := m.LoadDep(arcL.Field(a, 1), 8)
				m.Load(nodeArr+core.Ptr(t), 8)
				m.ALU(5)
				m.BranchAt(2101, i+1 < arcs)
			}
		}

		// The porting bug: mcf computes a node pointer by offsetting from
		// the *arc array* base across allocation boundaries (its arcs and
		// nodes were carved from one malloc in the original code, two under
		// the port). AArch64 dereferences it happily; the capability the
		// address was derived from — the arc array's — faults on bounds.
		stride := int64(arcL.Size())
		beyond := core.Ptr(int64(arcArr) + stride*int64(arcs) + 4096)
		m.LoadVia(arcArr, beyond, 8) // hybrid: silently reads; purecap: bounds fault
	}
}

// faultyRegistry holds the compiled-but-crashing benchmarks, kept separate
// from the 20 runnable workloads.
var faultyRegistry []*Workload

func registerFaulty(w *Workload) {
	faultyRegistry = append(faultyRegistry, w)
	// Also resolvable by name so tools can run them and observe the fault.
	registry[w.Name] = w
	hidden[w.Name] = true
}

// Faulty returns the Appendix Table 5 benchmarks that compile under every
// ABI but crash with an in-address-space security exception under the
// capability ABIs. They are excluded from All().
func Faulty() []*Workload { return append([]*Workload(nil), faultyRegistry...) }

func init() {
	registerFaulty(&Workload{
		Name: "502.gcc_r",
		Desc: "C optimizing compiler (compiles; security exception under purecap/benchmark)",
		Run:  gcc(4000),
	})
	registerFaulty(&Workload{
		Name: "505.mcf_r",
		Desc: "vehicle scheduling (compiles; security exception under purecap/benchmark)",
		Run:  mcf(8000),
	})
}
