package workloads

import "cherisim/internal/core"

// lbm models 519.lbm_r / 619.lbm_s: a Lattice Boltzmann Method fluid
// simulation streaming over two large distribution grids. It is almost
// pointer-free — the grids are flat double arrays — so capability pointers
// barely touch its traffic, and the paper measures a small purecap
// *speed-up* (-7.9 %). The kernel is stream-bound: per cell it reads the 19
// distribution values, relaxes them with floating-point arithmetic and
// scatters to the destination grid.
func lbm(cells, steps int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("LBM_performStreamCollide", 4096, 256)

		const q = 19 // D3Q19 distribution functions
		cellBytes := uint64(q * 8)
		src := m.Alloc(uint64(cells) * cellBytes)
		dst := m.Alloc(uint64(cells) * cellBytes)

		for s := 0; s < steps*scale; s++ {
			for c := 0; c < cells; c++ {
				base := src + core.Ptr(uint64(c)*cellBytes)
				// Gather the 19 distributions (sequential, independent).
				var rho uint64
				for i := 0; i < q; i++ {
					rho += m.Load(base+core.Ptr(i*8), 8)
				}
				// Relaxation: density/velocity moments plus per-direction
				// equilibrium update (~3 FLOPs each on real lbm).
				m.FP(30)
				m.ALU(4)
				dbase := dst + core.Ptr(uint64(c)*cellBytes)
				for i := 0; i < q; i++ {
					m.FP(3)
					m.Store(dbase+core.Ptr(i*8), rho+uint64(i), 8)
				}
				m.BranchAt(201, c%64 == 0) // boundary-cell handling
			}
			src, dst = dst, src
		}
	}
}

func init() {
	register(&Workload{
		Name:       "519.lbm_r",
		Desc:       "Lattice Boltzmann Method fluid dynamics in 3D",
		PaperMI:    0.438,
		PaperTimes: [3]float64{38.00, 35.06, 35.09},
		Selected:   true,
		TopDown:    true,
		Run:        lbm(9000, 4),
	})
}
