package workloads

import "cherisim/internal/core"

// quickjs models the QuickJS engine running the Test262 suite: thousands
// of small scripts, each parsed into freshly allocated AST/object graphs,
// executed by an indirect-dispatch bytecode interpreter over shape-based
// objects, then torn down. Although its instruction mix classifies as
// compute-leaning (MI 0.68), the paper measures the largest purecap
// overhead of the whole study (165.9 %): the per-script
// parse/allocate/execute/teardown cycle is saturated with pointer traffic
// (capability load density 57 %), its heap churn grows the purecap
// footprint ~36 %, and the interpreter's wide handler set pressures the
// L1I cache and TLBs.
func quickjs(scripts int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		// Interpreter opcode handlers: a big instruction footprint.
		handlers := make([]*core.Fn, 48)
		for i := range handlers {
			handlers[i] = m.Func("JS_CallInternal.op", 768+uint64(i%9)*128, 64)
		}
		fnParse := m.Func("js_parse_program", 4096, 256)
		fnGC := m.Func("JS_RunGC", 2048, 128)
		fnNewObj := m.Func("JS_NewObject", 1024, 96)

		r := newRNG(0x2023)

		// JS object: {shape *Shape, props *slots, proto *Obj, class u32,
		// refcount u32}.
		objL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldPtr, core.FieldU32, core.FieldU32)
		// Shape: {parent *Shape, propNames *; count u32}.
		shapeL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU32)
		// AST node: {left, right *Node, token u32}.
		astL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU32)

		slot := m.ABI.PointerSize()

		// Shared root shapes survive across scripts.
		rootShape := m.AllocRecord(shapeL)
		// A fraction of objects survives each script (interned strings,
		// cached regexps, global pollution), so the process footprint
		// grows over the run as Test262's does.
		var survivors []core.Ptr

		// The VM value stack: JSValues are capability-sized under purecap.
		vmStack := m.Alloc(256 * slot)
		sp := 0

		for s := 0; s < scripts*scale; s++ {
			// --- Parse: build and link an AST of fresh allocations. ---
			m.Call(fnParse, true) // parser lives in the library DSO
			nAst := 40 + r.intn(80)
			ast := make([]core.Ptr, nAst)
			for i := range ast {
				ast[i] = m.AllocRecord(astL)
				m.StorePtr(astL.Field(ast[i], 0), 0)
				m.StorePtr(astL.Field(ast[i], 1), 0)
				m.Store(astL.Field(ast[i], 2), uint64(r.intn(96)), 4)
				if i > 0 {
					parent := ast[r.intn(i)]
					side := r.intn(2)
					m.StorePtr(astL.Field(parent, side), ast[i])
				}
				m.ALU(8) // lexer + parser state machine work
				m.BranchAt(801, r.chance(1, 3))
			}
			m.Return()

			// --- Allocate the script's object graph. ---
			nObjs := 24 + r.intn(48)
			objs := make([]core.Ptr, nObjs)
			shapes := make([]core.Ptr, 0, 8)
			shapes = append(shapes, rootShape)
			for i := range objs {
				m.Call(fnNewObj, false)
				o := m.AllocRecord(objL)
				props := m.Alloc(uint64(4+r.intn(12)) * slot)
				sh := shapes[r.intn(len(shapes))]
				if r.chance(1, 6) { // shape transition
					nsh := m.AllocRecord(shapeL)
					m.StorePtr(shapeL.Field(nsh, 0), sh)
					shapes = append(shapes, nsh)
					sh = nsh
				}
				m.StorePtr(objL.Field(o, 0), sh)
				m.StorePtr(objL.Field(o, 1), props)
				if i > 0 {
					m.StorePtr(objL.Field(o, 2), objs[r.intn(i)])
				} else {
					m.StorePtr(objL.Field(o, 2), 0)
				}
				objs[i] = o
				m.Return()
			}

			// --- Execute: indirect-dispatch interpretation. ---
			nOps := 300 + r.intn(300)
			for op := 0; op < nOps; op++ {
				h := handlers[r.intn(len(handlers))]
				m.CallVirtual(h)
				m.CapCodegen(5) // JSValue boxing and capability copies
				o := objs[r.intn(nObjs)]
				// Push/pop the operand on the VM value stack.
				m.StorePtr(vmStack+core.Ptr(uint64(sp%250)*slot), o)
				sp++
				m.LoadPtr(vmStack + core.Ptr(uint64((sp-1)%250)*slot))
				// Property access: shape walk then slot load.
				sh := m.LoadPtr(objL.Field(o, 0))
				m.Load(shapeL.Field(sh, 2), 4)
				props := m.LoadPtr(objL.Field(o, 1))
				m.LoadPtr(props)    // property value (a JSValue pointer)
				m.ALU(14)           // opcode decode, refcounts, arithmetic on values
				if r.chance(1, 4) { // property write
					m.BranchAt(802, true)
					m.StorePtr(props+core.Ptr(uint64(r.intn(4))*slot), objs[r.intn(nObjs)])
				} else {
					m.BranchAt(803, false)
				}
				// Prototype-chain lookup on misses.
				if r.chance(1, 5) {
					m.BranchAt(804, true)
					proto := m.LoadPtr(objL.Field(o, 2))
					if proto != 0 {
						m.LoadPtr(objL.Field(proto, 0))
					}
				} else {
					m.BranchAt(805, false)
				}
				m.Return()
			}

			// --- Teardown: free the script's garbage, except survivors. ---
			m.Call(fnGC, false)
			for i, o := range objs {
				if i%4 == 0 { // survives the script
					survivors = append(survivors, o)
					continue
				}
				props := m.LoadPtr(objL.Field(o, 1))
				m.Free(props)
				m.Free(o)
				m.ALU(2)
			}
			// The GC mark pass still touches a window of old survivors.
			for i := 0; i < 64 && i < len(survivors); i++ {
				sv := survivors[(s*17+i*31)%len(survivors)]
				m.LoadPtr(objL.Field(sv, 0))
				m.ALU(1)
			}
			for _, n := range ast {
				m.Free(n)
			}
			m.Return()
		}
	}
}

func init() {
	register(&Workload{
		Name:       "quickjs",
		Desc:       "QuickJS interpreter running many small Test262 scripts",
		PaperMI:    0.680,
		PaperTimes: [3]float64{22.51, -1, 59.87}, // benchmark ABI crashed (NA)
		Selected:   true,
		TopDown:    true,
		Run:        quickjs(140),
	})
}
