package workloads

import "cherisim/internal/core"

// parest models 510.parest_r: a finite-element solver for a biomedical
// imaging inverse problem. Its hot loop is sparse linear algebra — CSR
// matrix-vector products inside a conjugate-gradient iteration — plus a
// layer of mesh bookkeeping objects reached through pointers (dealii's
// DoFHandler cell lists). The sparse gathers give it balanced memory
// intensity (MI 0.922) and the pointer layer produces the ~8 % capability
// load density the paper measures under purecap.
func parest(rows, nnzPerRow, iters int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("SparseMatrix::vmult", 3072, 192)
		fnCell := m.Func("DoFHandler::cell_update", 1024, 96)

		r := newRNG(0x0510)

		nnz := rows * nnzPerRow
		vals := m.Alloc(uint64(nnz) * 8) // f64 values
		cols := m.Alloc(uint64(nnz) * 4) // u32 column indices
		x := m.Alloc(uint64(rows) * 8)   // input vector
		y := m.Alloc(uint64(rows) * 8)   // output vector
		rowPtr := m.Alloc(uint64(rows+1) * 4)
		// Per-row block pointers (dealii reaches row data through its
		// sparsity-pattern objects).
		slot := m.ABI.PointerSize()
		rowBlocks := m.Alloc(uint64(rows) * slot)
		for row := 0; row < rows; row++ {
			m.StorePtr(rowBlocks+core.Ptr(uint64(row)*slot), vals+core.Ptr(row*nnzPerRow*8))
		}

		// Column pattern: band-diagonal with a few far entries, like a
		// 2D/3D FE discretisation.
		colIdx := make([]int, nnz)
		for row := 0; row < rows; row++ {
			for k := 0; k < nnzPerRow; k++ {
				c := row + k - nnzPerRow/2
				if r.chance(1, 8) {
					c = r.intn(rows)
				}
				if c < 0 {
					c = 0
				}
				if c >= rows {
					c = rows - 1
				}
				colIdx[row*nnzPerRow+k] = c
				m.Store(cols+core.Ptr((row*nnzPerRow+k)*4), uint64(c), 4)
			}
			m.Store(rowPtr+core.Ptr(row*4), uint64(row*nnzPerRow), 4)
		}

		// Mesh cells: a pointer-linked list of per-cell metadata records
		// visited once per CG iteration (assembly/constraint pass).
		cellL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldF64)
		nCells := rows / 16
		cells := make([]core.Ptr, nCells)
		for i := range cells {
			cells[i] = m.AllocRecord(cellL)
		}
		for i := 0; i < nCells-1; i++ {
			m.StorePtr(cellL.Field(cells[i], 0), cells[i+1])
		}

		for it := 0; it < iters*scale; it++ {
			// y = A*x (CSR SpMV).
			for row := 0; row < rows; row++ {
				var acc uint64
				base := row * nnzPerRow
				m.LoadPtr(rowBlocks + core.Ptr(uint64(row)*slot))
				for k := 0; k < nnzPerRow; k++ {
					m.Load(vals+core.Ptr((base+k)*8), 8)
					c := colIdx[base+k]
					m.Load(cols+core.Ptr((base+k)*4), 4)
					acc += m.Load(x+core.Ptr(c*8), 8)
					m.ALU(1) // index arithmetic
					m.FP(2)  // multiply-accumulate
					m.BranchAt(703, k+1 < nnzPerRow)
				}
				m.Store(y+core.Ptr(row*8), acc, 8)
				m.FP(1)
				m.BranchAt(701, row+1 < rows)
			}
			// CG vector updates: alpha/beta dot products and AXPYs.
			for row := 0; row < rows; row += 4 {
				m.Load(x+core.Ptr(row*8), 8)
				m.Load(y+core.Ptr(row*8), 8)
				m.FP(4)
				m.Store(x+core.Ptr(row*8), uint64(row), 8)
			}
			// Constraint pass over the mesh cells (pointer walk).
			m.Call(fnCell, false)
			for p := cells[0]; p != 0; {
				m.Load(cellL.Field(p, 2), 8)
				m.FP(2)
				m.ALU(2)
				p = m.LoadPtr(cellL.Field(p, 0))
				m.BranchAt(702, p != 0)
			}
			m.Return()
			x, y = y, x
		}
	}
}

func init() {
	register(&Workload{
		Name:       "510.parest_r",
		Desc:       "finite element solver for biomedical imaging",
		PaperMI:    0.922,
		PaperTimes: [3]float64{37.87, 41.94, 43.10},
		Selected:   true,
		Run:        parest(4096, 12, 4),
	})
}
