package workloads

// CanaryReport is the corruption witness an attack workload's Canary hook
// produces after a run (see internal/attacks). The attack body plants a
// seeded pseudo-random pattern over a victim region and records the
// region's coordinates in an unmodeled descriptor mailbox; the hook
// re-derives the expected stream from the seed alone and compares it
// word-by-word against what the run left in memory. Intact=false is
// therefore *witnessed* corruption — the oracle never infers it from the
// attack's control flow.
type CanaryReport struct {
	// Planted reports whether the body got far enough to plant the canary
	// and publish its descriptor. A run that trapped before planting has
	// Planted=false and proves nothing about memory integrity.
	Planted bool `json:"planted"`
	// Intact is true when every canary word still matches the seeded
	// stream.
	Intact bool `json:"intact"`
	// Base and Words locate the canary region (Words 8-byte words at Base).
	Base  uint64 `json:"base"`
	Words uint64 `json:"words"`
	// Seed derives the expected pattern.
	Seed uint64 `json:"seed"`
	// WantSum and GotSum fold the expected and observed streams; they
	// differ exactly when Intact is false.
	WantSum uint64 `json:"wantSum"`
	GotSum  uint64 `json:"gotSum"`
	// BadWords counts mismatching words; FirstBad is the byte offset of
	// the first mismatch relative to Base.
	BadWords uint64 `json:"badWords,omitempty"`
	FirstBad uint64 `json:"firstBad,omitempty"`
}
