package workloads

import "cherisim/internal/core"

// nab models 544.nab_r / 644.nab_s: molecular modelling with the Nucleic
// Acid Builder. Its hot loop computes pairwise nonbonded forces over
// neighbour lists: for each atom, walk the neighbour list and evaluate a
// distance/Lennard-Jones kernel (~20 FLOPs per pair), inlined as in the
// real code. Half of each neighbour list stores direct references to atom
// records (pointer slots — capability loads under purecap, giving nab its
// ~24 % purecap capability load density) and half stores packed u32
// indices, matching NAB's mix of pointer- and index-based structures. The
// FP-heavy pair kernel keeps memory intensity low (MI 0.42) and purecap
// overhead small (~5 % in the paper).
func nab(atoms, neighbours, steps int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("mme_nonbond", 5120, 256)

		r := newRNG(0x0544)

		// Atom record: {pos x/y/z f64, force f64, charge f64}.
		atomL := m.Layout(core.FieldF64, core.FieldF64, core.FieldF64,
			core.FieldF64, core.FieldF64)
		atomBase := m.AllocArray(uint64(atoms), atomL.Size())
		atomAt := func(i int) core.Ptr { return atomL.Elem(atomBase, uint64(i)) }
		atomPtrs := make([]core.Ptr, atoms)
		for i := range atomPtrs {
			atomPtrs[i] = atomAt(i)
		}

		// Neighbour lists: half pointer slots, half u32 indices.
		slot := m.ABI.PointerSize()
		half := neighbours / 2
		ptrLists := make([]core.Ptr, atoms)
		idxLists := make([]core.Ptr, atoms)
		for i := range ptrLists {
			ptrLists[i] = m.Alloc(uint64(half) * slot)
			idxLists[i] = m.Alloc(uint64(neighbours-half) * 4)
			for k := 0; k < half; k++ {
				m.StorePtr(ptrLists[i]+core.Ptr(uint64(k)*slot), atomPtrs[r.intn(atoms)])
			}
			for k := 0; k < neighbours-half; k++ {
				m.Store(idxLists[i]+core.Ptr(k*4), uint64(r.intn(atoms)), 4)
			}
		}

		pair := func(other core.Ptr) {
			m.Load(atomL.Field(other, 0), 8)
			m.Load(atomL.Field(other, 1), 8)
			m.Load(atomL.Field(other, 2), 8)
			// Distance + LJ/Coulomb kernel (inlined in real nab).
			m.FP(22)
			m.ALU(2)
			cutoff := r.chance(1, 5)
			m.BranchAt(501, cutoff)
			if !cutoff {
				f := m.Load(atomL.Field(other, 3), 8)
				m.Store(atomL.Field(other, 3), f+1, 8)
			}
		}

		for s := 0; s < steps*scale; s++ {
			for i := 0; i < atoms; i++ {
				self := atomAt(i)
				m.Load(atomL.Field(self, 0), 8)
				m.Load(atomL.Field(self, 1), 8)
				m.Load(atomL.Field(self, 2), 8)
				for k := 0; k < half; k++ {
					other := m.LoadPtr(ptrLists[i] + core.Ptr(uint64(k)*slot))
					pair(other)
					m.BranchAt(503, k+1 < half)
				}
				for k := 0; k < neighbours-half; k++ {
					idx := m.Load(idxLists[i]+core.Ptr(k*4), 4)
					m.ALU(1) // index → address
					pair(atomAt(int(idx) % atoms))
					m.BranchAt(504, k+1 < neighbours-half)
				}
				// Integrate own force.
				m.FP(6)
				m.Store(atomL.Field(self, 3), uint64(i), 8)
				m.BranchAt(502, i+1 < atoms)
			}
		}
	}
}

func init() {
	register(&Workload{
		Name:       "544.nab_r",
		Desc:       "molecular modelling (Nucleic Acid Builder)",
		PaperMI:    0.420,
		PaperTimes: [3]float64{99.03, 103.39, 103.92},
		Selected:   true,
		Run:        nab(2000, 24, 3),
	})
	register(&Workload{
		Name:    "644.nab_s",
		Desc:    "molecular modelling (speed variant, pthreads port)",
		PaperMI: 0.424,
		Run:     nab(2400, 24, 3),
	})
}
