package workloads

import (
	"math"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
)

func TestRegistryComplete(t *testing.T) {
	if n := len(All()); n != 20 {
		t.Errorf("registry holds %d workloads, want the paper's 20", n)
	}
	if n := len(Selected()); n != 12 {
		t.Errorf("selected set = %d, want Table 3's 12", n)
	}
	if n := len(TopDownSet()); n != 6 {
		t.Errorf("top-down set = %d, want Table 4's 6", n)
	}
	for _, w := range Selected() {
		if w == nil {
			t.Fatal("selected workload missing from registry")
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("520.omnetpp_r")
	if err != nil || w.Name != "520.omnetpp_r" {
		t.Fatalf("ByName = %v, %v", w, err)
	}
	if _, err := ByName("400.perlbench"); err == nil {
		t.Error("unknown workload resolved")
	}
}

// run executes one workload/ABI at test scale, failing the test on faults.
func run(t *testing.T, name string, a abi.ABI) *metrics.Metrics {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Execute(w, a, 1)
	if err != nil {
		t.Fatalf("%s/%s: %v", name, a, err)
	}
	mm := metrics.Compute(&m.C)
	return &mm
}

func TestAllWorkloadsRunUnderAllABIs(t *testing.T) {
	// Smoke coverage of the full 20x3 matrix, checking counter sanity.
	for _, w := range All() {
		for _, a := range abi.All() {
			m, err := Execute(w, a, 1)
			if err != nil {
				t.Errorf("%s/%s faulted: %v", w.Name, a, err)
				continue
			}
			if m.C.Get(pmu.CPU_CYCLES) == 0 || m.C.Get(pmu.INST_RETIRED) == 0 {
				t.Errorf("%s/%s: empty counters", w.Name, a)
			}
			if fe, cyc := m.C.Get(pmu.STALL_FRONTEND)+m.C.Get(pmu.STALL_BACKEND), m.C.Get(pmu.CPU_CYCLES); fe > cyc {
				t.Errorf("%s/%s: stalls %d exceed cycles %d", w.Name, a, fe, cyc)
			}
			if a == abi.Hybrid && m.C.Get(pmu.CAP_MEM_ACCESS_RD) != 0 {
				t.Errorf("%s/hybrid produced capability loads", w.Name)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"sqlite", "541.leela_r"} {
		w, _ := ByName(name)
		a, err := Execute(w, abi.Purecap, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Execute(w, abi.Purecap, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.C != b.C {
			t.Errorf("%s: two runs differ", name)
		}
	}
}

func TestMemoryIntensityMatchesPaper(t *testing.T) {
	// Table 2 reproduction: hybrid-mode MI within a tolerance band of the
	// paper's measured values (kernels are synthetic proxies, so exact
	// equality is not expected; the compute/balanced/memory ordering is).
	for _, w := range All() {
		if w.PaperMI == 0 {
			continue // x264 is not tabulated in the paper
		}
		m, err := Execute(w, abi.Hybrid, 1)
		if err != nil {
			t.Fatal(err)
		}
		mi := metrics.Compute(&m.C).MemoryIntensity
		if diff := math.Abs(mi - w.PaperMI); diff > 0.30 {
			t.Errorf("%s: MI = %.3f, paper %.3f (|diff| %.2f > 0.30)", w.Name, mi, w.PaperMI, diff)
		}
	}
}

// overheads returns purecap/hybrid and benchmark/hybrid cycle ratios.
func overheads(t *testing.T, name string) (bench, pure float64) {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var cyc [3]float64
	for i, a := range abi.All() {
		m, err := Execute(w, a, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", name, a, err)
		}
		cyc[i] = float64(m.Cycles())
	}
	return cyc[1] / cyc[0], cyc[2] / cyc[0]
}

func TestPointerIntensiveWorkloadsSlowUnderPurecap(t *testing.T) {
	// The paper's headline: memory/pointer-intensive workloads suffer the
	// largest purecap overheads (omnetpp +87 %, xalancbmk +103 %, sqlite
	// +61 %, quickjs +166 %).
	cases := map[string]float64{ // minimum expected purecap/hybrid
		"520.omnetpp_r":   1.5,
		"523.xalancbmk_r": 1.5,
		"sqlite":          1.3,
		"quickjs":         1.8,
	}
	for name, min := range cases {
		_, pure := overheads(t, name)
		if pure < min {
			t.Errorf("%s: purecap overhead %.3f < %.3f", name, pure, min)
		}
	}
}

func TestStreamingWorkloadsNearParity(t *testing.T) {
	// lbm and LLaMA.cpp see negligible overhead (paper: -8 % to +1.3 %).
	for _, name := range []string{"519.lbm_r", "llama-inference", "llama-matmul"} {
		_, pure := overheads(t, name)
		if pure > 1.06 || pure < 0.90 {
			t.Errorf("%s: purecap ratio %.3f, want ~1.0", name, pure)
		}
	}
}

func TestABIOrdering(t *testing.T) {
	// hybrid <= benchmark <= purecap for every workload with real
	// overhead: the benchmark ABI only removes costs relative to purecap.
	for _, name := range []string{"520.omnetpp_r", "523.xalancbmk_r", "541.leela_r", "sqlite", "quickjs", "531.deepsjeng_r"} {
		bench, pure := overheads(t, name)
		if bench > pure+0.005 {
			t.Errorf("%s: benchmark (%.3f) slower than purecap (%.3f)", name, bench, pure)
		}
		if bench < 0.99 {
			t.Errorf("%s: benchmark ABI faster than hybrid (%.3f)", name, bench)
		}
	}
}

func TestBenchmarkABIRecoversPCCOverhead(t *testing.T) {
	// §4.1: 60.3 points of xalancbmk's 103 % purecap overhead vanish under
	// the benchmark ABI. Require the recovery to be a substantial
	// fraction of the total overhead.
	bench, pure := overheads(t, "523.xalancbmk_r")
	recovered := (pure - bench) / (pure - 1)
	if recovered < 0.35 {
		t.Errorf("xalancbmk: benchmark ABI recovered only %.0f%% of overhead (bench %.3f pure %.3f)", recovered*100, bench, pure)
	}
}

func TestCapabilityDensityShape(t *testing.T) {
	// Table 3 shape: capability load density is near zero under hybrid and
	// jumps to tens of percent under purecap for pointer-rich workloads,
	// staying near zero for llama/lbm.
	high := []string{"520.omnetpp_r", "523.xalancbmk_r", "sqlite", "quickjs"}
	for _, name := range high {
		w, _ := ByName(name)
		m, err := Execute(w, abi.Purecap, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := metrics.Compute(&m.C).CapLoadDensity
		if d < 0.30 {
			t.Errorf("%s: purecap capability load density %.2f, want > 0.30", name, d)
		}
	}
	for _, name := range []string{"519.lbm_r", "llama-matmul"} {
		w, _ := ByName(name)
		m, err := Execute(w, abi.Purecap, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := metrics.Compute(&m.C).CapLoadDensity
		if d > 0.05 {
			t.Errorf("%s: purecap capability load density %.3f, want ~0", name, d)
		}
	}
}

func TestDPShareGrowsUnderPurecap(t *testing.T) {
	// Figure 5: the DP_SPEC share of the speculative mix grows under
	// purecap (paper: +5.21 to +29.31 percentage points) while LD/ST
	// shares stay comparatively stable.
	for _, name := range []string{"520.omnetpp_r", "sqlite", "quickjs", "541.leela_r"} {
		w, _ := ByName(name)
		share := func(a abi.ABI) (dp, ld float64) {
			m, err := Execute(w, a, 1)
			if err != nil {
				t.Fatal(err)
			}
			tot := float64(m.C.Sum(pmu.SpecEvents...))
			return float64(m.C.Get(pmu.DP_SPEC)) / tot, float64(m.C.Get(pmu.LD_SPEC)) / tot
		}
		dpH, ldH := share(abi.Hybrid)
		dpP, ldP := share(abi.Purecap)
		growth := (dpP - dpH) * 100
		if growth < 3 || growth > 35 {
			t.Errorf("%s: DP share growth %.1f points, paper range ~5-30", name, growth)
		}
		if math.Abs(ldP-ldH)*100 > 12 {
			t.Errorf("%s: LD share moved %.1f points, want stable", name, (ldP-ldH)*100)
		}
	}
}

func TestBranchMRStableAcrossABIs(t *testing.T) {
	// §4.5: branch misprediction rates change little across ABIs.
	for _, name := range []string{"531.deepsjeng_r", "541.leela_r", "557.xz_r"} {
		w, _ := ByName(name)
		var mr [3]float64
		for i, a := range abi.All() {
			m, err := Execute(w, a, 1)
			if err != nil {
				t.Fatal(err)
			}
			mr[i] = metrics.Compute(&m.C).BranchMR
		}
		if mr[0] == 0 {
			t.Fatalf("%s: no branches", name)
		}
		if rel := math.Abs(mr[2]-mr[0]) / mr[0]; rel > 0.5 {
			t.Errorf("%s: branch MR moved %.0f%% hybrid→purecap", name, rel*100)
		}
	}
}

func TestPurecapFootprintGrows(t *testing.T) {
	// §4.4: QuickJS's memory footprint grew ~36 % under purecap.
	w, _ := ByName("quickjs")
	hy, err := Execute(w, abi.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := Execute(w, abi.Purecap, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := float64(pc.Heap.Stats().BrkBytes) / float64(hy.Heap.Stats().BrkBytes)
	if g < 1.2 || g > 2.2 {
		t.Errorf("quickjs footprint growth = %.2fx, paper ~1.36x", g)
	}
}

func TestScaleMultipliesWork(t *testing.T) {
	w, _ := ByName("519.lbm_r")
	m1, err := Execute(w, abi.Hybrid, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Execute(w, abi.Hybrid, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(m2.C.Get(pmu.INST_RETIRED)) / float64(m1.C.Get(pmu.INST_RETIRED))
	if r < 1.5 || r > 2.5 {
		t.Errorf("scale 2 ran %.2fx the instructions", r)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	c := newRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSpeedVariantsDifferFromRateVariants(t *testing.T) {
	// The _s variants use different inputs (scale/parameters) than their
	// _r siblings, as SPEC speed vs rate do; their measurements must
	// differ while their character (MI class) matches.
	pairs := [][2]string{
		{"520.omnetpp_r", "620.omnetpp_s"},
		{"523.xalancbmk_r", "623.xalancbmk_s"},
		{"531.deepsjeng_r", "631.deepsjeng_s"},
		{"541.leela_r", "641.leela_s"},
		{"544.nab_r", "644.nab_s"},
		{"557.xz_r", "657.xz_s"},
		{"525.x264_r", "625.x264_s"},
	}
	for _, pair := range pairs {
		r, _ := ByName(pair[0])
		s, _ := ByName(pair[1])
		mr, err := Execute(r, abi.Hybrid, 1)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := Execute(s, abi.Hybrid, 1)
		if err != nil {
			t.Fatal(err)
		}
		if mr.C == ms.C {
			t.Errorf("%s and %s produced identical counters", pair[0], pair[1])
		}
		miR := metrics.Compute(&mr.C).MemoryIntensity
		miS := metrics.Compute(&ms.C).MemoryIntensity
		if metrics.ClassifyMI(miR) != metrics.ClassifyMI(miS) {
			t.Errorf("%s (%.3f) and %s (%.3f) classify differently", pair[0], miR, pair[1], miS)
		}
	}
}
