package workloads

import (
	"errors"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// Execute runs workload w on a fresh default-configured machine under ABI
// a at the given scale and returns the machine with its counters
// finalized. Capability faults surface as the returned error.
func Execute(w *Workload, a abi.ABI, scale int) (*core.Machine, error) {
	return ExecuteConfig(w, core.DefaultConfig(a), scale)
}

// ExecuteConfig is Execute with an explicit machine configuration, used by
// the ablation experiments (capability-aware predictor, resized caches).
func ExecuteConfig(w *Workload, cfg core.Config, scale int) (*core.Machine, error) {
	return ExecuteHooked(w, cfg, scale, nil)
}

// ExecuteHooked is ExecuteConfig with a setup hook invoked on the fresh
// machine before the body runs. The supervisor uses it to install quantum
// callbacks (watchdog deadlines, fault injection) without the workload
// kernels knowing. A non-Fault panic escaping the body is contained by
// Machine.Run; the workload name is stamped onto it here.
func ExecuteHooked(w *Workload, cfg core.Config, scale int, setup func(*core.Machine)) (*core.Machine, error) {
	if scale < 1 {
		scale = 1
	}
	m := core.NewMachine(cfg)
	if setup != nil {
		setup(m)
	}
	err := m.Run(func(m *core.Machine) { w.Run(m, scale) })
	var pe *core.PanicError
	if errors.As(err, &pe) && pe.Workload == "" {
		pe.Workload = w.Name
	}
	return m, err
}
