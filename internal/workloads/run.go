package workloads

import (
	"cherisim/internal/abi"
	"cherisim/internal/core"
)

// Execute runs workload w on a fresh default-configured machine under ABI
// a at the given scale and returns the machine with its counters
// finalized. Capability faults surface as the returned error.
func Execute(w *Workload, a abi.ABI, scale int) (*core.Machine, error) {
	return ExecuteConfig(w, core.DefaultConfig(a), scale)
}

// ExecuteConfig is Execute with an explicit machine configuration, used by
// the ablation experiments (capability-aware predictor, resized caches).
func ExecuteConfig(w *Workload, cfg core.Config, scale int) (*core.Machine, error) {
	if scale < 1 {
		scale = 1
	}
	m := core.NewMachine(cfg)
	err := m.Run(func(m *core.Machine) { w.Run(m, scale) })
	return m, err
}
