package workloads

import "cherisim/internal/core"

// sqlite models the SQLite speedtest1 workload: an embedded SQL engine
// executing a mixed query load against B-tree storage. Two structural
// features dominate its profile and both are reproduced here. First, the
// bytecode VM (VDBE) dispatches indirectly across many opcode handlers, so
// the instruction working set is large — SQLite has the paper's highest
// L1I miss rate (4.3 %). Second, every row operation descends a B-tree of
// pointer-linked pages (capability load density ~50 % under purecap), which
// with the doubled pointer size drives its 61 % purecap overhead.
func sqlite(rows, queries int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		// The VDBE opcode handlers: a wide code footprint, each handler
		// dispatched through an indirect branch.
		handlers := make([]*core.Fn, 24)
		for i := range handlers {
			handlers[i] = m.Func("vdbe_op", 1024+uint64(i%7)*256, 96)
		}
		fnBtree := m.Func("sqlite3BtreeMovetoUnpacked", 2560, 160)
		fnRecord := m.Func("sqlite3VdbeRecordUnpack", 1536, 128)

		r := newRNG(0x3007)

		const fanout = 16
		// B-tree page: fanout child pointers + fanout keys + header.
		fields := make([]core.FieldKind, 0, 2*fanout+2)
		for i := 0; i < fanout; i++ {
			fields = append(fields, core.FieldPtr)
		}
		for i := 0; i < fanout; i++ {
			fields = append(fields, core.FieldU64)
		}
		fields = append(fields, core.FieldU32, core.FieldU32)
		pageL := m.Layout(fields...)
		keyOff := fanout // index of first key field

		// Row payload records.
		rowL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU64, core.FieldU32)

		// Build a 3-level B-tree: root -> inner -> leaves.
		newPage := func() core.Ptr {
			p := m.AllocRecord(pageL)
			for k := 0; k < fanout; k++ {
				m.Store(pageL.Field(p, keyOff+k), uint64(k)*uint64(rows)/fanout, 8)
			}
			return p
		}
		root := newPage()
		leaves := make([]core.Ptr, 0, fanout*fanout)
		for i := 0; i < fanout; i++ {
			inner := newPage()
			m.StorePtr(pageL.Field(root, i), inner)
			for j := 0; j < fanout; j++ {
				leaf := newPage()
				m.StorePtr(pageL.Field(inner, j), leaf)
				leaves = append(leaves, leaf)
			}
		}
		// Attach row records to leaves (reusing the pointer slots of a
		// parallel array per leaf).
		rowPtrs := make([]core.Ptr, rows)
		for i := range rowPtrs {
			rowPtrs[i] = m.AllocRecord(rowL)
			m.Store(rowL.Field(rowPtrs[i], 2), uint64(i), 8)
			over := r.chance(1, 10)
			if over { // overflow page for big TEXT values
				m.StorePtr(rowL.Field(rowPtrs[i], 0), m.Alloc(256))
			}
		}

		descend := func(key uint64) core.Ptr {
			m.Call(fnBtree, false)
			defer m.Return()
			page := root
			for lvl := 0; lvl < 2; lvl++ {
				// Key scan within the page: mostly-taken compare loop with
				// one unpredictable exit, as in sqlite's cell binary search
				// unrolled over small pages.
				want := key % uint64(rows)
				lo := 0
				for i := 0; i < fanout-1; i++ {
					k := m.LoadDep(pageL.Field(page, keyOff+i), 8)
					m.ALU(2)
					if k <= want {
						m.BranchAt(1101, true)
						lo = i
					} else {
						m.BranchAt(1101, false)
						break
					}
				}
				page = m.LoadPtr(pageL.Field(page, lo))
			}
			return page
		}

		for q := 0; q < queries*scale; q++ {
			// One "query" = a short VDBE program of 6-16 ops.
			nOps := 6 + r.intn(10)
			for op := 0; op < nOps; op++ {
				h := handlers[r.intn(len(handlers))]
				m.CallVirtual(h) // indirect opcode dispatch
				switch {
				case r.chance(2, 5): // cursor seek + row fetch
					leaf := descend(r.next())
					m.Load(pageL.Field(leaf, keyOff), 8)
					row := rowPtrs[r.intn(rows)]
					m.Call(fnRecord, false)
					m.LoadDep(rowL.Field(row, 2), 8)
					m.Load(rowL.Field(row, 3), 8)
					if ov := m.LoadPtr(rowL.Field(row, 0)); ov != 0 {
						m.BranchAt(1103, true)
						m.Load(ov, 8)
					} else {
						m.BranchAt(1104, false)
					}
					m.ALU(3) // serial-type decoding
					m.Return()
				case r.chance(1, 3): // update
					row := rowPtrs[r.intn(rows)]
					v := m.LoadDep(rowL.Field(row, 3), 8)
					m.ALU(3)
					m.Store(rowL.Field(row, 3), v+1, 8)
					leaf := leaves[r.intn(len(leaves))]
					m.Store(pageL.Field(leaf, keyOff+r.intn(fanout)), v, 8)
				default: // register moves and comparisons on the VM stack
					m.Load(pageL.Field(root, keyOff), 8)
					m.Load(pageL.Field(root, keyOff+1), 8)
					m.ALU(4)
					m.BranchAt(1105, r.chance(1, 2))
				}
				m.Return()
			}
		}
	}
}

func init() {
	register(&Workload{
		Name:       "sqlite",
		Desc:       "SQLite speedtest1 mixed SQL query workload",
		PaperMI:    0.816,
		PaperTimes: [3]float64{18.18, 28.24, 29.30},
		Selected:   true,
		TopDown:    true,
		Run:        sqlite(30000, 900),
	})
}
