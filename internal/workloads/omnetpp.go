package workloads

import "cherisim/internal/core"

// omnetpp models 520.omnetpp_r / 620.omnetpp_s: discrete-event simulation
// of a large Ethernet network. The performance profile of the real
// benchmark is dominated by its future-event set (a binary heap of message
// pointers), pointer-rich module/gate objects scattered over a multi-
// megabyte heap, and constant allocation/deallocation of small message
// objects — exactly the structure built here. It is the paper's canonical
// memory-centric workload (MI 1.164) and among the biggest purecap losers
// (87 % overhead) because nearly every hot-path access is a pointer.
func omnetpp(modules, events int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		fnSchedule := m.Func("cSimpleModule::scheduleAt", 768, 96)
		fnHandle := m.Func("cSimpleModule::handleMessage", 1536, 128)
		fnHeap := m.Func("cEventHeap::shiftup", 640, 64)

		r := newRNG(0x0707)

		// A module: {gateOut *Module, gateIn *Module, queue *Msg,
		// owner *Module, id u64, state u64}.
		modL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU64)
		// A message: {dest *Module, payload *buf, arrival u64, kind u32}.
		msgL := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU32)

		mods := make([]core.Ptr, modules)
		for i := range mods {
			mods[i] = m.AllocRecord(modL)
			m.Store(modL.Field(mods[i], 4), uint64(i), 8)
			m.StorePtr(modL.Field(mods[i], 3), mods[i])
		}
		// Wire a pseudo-random topology.
		for i := range mods {
			m.StorePtr(modL.Field(mods[i], 0), mods[r.intn(modules)])
			m.StorePtr(modL.Field(mods[i], 1), mods[r.intn(modules)])
		}

		// Future-event set: a binary heap of message pointers stored in
		// simulated memory (each slot is a pointer slot).
		heapCap := 4096
		slot := m.ABI.PointerSize()
		fes := m.Alloc(uint64(heapCap) * slot)
		heapLen := 0

		newMsg := func(now uint64) core.Ptr {
			msg := m.AllocRecord(msgL)
			payload := m.Alloc(64 + uint64(r.intn(192)))
			m.StorePtr(msgL.Field(msg, 0), mods[r.intn(modules)])
			m.StorePtr(msgL.Field(msg, 1), payload)
			m.Store(msgL.Field(msg, 2), now+uint64(1+r.intn(1000)), 8)
			m.Store(msgL.Field(msg, 3), uint64(r.intn(8)), 4)
			return msg
		}

		at := func(i int) core.Ptr { return fes + core.Ptr(uint64(i)*slot) }

		push := func(msg core.Ptr) {
			if heapLen == heapCap {
				return
			}
			m.Call(fnHeap, false)
			m.StorePtr(at(heapLen), msg)
			i := heapLen
			heapLen++
			key := m.LoadDep(msgL.Field(msg, 2), 8)
			for i > 0 {
				parent := (i - 1) / 2
				p := m.LoadPtr(at(parent))
				pk := m.LoadDep(msgL.Field(p, 2), 8)
				m.ALU(2)
				if pk <= key {
					m.BranchAt(601, false)
					break
				}
				m.BranchAt(602, true)
				m.StorePtr(at(i), p)
				i = parent
			}
			m.StorePtr(at(i), msg)
			m.Return()
		}

		pop := func() core.Ptr {
			m.Call(fnHeap, false)
			top := m.LoadPtr(at(0))
			heapLen--
			last := m.LoadPtr(at(heapLen))
			lk := m.LoadDep(msgL.Field(last, 2), 8)
			i := 0
			for {
				l, rr := 2*i+1, 2*i+2
				if l >= heapLen {
					m.BranchAt(603, false)
					break
				}
				m.BranchAt(604, true)
				c := l
				cp := m.LoadPtr(at(l))
				ck := m.LoadDep(msgL.Field(cp, 2), 8)
				if rr < heapLen {
					rp := m.LoadPtr(at(rr))
					rk := m.LoadDep(msgL.Field(rp, 2), 8)
					m.ALU(1)
					if rk < ck {
						m.BranchAt(605, true)
						c, cp, ck = rr, rp, rk
					} else {
						m.BranchAt(606, false)
					}
				}
				m.ALU(2)
				if ck >= lk {
					m.BranchAt(607, false)
					break
				}
				m.BranchAt(608, true)
				m.StorePtr(at(i), cp)
				i = c
			}
			m.StorePtr(at(i), last)
			m.Return()
			return top
		}

		// Seed the FES.
		now := uint64(0)
		for i := 0; i < 512; i++ {
			push(newMsg(now))
		}

		total := events * scale
		for e := 0; e < total && heapLen > 1; e++ {
			msg := pop()
			now = m.LoadDep(msgL.Field(msg, 2), 8)
			dest := m.LoadPtr(msgL.Field(msg, 0))

			// handleMessage is virtual in OMNeT++: dispatched through the
			// module's vtable (a capability jump under purecap).
			m.CallVirtual(fnHandle)
			// The module parses its packet: a short burst of cache-hot
			// payload field accesses.
			payload := m.LoadPtr(msgL.Field(msg, 1))
			for f := 0; f < 6; f++ {
				m.Load(payload+core.Ptr(f*8), 8)
			}
			m.Store(payload, now, 8)
			m.Store(payload+8, uint64(e), 8)
			st := m.LoadDep(modL.Field(dest, 5), 8)
			m.ALU(3)
			m.Store(modL.Field(dest, 5), st+1, 8)

			// Forward through a gate and schedule follow-up traffic.
			gate := m.LoadPtr(modL.Field(dest, 0))
			m.Load(modL.Field(gate, 4), 8)
			m.Load(modL.Field(gate, 5), 8)
			hop := m.LoadPtr(modL.Field(gate, 1))
			m.Load(modL.Field(hop, 5), 8)
			m.Call(fnSchedule, false)
			nm := newMsg(now)
			push(nm)
			if r.chance(1, 3) {
				m.BranchAt(609, true)
				push(newMsg(now))
			} else {
				m.BranchAt(610, false)
			}
			m.Return()
			m.Return()

			// Tear the delivered message down.
			m.Free(m.LoadPtr(msgL.Field(msg, 1)))
			m.Free(msg)
		}
	}
}

func init() {
	register(&Workload{
		Name:       "520.omnetpp_r",
		Desc:       "discrete event simulation of a large 10 GbE network",
		PaperMI:    1.164,
		PaperTimes: [3]float64{81.73, 142.30, 153.21},
		Selected:   true,
		TopDown:    true,
		Run:        omnetpp(30000, 4000),
	})
	register(&Workload{
		Name:    "620.omnetpp_s",
		Desc:    "discrete event simulation (speed variant)",
		PaperMI: 1.165,
		Run:     omnetpp(33000, 4000),
	})
}
