package workloads

import "cherisim/internal/core"

// llamaInference models LLaMA.cpp end-to-end token generation with a
// q8-style quantized model: per token and per layer, a quantized
// matrix-vector product streams the layer's weight tensor (SIMD dot
// products over int8 blocks with per-block scales) and attention reads the
// KV cache. The weight set is sized well past the LLC so, as on the real
// 7B model, every token re-streams weights from memory: the workload is
// bandwidth-bound with almost no pointer traffic, which is why the paper
// measures only 1.29 % purecap overhead and a *reduction* in
// memory-boundness (sequential reads prefetch well; the extra capability
// DP work shifts it core-bound).
func llamaInference(dim, layers, tokens int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("llama_decode", 8192, 512)
		fnGemv := m.Func("ggml_vec_dot_q8_0", 2048, 128)
		fnAttn := m.Func("ggml_compute_attn", 3072, 192)

		// Model struct: per-layer tensor pointers (the only pointer
		// traffic on the hot path).
		tensorFields := make([]core.FieldKind, layers)
		for i := range tensorFields {
			tensorFields[i] = core.FieldPtr
		}
		modelL := m.Layout(tensorFields...)
		model := m.AllocRecord(modelL)
		for l := 0; l < layers; l++ {
			w := m.Alloc(uint64(dim*dim) + uint64(dim/32)*4)
			m.StorePtr(modelL.Field(model, l), w)
		}
		// Activations and KV cache.
		hidden := m.Alloc(uint64(dim) * 4)
		kvCap := layers * tokens * scale * 64
		kv := m.Alloc(uint64(kvCap))

		for t := 0; t < tokens*scale; t++ {
			for l := 0; l < layers; l++ {
				// GEMV: stream the layer's full weight matrix in 32-byte
				// q8 blocks. Independent loads prefetch well.
				m.Call(fnGemv, false)
				w := m.LoadPtr(modelL.Field(model, l))
				for row := 0; row < dim; row++ {
					base := w + core.Ptr(row*dim)
					for col := 0; col < dim; col += 32 {
						m.Load(base+core.Ptr(col), 8) // q8 block
						m.SIMD(3)                     // int8 dot + scale
						m.BranchAt(404, col+32 < dim)
					}
					m.Load(hidden+core.Ptr((row%dim)*4), 4)
					m.SIMD(1)
					m.CapCodegen(5) // per-row capability re-derivation
					m.Store(hidden+core.Ptr((row%dim)*4), uint64(row), 4)
					m.BranchAt(405, row+1 < dim)
				}
				m.Return()

				// Attention: read this layer's KV history.
				m.Call(fnAttn, false)
				for past := 0; past <= t; past++ {
					off := ((l*tokens*scale + past) * 64) % (kvCap - 8)
					m.Load(kv+core.Ptr(off), 8)
					m.SIMD(2)
					m.FP(1) // softmax accumulation
					m.BranchAt(406, past < t)
				}
				m.Store(kv+core.Ptr(((l*tokens*scale+t)*64)%(kvCap-8)), uint64(t), 8)
				m.Return()
				m.BranchAt(401, l == layers-1)
			}
			// Sampling: tiny scalar pass.
			m.FP(8)
			m.ALU(6)
			m.BranchAt(402, t%2 == 0)
		}
	}
}

// llamaMatmul models the standalone LLaMA.cpp matmul benchmark: a blocked
// FP32 GEMM with the paper's (11008,4096)x(4096,128) shape scaled so the A
// matrix streams past the cache hierarchy. Pure streaming SIMD with no
// pointers; the paper measures a small purecap speed-up (~1.3 %).
func llamaMatmul(mRows, kDim, nCols, reps int) func(*core.Machine, int) {
	return func(m *core.Machine, scale int) {
		m.Func("ggml_compute_forward_mul_mat", 6144, 384)

		a := m.Alloc(uint64(mRows*kDim) * 4)
		b := m.Alloc(uint64(kDim*nCols) * 4)
		c := m.Alloc(uint64(mRows*nCols) * 4)

		for rep := 0; rep < reps*scale; rep++ {
			for i := 0; i < mRows; i += 4 { // row block
				for j := 0; j < nCols; j += 8 { // column block
					// Inner product over K in SIMD chunks of 8 floats.
					for k := 0; k < kDim; k += 8 {
						m.Load(a+core.Ptr((i*kDim+k)*4), 8)
						m.Load(b+core.Ptr((k*nCols+j)*4), 8)
						m.SIMD(4) // fused multiply-add across the block
						m.ALU(1)
						m.BranchAt(407, k+8 < kDim)
					}
					m.Store(c+core.Ptr((i*nCols+j)*4), uint64(i+j), 8)
					m.BranchAt(403, j+8 < nCols)
				}
				m.BranchAt(408, i+4 < mRows)
			}
		}
	}
}

func init() {
	register(&Workload{
		Name:       "llama-inference",
		Desc:       "LLaMA.cpp 7B q8_0 token generation (prompt 512, gen 128)",
		PaperMI:    0.309,
		PaperTimes: [3]float64{477.93, 483.79, 484.11},
		Selected:   true,
		TopDown:    true,
		Run:        llamaInference(1024, 3, 8),
	})
	register(&Workload{
		Name:       "llama-matmul",
		Desc:       "LLaMA.cpp FP32 matmul (11008x4096 by 4096x128, scaled)",
		PaperMI:    0.432,
		PaperTimes: [3]float64{126.31, 124.57, 124.61},
		Selected:   true,
		Run:        llamaMatmul(2048, 512, 16, 2),
	})
}
