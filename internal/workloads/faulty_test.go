package workloads

import (
	"errors"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
)

func TestFaultyRegistrySeparate(t *testing.T) {
	if len(Faulty()) != 2 {
		t.Fatalf("faulty set = %d, want 2 (502.gcc_r, 505.mcf_r)", len(Faulty()))
	}
	for _, w := range Faulty() {
		for _, runnable := range All() {
			if runnable.Name == w.Name {
				t.Errorf("%s leaked into the runnable set", w.Name)
			}
		}
		if _, err := ByName(w.Name); err != nil {
			t.Errorf("%s not resolvable by name: %v", w.Name, err)
		}
	}
}

// TestAppendixTable5CrashBehaviour reproduces the paper's Appendix: gcc and
// mcf compile under every ABI, run cleanly under hybrid, and trigger an
// in-address-space security exception under purecap and benchmark.
func TestAppendixTable5CrashBehaviour(t *testing.T) {
	for _, w := range Faulty() {
		m, err := Execute(w, abi.Hybrid, 1)
		if err != nil {
			t.Errorf("%s/hybrid crashed: %v (paper: executes without errors)", w.Name, err)
		}
		if m.Cycles() == 0 {
			t.Errorf("%s/hybrid did no work", w.Name)
		}
		for _, a := range []abi.ABI{abi.Benchmark, abi.Purecap} {
			m, err := Execute(w, a, 1)
			if err == nil {
				t.Errorf("%s/%s did not fault (paper: security exception)", w.Name, a)
				continue
			}
			isCapFault := errors.Is(err, cap.ErrTagViolation) || errors.Is(err, cap.ErrBoundsViolation)
			if !isCapFault {
				t.Errorf("%s/%s: fault class %v, want a capability violation", w.Name, a, err)
			}
			// The crash happens after real work, as on hardware (the
			// benchmarks run for a while before hitting the bad idiom).
			if m.Cycles() == 0 {
				t.Errorf("%s/%s faulted before doing any work", w.Name, a)
			}
		}
	}
}

func TestGccFaultClassIsTagViolation(t *testing.T) {
	w, _ := ByName("502.gcc_r")
	_, err := Execute(w, abi.Purecap, 1)
	if !errors.Is(err, cap.ErrTagViolation) {
		t.Errorf("gcc fault = %v, want tag violation (pointer laundered through integer)", err)
	}
}

func TestMcfFaultClassIsBoundsViolation(t *testing.T) {
	w, _ := ByName("505.mcf_r")
	_, err := Execute(w, abi.Purecap, 1)
	if !errors.Is(err, cap.ErrBoundsViolation) {
		t.Errorf("mcf fault = %v, want bounds violation (cross-allocation arithmetic)", err)
	}
}
