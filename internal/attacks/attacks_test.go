package attacks

import (
	"errors"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

// execute runs one attack under one ABI the way the security experiment
// does: default config, the attack's Configure applied, canary witnessed
// post-run.
func execute(t *testing.T, a *Attack, ab abi.ABI) (*core.Machine, error, *workloads.CanaryReport) {
	t.Helper()
	cfg := core.DefaultConfig(ab)
	if a.Configure != nil {
		a.Configure(&cfg)
	}
	m, err := workloads.ExecuteHooked(a.Workload, cfg, 1, nil)
	if m == nil {
		t.Fatalf("%s/%s: no machine", a.Name, ab)
	}
	w := a.Workload.Canary(m)
	return m, err, &w
}

// TestCorpusMatchesSpec is the oracle's ground truth: every attack, under
// every ABI, classifies to exactly its expected outcome, with trap kinds
// and µop windows checked.
func TestCorpusMatchesSpec(t *testing.T) {
	for _, a := range All() {
		for _, ab := range abi.All() {
			t.Run(a.Name+"/"+ab.String(), func(t *testing.T) {
				m, err, w := execute(t, a, ab)
				got := Classify(err, w)
				if ok, why := a.Check(ab, got, m.Uops()); !ok {
					t.Fatalf("verdict diverged: %s (err=%v witness=%+v)", why, err, w)
				}
			})
		}
	}
}

// TestCorruptionIsWitnessedNotInferred: every SurviveCorrupted expectation
// is backed by a planted canary with a concrete mismatch (BadWords > 0 and
// differing checksums), and every surviving clean run has a planted,
// matching canary. The verdict never rests on control flow alone.
func TestCorruptionIsWitnessedNotInferred(t *testing.T) {
	for _, a := range All() {
		for _, ab := range abi.All() {
			want := a.Expect(ab).Outcome.Kind
			if want != SurviveClean && want != SurviveCorrupted {
				continue
			}
			_, err, w := execute(t, a, ab)
			if err != nil {
				t.Fatalf("%s/%s: unexpected error %v", a.Name, ab, err)
			}
			if !w.Planted {
				t.Fatalf("%s/%s: no canary planted", a.Name, ab)
			}
			if want == SurviveCorrupted {
				if w.Intact || w.BadWords == 0 || w.WantSum == w.GotSum {
					t.Fatalf("%s/%s: corruption not witnessed: %+v", a.Name, ab, w)
				}
			} else if !w.Intact || w.BadWords != 0 || w.WantSum != w.GotSum {
				t.Fatalf("%s/%s: clean survival has witness mismatch: %+v", a.Name, ab, w)
			}
		}
	}
}

// TestTrapsLeaveCanaryIntact: attacks that plant before violating must
// show an intact canary when the capability ABIs trap — the trap prevented
// the corruption the hybrid run suffers.
func TestTrapsLeaveCanaryIntact(t *testing.T) {
	for _, a := range All() {
		for _, ab := range abi.All() {
			if a.Expect(ab).Outcome.Kind != Trap {
				continue
			}
			_, err, w := execute(t, a, ab)
			var f *core.Fault
			if !errors.As(err, &f) {
				t.Fatalf("%s/%s: want fault, got %v", a.Name, ab, err)
			}
			if w.Planted && !w.Intact {
				t.Fatalf("%s/%s: trapped run still corrupted the canary: %+v", a.Name, ab, w)
			}
		}
	}
}

func TestClassify(t *testing.T) {
	planted := &workloads.CanaryReport{Planted: true, Intact: true}
	corrupt := &workloads.CanaryReport{Planted: true, Intact: false, BadWords: 1}
	cases := []struct {
		name string
		err  error
		w    *workloads.CanaryReport
		want Outcome
	}{
		{"fault tag", &core.Fault{Kind: core.KindTag}, planted, Outcome{Kind: Trap, Fault: core.KindTag}},
		{"fault bounds no witness", &core.Fault{Kind: core.KindBounds}, nil, Outcome{Kind: Trap, Fault: core.KindBounds}},
		{"other error", errors.New("boom"), planted, Outcome{Kind: Aborted, Detail: "boom"}},
		{"clean", nil, planted, Outcome{Kind: SurviveClean}},
		{"corrupted", nil, corrupt, Outcome{Kind: SurviveCorrupted}},
		{"nil witness", nil, nil, Outcome{Kind: Aborted, Detail: "no canary witness"}},
		{"unplanted witness", nil, &workloads.CanaryReport{}, Outcome{Kind: Aborted, Detail: "no canary witness"}},
	}
	for _, tc := range cases {
		if got := Classify(tc.err, tc.w); got != tc.want {
			t.Errorf("%s: Classify = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[string]Outcome{
		"clean":        {Kind: SurviveClean},
		"corrupted":    {Kind: SurviveCorrupted},
		"trap(bounds)": {Kind: Trap, Fault: core.KindBounds},
		"aborted(x)":   {Kind: Aborted, Detail: "x"},
		"aborted":      {Kind: Aborted},
	}
	for want, o := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome%+v.String() = %q, want %q", o, got, want)
		}
	}
}

func TestCheckRejectsWrongFaultKind(t *testing.T) {
	a, err := ByName("oob-write")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Check(abi.Purecap, Outcome{Kind: Trap, Fault: core.KindTag}, 1<<20); ok {
		t.Fatal("wrong fault kind accepted")
	}
	if ok, why := a.Check(abi.Purecap, Outcome{Kind: Trap, Fault: core.KindBounds}, 1); ok || !strings.Contains(why, "dressing window") {
		t.Fatalf("early trap accepted: ok=%v why=%q", ok, why)
	}
	if ok, _ := a.Check(abi.Hybrid, Outcome{Kind: SurviveClean}, 0); ok {
		t.Fatal("clean survival accepted where corruption is expected")
	}
}

func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(nil) = %d attacks, %v", len(all), err)
	}
	got, err := Select([]string{"uaf", "oob-read"})
	if err != nil {
		t.Fatal(err)
	}
	// Corpus order, independent of request order.
	if len(got) != 2 || got[0].Name != "oob-read" || got[1].Name != "uaf" {
		t.Fatalf("Select = %v", []string{got[0].Name, got[1].Name})
	}
	if _, err := Select([]string{"uaf", ""}); err == nil || !strings.Contains(err.Error(), "segment 2") {
		t.Fatalf("empty segment accepted: %v", err)
	}
	if _, err := Select([]string{"nonesuch"}); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

// TestCorpusRegistration: the attacks ride the workloads registry but stay
// hidden from the campaign grid, and each carries a Canary hook and the
// Live marker that keeps it off the replay fast path.
func TestCorpusRegistration(t *testing.T) {
	if n := len(All()); n != 10 {
		t.Fatalf("corpus has %d attacks, want 10", n)
	}
	for _, name := range workloads.Names() {
		if strings.HasPrefix(name, Prefix) {
			t.Fatalf("attack %q visible in workloads.Names()", name)
		}
	}
	for _, a := range All() {
		w, err := workloads.ByName(Prefix + a.Name)
		if err != nil {
			t.Fatalf("attack %q not resolvable: %v", a.Name, err)
		}
		if !w.Live || w.Canary == nil {
			t.Fatalf("attack %q: Live=%v Canary=%v", a.Name, w.Live, w.Canary != nil)
		}
		if a.CWE == "" || !strings.HasPrefix(a.CWE, "CWE-") {
			t.Fatalf("attack %q has no CWE class", a.Name)
		}
	}
}

// TestCanaryWitnessDetectsSingleBit: the checksum witness must notice a
// one-bit flip anywhere in the canary region.
func TestCanaryWitnessDetectsSingleBit(t *testing.T) {
	m := core.NewMachine(core.DefaultConfig(abi.Hybrid))
	var base core.Ptr
	err := m.Run(func(m *core.Machine) {
		m.Func("canary_unit", 256, 64)
		base = plantCanary(m, 16, 0xfeed)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := CheckCanary(m); !w.Planted || !w.Intact {
		t.Fatalf("fresh canary not intact: %+v", w)
	}
	old := m.Mem.ReadUint(uint64(base)+72, 8)
	m.Mem.WriteUint(uint64(base)+72, old^(1<<17), 8)
	w := CheckCanary(m)
	if w.Intact || w.BadWords != 1 || w.FirstBad != 72 {
		t.Fatalf("flip not witnessed: %+v", w)
	}
	if w.WantSum == w.GotSum {
		t.Fatal("checksums still agree after flip")
	}
}
