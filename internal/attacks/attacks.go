// Package attacks implements the memory-safety attack corpus behind the
// security experiment: deterministic spatial and temporal violation
// kernels written as ordinary workloads, each paired with a
// machine-checkable expected-outcome spec per ABI. The corpus turns the
// paper's Appendix Table 5 asymmetry — hybrid ABI binaries survive
// violations that the capability ABIs trap — into a regression oracle:
// purecap and purecap-benchmark must trap with the right fault kind, and a
// hybrid run that "survives" is classified as clean or silently corrupted
// by a canary checksum witness, never by assumption.
//
// Every attack plants a seeded pseudo-random canary pattern over a victim
// region before violating, and publishes the region's coordinates in an
// unmodeled descriptor mailbox outside the heap. After the run, CheckCanary
// re-derives the expected stream from the seed alone and compares it
// word-by-word against memory, so "survived but corrupted" is witnessed
// from the machine's actual state.
package attacks

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

// Prefix namespaces the corpus inside the workloads registry: attack
// workloads are registered as "attack:<name>" and hidden from All().
const Prefix = "attack:"

// The canary descriptor mailbox lives between the text and heap segments,
// outside every modeled region, and is accessed via unmodeled raw memory
// reads/writes: it is simulation bookkeeping (how the witness finds the
// canary), not program behaviour, so it must not perturb counters or
// capability checks.
const (
	mailboxBase  = 0x0000_0030_0000_0000
	mailboxWords = mailboxBase + 8
	mailboxSeed  = mailboxBase + 16
)

// canaryWord advances the splitmix64 stream the canary pattern is drawn
// from. The witness re-derives the same stream from the seed alone.
func canaryWord(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// plantCanary allocates a fresh victim region of the given word count,
// fills it with the seeded pattern through modeled stores, and publishes
// its descriptor. Under hybrid the allocation comes from the same
// free-list/bump allocator the attack manipulates, which is what lets
// use-after-free and double-free attacks land on it.
func plantCanary(m *core.Machine, words, seed uint64) core.Ptr {
	base := m.Alloc(words * 8)
	plantCanaryAt(m, base, words, seed)
	return base
}

// plantCanaryAt plants the pattern over an existing region (used by the
// sub-object attack, whose victim field lives inside the attacker's own
// allocation).
func plantCanaryAt(m *core.Machine, base core.Ptr, words, seed uint64) {
	s := seed
	for i := uint64(0); i < words; i++ {
		m.Store(base+core.Ptr(i*8), canaryWord(&s), 8)
	}
	m.Mem.WriteUint(mailboxBase, uint64(base), 8)
	m.Mem.WriteUint(mailboxWords, words, 8)
	m.Mem.WriteUint(mailboxSeed, seed, 8)
}

// CheckCanary is the corruption witness: it reads the descriptor mailbox,
// re-derives the expected pattern from the seed, and compares it against
// the canary region word by word. It is every attack workload's Canary
// hook, invoked on the machine after the body finishes normally or by
// fault.
func CheckCanary(m *core.Machine) workloads.CanaryReport {
	words := m.Mem.ReadUint(mailboxWords, 8)
	if words == 0 {
		return workloads.CanaryReport{}
	}
	base := m.Mem.ReadUint(mailboxBase, 8)
	seed := m.Mem.ReadUint(mailboxSeed, 8)
	r := workloads.CanaryReport{Planted: true, Intact: true, Base: base, Words: words, Seed: seed}
	s := seed
	for i := uint64(0); i < words; i++ {
		want := canaryWord(&s)
		got := m.Mem.ReadUint(base+i*8, 8)
		r.WantSum += want
		r.GotSum += got
		if got != want {
			if r.BadWords == 0 {
				r.FirstBad = i * 8
			}
			r.BadWords++
			r.Intact = false
		}
	}
	return r
}

// OutcomeKind is the coarse classification of one attack run.
type OutcomeKind int

const (
	// SurviveClean: the run finished without a fault and the canary
	// witness found the victim region intact.
	SurviveClean OutcomeKind = iota
	// SurviveCorrupted: the run finished without a fault but the witness
	// found canary words overwritten — the silent corruption the hybrid
	// ABI permits.
	SurviveCorrupted
	// Trap: the run died on a simulated in-address-space security
	// exception (core.Fault).
	Trap
	// Aborted: the run failed some other way (panic, deadline, missing
	// witness) — never expected, always a divergence.
	Aborted
)

// Outcome is the classified result of one attack run under one ABI.
type Outcome struct {
	Kind OutcomeKind
	// Fault is the fault-kind for Trap outcomes.
	Fault core.FaultKind
	// Detail carries the abort reason for Aborted outcomes.
	Detail string
}

// String renders the outcome the way the verdict matrix prints it.
func (o Outcome) String() string {
	switch o.Kind {
	case SurviveClean:
		return "clean"
	case SurviveCorrupted:
		return "corrupted"
	case Trap:
		return fmt.Sprintf("trap(%s)", o.Fault)
	default:
		if o.Detail != "" {
			return fmt.Sprintf("aborted(%s)", o.Detail)
		}
		return "aborted"
	}
}

// Expect is the machine-checkable expected-outcome spec for one attack
// under one ABI.
type Expect struct {
	Outcome Outcome
	// MinTrapUops, for Trap expectations, is the minimum µop position of
	// the fault: every kernel performs its realistic dressing work before
	// violating, so a trap inside that window means the kernel died early
	// for the wrong reason.
	MinTrapUops uint64
}

// Classify maps a run's error and canary witness onto an Outcome. A fault
// is a Trap of that fault's kind; any other error is Aborted; a fault-free
// run is SurviveClean or SurviveCorrupted strictly according to the
// witness — a missing or unplanted witness aborts rather than guessing.
func Classify(err error, w *workloads.CanaryReport) Outcome {
	if err != nil {
		var f *core.Fault
		if errors.As(err, &f) {
			return Outcome{Kind: Trap, Fault: f.Kind}
		}
		return Outcome{Kind: Aborted, Detail: err.Error()}
	}
	if w == nil || !w.Planted {
		return Outcome{Kind: Aborted, Detail: "no canary witness"}
	}
	if w.Intact {
		return Outcome{Kind: SurviveClean}
	}
	return Outcome{Kind: SurviveCorrupted}
}

// Attack pairs one corpus workload with its per-ABI expected outcomes.
type Attack struct {
	// Name is the short attack name (e.g. "oob-write"); the registered
	// workload is Prefix+Name.
	Name string
	// CWE is the Common Weakness Enumeration class the attack models.
	CWE string
	// Desc is a one-line description.
	Desc string
	// Configure adjusts the machine configuration per ABI before the run
	// (the temporal attacks enable quarantine under the capability ABIs,
	// modeling a Cornucopia-hardened allocator).
	Configure func(cfg *core.Config)
	// Workload is the registered kernel.
	Workload *workloads.Workload

	expect map[abi.ABI]Expect
}

// Expect returns the expected-outcome spec for the given ABI.
func (a *Attack) Expect(ab abi.ABI) Expect { return a.expect[ab] }

// Check compares a classified outcome against the spec and reports whether
// it matches, with a human-readable detail when it does not.
func (a *Attack) Check(ab abi.ABI, got Outcome, uops uint64) (ok bool, detail string) {
	want := a.expect[ab]
	if got.Kind != want.Outcome.Kind {
		return false, fmt.Sprintf("want %s, got %s", want.Outcome, got)
	}
	if got.Kind == Trap {
		if got.Fault != want.Outcome.Fault {
			return false, fmt.Sprintf("want %s, got %s", want.Outcome, got)
		}
		if uops < want.MinTrapUops {
			return false, fmt.Sprintf("trapped at µop %d, before the %d-µop dressing window", uops, want.MinTrapUops)
		}
	}
	return true, ""
}

var corpus = map[string]*Attack{}

func registerAttack(a *Attack) {
	if _, dup := corpus[a.Name]; dup {
		panic(fmt.Sprintf("attacks: duplicate %q", a.Name))
	}
	for _, ab := range abi.All() {
		if _, ok := a.expect[ab]; !ok {
			panic(fmt.Sprintf("attacks: %q has no expectation for %s", a.Name, ab))
		}
	}
	a.Workload.Name = Prefix + a.Name
	a.Workload.Canary = CheckCanary
	workloads.RegisterAttack(a.Workload)
	corpus[a.Name] = a
}

// Names returns the attack names, sorted.
func Names() []string {
	out := make([]string, 0, len(corpus))
	for n := range corpus {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the corpus in name order.
func All() []*Attack {
	var out []*Attack
	for _, n := range Names() {
		out = append(out, corpus[n])
	}
	return out
}

// ByName resolves one attack by its short name.
func ByName(name string) (*Attack, error) {
	a, ok := corpus[name]
	if !ok {
		return nil, fmt.Errorf("attacks: unknown attack %q (try one of %v)", name, Names())
	}
	return a, nil
}

// Select resolves a list of attack names into corpus order. An empty list
// selects the whole corpus. Empty segments (stray commas in the flag the
// list came from) and unknown names are rejected with the offending
// segment named — selection mistakes must not silently shrink a security
// gate.
func Select(names []string) ([]*Attack, error) {
	if len(names) == 0 {
		return All(), nil
	}
	seen := map[string]bool{}
	for i, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("attacks: empty attack name in segment %d of %v (stray comma?)", i+1, names)
		}
		if _, err := ByName(n); err != nil {
			return nil, err
		}
		seen[n] = true
	}
	var out []*Attack
	for _, n := range Names() {
		if seen[n] {
			out = append(out, corpus[n])
		}
	}
	return out, nil
}
