package attacks

import (
	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

// This file implements the ten attack kernels. Each follows the same
// shape: realistic dressing work first (the loops a vulnerable program
// would run before reaching its bug), then the canary plant, then the
// violation. The dressing keeps trap positions away from µop zero — the
// MinTrapUops window in each spec asserts the capability ABIs died at the
// violation, not during setup — and exercises the same Load/Store/ALU/
// branch mix as the benchmark workloads so the attacks run under every
// machine configuration the session can apply.

// rng is the same xorshift64* generator the workloads package uses;
// attacks must stay deterministic under a fixed seed.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 2685821657736338717
}

// trapKinds is shorthand for the common "hybrid survives, both capability
// ABIs trap identically" expectation shape.
func trapKinds(hybrid Outcome, kind core.FaultKind, minUops uint64) map[abi.ABI]Expect {
	return map[abi.ABI]Expect{
		abi.Hybrid:    {Outcome: hybrid},
		abi.Benchmark: {Outcome: Outcome{Kind: Trap, Fault: kind}, MinTrapUops: minUops},
		abi.Purecap:   {Outcome: Outcome{Kind: Trap, Fault: kind}, MinTrapUops: minUops},
	}
}

// temporalHardened enables Cornucopia-style quarantine under the
// capability ABIs only: freed memory is never reallocated while
// capabilities to it may be live, so a dangling dereference finds no owner
// and tag-faults. Hybrid keeps the plain reusing allocator — that reuse is
// exactly what its silent corruption rides on.
func temporalHardened(cfg *core.Config) {
	if cfg.ABI.PointersAreCapabilities() {
		cfg.TemporalSafety = true
	}
}

// dress runs the shared setup workload: a scratch table walked with
// data-dependent loads, stores and branches, scaled like every benchmark
// kernel.
func dress(m *core.Machine, r *rng, scale int) {
	const words = 128
	tab := m.Alloc(words * 8)
	for i := uint64(0); i < words; i++ {
		m.Store(tab+core.Ptr(i*8), r.next(), 8)
	}
	for pass := 0; pass < 2*scale; pass++ {
		idx := uint64(0)
		for i := 0; i < 192; i++ {
			v := m.LoadDep(tab+core.Ptr(idx*8), 8)
			idx = v % words
			m.ALU(3)
			m.BranchAt(3001, v&1 == 0)
		}
		m.Store(tab+core.Ptr(idx*8), r.next(), 8)
		m.BranchAt(3002, pass&1 == 0)
	}
}

// minTrapUops is the dressing window every Trap expectation asserts: each
// kernel retires well over this many µops before violating.
const minTrapUops = 256

func init() {
	// oob-read (CWE-125): a summation loop reads past its array's bounds
	// into the adjacent canary allocation. Reads corrupt nothing, so
	// hybrid survives clean; the capability ABIs fault the first
	// out-of-bounds dereference on the array's bounds.
	registerAttack(&Attack{
		Name:   "oob-read",
		CWE:    "CWE-125",
		Desc:   "out-of-bounds read past array into neighbor allocation",
		expect: trapKinds(Outcome{Kind: SurviveClean}, core.KindBounds, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "OOB read (CWE-125)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_oob_read", 1024, 128)
				r := newRNG(0xa1)
				dress(m, r, scale)
				const n = 64
				arr := m.Alloc(n * 8)
				for i := uint64(0); i < n; i++ {
					m.Store(arr+core.Ptr(i*8), r.next()%1000, 8)
				}
				plantCanary(m, 16, 0xc0ffee01)
				var sum uint64
				// The bug: the loop bound is n+16, not n.
				for i := uint64(0); i < n+16; i++ {
					sum += m.LoadVia(arr, arr+core.Ptr(i*8), 8)
					m.ALU(1)
					m.BranchAt(3101, i+1 < n+16)
				}
				m.Store(arr, sum, 8)
			},
		},
	})

	// oob-write (CWE-787): a fill loop overruns its buffer and writes
	// into the adjacent canary allocation.
	registerAttack(&Attack{
		Name:   "oob-write",
		CWE:    "CWE-787",
		Desc:   "out-of-bounds write into neighbor allocation",
		expect: trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindBounds, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "OOB write (CWE-787)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_oob_write", 1024, 128)
				r := newRNG(0xa2)
				dress(m, r, scale)
				const n = 32
				buf := m.Alloc(n * 8)
				plantCanary(m, 16, 0xc0ffee02)
				// The bug: the fill runs to n+4.
				for i := uint64(0); i < n+4; i++ {
					m.StoreVia(buf, buf+core.Ptr(i*8), r.next(), 8)
					m.BranchAt(3201, i+1 < n+4)
				}
			},
		},
	})

	// uaf (CWE-416): a block is freed, the canary reallocates the same
	// memory (hybrid's reusing free list), and a dangling pointer writes
	// through it. With quarantine the capability ABIs find the freed
	// block unowned and tag-fault.
	registerAttack(&Attack{
		Name:      "uaf",
		CWE:       "CWE-416",
		Desc:      "use-after-free write through dangling pointer",
		Configure: temporalHardened,
		expect:    trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindTag, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "use after free (CWE-416)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_uaf", 1024, 128)
				r := newRNG(0xa3)
				dress(m, r, scale)
				p := m.Alloc(256)
				for i := uint64(0); i < 32; i++ {
					m.StoreVia(p, p+core.Ptr(i*8), r.next(), 8)
				}
				m.Free(p)
				plantCanary(m, 32, 0xc0ffee03) // reuses p's memory under hybrid
				m.StoreVia(p, p+16, r.next(), 8)
				m.StoreVia(p, p+24, r.next(), 8)
			},
		},
	})

	// double-free (CWE-415): freeing the same block twice. The capability
	// ABIs' allocator detects it and faults; hybrid duplicates the
	// free-list entry (fastbin dup), so the attacker's next allocation
	// aliases the victim canary allocated after it.
	registerAttack(&Attack{
		Name:   "double-free",
		CWE:    "CWE-415",
		Desc:   "double free duplicating a free-list entry (fastbin dup)",
		expect: trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindAlloc, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "double free (CWE-415)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_double_free", 1024, 128)
				r := newRNG(0xa4)
				dress(m, r, scale)
				p := m.Alloc(192)
				for i := uint64(0); i < 24; i++ {
					m.StoreVia(p, p+core.Ptr(i*8), r.next(), 8)
				}
				m.Free(p)
				m.Free(p) // capability ABIs trap here
				attacker := m.Alloc(192)
				plantCanary(m, 24, 0xc0ffee04) // pops the duplicate: aliases attacker
				m.StoreVia(attacker, attacker+16, r.next(), 8)
			},
		},
	})

	// subobject (CWE-787, intra-allocation): a fixed-size header array
	// inside a record overflows into the sibling field holding the
	// canary. Every byte stays inside the allocation's bounds, so even
	// purecap's per-allocation capabilities admit it — the corpus's
	// negative control: all three ABIs silently corrupt, and only the
	// canary witness notices. (Sub-object bounds, which CHERI supports
	// but Morello toolchains leave off by default, would catch it.)
	registerAttack(&Attack{
		Name: "subobject",
		CWE:  "CWE-787",
		Desc: "intra-allocation overflow into a sibling field (sub-object bounds off)",
		expect: map[abi.ABI]Expect{
			abi.Hybrid:    {Outcome: Outcome{Kind: SurviveCorrupted}},
			abi.Benchmark: {Outcome: Outcome{Kind: SurviveCorrupted}},
			abi.Purecap:   {Outcome: Outcome{Kind: SurviveCorrupted}},
		},
		Workload: &workloads.Workload{
			Desc: "sub-object overflow (CWE-787)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_subobject", 1024, 128)
				r := newRNG(0xa5)
				dress(m, r, scale)
				// Record: 4-word header array + 8-word sibling field.
				rec := m.Alloc(96)
				plantCanaryAt(m, rec+32, 8, 0xc0ffee05)
				// The bug: the header fill runs to 8 entries, not 4.
				for i := uint64(0); i < 8; i++ {
					m.StoreVia(rec, rec+core.Ptr(i*8), r.next(), 8)
					m.BranchAt(3501, i+1 < 8)
				}
			},
		},
	})

	// forge-ptr (CWE-587): a pointer value round-trips through a plain
	// integer slot and is dereferenced. The integer store wrote no tag,
	// so the capability ABIs fault the reload; hybrid happily follows the
	// forged address into the canary.
	registerAttack(&Attack{
		Name:   "forge-ptr",
		CWE:    "CWE-587",
		Desc:   "pointer forged through an integer store, then dereferenced",
		expect: trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindTag, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "forged pointer (CWE-587)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_forge_ptr", 1024, 128)
				r := newRNG(0xa6)
				dress(m, r, scale)
				canary := plantCanary(m, 8, 0xc0ffee06)
				slot := m.Alloc(16)
				m.Store(slot, uint64(canary)+24, 8) // integer store of an address
				fp := m.LoadPtrChecked(slot)        // capability ABIs: tag fault
				m.Store(fp, r.next(), 8)
			},
		},
	})

	// cap-overwrite (CWE-123): a plain data store overwrites memory that
	// holds a pointer, redirecting it. The store clears the capability
	// tag, so the victim's next pointer load faults under the capability
	// ABIs; hybrid follows the attacker's address.
	registerAttack(&Attack{
		Name:   "cap-overwrite",
		CWE:    "CWE-123",
		Desc:   "capability overwritten by a plain data store, then dereferenced",
		expect: trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindTag, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "capability overwrite (CWE-123)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_cap_overwrite", 1024, 128)
				r := newRNG(0xa7)
				dress(m, r, scale)
				canary := plantCanary(m, 8, 0xc0ffee07)
				nodeL := m.Layout(core.FieldPtr, core.FieldU64)
				n := m.AllocRecord(nodeL)
				m.StorePtr(nodeL.Field(n, 0), canary+8) // legitimate interior pointer
				m.Store(nodeL.Field(n, 1), r.next(), 8)
				// The attack: a plain 8-byte write redirects the pointer.
				m.Store(nodeL.Field(n, 0), uint64(canary)+40, 8)
				vp := m.LoadPtrChecked(nodeL.Field(n, 0)) // capability ABIs: tag fault
				m.Store(vp, r.next(), 8)
			},
		},
	})

	// stack-smash (CWE-121): a linear fill overruns a fixed-size frame
	// buffer into the adjacent canary (the saved-state region in a real
	// smash), modeled on the heap where per-allocation bounds apply.
	registerAttack(&Attack{
		Name:   "stack-smash",
		CWE:    "CWE-121",
		Desc:   "linear overflow of a fixed-size frame buffer",
		expect: trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindBounds, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "stack smash (CWE-121)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_stack_smash", 1024, 128)
				r := newRNG(0xa8)
				dress(m, r, scale)
				frame := m.Alloc(64)
				plantCanary(m, 8, 0xc0ffee08) // adjacent: the smashed region
				// The bug: the memset-style fill writes 12 words into 8.
				for i := uint64(0); i < 12; i++ {
					m.StoreVia(frame, frame+core.Ptr(i*8), r.next(), 8)
					m.BranchAt(3801, i+1 < 12)
				}
			},
		},
	})

	// off-by-one (CWE-193): the classic one-byte overwrite just past the
	// buffer — into the allocator's next block, here the canary's first
	// byte.
	registerAttack(&Attack{
		Name:   "off-by-one",
		CWE:    "CWE-193",
		Desc:   "one-byte write just past the buffer into the next allocation",
		expect: trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindBounds, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "off-by-one (CWE-193)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_off_by_one", 1024, 128)
				r := newRNG(0xa9)
				dress(m, r, scale)
				buf := m.Alloc(48)
				plantCanary(m, 8, 0xc0ffee09) // adjacent under hybrid
				for i := uint64(0); i < 48; i++ {
					m.StoreVia(buf, buf+core.Ptr(i), uint64(byte(r.next())), 1)
				}
				// The bug: a NUL-terminator-style write at index 48.
				m.StoreVia(buf, buf+48, 0, 1)
			},
		},
	})

	// realloc-uaf (CWE-825): a grow-and-move realloc sequence leaves a
	// stale pointer to the old block; the canary reallocates that memory
	// and the stale pointer writes through it.
	registerAttack(&Attack{
		Name:      "realloc-uaf",
		CWE:       "CWE-825",
		Desc:      "stale pointer used after a moving realloc",
		Configure: temporalHardened,
		expect:    trapKinds(Outcome{Kind: SurviveCorrupted}, core.KindTag, minTrapUops),
		Workload: &workloads.Workload{
			Desc: "dangling pointer after realloc (CWE-825)",
			Run: func(m *core.Machine, scale int) {
				m.Func("attack_realloc_uaf", 1024, 128)
				r := newRNG(0xaa)
				dress(m, r, scale)
				old := m.Alloc(128)
				for i := uint64(0); i < 16; i++ {
					m.StoreVia(old, old+core.Ptr(i*8), r.next(), 8)
				}
				// realloc(old, 256): allocate, copy, free.
				grown := m.Alloc(256)
				for i := uint64(0); i < 16; i++ {
					v := m.LoadVia(old, old+core.Ptr(i*8), 8)
					m.StoreVia(grown, grown+core.Ptr(i*8), v, 8)
				}
				m.Free(old)
				stale := old
				plantCanary(m, 16, 0xc0ffee0a) // reuses old's memory under hybrid
				m.StoreVia(grown, grown+128, r.next(), 8)
				// The bug: one code path still holds the pre-realloc pointer.
				m.StoreVia(stale, stale+8, r.next(), 8)
			},
		},
	})
}
