package experiments

import (
	"reflect"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/faultinject"
	"cherisim/internal/workloads"
)

// runGrid executes every (workload, ABI) pair on a fresh session and
// returns the results keyed by pair name.
func runGrid(t *testing.T, mutate func(*Session)) map[string]*RunData {
	t.Helper()
	s := NewSession(1)
	if mutate != nil {
		mutate(s)
	}
	out := make(map[string]*RunData)
	for _, w := range workloads.All() {
		for _, a := range abi.All() {
			out[w.Name+"/"+a.String()] = s.Run(w, a)
		}
	}
	return out
}

// diffGrids fails the test on the first pair whose RunData differs.
func diffGrids(t *testing.T, label string, want, got map[string]*RunData) {
	t.Helper()
	for k, w := range want {
		g := got[k]
		if g == nil {
			t.Fatalf("%s: %s missing", label, k)
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s: %s diverged:\nlive:   %+v\nreplay: %+v", label, k, w, g)
		}
	}
}

// TestReplayDifferentialAllPairs is the fast path's end-to-end exactness
// gate: for every (workload, ABI) pair — including the faulting ones —
// the full record-and-replay sequence must produce RunData deep-equal to
// a live -no-replay execution. Four grids run: a NoReplay baseline, the
// first-sighting grid (live, demand-driven recording not yet armed), the
// recording grid, and the replaying grid; the last must actually be
// served from recorded streams.
func TestReplayDifferentialAllPairs(t *testing.T) {
	ResetReplay()
	defer ResetReplay()

	live := runGrid(t, func(s *Session) { s.NoReplay = true })
	first := runGrid(t, nil)    // sights every key
	second := runGrid(t, nil)   // records the fault-free keys
	replayed := runGrid(t, nil) // replays them

	diffGrids(t, "first", live, first)
	diffGrids(t, "second", live, second)
	diffGrids(t, "replayed", live, replayed)

	st := ReplayStats()
	if st.Records == 0 || st.Replays == 0 {
		t.Fatalf("fast path never engaged: %+v", st)
	}
}

// TestReplayRenderByteIdentical locks the user-visible contract: a
// rendered experiment is byte-identical whether its measurements ran
// live or replayed from recorded streams.
func TestReplayRenderByteIdentical(t *testing.T) {
	ResetReplay()
	defer ResetReplay()

	e, err := ByID("fig1")
	if err != nil {
		t.Fatal(err)
	}
	render := func(mutate func(*Session)) string {
		s := NewSession(1)
		if mutate != nil {
			mutate(s)
		}
		out, err := e.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := render(func(s *Session) { s.NoReplay = true })
	render(nil)        // sight
	render(nil)        // record
	got := render(nil) // replay
	if st := ReplayStats(); st.Replays == 0 {
		t.Fatalf("render was not served by replay: %+v", st)
	}
	if got != want {
		t.Errorf("replayed render differs from live render:\nlive:\n%s\nreplayed:\n%s", want, got)
	}
}

// TestReplayFaultFreeChaosSeedRun pins the eligibility boundary from the
// fault-free side: a session with a ChaosSeed but no injector (Chaos
// nil) is unsupervised, so it both uses the fast path and matches the
// live results exactly.
func TestReplayFaultFreeChaosSeedRun(t *testing.T) {
	ResetReplay()
	defer ResetReplay()

	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	baseline := NewSession(1)
	baseline.NoReplay = true
	baseline.ChaosSeed = 7
	want := baseline.Run(w, abi.Purecap)

	for i := 0; i < 3; i++ { // sight, record, replay
		s := NewSession(1)
		s.ChaosSeed = 7
		got := s.Run(w, abi.Purecap)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("run %d diverged from live baseline:\nlive:   %+v\ngot:    %+v", i, want, got)
		}
	}
	if st := ReplayStats(); st.Replays == 0 {
		t.Fatalf("chaos-seeded but injector-free session skipped the fast path: %+v", st)
	}
}

// TestSupervisedAndCheckedRunsBypassReplay asserts the modes that must
// observe every live event never record or replay: chaos injection,
// watchdog deadlines, and the lockstep checker.
func TestSupervisedAndCheckedRunsBypassReplay(t *testing.T) {
	ResetReplay()
	defer ResetReplay()

	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Session){
		func(s *Session) {
			s.Chaos = &faultinject.Config{Seed: 3, RatePerMUops: 50, Kinds: faultinject.AllKinds()}
		},
		func(s *Session) { s.DeadlineUops = 1 << 40 },
		func(s *Session) { s.Check = true },
	}
	for i, mutate := range mutations {
		for run := 0; run < 3; run++ { // would sight+record+replay if eligible
			s := NewSession(1)
			mutate(s)
			if d := s.Run(w, abi.Hybrid); d == nil {
				t.Fatalf("mutation %d run %d returned nil", i, run)
			}
		}
	}
	if st := ReplayStats(); st.Records != 0 || st.Replays != 0 {
		t.Fatalf("supervised or checked runs touched the fast path: %+v", st)
	}
}
