package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "ext-revocation",
		Title:   "Extension: heap temporal safety via revocation sweeps (Cornucopia-style)",
		Section: "§2.1 temporal safety; related work [12]",
		Run:     runExtRevocation,
		Pairs: func() []Pair {
			return namedPairs([]string{"quickjs", "520.omnetpp_r", "sqlite", "523.xalancbmk_r"}, abi.Purecap)
		},
	})
}

// runExtRevocation measures the cost of heap temporal safety on top of the
// purecap ABI for the allocation-heavy workloads: quarantine-on-free plus
// revocation sweeps that invalidate dangling capabilities before memory
// reuse. The Cornucopia papers report low-single-digit percentage
// overheads on Morello-class systems; this experiment reproduces that
// regime and reports the sweep statistics.
func runExtRevocation(s *Session) (string, error) {
	names := []string{"quickjs", "520.omnetpp_r", "sqlite", "523.xalancbmk_r"}

	var b strings.Builder
	b.WriteString("Extension: purecap + heap temporal safety (quarantine + revocation sweeps)\n\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpurecap(ms)\t+temporal(ms)\toverhead\tsweeps\tgranules scanned\tcaps revoked\treclaimed(KiB)")
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return "", err
		}
		base := s.Run(w, abi.Purecap)
		if base.Err != nil {
			return "", fmt.Errorf("%s: %w", name, base.Err)
		}

		cfg := core.DefaultConfig(abi.Purecap)
		cfg.TemporalSafety = true
		kr, err := s.RunKernel("revocation/"+name, cfg, func(m *core.Machine) { w.Run(m, s.Scale) })
		if err != nil {
			return "", fmt.Errorf("%s+temporal: %w", name, err)
		}
		tm := kr.Metrics

		var scanned, revoked, reclaimed uint64
		for _, st := range kr.Revocations {
			scanned += st.GranulesScanned
			revoked += st.CapsRevoked
			reclaimed += st.BytesReclaimed
		}
		overhead := tm.Seconds/base.Metrics.Seconds - 1
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.1f%%\t%d\t%d\t%d\t%d\n",
			name, base.Metrics.Seconds*1e3, tm.Seconds*1e3, overhead*100,
			len(kr.Revocations), scanned, revoked, reclaimed>>10)
	}
	tw.Flush()
	b.WriteString("\nDangling capabilities are invalidated before reuse: use-after-free faults\n")
	b.WriteString("on the cleared tag instead of aliasing fresh data (asserted in\n")
	b.WriteString("internal/core/revoke_test.go). Sweeps trigger once quarantine reaches\n")
	b.WriteString("max(256 KiB, live/4), Cornucopia's amortisation policy. Workloads that\n")
	b.WriteString("never free (sqlite, xalancbmk build phases) pay nothing; the churn-heavy\n")
	b.WriteString("interpreter (quickjs) lands in the low-single-digit regime Cornucopia\n")
	b.WriteString("Reloaded reports. Note that at simulation scale (milliseconds of run per\n")
	b.WriteString("sweep window) sweep frequency is exaggerated relative to the paper-scale\n")
	b.WriteString("runs, so these overheads are upper bounds.\n")
	return b.String(), nil
}
