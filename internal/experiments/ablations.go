package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "ablation-predictor",
		Title:   "Projection: capability-aware branch predictor (PCC-bounds tracking)",
		Section: "§4.5, §5 — 'modest microarchitectural improvements'",
		Run:     runAblationPredictor,
		Pairs:   ablationPairs,
	})
	register(&Experiment{
		ID:      "ablation-storequeue",
		Title:   "Projection: capability-width store queue",
		Section: "§2.2 — store buffers sized for 64-bit operations",
		Run:     runAblationStoreQueue,
		Pairs:   ablationPairs,
	})
	register(&Experiment{
		ID:      "ablation-caches",
		Title:   "Projection: doubled L2 to absorb capability footprint",
		Section: "§4.7 — cache pressure from 128-bit capabilities",
		Run:     runAblationCaches,
		Pairs:   ablationPairs,
	})
}

// ablate runs purecap under the default machine and under a modified
// configuration, reporting per-workload overhead versus the *default
// hybrid* baseline, so the delta shows how much of CHERI's cost the
// microarchitectural change removes.
func ablate(s *Session, names []string, configure func(*core.Config)) (string, error) {
	mod := NewSession(s.Scale)
	mod.Configure = configure
	mod.Jobs = s.Jobs
	mod.Store = s.Store // the Configure hook is part of the store key
	mod.NoReplay = s.NoReplay
	// Fan the modified-configuration runs out across the worker pool before
	// the serial render below (the base session's pairs are declared via
	// ablationPairs, so a campaign prefetch has already covered them).
	mod.Prefetch(namedPairs(names, abi.Purecap))

	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpurecap/hybrid (Morello)\tpurecap/hybrid (improved)\toverhead removed")
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return "", err
		}
		baseHy := s.Seconds(w, abi.Hybrid)
		basePure := s.Seconds(w, abi.Purecap)
		modPure := mod.Seconds(w, abi.Purecap)
		if baseHy == 0 {
			return "", fmt.Errorf("%s: hybrid run failed", name)
		}
		before := basePure / baseHy
		after := modPure / baseHy
		removed := 0.0
		if before > 1 {
			removed = (before - after) / (before - 1) * 100
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.0f%%\n", name, before, after, removed)
	}
	tw.Flush()
	return b.String(), nil
}

var ablationSet = []string{
	"520.omnetpp_r", "523.xalancbmk_r", "541.leela_r", "531.deepsjeng_r",
	"sqlite", "quickjs", "llama-inference",
}

// ablationPairs declares the base-session measurements every ablation
// compares against (the modified-configuration runs live in a private
// session and are prefetched inside ablate).
func ablationPairs() []Pair {
	return namedPairs(ablationSet, abi.Hybrid, abi.Purecap)
}

func runAblationPredictor(s *Session) (string, error) {
	body, err := ablate(s, ablationSet, func(c *core.Config) { c.TracksPCCBounds = true })
	if err != nil {
		return "", err
	}
	return "Ablation: capability-aware branch predictor (tracks PCC bounds)\n" +
		"Removes the Morello prototype's PCC-change resteers and capability-jump\n" +
		"revalidation; the remaining overhead is inherent to the CHERI model\n" +
		"(footprint, instruction inflation).\n\n" + body, nil
}

func runAblationStoreQueue(s *Session) (string, error) {
	body, err := ablate(s, ablationSet, func(c *core.Config) { c.CapStoreQueuePenalty = 0 })
	if err != nil {
		return "", err
	}
	return "Ablation: capability-width store queue (no 128-bit store pressure)\n\n" + body, nil
}

func runAblationCaches(s *Session) (string, error) {
	body, err := ablate(s, ablationSet, func(c *core.Config) {
		c.L2.SizeBytes *= 2
		c.LLC.SizeBytes *= 2
	})
	if err != nil {
		return "", err
	}
	return "Ablation: doubled L2/LLC capacity (absorbs the capability footprint)\n\n" + body, nil
}
