package experiments

import (
	"strings"
	"testing"
	"time"

	"cherisim/internal/abi"
	"cherisim/internal/faultinject"
	"cherisim/internal/telemetry"
	"cherisim/internal/workloads"
)

// telemetryGrid is the small chaotic grid the span/metric tests run: three
// pairs, enough for worker-pool traffic, retries and injections.
func telemetryGrid(t *testing.T) []Pair {
	t.Helper()
	return []Pair{
		{Workload: mustWorkload(t, "525.x264_r"), ABI: abi.Hybrid},
		{Workload: mustWorkload(t, "525.x264_r"), ABI: abi.Purecap},
		{Workload: mustWorkload(t, "531.deepsjeng_r"), ABI: abi.Hybrid},
	}
}

// TestSessionTelemetrySpanHierarchy runs a chaotic grid under an enabled
// hub and asserts the recorded hierarchy: one campaign root, run spans on
// worker tracks beneath it, attempt spans beneath runs, injected faults as
// instants inside attempts, and the engine metric set fed consistently.
func TestSessionTelemetrySpanHierarchy(t *testing.T) {
	hub := telemetry.New()
	s := NewSession(1)
	s.Jobs = 2
	s.Retries = 1
	s.Chaos = &faultinject.Config{Seed: 42, RatePerMUops: 30}
	s.Telemetry = hub

	grid := telemetryGrid(t)
	s.Prefetch(grid)
	d := s.Run(grid[0].Workload, grid[0].ABI) // singleflight hit on the cache
	s.FinishTelemetry()

	spans := hub.Spans.Snapshot()
	var campaignID uint64
	runs := map[uint64]telemetry.SpanRecord{}
	var attempts []telemetry.SpanRecord
	for _, sp := range spans {
		switch {
		case sp.Name == "campaign":
			if campaignID != 0 {
				t.Fatal("more than one campaign root span")
			}
			campaignID = sp.ID
		case strings.HasPrefix(sp.Name, "run:"):
			runs[sp.ID] = sp
		case strings.HasPrefix(sp.Name, "attempt:"):
			attempts = append(attempts, sp)
		}
	}
	if campaignID == 0 {
		t.Fatal("campaign root span missing")
	}
	if len(runs) != len(grid) {
		t.Fatalf("%d run spans, want %d", len(runs), len(grid))
	}
	tracks := hub.Spans.TrackNames()
	totalInstants := 0
	for _, sp := range runs {
		if sp.Parent != campaignID {
			t.Fatalf("run span %s parented to %d, want campaign %d", sp.Name, sp.Parent, campaignID)
		}
		if !strings.HasPrefix(tracks[sp.Track], "worker-") {
			t.Fatalf("run span %s on track %q, want a worker track", sp.Name, tracks[sp.Track])
		}
	}
	if len(attempts) < len(runs) {
		t.Fatalf("%d attempt spans for %d runs", len(attempts), len(runs))
	}
	for _, sp := range attempts {
		parent, ok := runs[sp.Parent]
		if !ok {
			t.Fatalf("attempt span %s has no run parent", sp.Name)
		}
		if sp.Track != parent.Track {
			t.Fatalf("attempt %s on track %d, run on %d", sp.Name, sp.Track, parent.Track)
		}
		if sp.StartUs < parent.StartUs || sp.StartUs+sp.DurUs > parent.StartUs+parent.DurUs {
			t.Fatalf("attempt %s escapes its run interval", sp.Name)
		}
		for _, in := range sp.Instants {
			if !strings.HasPrefix(in.Name, "inject:") {
				t.Fatalf("unexpected instant %q", in.Name)
			}
			totalInstants++
		}
	}

	m := hub.Metrics
	if got := m.Counter("runs_started").Value(); got != int64(len(grid)) {
		t.Fatalf("runs_started = %d, want %d", got, len(grid))
	}
	done := m.Counter("runs_completed").Value() + m.Counter("runs_failed").Value()
	if done != int64(len(grid)) {
		t.Fatalf("completed+failed = %d, want %d", done, len(grid))
	}
	if got := m.Counter("run_attempts").Value(); got != int64(len(attempts)) {
		t.Fatalf("run_attempts = %d but %d attempt spans", got, len(attempts))
	}
	if m.Counter("singleflight_hits").Value() < 1 {
		t.Fatal("cached Run did not count a singleflight hit")
	}
	var injected int64
	for _, k := range faultinject.AllKinds() {
		injected += m.Counter("faults_injected." + k.String()).Value()
	}
	if injected != int64(totalInstants) {
		t.Fatalf("injected counters total %d but %d instants recorded", injected, totalInstants)
	}
	if injected == 0 {
		t.Fatal("chaos session recorded no injections (rate too low for the grid?)")
	}
	if d.Attempts > 1 && m.Counter("runs_retried").Value() == 0 {
		t.Fatal("retried run not counted")
	}
	if m.Gauge("pool_occupancy").Value() != 0 {
		t.Fatalf("pool occupancy %d after campaign drained", m.Gauge("pool_occupancy").Value())
	}

	// The whole hierarchy must export as a loadable trace.
	tr := telemetry.BuildTrace(hub.Spans)
	if len(tr.TraceEvents) == 0 {
		t.Fatal("empty trace export")
	}
}

// TestTelemetryDoesNotPerturbRendering renders one experiment with
// telemetry off and on: the measurement results must be byte-identical —
// observation never changes what is observed.
func TestTelemetryDoesNotPerturbRendering(t *testing.T) {
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	plain := NewSession(1)
	want, err := e.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	observed := NewSession(1)
	observed.Telemetry = telemetry.New()
	observed.Prefetch(e.Pairs())
	got, err := e.Run(observed)
	observed.FinishTelemetry()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("telemetry changed rendered output:\n--- off ---\n%s\n--- on ---\n%s", want, got)
	}
	if observed.Telemetry.Spans.Total() == 0 {
		t.Fatal("observed session recorded no spans")
	}
}

// TestChaosScheduleUnchangedByObservation pins the injector contract: the
// fault schedule with an observer attached is bit-identical to the one
// without, so telemetry can never alter a chaos campaign's results.
func TestChaosScheduleUnchangedByObservation(t *testing.T) {
	w := mustWorkload(t, "525.x264_r")
	run := func(hub *telemetry.Hub) *RunData {
		s := chaosSession(&faultinject.Config{Seed: 42, RatePerMUops: 30}, 1)
		s.Telemetry = hub
		return s.Run(w, abi.Purecap)
	}
	plain, observed := run(nil), run(telemetry.New())
	if len(plain.Injected) != len(observed.Injected) {
		t.Fatalf("schedules diverged: %d vs %d events", len(plain.Injected), len(observed.Injected))
	}
	for i := range plain.Injected {
		if plain.Injected[i] != observed.Injected[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, plain.Injected[i], observed.Injected[i])
		}
	}
	if plain.Counters != observed.Counters {
		t.Fatal("observation changed the machine counters")
	}
}

// disabledHotPathAllocs measures the allocations of the telemetry
// instrumentation sequence exactly as the session hot path executes it
// with telemetry off (nil observer), plus the cached singleflight path.
func disabledHotPathAllocs(s *Session, p Pair) float64 {
	var obs *runObserver
	d := &RunData{}
	seq := testing.AllocsPerRun(200, func() {
		obs.sfHit()
		span := obs.runStart(p.Workload, p.ABI, 1, 0)
		att := obs.attemptStart(span, 0)
		_ = obs.injectObserver(att, 1)
		obs.attemptEnd(att, d, false)
		obs.runEnd(span, d, time.Duration(0))
		obs.experimentEnd(obs.experimentSpan(nil), nil, nil)
		obs.finish()
	})
	cached := testing.AllocsPerRun(200, func() { s.Run(p.Workload, p.ABI) })
	return seq + cached
}

// TestDisabledTelemetryHotPathAllocationFree is the non-benchmark guard
// for the zero-overhead contract (runs on every `go test`).
func TestDisabledTelemetryHotPathAllocationFree(t *testing.T) {
	p := telemetryGrid(t)[0]
	s := NewSession(1)
	s.Run(p.Workload, p.ABI) // warm the singleflight cache
	if allocs := disabledHotPathAllocs(s, p); allocs != 0 {
		t.Fatalf("disabled-telemetry hot path allocates %.2f objects per run, want 0", allocs)
	}
}

// BenchmarkSessionTelemetryOff guards the disabled-telemetry run path: it
// first asserts the instrumentation adds zero allocations per run, then
// times the cached-run hot path the campaign engine hammers.
func BenchmarkSessionTelemetryOff(b *testing.B) {
	w, err := workloads.ByName("525.x264_r")
	if err != nil {
		b.Fatal(err)
	}
	p := Pair{Workload: w, ABI: abi.Hybrid}
	s := NewSession(1)
	s.Run(p.Workload, p.ABI)
	if allocs := disabledHotPathAllocs(s, p); allocs != 0 {
		b.Fatalf("disabled-telemetry hot path allocates %.2f objects per run, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(p.Workload, p.ABI)
	}
}
