package experiments

import (
	"sync"
	"sync/atomic"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/workloads"
)

// TestSingleflightExecutesOnce asserts that N concurrent Run calls on one
// (workload, ABI) key collapse onto exactly one workload execution, with
// every caller receiving the same RunData. The Configure hook observes
// executions: the session invokes it once per uncached run.
func TestSingleflightExecutesOnce(t *testing.T) {
	var execs int32
	s := NewSession(1)
	s.Jobs = 4
	s.Configure = func(*core.Config) { atomic.AddInt32(&execs, 1) }

	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	results := make([]*RunData, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Run(w, abi.Hybrid)
		}(i)
	}
	wg.Wait()

	if got := atomic.LoadInt32(&execs); got != 1 {
		t.Fatalf("workload executed %d times, want exactly 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different RunData", i)
		}
	}
	if results[0] == nil || results[0].Err != nil {
		t.Fatalf("bad run data: %+v", results[0])
	}
}

// TestDistinctKeysRunIndependently asserts that concurrent Run calls on
// different keys each execute once and produce independent results.
func TestDistinctKeysRunIndependently(t *testing.T) {
	var execs int32
	s := NewSession(1)
	s.Jobs = 4
	s.Configure = func(*core.Config) { atomic.AddInt32(&execs, 1) }

	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	abis := abi.All()
	results := make([]*RunData, len(abis))
	var wg sync.WaitGroup
	for i, a := range abis {
		wg.Add(1)
		go func(i int, a abi.ABI) {
			defer wg.Done()
			results[i] = s.Run(w, a)
		}(i, a)
	}
	wg.Wait()

	if got := atomic.LoadInt32(&execs); got != int32(len(abis)) {
		t.Fatalf("executions = %d, want %d", got, len(abis))
	}
	for i, d := range results {
		if d == nil || d.Err != nil {
			t.Fatalf("%s: bad run data %+v", abis[i], d)
		}
	}
	// The purecap run must be slower than hybrid (sanity that the parallel
	// path preserved per-ABI behaviour, not just completed).
	if results[2].Metrics.Seconds <= 0 || results[0].Metrics.Seconds <= 0 {
		t.Fatal("zero simulated time")
	}
}

// TestPrefetchRenderMatchesSerial asserts the tentpole's determinism
// guarantee: prefetching an experiment's grid across the worker pool and
// then rendering produces byte-identical output to a fully serial session.
func TestPrefetchRenderMatchesSerial(t *testing.T) {
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}

	serial := NewSession(1)
	serial.Jobs = 1
	want, err := e.Run(serial)
	if err != nil {
		t.Fatal(err)
	}

	par := NewSession(1)
	par.Jobs = 4
	par.Prefetch(e.Pairs())
	got, err := e.Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parallel prefetch render diverged from serial render:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}

// TestPrefetchDeduplicatesPairs asserts Prefetch collapses duplicate pairs
// onto a single execution.
func TestPrefetchDeduplicatesPairs(t *testing.T) {
	var execs int32
	s := NewSession(1)
	s.Jobs = 4
	s.Configure = func(*core.Config) { atomic.AddInt32(&execs, 1) }

	w, err := workloads.ByName("519.lbm_r")
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{
		{Workload: w, ABI: abi.Hybrid},
		{Workload: w, ABI: abi.Hybrid},
		{Workload: nil, ABI: abi.Hybrid}, // nil workloads are skipped
		{Workload: w, ABI: abi.Hybrid},
	}
	s.Prefetch(pairs)
	if got := atomic.LoadInt32(&execs); got != 1 {
		t.Fatalf("prefetch executed %d times, want 1", got)
	}
}

// TestUnionPairsDeduplicates asserts the cross-experiment union used by
// `cmd/experiments -all` contains each (workload, ABI) key once.
func TestUnionPairsDeduplicates(t *testing.T) {
	union := UnionPairs(All())
	if len(union) == 0 {
		t.Fatal("empty union")
	}
	seen := map[string]bool{}
	for _, p := range union {
		key := p.Workload.Name + "/" + p.ABI.String()
		if seen[key] {
			t.Fatalf("duplicate pair %s in union", key)
		}
		seen[key] = true
	}
	// The union must cover the full campaign grid (fig1/fig5/claims need
	// every workload under every ABI).
	if want := len(CampaignGrid()); len(union) < want {
		t.Fatalf("union has %d pairs, want at least the %d-pair campaign grid", len(union), want)
	}
}
