package experiments

import (
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/workloads"
)

func TestRegistryAndOrdering(t *testing.T) {
	all := All()
	if len(all) < 12 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	// Paper artefacts come first, in paper order.
	wantPrefix := []string{"table1", "table2", "fig1", "fig2", "table3", "table4", "fig4", "fig5", "fig6", "fig7", "claims"}
	for i, id := range wantPrefix {
		if all[i].ID != id {
			t.Errorf("position %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, err := ByID("fig1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("table9"); err == nil {
		t.Error("unknown id resolved")
	}
}

func TestSessionCaching(t *testing.T) {
	s := NewSession(1)
	w, _ := workloads.ByName("519.lbm_r")
	a := s.Run(w, abi.Hybrid)
	b := s.Run(w, abi.Hybrid)
	if a != b {
		t.Error("session did not cache the run")
	}
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	if s.Overhead(w, abi.Hybrid) != 1.0 {
		t.Error("hybrid overhead must be exactly 1")
	}
}

func TestAllExperimentsProduceReports(t *testing.T) {
	s := NewSession(1)
	for _, e := range All() {
		out, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 50 {
			t.Errorf("%s: suspiciously short report (%d bytes)", e.ID, len(out))
		}
	}
}

func TestClaimsAllReproduced(t *testing.T) {
	s := NewSession(1)
	e, _ := ByID("claims")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "DIVERGES") {
		t.Errorf("claims report contains divergences:\n%s", out)
	}
	if got := strings.Count(out, "REPRODUCED"); got < 11 {
		t.Errorf("only %d claims evaluated", got)
	}
}

func TestFig1ContainsEveryWorkload(t *testing.T) {
	s := NewSession(1)
	e, _ := ByID("fig1")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.All() {
		if !strings.Contains(out, w.Name) {
			t.Errorf("fig1 missing %s", w.Name)
		}
	}
	if !strings.Contains(out, "geomean") {
		t.Error("fig1 missing geomean summary")
	}
}

func TestTable4HasHierarchy(t *testing.T) {
	s := NewSession(1)
	e, _ := ByID("table4")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"retiring", "badspec", "+memory", "-extmem", "+core"} {
		if !strings.Contains(out, col) {
			t.Errorf("table4 missing column %q", col)
		}
	}
	// Six workloads x three ABIs = 18 data lines.
	lines := strings.Count(out, "purecap")
	if lines < 6 {
		t.Errorf("table4 purecap rows = %d", lines)
	}
}

func TestAblationPredictorRemovesOverhead(t *testing.T) {
	s := NewSession(1)
	e, _ := ByID("ablation-predictor")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "523.xalancbmk_r") {
		t.Error("ablation missing xalancbmk")
	}
	// The improved configuration must not report negative removal for the
	// PCC-dominated workloads (sanity of the projection).
	if strings.Contains(out, "\t-") && strings.Contains(out, "xalancbmk") {
		// Loose check: detailed numbers asserted in cherisim_test.go.
		t.Log(out)
	}
}

func TestFig5ReportsDPGrowth(t *testing.T) {
	s := NewSession(1)
	e, _ := ByID("fig5")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DP_SPEC share growth") {
		t.Error("fig5 missing DP growth summary")
	}
}

func TestFig7BothABIs(t *testing.T) {
	s := NewSession(1)
	e, _ := ByID("fig7")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(hybrid)") || !strings.Contains(out, "(purecap)") {
		t.Error("fig7 must render both ABI matrices")
	}
	if !strings.Contains(out, "strong pairs") {
		t.Error("fig7 missing strong-pair summary")
	}
}
