package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/attacks"
	"cherisim/internal/core"
	"cherisim/internal/report"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "security",
		Title:   "Memory-safety attack corpus with per-ABI verdict oracle",
		Section: "Appendix Table 5 (attack corpus)",
		Run:     runSecurity,
		// A Manual gate: run only via -run security, never in -all. The
		// per-attack machine configurations are managed by runSecurity's
		// sub-sessions, so no Pairs are declared on the parent.
		Manual: true,
	})
}

// runSecurity runs the attack corpus (internal/attacks) across the three
// ABIs, classifies every run via the fault taxonomy plus the canary
// corruption witness, and checks each verdict against the attack's
// expected-outcome spec. The rendered matrix is returned even on
// divergence; the error makes the CLI exit non-zero so the corpus acts as
// a CI gate.
func runSecurity(s *Session) (string, error) {
	sel, err := attacks.Select(s.Attacks)
	if err != nil {
		return "", err
	}
	abis := abi.All()
	rep := report.NewSecurityReport()

	type cell struct {
		got  attacks.Outcome
		want attacks.Expect
		data *RunData
		ok   bool
		why  string
	}
	cells := make(map[string]*cell, len(sel)*len(abis))

	// One sub-session per attack: the per-attack Configure (the temporal
	// attacks quarantine freed memory under the capability ABIs) composes
	// with the parent's and flows into the store key, and the supervisor
	// settings (deadline watchdog, bounded retries, chaos) apply
	// unchanged.
	for _, a := range sel {
		sub := NewSession(s.Scale)
		sub.Jobs = s.Jobs
		sub.Chaos = s.Chaos
		sub.ChaosSeed = s.ChaosSeed
		sub.DeadlineUops = s.DeadlineUops
		sub.Retries = s.Retries
		sub.Store = s.Store
		sub.NoReplay = s.NoReplay
		sub.shareTelemetryWith(s)
		parent := s.Configure
		attack := a.Configure
		sub.Configure = func(cfg *core.Config) {
			if parent != nil {
				parent(cfg)
			}
			if attack != nil {
				attack(cfg)
			}
		}
		sub.Prefetch(pairsOf([]*workloads.Workload{a.Workload}, abis...))
		for _, ab := range abis {
			d := sub.Run(a.Workload, ab)
			got := attacks.Classify(d.Err, d.Witness)
			ok, why := a.Check(ab, got, d.Uops)
			c := &cell{got: got, want: a.Expect(ab), data: d, ok: ok, why: why}
			cells[a.Name+"/"+ab.String()] = c

			rc := report.SecurityCell{
				Attack:   a.Name,
				CWE:      a.CWE,
				ABI:      ab.String(),
				Got:      got.String(),
				Want:     c.want.Outcome.String(),
				Expected: ok,
				Detail:   why,
				Uops:     d.Uops,
			}
			if got.Kind == attacks.SurviveCorrupted && d.Witness != nil {
				rc.BadWords = d.Witness.BadWords
				rc.FirstBad = d.Witness.FirstBad
			}
			rep.Add(rc)
		}
	}

	if s.Telemetry.Enabled() {
		m := s.Telemetry.Metrics
		m.Counter("attacks_run").Add(int64(len(rep.Cells)))
		m.Counter("verdicts_expected").Add(int64(len(rep.Cells) - rep.Diverged()))
		m.Counter("verdicts_diverged").Add(int64(rep.Diverged()))
		m.Counter("silent_corruptions").Add(int64(rep.SilentCorruptions()))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Memory-safety attack corpus: %d attacks x %d ABIs, verdicts vs expected-outcome spec\n", len(sel), len(abis))
	fmt.Fprintf(&b, "survival is classified by the canary checksum witness: \"corrupted\" means the\nrun finished but the witness found the victim region overwritten.\n\n")

	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "attack\tCWE")
	for _, ab := range abis {
		fmt.Fprintf(tw, "\t%s", ab)
	}
	fmt.Fprintln(tw)
	for _, a := range sel {
		fmt.Fprintf(tw, "%s\t%s", a.Name, a.CWE)
		for _, ab := range abis {
			c := cells[a.Name+"/"+ab.String()]
			txt := c.got.String()
			if !c.ok {
				txt += " [DIVERGED]"
			}
			fmt.Fprintf(tw, "\t%s", txt)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	// Witnessed silent corruptions, with their canary mismatch extent.
	var corr []string
	for _, a := range sel {
		for _, ab := range abis {
			c := cells[a.Name+"/"+ab.String()]
			if c.got.Kind == attacks.SurviveCorrupted && c.data.Witness != nil {
				w := c.data.Witness
				corr = append(corr, fmt.Sprintf("  %s/%s: %d/%d canary words overwritten, first at +%d bytes",
					a.Name, ab, w.BadWords, w.Words, w.FirstBad))
			}
		}
	}
	if len(corr) > 0 {
		fmt.Fprintf(&b, "\nsilent corruptions witnessed (%d):\n%s\n", len(corr), strings.Join(corr, "\n"))
	}

	var div []string
	for _, a := range sel {
		for _, ab := range abis {
			c := cells[a.Name+"/"+ab.String()]
			if !c.ok {
				div = append(div, fmt.Sprintf("  %s/%s: %s", a.Name, ab, c.why))
			}
		}
	}
	if len(div) > 0 {
		fmt.Fprintf(&b, "\nDIVERGED verdicts (%d):\n%s\n", len(div), strings.Join(div, "\n"))
		return b.String(), fmt.Errorf("security: %d of %d verdicts diverged from the expected-outcome spec", len(div), len(rep.Cells))
	}
	fmt.Fprintf(&b, "\nall %d verdicts match the expected-outcome spec (%d silent corruptions witnessed)\n",
		len(rep.Cells), rep.SilentCorruptions())
	return b.String(), nil
}
