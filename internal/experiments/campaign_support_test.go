package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/telemetry"
)

// blockStoreWrites squats every shard-directory path of a store root with a
// regular file, so every Save's MkdirAll fails deterministically with
// ENOTDIR. (Permission-based blocking does not work under root, which
// bypasses mode bits; a file where a directory must go fails for any uid.)
func blockStoreWrites(t *testing.T, dir string) {
	t.Helper()
	for i := 0; i < 256; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%02x", i)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveRunWriteErrorCounted is the regression test for the silently
// discarded Save error: on pre-fix engines a run over an unwritable store
// succeeded with zero trace that nothing was persisted. The run must still
// succeed (persistence is best-effort), but the failure must count on
// Stats.WriteErrors and the store_write_errors telemetry counter.
func TestSaveRunWriteErrorCounted(t *testing.T) {
	dir := t.TempDir()
	s := storeSession(t, dir)
	s.Telemetry = telemetry.New()
	blockStoreWrites(t, dir)

	d := s.Run(mustWorkload(t, "525.x264_r"), abi.Purecap)
	if d.Err != nil {
		t.Fatalf("run must succeed despite unwritable store: %v", d.Err)
	}
	st := s.StoreStats()
	if st.WriteErrors != 1 || st.Writes != 0 {
		t.Errorf("stats = %s, want 1 write error, 0 writes", st)
	}
	if got := s.Telemetry.Metrics.Counter("store_write_errors").Value(); got != 1 {
		t.Errorf("store_write_errors = %d, want 1", got)
	}
	// The stderr store summary carries the counter too.
	if !strings.Contains(st.String(), "1 write errors") {
		t.Errorf("stats string %q does not surface write errors", st)
	}
}

// TestKernelWriteErrorCounted covers the other engine persistence path
// (RunKernel's direct Save, previously `_ =`-discarded).
func TestKernelWriteErrorCounted(t *testing.T) {
	dir := t.TempDir()
	s := storeSession(t, dir)
	blockStoreWrites(t, dir)
	if _, err := s.RunKernel("write-err-kernel", s.effectiveConfig(abi.Hybrid), func(m *core.Machine) {}); err != nil {
		t.Fatalf("kernel must succeed despite unwritable store: %v", err)
	}
	if st := s.StoreStats(); st.WriteErrors != 1 || st.Writes != 0 {
		t.Errorf("stats = %s, want 1 write error, 0 writes", st)
	}
}

// TestSelect pins the strict selection semantics the campaign service
// validates submissions with.
func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Renderable()) {
		t.Errorf("Select(nil) = %d experiments, want the -all set (%d)", len(all), len(Renderable()))
	}
	if _, err := Select([]string{"no-such-experiment"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := Select([]string{"table1", ""}); err == nil || !strings.Contains(err.Error(), "stray comma") {
		t.Errorf("empty segment err = %v, want stray-comma hint", err)
	}
	// Resolution is in All() order regardless of request order, dupes collapse.
	got, err := Select([]string{"fig1", "table1", " fig1 "})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "table1" || got[1].ID != "fig1" {
		t.Errorf("Select order = %v", ids(got))
	}
	// Manual experiments run when named, exactly like -run.
	sec, err := Select([]string{"security"})
	if err != nil || len(sec) != 1 || sec[0].ID != "security" {
		t.Errorf("Select(security) = %v, %v", ids(sec), err)
	}
}

func ids(exps []*Experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// TestRenderSelectedMatchesRenderAllFraming pins the byte contract the
// campaign service leans on: rendering a selection writes the same framed
// section bytes RenderAll would for those experiments, and the progress
// callback fires once per experiment in order.
func TestRenderSelectedMatchesRenderAllFraming(t *testing.T) {
	exps, err := Select([]string{"table1"})
	if err != nil {
		t.Fatal(err)
	}
	e := exps[0]

	var seen []string
	var body bytes.Buffer
	if failed := RenderSelected(NewSession(1), &body, exps, func(e *Experiment, err error) {
		if err != nil {
			t.Errorf("experiment %s failed: %v", e.ID, err)
		}
		seen = append(seen, e.ID)
	}); len(failed) != 0 {
		t.Fatalf("failed = %v", failed)
	}
	if len(seen) != 1 || seen[0] != "table1" {
		t.Errorf("progress callbacks = %v", seen)
	}

	txt, err := e.Run(NewSession(1))
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("== %s: %s (%s) ==\n%s\n", e.ID, e.Title, e.Section, txt)
	if body.String() != want {
		t.Error("RenderSelected bytes differ from the single-experiment framing")
	}
}
