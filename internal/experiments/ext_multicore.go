package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/soc"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "ext-multicore",
		Title:   "Extension: quad-core co-runs on the shared LLC",
		Section: "§2.2 — 1 MB LL cache shared by 4 cores (paper measured solo cores)",
		Run:     runExtMulticore,
		Pairs: func() []Pair {
			return namedPairs([]string{"520.omnetpp_r", "sqlite", "llama-matmul"}, abi.Hybrid, abi.Purecap)
		},
	})
}

// runExtMulticore extends the paper's solo-core methodology to the
// multiprogrammed quad-core case: four copies of a workload co-run against
// the shared 1 MiB system-level cache, and the per-core slowdown versus a
// solo run quantifies LLC contention under each ABI. Because purecap
// working sets are larger, contention compounds CHERI's overhead — a
// second-order effect invisible in the paper's solo measurements.
func runExtMulticore(s *Session) (string, error) {
	names := []string{"520.omnetpp_r", "sqlite", "llama-matmul"}

	var b strings.Builder
	b.WriteString("Extension: 4-way co-run vs solo, per-core slowdown from shared-LLC contention\n\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tabi\tsolo LLCrdMR%\tco-run LLCrdMR%\tco-run/solo time")
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			return "", err
		}
		for _, a := range []abi.ABI{abi.Hybrid, abi.Purecap} {
			solo := s.Run(w, a)
			if solo.Err != nil {
				return "", fmt.Errorf("%s/%s: %w", name, a, solo.Err)
			}

			specs := make([]soc.CoreSpec, 4)
			for i := range specs {
				specs[i] = soc.CoreSpec{
					Config: core.DefaultConfig(a),
					Body:   func(m *core.Machine) { w.Run(m, s.Scale) },
				}
			}
			res, err := s.CoRun("multicore/"+name+"/x4", specs)
			if err != nil {
				return "", fmt.Errorf("%s/%s: %w", name, a, err)
			}
			var worst float64
			var llc float64
			for i, r := range res {
				if r.Err != nil {
					return "", fmt.Errorf("%s/%s core %d: %w", name, a, i, r.Err)
				}
				if ratio := r.Metrics.Seconds / solo.Metrics.Seconds; ratio > worst {
					worst = ratio
				}
				llc += r.Metrics.LLCReadMR
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.3fx\n",
				name, a, solo.Metrics.LLCReadMR*100, llc/4*100, worst)
		}
	}
	tw.Flush()
	b.WriteString("\nCo-run time is the slowest core's. Deterministic round-robin scheduling\n")
	b.WriteString("(8192-µop quanta); each core has private L1/L2 and its own address space\n")
	b.WriteString("mapped onto the shared LLC.\n")
	return b.String(), nil
}
