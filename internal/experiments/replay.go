package experiments

import (
	"sync/atomic"

	"cherisim/internal/replay"
)

// replayCache is the process-global store of recorded event streams,
// shared by every session so ablation sub-sessions replay the streams the
// base campaign recorded. The byte budget bounds a pathological campaign
// (a -scale sweep records one stream per scale); keys beyond it simply
// stay on the live path. The default -all campaign at -scale 1 uses well
// under half of it.
var replayCache = replay.NewCache(2 << 30)

// replayDisabled is the campaign-wide escape hatch (-no-replay).
var replayDisabled atomic.Bool

// SetReplayEnabled toggles the record-and-replay fast path globally (the
// cmd/experiments -no-replay flag). It defaults to enabled.
func SetReplayEnabled(on bool) { replayDisabled.Store(!on) }

// ReplayStats returns the fast path's campaign counters, for the stderr
// campaign summary.
func ReplayStats() replay.Stats { return replayCache.Stats() }

// ResetReplay empties the recorded-stream cache and its counters. Tests
// use it to isolate record/replay sequences; campaigns never need it.
func ResetReplay() { replayCache.Reset() }
