package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/cap"
	"cherisim/internal/compartment"
	"cherisim/internal/core"
)

func init() {
	register(&Experiment{
		ID:      "ext-compartment",
		Title:   "Extension: compartmentalized SQL engine (sealed-capability domain crossings)",
		Section: "§3.3 — SQLite as a compartmentalization use case; §6 vs SGX/TrustZone",
		Run:     runExtCompartment,
	})
}

// compartmentalizedQueries runs a SQLite-speedtest1-like query loop where
// every B-tree descent crosses into a storage compartment holding the
// pages in its private heap, and returns through the VM domain —
// crossingsPerQuery sealed-capability domain transitions per query.
func compartmentalizedQueries(m *core.Machine, queries, rowsPerQuery int, compartmentalized bool) error {
	m.Func("vdbe_main", 2048, 160)
	g := compartment.NewManager(m)
	storage, err := g.Create("sqlite.btree", 4096, 192, 1<<20)
	if err != nil {
		return err
	}

	// Pages live in the storage compartment's private heap.
	const pages = 64
	pageBytes := uint64(512)
	pagePtrs := make([]core.Ptr, pages)
	for i := range pagePtrs {
		p, err := storage.Alloc(pageBytes)
		if err != nil {
			return err
		}
		pagePtrs[i] = p
	}

	seed := uint64(0x3007)
	lookup := func(heap core.Ptr) {
		for r := 0; r < rowsPerQuery; r++ {
			seed = seed*6364136223846793005 + 1442695040888963407
			page := pagePtrs[seed%pages]
			for probe := 0; probe < 4; probe++ {
				m.LoadDep(page+core.Ptr((seed>>8)%(pageBytes-8)), 8)
				m.ALU(3)
				m.BranchAt(3001, probe < 3)
			}
			m.Store(page, seed, 8)
		}
		_ = heap
	}

	for q := 0; q < queries; q++ {
		m.ALU(20) // VM opcode work in the main domain
		m.BranchAt(3002, q+1 < queries)
		if compartmentalized {
			if err := storage.Call(func(data cap.Capability, heap core.Ptr) {
				lookup(heap)
			}); err != nil {
				return err
			}
		} else {
			lookup(0)
		}
	}
	return nil
}

// runExtCompartment measures the cost of CHERI compartmentalization for a
// chatty domain boundary (one crossing per query) against the monolithic
// baseline, per ABI. The contrast the paper's §6 draws — CHERI crossings
// avoid the context-switch costs of SGX/TrustZone — is made concrete: the
// measured per-crossing cost is tens of cycles, not thousands.
func runExtCompartment(s *Session) (string, error) {
	const queries, rows = 2000, 6

	var b strings.Builder
	b.WriteString("Extension: compartmentalized SQL storage engine, one domain crossing per query\n\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "abi\tmonolithic(ms)\tcompartmentalized(ms)\toverhead\tcycles/crossing")
	for _, a := range []abi.ABI{abi.Hybrid, abi.Benchmark, abi.Purecap} {
		run := func(comp bool) (float64, uint64, error) {
			id := fmt.Sprintf("compartment/sqlite:q=%d:r=%d:comp=%t", queries, rows, comp)
			kr, err := s.RunKernel(id, core.DefaultConfig(a), func(m *core.Machine) {
				if err := compartmentalizedQueries(m, queries, rows, comp); err != nil {
					panic(err)
				}
			})
			if err != nil {
				return 0, 0, err
			}
			return kr.Metrics.Seconds, kr.Cycles(), nil
		}
		monoS, monoC, err := run(false)
		if err != nil {
			return "", err
		}
		compS, compC, err := run(true)
		if err != nil {
			return "", err
		}
		perCrossing := float64(compC-monoC) / queries
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%+.1f%%\t%.0f\n",
			a, monoS*1e3, compS*1e3, (compS/monoS-1)*100, perCrossing)
	}
	tw.Flush()
	b.WriteString("\nEach crossing is a sealed-capability pair invocation (switcher + capability\n")
	b.WriteString("jump): tens of cycles, versus thousands for an SGX/TrustZone transition or\n")
	b.WriteString("a process switch — the §6 comparison, quantified. The purecap ABI pays the\n")
	b.WriteString("Morello PCC-resteer on top; the benchmark ABI shows the switcher cost alone.\n")
	return b.String(), nil
}
