package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/core"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/report"
	"cherisim/internal/resultstore"
	"cherisim/internal/soc"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

// This file wires the persistent result store (internal/resultstore)
// through the session engine: Run consults it before simulating and
// persists after, custom-machine kernels and soc co-runs get the same
// treatment through RunKernel and CoRun, and MetricSnapshot feeds the
// golden-baseline gate. The lockstep checker (-check) deliberately
// bypasses store lookups — its purpose is re-executing under shadow
// models, which a served entry would skip — while fresh results are still
// persisted for later unchecked campaigns.

// storeEnabled reports whether lookups may be served from the store.
func (s *Session) storeEnabled() bool { return s.Store != nil && !s.Check }

// effectiveConfig is the machine configuration a session run under ABI a
// actually uses (DefaultConfig shaped by the session's Configure hook).
func (s *Session) effectiveConfig(a abi.ABI) core.Config {
	cfg := core.DefaultConfig(a)
	if s.Configure != nil {
		s.Configure(&cfg)
	}
	return cfg
}

// supervisorFingerprint canonically encodes the session supervision that
// shapes run outcomes: the chaos schedule, the watchdog budget and the
// retry bound. An unsupervised session encodes to "".
func (s *Session) supervisorFingerprint() string {
	if s.Chaos == nil && s.DeadlineUops == 0 {
		return ""
	}
	var b strings.Builder
	if c := s.Chaos; c != nil {
		kinds := make([]string, len(c.Kinds))
		for i, k := range c.Kinds {
			kinds[i] = k.String()
		}
		sort.Strings(kinds)
		fmt.Fprintf(&b, "chaos=%d:%g:%d:%s", c.Seed, c.RatePerMUops, c.Quantum, strings.Join(kinds, ","))
	}
	fmt.Fprintf(&b, "|deadline=%d|retries=%d", s.DeadlineUops, s.Retries)
	return b.String()
}

// runStoreKey addresses one (workload, ABI) run of this session.
func (s *Session) runStoreKey(w *workloads.Workload, a abi.ABI) resultstore.Key {
	return resultstore.Key{
		Kind:       resultstore.KindRun,
		Name:       w.Name,
		ABI:        a.String(),
		Scale:      s.Scale,
		Config:     resultstore.ConfigFingerprint(s.effectiveConfig(a)),
		Supervisor: s.supervisorFingerprint(),
		Model:      resultstore.ModelFingerprint(),
	}
}

// loadRun serves a run from the store; (nil, false) on miss, corruption or
// when lookups are disabled. Hit/miss telemetry rides the observer.
func (s *Session) loadRun(key resultstore.Key, obs *runObserver) (*RunData, bool) {
	if !s.storeEnabled() {
		return nil, false
	}
	e, ok := s.Store.Load(key)
	if !ok {
		obs.storeMiss()
		return nil, false
	}
	obs.storeHit()
	return runDataFromEntry(e), true
}

// saveRun persists a finished run. Persistence is best-effort: a full disk
// must degrade the store to a cache miss on the next campaign, never fail
// the measurement that just completed — but the failure is counted
// (store_write_errors, Stats.WriteErrors, the stderr store summary), so a
// long-running service can see it is permanently cold instead of silently
// re-simulating every campaign.
func (s *Session) saveRun(key resultstore.Key, d *RunData, obs *runObserver) {
	if s.Store == nil {
		return
	}
	e := &resultstore.Entry{Key: key, Attempts: d.Attempts, Injected: d.Injected, Witness: d.Witness}
	fillCoreResult(&e.CoreResult, &d.Counters, d.Heap, d.Uops, d.Err, d.hasMachine, nil)
	s.storeSave(e, obs)
}

// storeSave persists one entry best-effort, counting (never raising)
// failures. All engine persistence funnels through here.
func (s *Session) storeSave(e *resultstore.Entry, obs *runObserver) {
	if err := s.Store.Save(e); err != nil {
		obs.storeWriteError()
	}
}

// fillCoreResult populates one stored machine outcome.
func fillCoreResult(r *resultstore.CoreResult, c *pmu.Counters, heap alloc.Stats,
	uops uint64, err error, machine bool, revs []core.RevocationStats) {
	if machine {
		r.SetCounters(c)
		r.Heap = heap
		r.Uops = uops
		r.Revocations = revs
	}
	r.Error = resultstore.EncodeError(err)
}

// runDataFromEntry rebuilds a RunData, recomputing the derived metrics
// from the stored counters so a served result can never disagree with the
// current formulas (a formula change bumps the model fingerprint anyway).
func runDataFromEntry(e *resultstore.Entry) *RunData {
	d := &RunData{
		Attempts: e.Attempts,
		Injected: e.Injected,
		Witness:  e.Witness,
		Err:      e.Error.Reconstruct(),
	}
	if c, ok := e.CountersFile(); ok {
		d.Counters = c
		d.Metrics = metrics.Compute(&c)
		d.Topdown = topdown.Analyze(&c)
		d.Heap = e.Heap
		d.Uops = e.Uops
		d.hasMachine = true
	}
	return d
}

// KernelResult is the retained outcome of one custom-machine kernel run —
// what the sweep/compartment/revocation experiments consume from the
// machines they used to build by hand.
type KernelResult struct {
	Counters    pmu.Counters
	Metrics     metrics.Metrics
	Heap        alloc.Stats
	Uops        uint64
	Revocations []core.RevocationStats
}

// RunKernel executes body on a fresh machine under cfg, riding the
// session's result store: id must uniquely name the kernel including every
// parameter that shapes its behaviour (the key also folds in cfg, the
// session scale and the model fingerprint). Failed kernel runs are
// returned as errors and never stored — they abort their experiment, so
// there is no render path that needs a cached failure.
func (s *Session) RunKernel(id string, cfg core.Config, body func(*core.Machine)) (*KernelResult, error) {
	key := resultstore.Key{
		Kind:   resultstore.KindKernel,
		Name:   id,
		Scale:  s.Scale,
		Config: resultstore.ConfigFingerprint(cfg),
		Model:  resultstore.ModelFingerprint(),
	}
	obs := s.campaignObserver()
	if s.storeEnabled() {
		if e, ok := s.Store.Load(key); ok {
			obs.storeHit()
			return kernelFromEntry(e), nil
		}
		obs.storeMiss()
	}

	s.execs.Add(1)
	m := core.NewMachine(cfg)
	if setup := s.MachineSetup(); setup != nil {
		setup(m)
	}
	if err := m.Run(body); err != nil {
		return nil, err
	}
	e := &resultstore.Entry{Key: key}
	fillCoreResult(&e.CoreResult, &m.C, m.Heap.Stats(), m.Uops(), nil, true, m.Revocations())
	if s.Store != nil {
		s.storeSave(e, obs)
	}
	return kernelFromEntry(e), nil
}

// Cycles returns the kernel's executed cycle count.
func (r *KernelResult) Cycles() uint64 { return r.Counters.Get(pmu.CPU_CYCLES) }

// kernelFromEntry rebuilds a KernelResult from its stored form.
func kernelFromEntry(e *resultstore.Entry) *KernelResult {
	r := &KernelResult{Heap: e.Heap, Uops: e.Uops, Revocations: e.Revocations}
	if c, ok := e.CountersFile(); ok {
		r.Counters = c
		r.Metrics = metrics.Compute(&c)
	}
	return r
}

// CoRunCore is one core's outcome of a stored co-run.
type CoRunCore struct {
	Counters pmu.Counters
	Metrics  metrics.Metrics
	Heap     alloc.Stats
	Uops     uint64
	Err      error
}

// CoRun executes a shared-LLC co-run through the session's result store,
// persisting the whole co-run as one unit (per-core results are only
// meaningful together — they shaped each other through the shared cache).
// id must uniquely name the co-run including its workload/parameter mix;
// the key also folds in every core's configuration, in order. Like Run,
// co-runs with failed cores are stored too: the unit is deterministic, so
// a warm campaign reproduces the same per-core errors without simulating.
// A spec-validation error (divergent LLC geometry) is returned before
// anything executes or persists.
func (s *Session) CoRun(id string, specs []soc.CoreSpec) ([]CoRunCore, error) {
	key := resultstore.Key{
		Kind:   resultstore.KindCoRun,
		Name:   id,
		Scale:  s.Scale,
		Config: coRunConfigKey(specs),
		Model:  resultstore.ModelFingerprint(),
	}
	obs := s.campaignObserver()
	if s.storeEnabled() {
		if e, ok := s.Store.Load(key); ok && len(e.Cores) == len(specs) {
			obs.storeHit()
			return coRunFromEntry(e), nil
		}
		obs.storeMiss()
	}

	s.execs.Add(uint64(len(specs)))
	s.wrapMachineSetup(specs)
	res, err := soc.RunObserved(specs, s.Telemetry)
	if err != nil {
		return nil, err
	}
	e := coRunEntry(key, res, nil)
	if s.Store != nil {
		s.storeSave(e, obs)
	}
	return coRunFromEntry(e), nil
}

// CoRunTopo executes a topology co-run (mesh/ring sliced-LLC fabric)
// through the session's result store. Like CoRun, the whole co-run is one
// stored unit; the entry additionally carries the fabric's slice/link
// accounting, and the topology fingerprint is folded into the key so a
// fabric-parameter change re-runs instead of replaying stale results.
func (s *Session) CoRunTopo(id string, topo soc.Topology, specs []soc.CoreSpec) ([]CoRunCore, *soc.FabricStats, error) {
	topo = topo.WithDefaults()
	key := resultstore.Key{
		Kind:   resultstore.KindScale,
		Name:   id,
		Scale:  s.Scale,
		Config: coRunConfigKey(specs) + "|" + topo.Fingerprint(),
		Model:  resultstore.ModelFingerprint(),
	}
	obs := s.campaignObserver()
	if s.storeEnabled() {
		if e, ok := s.Store.Load(key); ok && len(e.Cores) == len(specs) && e.Fabric != nil {
			obs.storeHit()
			return coRunFromEntry(e), e.Fabric, nil
		}
		obs.storeMiss()
	}

	s.execs.Add(uint64(len(specs)))
	s.wrapMachineSetup(specs)
	res, err := soc.RunTopologyObserved(topo, specs, s.Telemetry, s.sliceSetup())
	if err != nil {
		return nil, nil, err
	}
	e := coRunEntry(key, res.Cores, res.Fabric)
	if s.Store != nil {
		s.storeSave(e, obs)
	}
	return coRunFromEntry(e), e.Fabric, nil
}

// coRunConfigKey folds every core's configuration, in order, into one
// store-key component.
func coRunConfigKey(specs []soc.CoreSpec) string {
	cfgs := make([]string, len(specs))
	for i := range specs {
		cfgs[i] = resultstore.ConfigFingerprint(specs[i].Config)
	}
	return strings.Join(cfgs, "+")
}

// wrapMachineSetup prepends the session's machine hook (lockstep shadows)
// to every spec's Setup.
func (s *Session) wrapMachineSetup(specs []soc.CoreSpec) {
	setup := s.MachineSetup()
	if setup == nil {
		return
	}
	for i := range specs {
		inner := specs[i].Setup
		specs[i].Setup = func(m *core.Machine) {
			setup(m)
			if inner != nil {
				inner(m)
			}
		}
	}
}

// coRunEntry builds the stored unit for a co-run's results.
func coRunEntry(key resultstore.Key, res []soc.Result, fab *soc.FabricStats) *resultstore.Entry {
	e := &resultstore.Entry{Key: key, Cores: make([]resultstore.CoreResult, len(res)), Fabric: fab}
	for i, r := range res {
		machine := r.Machine != nil
		var c *pmu.Counters
		var heap alloc.Stats
		var uops uint64
		if machine {
			c = &r.Machine.C
			heap = r.Machine.Heap.Stats()
			uops = r.Machine.Uops()
		} else {
			c = &pmu.Counters{}
		}
		fillCoreResult(&e.Cores[i], c, heap, uops, r.Err, machine, nil)
	}
	return e
}

// coRunFromEntry rebuilds the per-core results of a stored co-run.
func coRunFromEntry(e *resultstore.Entry) []CoRunCore {
	out := make([]CoRunCore, len(e.Cores))
	for i := range e.Cores {
		cr := &e.Cores[i]
		out[i].Err = cr.Error.Reconstruct()
		out[i].Heap = cr.Heap
		out[i].Uops = cr.Uops
		if c, ok := cr.CountersFile(); ok {
			out[i].Counters = c
			out[i].Metrics = metrics.Compute(&c)
		}
	}
	return out
}

// StoreStats returns the session store's traffic counters (zero without a
// store).
func (s *Session) StoreStats() resultstore.Stats { return s.Store.Stats() }

// MetricSnapshot runs the full campaign grid and returns the
// per-(workload, ABI) derived-metric vectors — the golden-baseline gate's
// input. Failed pairs are omitted; they surface through the baseline diff
// as missing pairs.
func (s *Session) MetricSnapshot() map[string]map[string]float64 {
	s.RunAll()
	out := make(map[string]map[string]float64)
	for _, p := range CampaignGrid() {
		d := s.Run(p.Workload, p.ABI)
		if d.Err != nil {
			continue
		}
		out[p.Workload.Name+"/"+p.ABI.String()] = report.MetricVector(&d.Metrics, &d.Topdown)
	}
	return out
}
