package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "table1",
		Title:   "Key PMU events and derived metrics",
		Section: "§3.2, Table 1",
		Run:     runTable1,
		Pairs:   func() []Pair { return namedPairs([]string{"sqlite"}, abi.Purecap) },
	})
	register(&Experiment{
		ID:      "table2",
		Title:   "Benchmark memory intensity values",
		Section: "§3.3, Table 2",
		Run:     runTable2,
		Pairs:   func() []Pair { return pairsOf(workloads.All(), abi.Hybrid) },
	})
	register(&Experiment{
		ID:      "table3",
		Title:   "Aggregated key performance metrics (12 benchmarks x 3 ABIs)",
		Section: "§4, Table 3",
		Run:     runTable3,
		Pairs:   func() []Pair { return pairsOf(workloads.Selected(), abi.All()...) },
	})
	register(&Experiment{
		ID:      "table4",
		Title:   "Top-down analysis breakdown (6 workloads x 3 ABIs; covers Figure 3)",
		Section: "§4.4, Table 4 / Figure 3",
		Run:     runTable4,
		Pairs:   func() []Pair { return pairsOf(workloads.TopDownSet(), abi.All()...) },
	})
}

// runTable1 prints the metric catalogue and demonstrates every formula on
// a live purecap run, verifying each derived metric against a direct
// recomputation from the raw events.
func runTable1(s *Session) (string, error) {
	d, err := s.RunByName("sqlite", abi.Purecap)
	if err != nil {
		return "", err
	}
	if d.Err != nil {
		return "", d.Err
	}
	c, m := &d.Counters, d.Metrics

	var b strings.Builder
	b.WriteString("Table 1: derived metrics, demonstrated on sqlite/purecap\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tformula\tvalue")
	row := func(name, formula string, v float64) {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\n", name, formula, v)
	}
	row("IPC", "INST_RETIRED / CPU_CYCLES", m.IPC)
	row("CPI", "CPU_CYCLES / INST_RETIRED", m.CPI)
	row("Frontend Bound", "STALL_FRONTEND / CPU_CYCLES", m.FrontendBound)
	row("Backend Bound", "STALL_BACKEND / CPU_CYCLES", m.BackendBound)
	row("Retiring", "INST_SPEC / SUM(*_SPEC)", m.Retiring)
	row("Bad Speculation", "1 - Retiring - Frontend - Backend (clamped)", m.BadSpec)
	row("Branch MR", "BR_MIS_PRED_RETIRED / BR_RETIRED", m.BranchMR)
	row("L1I MR", "L1I_CACHE_REFILL / L1I_CACHE", m.L1IMR)
	row("L1I MPKI", "L1I_CACHE_REFILL / INST_RETIRED * 1000", m.L1IMPKI)
	row("L1D MR", "L1D_CACHE_REFILL / L1D_CACHE", m.L1DMR)
	row("L1D MPKI", "L1D_CACHE_REFILL / INST_RETIRED * 1000", m.L1DMPKI)
	row("L2 MR", "L2D_CACHE_REFILL / L2D_CACHE", m.L2MR)
	row("L2 MPKI", "L2D_CACHE_REFILL / INST_RETIRED * 1000", m.L2MPKI)
	row("LLC Read MR", "LL_CACHE_MISS_RD / LL_CACHE_RD", m.LLCReadMR)
	row("ITLB Walk Rate", "ITLB_WALK / L1I_TLB", m.ITLBWalkRate)
	row("DTLB Walk Rate", "DTLB_WALK / L1D_TLB", m.DTLBWalkRate)
	row("Cap Load Density", "CAP_MEM_ACCESS_RD / LD_SPEC", m.CapLoadDensity)
	row("Cap Store Density", "CAP_MEM_ACCESS_WR / ST_SPEC", m.CapStoreDensity)
	row("Cap Traffic Share", "(CAP_RD+CAP_WR) / (MEM_RD+MEM_WR)", m.CapTrafficShare)
	row("Cap Tag Overhead", "(CTAG_RD+CTAG_WR) / (MEM_RD+MEM_WR)", m.CapTagOverhead)
	row("Memory Intensity", "(LD+ST)_SPEC / (DP+ASE+VFP)_SPEC", m.MemoryIntensity)
	tw.Flush()

	// Cross-check two formulas directly against raw events.
	if got := c.Ratio(pmu.INST_RETIRED, pmu.CPU_CYCLES); got != m.IPC {
		return "", fmt.Errorf("table1: IPC formula mismatch: %v vs %v", got, m.IPC)
	}
	if got := c.Ratio(pmu.CAP_MEM_ACCESS_RD, pmu.LD_SPEC); got != m.CapLoadDensity {
		return "", fmt.Errorf("table1: cap load density mismatch")
	}
	fmt.Fprintf(&b, "\n(%d PMU events defined; 6 programmable counter slots -> %d multiplexed runs for the full set)\n",
		int(pmu.NumEvents), pmu.BuildPlan(pmu.AllEvents()).Runs())
	return b.String(), nil
}

// runTable2 reports memory intensity per workload next to the paper's
// Table 2 values and the §3.3 classification.
func runTable2(s *Session) (string, error) {
	var b strings.Builder
	b.WriteString("Table 2: benchmark memory intensity (hybrid ABI)\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tMI\tpaper\tclass")
	for _, w := range workloads.All() {
		d := s.Run(w, abi.Hybrid)
		if d.Err != nil {
			return "", fmt.Errorf("%s: %w", w.Name, d.Err)
		}
		mi := d.Metrics.MemoryIntensity
		paper := "-"
		if w.PaperMI > 0 {
			paper = fmt.Sprintf("%.3f", w.PaperMI)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%s\n", w.Name, mi, paper, metrics.ClassifyMI(mi))
	}
	tw.Flush()
	return b.String(), nil
}

// table3Row emits one metric row across the 12 selected benchmarks, three
// ABI lines per benchmark column in the paper's layout (transposed here:
// one line per benchmark per ABI).
func runTable3(s *Session) (string, error) {
	var b strings.Builder
	b.WriteString("Table 3: aggregated key performance metrics (per benchmark: hybrid / benchmark / purecap)\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tabi\ttime(ms)\tIPC\tbrMR%\tL1I%\tL1D%\tL2%\tLLCrd%\tcapLD%\tcapSD%\tcapTraf%\tcapTag%")
	for _, w := range workloads.Selected() {
		for i, a := range abi.All() {
			d := s.Run(w, a)
			if d.Err != nil {
				return "", fmt.Errorf("%s/%s: %w", w.Name, a, d.Err)
			}
			m := d.Metrics
			note := ""
			if i < len(w.PaperTimes) && w.PaperTimes[i] < 0 {
				note = " (paper: NA)"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f%s\n",
				w.Name, a, m.Seconds*1e3, m.IPC, m.BranchMR*100,
				m.L1IMR*100, m.L1DMR*100, m.L2MR*100, m.LLCReadMR*100,
				m.CapLoadDensity*100, m.CapStoreDensity*100,
				m.CapTrafficShare*100, m.CapTagOverhead*100, note)
		}
	}
	tw.Flush()
	return b.String(), nil
}

// runTable4 renders the two-level top-down decomposition for the six
// Table 4 workloads (this is also the data behind Figure 3).
func runTable4(s *Session) (string, error) {
	var b strings.Builder
	b.WriteString("Table 4 / Figure 3: top-down breakdown (per workload: hybrid / benchmark / purecap)\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tabi\ttime(ms)\tspeedup\tIPC\tretiring\tbadspec\tfrontend\tbackend\t+memory\t-L1\t-L2\t-extmem\t+core")
	for _, w := range workloads.TopDownSet() {
		hy := s.Seconds(w, abi.Hybrid)
		for _, a := range abi.All() {
			d := s.Run(w, a)
			if d.Err != nil {
				return "", fmt.Errorf("%s/%s: %w", w.Name, a, d.Err)
			}
			m, td := d.Metrics, d.Topdown
			speedup := 0.0
			if m.Seconds > 0 {
				speedup = hy / m.Seconds
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				w.Name, a, m.Seconds*1e3, speedup, m.IPC,
				td.Retiring, td.BadSpec, td.FrontendBound, td.BackendBound,
				td.MemoryBound, td.L1Bound, td.L2Bound, td.ExtMemBound, td.CoreBound)
		}
	}
	tw.Flush()
	return b.String(), nil
}
