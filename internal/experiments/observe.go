package experiments

import (
	"errors"
	"fmt"
	"time"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/replay"
	"cherisim/internal/telemetry"
	"cherisim/internal/workloads"
)

// runObserver is the session's view of the telemetry hub: every handle the
// run hot path touches, resolved once, plus the campaign-root span the
// run/experiment hierarchy hangs off. A nil observer (telemetry disabled)
// makes every method an allocation-free no-op, so the supervised execute
// path calls them unconditionally.
type runObserver struct {
	hub      *telemetry.Hub
	campaign *telemetry.Span
	finished bool

	runsStarted   *telemetry.Counter
	runsCompleted *telemetry.Counter
	runsFailed    *telemetry.Counter
	runsRetried   *telemetry.Counter
	runAttempts   *telemetry.Counter
	deadlines     *telemetry.Counter
	sfHits        *telemetry.Counter
	storeHits     *telemetry.Counter
	storeMisses   *telemetry.Counter
	storeWriteErr *telemetry.Counter
	replayRecords *telemetry.Counter
	replayBlocks  *telemetry.Counter
	replayUops    *telemetry.Counter
	profileRuns   *telemetry.Counter
	profileFns    *telemetry.Counter
	profileUops   *telemetry.Counter

	poolOccupancy *telemetry.Gauge
	poolWorkers   *telemetry.Gauge

	wallMs   *telemetry.Histogram
	simMs    *telemetry.Histogram
	runUops  *telemetry.Histogram
	injected []*telemetry.Counter                  // by faultinject.Kind
	surfaced map[core.FaultKind]*telemetry.Counter // manifested, by fault class
}

// newRunObserver resolves the engine's metric handles and opens the
// campaign-root span.
func newRunObserver(hub *telemetry.Hub) *runObserver {
	m := hub.Metrics
	o := &runObserver{
		hub:           hub,
		campaign:      hub.Start("campaign"),
		runsStarted:   m.Counter("runs_started"),
		runsCompleted: m.Counter("runs_completed"),
		runsFailed:    m.Counter("runs_failed"),
		runsRetried:   m.Counter("runs_retried"),
		runAttempts:   m.Counter("run_attempts"),
		deadlines:     m.Counter("deadline_aborts"),
		sfHits:        m.Counter("singleflight_hits"),
		storeHits:     m.Counter("store_hits"),
		storeMisses:   m.Counter("store_misses"),
		storeWriteErr: m.Counter("store_write_errors"),
		replayRecords: m.Counter("replay_records"),
		replayBlocks:  m.Counter("replay_blocks"),
		replayUops:    m.Counter("replay_fastpath_uops"),
		profileRuns:   m.Counter("profile_runs"),
		profileFns:    m.Counter("profile_functions"),
		profileUops:   m.Counter("profile_uops_attributed"),
		poolOccupancy: m.Gauge("pool_occupancy"),
		poolWorkers:   m.Gauge("pool_workers"),
		wallMs:        m.Histogram("run_wall_ms", telemetry.ExpBuckets(0.25, 2, 18)),
		simMs:         m.Histogram("run_sim_ms", telemetry.ExpBuckets(0.25, 2, 18)),
		runUops:       m.Histogram("run_uops", telemetry.ExpBuckets(1<<10, 4, 16)),
		surfaced:      map[core.FaultKind]*telemetry.Counter{},
	}
	for _, k := range faultinject.AllKinds() {
		o.injected = append(o.injected, m.Counter("faults_injected."+k.String()))
	}
	for k := core.KindUnknown; k <= core.KindSpurious; k++ {
		o.surfaced[k] = m.Counter("faults_manifested." + k.String())
	}
	return o
}

// sfHit counts a singleflight cache hit (a caller joining an in-flight or
// finished execution instead of starting its own).
func (o *runObserver) sfHit() {
	if o != nil {
		o.sfHits.Inc()
	}
}

// storeHit counts a run served from the persistent result store.
func (o *runObserver) storeHit() {
	if o != nil {
		o.storeHits.Inc()
	}
}

// storeMiss counts a store lookup that fell through to simulation.
func (o *runObserver) storeMiss() {
	if o != nil {
		o.storeMisses.Inc()
	}
}

// storeWriteError counts a failed best-effort store persist — the store
// stays permanently cold for that key, which a long-running service wants
// surfaced rather than silently re-simulating every campaign.
func (o *runObserver) storeWriteError() {
	if o != nil {
		o.storeWriteErr.Inc()
	}
}

// recorded counts one event stream captured for the replay fast path.
func (o *runObserver) recorded(t *replay.Trace) {
	if o != nil {
		o.replayRecords.Inc()
		o.replayBlocks.Add(int64(t.Blocks()))
	}
}

// replayed marks an attempt served from a recorded event stream and counts
// the µops the fast path retired without interpreting the kernel.
func (o *runObserver) replayed(att *telemetry.Span, t *replay.Trace) {
	if o == nil {
		return
	}
	o.replayUops.Add(int64(t.Uops))
	att.Attr("replayed", true)
}

// profiled counts one attribution profile captured (live or store-served)
// and publishes it to the hub's /profiles store under workload/abi.
func (o *runObserver) profiled(w *workloads.Workload, a abi.ABI, p *core.AttributionProfile) {
	if o == nil {
		return
	}
	o.profileRuns.Inc()
	o.profileFns.Add(int64(len(p.Functions)))
	var uops uint64
	for _, f := range p.Functions {
		uops += f.Uops
	}
	o.profileUops.Add(int64(uops + p.Residual.Uops))
	o.hub.Profiles.Put(w.Name+"/"+a.String(), p)
}

// runStart opens the workload-run span on the acquired worker's track.
// runs_started doubles as the singleflight miss count: every miss becomes
// exactly one execution.
func (o *runObserver) runStart(w *workloads.Workload, a abi.ABI, scale, worker int) *telemetry.Span {
	if o == nil {
		return nil
	}
	o.runsStarted.Inc()
	o.poolOccupancy.Add(1)
	track := o.hub.Spans.Track(fmt.Sprintf("worker-%d", worker))
	return o.campaign.Child("run:"+w.Name+"/"+a.String()).
		SetTrack(track).
		Attr("workload", w.Name).
		Attr("abi", a.String()).
		Attr("scale", scale)
}

// attemptStart opens one attempt span under the run span.
func (o *runObserver) attemptStart(run *telemetry.Span, attempt int) *telemetry.Span {
	if o == nil {
		return nil
	}
	o.runAttempts.Inc()
	return run.Child(fmt.Sprintf("attempt:%d", attempt))
}

// injectObserver builds the faultinject.Config.Observe callback for one
// attempt: an instant event on the attempt's track plus the per-kind
// injected counter. Returns nil on a nil observer so chaos runs without
// telemetry carry no callback at all.
func (o *runObserver) injectObserver(att *telemetry.Span, seed uint64) func(faultinject.Event) {
	if o == nil {
		return nil
	}
	att.Attr("chaos_seed", seed)
	return func(ev faultinject.Event) {
		o.injected[ev.Kind].Inc()
		att.Instant("inject:"+ev.Kind.String(),
			telemetry.A("uop", ev.Uop), telemetry.A("addr", ev.Addr))
	}
}

// attemptEnd closes one attempt span with the outcome attributes and feeds
// the attempt-level counters (deadline aborts, manifested faults, retries).
func (o *runObserver) attemptEnd(att *telemetry.Span, d *RunData, willRetry bool) {
	if o == nil {
		return
	}
	att.Attr("uops", d.Uops).Attr("injected", len(d.Injected))
	if d.Err != nil {
		att.Attr("err", d.Err.Error())
		if f, ok := faultOf(d.Err); ok {
			// A fault after injections is a manifestation: the corrupted
			// state (or delivered trap) surfaced as an architectural fault.
			if len(d.Injected) > 0 {
				o.surfaced[f.Kind].Inc()
			}
			att.Attr("fault_kind", f.Kind.String())
		}
		if isDeadline(d.Err) {
			o.deadlines.Inc()
		}
	}
	if willRetry {
		o.runsRetried.Inc()
		att.Attr("retried", true)
	}
	att.End()
}

// runEnd closes the run span with final attributes and feeds the run-level
// counters and histograms.
func (o *runObserver) runEnd(run *telemetry.Span, d *RunData, elapsed time.Duration) {
	if o == nil {
		return
	}
	o.poolOccupancy.Add(-1)
	o.wallMs.Observe(float64(elapsed.Nanoseconds()) / 1e6)
	run.Attr("attempts", d.Attempts).Attr("uops", d.Uops).Attr("injected", len(d.Injected))
	if d.Err != nil {
		o.runsFailed.Inc()
		run.Attr("err", d.Err.Error())
	} else {
		o.runsCompleted.Inc()
		simMs := d.Metrics.Seconds * 1e3
		o.simMs.Observe(simMs)
		run.Attr("sim_ms", simMs)
	}
	o.runUops.Observe(float64(d.Uops))
	run.End()
	o.hub.Logger().Debug("run finished",
		"attempts", d.Attempts, "uops", d.Uops, "err", d.Err)
}

// experimentSpan opens one experiment-render span under the campaign root.
func (o *runObserver) experimentSpan(e *Experiment) *telemetry.Span {
	if o == nil {
		return nil
	}
	return o.campaign.Child("experiment:"+e.ID).Attr("section", e.Section)
}

// experimentEnd closes an experiment span with its outcome.
func (o *runObserver) experimentEnd(sp *telemetry.Span, e *Experiment, err error) {
	if o == nil {
		return
	}
	if err != nil {
		o.hub.Metrics.Counter("experiments_failed").Inc()
		sp.Attr("err", err.Error())
		o.hub.Logger().Warn("experiment failed", "id", e.ID, "err", err)
	} else {
		o.hub.Metrics.Counter("experiments_rendered").Inc()
		o.hub.Logger().Info("experiment rendered", "id", e.ID)
	}
	sp.End()
}

// finish ends the campaign-root span (idempotent).
func (o *runObserver) finish() {
	if o == nil || o.finished {
		return
	}
	o.finished = true
	o.campaign.End()
}

// faultOf extracts the structured capability fault from a run error.
func faultOf(err error) (*core.Fault, bool) {
	var f *core.Fault
	ok := errors.As(err, &f)
	return f, ok
}

// isDeadline reports whether the run was aborted by the watchdog.
func isDeadline(err error) bool {
	var de *core.DeadlineError
	return errors.As(err, &de)
}
