package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/workloads"
)

func mustWorkload(t *testing.T, name string) *workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// chaosSession builds a supervised session with the given injector config.
func chaosSession(cfg *faultinject.Config, retries int) *Session {
	s := NewSession(1)
	s.Chaos = cfg
	s.Retries = retries
	return s
}

// TestDeterministicRetry runs the same chaotic pair in two fresh sessions
// with one seed: the fault schedules, retry counts and final counters must
// be identical, independent of pool scheduling.
func TestDeterministicRetry(t *testing.T) {
	w := mustWorkload(t, "525.x264_r")
	cfg := &faultinject.Config{
		Seed:         42,
		RatePerMUops: 30,
		Kinds:        []faultinject.Kind{faultinject.KindSpuriousTrap},
	}
	run := func() *RunData {
		return chaosSession(cfg, 2).Run(w, abi.Purecap)
	}
	d1, d2 := run(), run()
	if d1.Attempts != d2.Attempts {
		t.Fatalf("attempts diverged: %d vs %d", d1.Attempts, d2.Attempts)
	}
	if !reflect.DeepEqual(d1.Injected, d2.Injected) {
		t.Fatalf("fault schedules diverged:\n%v\n%v", d1.Injected, d2.Injected)
	}
	if d1.Counters != d2.Counters {
		t.Fatalf("counters diverged:\n%+v\n%+v", d1.Counters, d2.Counters)
	}
	if (d1.Err == nil) != (d2.Err == nil) ||
		(d1.Err != nil && d1.Err.Error() != d2.Err.Error()) {
		t.Fatalf("outcomes diverged: %v vs %v", d1.Err, d2.Err)
	}
	if d1.Attempts < 1 {
		t.Fatalf("attempts = %d", d1.Attempts)
	}
}

// TestTransientRetriesAreBounded saturates the spurious-trap rate so every
// attempt dies: the supervisor must stop after 1+Retries attempts and the
// final error must still be transient.
func TestTransientRetriesAreBounded(t *testing.T) {
	w := mustWorkload(t, "525.x264_r")
	cfg := &faultinject.Config{
		Seed:         7,
		RatePerMUops: 1000,
		Kinds:        []faultinject.Kind{faultinject.KindSpuriousTrap},
	}
	d := chaosSession(cfg, 2).Run(w, abi.Hybrid)
	if d.Err == nil {
		t.Fatal("saturated spurious traps survived")
	}
	if d.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", d.Attempts)
	}
	if !core.IsTransient(d.Err) {
		t.Fatalf("final error not transient: %v", d.Err)
	}
}

// TestWatchdogDeadline gives every run a 1M-µop budget: a short workload
// passes untouched while a long one is aborted with a structured deadline
// error — and the pool keeps draining the rest of the grid either way.
func TestWatchdogDeadline(t *testing.T) {
	short := mustWorkload(t, "525.x264_r") // ~420k µops at scale 1
	long := mustWorkload(t, "519.lbm_r")   // ~5.3M µops at scale 1
	s := NewSession(1)
	s.DeadlineUops = 1_000_000
	s.Jobs = 2
	s.Prefetch([]Pair{
		{Workload: short, ABI: abi.Hybrid},
		{Workload: long, ABI: abi.Hybrid},
		{Workload: short, ABI: abi.Purecap},
	})
	if d := s.Run(short, abi.Hybrid); d.Err != nil {
		t.Fatalf("short workload hit the watchdog: %v", d.Err)
	}
	d := s.Run(long, abi.Hybrid)
	var de *core.DeadlineError
	if !errors.As(d.Err, &de) {
		t.Fatalf("want *core.DeadlineError, got %T: %v", d.Err, d.Err)
	}
	if de.Budget != 1_000_000 || de.Uops < de.Budget {
		t.Fatalf("bad deadline record: %+v", de)
	}
	if d := s.Run(short, abi.Purecap); d.Err != nil {
		t.Fatalf("pool did not drain past the deadline: %v", d.Err)
	}
}

// TestPanicContainment runs a workload whose body panics with a non-Fault
// value: the supervisor must convert it into a structured *core.PanicError
// naming the workload, and later runs in the same session must proceed.
func TestPanicContainment(t *testing.T) {
	panicky := &workloads.Workload{
		Name: "panicky",
		Run:  func(m *core.Machine, scale int) { panic("boom") },
	}
	s := NewSession(1)
	d := s.Run(panicky, abi.Hybrid)
	var pe *core.PanicError
	if !errors.As(d.Err, &pe) {
		t.Fatalf("want *core.PanicError, got %T: %v", d.Err, d.Err)
	}
	if pe.Workload != "panicky" || pe.Value != "boom" {
		t.Fatalf("panic not attributed: %+v", pe)
	}
	if !strings.Contains(d.Err.Error(), "panicky") {
		t.Fatalf("error text misses workload name: %v", d.Err)
	}
	if d := s.Run(mustWorkload(t, "525.x264_r"), abi.Hybrid); d.Err != nil {
		t.Fatalf("campaign did not continue after the panic: %v", d.Err)
	}
}

// TestConcurrentChaos fans a chaotic grid over a multi-worker pool; run
// under -race it checks that concurrent injected faults, retries and
// watchdogs share no state across machines.
func TestConcurrentChaos(t *testing.T) {
	s := chaosSession(&faultinject.Config{
		Seed:         13,
		RatePerMUops: 30,
		Kinds:        faultinject.AllKinds(),
	}, 1)
	s.Jobs = 4
	s.DeadlineUops = 2_000_000
	var pairs []Pair
	for _, name := range []string{"525.x264_r", "531.deepsjeng_r", "sqlite"} {
		for _, a := range abi.All() {
			pairs = append(pairs, Pair{Workload: mustWorkload(t, name), ABI: a})
		}
	}
	s.Prefetch(pairs)
	for _, p := range pairs {
		d := s.Run(p.Workload, p.ABI)
		if d.Attempts < 1 {
			t.Fatalf("%s/%s never ran", p.Workload.Name, p.ABI)
		}
	}
}

// TestResilienceRenderDeterministic renders the resilience experiment twice
// (on a shrunken grid, to keep the test fast) with one campaign seed and
// requires byte-identical output.
func TestResilienceRenderDeterministic(t *testing.T) {
	oldRates, oldWs := resilienceRates, resilienceWorkloads
	defer func() { resilienceRates, resilienceWorkloads = oldRates, oldWs }()
	resilienceRates = []float64{0, 20}
	resilienceWorkloads = func() []*workloads.Workload {
		return []*workloads.Workload{
			mustWorkload(t, "525.x264_r"),
			mustWorkload(t, "531.deepsjeng_r"),
		}
	}
	render := func() string {
		s := NewSession(1)
		s.ChaosSeed = 5
		s.Jobs = 3
		out, err := runResilience(s)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	r1, r2 := render(), render()
	if r1 != r2 {
		t.Fatalf("renders diverged:\n--- first ---\n%s\n--- second ---\n%s", r1, r2)
	}
	if !strings.Contains(r1, "seed=5") || !strings.Contains(r1, "crash matrix") {
		t.Fatalf("render missing expected sections:\n%s", r1)
	}
}
