package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/loader"
	"cherisim/internal/pmu"
	"cherisim/internal/stats"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "fig1",
		Title:   "Overall execution performance normalized to hybrid",
		Section: "§4.1, Figure 1",
		Run:     runFig1,
		Pairs:   func() []Pair { return pairsOf(workloads.All(), abi.All()...) },
	})
	register(&Experiment{
		ID:      "fig2",
		Title:   "Program section sizes normalized to hybrid",
		Section: "§4.2, Figure 2",
		Run:     runFig2,
	})
	register(&Experiment{
		ID:      "fig4",
		Title:   "Core-bound vs memory-bound counter percentages",
		Section: "§4.6, Figure 4",
		Run:     runFig4,
		Pairs:   func() []Pair { return pairsOf(workloads.TopDownSet(), abi.All()...) },
	})
	register(&Experiment{
		ID:      "fig5",
		Title:   "Speculative instruction-mix distribution per ABI",
		Section: "§4.6, Figure 5",
		Run:     runFig5,
		Pairs:   func() []Pair { return pairsOf(workloads.All(), abi.All()...) },
	})
	register(&Experiment{
		ID:      "fig6",
		Title:   "Memory-bound analysis (cache vs DRAM)",
		Section: "§4.7, Figure 6",
		Run:     runFig6,
		Pairs:   func() []Pair { return pairsOf(workloads.TopDownSet(), abi.All()...) },
	})
	register(&Experiment{
		ID:      "fig7",
		Title:   "Performance correlation matrix (hybrid vs purecap)",
		Section: "§4.8, Figure 7",
		Run:     runFig7,
		Pairs:   func() []Pair { return pairsOf(workloads.All(), abi.Hybrid, abi.Purecap) },
	})
}

// runFig1 reports execution time per ABI normalized to hybrid for every
// workload, the paper's headline figure.
func runFig1(s *Session) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 1: execution time normalized to hybrid (lower is better)\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\thybrid\tbenchmark-abi\tpurecap\tpaper(bench)\tpaper(purecap)")
	var benchRatios, pureRatios []float64
	for _, w := range workloads.All() {
		bench := s.Overhead(w, abi.Benchmark)
		pure := s.Overhead(w, abi.Purecap)
		benchRatios = append(benchRatios, bench)
		pureRatios = append(pureRatios, pure)
		pb, pp := "-", "-"
		if w.PaperTimes[0] > 0 {
			if w.PaperTimes[1] > 0 {
				pb = fmt.Sprintf("%.3f", w.PaperTimes[1]/w.PaperTimes[0])
			} else if w.PaperTimes[1] < 0 {
				pb = "NA"
			}
			if w.PaperTimes[2] > 0 {
				pp = fmt.Sprintf("%.3f", w.PaperTimes[2]/w.PaperTimes[0])
			}
		}
		fmt.Fprintf(tw, "%s\t1.000\t%.3f\t%.3f\t%s\t%s\n", w.Name, bench, pure, pb, pp)
	}
	tw.Flush()
	fmt.Fprintf(&b, "\ngeomean: benchmark-abi %.3f, purecap %.3f (paper range: ~1.0x to 2.66x)\n",
		stats.GeoMean(benchRatios), stats.GeoMean(pureRatios))
	return b.String(), nil
}

// runFig2 reports the binary-section size distribution from the loader
// model, next to the paper's reported medians.
func runFig2(s *Session) (string, error) {
	paperMedians := map[string]float64{
		".text": 1.10, ".rodata": 0.81, ".rela.dyn": 85, "total": 1.05,
	}
	var b strings.Builder
	b.WriteString("Figure 2: section sizes normalized to hybrid (median across programs)\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "section\tbenchmark-abi\tpurecap\tpaper(~)")
	bm, bmAbs, err := loader.MedianRatios(abi.Benchmark)
	if err != nil {
		return "", err
	}
	pc, pcAbs, err := loader.MedianRatios(abi.Purecap)
	if err != nil {
		return "", err
	}
	for _, sec := range append(loader.SectionOrder, "total") {
		paper := "-"
		if v, ok := paperMedians[sec]; ok {
			paper = fmt.Sprintf("%.2fx", v)
		}
		if _, ok := pc[sec]; !ok {
			// Absent under hybrid: report absolute sizes.
			fmt.Fprintf(tw, "%s\t%dB\t%dB\t(absolute; absent in hybrid)\n", sec, bmAbs[sec], pcAbs[sec])
			continue
		}
		fmt.Fprintf(tw, "%s\t%.2fx\t%.2fx\t%s\n", sec, bm[sec], pc[sec], paper)
	}
	tw.Flush()
	return b.String(), nil
}

// runFig4 reports the level-2 backend split for the six top-down
// workloads.
func runFig4(s *Session) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 4: core-bound vs memory-bound shares of cycles\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tabi\tmemory-bound%\tcore-bound%\tbackend%")
	for _, w := range workloads.TopDownSet() {
		for _, a := range abi.All() {
			d := s.Run(w, a)
			if d.Err != nil {
				return "", fmt.Errorf("%s/%s: %w", w.Name, a, d.Err)
			}
			td := d.Topdown
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\n",
				w.Name, a, td.MemoryBound*100, td.CoreBound*100, td.BackendBound*100)
		}
	}
	tw.Flush()
	return b.String(), nil
}

// runFig5 reports the distribution of speculative instruction classes per
// ABI across all workloads, highlighting the DP_SPEC share growth.
func runFig5(s *Session) (string, error) {
	classes := []pmu.Event{pmu.LD_SPEC, pmu.ST_SPEC, pmu.DP_SPEC, pmu.ASE_SPEC, pmu.VFP_SPEC, pmu.BR_IMMED_SPEC, pmu.BR_INDIRECT_SPEC, pmu.BR_RETURN_SPEC}
	var b strings.Builder
	b.WriteString("Figure 5: speculative instruction mix (% of SUM(class *_SPEC))\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tabi\tLD\tST\tDP\tASE\tVFP\tBR")
	var dpGrowth []float64
	for _, w := range workloads.All() {
		var dpShare [3]float64
		for i, a := range abi.All() {
			d := s.Run(w, a)
			if d.Err != nil {
				return "", fmt.Errorf("%s/%s: %w", w.Name, a, d.Err)
			}
			tot := float64(d.Counters.Sum(classes...))
			share := func(e pmu.Event) float64 { return float64(d.Counters.Get(e)) / tot * 100 }
			br := share(pmu.BR_IMMED_SPEC) + share(pmu.BR_INDIRECT_SPEC) + share(pmu.BR_RETURN_SPEC)
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				w.Name, a, share(pmu.LD_SPEC), share(pmu.ST_SPEC), share(pmu.DP_SPEC),
				share(pmu.ASE_SPEC), share(pmu.VFP_SPEC), br)
			dpShare[i] = share(pmu.DP_SPEC)
		}
		dpGrowth = append(dpGrowth, dpShare[2]-dpShare[0])
	}
	tw.Flush()
	min, max := dpGrowth[0], dpGrowth[0]
	for _, g := range dpGrowth {
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	fmt.Fprintf(&b, "\nDP_SPEC share growth hybrid->purecap: %.2f to %.2f points (paper: 5.21 to 29.31)\n", min, max)
	return b.String(), nil
}

// runFig6 reports where memory-bound stall cycles are served from.
func runFig6(s *Session) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 6: memory-bound decomposition (share of cycles)\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tabi\tL1-bound%\tL2-bound%\textmem-bound%\tDTLB-WPKI")
	for _, w := range workloads.TopDownSet() {
		for _, a := range abi.All() {
			d := s.Run(w, a)
			if d.Err != nil {
				return "", fmt.Errorf("%s/%s: %w", w.Name, a, d.Err)
			}
			td, m := d.Topdown, d.Metrics
			fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.3f\n",
				w.Name, a, td.L1Bound*100, td.L2Bound*100, td.ExtMemBound*100, m.DTLBWPKI)
		}
	}
	tw.Flush()
	return b.String(), nil
}

// runFig7 computes the Pearson correlation matrix across the workload
// sample set for hybrid and purecap, reporting the strongly-correlated
// metric pairs the paper highlights.
func runFig7(s *Session) (string, error) {
	labels := []string{"IPC", "brMR", "L1D_RF", "L2_RF", "L1I_RF", "DTLB_W", "ITLB_W", "CAP_RD", "CAP_WR", "STL_FE", "STL_BE"}
	collect := func(a abi.ABI) ([][]float64, error) {
		series := make([][]float64, len(labels))
		for _, w := range workloads.All() {
			d := s.Run(w, a)
			if d.Err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, a, d.Err)
			}
			c, m := &d.Counters, d.Metrics
			inst := float64(c.Get(pmu.INST_RETIRED))
			norm := func(e pmu.Event) float64 { return float64(c.Get(e)) / inst * 1000 }
			vals := []float64{
				m.IPC, m.BranchMR,
				norm(pmu.L1D_CACHE_REFILL), norm(pmu.L2D_CACHE_REFILL), norm(pmu.L1I_CACHE_REFILL),
				norm(pmu.DTLB_WALK), norm(pmu.ITLB_WALK),
				norm(pmu.CAP_MEM_ACCESS_RD), norm(pmu.CAP_MEM_ACCESS_WR),
				norm(pmu.STALL_FRONTEND), norm(pmu.STALL_BACKEND),
			}
			for i, v := range vals {
				series[i] = append(series[i], v)
			}
		}
		return series, nil
	}

	var b strings.Builder
	for _, a := range []abi.ABI{abi.Hybrid, abi.Purecap} {
		series, err := collect(a)
		if err != nil {
			return "", err
		}
		mtx, err := stats.Correlate(labels, series)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Figure 7 (%s): correlation matrix over the %d-workload sample\n%s\n", a, len(workloads.All()), mtx)
		fmt.Fprintf(&b, "strong pairs (|r|>=0.8): %s\n\n", strings.Join(mtx.StrongPairs(0.8), "; "))
	}
	return b.String(), nil
}
