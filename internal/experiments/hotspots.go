package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/profile"
	"cherisim/internal/resultstore"
	"cherisim/internal/workloads"
)

// This file wires the per-function attribution profiler (core.attribute +
// internal/profile) through the campaign engine: ProfileRun is the profiled
// sibling of Session.Run — singleflighted, pool-bounded, persisted under
// its own store kind — and the "hotspots" experiment renders the
// differential ABI hotspot report over the paper's top-down workload set.
// Profiled runs always execute live: the replay fast path retires µops
// without visiting the interpreter's function stack, and DisableProfile is
// exactly the switch this path leaves on.

// hotspotTopN bounds the rendered rows per workload; the full profile is
// still computed, exported (flamegraph/pprof) and stored.
const hotspotTopN = 8

func init() {
	register(&Experiment{
		ID:      "hotspots",
		Title:   "Per-function differential ABI hotspots (top-down attribution)",
		Section: "§4.4-§4.7 at function granularity",
		Run:     runHotspots,
	})
}

// profFlight is one profiled-run singleflight cell: the first caller owns
// the execution and closes done; later callers share the outcome.
type profFlight struct {
	done chan struct{}
	prof *core.AttributionProfile
	err  error
}

// profileStoreKey addresses one profiled (workload, ABI) run. It rides the
// measurement key's fingerprints but under its own kind, and folds the
// attribution layout version into the config fingerprint so a layout change
// invalidates stored profiles without touching the model fingerprint (and
// therefore without invalidating golden baselines or plain run entries).
func (s *Session) profileStoreKey(w *workloads.Workload, a abi.ABI) resultstore.Key {
	key := s.runStoreKey(w, a)
	key.Kind = resultstore.KindProfile
	key.Config += "+" + core.AttrLayoutVersion
	return key
}

// ProfileRun returns the (cached) per-function attribution profile of
// executing workload w under ABI a, alongside the same supervision Run
// applies (watchdog, chaos attempt 0, lockstep checking). Concurrent calls
// for the same pair share one execution; profiles round-trip through the
// result store bit-exactly, so a warm campaign re-renders with zero misses
// and byte-identical output. Every returned profile has passed
// profile.Reconcile against its run's counter file.
func (s *Session) ProfileRun(w *workloads.Workload, a abi.ABI) (*core.AttributionProfile, error) {
	key := runKey{workload: w.Name, abi: a}
	s.mu.Lock()
	if s.pflight == nil {
		s.pflight = make(map[runKey]*profFlight)
	}
	if c, ok := s.pflight[key]; ok {
		obs := s.obs
		s.mu.Unlock()
		obs.sfHit()
		<-c.done
		return c.prof, c.err
	}
	c := &profFlight{done: make(chan struct{})}
	s.pflight[key] = c
	sem := s.pool()
	obs := s.obs // built by pool() when telemetry is on
	s.mu.Unlock()

	c.prof, c.err = s.profileRun(w, a, key, sem, obs)
	close(c.done)
	return c.prof, c.err
}

// profileRun is ProfileRun's owning-caller body: store lookup, live
// profiled execution, reconciliation, persistence, telemetry publish.
func (s *Session) profileRun(w *workloads.Workload, a abi.ABI, key runKey, sem chan int, obs *runObserver) (*core.AttributionProfile, error) {
	var sk resultstore.Key
	if s.Store != nil {
		sk = s.profileStoreKey(w, a)
		if s.storeEnabled() {
			if e, ok := s.Store.Load(sk); ok && e.Profile != nil {
				obs.storeHit()
				obs.profiled(w, a, e.Profile)
				return e.Profile, nil
			}
			obs.storeMiss()
		}
	}

	worker := <-sem
	m, err := s.profileOnce(w, a, obs)
	sem <- worker
	if err != nil {
		return nil, fmt.Errorf("profile %s/%s: %w", key.workload, key.abi, err)
	}
	prof := m.AttributionProfile()
	if err := profile.Reconcile(prof, &m.C); err != nil {
		return nil, fmt.Errorf("profile %s/%s: %w", key.workload, key.abi, err)
	}
	if s.Store != nil {
		e := &resultstore.Entry{Key: sk, Attempts: 1, Profile: &prof}
		fillCoreResult(&e.CoreResult, &m.C, m.Heap.Stats(), m.Uops(), nil, true, nil)
		s.storeSave(e, obs)
	}
	obs.profiled(w, a, &prof)
	return &prof, nil
}

// profileOnce performs one live profiled execution: the session's
// supervision and lockstep hooks, but no replay and — crucially — no
// DisableProfile, so the interpreter attributes every µop to the function
// executing it.
func (s *Session) profileOnce(w *workloads.Workload, a abi.ABI, obs *runObserver) (*core.Machine, error) {
	s.execs.Add(1)
	cfg := s.effectiveConfig(a)
	var setup func(*core.Machine)
	if s.Chaos != nil || s.DeadlineUops > 0 {
		_, setup = s.supervisedSetup(w, a, 0, obs, nil)
	}
	if col := s.checkCollector(); col != nil {
		inner := setup
		setup = func(m *core.Machine) {
			col.AttachMachine(m)
			if inner != nil {
				inner(m)
			}
		}
	}
	return workloads.ExecuteHooked(w, cfg, s.Scale, setup)
}

// HotspotProfiles profiles the paper's top-down workload set (Table 4)
// under every ABI, fanning out across the worker pool, and returns the
// profiles keyed by workload name and indexed by abi.ABI. Any failed
// profiled run fails the whole set — the differential report needs all
// three ABIs of every workload.
func (s *Session) HotspotProfiles() (map[string][3]core.AttributionProfile, error) {
	set := workloads.TopDownSet()
	type cell struct {
		w    string
		a    abi.ABI
		prof *core.AttributionProfile
		err  error
	}
	results := make([]cell, len(set)*len(abi.All()))
	var wg sync.WaitGroup
	for i, w := range set {
		for _, a := range abi.All() {
			wg.Add(1)
			go func(idx int, w *workloads.Workload, a abi.ABI) {
				defer wg.Done()
				p, err := s.ProfileRun(w, a)
				results[idx] = cell{w: w.Name, a: a, prof: p, err: err}
			}(i*len(abi.All())+int(a), w, a)
		}
	}
	wg.Wait()
	out := make(map[string][3]core.AttributionProfile, len(set))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		v := out[r.w]
		v[r.a] = *r.prof
		out[r.w] = v
	}
	return out, nil
}

// cyc rounds a cycle estimate for display, collapsing negative zero (the
// residual's sub-cycle float dust) onto plain 0.
func cyc(v float64) float64 {
	r := math.Round(v)
	if r == 0 {
		return 0
	}
	return r
}

// runHotspots renders the differential ABI hotspot report: per workload,
// the functions that absorb the most purecap overhead, side by side across
// the three ABIs, with the top-down category that grew — the paper's
// Figs. 5-7 narrative at function granularity.
func runHotspots(s *Session) (string, error) {
	profs, err := s.HotspotProfiles()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Per-function hotspots: cycles by ABI, Δ = purecap − hybrid, and the\n")
	b.WriteString("top-down category with the largest purecap growth (top ")
	fmt.Fprintf(&b, "%d per workload)\n", hotspotTopN)
	for _, w := range workloads.TopDownSet() {
		fmt.Fprintf(&b, "\n%s:\n", w.Name)
		tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "function\thybrid\tbenchmark\tpurecap\tΔcycles\tratio\tgrew in")
		diffs := profile.Diff(profs[w.Name])
		if len(diffs) > hotspotTopN {
			diffs = diffs[:hotspotTopN]
		}
		for _, d := range diffs {
			ratio := "-"
			// Sub-cycle rows (the residual's float dust) get no ratio: a
			// quotient of rounding noise reads as a real overhead.
			if d.Ratio > 0 && d.Cycles[abi.Hybrid] >= 0.5 {
				ratio = fmt.Sprintf("%.3f", d.Ratio)
			}
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%+.0f\t%s\t%s\n",
				d.Name, cyc(d.Cycles[abi.Hybrid]), cyc(d.Cycles[abi.Benchmark]),
				cyc(d.Cycles[abi.Purecap]), cyc(d.Delta), ratio, d.Growth)
		}
		tw.Flush()
	}
	return b.String(), nil
}
