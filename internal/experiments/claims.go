package experiments

import (
	"fmt"
	"strings"

	"cherisim/internal/abi"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "claims",
		Title:   "Headline quantitative claims of §4/§5, paper vs measured",
		Section: "§4.1-§4.8, §5",
		Run:     runClaims,
		Pairs:   func() []Pair { return pairsOf(workloads.All(), abi.All()...) },
	})
}

type claim struct {
	text  string
	paper string
	check func(s *Session) (measured string, ok bool, err error)
}

// runClaims evaluates the paper's headline findings against the
// simulation, reporting each as REPRODUCED or DIVERGES with the measured
// value. "Reproduced" means the qualitative shape holds; absolute numbers
// are expected to differ (see DESIGN.md §"Faithfulness claims").
func runClaims(s *Session) (string, error) {
	get := func(name string) *workloads.Workload {
		w, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		return w
	}
	claims := []claim{
		{
			text:  "CHERI overheads range from negligible to ~1.65x-2.7x, highest for pointer-intensive workloads",
			paper: "0% to 165.9% (QuickJS worst)",
			check: func(s *Session) (string, bool, error) {
				min, max := 10.0, 0.0
				worst := ""
				for _, w := range workloads.All() {
					o := s.Overhead(w, abi.Purecap)
					if o < min {
						min = o
					}
					if o > max {
						max = o
						worst = w.Name
					}
				}
				return fmt.Sprintf("%.0f%% to %.0f%% (worst: %s)", (min-1)*100, (max-1)*100, worst),
					max > 1.8 && min < 1.10 && worst == "quickjs", nil
			},
		},
		{
			text:  "A large share of xalancbmk's purecap overhead is PCC-related and vanishes under the benchmark ABI",
			paper: "60.3 of 103 points recovered",
			check: func(s *Session) (string, bool, error) {
				w := get("523.xalancbmk_r")
				pure := s.Overhead(w, abi.Purecap)
				bench := s.Overhead(w, abi.Benchmark)
				rec := (pure - bench) / (pure - 1) * 100
				return fmt.Sprintf("%.0f%% of %.0f points recovered", rec, (pure-1)*100), rec > 35, nil
			},
		},
		{
			text:  "Memory-intensive omnetpp suffers among the largest overheads",
			paper: "+74% benchmark, +87% purecap",
			check: func(s *Session) (string, bool, error) {
				w := get("520.omnetpp_r")
				b, p := s.Overhead(w, abi.Benchmark), s.Overhead(w, abi.Purecap)
				return fmt.Sprintf("+%.0f%% benchmark, +%.0f%% purecap", (b-1)*100, (p-1)*100),
					p > 1.6 && b > 1.5 && p >= b, nil
			},
		},
		{
			text:  "LLaMA.cpp inference sees negligible purecap overhead despite streaming gigabytes",
			paper: "+1.29%",
			check: func(s *Session) (string, bool, error) {
				p := s.Overhead(get("llama-inference"), abi.Purecap)
				return fmt.Sprintf("%+.1f%%", (p-1)*100), p < 1.05, nil
			},
		},
		{
			text:  "lbm shows no purecap penalty (paper: small speed-up)",
			paper: "-7.9%",
			check: func(s *Session) (string, bool, error) {
				p := s.Overhead(get("519.lbm_r"), abi.Purecap)
				return fmt.Sprintf("%+.1f%% (speed-up not reproduced; parity is)", (p-1)*100), p < 1.03, nil
			},
		},
		{
			text:  "QuickJS, though compute-classified, incurs the largest overhead",
			paper: "+165.9%",
			check: func(s *Session) (string, bool, error) {
				p := s.Overhead(get("quickjs"), abi.Purecap)
				return fmt.Sprintf("+%.0f%%", (p-1)*100), p > 1.9, nil
			},
		},
		{
			text:  "Capability load density jumps from ~0 under hybrid to tens of percent under purecap",
			paper: "e.g. xalancbmk 0.08% -> 80.7%",
			check: func(s *Session) (string, bool, error) {
				d := s.Run(get("523.xalancbmk_r"), abi.Purecap)
				h := s.Run(get("523.xalancbmk_r"), abi.Hybrid)
				if d.Err != nil || h.Err != nil {
					return "", false, fmt.Errorf("run failed")
				}
				return fmt.Sprintf("%.2f%% -> %.1f%%", h.Metrics.CapLoadDensity*100, d.Metrics.CapLoadDensity*100),
					h.Metrics.CapLoadDensity < 0.02 && d.Metrics.CapLoadDensity > 0.5, nil
			},
		},
		{
			text:  "Backend-bound share grows under purecap for memory-intensive workloads",
			paper: "omnetpp backend 67.8% -> 70.7%",
			check: func(s *Session) (string, bool, error) {
				hy := s.Run(get("520.omnetpp_r"), abi.Hybrid)
				pc := s.Run(get("520.omnetpp_r"), abi.Purecap)
				if hy.Err != nil || pc.Err != nil {
					return "", false, fmt.Errorf("run failed")
				}
				return fmt.Sprintf("backend %.1f%% -> %.1f%%", hy.Topdown.BackendBound*100, pc.Topdown.BackendBound*100),
					pc.Topdown.BackendBound > hy.Topdown.BackendBound, nil
			},
		},
		{
			text:  "LLaMA.cpp becomes less memory-bound and more core-bound under purecap",
			paper: "memory 33.1% -> 21.2%, core 16.8% -> 23.5%",
			check: func(s *Session) (string, bool, error) {
				hy := s.Run(get("llama-inference"), abi.Hybrid)
				pc := s.Run(get("llama-inference"), abi.Purecap)
				if hy.Err != nil || pc.Err != nil {
					return "", false, fmt.Errorf("run failed")
				}
				return fmt.Sprintf("memory %.1f%% -> %.1f%%, core %.1f%% -> %.1f%%",
						hy.Topdown.MemoryBound*100, pc.Topdown.MemoryBound*100,
						hy.Topdown.CoreBound*100, pc.Topdown.CoreBound*100),
					pc.Topdown.CoreBound > hy.Topdown.CoreBound, nil
			},
		},
		{
			text:  "QuickJS's memory footprint grows substantially under purecap",
			paper: "+36.3%",
			check: func(s *Session) (string, bool, error) {
				hy := s.Run(get("quickjs"), abi.Hybrid)
				pc := s.Run(get("quickjs"), abi.Purecap)
				if hy.Err != nil || pc.Err != nil {
					return "", false, fmt.Errorf("run failed")
				}
				g := float64(pc.Heap.BrkBytes)/float64(hy.Heap.BrkBytes) - 1
				return fmt.Sprintf("+%.1f%%", g*100), g > 0.2, nil
			},
		},
		{
			text:  "Branch misprediction rates change little across ABIs for most benchmarks",
			paper: "e.g. deepsjeng 2.99/3.00/2.99",
			check: func(s *Session) (string, bool, error) {
				w := get("531.deepsjeng_r")
				hy := s.Run(w, abi.Hybrid).Metrics.BranchMR
				pc := s.Run(w, abi.Purecap).Metrics.BranchMR
				rel := (pc - hy) / hy
				return fmt.Sprintf("deepsjeng %.2f%% -> %.2f%% (%+.0f%%)", hy*100, pc*100, rel*100),
					rel > -0.3 && rel < 0.3, nil
			},
		},
	}

	var b strings.Builder
	b.WriteString("Headline claims, paper vs simulation\n\n")
	for i, c := range claims {
		measured, ok, err := c.check(s)
		if err != nil {
			return "", fmt.Errorf("claim %d: %w", i+1, err)
		}
		verdict := "REPRODUCED"
		if !ok {
			verdict = "DIVERGES"
		}
		fmt.Fprintf(&b, "[%d] %s\n    paper:    %s\n    measured: %s\n    verdict:  %s\n\n", i+1, c.text, c.paper, measured, verdict)
	}
	return b.String(), nil
}
