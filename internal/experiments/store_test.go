package experiments

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/resultstore"
	"cherisim/internal/soc"
	"cherisim/internal/telemetry"
)

// storeSession builds a session backed by a store rooted at dir.
func storeSession(t *testing.T, dir string) *Session {
	t.Helper()
	st, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(1)
	s.Store = st
	return s
}

// sameRun asserts two RunData are observationally identical: everything a
// renderer can see must match between a simulated and a served result.
func sameRun(t *testing.T, cold, warm *RunData) {
	t.Helper()
	if cold.Counters != warm.Counters {
		t.Error("counters differ between cold and warm run")
	}
	if !reflect.DeepEqual(cold.Metrics, warm.Metrics) {
		t.Error("metrics differ between cold and warm run")
	}
	if !reflect.DeepEqual(cold.Topdown, warm.Topdown) {
		t.Error("topdown differs between cold and warm run")
	}
	if cold.Heap != warm.Heap || cold.Uops != warm.Uops || cold.Attempts != warm.Attempts {
		t.Error("heap/uops/attempts differ between cold and warm run")
	}
	if !reflect.DeepEqual(cold.Injected, warm.Injected) {
		t.Error("injected events differ between cold and warm run")
	}
	switch {
	case (cold.Err == nil) != (warm.Err == nil):
		t.Errorf("error presence differs: %v vs %v", cold.Err, warm.Err)
	case cold.Err != nil && cold.Err.Error() != warm.Err.Error():
		t.Errorf("error strings differ: %q vs %q", cold.Err, warm.Err)
	}
}

// TestWarmRunServedFromStore is the tentpole acceptance test at the API
// level: a second session over the same store performs zero simulations
// and returns observationally identical results.
func TestWarmRunServedFromStore(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "519.lbm_r")

	cold := storeSession(t, dir)
	d1 := cold.Run(w, abi.Purecap)
	if d1.Err != nil {
		t.Fatal(d1.Err)
	}
	if st := cold.StoreStats(); st.Writes != 1 || st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("cold stats = %s", st)
	}

	warm := storeSession(t, dir)
	warm.Telemetry = telemetry.New()
	d2 := warm.Run(w, abi.Purecap)
	sameRun(t, d1, d2)
	if st := warm.StoreStats(); st.Hits != 1 || st.Misses != 0 || st.Writes != 0 {
		t.Fatalf("warm stats = %s", st)
	}
	// Zero simulations: the run was never started, only served.
	m := warm.Telemetry.Metrics
	if v := m.Counter("runs_started").Value(); v != 0 {
		t.Errorf("warm session simulated %d runs", v)
	}
	if v := m.Counter("store_hits").Value(); v != 1 {
		t.Errorf("store_hits = %d", v)
	}
	if v := m.Counter("store_misses").Value(); v != 0 {
		t.Errorf("store_misses = %d", v)
	}
}

// TestCorruptedEntryResimulatedAndRewritten pins the resume semantics: a
// damaged entry is a miss, the pair re-simulates, and the rewrite repairs
// the store for the next campaign.
func TestCorruptedEntryResimulatedAndRewritten(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "519.lbm_r")

	cold := storeSession(t, dir)
	d1 := cold.Run(w, abi.Hybrid)
	if d1.Err != nil {
		t.Fatal(d1.Err)
	}
	path := cold.Store.Path(cold.runStoreKey(w, abi.Hybrid))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	warm := storeSession(t, dir)
	d2 := warm.Run(w, abi.Hybrid)
	sameRun(t, d1, d2)
	st := warm.StoreStats()
	if st.Corrupt != 1 || st.Misses != 1 || st.Writes != 1 || st.Hits != 0 {
		t.Fatalf("post-corruption stats = %s", st)
	}

	third := storeSession(t, dir)
	d3 := third.Run(w, abi.Hybrid)
	sameRun(t, d1, d3)
	if st := third.StoreStats(); st.Hits != 1 || st.Corrupt != 0 {
		t.Fatalf("post-repair stats = %s", st)
	}
}

// TestStoreKeyingSeparatesCampaigns: scale and the Configure hook are part
// of the key, so a different campaign never sees another's entries.
func TestStoreKeyingSeparatesCampaigns(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "519.lbm_r")

	base := storeSession(t, dir)
	if d := base.Run(w, abi.Purecap); d.Err != nil {
		t.Fatal(d.Err)
	}

	scaled := storeSession(t, dir)
	scaled.Scale = 2
	scaled.Run(w, abi.Purecap)
	if st := scaled.StoreStats(); st.Hits != 0 || st.Misses != 1 {
		t.Errorf("scale-2 session hit a scale-1 entry: %s", st)
	}

	modified := storeSession(t, dir)
	modified.Configure = func(c *core.Config) { c.L2.SizeBytes *= 2 }
	modified.Run(w, abi.Purecap)
	if st := modified.StoreStats(); st.Hits != 0 || st.Misses != 1 {
		t.Errorf("modified-config session hit a default entry: %s", st)
	}

	// The original campaign still hits its own entry.
	again := storeSession(t, dir)
	again.Run(w, abi.Purecap)
	if st := again.StoreStats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("original campaign missed its own entry: %s", st)
	}
}

// TestChaoticRunRoundTrips: supervised runs (chaos + retries) store their
// full outcome — attempts, fault schedule, and the terminating error with
// its concrete type — so a warm resilience sweep renders identically.
func TestChaoticRunRoundTrips(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "525.x264_r")
	chaos := &faultinject.Config{
		Seed:         42,
		RatePerMUops: 60,
		Kinds:        []faultinject.Kind{faultinject.KindTagClear, faultinject.KindSpuriousTrap},
	}

	cold := storeSession(t, dir)
	cold.Chaos = chaos
	cold.Retries = 2
	d1 := cold.Run(w, abi.Purecap)
	if len(d1.Injected) == 0 {
		t.Fatal("chaos run injected nothing; raise the rate")
	}

	warm := storeSession(t, dir)
	warm.Chaos = chaos
	warm.Retries = 2
	d2 := warm.Run(w, abi.Purecap)
	if st := warm.StoreStats(); st.Hits != 1 {
		t.Fatalf("warm chaos run missed: %s", st)
	}
	sameRun(t, d1, d2)
	if d1.Err != nil {
		// The reconstructed error must keep its concrete class (the crash
		// matrix renders it via errors.As).
		var f1, f2 *core.Fault
		if errors.As(d1.Err, &f1) != errors.As(d2.Err, &f2) {
			t.Error("fault class lost through the store")
		} else if f1 != nil && f1.Kind != f2.Kind {
			t.Errorf("fault kind drifted: %v vs %v", f1.Kind, f2.Kind)
		}
	}

	// A different seed is a different campaign.
	other := storeSession(t, dir)
	other.Chaos = &faultinject.Config{Seed: 43, RatePerMUops: 60, Kinds: chaos.Kinds}
	other.Retries = 2
	other.Run(w, abi.Purecap)
	if st := other.StoreStats(); st.Hits != 0 {
		t.Errorf("different chaos seed hit the old entry: %s", st)
	}
}

// TestFailedRunRoundTrips: natural crashes (the paper's Table 5 rows) are
// stored too, so warm campaigns reproduce the failure without simulating.
func TestFailedRunRoundTrips(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "502.gcc_r")

	cold := storeSession(t, dir)
	d1 := cold.Run(w, abi.Purecap)
	if d1.Err == nil {
		t.Skip("502.gcc_r no longer crashes under purecap")
	}

	warm := storeSession(t, dir)
	d2 := warm.Run(w, abi.Purecap)
	if st := warm.StoreStats(); st.Hits != 1 {
		t.Fatalf("failed run was not served from the store: %s", st)
	}
	sameRun(t, d1, d2)
	if cellStatus(d1) != cellStatus(d2) {
		t.Errorf("crash-matrix cell drifted: %s vs %s", cellStatus(d1), cellStatus(d2))
	}
}

// TestCheckModeBypassesStoreLookups: the lockstep checker exists to
// re-execute, so a checking session must simulate even over a warm store
// (while still persisting its fresh results).
func TestCheckModeBypassesStoreLookups(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "519.lbm_r")

	cold := storeSession(t, dir)
	if d := cold.Run(w, abi.Hybrid); d.Err != nil {
		t.Fatal(d.Err)
	}

	checked := storeSession(t, dir)
	checked.Check = true
	checked.Telemetry = telemetry.New()
	if d := checked.Run(w, abi.Hybrid); d.Err != nil {
		t.Fatal(d.Err)
	}
	checked.CloseCheck()
	if st := checked.StoreStats(); st.Hits != 0 {
		t.Errorf("check mode served a stored result: %s", st)
	}
	if v := checked.Telemetry.Metrics.Counter("runs_started").Value(); v != 1 {
		t.Errorf("check mode ran %d simulations, want 1", v)
	}
}

// TestKernelRoundTrips: RunKernel results (counters, heap, revocation
// sweeps) serve identically from a warm store.
func TestKernelRoundTrips(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig(abi.Purecap)
	cfg.TemporalSafety = true
	body := func(m *core.Machine) {
		m.Func("k", 256, 32)
		for i := 0; i < 64; i++ {
			p := m.Alloc(1 << 12)
			m.Store(p, uint64(i), 8)
			m.Free(p)
			m.ALU(4)
		}
	}

	cold := storeSession(t, dir)
	k1, err := cold.RunKernel("test/kernel:v1", cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.StoreStats(); st.Writes != 1 || st.Misses != 1 {
		t.Fatalf("cold kernel stats = %s", st)
	}

	warm := storeSession(t, dir)
	k2, err := warm.RunKernel("test/kernel:v1", cfg, func(m *core.Machine) {
		t.Error("warm kernel body executed")
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.StoreStats(); st.Hits != 1 {
		t.Fatalf("warm kernel stats = %s", st)
	}
	if k1.Counters != k2.Counters || !reflect.DeepEqual(k1.Metrics, k2.Metrics) {
		t.Error("kernel counters/metrics differ between cold and warm")
	}
	if k1.Heap != k2.Heap || k1.Uops != k2.Uops || k1.Cycles() != k2.Cycles() {
		t.Error("kernel heap/uops/cycles differ between cold and warm")
	}
	if !reflect.DeepEqual(k1.Revocations, k2.Revocations) {
		t.Error("revocation sweeps differ between cold and warm")
	}

	// A different configuration is a different kernel.
	other := storeSession(t, dir)
	if _, err := other.RunKernel("test/kernel:v1", core.DefaultConfig(abi.Hybrid), body); err != nil {
		t.Fatal(err)
	}
	if st := other.StoreStats(); st.Hits != 0 {
		t.Errorf("hybrid kernel hit the purecap entry: %s", st)
	}
}

// TestCoRunRoundTrips: a soc co-run is stored as one unit and served
// per-core identical.
func TestCoRunRoundTrips(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "519.lbm_r")
	specs := func() []soc.CoreSpec {
		out := make([]soc.CoreSpec, 2)
		for i := range out {
			out[i] = soc.CoreSpec{
				Config: core.DefaultConfig(abi.Purecap),
				Body:   func(m *core.Machine) { w.Run(m, 1) },
			}
		}
		return out
	}

	cold := storeSession(t, dir)
	r1, err := cold.CoRun("test/corun:x2", specs())
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.StoreStats(); st.Writes != 1 {
		t.Fatalf("cold co-run stats = %s", st)
	}

	warm := storeSession(t, dir)
	r2, err := warm.CoRun("test/corun:x2", specs())
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.StoreStats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm co-run stats = %s", st)
	}
	if len(r1) != len(r2) {
		t.Fatalf("core counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Counters != r2[i].Counters || !reflect.DeepEqual(r1[i].Metrics, r2[i].Metrics) {
			t.Errorf("core %d differs between cold and warm", i)
		}
	}
}

// TestCoRunTopoRoundTrips: a topology co-run is stored as one unit — every
// core's counters plus the fabric's slice/link accounting — and a warm
// session serves both back identical. A different topology is a different
// unit (the fingerprint is part of the key).
func TestCoRunTopoRoundTrips(t *testing.T) {
	dir := t.TempDir()
	w := mustWorkload(t, "llama-matmul")
	specs := func() []soc.CoreSpec {
		out := make([]soc.CoreSpec, 4)
		for i := range out {
			out[i] = soc.CoreSpec{
				Config: core.DefaultConfig(abi.Hybrid),
				Body:   func(m *core.Machine) { w.Run(m, 1) },
			}
		}
		return out
	}
	topo := soc.Topology{Kind: soc.TopoMesh, Cores: 4}

	cold := storeSession(t, dir)
	r1, f1, err := cold.CoRunTopo("test/topo:x4", topo, specs())
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.StoreStats(); st.Writes != 1 {
		t.Fatalf("cold topo co-run stats = %s", st)
	}
	if f1 == nil || f1.Epochs == 0 {
		t.Fatalf("cold run carries no fabric stats: %+v", f1)
	}

	warm := storeSession(t, dir)
	r2, f2, err := warm.CoRunTopo("test/topo:x4", topo, specs())
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.StoreStats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("warm topo co-run stats = %s", st)
	}
	for i := range r1 {
		if r1[i].Counters != r2[i].Counters {
			t.Errorf("core %d differs between cold and warm", i)
		}
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Error("fabric stats differ between cold and warm")
	}

	// Same id on a ring fabric must be a distinct unit, not a stale hit.
	other := storeSession(t, dir)
	if _, _, err := other.CoRunTopo("test/topo:x4", soc.Topology{Kind: soc.TopoRing, Cores: 4}, specs()); err != nil {
		t.Fatal(err)
	}
	if st := other.StoreStats(); st.Hits != 0 || st.Writes != 1 {
		t.Errorf("ring topology reused the mesh entry: %s", st)
	}
}

// TestMetricSnapshotMatchesRenderedMetrics: the golden gate's input must be
// the same numbers the figures render.
func TestMetricSnapshotMatchesRenderedMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign grid")
	}
	s := NewSession(1)
	snap := s.MetricSnapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	w := mustWorkload(t, "519.lbm_r")
	d := s.Run(w, abi.Purecap)
	v, ok := snap["519.lbm_r/purecap"]
	if !ok {
		t.Fatal("snapshot missing 519.lbm_r/purecap")
	}
	if v["ipc"] != d.Metrics.IPC || v["seconds"] != d.Metrics.Seconds {
		t.Errorf("snapshot disagrees with session metrics: %v vs ipc=%v seconds=%v",
			v, d.Metrics.IPC, d.Metrics.Seconds)
	}
}

// TestSupervisorFingerprint pins the key-schema rules the docs state: an
// unsupervised session encodes empty, and every supervision knob changes
// the encoding.
func TestSupervisorFingerprint(t *testing.T) {
	if fp := NewSession(1).supervisorFingerprint(); fp != "" {
		t.Errorf("unsupervised fingerprint = %q, want empty", fp)
	}
	// Retries without chaos or deadline are semantically inert (nothing can
	// be transient), so they must not split the key space.
	plain := NewSession(1)
	plain.Retries = 5
	if fp := plain.supervisorFingerprint(); fp != "" {
		t.Errorf("retries-only fingerprint = %q, want empty", fp)
	}
	seen := map[string]string{}
	add := func(label string, s *Session) {
		fp := s.supervisorFingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share fingerprint %q", prev, label, fp)
		}
		seen[fp] = label
	}
	chaos := func(seed uint64, rate float64) *Session {
		s := NewSession(1)
		s.Chaos = &faultinject.Config{Seed: seed, RatePerMUops: rate, Kinds: faultinject.AllKinds()}
		s.Retries = 2
		return s
	}
	add("chaos-1", chaos(1, 5))
	add("chaos-2", chaos(2, 5))
	add("chaos-rate", chaos(1, 20))
	deadline := NewSession(1)
	deadline.DeadlineUops = 1 << 20
	add("deadline", deadline)
	retried := chaos(1, 5)
	retried.Retries = 3
	add("chaos-retries", retried)
}
