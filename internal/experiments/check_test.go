package experiments

import (
	"strings"
	"testing"
)

// TestFig1UnderCheckHasNoDivergences runs a full figure-1 regeneration with
// the lockstep reference-model checker attached to every machine and
// requires that the optimized cache/TLB/bounds implementations never
// diverge from the naive reference models. This is the end-to-end
// differential test: every memory access and bounds operation the workload
// suite performs is double-checked.
func TestFig1UnderCheckHasNoDivergences(t *testing.T) {
	s := NewSession(1)
	s.Check = true
	defer s.CloseCheck()
	e, _ := ByID("fig1")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.CheckReport()
	if rep.Accesses == 0 {
		t.Fatal("checker observed no operations; the shadow is not attached")
	}
	if rep.Divergences != 0 {
		for _, d := range rep.First {
			t.Errorf("divergence: %s", d)
		}
		t.Fatalf("fig1 under -check: %d divergences in %d operations", rep.Divergences, rep.Accesses)
	}
	t.Logf("fig1 under -check: %d operations verified, 0 divergences", rep.Accesses)

	// The checker is observation-only: rendered output must be identical
	// to an unchecked run.
	plain := NewSession(1)
	ref, err := e.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if out != ref {
		t.Error("checked run rendered different output than unchecked run")
	}
}

// TestMulticoreUnderCheckSharesShadows exercises the shared-LLC co-run
// path: four cores feed one system-level cache, and the checker must
// attach its LLC shadow exactly once while still verifying the private
// L1/L2 and TLBs of every core.
func TestMulticoreUnderCheckSharesShadows(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore co-run is slow")
	}
	s := NewSession(1)
	s.Check = true
	defer s.CloseCheck()
	e, _ := ByID("ext-multicore")
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "co-run") {
		t.Errorf("unexpected ext-multicore output:\n%s", out)
	}
	rep := s.CheckReport()
	if rep.Accesses == 0 {
		t.Fatal("checker observed no operations during the co-run")
	}
	if rep.Divergences != 0 {
		for _, d := range rep.First {
			t.Errorf("divergence: %s", d)
		}
		t.Fatalf("ext-multicore under -check: %d divergences in %d operations", rep.Divergences, rep.Accesses)
	}
}
