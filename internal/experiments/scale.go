package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/pmu"
	"cherisim/internal/report"
	"cherisim/internal/soc"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "scale",
		Title:   "Many-core scale-out: topology-aware fabric co-runs",
		Section: "§2.2 extension (many-core methodology)",
		Run:     runScale,
		// A Manual gate like security: run only via -run scale, never in
		// -all — topology co-runs are not part of the paper's quad-core
		// measurement campaign.
		Manual: true,
	})
}

// scaleWorkload is the kernel every fabric core runs: llama-matmul is
// cache-resident and ~1M µops solo, so even a 64-core co-run stays
// seconds-scale while still spilling enough L2 traffic to exercise the
// sliced LLC and the NoC.
const scaleWorkload = "llama-matmul"

// Default sweep axes; -topology and -cores override them.
var (
	defaultScaleTopos = []string{soc.TopoMesh, soc.TopoRing}
	defaultScaleCores = []int{16, 64}
	scaleABIs         = []abi.ABI{abi.Hybrid, abi.Purecap}
)

// runScale sweeps topology x core-count x ABI over fabric co-runs of the
// scale workload and renders per-cell slowdown against the solo baseline
// together with the fabric's contention accounting. Every cell's fabric
// counters are reconciled on both axes — slice/link tallies against
// per-core port stats, and port stats against the cores' PMU counter
// files — so the rendered contention numbers are conservation-checked,
// not merely plausible.
func runScale(s *Session) (string, error) {
	topos := s.Topologies
	if len(topos) == 0 {
		topos = defaultScaleTopos
	}
	for i, tp := range topos {
		kind, err := soc.ParseTopologyKind(tp)
		if err != nil {
			return "", err
		}
		topos[i] = kind
	}
	coreCounts := s.CoreCounts
	if len(coreCounts) == 0 {
		coreCounts = defaultScaleCores
	}
	for _, n := range coreCounts {
		if n < 1 || n > soc.MaxCores {
			return "", fmt.Errorf("scale: core count %d outside [1, %d]", n, soc.MaxCores)
		}
	}

	w, err := workloads.ByName(scaleWorkload)
	if err != nil {
		return "", err
	}
	spec := func(a abi.ABI) soc.CoreSpec {
		cfg := core.DefaultConfig(a)
		if s.Configure != nil {
			s.Configure(&cfg)
		}
		return soc.CoreSpec{
			Config: cfg,
			// Per-function attribution is off: with up to MaxCores
			// machines alive at once the profile rings dominate memory
			// for numbers the scale tables never render.
			Setup: func(m *core.Machine) { m.DisableProfile() },
			Body:  func(m *core.Machine) { w.Run(m, s.Scale) },
		}
	}
	specsFor := func(a abi.ABI, n int) []soc.CoreSpec {
		specs := make([]soc.CoreSpec, n)
		for i := range specs {
			specs[i] = spec(a)
		}
		return specs
	}

	// Solo baselines: the same body on a single-core fabric (one slice,
	// zero hops), so the slowdown ratio isolates interference.
	solo := make(map[abi.ABI]float64, len(scaleABIs))
	for _, a := range scaleABIs {
		res, _, err := s.CoRunTopo(
			fmt.Sprintf("scale/solo/%s/%s", scaleWorkload, a),
			soc.Topology{Kind: soc.TopoMesh, Cores: 1},
			specsFor(a, 1))
		if err != nil {
			return "", fmt.Errorf("scale solo/%s: %w", a, err)
		}
		if res[0].Err != nil {
			return "", fmt.Errorf("scale solo/%s: %w", a, res[0].Err)
		}
		solo[a] = res[0].Metrics.Seconds
	}

	rep := report.NewScaleReport(scaleWorkload)
	var reconcileErrs []string
	for _, tp := range topos {
		for _, n := range coreCounts {
			for _, a := range scaleABIs {
				topo := soc.Topology{Kind: tp, Cores: n}
				id := fmt.Sprintf("scale/%s/%dx/%s/%s", tp, n, scaleWorkload, a)
				res, fab, err := s.CoRunTopo(id, topo, specsFor(a, n))
				if err != nil {
					return "", fmt.Errorf("%s: %w", id, err)
				}
				cell, errs := scaleCell(tp, a, res, fab, solo[a])
				rep.Add(cell)
				for _, e := range errs {
					reconcileErrs = append(reconcileErrs, fmt.Sprintf("  %s: %s", id, e))
				}
			}
		}
	}

	if s.Telemetry.Enabled() {
		m := s.Telemetry.Metrics
		m.Counter("scale_cells").Add(int64(len(rep.Cells)))
		m.Counter("scale_reconcile_failures").Add(int64(len(reconcileErrs)))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Many-core scale-out: %s on mesh/ring fabrics, %d cells, slowdown vs 1-core solo\n", scaleWorkload, len(rep.Cells))
	b.WriteString("cores run one 8192-µop quantum per epoch concurrently; the epoch barrier weaves\n")
	b.WriteString("buffered slice traffic in a fixed cross-core order, so results are byte-identical\n")
	b.WriteString("for any GOMAXPROCS. Contention = per-epoch slice/link overflow, charged back.\n\n")

	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "topology\tcores\tslices\tabi\tepochs\tslowdown\tworst\tLLC rd MR\thops/acc\tslice-cont\tlink-cont")
	for _, c := range rep.Cells {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%.3fx\t%.3fx\t%.1f%%\t%.2f\t%d\t%d\n",
			c.Topology, c.Cores, c.Slices, c.ABI, c.Epochs,
			c.MeanSlowdown, c.WorstSlowdown, c.LLCReadMR*100,
			c.HopsPerAccess, c.SliceContention, c.LinkContention)
	}
	tw.Flush()

	if len(reconcileErrs) > 0 {
		fmt.Fprintf(&b, "\nfabric accounting FAILED to reconcile (%d):\n%s\n",
			len(reconcileErrs), strings.Join(reconcileErrs, "\n"))
		return b.String(), fmt.Errorf("scale: %d fabric accounting checks failed", len(reconcileErrs))
	}
	fmt.Fprintf(&b, "\nall %d cells reconcile: slice+link tallies == per-core port stats == PMU counter files\n", len(rep.Cells))
	return b.String(), nil
}

// scaleCell folds one co-run into a report cell and verifies the fabric's
// conservation laws against the cores' PMU counter files.
func scaleCell(topoKind string, a abi.ABI, res []CoRunCore, fab *soc.FabricStats, soloSec float64) (report.ScaleCell, []string) {
	var errs []string
	cell := report.ScaleCell{
		Topology: topoKind,
		Cores:    len(res),
		Slices:   fab.Topology.Slices,
		ABI:      a.String(),
		Epochs:   fab.Epochs,
	}
	var worst, meanSum, mrSum float64
	for i, r := range res {
		if r.Err != nil {
			errs = append(errs, fmt.Sprintf("core %d: %v", i, r.Err))
			continue
		}
		ratio := r.Metrics.Seconds / soloSec
		meanSum += ratio
		if ratio > worst {
			worst = ratio
		}
		mrSum += r.Metrics.LLCReadMR
	}
	cell.MeanSlowdown = meanSum / float64(len(res))
	cell.WorstSlowdown = worst
	cell.LLCReadMR = mrSum / float64(len(res))

	sliceAcc, coreAcc, linkTrav, coreHops := fab.Totals()
	cell.Accesses = sliceAcc
	if coreAcc > 0 {
		cell.HopsPerAccess = float64(coreHops) / float64(coreAcc)
	}
	_ = linkTrav
	for i := range fab.Slices {
		cell.SliceContention += fab.Slices[i].ContentionCycles
	}
	for i := range fab.Links {
		cell.LinkContention += fab.Links[i].ContentionCycles
	}

	if err := fab.Reconcile(); err != nil {
		errs = append(errs, err.Error())
	}
	// Port stats vs PMU: both sides count the same post-L2 read stream.
	for i, r := range res {
		p := fab.Cores[i]
		if rd := r.Counters.Get(pmu.LL_CACHE_RD); rd != p.Reads {
			errs = append(errs, fmt.Sprintf("core %d: port reads %d vs PMU LL_CACHE_RD %d", i, p.Reads, rd))
		}
		if ms := r.Counters.Get(pmu.LL_CACHE_MISS_RD); ms != p.ReadMisses {
			errs = append(errs, fmt.Sprintf("core %d: port read misses %d vs PMU LL_CACHE_MISS_RD %d", i, p.ReadMisses, ms))
		}
	}
	return cell, errs
}
