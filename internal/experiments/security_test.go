package experiments

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/attacks"
	"cherisim/internal/core"
	"cherisim/internal/resultstore"
	"cherisim/internal/telemetry"
	"cherisim/internal/workloads"
)

// TestSecurityVerdictsMatchSpec is the oracle's happy path: the full
// corpus renders with every verdict matching its expected-outcome spec, so
// runSecurity returns no error.
func TestSecurityVerdictsMatchSpec(t *testing.T) {
	out, err := runSecurity(NewSession(1))
	if err != nil {
		t.Fatalf("security verdicts diverged:\n%s\nerror: %v", out, err)
	}
	if !strings.Contains(out, "all 30 verdicts match the expected-outcome spec") {
		t.Fatalf("missing all-match summary:\n%s", out)
	}
	if !strings.Contains(out, "silent corruptions witnessed") {
		t.Fatalf("missing witnessed-corruption section:\n%s", out)
	}
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("diverged cell in a clean run:\n%s", out)
	}
}

// TestSecurityDeterminism: rendered output must be byte-identical across
// worker-pool widths and across repeated cold invocations.
func TestSecurityDeterminism(t *testing.T) {
	render := func(jobs int) string {
		s := NewSession(1)
		s.Jobs = jobs
		out, err := runSecurity(s)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return out
	}
	serial := render(1)
	if parallel := render(4); parallel != serial {
		t.Fatalf("output depends on -jobs:\n-- jobs 1 --\n%s\n-- jobs 4 --\n%s", serial, parallel)
	}
	if again := render(1); again != serial {
		t.Fatalf("two cold invocations differ:\n-- first --\n%s\n-- second --\n%s", serial, again)
	}
}

// TestSecuritySelection: Session.Attacks restricts the matrix, and an
// invalid selection is an error, not a silently smaller gate.
func TestSecuritySelection(t *testing.T) {
	s := NewSession(1)
	s.Attacks = []string{"subobject"}
	out, err := runSecurity(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 attacks x 3 ABIs") || !strings.Contains(out, "all 3 verdicts") {
		t.Fatalf("selection not applied:\n%s", out)
	}
	s = NewSession(1)
	s.Attacks = []string{"subobject", ""}
	if _, err := runSecurity(s); err == nil || !strings.Contains(err.Error(), "segment 2") {
		t.Fatalf("stray empty selection accepted: %v", err)
	}
}

// TestSecurityStoreRoundTrip: a warm store must serve every security
// measurement from disk — zero simulations — with byte-identical rendering,
// and a SurviveCorrupted run reloaded warm must carry the same verdict and
// canary mismatch detail as the cold run.
func TestSecurityStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(1)
	s.Store = st
	cold, err := runSecurity(s)
	if err != nil {
		t.Fatal(err)
	}
	if w := st.Stats().Writes; w == 0 {
		t.Fatal("cold run persisted nothing")
	}

	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(1)
	s2.Store = st2
	warm, err := runSecurity(s2)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Fatalf("warm render differs from cold:\n-- cold --\n%s\n-- warm --\n%s", cold, warm)
	}
	stats := st2.Stats()
	if stats.Hits == 0 || stats.Misses != 0 || stats.Writes != 0 {
		t.Fatalf("warm run was not fully served from disk: %+v", stats)
	}
}

// runAttack executes one attack cell through a session the way runSecurity
// does (attack Configure composed in).
func runAttack(t *testing.T, s *Session, name string, ab abi.ABI) *RunData {
	t.Helper()
	a, err := attacks.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	s.Configure = a.Configure
	return s.Run(a.Workload, ab)
}

// TestSecurityWitnessRoundTrip pins the satellite requirement at the
// RunData level: a SurviveCorrupted cell and a Trap cell reloaded from a
// warm store must classify identically to the cold run, with the canary
// witness (mismatch extent included) deep-equal.
func TestSecurityWitnessRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		attack string
		ab     abi.ABI
		want   attacks.OutcomeKind
	}{
		{"uaf", abi.Hybrid, attacks.SurviveCorrupted},
		{"uaf", abi.Purecap, attacks.Trap},
		{"subobject", abi.Purecap, attacks.SurviveCorrupted},
	} {
		dir := t.TempDir()
		st, err := resultstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(1)
		s.Store = st
		coldD := runAttack(t, s, tc.attack, tc.ab)

		st2, err := resultstore.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s2 := NewSession(1)
		s2.Store = st2
		warmD := runAttack(t, s2, tc.attack, tc.ab)
		if st2.Stats().Hits == 0 {
			t.Fatalf("%s/%s: warm run did not hit the store", tc.attack, tc.ab)
		}

		coldV := attacks.Classify(coldD.Err, coldD.Witness)
		warmV := attacks.Classify(warmD.Err, warmD.Witness)
		if coldV.Kind != tc.want {
			t.Fatalf("%s/%s: cold verdict %s, want kind %v", tc.attack, tc.ab, coldV, tc.want)
		}
		if coldV != warmV {
			t.Fatalf("%s/%s: warm verdict %s differs from cold %s", tc.attack, tc.ab, warmV, coldV)
		}
		if !reflect.DeepEqual(coldD.Witness, warmD.Witness) {
			t.Fatalf("%s/%s: witness detail diverged:\ncold: %+v\nwarm: %+v",
				tc.attack, tc.ab, coldD.Witness, warmD.Witness)
		}
		if tc.want == attacks.Trap {
			var cf, wf *core.Fault
			if !errors.As(coldD.Err, &cf) || !errors.As(warmD.Err, &wf) || cf.Kind != wf.Kind {
				t.Fatalf("%s/%s: stored fault did not round-trip: cold %v warm %v",
					tc.attack, tc.ab, coldD.Err, warmD.Err)
			}
		}
	}
}

// TestAttackRunsBypassReplay is the satellite bypass proof, modeled on
// TestSupervisedAndCheckedRunsBypassReplay: attack workloads are Live, so
// three fault-free hybrid runs — which would sight, record and replay an
// ordinary workload — must never touch the fast path.
func TestAttackRunsBypassReplay(t *testing.T) {
	ResetReplay()
	defer ResetReplay()

	w, err := workloads.ByName("attack:oob-read")
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ { // would sight+record+replay if eligible
		s := NewSession(1)
		d := s.Run(w, abi.Hybrid)
		if d == nil || d.Err != nil {
			t.Fatalf("run %d: %+v", run, d)
		}
		if d.Witness == nil || !d.Witness.Planted {
			t.Fatalf("run %d: missing canary witness", run)
		}
	}
	if st := ReplayStats(); st.Records != 0 || st.Replays != 0 {
		t.Fatalf("attack runs touched the fast path: %+v", st)
	}
}

// TestSecurityTelemetryCounters: the oracle reports its verdict tallies on
// the hub's counters.
func TestSecurityTelemetryCounters(t *testing.T) {
	hub := telemetry.New()
	s := NewSession(1)
	s.Telemetry = hub
	s.Attacks = []string{"oob-read", "uaf"}
	if _, err := runSecurity(s); err != nil {
		t.Fatal(err)
	}
	counter := func(name string) int64 { return hub.Metrics.Counter(name).Value() }
	if got := counter("attacks_run"); got != 6 {
		t.Fatalf("attacks_run = %d, want 6", got)
	}
	if got := counter("verdicts_expected"); got != 6 {
		t.Fatalf("verdicts_expected = %d, want 6", got)
	}
	if got := counter("verdicts_diverged"); got != 0 {
		t.Fatalf("verdicts_diverged = %d, want 0", got)
	}
	if got := counter("silent_corruptions"); got != 1 { // uaf/hybrid
		t.Fatalf("silent_corruptions = %d, want 1", got)
	}
}
