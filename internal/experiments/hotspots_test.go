package experiments

import (
	"strings"
	"sync"
	"testing"

	"cherisim/internal/abi"
	"cherisim/internal/telemetry"
	"cherisim/internal/workloads"
)

// TestProfileRunSingleflight: concurrent ProfileRun calls for the same pair
// share one execution (and one profile value).
func TestProfileRunSingleflight(t *testing.T) {
	s := NewSession(1)
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	profs := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := s.ProfileRun(w, abi.Purecap)
			if err != nil {
				t.Error(err)
				return
			}
			profs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if profs[i] != profs[0] {
			t.Fatal("concurrent callers did not share one profile")
		}
	}
}

// TestProfileRunWarmFromStore: a second session over the same store serves
// every profile from disk — zero misses — and the profiles (and therefore
// the rendered hotspot report) are identical.
func TestProfileRunWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	w, err := workloads.ByName("sqlite")
	if err != nil {
		t.Fatal(err)
	}

	cold := storeSession(t, dir)
	pc, err := cold.ProfileRun(w, abi.Purecap)
	if err != nil {
		t.Fatal(err)
	}
	st := cold.StoreStats()
	if st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("cold profile run: %+v, want 1 miss, 1 write", st)
	}

	warm := storeSession(t, dir)
	warm.Telemetry = telemetry.New()
	pw, err := warm.ProfileRun(w, abi.Purecap)
	if err != nil {
		t.Fatal(err)
	}
	st = warm.StoreStats()
	if st.Hits != 1 || st.Misses != 0 || st.Writes != 0 {
		t.Fatalf("warm profile run: %+v, want 1 hit, 0 misses, 0 writes", st)
	}
	if pc.Totals != pw.Totals || pc.TotalEvents != pw.TotalEvents ||
		len(pc.Functions) != len(pw.Functions) || pc.Residual != pw.Residual {
		t.Fatal("warm profile differs from cold profile")
	}
	for i := range pc.Functions {
		if pc.Functions[i] != pw.Functions[i] {
			t.Fatalf("function %d differs across the store round trip", i)
		}
	}

	// Served profiles feed the same telemetry as live ones.
	m := warm.Telemetry.Metrics
	if got := m.Counter("profile_runs").Value(); got != 1 {
		t.Errorf("profile_runs = %d, want 1", got)
	}
	if got := m.Counter("profile_functions").Value(); got != int64(len(pw.Functions)) {
		t.Errorf("profile_functions = %d, want %d", got, len(pw.Functions))
	}
	if m.Counter("profile_uops_attributed").Value() <= 0 {
		t.Error("profile_uops_attributed not incremented")
	}
	if warm.Telemetry.Profiles.Len() != 1 {
		t.Error("profile not published to the hub's profile store")
	}
}

// TestHotspotsRender: the experiment renders one table per top-down
// workload with the residual row available and a deterministic shape.
func TestHotspotsRender(t *testing.T) {
	e, err := ByID("hotspots")
	if err != nil {
		t.Fatal(err)
	}
	if e.Manual {
		t.Fatal("hotspots must render in the -all campaign")
	}
	s := NewSession(1)
	out, err := e.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.TopDownSet() {
		if !strings.Contains(out, "\n"+w.Name+":\n") {
			t.Errorf("report lacks a section for %s", w.Name)
		}
	}
	if !strings.Contains(out, "grew in") {
		t.Error("report lacks the growth-category column")
	}
	// hotspots sorts after every other renderable experiment, so the -all
	// campaign's existing prefix stays byte-identical.
	all := Renderable()
	if all[len(all)-1].ID != "hotspots" {
		t.Errorf("hotspots is not the last renderable experiment: %s", all[len(all)-1].ID)
	}
}
