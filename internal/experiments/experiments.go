package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one regenerable artefact of the paper's evaluation.
type Experiment struct {
	// ID is the short handle used by cmd/experiments (-run fig1).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Section points at the paper text the artefact appears in.
	Section string
	// Run executes the experiment against a measurement session and
	// returns the rendered report.
	Run func(s *Session) (string, error)
	// Pairs, when set, declares the (workload, ABI) measurements Run will
	// ask the session for, so a caller can Prefetch them across the worker
	// pool before rendering. Nil means the experiment needs no session
	// measurements (or manages its own machines).
	Pairs func() []Pair
	// Manual marks experiments that run only when named explicitly
	// (-run <id>), never as part of the -all campaign: the security
	// experiment is a gate with its own exit semantics, not a paper
	// artefact, and must leave campaign output untouched.
	Manual bool
}

// UnionPairs returns the deduplicated union of the given experiments'
// declared measurement pairs, in first-declaration order.
func UnionPairs(exps []*Experiment) []Pair {
	seen := map[string]bool{}
	var out []Pair
	for _, e := range exps {
		if e.Pairs == nil {
			continue
		}
		for _, p := range e.Pairs() {
			if p.Workload == nil {
				continue
			}
			key := p.Workload.Name + "/" + p.ABI.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}

// Select resolves experiment handles into experiments, in All() order —
// the strict sibling of ByID for comma-split user input (the campaign
// service's submission validation). An empty list selects the -all set
// (Renderable()); naming a Manual experiment explicitly is allowed, the
// same way -run is. Duplicates collapse; any unknown or empty handle is an
// error before anything runs.
func Select(names []string) ([]*Experiment, error) {
	if len(names) == 0 {
		return Renderable(), nil
	}
	seen := map[string]bool{}
	for i, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("experiments: empty experiment name in segment %d of %v (stray comma?)", i+1, names)
		}
		if _, err := ByID(n); err != nil {
			return nil, err
		}
		seen[n] = true
	}
	var out []*Experiment
	for _, e := range All() {
		if seen[e.ID] {
			out = append(out, e)
		}
	}
	return out, nil
}

// RenderError pairs a failed experiment with its error, for the degraded
// campaign summary.
type RenderError struct {
	ID  string
	Err error
}

// RenderAll runs every experiment against s in degraded mode: the full
// measurement grid is prefetched across the worker pool, every experiment
// that renders is written to out (same bytes as rendering them one by one),
// and the ones that fail are collected — not fatal — so one crashed or
// injected-away measurement cannot abort the rest of the campaign.
func RenderAll(s *Session, out io.Writer) []RenderError {
	return RenderSelected(s, out, Renderable(), nil)
}

// RenderSelected is RenderAll over an explicit experiment list (Select):
// the selection's measurement grid is prefetched across the worker pool,
// each experiment that renders is written to out in the given order with
// the same framing bytes RenderAll emits, and failures are collected, not
// fatal. onExperiment, when non-nil, is called after each experiment
// finishes (rendered or failed) — the campaign service's per-experiment
// progress feed.
func RenderSelected(s *Session, out io.Writer, exps []*Experiment, onExperiment func(*Experiment, error)) []RenderError {
	s.Prefetch(UnionPairs(exps))
	obs := s.campaignObserver()
	var failed []RenderError
	for _, e := range exps {
		sp := obs.experimentSpan(e)
		txt, err := e.Run(s)
		obs.experimentEnd(sp, e, err)
		if onExperiment != nil {
			onExperiment(e, err)
		}
		if err != nil {
			failed = append(failed, RenderError{ID: e.ID, Err: err})
			continue
		}
		fmt.Fprintf(out, "== %s: %s (%s) ==\n%s\n", e.ID, e.Title, e.Section, txt)
	}
	return failed
}

var registry = map[string]*Experiment{}
var order []string

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// ByID returns the experiment with the given handle.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists every experiment handle in registration order.
func IDs() []string {
	out := append([]string(nil), order...)
	return out
}

// All returns every experiment in a stable order: figures and tables in
// paper order first, then ablations and claims.
func All() []*Experiment {
	ids := IDs()
	sort.SliceStable(ids, func(i, j int) bool { return rank(ids[i]) < rank(ids[j]) })
	var out []*Experiment
	for _, id := range ids {
		out = append(out, registry[id])
	}
	return out
}

// Renderable returns the experiments the -all campaign runs, in All()
// order: everything except the Manual gates.
func Renderable() []*Experiment {
	var out []*Experiment
	for _, e := range All() {
		if !e.Manual {
			out = append(out, e)
		}
	}
	return out
}

func rank(id string) int {
	for i, want := range []string{
		"table1", "table2", "fig1", "fig2", "table3", "fig3", "table4",
		"fig4", "fig5", "fig6", "fig7", "claims",
	} {
		if id == want {
			return i
		}
	}
	// hotspots renders last: it appends to the campaign report without
	// perturbing the byte-identical prefix earlier sections pin.
	if id == "hotspots" {
		return 200
	}
	return 100
}
