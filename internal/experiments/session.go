// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): each experiment is a named runner that executes the
// needed (workload, ABI) combinations on the simulated Morello platform,
// derives the paper's metrics, and renders the same rows/series the paper
// reports, annotated with the paper's values where it states them.
package experiments

import (
	"sync"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/core"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

// RunData is the retained outcome of one workload execution.
type RunData struct {
	Counters pmu.Counters
	Metrics  metrics.Metrics
	Topdown  topdown.Breakdown
	Heap     alloc.Stats
	Err      error
}

// Session caches workload runs so experiments that share measurements
// (e.g. Figure 1 and Table 3) execute each (workload, ABI) pair once, the
// way the paper reuses one measurement campaign across its analyses.
type Session struct {
	// Scale multiplies every workload's iteration counts.
	Scale int
	// Configure, when set, adjusts the machine configuration before a run
	// (used by ablation experiments).
	Configure func(*core.Config)

	mu    sync.Mutex
	cache map[string]*RunData
}

// NewSession creates a measurement session at the given workload scale.
func NewSession(scale int) *Session {
	if scale < 1 {
		scale = 1
	}
	return &Session{Scale: scale, cache: make(map[string]*RunData)}
}

// Run returns the (cached) outcome of executing workload w under ABI a.
func (s *Session) Run(w *workloads.Workload, a abi.ABI) *RunData {
	key := w.Name + "/" + a.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.cache[key]; ok {
		return d
	}
	cfg := core.DefaultConfig(a)
	if s.Configure != nil {
		s.Configure(&cfg)
	}
	m, err := workloads.ExecuteConfig(w, cfg, s.Scale)
	d := &RunData{Err: err}
	if m != nil {
		d.Counters = m.C
		d.Metrics = metrics.Compute(&m.C)
		d.Topdown = topdown.Analyze(&m.C)
		d.Heap = m.Heap.Stats()
	}
	s.cache[key] = d
	return d
}

// RunByName is Run with a workload name lookup.
func (s *Session) RunByName(name string, a abi.ABI) (*RunData, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return s.Run(w, a), nil
}

// Seconds returns the simulated execution time for (w, a), or NaN-free 0
// when the run faulted.
func (s *Session) Seconds(w *workloads.Workload, a abi.ABI) float64 {
	d := s.Run(w, a)
	if d.Err != nil {
		return 0
	}
	return d.Metrics.Seconds
}

// Overhead returns time(a)/time(hybrid) for workload w.
func (s *Session) Overhead(w *workloads.Workload, a abi.ABI) float64 {
	hy := s.Seconds(w, abi.Hybrid)
	if hy == 0 {
		return 0
	}
	return s.Seconds(w, a) / hy
}
