// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): each experiment is a named runner that executes the
// needed (workload, ABI) combinations on the simulated Morello platform,
// derives the paper's metrics, and renders the same rows/series the paper
// reports, annotated with the paper's values where it states them.
package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cherisim/internal/abi"
	"cherisim/internal/alloc"
	"cherisim/internal/cache"
	"cherisim/internal/check"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/metrics"
	"cherisim/internal/pmu"
	"cherisim/internal/replay"
	"cherisim/internal/resultstore"
	"cherisim/internal/telemetry"
	"cherisim/internal/topdown"
	"cherisim/internal/workloads"
)

// RunData is the retained outcome of one workload execution.
type RunData struct {
	Counters pmu.Counters
	Metrics  metrics.Metrics
	Topdown  topdown.Breakdown
	Heap     alloc.Stats
	Err      error
	// Attempts counts executions of this pair: 1 for an undisturbed run,
	// more when transient injected faults were retried. Counters and
	// Injected describe the final attempt.
	Attempts int
	// Uops is the number of classified µops the final attempt executed
	// (covers the prefix up to the fault for failed runs).
	Uops uint64
	// Injected lists the fault injections performed during the final
	// attempt (nil when the session runs without chaos).
	Injected []faultinject.Event
	// Witness is the corruption witness of an attack-corpus run: the
	// workload's Canary hook re-derives the seeded checksum over the
	// canary region the kernel planted (nil for workloads without one).
	// See internal/attacks.
	Witness *workloads.CanaryReport
	// hasMachine records whether a machine produced Counters/Heap/Uops (a
	// panic before machine construction leaves them zero without one); the
	// result store needs the distinction to round-trip failed runs.
	hasMachine bool
}

// Pair names one (workload, ABI) measurement of the campaign grid.
type Pair struct {
	Workload *workloads.Workload
	ABI      abi.ABI
}

// inflight is one singleflight cell: the first caller of a key owns the
// execution and closes done; every later caller blocks on done and shares
// the same RunData.
type inflight struct {
	done chan struct{}
	data *RunData
}

// runKey identifies one (workload, ABI) singleflight cell. A composite
// struct key instead of a concatenated string keeps the cached-run hot
// path allocation-free (the guard BenchmarkSessionTelemetryOff pins this).
type runKey struct {
	workload string
	abi      abi.ABI
}

// Session caches workload runs so experiments that share measurements
// (e.g. Figure 1 and Table 3) execute each (workload, ABI) pair once, the
// way the paper reuses one measurement campaign across its analyses.
//
// The session is safe for concurrent use: callers of the same
// (workload, ABI) key are deduplicated onto a single in-flight execution
// (singleflight), while distinct keys execute concurrently, bounded by a
// worker pool of min(GOMAXPROCS, Jobs) simulated machines. Each execution
// builds a private core.Machine, so parallel runs are deterministic and
// their cached results are independent of scheduling order.
type Session struct {
	// Scale multiplies every workload's iteration counts.
	Scale int
	// Configure, when set, adjusts the machine configuration before a run
	// (used by ablation experiments).
	Configure func(*core.Config)
	// Jobs caps the number of concurrently executing workloads. Values
	// <= 0 default to GOMAXPROCS; the effective pool size is
	// min(GOMAXPROCS, Jobs). Set it before the first Run/Prefetch call.
	Jobs int

	// Chaos, when non-nil, attaches a deterministic fault injector to
	// every run. Each (workload, ABI, attempt) cell derives its own seed
	// from Chaos.Seed, so campaign results are order-independent and
	// reproducible. See internal/faultinject.
	Chaos *faultinject.Config
	// ChaosSeed is the campaign seed the resilience experiment sweeps
	// with; it applies even when Chaos is nil (0 means 1).
	ChaosSeed uint64
	// DeadlineUops, when > 0, bounds every run's executed µops: the
	// watchdog aborts a run crossing the budget with a *core.DeadlineError
	// instead of letting a runaway workload stall the campaign.
	DeadlineUops uint64
	// Retries bounds the deterministic re-execution of runs that failed
	// with a transient injected fault (core.IsTransient). Fatal capability
	// violations, deadlines and panics are never retried.
	Retries int

	// NoReplay opts this session out of the record-and-replay fast path
	// (see internal/replay): every run executes its kernel live. Supervised
	// sessions (Chaos, DeadlineUops, Check) are always on the live path
	// regardless — fault injection and lockstep shadowing must observe
	// every event. The -no-replay flag disables the fast path globally via
	// SetReplayEnabled instead.
	NoReplay bool

	// Attacks, when non-empty, restricts the security experiment to the
	// named attack-corpus entries (see internal/attacks). Other
	// experiments ignore it.
	Attacks []string

	// Topologies, when non-empty, restricts the scale experiment to the
	// named fabric topologies ("mesh", "ring"). Other experiments ignore
	// it.
	Topologies []string
	// CoreCounts, when non-empty, overrides the scale experiment's
	// core-count sweep. Other experiments ignore it.
	CoreCounts []int

	// Check, when true, runs every measurement under the lockstep
	// reference-model harness: each machine's caches and TLBs get a naive
	// shadow model diffed after every operation, and every bounds
	// compression is re-derived in big-integer arithmetic (see
	// internal/check). Divergences never abort a run — they are collected
	// and reported via CheckReport, and counted on the check_divergences
	// telemetry counter. Set it before the first Run/Prefetch call.
	Check bool

	// Store, when non-nil, is the persistent result cache: Run consults it
	// before simulating (unless Check is set — checked runs must execute)
	// and persists every finished result, so a warm campaign resumes from
	// disk. The nil store is inert. Set it before the first Run/Prefetch
	// call. See internal/resultstore.
	Store *resultstore.Store

	// Telemetry, when non-nil, receives spans, metrics and logs for every
	// supervised run: a campaign-root span with per-worker run/attempt
	// spans under it, injected faults as instant events, and the engine's
	// counter/gauge/histogram set (see internal/telemetry). Nil (the
	// default) keeps the engine inert: the hot path costs one pointer test,
	// allocates nothing, and rendered output is byte-identical. Set it
	// before the first Run/Prefetch call.
	Telemetry *telemetry.Hub

	mu       sync.Mutex
	flight   map[runKey]*inflight
	pflight  map[runKey]*profFlight // attribution-profile singleflight (see hotspots.go)
	sem      chan int               // worker-ID pool: receiving acquires a slot + identity
	obs      *runObserver
	checkCol *check.Collector
	execs    atomic.Uint64 // machine executions (simulated or replayed), not store hits
}

// NewSession creates a measurement session at the given workload scale.
func NewSession(scale int) *Session {
	if scale < 1 {
		scale = 1
	}
	return &Session{Scale: scale, flight: make(map[runKey]*inflight)}
}

// pool returns the worker-pool semaphore, building it on first use. The
// channel is pre-filled with worker IDs, so acquiring a slot also names
// the worker — the identity telemetry renders as one trace track per
// worker. Callers must hold s.mu.
func (s *Session) pool() chan int {
	if s.sem == nil {
		n := s.Jobs
		if g := runtime.GOMAXPROCS(0); n <= 0 || n > g {
			n = g
		}
		s.sem = NewFleet(n)
	}
	if obs := s.observer(); obs != nil {
		obs.poolWorkers.Set(int64(cap(s.sem)))
	}
	return s.sem
}

// NewFleet builds a worker-ID pool of n slots (1 when n < 1): a channel
// pre-filled with worker identities, the same structure pool() builds
// privately. A fleet handed to several sessions via SharePool bounds their
// combined concurrency — the campaign service runs every submission on its
// own Session but one shared fleet, so tenants compete for simulation
// workers instead of multiplying them.
func NewFleet(n int) chan int {
	if n < 1 {
		n = 1
	}
	p := make(chan int, n)
	for i := 0; i < n; i++ {
		p <- i
	}
	return p
}

// SharePool attaches a pre-built worker fleet (NewFleet) to the session in
// place of its private pool. Must be called before the first
// Run/Prefetch/ProfileRun; a nil fleet is ignored.
func (s *Session) SharePool(p chan int) {
	if p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sem = p
}

// Executions returns how many machine executions (live or replayed) the
// session has performed — store-served runs do not count. A warm campaign
// over a populated store reports 0.
func (s *Session) Executions() uint64 { return s.execs.Load() }

// observer returns the session's telemetry observer, building it on first
// use; nil when telemetry is disabled. Callers must hold s.mu.
func (s *Session) observer() *runObserver {
	if s.obs == nil && s.Telemetry.Enabled() {
		s.obs = newRunObserver(s.Telemetry)
	}
	return s.obs
}

// campaignObserver exposes the session's observer to campaign-level
// instrumentation (RenderAll's experiment spans); nil when telemetry is
// off.
func (s *Session) campaignObserver() *runObserver {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.observer()
}

// shareTelemetryWith attaches s to parent's telemetry: same hub and same
// observer, so the runs of a derived sub-session (the resilience sweep's
// per-rate sessions) nest under the parent's campaign-root span and feed
// one shared metric set instead of opening a second dangling root.
func (s *Session) shareTelemetryWith(parent *Session) {
	s.Telemetry = parent.Telemetry
	s.obs = parent.campaignObserver()
	s.Check = parent.Check
	s.checkCol = parent.checkCollector()
}

// checkCollector returns the session's lockstep collector, building it on
// first use; nil when checking is off.
func (s *Session) checkCollector() *check.Collector {
	if !s.Check {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.checkCol == nil {
		s.checkCol = check.NewCollector(s.Telemetry)
		s.checkCol.EnableBounds()
	}
	return s.checkCol
}

// MachineSetup returns the per-machine hook the session installs on its own
// runs, for experiments that build machines outside the session (the soc
// co-runs); nil when lockstep checking is off.
func (s *Session) MachineSetup() func(*core.Machine) {
	col := s.checkCollector()
	if col == nil {
		return nil
	}
	return func(m *core.Machine) { col.AttachMachine(m) }
}

// sliceSetup returns the per-slice hook the session installs on topology
// co-runs — the lockstep checker shadows every LLC slice (safe under the
// parallel weave: each slice's checker is only driven by the goroutine
// merging that slice, and the collector is concurrency-safe). Nil when
// checking is off.
func (s *Session) sliceSetup() func(int, *cache.Cache) {
	col := s.checkCollector()
	if col == nil {
		return nil
	}
	return func(slice int, c *cache.Cache) { check.AttachCache(col, c) }
}

// CheckReport summarizes the lockstep checker's results so far. The zero
// Report when checking is off.
func (s *Session) CheckReport() check.Report {
	s.mu.Lock()
	col := s.checkCol
	s.mu.Unlock()
	if col == nil {
		return check.Report{}
	}
	return col.Report()
}

// CloseCheck detaches the session's collector from the process-global
// bounds observer. Call it when the campaign is done and the report has
// been read; idempotent and a no-op when checking is off.
func (s *Session) CloseCheck() {
	s.mu.Lock()
	col := s.checkCol
	s.mu.Unlock()
	if col != nil {
		col.Close()
	}
}

// FinishTelemetry ends the session's campaign-root span so every span is
// published to the collector before a trace export. Idempotent; a no-op
// without telemetry.
func (s *Session) FinishTelemetry() {
	s.mu.Lock()
	obs := s.obs
	s.mu.Unlock()
	obs.finish()
}

// Run returns the (cached) outcome of executing workload w under ABI a.
// Concurrent calls for the same pair share one execution; calls for
// different pairs proceed in parallel up to the worker-pool bound.
func (s *Session) Run(w *workloads.Workload, a abi.ABI) *RunData {
	key := runKey{workload: w.Name, abi: a}
	s.mu.Lock()
	if s.flight == nil {
		s.flight = make(map[runKey]*inflight)
	}
	if c, ok := s.flight[key]; ok {
		obs := s.obs
		s.mu.Unlock()
		obs.sfHit()
		<-c.done
		return c.data
	}
	c := &inflight{done: make(chan struct{})}
	s.flight[key] = c
	sem := s.pool()
	obs := s.obs // built by pool() when telemetry is on
	s.mu.Unlock()

	// Persistent-store lookup, before a worker slot is taken: a served
	// entry costs one file read, no simulation and no pool contention.
	var sk resultstore.Key
	if s.Store != nil {
		sk = s.runStoreKey(w, a)
		if d, ok := s.loadRun(sk, obs); ok {
			c.data = d
			close(c.done)
			return c.data
		}
	}

	worker := <-sem // acquire a worker-pool slot (and its identity)
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	span := obs.runStart(w, a, s.Scale, worker)
	c.data = s.execute(w, a, obs, span)
	if obs != nil {
		obs.runEnd(span, c.data, time.Since(t0))
	}
	s.saveRun(sk, c.data, obs)
	sem <- worker
	close(c.done)
	return c.data
}

// execute performs one supervised workload run: up to 1+Retries attempts
// on fresh machines, retrying only transient injected faults. The retry
// schedule is deterministic — attempt k of a pair always replays the same
// fault schedule, independent of pool scheduling (and of whether telemetry
// observes it).
func (s *Session) execute(w *workloads.Workload, a abi.ABI, obs *runObserver, run *telemetry.Span) *RunData {
	for attempt := 0; ; attempt++ {
		att := obs.attemptStart(run, attempt)
		d := s.executeOnce(w, a, attempt, obs, att)
		d.Attempts = attempt + 1
		if d.Err == nil || attempt >= s.Retries || !core.IsTransient(d.Err) {
			obs.attemptEnd(att, d, false)
			return d
		}
		obs.attemptEnd(att, d, true)
	}
}

// executeOnce performs one uncached workload run on a fresh machine,
// installing the watchdog/injector quantum hook when the session is
// configured for supervision.
func (s *Session) executeOnce(w *workloads.Workload, a abi.ABI, attempt int, obs *runObserver, att *telemetry.Span) *RunData {
	s.execs.Add(1)
	cfg := core.DefaultConfig(a)
	if s.Configure != nil {
		s.Configure(&cfg)
	}
	supervised := s.Chaos != nil || s.DeadlineUops > 0

	// Record-and-replay fast path (internal/replay): unsupervised,
	// uncheckered runs of non-Live workloads replay a previously recorded
	// event stream for the same (workload, ABI, scale, heap-shaping) key — bit-identical
	// counters without interpreting the kernel. Recording is demand-driven
	// (see replay.Cache): a key's second miss proves the campaign
	// re-requests it (ablation sessions re-measuring the grid under
	// modified timing models), so that execution records its stream and
	// every later request replays.
	// Live workloads (the attack corpus) never record or replay: their
	// kernels trap mid-run under some ABIs and their machines carry
	// post-run state (the canary witness) that a replayed stream would
	// not reproduce.
	fast := s.replayEligible() && !supervised && !w.Live
	var rkey replay.Key
	var record bool
	if fast {
		var t *replay.Trace
		rkey = replay.KeyFor(w.Name, s.Scale, &cfg)
		if t, record = replayCache.Lookup(rkey); t != nil {
			m := core.NewMachine(cfg)
			m.DisableProfile()
			if err := replay.Run(m, t); err == nil {
				obs.replayed(att, t)
				return runDataOf(m, nil, nil)
			}
			// A replay error means the trace cannot be trusted (it cannot
			// legitimately happen: recorded runs were fault-free and
			// deterministic). Demote the key to the live path.
			replayCache.Drop(rkey)
		}
	}

	var inj *faultinject.Injector
	var setup func(*core.Machine)
	if supervised {
		inj, setup = s.supervisedSetup(w, a, attempt, obs, att)
	}
	if col := s.checkCollector(); col != nil {
		inner := setup
		setup = func(m *core.Machine) {
			col.AttachMachine(m)
			if inner != nil {
				inner(m)
			}
		}
	}
	var rec *replay.Recorder
	if record {
		rec = replay.NewRecorder()
	}
	inner := setup
	setup = func(m *core.Machine) {
		// Nothing in the harness reads per-function profiles; skipping
		// attribution changes no counter or metric (see DisableProfile).
		m.DisableProfile()
		if rec != nil {
			m.SetReplaySink(rec)
		}
		if inner != nil {
			inner(m)
		}
	}
	m, err := workloads.ExecuteHooked(w, cfg, s.Scale, setup)
	if rec != nil && err == nil && m != nil {
		if t := rec.Finish(m.Uops()); replayCache.Put(rkey, t) {
			obs.recorded(t)
		}
	}
	var injected []faultinject.Event
	if inj != nil {
		injected = inj.Events()
	}
	d := runDataOf(m, err, injected)
	if w.Canary != nil && m != nil {
		wr := w.Canary(m)
		d.Witness = &wr
	}
	return d
}

// supervisedSetup builds one attempt's supervision: the deterministic fault
// injector (when the session runs chaos) and the quantum hook that drives
// the watchdog and the injector. Shared by the measurement path
// (executeOnce) and the profiled path (profileOnce), so both observe the
// same fault schedule for the same (workload, ABI, attempt) cell.
func (s *Session) supervisedSetup(w *workloads.Workload, a abi.ABI, attempt int, obs *runObserver, att *telemetry.Span) (*faultinject.Injector, func(*core.Machine)) {
	var inj *faultinject.Injector
	if s.Chaos != nil {
		c := *s.Chaos
		c.Seed = faultinject.RunSeed(c.Seed, w.Name, a.String(), attempt)
		c.Observe = obs.injectObserver(att, c.Seed)
		inj = faultinject.New(c)
	}
	deadline := s.DeadlineUops
	setup := func(m *core.Machine) {
		quantum := uint64(faultinject.DefaultQuantum)
		if inj != nil {
			quantum = inj.Quantum()
		}
		var executed uint64
		m.SetQuantum(quantum, func() {
			executed += quantum
			if deadline > 0 && executed >= deadline {
				panic(&core.DeadlineError{Uops: executed, Budget: deadline})
			}
			if inj != nil {
				inj.Step(m)
			}
		})
	}
	return inj, setup
}

// runDataOf assembles the retained outcome of one execution (live or
// replayed).
func runDataOf(m *core.Machine, err error, injected []faultinject.Event) *RunData {
	d := &RunData{Err: err, Injected: injected}
	if m != nil {
		d.Counters = m.C
		d.Metrics = metrics.Compute(&m.C)
		d.Topdown = topdown.Analyze(&m.C)
		d.Heap = m.Heap.Stats()
		d.Uops = m.Uops()
		d.hasMachine = true
	}
	return d
}

// replayEligible reports whether this session may use the record-and-replay
// fast path at all (supervised runs are additionally excluded per call).
func (s *Session) replayEligible() bool {
	return !replayDisabled.Load() && !s.NoReplay && !s.Check
}

// Prefetch fans the given pairs out across the worker pool and blocks
// until every one is cached. Duplicate pairs collapse onto one execution,
// so prefetching the union of several experiments' needs is cheap.
// Because each run is deterministic and isolated, a render after Prefetch
// is byte-identical to the same render on a serial session.
func (s *Session) Prefetch(pairs []Pair) {
	var wg sync.WaitGroup
	seen := make(map[string]bool, len(pairs))
	for _, p := range pairs {
		if p.Workload == nil {
			continue
		}
		key := p.Workload.Name + "/" + p.ABI.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		wg.Add(1)
		go func(p Pair) {
			defer wg.Done()
			s.Run(p.Workload, p.ABI)
		}(p)
	}
	wg.Wait()
}

// RunAll executes the full measurement campaign — every runnable workload
// under every ABI — across the worker pool.
func (s *Session) RunAll() {
	s.Prefetch(CampaignGrid())
}

// CampaignGrid returns the paper's full measurement grid: the 20 runnable
// workloads crossed with the three ABIs.
func CampaignGrid() []Pair {
	return pairsOf(workloads.All(), abi.All()...)
}

// pairsOf crosses a workload set with a list of ABIs.
func pairsOf(ws []*workloads.Workload, abis ...abi.ABI) []Pair {
	out := make([]Pair, 0, len(ws)*len(abis))
	for _, w := range ws {
		for _, a := range abis {
			out = append(out, Pair{Workload: w, ABI: a})
		}
	}
	return out
}

// namedPairs is pairsOf with a name lookup; unknown names are skipped
// (prefetching is best-effort — rendering reports the real error).
func namedPairs(names []string, abis ...abi.ABI) []Pair {
	var ws []*workloads.Workload
	for _, n := range names {
		if w, err := workloads.ByName(n); err == nil {
			ws = append(ws, w)
		}
	}
	return pairsOf(ws, abis...)
}

// RunByName is Run with a workload name lookup.
func (s *Session) RunByName(name string, a abi.ABI) (*RunData, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return s.Run(w, a), nil
}

// Seconds returns the simulated execution time for (w, a) in seconds, or
// 0 when the run faulted (so downstream ratios stay NaN-free).
func (s *Session) Seconds(w *workloads.Workload, a abi.ABI) float64 {
	d := s.Run(w, a)
	if d.Err != nil {
		return 0
	}
	return d.Metrics.Seconds
}

// Overhead returns time(a)/time(hybrid) for workload w.
func (s *Session) Overhead(w *workloads.Workload, a abi.ABI) float64 {
	hy := s.Seconds(w, abi.Hybrid)
	if hy == 0 {
		return 0
	}
	return s.Seconds(w, a) / hy
}
