package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
)

func init() {
	register(&Experiment{
		ID:      "ext-sweep",
		Title:   "Extension: purecap overhead vs working-set size (cache-boundary crossovers)",
		Section: "§4.7 — 'fewer logical elements fit within a cache line or cache level'",
		Run:     runExtSweep,
	})
}

// chaseKernel builds a shuffled singly-linked list of `nodes` records
// (two pointers + two words each, the paper's canonical pointer-rich
// shape) and chases it for a fixed number of hops, so work is constant
// while the working set sweeps across the cache hierarchy.
func chaseKernel(nodes, hops int) func(*core.Machine) {
	return func(m *core.Machine) {
		m.Func("chase", 1024, 64)
		l := m.Layout(core.FieldPtr, core.FieldPtr, core.FieldU64, core.FieldU64)
		ptrs := make([]core.Ptr, nodes)
		for i := range ptrs {
			ptrs[i] = m.AllocRecord(l)
		}
		// Deterministic shuffle.
		seed := uint64(99)
		perm := make([]int, nodes)
		for i := range perm {
			perm[i] = i
		}
		for i := nodes - 1; i > 0; i-- {
			seed = seed*6364136223846793005 + 1442695040888963407
			j := int(seed % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i < nodes; i++ {
			next := ptrs[perm[(i+1)%nodes]]
			m.StorePtr(l.Field(ptrs[perm[i]], 0), next)
		}
		p := ptrs[perm[0]]
		for h := 0; h < hops; h++ {
			m.ALU(2)
			p = m.LoadPtr(l.Field(p, 0))
			m.BranchAt(4001, h+1 < hops)
		}
	}
}

// runExtSweep measures purecap/hybrid cycle ratio for a pointer-chase
// kernel as its node count sweeps the working set across L1D, L2 and the
// LLC. The overhead peaks exactly where the hybrid working set still fits
// a level that the 1.5x-larger purecap set has outgrown — the §4.7
// mechanism as a curve, locating the crossovers the paper's fixed-size
// benchmarks only sample.
func runExtSweep(s *Session) (string, error) {
	const hops = 60000
	nodeCounts := []int{512, 2048, 8192, 16384, 32768, 65536, 131072}

	var b strings.Builder
	b.WriteString("Extension: pointer-chase overhead vs working-set size (fixed 60k hops)\n\n")
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\thybrid WS\tpurecap WS\thybrid(ms)\tpurecap(ms)\tpurecap/hybrid")
	var peak float64
	var peakNodes int
	for _, n := range nodeCounts {
		run := func(a abi.ABI) (float64, uint64, error) {
			id := fmt.Sprintf("sweep/chase:nodes=%d:hops=%d", n, hops)
			kr, err := s.RunKernel(id, core.DefaultConfig(a), chaseKernel(n, hops))
			if err != nil {
				return 0, 0, err
			}
			return kr.Metrics.Seconds, kr.Heap.BrkBytes, nil
		}
		hy, hyWS, err := run(abi.Hybrid)
		if err != nil {
			return "", err
		}
		pc, pcWS, err := run(abi.Purecap)
		if err != nil {
			return "", err
		}
		ratio := pc / hy
		if ratio > peak {
			peak, peakNodes = ratio, n
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\t%.3f\t%.3f\n",
			n, fmtBytes(hyWS), fmtBytes(pcWS), hy*1e3, pc*1e3, ratio)
	}
	tw.Flush()
	fmt.Fprintf(&b, "\npeak overhead %.2fx at %d nodes: the hybrid working set still fits a\n", peak, peakNodes)
	b.WriteString("cache level that the capability-widened set has outgrown. Small sets fit\n")
	b.WriteString("everywhere (overhead = instruction inflation only); huge sets miss\n")
	b.WriteString("everywhere (both ABIs DRAM-bound, overhead compresses). The paper's\n")
	b.WriteString("fixed-input benchmarks sample single points of this curve.\n")
	return b.String(), nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
