package experiments

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"

	"cherisim/internal/abi"
	"cherisim/internal/core"
	"cherisim/internal/faultinject"
	"cherisim/internal/report"
	"cherisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:      "resilience",
		Title:   "Crash matrix under deterministic capability-fault injection",
		Section: "Appendix Table 5 (extended)",
		Run:     runResilience,
		Pairs:   func() []Pair { return pairsOf(resilienceWorkloads(), abi.All()...) },
	})
}

// resilienceRates is the injection-rate sweep in expected events per
// million µops. Rate 0 is the undisturbed baseline, where only the paper's
// Appendix Table 5 benchmarks crash (and only under the capability ABIs).
// The non-zero rates are low enough that short workloads can survive a
// schedule (or a retry of one), so the matrix shows a gradient instead of
// uniform death: hybrid ignores tag/bounds/perm corruption and dies only
// to spurious traps, while the capability ABIs also trap on the latent
// corruptions — the paper's Table 5 asymmetry, made systematic.
var resilienceRates = []float64{0, 5, 20}

// resilienceWorkloads returns the sweep's workload set: the paper's 12
// selected benchmarks plus the two compiled-but-crashing Table 5 entries.
var resilienceWorkloads = func() []*workloads.Workload {
	return append(workloads.Selected(), workloads.Faulty()...)
}

// defaultResilienceRetries is the transient-retry budget when the session
// does not set one.
const defaultResilienceRetries = 2

// cellStatus folds a supervised run outcome into the report taxonomy.
func cellStatus(d *RunData) string {
	if d.Err == nil {
		return "ok"
	}
	var f *core.Fault
	if errors.As(d.Err, &f) {
		return f.Kind.String()
	}
	var de *core.DeadlineError
	if errors.As(d.Err, &de) {
		return "deadline"
	}
	var pe *core.PanicError
	if errors.As(d.Err, &pe) {
		return "panic"
	}
	return "error"
}

// runResilience sweeps injection rate x ABI across the workload set and
// renders the resulting crash matrix. Every run is supervised (bounded
// transient retries, optional watchdog deadline), and the whole sweep is a
// pure function of the chaos seed: two renders with one seed are
// byte-identical.
func runResilience(s *Session) (string, error) {
	seed := s.ChaosSeed
	if seed == 0 {
		seed = 1
	}
	kinds := faultinject.AllKinds()
	if s.Chaos != nil && len(s.Chaos.Kinds) > 0 {
		kinds = s.Chaos.Kinds
	}
	retries := s.Retries
	if retries <= 0 {
		retries = defaultResilienceRetries
	}

	kindNames := make([]string, len(kinds))
	for i, k := range kinds {
		kindNames[i] = k.String()
	}
	ws := resilienceWorkloads()
	abis := abi.All()
	rep := report.NewResilienceReport(seed, kindNames, resilienceRates)

	// One supervised session per rate; each caches its own grid.
	results := make(map[float64]map[string]*RunData, len(resilienceRates))
	for _, rate := range resilienceRates {
		sub := s
		if rate > 0 || s.Chaos != nil {
			sub = NewSession(s.Scale)
			sub.Jobs = s.Jobs
			sub.Configure = s.Configure
			sub.DeadlineUops = s.DeadlineUops
			sub.Retries = retries
			sub.Store = s.Store // chaos schedule is part of the store key
			sub.NoReplay = s.NoReplay
			sub.shareTelemetryWith(s)
			if rate > 0 {
				sub.Chaos = &faultinject.Config{Seed: seed, RatePerMUops: rate, Kinds: kinds}
			}
		}
		sub.Prefetch(pairsOf(ws, abis...))
		cells := make(map[string]*RunData, len(ws)*len(abis))
		for _, w := range ws {
			for _, a := range abis {
				d := sub.Run(w, a)
				cells[w.Name+"/"+a.String()] = d
				errText := ""
				if d.Err != nil {
					errText = d.Err.Error()
				}
				rep.Add(report.ResilienceCell{
					RatePerMUops: rate,
					Workload:     w.Name,
					ABI:          a.String(),
					Status:       cellStatus(d),
					Attempts:     d.Attempts,
					Injected:     len(d.Injected),
					Err:          errText,
				})
			}
		}
		results[rate] = cells
	}

	var b strings.Builder
	deadline := "off"
	if s.DeadlineUops > 0 {
		deadline = fmt.Sprintf("%d uops", s.DeadlineUops)
	}
	fmt.Fprintf(&b, "Resilience sweep: seeded capability-fault injection across %d workloads x %d ABIs\n",
		len(ws), len(abis))
	fmt.Fprintf(&b, "seed=%d kinds=%s retries=%d deadline=%s\n\n",
		seed, strings.Join(kindNames, ","), retries, deadline)

	// Survival by rate and ABI.
	tw := tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "rate(/Muop)")
	for _, a := range abis {
		fmt.Fprintf(tw, "\t%s", a)
	}
	fmt.Fprintf(tw, "\tinjected\tretried\n")
	for _, rate := range resilienceRates {
		cells := results[rate]
		fmt.Fprintf(tw, "%g", rate)
		injected, retried := 0, 0
		for _, a := range abis {
			ok := 0
			for _, w := range ws {
				if cells[w.Name+"/"+a.String()].Err == nil {
					ok++
				}
			}
			fmt.Fprintf(tw, "\t%d/%d", ok, len(ws))
		}
		for _, w := range ws {
			for _, a := range abis {
				d := cells[w.Name+"/"+a.String()]
				injected += len(d.Injected)
				if d.Attempts > 1 {
					retried++
				}
			}
		}
		fmt.Fprintf(tw, "\t%d\t%d\n", injected, retried)
	}
	tw.Flush()

	// Crash matrix at the highest rate, the Appendix-Table-5 extension:
	// per-cell outcome class (attempt count appended when retries fired).
	top := resilienceRates[len(resilienceRates)-1]
	fmt.Fprintf(&b, "\ncrash matrix at rate %g/Muop (Appendix Table 5 class in each cell):\n", top)
	tw = tabwriter.NewWriter(&b, 1, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload")
	for _, a := range abis {
		fmt.Fprintf(tw, "\t%s", a)
	}
	fmt.Fprintln(tw)
	for _, w := range ws {
		fmt.Fprintf(tw, "%s", w.Name)
		for _, a := range abis {
			d := results[top][w.Name+"/"+a.String()]
			cell := cellStatus(d)
			if d.Attempts > 1 {
				cell += fmt.Sprintf(" (x%d)", d.Attempts)
			}
			fmt.Fprintf(tw, "\t%s", cell)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	// Baseline sanity line: at rate 0 the only crashes must be the paper's
	// two Table 5 benchmarks, and only under the capability ABIs.
	base := results[0]
	naturals := []string{}
	for _, w := range ws {
		for _, a := range abis {
			if d := base[w.Name+"/"+a.String()]; d.Err != nil {
				naturals = append(naturals, fmt.Sprintf("%s/%s(%s)", w.Name, a, cellStatus(d)))
			}
		}
	}
	fmt.Fprintf(&b, "\nbaseline (rate 0) crashes: %s\n", strings.Join(naturals, " "))
	if frac, n := rep.Survival(0); n > 0 {
		fmt.Fprintf(&b, "survival: %.0f%% at rate 0", frac*100)
		for _, rate := range resilienceRates[1:] {
			f, _ := rep.Survival(rate)
			fmt.Fprintf(&b, " -> %.0f%% at %g/Muop", f*100, rate)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}
