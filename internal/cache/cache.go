// Package cache implements the set-associative cache models of the Morello
// memory hierarchy. Each core of the simulated SoC has a 64 KiB 4-way L1
// instruction cache, a 64 KiB 4-way L1 data cache and a 1 MiB 8-way unified
// L2; the four cores share a 1 MiB system-level cache (LLC). All use
// 64-byte lines with LRU replacement and write-back/write-allocate policy,
// matching the Neoverse N1 configuration described in the paper (§2.2).
package cache

import "fmt"

// Config describes one cache's geometry and timing.
type Config struct {
	Name       string
	SizeBytes  int
	LineSize   int
	Ways       int
	HitLatency uint64 // cycles to return a hit
}

// Standard Morello cache geometries.
var (
	L1IConfig = Config{Name: "L1I", SizeBytes: 64 << 10, LineSize: 64, Ways: 4, HitLatency: 1}
	L1DConfig = Config{Name: "L1D", SizeBytes: 64 << 10, LineSize: 64, Ways: 4, HitLatency: 4}
	L2Config  = Config{Name: "L2", SizeBytes: 1 << 20, LineSize: 64, Ways: 8, HitLatency: 11}
	LLCConfig = Config{Name: "LLC", SizeBytes: 1 << 20, LineSize: 64, Ways: 16, HitLatency: 30}
)

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set sequence number; larger = more recently used.
	lru uint64
}

// Stats are the per-cache event counts exposed to the PMU.
type Stats struct {
	Accesses   uint64 // total lookups (PMU xx_CACHE)
	Refills    uint64 // misses that allocated a line (PMU xx_CACHE_REFILL)
	WriteBacks uint64 // dirty evictions
	ReadAcc    uint64
	ReadMiss   uint64
	WriteAcc   uint64
	WriteMiss  uint64
}

// Shadow observes every state-changing cache operation after it completes.
// internal/check installs a lockstep reference model behind it; a nil
// shadow costs one pointer test per access and nothing else. Shadows must
// not touch the cache they are attached to beyond the read-only
// snapshot/stats accessors.
type Shadow interface {
	// Access reports one completed access and its result.
	Access(addr uint64, write bool, res Result)
	// InvalidateAll reports a completed flush and its write-back count.
	InvalidateAll(writeBacks int)
}

// LineState is a read-only snapshot of one way of one set, exposed for the
// lockstep checker's state comparison.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	LRU   uint64
}

// Cache is a single-level set-associative cache. It tracks line presence
// only (the simulator keeps data in mem.Memory); that is sufficient for
// timing and PMU behaviour.
type Cache struct {
	cfg     Config
	sets    [][]line
	numSets int
	lineSz  uint64
	// lineShift/setMask/setShift are the shift-and-mask form of the
	// line/set/tag split (geometries are power-of-two, enforced in New),
	// keeping integer division out of the per-access hot path.
	lineShift uint
	setMask   uint64
	setShift  uint
	seq       uint64
	// mru holds each set's most-recently-used way — a hint probed before
	// the associative scan. It is always verified against tag+valid, so a
	// stale hint costs one compare and never changes behaviour.
	mru    []uint16
	shadow Shadow
	Stats  Stats
}

// New builds a cache from its configuration.
func New(cfg Config) *Cache {
	numSets := cfg.SizeBytes / (cfg.LineSize * cfg.Ways)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, numSets))
	}
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{
		cfg: cfg, sets: sets, numSets: numSets, lineSz: uint64(cfg.LineSize),
		lineShift: log2(uint64(cfg.LineSize)),
		setMask:   uint64(numSets - 1),
		setShift:  log2(uint64(numSets)),
		mru:       make([]uint16, numSets),
	}
}

// log2 returns the base-2 logarithm of a power of two.
func log2(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.lineShift
	return int(lineAddr & c.setMask), lineAddr >> c.setShift
}

// Result describes the outcome of one cache access.
type Result struct {
	Hit bool
	// WriteBack is set when the allocation evicted a dirty line; the
	// victim's address is reconstructed for downstream traffic.
	WriteBack     bool
	WriteBackAddr uint64
}

// Access looks up addr; on a miss it allocates (write-allocate) and reports
// any dirty eviction. write marks the line dirty on stores.
//
// The lookup probes the set's MRU way before the associative scan (the
// common case on the simulator's line-local access patterns), and the scan
// itself tracks the replacement victim as it goes, so a miss costs one
// pass over the ways instead of two. Both fast paths are behaviourally
// identical to the plain scan: same hit/miss outcome, same LRU updates,
// same victim choice (first invalid way, else lowest-lru, earliest index).
func (c *Cache) Access(addr uint64, write bool) Result {
	res := c.access(addr, write)
	if c.shadow != nil {
		c.shadow.Access(addr, write, res)
	}
	return res
}

func (c *Cache) access(addr uint64, write bool) Result {
	c.Stats.Accesses++
	if write {
		c.Stats.WriteAcc++
	} else {
		c.Stats.ReadAcc++
	}
	set, tag := c.index(addr)
	c.seq++
	ways := c.sets[set]
	if m := int(c.mru[set]); m < len(ways) {
		if l := &ways[m]; l.valid && l.tag == tag {
			l.lru = c.seq
			if write {
				l.dirty = true
			}
			return Result{Hit: true}
		}
	}
	firstInvalid, minIdx := -1, 0
	for i := range ways {
		l := &ways[i]
		if l.valid {
			if l.tag == tag {
				l.lru = c.seq
				if write {
					l.dirty = true
				}
				c.mru[set] = uint16(i)
				return Result{Hit: true}
			}
			if firstInvalid < 0 && l.lru < ways[minIdx].lru {
				minIdx = i
			}
		} else if firstInvalid < 0 {
			firstInvalid = i
		}
	}
	// Miss: allocate into the first invalid way, else the LRU way.
	c.Stats.Refills++
	if write {
		c.Stats.WriteMiss++
	} else {
		c.Stats.ReadMiss++
	}
	victim := firstInvalid
	if victim < 0 {
		victim = minIdx
	}
	v := &ways[victim]
	res := Result{}
	if v.valid && v.dirty {
		c.Stats.WriteBacks++
		res.WriteBack = true
		res.WriteBackAddr = (v.tag<<c.setShift | uint64(set)) << c.lineShift
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.seq}
	c.mru[set] = uint16(victim)
	return res
}

// Probe reports whether addr is present without touching LRU state or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (context-switch / flush modelling) and
// returns the number of dirty lines the flush wrote back. A write-back
// cache cannot silently discard dirty data: each such line is a memory
// write the PMU must see, so the count is also added to Stats.WriteBacks.
func (c *Cache) InvalidateAll() int {
	writeBacks := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if l := &c.sets[s][w]; l.valid && l.dirty {
				writeBacks++
			}
			c.sets[s][w] = line{}
		}
	}
	c.Stats.WriteBacks += uint64(writeBacks)
	if c.shadow != nil {
		c.shadow.InvalidateAll(writeBacks)
	}
	return writeBacks
}

// SetShadow installs (or, with nil, removes) the cache's lockstep observer
// and returns the previous one.
func (c *Cache) SetShadow(s Shadow) Shadow {
	prev := c.shadow
	c.shadow = s
	return prev
}

// Shadowed reports whether a lockstep observer is installed.
func (c *Cache) Shadowed() bool { return c.shadow != nil }

// NumSets returns the number of sets (for the lockstep checker).
func (c *Cache) NumSets() int { return c.numSets }

// Set returns the set index addr maps to.
func (c *Cache) Set(addr uint64) int {
	set, _ := c.index(addr)
	return set
}

// AppendSetState appends a snapshot of every way of the given set to dst
// and returns it, for the lockstep checker's state comparison.
func (c *Cache) AppendSetState(dst []LineState, set int) []LineState {
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		dst = append(dst, LineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, LRU: l.lru})
	}
	return dst
}

// MissRate returns Refills/Accesses (the paper's cache MR metric).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Refills) / float64(s.Accesses)
}

// ReadMissRate returns ReadMiss/ReadAcc (the paper's LLC Read MR metric).
func (s Stats) ReadMissRate() float64 {
	if s.ReadAcc == 0 {
		return 0
	}
	return float64(s.ReadMiss) / float64(s.ReadAcc)
}
